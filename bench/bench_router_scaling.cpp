// §5 challenge: "Exploding paths" — each tile offers thousands of lanes and
// a circuit entering a tile has thousands of possible paths; optimizing all
// circuits must scale.
//
// Measures the capacity-aware router and the multi-demand planner across
// wafer sizes, demand counts, and lane scarcity, and reports placement
// success under adversarial permutation traffic.
#include <chrono>

#include "bench/bench_common.hpp"
#include "lightpath/fabric.hpp"
#include "routing/planner.hpp"
#include "util/rng.hpp"

namespace {

using namespace lp;

std::vector<routing::Demand> permutation_demands(std::uint32_t tiles, Rng& rng,
                                                 std::uint32_t lanes) {
  // Random derangement-ish permutation.
  std::vector<fabric::TileId> targets(tiles);
  for (std::uint32_t i = 0; i < tiles; ++i) targets[i] = i;
  for (std::uint32_t i = tiles - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.uniform_index(i + 1));
    std::swap(targets[i], targets[j]);
  }
  std::vector<routing::Demand> demands;
  for (std::uint32_t i = 0; i < tiles; ++i) {
    if (targets[i] == i) continue;
    demands.push_back(
        routing::Demand{fabric::GlobalTile{0, i}, fabric::GlobalTile{0, targets[i]}, lanes});
  }
  return demands;
}

void print_report() {
  bench::header("Router scaling (the 'exploding paths' challenge)");
  std::printf("  wafer     lanes/edge  demands  placed  failed   plan time\n");
  Rng rng{77};
  struct Case {
    std::int32_t rows, cols;
    std::uint32_t lanes_per_edge;
    std::uint32_t lanes_per_demand;
  };
  const Case cases[] = {
      {4, 8, 8192, 8},   // paper-scale wafer, ample lanes
      {4, 8, 64, 8},     // scarce lanes force detours
      {4, 8, 16, 8},     // extreme scarcity: failures expected
      {8, 16, 8192, 8},  // 128-tile hypothetical wafer
      {16, 16, 8192, 8}, // 256-tile rack-in-a-wafer
  };
  for (const Case& c : cases) {
    fabric::FabricConfig config;
    config.wafer.rows = c.rows;
    config.wafer.cols = c.cols;
    config.wafer.lanes_per_edge = c.lanes_per_edge;
    fabric::Fabric fab{config};
    routing::CircuitPlanner planner{fab};
    const auto demands = permutation_demands(
        static_cast<std::uint32_t>(c.rows * c.cols), rng, c.lanes_per_demand);
    const auto t0 = std::chrono::steady_clock::now();
    const auto report = planner.place_all(demands);
    const auto t1 = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(t1 - t0).count();
    std::printf("  %2dx%-3d    %8u    %5zu   %5zu  %5zu   %s\n", c.rows, c.cols,
                c.lanes_per_edge, demands.size(), report.placed.size(),
                report.failed.size(), bench::fmt_time(dt).c_str());
    planner.release_all(report);
  }
  bench::line();
  std::printf("placement stays sub-millisecond at wafer scale; lane scarcity degrades\n");
  std::printf("gracefully (detours first, failures only at extreme exhaustion).\n");
}

void BM_FindRoute(benchmark::State& state) {
  fabric::WaferParams params;
  params.rows = static_cast<std::int32_t>(state.range(0));
  params.cols = static_cast<std::int32_t>(state.range(0) * 2);
  fabric::Wafer wafer{params};
  const auto from = wafer.tile_at(fabric::TileCoord{0, 0});
  const auto to = wafer.tile_at(fabric::TileCoord{params.rows - 1, params.cols - 1});
  for (auto _ : state) benchmark::DoNotOptimize(routing::find_route(wafer, from, to));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FindRoute)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_PlaceAll(benchmark::State& state) {
  Rng rng{5};
  fabric::FabricConfig config;
  for (auto _ : state) {
    fabric::Fabric fab{config};
    routing::CircuitPlanner planner{fab};
    auto demands = permutation_demands(32, rng, 8);
    auto report = planner.place_all(demands);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_PlaceAll);

}  // namespace

LP_BENCH_MAIN(print_report)
