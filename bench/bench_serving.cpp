// Open-loop inference serving: SLO attainment vs arrival rate under
// circuit churn.
//
// The paper's motivating deployment (§1): a server-scale photonic fabric
// carrying live inference traffic.  This bench sweeps offered load on the
// 16x16-wafer serving configuration (16 replicas x 16 tiles, continuous
// batching, MoE expert rotations and KV migrations through the host stack,
// accelerated component faults repaired by the recovery ladder) and reports
// p50/p99/p999 request latency plus the fraction of offered requests that
// met the SLO — the attainment knee is the fabric's usable capacity.
//
// Headline targets: the simulator itself must sustain >= 1e6 simulated
// requests/s of wall-clock throughput, and the sweep must be bit-identical
// at 1, 2, and 8 worker threads (digest comparison).
//
// --json writes BENCH_serving.json for CI artifact upload.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "serve/serving_sim.hpp"

namespace {

using lp::Duration;
using lp::serve::ServingParams;
using lp::serve::ServingReport;
using lp::serve::ServingSweepConfig;
using lp::serve::ServingSweepReport;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The paper-scale configuration: one 16x16 wafer, one replica per row.
ServingParams wafer_params() {
  ServingParams p;  // defaults are the 16x16 serving layout
  p.horizon = Duration::millis(50.0);
  p.drain = Duration::millis(20.0);
  return p;
}

constexpr double kTargetSimRate = 1e6;  // simulated requests/s of wall clock

void print_report(bool emit_json) {
  lp::bench::header("Open-loop serving: SLO attainment vs arrival rate");
  ServingSweepConfig cfg;
  cfg.base = wafer_params();
  cfg.arrival_rates = {0.25e6, 0.5e6, 1e6, 1.5e6, 2e6, 2.5e6, 3e6, 4e6};

  const double t0 = now_seconds();
  const ServingSweepReport sweep = run_serving_sweep(cfg);
  const double wall = now_seconds() - t0;

  std::uint64_t total_offered = 0;
  std::printf("16 replicas x 16 tiles, SLO %.1f ms, horizon %.0f ms, "
              "accelerated MTBF %.4g h\n\n",
              cfg.base.slo.to_millis(), cfg.base.horizon.to_millis(),
              cfg.base.mtbf_hours);
  std::printf("  rate [req/s]  offered  attainment   latency tail"
              "                              faults repairs\n");
  for (const ServingReport& p : sweep.points) {
    total_offered += p.offered;
    const lp::bench::Tail tail = lp::bench::tail_of(p.latencies);
    std::printf("  %12.3g  %7llu  %9.2f%%   %-42s %6llu %7llu\n",
                p.arrival_rate, static_cast<unsigned long long>(p.offered),
                100.0 * p.slo_attainment(), lp::bench::fmt_tail(tail).c_str(),
                static_cast<unsigned long long>(p.fault_events),
                static_cast<unsigned long long>(p.repairs));
  }
  lp::bench::line();
  const double sim_rate = wall > 0.0 ? static_cast<double>(total_offered) / wall : 0.0;
  std::printf("sweep wall clock  : %s for %llu simulated requests\n",
              lp::bench::fmt_time(wall).c_str(),
              static_cast<unsigned long long>(total_offered));
  std::printf("simulator rate    : %.3e simulated requests/s\n", sim_rate);
  std::printf("target >= %.0e requests/s: %s\n", kTargetSimRate,
              sim_rate >= kTargetSimRate ? "PASS" : "FAIL");

  // Thread-count bit-identity: the acceptance gate for the deterministic
  // parallel sweep.  A smaller sweep keeps this check quick.
  ServingSweepConfig small = cfg;
  small.base.horizon = Duration::millis(10.0);
  small.arrival_rates = {0.5e6, 2e6};
  std::vector<std::uint64_t> digests;
  bool identical = true;
  for (unsigned threads : {1u, 2u, 8u}) {
    small.threads = threads;
    const ServingSweepReport rep = run_serving_sweep(small);
    std::uint64_t d = 0;
    for (const ServingReport& p : rep.points) d ^= p.digest;
    digests.push_back(d);
    identical = identical && d == digests.front();
  }
  std::printf("bit-identical at 1/2/8 threads: %s\n", identical ? "PASS" : "FAIL");

  if (emit_json) {
    lp::bench::JsonWriter json;
    json.begin_object();
    json.key("slo_ms").value(cfg.base.slo.to_millis());
    json.key("horizon_ms").value(cfg.base.horizon.to_millis());
    json.key("mtbf_hours").value(cfg.base.mtbf_hours);
    json.key("points").begin_array();
    for (const ServingReport& p : sweep.points) {
      json.begin_object();
      json.key("arrival_rate").value(p.arrival_rate);
      json.key("offered").value(p.offered);
      json.key("completed").value(p.completed);
      json.key("abandoned").value(p.abandoned);
      json.key("slo_attainment").value(p.slo_attainment());
      json.key("p50_ms").value(p.p50.to_millis());
      json.key("p99_ms").value(p.p99.to_millis());
      json.key("p999_ms").value(p.p999.to_millis());
      json.key("fault_events").value(p.fault_events);
      json.key("repairs").value(p.repairs);
      json.key("repair_failures").value(p.repair_failures);
      json.key("churn_flushes").value(p.churn_flushes);
      json.key("host_hit_rate").value(p.host.hit_rate());
      json.key("digest").value(p.digest);
      json.end_object();
    }
    json.end_array();
    json.key("wall_seconds").value(wall);
    json.key("simulated_requests").value(total_offered);
    json.key("sim_requests_per_s").value(sim_rate);
    json.key("target_requests_per_s").value(kTargetSimRate);
    json.key("thread_bit_identical").value(identical);
    json.key("pass").value(sim_rate >= kTargetSimRate && identical);
    json.end_object();
    if (json.write_file("BENCH_serving.json")) {
      std::printf("\nwrote BENCH_serving.json\n");
    }
  }
}

void BM_ServingPoint(benchmark::State& state) {
  ServingParams p = wafer_params();
  p.horizon = Duration::millis(5.0);
  p.drain = Duration::millis(5.0);
  p.traffic.arrival_rate = static_cast<double>(state.range(0));
  std::uint64_t offered = 0;
  for (auto _ : state) {
    const ServingReport r = lp::serve::run_serving(p);
    offered += r.offered;
    benchmark::DoNotOptimize(r.digest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(offered));
}
BENCHMARK(BM_ServingPoint)->Arg(500000)->Arg(2000000)->Unit(benchmark::kMillisecond);

}  // namespace

LP_BENCH_MAIN_JSON(print_report)
