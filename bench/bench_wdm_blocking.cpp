// Ablation: shared-WDM-bus fabric vs LIGHTPATH's private lanes.
//
// If the interconnect shared one 16-channel WDM bus per edge instead of
// thousands of private waveguides, circuit requests would block on
// wavelength continuity well below full utilization.  We drive both
// designs with the same random circuit churn and plot blocking probability
// vs offered load — the quantitative argument behind Figure 4's
// lane-dense geometry.
#include <deque>

#include "bench/bench_common.hpp"
#include "routing/planner.hpp"
#include "routing/wdm_planner.hpp"
#include "util/rng.hpp"

namespace {

using namespace lp;

void print_report() {
  bench::header("Blocking probability: shared WDM bus vs private lanes");
  std::printf("random 2-lambda circuits, hold W circuits at a time, 2000 arrivals\n\n");
  std::printf("  held circuits   WDM-bus blocking   (continuity / no-path)   private lanes\n");

  for (const std::size_t held : {8u, 16u, 32u, 64u, 128u}) {
    Rng rng{held * 1234567u + 1};
    fabric::Wafer wafer;
    routing::WdmPlanner wdm{wafer, 16};
    std::deque<routing::WdmCircuit> live;

    // Private-lane reference: same churn on a real fabric with 8192 lanes.
    fabric::Fabric fab;
    std::deque<fabric::CircuitId> live_private;
    std::uint64_t private_blocked = 0;

    constexpr int kArrivals = 2000;
    for (int i = 0; i < kArrivals; ++i) {
      const auto src = static_cast<fabric::TileId>(rng.uniform_index(32));
      auto dst = static_cast<fabric::TileId>(rng.uniform_index(32));
      if (dst == src) dst = (dst + 1) % 32;
      const routing::Demand demand{fabric::GlobalTile{0, src},
                                   fabric::GlobalTile{0, dst}, 2};
      if (auto placed = wdm.place(demand)) live.push_back(std::move(placed).value());
      if (live.size() > held) {
        wdm.release(live.front());
        live.pop_front();
      }
      if (auto placed = fab.connect(demand.src, demand.dst, demand.wavelengths)) {
        live_private.push_back(placed.value());
      } else {
        ++private_blocked;
      }
      if (live_private.size() > held) {
        fab.disconnect(live_private.front());
        live_private.pop_front();
      }
    }
    const auto& st = wdm.stats();
    std::printf("  %12zu   %15.1f%%   (%7llu / %7llu)   %10.1f%%\n", held,
                100.0 * st.blocking_probability(),
                static_cast<unsigned long long>(st.blocked_continuity),
                static_cast<unsigned long long>(st.blocked_no_path),
                100.0 * static_cast<double>(private_blocked) / kArrivals);
  }
  bench::line();
  std::printf("a shared 16-channel bus starts blocking once a few dozen circuits are\n");
  std::printf("held (continuity, not capacity); LIGHTPATH's private lanes only block\n");
  std::printf("on the tile's own Tx/Rx wavelength budget.\n");
}

void BM_WdmPlace(benchmark::State& state) {
  fabric::Wafer wafer;
  routing::WdmPlanner planner{wafer};
  Rng rng{3};
  for (auto _ : state) {
    const auto src = static_cast<fabric::TileId>(rng.uniform_index(32));
    const auto dst = static_cast<fabric::TileId>((src + 7) % 32);
    auto c = planner.place(routing::Demand{fabric::GlobalTile{0, src},
                                           fabric::GlobalTile{0, dst}, 1});
    if (c) planner.release(c.value());
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_WdmPlace);

}  // namespace

LP_BENCH_MAIN(print_report)
