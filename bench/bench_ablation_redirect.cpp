// Ablation: redirection strategy and algorithm variants (DESIGN.md §5).
//
// Across slice shapes and buffer sizes, compares:
//   * electrical sequential bucket (the paper's baseline),
//   * electrical simultaneous multi-order bucket ([41]-style subdivision),
//   * optical static-split redirection (the paper's Tables 1-2 setting),
//   * optical per-stage-full redirection (re-aim everything each stage).
//
// Shapes to watch: for one-usable-dim slices the simultaneous variant
// cannot help (the paper's claim); per-stage-full wins wherever a plan has
// multiple stages, at the cost of no concurrent stage overlap.
#include "bench/bench_common.hpp"
#include "collective/cost_model.hpp"
#include "topo/slice.hpp"

namespace {

using namespace lp;
using coll::Interconnect;
using coll::RedirectStrategy;

const topo::Shape kRack{{4, 4, 4}};

void print_report() {
  bench::header("Ablation: redirection strategies and algorithm variants");
  coll::CostParams params;
  const DataSize n = DataSize::mib(256);

  struct Case {
    const char* name;
    topo::Shape shape;
  };
  const Case cases[] = {
      {"4x2x1 (Slice-1)", topo::Shape{{4, 2, 1}}},
      {"4x4x1 (Slice-3)", topo::Shape{{4, 4, 1}}},
      {"4x4x2 (Slice-4)", topo::Shape{{4, 4, 2}}},
      {"4x4x4 (full rack)", topo::Shape{{4, 4, 4}}},
  };
  std::printf("N = %s; total time including alpha and r\n\n",
              bench::fmt_bytes(n.to_bytes()).c_str());
  std::printf("  %-18s %12s %12s %12s %12s\n", "slice", "elec seq", "elec simult",
              "opt split", "opt full");
  for (const Case& c : cases) {
    const topo::Slice s{0, 0, topo::Coord{{0, 0, 0}}, c.shape};
    const auto plan = coll::build_plan(s, kRack);
    const auto seq = coll::reduce_scatter_cost(plan, n, Interconnect::kElectrical, params);
    const auto sim = coll::simultaneous_reduce_scatter_cost(plan, n, params);
    const auto split = coll::reduce_scatter_cost(plan, n, Interconnect::kOptical, params,
                                                 RedirectStrategy::kStaticSplit);
    const auto full = coll::reduce_scatter_cost(plan, n, Interconnect::kOptical, params,
                                                RedirectStrategy::kPerStageFull);
    std::printf("  %-18s %12s %12s %12s %12s\n", c.name,
                bench::fmt_time(seq.total(params).to_seconds()).c_str(),
                bench::fmt_time(sim.total(params).to_seconds()).c_str(),
                bench::fmt_time(split.total(params).to_seconds()).c_str(),
                bench::fmt_time(full.total(params).to_seconds()).c_str());
  }

  bench::line();
  std::printf("observations:\n");
  std::printf("  * one-stage slices (4x2x1): simultaneous == sequential (no second dim\n");
  std::printf("    to overlap), optics 3x better — the paper's §4.1 argument.\n");
  std::printf("  * multi-stage slices: per-stage-full redirection is the strongest\n");
  std::printf("    optical schedule; static split is what Tables 1-2 assume.\n");
  std::printf("  * full rack: electrical already optimal, optics only adds r.\n");

  // r sensitivity: where does optics stop winning as r grows?
  std::printf("\nreconfiguration-latency sensitivity (Slice-1, optics vs elec crossover N):\n");
  const topo::Slice s1{0, 0, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 2, 1}}};
  const auto plan1 = coll::build_plan(s1, kRack);
  for (double r_us : {0.37, 3.7, 37.0, 370.0}) {
    coll::CostParams p = params;
    p.reconfig = Duration::micros(r_us);
    // Binary search the crossover buffer size.
    double lo = 1.0, hi = 1e12;
    for (int i = 0; i < 200; ++i) {
      const double mid = std::sqrt(lo * hi);
      const DataSize nn = DataSize::bytes(mid);
      const auto e = coll::reduce_scatter_cost(plan1, nn, Interconnect::kElectrical, p);
      const auto o = coll::reduce_scatter_cost(plan1, nn, Interconnect::kOptical, p);
      if (o.total(p) < e.total(p)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    std::printf("  r = %6.2f us  ->  optics wins above N = %s\n", r_us,
                bench::fmt_bytes(hi).c_str());
  }
}

void BM_CostAllStrategies(benchmark::State& state) {
  const topo::Slice s{0, 0, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 4, 2}}};
  const auto plan = coll::build_plan(s, kRack);
  const coll::CostParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll::reduce_scatter_cost(
        plan, DataSize::mib(256), Interconnect::kOptical, params,
        RedirectStrategy::kPerStageFull));
    benchmark::DoNotOptimize(
        coll::simultaneous_reduce_scatter_cost(plan, DataSize::mib(256), params));
  }
}
BENCHMARK(BM_CostAllStrategies);

}  // namespace

LP_BENCH_MAIN(print_report)
