// Fleet-level availability under chip failures — §4.2 compounded over a
// 4096-chip fleet and a 90-day horizon.
//
// Chips fail as a Poisson process; each failure is handled by one of the
// three recovery policies.  The report shows the per-policy chip-hours
// lost and resulting availability, and a MTBF sweep.
#include "bench/bench_common.hpp"
#include "core/failure_study.hpp"

namespace {

using namespace lp;
using core::FailurePolicy;

const char* name(FailurePolicy p) {
  switch (p) {
    case FailurePolicy::kRackMigration: return "rack migration [60]";
    case FailurePolicy::kElectricalRepair: return "electrical in-place";
    case FailurePolicy::kOpticalRepair: return "optical repair (ours)";
  }
  return "?";
}

void print_report() {
  bench::header("Fleet availability: 4096 chips, 90 days, per-chip MTBF sweep");

  for (const double mtbf : {10000.0, 50000.0, 200000.0}) {
    core::FailureStudyParams params;
    params.mtbf_hours = mtbf;
    std::printf("\nMTBF %.0fk hours (expected failures: %.0f):\n", mtbf / 1000.0,
                params.fleet_chips / mtbf * params.horizon_hours);
    std::printf("  %-22s %9s %12s %18s %14s\n", "policy", "failures", "unrecovered",
                "chip-hours lost", "availability");
    for (const auto policy :
         {FailurePolicy::kRackMigration, FailurePolicy::kElectricalRepair,
          FailurePolicy::kOpticalRepair}) {
      const auto report = core::run_failure_study(policy, params);
      std::printf("  %-22s %9llu %12llu %18.3f %13.5f%%\n", name(policy),
                  static_cast<unsigned long long>(report.failures),
                  static_cast<unsigned long long>(report.unrecovered),
                  report.chip_hours_lost, 100.0 * report.availability);
    }
  }
  bench::line();
  std::printf("optical repair turns failure handling into a rounding error: the blast\n");
  std::printf("radius is one server for microseconds, not one rack for minutes.\n");
}

void BM_FailureStudy(benchmark::State& state) {
  core::FailureStudyParams params;
  params.horizon_hours = 24.0 * 7;
  params.mtbf_hours = 5000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_failure_study(core::FailurePolicy::kOpticalRepair, params));
  }
}
BENCHMARK(BM_FailureStudy);

}  // namespace

LP_BENCH_MAIN(print_report)
