// Fleet-level availability under chip failures — §4.2 compounded over a
// 4096-chip fleet and a 90-day horizon.
//
// Chips fail as a Poisson process; each failure is handled by one of the
// three recovery policies.  The report shows the per-policy chip-hours
// lost and resulting availability, and a MTBF sweep.
#include "bench/bench_common.hpp"
#include "core/failure_study.hpp"
#include "routing/repair.hpp"

namespace {

using namespace lp;
using core::FailurePolicy;

const char* name(FailurePolicy p) {
  switch (p) {
    case FailurePolicy::kRackMigration: return "rack migration [60]";
    case FailurePolicy::kElectricalRepair: return "electrical in-place";
    case FailurePolicy::kOpticalRepair: return "optical repair (ours)";
  }
  return "?";
}

void print_report(bench::JsonWriter* jw) {
  bench::header("Fleet availability: 4096 chips, 90 days, per-chip MTBF sweep");

  if (jw != nullptr) jw->key("chip_failure_sweep").begin_array();
  for (const double mtbf : {10000.0, 50000.0, 200000.0}) {
    core::FailureStudyParams params;
    params.mtbf_hours = mtbf;
    std::printf("\nMTBF %.0fk hours (expected failures: %.0f):\n", mtbf / 1000.0,
                params.fleet_chips / mtbf * params.horizon_hours);
    std::printf("  %-22s %9s %22s %18s %14s\n", "policy", "failures",
                "unrecovered(spare/plan)", "chip-hours lost", "availability");
    for (const auto policy :
         {FailurePolicy::kRackMigration, FailurePolicy::kElectricalRepair,
          FailurePolicy::kOpticalRepair}) {
      const auto report = core::run_failure_study(policy, params);
      std::printf("  %-22s %9llu %12llu (%llu/%llu) %18.3f %13.5f%%\n", name(policy),
                  static_cast<unsigned long long>(report.failures),
                  static_cast<unsigned long long>(report.unrecovered),
                  static_cast<unsigned long long>(report.unrecovered_spare_exhausted),
                  static_cast<unsigned long long>(report.unrecovered_plan_failure),
                  report.chip_hours_lost, 100.0 * report.availability);
      if (jw != nullptr) {
        jw->begin_object();
        jw->key("mtbf_hours").value(mtbf);
        jw->key("policy").value(name(policy));
        jw->key("failures").value(report.failures);
        jw->key("unrecovered").value(report.unrecovered);
        jw->key("unrecovered_spare_exhausted").value(report.unrecovered_spare_exhausted);
        jw->key("unrecovered_plan_failure").value(report.unrecovered_plan_failure);
        jw->key("chip_hours_lost").value(report.chip_hours_lost);
        jw->key("availability").value(report.availability);
        jw->end_object();
      }
    }
  }
  if (jw != nullptr) jw->end_array();
  bench::line();
  std::printf("optical repair turns failure handling into a rounding error: the blast\n");
  std::printf("radius is one server for microseconds, not one rack for minutes.\n");
}

void print_component_report(bench::JsonWriter* jw) {
  bench::header(
      "Degraded mode: component faults + repair ladder, 4096 chips, 90 days");
  std::printf("typed component faults (stuck/drifted MZIs, waveguide loss drift,\n");
  std::printf("fiber cuts, dead lasers, chip deaths; 15%% correlated per-wafer\n");
  std::printf("bursts) against a live 2-wafer fabric; each degraded circuit climbs\n");
  std::printf("the repair ladder.\n");

  if (jw != nullptr) jw->key("component_fault_sweep").begin_array();
  for (const double mtbf : {10000.0, 25000.0, 100000.0}) {
    core::ComponentStudyParams params;
    params.component_mtbf_hours = mtbf;
    const auto report = core::run_component_fault_study(params);
    if (jw != nullptr) {
      jw->begin_object();
      jw->key("component_mtbf_hours").value(mtbf);
      jw->key("fault_events").value(report.fault_events);
      jw->key("faults_injected").value(report.faults_injected);
      jw->key("degraded_circuits").value(report.degraded_circuits);
      jw->key("unrecovered").value(report.unrecovered);
      jw->key("unrecovered_transient").value(report.unrecovered_transient);
      jw->key("transient_repair_failures").value(report.transient_repair_failures);
      jw->key("recovered_by").begin_array();
      for (std::size_t k = 0; k < routing::kRepairRungCount; ++k) {
        jw->value(report.recovered_by[k]);
      }
      jw->end_array();
      jw->key("chip_hours_lost").value(report.chip_hours_lost);
      jw->key("availability").value(report.availability);
      jw->end_object();
    }
    std::printf("\ncomponent MTBF %.0fk hours:\n", mtbf / 1000.0);
    std::printf(
        "  events %llu  faults %llu  bursts %llu  degraded circuits %llu "
        "(hard down %llu)\n",
        static_cast<unsigned long long>(report.fault_events),
        static_cast<unsigned long long>(report.faults_injected),
        static_cast<unsigned long long>(report.bursts),
        static_cast<unsigned long long>(report.degraded_circuits),
        static_cast<unsigned long long>(report.hard_down_circuits));
    std::printf("  %-20s %10s %10s\n", "rung", "recovered", "attempts");
    for (std::size_t k = 0; k < routing::kRepairRungCount; ++k) {
      std::printf("  %-20s %10llu %10llu\n",
                  routing::to_string(static_cast<routing::RepairRung>(k)),
                  static_cast<unsigned long long>(report.recovered_by[k]),
                  static_cast<unsigned long long>(report.attempts[k]));
    }
    std::printf("  unrecovered %llu  chip-hours lost %.3f  availability %.5f%%\n",
                static_cast<unsigned long long>(report.unrecovered),
                report.chip_hours_lost, 100.0 * report.availability);
  }
  if (jw != nullptr) jw->end_array();
  bench::line();
  std::printf("most faults never leave the optical domain: retune/reroute/respare\n");
  std::printf("absorb them in microseconds; only endpoint-killing faults pay the\n");
  std::printf("rack-migration rung, and they set the availability floor.\n");
}

void print_transient_report(bench::JsonWriter* jw) {
  bench::header("Gray repairs: transient MZI settle failures + retry-with-backoff");
  std::printf("same component study, but each programming attempt fails\n");
  std::printf("transiently with probability p and retries after 50 us backoff\n");
  std::printf("(deterministic 50%% jitter).\n\n");
  std::printf("  %-8s %10s %12s %14s %14s\n", "p", "degraded", "transients",
              "unrec(trans)", "availability");

  if (jw != nullptr) jw->key("transient_retry_sweep").begin_array();
  for (const double p : {0.0, 0.2, 0.4}) {
    core::ComponentStudyParams params;
    params.component_mtbf_hours = 25000.0;
    params.settle_failure_probability = p;
    params.backoff.base = Duration::micros(50.0);
    params.backoff.jitter_fraction = 0.5;
    const auto report = core::run_component_fault_study(params);
    std::printf("  %-8.2f %10llu %12llu %8llu/%-5llu %13.5f%%\n", p,
                static_cast<unsigned long long>(report.degraded_circuits),
                static_cast<unsigned long long>(report.transient_repair_failures),
                static_cast<unsigned long long>(report.unrecovered_transient),
                static_cast<unsigned long long>(report.unrecovered),
                100.0 * report.availability);
    if (jw != nullptr) {
      jw->begin_object();
      jw->key("settle_failure_probability").value(p);
      jw->key("degraded_circuits").value(report.degraded_circuits);
      jw->key("transient_repair_failures").value(report.transient_repair_failures);
      jw->key("unrecovered").value(report.unrecovered);
      jw->key("unrecovered_transient").value(report.unrecovered_transient);
      jw->key("availability").value(report.availability);
      jw->end_object();
    }
  }
  if (jw != nullptr) jw->end_array();
  bench::line();
  std::printf("transient settle failures cost retries, not availability: backoff\n");
  std::printf("rides them out and the ladder still recovers the circuit.\n");
}

void print_all_reports(bool emit_json) {
  bench::JsonWriter jw;
  bench::JsonWriter* out = emit_json ? &jw : nullptr;
  if (out != nullptr) {
    jw.begin_object();
    jw.key("bench").value("availability");
  }
  print_report(out);
  print_component_report(out);
  print_transient_report(out);
  if (out != nullptr) {
    jw.end_object();
    const char* path = "BENCH_availability.json";
    std::printf("%s %s\n", jw.write_file(path) ? "wrote" : "FAILED to write", path);
  }
}

void BM_FailureStudy(benchmark::State& state) {
  core::FailureStudyParams params;
  params.horizon_hours = 24.0 * 7;
  params.mtbf_hours = 5000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_failure_study(core::FailurePolicy::kOpticalRepair, params));
  }
}
BENCHMARK(BM_FailureStudy);

void BM_ComponentFaultStudy(benchmark::State& state) {
  core::ComponentStudyParams params;
  params.horizon_hours = 24.0 * 7;
  params.component_mtbf_hours = 5000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_component_fault_study(params));
  }
}
BENCHMARK(BM_ComponentFaultStudy);

}  // namespace

LP_BENCH_MAIN_JSON(print_all_reports)
