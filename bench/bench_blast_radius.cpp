// §4.2 headline claim: server-scale photonics shrinks the blast radius of a
// single chip failure from a rack (the [60] migration policy) to the
// multi-accelerator server containing the failed chip.
//
// Sweeps the failure over every allocated chip of a realistically packed
// rack and reports, per policy: blast radius (chips), recovery time, and
// feasibility — the distribution behind the paper's argument.
#include "bench/bench_common.hpp"
#include "core/blast_radius.hpp"
#include "core/failure_study.hpp"
#include "core/photonic_rack.hpp"
#include "topo/slice.hpp"
#include "util/stats.hpp"

namespace {

using namespace lp;
using core::FailurePolicy;
using topo::Coord;
using topo::Shape;
using topo::TpuId;

struct PolicyStats {
  Summary blast;
  Summary recovery_s;
  int feasible = 0;
  int total = 0;
};

void run_policy(FailurePolicy policy, PolicyStats& stats) {
  // The batch sweep restores the template world between victims, so
  // failures do not compound.  y in {2,3} at z=3 stays free: the spare pool.
  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  core::pack_template_rack(alloc);
  std::vector<TpuId> victims;
  for (TpuId victim = 0; victim < 48; victim += 3) {
    if (alloc.owner(victim)) victims.push_back(victim);  // inside a slice
  }
  const auto impacts = core::assess_failures_batch(policy, victims);
  for (const auto& impact : impacts) {
    ++stats.total;
    if (impact.feasible) ++stats.feasible;
    stats.blast.add(impact.blast_radius_chips);
    stats.recovery_s.add(impact.recovery_time.to_seconds());
  }
}

void print_report() {
  bench::header("Blast radius of a single chip failure (sweep over victims)");

  struct Row {
    const char* name;
    FailurePolicy policy;
  };
  const Row rows[] = {
      {"rack migration [60]", FailurePolicy::kRackMigration},
      {"electrical in-place", FailurePolicy::kElectricalRepair},
      {"optical repair (ours)", FailurePolicy::kOpticalRepair},
  };

  std::printf("  %-22s %9s %14s %16s %12s\n", "policy", "feasible", "blast (chips)",
              "mean recovery", "max recovery");
  for (const Row& row : rows) {
    PolicyStats stats;
    run_policy(row.policy, stats);
    std::printf("  %-22s %4d/%-4d %8.1f (max %2.0f) %14s %14s\n", row.name,
                stats.feasible, stats.total, stats.blast.mean(), stats.blast.max(),
                bench::fmt_time(stats.recovery_s.mean()).c_str(),
                bench::fmt_time(stats.recovery_s.max()).c_str());
  }
  bench::line();
  std::printf("paper: blast radius rack (64 chips) -> server (4 chips); recovery\n");
  std::printf("       minutes of migration -> microseconds of MZI programming.\n");
}

void BM_AssessFailureOptical(benchmark::State& state) {
  for (auto _ : state) {
    topo::TpuCluster cluster;
    topo::SliceAllocator alloc{cluster};
    (void)alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}});
    (void)alloc.allocate_at(0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}});
    (void)alloc.allocate_at(0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}});
    core::PhotonicRack rack{cluster, 0};
    benchmark::DoNotOptimize(core::assess_failure(
        cluster, alloc, 20, core::FailurePolicy::kOpticalRepair, {}, &rack));
  }
}
BENCHMARK(BM_AssessFailureOptical);

// The batch API amortizes world construction across victims and assesses
// them through per-worker reusable workspaces — the per-victim cost is what
// the Monte-Carlo availability study pays per distinct victim.
void BM_AssessFailureBatch(benchmark::State& state) {
  std::vector<TpuId> victims;
  {
    topo::TpuCluster cluster;
    topo::SliceAllocator alloc{cluster};
    core::pack_template_rack(alloc);
    victims = cluster.chips_in_state(topo::ChipState::kAllocated);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::assess_failures_batch(core::FailurePolicy::kOpticalRepair, victims));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(victims.size()));
}
BENCHMARK(BM_AssessFailureBatch);

}  // namespace

LP_BENCH_MAIN(print_report)
