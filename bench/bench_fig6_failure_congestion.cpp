// Figure 6: replacing a failed chip over the electrical torus causes
// congestion.
//
// 6a (single rack): a failed TPU in Slice-3 has ring neighbors that must
// reach a free chip; some can ("reaching any free chip from TPU 5 ... is
// straightforward"), some cannot ("doing the same from TPU 9 without
// congestion is impossible").  We enumerate every (neighbor, spare) pair
// and report which have congestion-free paths.
//
// 6b (multi-rack): with no free chips in the failed rack, the replacement
// must sit in another rack; the only escape dimension's links are already
// used by the other rack's slices, so every path congests.  We model the
// cross-rack case by walling the failed slice in with allocated slices and
// verifying infeasibility, then quantify the slowdown a congested repair
// would suffer using the flow simulator.
#include "bench/bench_common.hpp"
#include "collective/congestion.hpp"
#include "collective/schedule.hpp"
#include "core/blast_radius.hpp"
#include "topo/multirack.hpp"
#include "sim/flow_sim.hpp"
#include "topo/slice.hpp"
#include "util/parallel.hpp"

namespace {

using namespace lp;
using topo::Coord;
using topo::Shape;
using topo::TpuId;

void print_report() {
  bench::header("Figure 6a: intra-rack replacement congestion");

  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  // Figure-6a style packing: Slice-4 (4x4x2), Slice-3 (4x4x1), Slice-1
  // (4x2x1); the remaining 4x2x1 region at y in {2,3}, z=3 stays free.
  (void)alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}});
  const auto s3 = alloc.allocate_at(0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}});
  (void)alloc.allocate_at(0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}});

  const TpuId failed = cluster.chip_at(0, Coord{{1, 1, 2}});
  cluster.set_state(failed, topo::ChipState::kFailed);
  const auto neighbors =
      core::broken_ring_neighbors(cluster, *alloc.slice(s3.value()), failed);
  const auto spares = cluster.free_chips_in_rack(0);
  std::printf("failed chip (1,1,2) in Slice-3; %zu broken-ring neighbors, %zu spares\n\n",
              neighbors.size(), spares.size());

  const auto analysis =
      coll::analyze_rack(cluster, alloc, 0, coll::RingSelection::kUsableOnly);
  coll::LinkLoad busy{cluster.directed_link_count()};
  for (const auto& st : analysis.per_slice) busy.add_all(st.links);

  std::printf("  neighbor     reachable spares (congestion-free)\n");
  for (TpuId nb : neighbors) {
    // The (neighbor, spare) pairs are independent BFS probes: sweep the
    // spares in parallel and fold the counts in spare order.
    const int reachable = util::parallel_reduce(
        spares.size(), 0,
        [&](std::size_t i) {
          return coll::find_uncongested_path(cluster, alloc, busy, nb, spares[i])
                     ? 1
                     : 0;
        },
        [](int acc, int hit) { return acc + hit; });
    const Coord c = cluster.coord_of(nb);
    std::printf("  (%d,%d,%d)      %d / %zu%s\n", c[0], c[1], c[2], reachable,
                spares.size(), reachable == 0 ? "   <-- impossible, as in the paper" : "");
  }
  const auto attempt = core::attempt_electrical_repair(cluster, alloc, failed);
  std::printf("\nfull in-place electrical repair feasible: %s   <-- paper: no\n",
              attempt.feasible ? "yes" : "no");

  bench::header("Figure 6b: cross-rack replacement congestion (joined torus)");
  // Two racks joined along Z through the face OCSes into a 4x4x8 torus.
  // Rack 1 (z 0..3) is fully allocated, including the victim Slice-2
  // (2x4x1, 8 TPUs); rack 2 (z 4..7) holds Slice-1 (2x4x4) and another
  // tenant, leaving 4 free chips.  The victim's only escape is the joined
  // Z dimension into rack 2, where Slice-1's rings already occupy the
  // dimension the path needs — the purple line of the figure.
  topo::OcsBank bank;
  auto joined = topo::JoinedTorus::join(topo::ClusterConfig{}, 2, 2, bank);
  if (!joined.ok()) {
    std::printf("join failed: %s\n", joined.error().message.c_str());
    return;
  }
  auto& cluster2 = joined.value().cluster();
  topo::SliceAllocator alloc2{cluster2};
  (void)alloc2.allocate_at(0, Coord{{0, 0, 0}}, Shape{{2, 4, 1}});  // Slice-2
  (void)alloc2.allocate_at(0, Coord{{2, 0, 0}}, Shape{{2, 4, 1}});
  (void)alloc2.allocate_at(0, Coord{{0, 0, 1}}, Shape{{4, 4, 3}});  // rest of rack 1
  (void)alloc2.allocate_at(0, Coord{{0, 0, 4}}, Shape{{2, 4, 4}});  // Slice-1 rack 2
  (void)alloc2.allocate_at(0, Coord{{2, 0, 4}}, Shape{{2, 4, 3}});
  (void)alloc2.allocate_at(0, Coord{{2, 0, 7}}, Shape{{2, 2, 1}});
  std::printf("joined 4x4x8 torus via %u OCS ports (%.0f ms reconfiguration)\n",
              joined.value().ocs_ports_used(),
              joined.value().join_latency().to_millis());
  std::printf("free chips in rack 2: %zu\n",
              cluster2.chips_in_state(topo::ChipState::kFree).size());

  const TpuId failed2 = cluster2.chip_at(0, Coord{{1, 1, 0}});  // in Slice-2
  cluster2.set_state(failed2, topo::ChipState::kFailed);
  const auto attempt2 = core::attempt_electrical_repair(cluster2, alloc2, failed2);
  std::printf("cross-rack electrical repair feasible: %s   <-- paper: no\n",
              attempt2.feasible ? "yes" : "no");
  std::printf("=> every path to rack 2's spares transits allocated chips or rides the\n");
  std::printf("   Y-dimension links Slice-1's rings occupy; the operator's only\n");
  std::printf("   electrical option is rack-granularity migration.\n");

  // Quantify: a repair flow forced to share one ring link halves its rate.
  bench::line();
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  coll::Transfer ring_step;
  ring_step.src = 0;
  ring_step.dst = 1;
  ring_step.bytes = DataSize::mib(32);
  ring_step.route = {topo::DirectedLink{0, 0, +1}};
  coll::Transfer repair = ring_step;  // same link: the congested repair
  const auto contended = fsim.run_phase({ring_step, repair});
  const auto clean = fsim.run_phase({ring_step});
  std::printf("congested repair slowdown on a shared link: %.2fx (ring step %s -> %s)\n",
              contended.duration / clean.duration,
              bench::fmt_time(clean.duration.to_seconds()).c_str(),
              bench::fmt_time(contended.duration.to_seconds()).c_str());
}

void BM_RepairSearch(benchmark::State& state) {
  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  (void)alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}});
  const auto s3 = alloc.allocate_at(0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}});
  (void)s3;
  (void)alloc.allocate_at(0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}});
  const TpuId failed = cluster.chip_at(0, Coord{{1, 1, 2}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::attempt_electrical_repair(cluster, alloc, failed));
  }
}
BENCHMARK(BM_RepairSearch);

void BM_UncongestedPathBfs(benchmark::State& state) {
  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  coll::LinkLoad busy{cluster.directed_link_count()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll::find_uncongested_path(cluster, alloc, busy, 0, 63));
  }
}
BENCHMARK(BM_UncongestedPathBfs);

}  // namespace

LP_BENCH_MAIN(print_report)
