// §5 challenge workload: Mixture-of-Experts inference all-to-all.
//
// MoE's runtime gating function produces dynamic, skewed all-to-all traffic
// that must re-program circuits every round.  We generate gated demand
// matrices, run them through the rotation schedule on the electrical torus
// (dimension-ordered routes, contention) and on the photonic fabric
// (fresh circuits per round, r per round), and report makespans plus the
// share lost to reconfiguration.
#include "bench/bench_common.hpp"
#include "collective/alltoall.hpp"
#include "sim/flow_sim.hpp"
#include "topo/slice.hpp"
#include "util/rng.hpp"

namespace {

using namespace lp;
using coll::Interconnect;

void print_report() {
  bench::header("MoE inference all-to-all: electrical vs optical");
  topo::TpuCluster cluster;
  const topo::Slice slice{0, 0, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 4, 1}}};
  coll::CostParams params;
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  Rng rng{321};

  std::printf("16 chips, 2 experts/token, 16 KiB/token\n\n");
  std::printf("  tokens/chip   traffic     elec makespan  peak load  opt makespan  reconfig share\n");
  for (std::size_t tokens : {64u, 512u, 4096u, 32768u}) {
    const auto demand =
        coll::moe_gating_demand(16, tokens, 2, DataSize::kib(16), rng);
    DataSize total = DataSize::zero();
    for (std::size_t s = 0; s < 16; ++s) {
      for (std::size_t d = 0; d < 16; ++d) total += demand.at(s, d);
    }
    const auto elec = fsim.run(coll::build_all_to_all_schedule(
        cluster, slice, demand, Interconnect::kElectrical, params));
    const auto opt = fsim.run(coll::build_all_to_all_schedule(
        cluster, slice, demand, Interconnect::kOptical, params));
    std::printf("  %11zu   %9s   %13s  %9u  %12s  %13.1f%%\n", tokens,
                bench::fmt_bytes(total.to_bytes()).c_str(),
                bench::fmt_time(elec.total.to_seconds()).c_str(), elec.peak_link_load,
                bench::fmt_time(opt.total.to_seconds()).c_str(),
                100.0 * opt.reconfig_time.to_seconds() / opt.total.to_seconds());
  }
  bench::line();
  std::printf("electrical all-to-all contends (peak link load > 1); optical rounds are\n");
  std::printf("contention-free but pay r = 3.7 us per round — negligible once the gated\n");
  std::printf("traffic exceeds a few MiB, dominant below (the trade-off §5 highlights).\n");

  // Uniform all-to-all for reference.
  const auto uniform = coll::uniform_all_to_all(16, DataSize::mib(64));
  const auto elec_u = fsim.run(coll::build_all_to_all_schedule(
      cluster, slice, uniform, Interconnect::kElectrical, params));
  const auto opt_u = fsim.run(coll::build_all_to_all_schedule(
      cluster, slice, uniform, Interconnect::kOptical, params));
  std::printf("\nuniform 64 MiB all-to-all: elec %s vs optics %s (%.2fx)\n",
              bench::fmt_time(elec_u.total.to_seconds()).c_str(),
              bench::fmt_time(opt_u.total.to_seconds()).c_str(),
              elec_u.total / opt_u.total);

  // Tail of per-round optical makespans across gating draws: gating skew
  // makes rounds unequal, and a serving deployment provisions for the
  // quantiles, not the mean (same tail helper as bench_serving).
  std::vector<double> makespans;
  makespans.reserve(64);
  for (int i = 0; i < 64; ++i) {
    const auto gated =
        coll::moe_gating_demand(16, 512, 2, DataSize::kib(16), rng);
    makespans.push_back(
        fsim.run(coll::build_all_to_all_schedule(cluster, slice, gated,
                                                 Interconnect::kOptical, params))
            .total.to_seconds());
  }
  std::printf("gated optical round makespan over 64 draws (512 tok/chip): %s\n",
              bench::fmt_tail(bench::tail_of(makespans)).c_str());
}

void BM_MoeDemandGen(benchmark::State& state) {
  Rng rng{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll::moe_gating_demand(16, static_cast<std::size_t>(state.range(0)), 2,
                                DataSize::kib(16), rng));
  }
}
BENCHMARK(BM_MoeDemandGen)->Arg(512)->Arg(4096);

void BM_AllToAllSchedule(benchmark::State& state) {
  topo::TpuCluster cluster;
  const topo::Slice slice{0, 0, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 4, 1}}};
  const coll::CostParams params;
  const auto demand = coll::uniform_all_to_all(16, DataSize::mib(64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll::build_all_to_all_schedule(
        cluster, slice, demand, Interconnect::kElectrical, params));
  }
}
BENCHMARK(BM_AllToAllSchedule);

void BM_FlowSimAllToAll(benchmark::State& state) {
  topo::TpuCluster cluster;
  const topo::Slice slice{0, 0, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 4, 1}}};
  const coll::CostParams params;
  const auto demand = coll::uniform_all_to_all(16, DataSize::mib(64));
  const auto schedule = coll::build_all_to_all_schedule(cluster, slice, demand,
                                                        Interconnect::kElectrical, params);
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  for (auto _ : state) benchmark::DoNotOptimize(fsim.run(schedule));
}
BENCHMARK(BM_FlowSimAllToAll);

}  // namespace

LP_BENCH_MAIN(print_report)
