// Training-run resilience: goodput under faults, photonic recovery vs
// rack-granularity electrical migration.
//
// The availability bench (bench_availability) prices fleet-level chip-hours;
// this one asks the job-level question the runtime layer exists for: when a
// component fault strikes a training run mid-iteration, how much goodput
// does each recovery policy preserve?  The sweep drives runtime::TrainingRun
// over a range of (accelerated) per-chip MTBFs with both policies facing
// identical fault timelines; the demo kills a chip mid-collective with the
// spare pool exhausted and shows the elastic-shrink path keeping the job
// alive, degraded, instead of paying a 600 s migration.
//
// --json additionally writes BENCH_training_resilience.json.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "runtime/recovery.hpp"
#include "runtime/training_run.hpp"

namespace {

using namespace lp;

runtime::ResilienceSweepConfig sweep_config() {
  runtime::ResilienceSweepConfig config;
  // Long enough runs at low enough (accelerated) MTBF that every sweep point
  // sees faults — a fault-free point degenerates to a goodput tie at 1.0 and
  // compares nothing.
  config.base.iterations = 1200;
  config.mtbf_points = {0.1, 0.2, 0.4, 0.7, 1.0};
  config.trials = 4;
  return config;
}

void print_sweep(bench::JsonWriter* jw) {
  const auto config = sweep_config();
  bench::header("Goodput vs per-chip MTBF (accelerated), photonic vs migration");
  std::printf("56-chip ring across 2 wafers, %u iterations/run, %u trials/point;\n",
              config.base.iterations, config.trials);
  std::printf("both policies of a trial face the identical fault timeline.\n\n");
  std::printf("  %-12s %-22s %9s %9s %9s %8s %8s %8s\n", "MTBF (h)", "policy",
              "goodput", "min", "max", "detect", "shrink", "migrate");

  const auto report = runtime::run_resilience_sweep(config);
  if (jw != nullptr) jw->key("sweep").begin_array();
  for (const runtime::MtbfPointReport& pt : report.points) {
    std::printf("  %-12.2f %-22s %9.5f %9.5f %9.5f %8llu %8llu %8llu\n",
                pt.mtbf_hours, runtime::to_string(pt.policy), pt.goodput_mean,
                pt.goodput_min, pt.goodput_max,
                static_cast<unsigned long long>(pt.detections),
                static_cast<unsigned long long>(pt.elastic_shrinks),
                static_cast<unsigned long long>(pt.migrations));
    if (jw != nullptr) {
      jw->begin_object();
      jw->key("mtbf_hours").value(pt.mtbf_hours);
      jw->key("policy").value(runtime::to_string(pt.policy));
      jw->key("goodput_mean").value(pt.goodput_mean);
      jw->key("goodput_min").value(pt.goodput_min);
      jw->key("goodput_max").value(pt.goodput_max);
      jw->key("lost_redo_seconds").value(pt.lost_redo_seconds);
      jw->key("lost_detection_seconds").value(pt.lost_detection_seconds);
      jw->key("lost_recovery_seconds").value(pt.lost_recovery_seconds);
      jw->key("recover_p50_seconds").value(pt.recover_p50_seconds);
      jw->key("recover_p99_seconds").value(pt.recover_p99_seconds);
      jw->key("fault_events").value(pt.fault_events);
      jw->key("detections").value(pt.detections);
      jw->key("rollbacks").value(pt.rollbacks);
      jw->key("elastic_shrinks").value(pt.elastic_shrinks);
      jw->key("migrations").value(pt.migrations);
      jw->key("transient_repair_failures").value(pt.transient_repair_failures);
      jw->key("suppressed_repairs").value(pt.suppressed_repairs);
      jw->key("quarantines").value(pt.quarantines);
      jw->key("recovered_by").begin_array();
      for (const std::uint64_t n : pt.recovered_by) jw->value(n);
      jw->end_array();
      jw->end_object();
    }
  }
  if (jw != nullptr) jw->end_array();

  // The acceptance check, printed so a regression is visible in the log:
  // photonic recovery must sustain strictly higher goodput at every point.
  bool photonic_wins = true;
  for (std::size_t i = 0; i + 1 < report.points.size(); i += 2) {
    if (report.points[i].goodput_mean <= report.points[i + 1].goodput_mean) {
      photonic_wins = false;
    }
  }
  bench::line();
  std::printf("photonic recovery strictly above migration at every MTBF: %s\n",
              photonic_wins ? "yes" : "NO (regression!)");
  if (jw != nullptr) jw->key("photonic_strictly_higher").value(photonic_wins);
}

void print_shrink_demo(bench::JsonWriter* jw) {
  bench::header("Mid-collective chip death with the spare pool exhausted");
  runtime::RunConfig config;
  config.iterations = 200;
  config.ring_tiles_per_wafer = 32;  // every tile enrolled: nothing to respare onto
  config.script = {{config.iteration.compute_per_bucket,
                    {{.kind = fault::FaultKind::kChipDeath, .tile = {0, 0}}}}};
  runtime::TrainingRun run{config};
  const runtime::RunReport report = run.run();
  std::printf("ring %u -> %u chips, %llu elastic shrink(s), %llu migration(s)\n",
              report.ring_size_initial, report.ring_size_final,
              static_cast<unsigned long long>(report.elastic_shrinks),
              static_cast<unsigned long long>(report.migrations));
  std::printf("iterations completed: %u/%u  goodput %.5f  recover %s\n",
              report.iterations_completed, config.iterations, report.goodput(),
              report.recover_seconds.empty()
                  ? "-"
                  : bench::fmt_time(report.recover_seconds.front()).c_str());
  bench::line();
  std::printf("no spare, no migration: the ring sheds the dead chip, bridges the\n");
  std::printf("gap, and finishes every iteration at reduced bandwidth.\n");
  if (jw != nullptr) {
    jw->key("shrink_demo").begin_object();
    jw->key("ring_size_initial").value(static_cast<std::uint64_t>(report.ring_size_initial));
    jw->key("ring_size_final").value(static_cast<std::uint64_t>(report.ring_size_final));
    jw->key("elastic_shrinks").value(report.elastic_shrinks);
    jw->key("migrations").value(report.migrations);
    jw->key("mid_collective_faults").value(report.mid_collective_faults);
    jw->key("iterations_completed").value(static_cast<std::uint64_t>(report.iterations_completed));
    jw->key("goodput").value(report.goodput());
    jw->end_object();
  }
}

void print_all(bool emit_json) {
  bench::JsonWriter jw;
  bench::JsonWriter* out = emit_json ? &jw : nullptr;
  if (out != nullptr) {
    jw.begin_object();
    jw.key("bench").value("training_resilience");
  }
  print_sweep(out);
  print_shrink_demo(out);
  if (out != nullptr) {
    jw.end_object();
    const char* path = "BENCH_training_resilience.json";
    std::printf("%s %s\n", jw.write_file(path) ? "wrote" : "FAILED to write", path);
  }
}

void BM_TrainingRunScriptedChipDeath(benchmark::State& state) {
  runtime::RunConfig config;
  config.iterations = 50;
  config.script = {{Duration::millis(10.5),
                    {{.kind = fault::FaultKind::kChipDeath, .tile = {0, 5}}}}};
  for (auto _ : state) {
    runtime::TrainingRun run{config};
    benchmark::DoNotOptimize(run.run());
  }
}
BENCHMARK(BM_TrainingRunScriptedChipDeath);

void BM_ResilienceSweepPoint(benchmark::State& state) {
  runtime::ResilienceSweepConfig config;
  config.base.iterations = 50;
  config.mtbf_points = {0.5};
  config.trials = 2;
  config.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::run_resilience_sweep(config));
  }
}
BENCHMARK(BM_ResilienceSweepPoint);

}  // namespace

LP_BENCH_MAIN_JSON(print_all)
