// Cluster-scale multi-tenant resilience: accepted load under fault churn,
// photonic slice morphing vs electrical-only rack-granularity migration.
//
// bench_training_resilience asks the job-level question (one run, one
// fault); this bench asks the cluster-level one: with a Poisson stream of
// heterogeneous slice jobs arriving while chips, servers, and rack power
// domains fail continuously, how much of the offered work does each fabric
// accept?  The photonic policy composes the full recovery escalation —
// in-place optical repair, spare-pool respare, slice morphing across
// non-contiguous racks, elastic shrink — while the electrical baseline is
// limited to draining and re-placing whole contiguous slices (§4.2's
// blast-radius argument at cluster scale).
//
// --json additionally writes BENCH_cluster_scheduler.json.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/scheduler.hpp"

namespace {

using namespace lp;

cluster::ClusterSweepConfig sweep_config() {
  cluster::ClusterSweepConfig config;
  // 16 racks (1024 chips), oversubscribed: ~4 slice jobs/s against a
  // 90 s mean service demand keeps a queue standing, so every chip-second
  // lost to recovery is work the cluster turns away.  MTBFs are
  // accelerated, as in the training-resilience sweep.
  config.base.cluster.racks = 16;
  config.base.arrival_rate_per_s = 4.0;
  config.base.horizon = Duration::seconds(120.0);
  config.base.drain = Duration::seconds(240.0);
  config.base.service_mean = Duration::seconds(90.0);
  config.base.fabric_wafers = 4;
  config.mtbf_points = {0.5, 1.0, 2.0, 4.0, 8.0};
  config.trials = 2;
  return config;
}

void emit_point(bench::JsonWriter* jw, const cluster::ClusterPointReport& pt) {
  if (jw == nullptr) return;
  jw->begin_object();
  jw->key("mtbf_hours").value(pt.mtbf_hours);
  jw->key("policy").value(cluster::to_string(pt.policy));
  jw->key("accepted_load_mean").value(pt.accepted_load_mean);
  jw->key("goodput_mean").value(pt.goodput_mean);
  jw->key("queue_delay_p50_s").value(pt.queue_delay_p50_s);
  jw->key("queue_delay_p99_s").value(pt.queue_delay_p99_s);
  jw->key("frag_stranding_avg").value(pt.frag_stranding_avg);
  jw->key("utilization_avg").value(pt.utilization_avg);
  jw->key("completed").value(pt.completed);
  jw->key("offered").value(pt.offered);
  jw->key("requeues").value(pt.requeues);
  jw->key("aborted").value(pt.aborted);
  jw->key("morphs").value(pt.morphs);
  jw->key("elastic_shrinks").value(pt.elastic_shrinks);
  jw->key("migrations").value(pt.migrations);
  jw->key("fault_events").value(pt.fault_events);
  jw->end_object();
}

void print_sweep(bench::JsonWriter* jw) {
  const auto config = sweep_config();
  bench::header("Accepted load vs per-chip MTBF (accelerated), morphing vs electrical");
  std::printf("%d racks (%d chips), %.1f jobs/s offered, %u trials/point;\n",
              config.base.cluster.racks, config.base.cluster.racks * 64,
              config.base.arrival_rate_per_s, config.trials);
  std::printf("both policies of a trial face identical arrival and fault streams.\n\n");
  std::printf("  %-9s %-16s %9s %9s %8s %8s %7s %7s %7s\n", "MTBF (h)", "policy",
              "accepted", "goodput", "q p99", "strand", "morphs", "shrink",
              "migrate");

  const cluster::ClusterSweepReport report = cluster::run_cluster_sweep(config);
  if (jw != nullptr) jw->key("sweep").begin_array();
  for (const cluster::ClusterPointReport& pt : report.points) {
    std::printf("  %-9.1f %-16s %9.4f %9.4f %7.1fs %8.4f %7llu %7llu %7llu\n",
                pt.mtbf_hours, cluster::to_string(pt.policy),
                pt.accepted_load_mean, pt.goodput_mean, pt.queue_delay_p99_s,
                pt.frag_stranding_avg, static_cast<unsigned long long>(pt.morphs),
                static_cast<unsigned long long>(pt.elastic_shrinks),
                static_cast<unsigned long long>(pt.migrations));
    emit_point(jw, pt);
  }
  if (jw != nullptr) jw->end_array();

  // The acceptance check, printed so a regression is visible in the log:
  // the photonic policy must accept strictly more load at every MTBF point.
  bool photonic_wins = true;
  for (std::size_t i = 0; i + 1 < report.points.size(); i += 2) {
    if (report.points[i].accepted_load_mean <=
        report.points[i + 1].accepted_load_mean) {
      photonic_wins = false;
    }
  }
  bench::line();
  std::printf("photonic morphing strictly above electrical at every MTBF: %s\n",
              photonic_wins ? "yes" : "NO (regression!)");
  if (jw != nullptr) jw->key("photonic_strictly_higher").value(photonic_wins);

  // Determinism spot check: the sweep digest must not depend on the worker
  // count (the full 1/2/8 matrix runs in cluster_test; here one rerun at a
  // different thread count guards the release binary).
  cluster::ClusterSweepConfig redo = config;
  redo.threads = 2;
  const std::uint64_t redo_digest = cluster::run_cluster_sweep(redo).digest;
  std::printf("sweep digest %016llx, thread-count invariant: %s\n",
              static_cast<unsigned long long>(report.digest),
              redo_digest == report.digest ? "yes" : "NO (regression!)");
  if (jw != nullptr) {
    jw->key("digest").value(report.digest);
    jw->key("thread_invariant").value(redo_digest == report.digest);
  }
}

void print_morph_demo(bench::JsonWriter* jw) {
  bench::header("Server-tray death with the rack's spare pool exhausted");
  cluster::ClusterParams params;
  params.cluster.racks = 2;
  params.horizon = Duration::seconds(5.0);
  params.drain = Duration::seconds(600.0);
  params.fabric_wafers = 2;
  params.job_script = {
      {Duration::seconds(0.1), topo::Shape{{4, 4, 4}}, Duration::seconds(20.0)},
      {Duration::seconds(0.2), topo::Shape{{2, 2, 1}}, Duration::seconds(5.0)},
  };
  params.script = {{Duration::seconds(1.0), cluster::FaultDomain::kServer, 0,
                    fault::FaultKind::kChipDeath, 1}};
  const cluster::ClusterReport report = cluster::run_cluster(params);
  std::printf("rack-filling job loses a 4-chip server; rack 0 has no spares.\n");
  std::printf("morphs %llu, shrinks %llu, requeues %llu; %llu/%llu jobs "
              "completed, %.3f s lost\n",
              static_cast<unsigned long long>(report.morphs),
              static_cast<unsigned long long>(report.elastic_shrinks),
              static_cast<unsigned long long>(report.requeues),
              static_cast<unsigned long long>(report.completed),
              static_cast<unsigned long long>(report.offered),
              report.lost.total().to_seconds());
  bench::line();
  std::printf("the slice re-stitches across rack 1's free chips over optical\n");
  std::printf("circuits instead of shrinking or draining: no work is turned away.\n");
  if (jw != nullptr) {
    jw->key("morph_demo").begin_object();
    jw->key("morphs").value(report.morphs);
    jw->key("elastic_shrinks").value(report.elastic_shrinks);
    jw->key("requeues").value(report.requeues);
    jw->key("completed").value(report.completed);
    jw->key("offered").value(report.offered);
    jw->key("lost_seconds").value(report.lost.total().to_seconds());
    jw->end_object();
  }
}

void print_all(bool emit_json) {
  bench::JsonWriter jw;
  bench::JsonWriter* out = emit_json ? &jw : nullptr;
  if (out != nullptr) {
    jw.begin_object();
    jw.key("bench").value("cluster_scheduler");
  }
  print_sweep(out);
  print_morph_demo(out);
  if (out != nullptr) {
    jw.end_object();
    const char* path = "BENCH_cluster_scheduler.json";
    std::printf("%s %s\n", jw.write_file(path) ? "wrote" : "FAILED to write", path);
  }
}

void BM_ClusterRunFaultChurn(benchmark::State& state) {
  cluster::ClusterParams params;
  params.cluster.racks = 4;
  params.horizon = Duration::seconds(30.0);
  params.drain = Duration::seconds(60.0);
  params.mtbf_hours = 0.5;
  params.fabric_wafers = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::run_cluster(params));
  }
}
BENCHMARK(BM_ClusterRunFaultChurn);

void BM_ClusterSweepPoint(benchmark::State& state) {
  cluster::ClusterSweepConfig config;
  config.base.cluster.racks = 2;
  config.base.horizon = Duration::seconds(15.0);
  config.base.drain = Duration::seconds(30.0);
  config.base.fabric_wafers = 2;
  config.mtbf_points = {1.0};
  config.trials = 1;
  config.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::run_cluster_sweep(config));
  }
}
BENCHMARK(BM_ClusterSweepPoint);

void BM_ScriptedMorph(benchmark::State& state) {
  cluster::ClusterParams params;
  params.cluster.racks = 2;
  params.horizon = Duration::seconds(5.0);
  params.drain = Duration::seconds(600.0);
  params.fabric_wafers = 2;
  params.job_script = {
      {Duration::seconds(0.1), topo::Shape{{4, 4, 4}}, Duration::seconds(20.0)}};
  params.script = {{Duration::seconds(1.0), cluster::FaultDomain::kServer, 0,
                    fault::FaultKind::kChipDeath, 1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::run_cluster(params));
  }
}
BENCHMARK(BM_ScriptedMorph);

}  // namespace

LP_BENCH_MAIN_JSON(print_all)
