// Figure 3a: Mach-Zehnder router switch time response.
//
// The paper drives an MZI on the prototype and captures the normalized
// output amplitude on a scope, fitting an exponential and reporting that
// switches reconfigure within 3.7 us.  We regenerate the trace from the
// thermo-optic model, perform the same exponential fit, and report the
// fitted tau, the 10-90% rise time, and the settle-to-2.5% latency.
#include <vector>

#include "bench/bench_common.hpp"
#include "lightpath/reconfig.hpp"
#include "phys/mzi.hpp"
#include "util/stats.hpp"

namespace {

using namespace lp;

void print_report() {
  bench::header("Figure 3a: MZI switch time response");

  phys::Mzi mzi;
  const TimePoint t0;
  mzi.program(phys::MziPort::kCross, t0);

  // Scope capture: 0..10 us at 20 ns resolution, like the paper's trace.
  std::vector<double> ts, ys;
  for (double t = 0.0; t <= 10e-6; t += 20e-9) {
    ts.push_back(t);
    ys.push_back(mzi.selected_power_at(t0 + Duration::seconds(t)));
  }
  std::printf("trace: %zu samples over 10 us (normalized amplitude)\n", ts.size());

  // Downsampled ASCII rendition of the transient.
  std::printf("  t (us)  amplitude\n");
  for (double us : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.7, 5.0, 8.0}) {
    const double a =
        mzi.selected_power_at(t0 + Duration::micros(us));
    const int bar = static_cast<int>(a * 40);
    std::printf("  %5.1f   %5.3f |%s\n", us, a, std::string(static_cast<std::size_t>(bar), '#').c_str());
  }

  // The paper's fit: amplitude residual decays exponentially.
  std::vector<double> inv;
  inv.reserve(ys.size());
  for (double y : ys) inv.push_back(1.0 - y);
  const auto fit = fit_exponential_approach(ts, inv);
  bench::line();
  if (fit) {
    std::printf("exponential fit: tau = %.3f us (r^2 = %.4f)\n", fit->tau * 1e6,
                fit->r_squared);
  }
  std::printf("10-90%% rise time:        %s\n",
              bench::fmt_time(mzi.rise_time_10_90().to_seconds()).c_str());
  std::printf("settle to within 2.5%%:   %s   <-- paper: 3.7 us\n",
              bench::fmt_time(mzi.settling_time().to_seconds()).c_str());

  fabric::ReconfigController ctl;
  std::printf("reconfig batch of 1 MZI:  %s\n",
              bench::fmt_time(ctl.batch_latency(1).to_seconds()).c_str());
  std::printf("reconfig batch of 64 MZI: %s (serial program + parallel settle)\n",
              bench::fmt_time(ctl.batch_latency(64).to_seconds()).c_str());
}

void BM_MziSample(benchmark::State& state) {
  phys::Mzi mzi;
  mzi.program(phys::MziPort::kCross, TimePoint{});
  double t = 0.0;
  for (auto _ : state) {
    t += 1e-9;
    benchmark::DoNotOptimize(
        mzi.selected_power_at(TimePoint::at_seconds(t)));
  }
}
BENCHMARK(BM_MziSample);

void BM_BatchLatency(benchmark::State& state) {
  fabric::ReconfigController ctl;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctl.batch_latency(static_cast<unsigned>(state.range(0))));
  }
}
BENCHMARK(BM_BatchLatency)->Arg(1)->Arg(64)->Arg(1024);

}  // namespace

LP_BENCH_MAIN(print_report)
