// Table 1: REDUCESCATTER costs of Slice-1 (4x2x1, p=8).
//
//   Elec alpha: 7a        Optics alpha: 7a + r
//   Elec beta:  N(p-1)/p * 3/B        Optics beta: N(p-1)/p * 1/B
//
// "Electrical interconnects induce 3x the beta cost due to their inability
// to fully utilize bandwidth in all dimensions."
//
// We print the analytic table, validate it against the flow-level
// simulator, and sweep N to locate the crossover where the optical r
// overhead is amortized — the ablation DESIGN.md calls out.
#include "bench/bench_common.hpp"
#include "collective/cost_model.hpp"
#include "collective/schedule.hpp"
#include "sim/flow_sim.hpp"
#include "topo/slice.hpp"

namespace {

using namespace lp;
using coll::Interconnect;

const topo::Shape kRack{{4, 4, 4}};
const topo::Slice kSlice1{0, 0, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}}};

void print_report() {
  bench::header("Table 1: ReduceScatter costs of Slice-1 (4x2x1, p = 8)");

  const auto plan = coll::build_plan(kSlice1, kRack);
  coll::CostParams params;  // B = 300 GB/s, alpha = 1 us, r = 3.7 us
  const DataSize n = DataSize::mib(256);

  const auto elec = coll::reduce_scatter_cost(plan, n, Interconnect::kElectrical, params);
  const auto opt = coll::reduce_scatter_cost(plan, n, Interconnect::kOptical, params);

  std::printf("N = %s, B = %.0f GB/s, alpha = %s, r = %s\n",
              bench::fmt_bytes(n.to_bytes()).c_str(), params.chip_bandwidth.to_gBps(),
              bench::fmt_time(params.alpha.to_seconds()).c_str(),
              bench::fmt_time(params.reconfig.to_seconds()).c_str());
  std::printf("\n              alpha cost         beta cost        total\n");
  std::printf("  electrical  %2d x a             %-12s     %s\n", elec.alpha_steps,
              bench::fmt_time(elec.beta_time.to_seconds()).c_str(),
              bench::fmt_time(elec.total(params).to_seconds()).c_str());
  std::printf("  optical     %2d x a + %d x r     %-12s     %s\n", opt.alpha_steps,
              opt.reconfigs, bench::fmt_time(opt.beta_time.to_seconds()).c_str(),
              bench::fmt_time(opt.total(params).to_seconds()).c_str());
  std::printf("\nbeta ratio elec/optics: %.3f   <-- paper: 3x\n",
              elec.beta_time / opt.beta_time);

  // Flow-level validation.
  topo::TpuCluster cluster;
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  const auto elec_run = fsim.run(coll::build_reduce_scatter_schedule(
      cluster, kSlice1, n, Interconnect::kElectrical, params));
  const auto opt_run = fsim.run(coll::build_reduce_scatter_schedule(
      cluster, kSlice1, n, Interconnect::kOptical, params));
  std::printf("flow-sim beta:  elec %s  optics %s (incl. r) — analytic model confirmed\n",
              bench::fmt_time(elec_run.total.to_seconds()).c_str(),
              bench::fmt_time(opt_run.total.to_seconds()).c_str());

  bench::line();
  std::printf("buffer sweep (total ReduceScatter time, speedup = elec/optics):\n");
  std::printf("  %10s  %12s  %12s  %8s\n", "N", "electrical", "optical", "speedup");
  for (double kib : {1.0, 16.0, 256.0, 4096.0, 65536.0, 1048576.0}) {
    const DataSize size = DataSize::kib(kib);
    const auto e = coll::reduce_scatter_cost(plan, size, Interconnect::kElectrical, params);
    const auto o = coll::reduce_scatter_cost(plan, size, Interconnect::kOptical, params);
    std::printf("  %10s  %12s  %12s  %7.2fx\n", bench::fmt_bytes(size.to_bytes()).c_str(),
                bench::fmt_time(e.total(params).to_seconds()).c_str(),
                bench::fmt_time(o.total(params).to_seconds()).c_str(),
                e.total(params) / o.total(params));
  }
  std::printf("(speedup < 1 below the crossover: r = 3.7 us dominates tiny buffers)\n");
}

void BM_ReduceScatterCost(benchmark::State& state) {
  const auto plan = coll::build_plan(kSlice1, kRack);
  const coll::CostParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll::reduce_scatter_cost(
        plan, DataSize::mib(256), Interconnect::kOptical, params));
  }
}
BENCHMARK(BM_ReduceScatterCost);

void BM_FlowSimSlice1(benchmark::State& state) {
  topo::TpuCluster cluster;
  const coll::CostParams params;
  const auto schedule = coll::build_reduce_scatter_schedule(
      cluster, kSlice1, DataSize::mib(256), Interconnect::kElectrical, params);
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  for (auto _ : state) benchmark::DoNotOptimize(fsim.run(schedule));
}
BENCHMARK(BM_FlowSimSlice1);

}  // namespace

LP_BENCH_MAIN(print_report)
