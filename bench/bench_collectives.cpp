// Collective-primitive sweep: ReduceScatter / AllGather / AllReduce /
// pipelined Broadcast on the paper's slice shapes, electrical vs optical,
// measured with the flow simulator.
//
// Generalizes Tables 1-2 beyond ReduceScatter: the optics advantage holds
// for every ring-structured primitive, with the same 3x / 1.5x shape per
// slice, because it comes from the redirected per-stage bandwidth, not the
// primitive.
#include "bench/bench_common.hpp"
#include "collective/alltoall.hpp"
#include "collective/extra_schedules.hpp"
#include "sim/flow_sim.hpp"
#include "topo/slice.hpp"

namespace {

using namespace lp;
using coll::Interconnect;

void print_report(bool emit_json) {
  bench::header("Collective sweep: RS / AG / AR / Broadcast, elec vs optics");
  topo::TpuCluster cluster;
  coll::CostParams params;
  const DataSize n = DataSize::mib(256);
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};

  struct SliceCase {
    const char* name;
    topo::Slice slice;
  };
  const SliceCase slices[] = {
      {"4x2x1", topo::Slice{0, 0, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}}}},
      {"4x4x1", topo::Slice{1, 0, topo::Coord{{0, 0, 2}}, topo::Shape{{4, 4, 1}}}},
      {"4x4x2", topo::Slice{2, 0, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 4, 2}}}},
  };

  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("collectives");
  json.key("bytes").value(n.to_bytes());
  json.key("rows").begin_array();

  std::printf("N = %s\n\n", bench::fmt_bytes(n.to_bytes()).c_str());
  std::printf("  slice   primitive     electrical     optical      speedup\n");
  for (const auto& sc : slices) {
    struct Prim {
      const char* name;
      coll::Schedule elec, opt;
    };
    Prim prims[] = {
        {"ReduceScatter",
         coll::build_reduce_scatter_schedule(cluster, sc.slice, n,
                                             Interconnect::kElectrical, params),
         coll::build_reduce_scatter_schedule(cluster, sc.slice, n,
                                             Interconnect::kOptical, params)},
        {"AllGather",
         coll::build_all_gather_schedule(cluster, sc.slice, n,
                                         Interconnect::kElectrical, params),
         coll::build_all_gather_schedule(cluster, sc.slice, n, Interconnect::kOptical,
                                         params)},
        {"AllReduce",
         coll::build_all_reduce_schedule(cluster, sc.slice, n,
                                         Interconnect::kElectrical, params),
         coll::build_all_reduce_schedule(cluster, sc.slice, n, Interconnect::kOptical,
                                         params)},
        {"Broadcast/16",
         coll::build_broadcast_schedule(cluster, sc.slice, n, 16,
                                        Interconnect::kElectrical, params),
         coll::build_broadcast_schedule(cluster, sc.slice, n, 16,
                                        Interconnect::kOptical, params)},
    };
    for (const auto& p : prims) {
      const auto e = fsim.run(p.elec);
      const auto o = fsim.run(p.opt);
      std::printf("  %-6s  %-12s  %11s  %11s  %8.2fx\n", sc.name, p.name,
                  bench::fmt_time(e.total.to_seconds()).c_str(),
                  bench::fmt_time(o.total.to_seconds()).c_str(), e.total / o.total);
      json.begin_object();
      json.key("slice").value(sc.name);
      json.key("primitive").value(p.name);
      json.key("electrical_seconds").value(e.total.to_seconds());
      json.key("optical_seconds").value(o.total.to_seconds());
      json.key("speedup").value(e.total / o.total);
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  bench::line();
  std::printf("the slice shape, not the primitive, sets the optics gain: ~3x for\n");
  std::printf("one-usable-dim slices, ~1.5x for two, matching Tables 1-2.\n");
  if (emit_json) {
    const char* path = "BENCH_collectives.json";
    std::printf("%s artifact: %s\n", json.write_file(path) ? "wrote" : "FAILED to write",
                path);
  }
}

void BM_BuildAllReduce(benchmark::State& state) {
  topo::TpuCluster cluster;
  const topo::Slice slice{0, 0, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 4, 2}}};
  const coll::CostParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll::build_all_reduce_schedule(
        cluster, slice, DataSize::mib(256), Interconnect::kElectrical, params));
  }
}
BENCHMARK(BM_BuildAllReduce);

void BM_SimBroadcast(benchmark::State& state) {
  topo::TpuCluster cluster;
  const topo::Slice slice{0, 0, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}}};
  const coll::CostParams params;
  const auto schedule = coll::build_broadcast_schedule(
      cluster, slice, DataSize::mib(256), 16, Interconnect::kElectrical, params);
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  for (auto _ : state) benchmark::DoNotOptimize(fsim.run(schedule));
}
BENCHMARK(BM_SimBroadcast);

// Stress the max-min solver itself: every rotation round of a 32-chip
// all-to-all collapsed into ONE phase of ~1000 simultaneous electrical
// flows with heavy link sharing, so progressive filling runs many freeze
// rounds over many contended links — the regime where the incremental
// (CSR + lazy-heap) solver pulls away from a per-round full rescan.
void BM_SimCongestedAllPairs(benchmark::State& state) {
  topo::TpuCluster cluster;
  const topo::Slice slice{0, 0, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 4, 2}}};
  const coll::CostParams params;
  const auto demand = coll::uniform_all_to_all(32, DataSize::mib(4));
  const auto schedule = coll::build_all_to_all_schedule(
      cluster, slice, demand, Interconnect::kElectrical, params);
  std::vector<coll::Transfer> transfers;
  for (const auto& phase : schedule.phases) {
    transfers.insert(transfers.end(), phase.transfers.begin(),
                     phase.transfers.end());
  }
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  for (auto _ : state) benchmark::DoNotOptimize(fsim.run_phase(transfers));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(transfers.size()));
}
BENCHMARK(BM_SimCongestedAllPairs);

}  // namespace

LP_BENCH_MAIN_JSON(print_report)
