// Shared helpers for the reproduction benches.
//
// Every bench binary prints its paper-reproduction report first (the rows
// of the table / the series of the figure it regenerates), then runs its
// google-benchmark microbenchmarks.  Use LP_BENCH_MAIN(print_fn) to get
// that layout.
// Benches that also emit a machine-readable artifact (for CI trend tracking
// or plotting) accept a --json flag, stripped from argv before
// google-benchmark sees it; use LP_BENCH_MAIN_JSON(print_fn) and write the
// artifact with JsonWriter.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace lp::bench {

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void line() {
  std::printf("-------------------------------------------------------------------------------\n");
}

/// Human-readable seconds.
inline std::string fmt_time(double seconds) {
  char buf[48];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

inline std::string fmt_bytes(double bytes) {
  char buf[48];
  if (bytes < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.0f KiB", bytes / 1024.0);
  } else if (bytes < 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.0f MiB", bytes / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f GiB", bytes / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

/// The three latency quantiles every serving/SLO table reports, computed
/// with util::percentile (linear interpolation) so bench tables and library
/// reports agree bit-for-bit on the same sample set.
struct Tail {
  double p50{0.0};
  double p99{0.0};
  double p999{0.0};
};

inline Tail tail_of(std::span<const double> xs) {
  return Tail{percentile(xs, 50.0), percentile(xs, 99.0), percentile(xs, 99.9)};
}

/// Formats a Tail of seconds as "p50 x / p99 y / p999 z".
inline std::string fmt_tail(const Tail& t) {
  return "p50 " + fmt_time(t.p50) + " / p99 " + fmt_time(t.p99) + " / p999 " +
         fmt_time(t.p999);
}

/// Removes every occurrence of `flag` from argv (before google-benchmark
/// parses it, which rejects unknown arguments) and reports whether it was
/// present.
inline bool consume_flag(int* argc, char** argv, const char* flag) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return found;
}

/// Minimal streaming JSON emitter for bench artifacts.  Keys and string
/// values are emitted verbatim (callers pass plain identifiers — no escaping
/// is performed).  Doubles round-trip (%.17g), so an artifact diff is a real
/// result change, not formatting noise.
class JsonWriter {
 public:
  JsonWriter& key(const char* k) {
    comma();
    out_ += '"';
    out_ += k;
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }
  JsonWriter& value(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return raw(buf);
  }
  JsonWriter& value(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    return raw(buf);
  }
  JsonWriter& value(const char* s) {
    sep();
    out_ += '"';
    out_ += s;
    out_ += '"';
    return *this;
  }
  JsonWriter& value(bool b) { return raw(b ? "true" : "false"); }
  JsonWriter& begin_object() { return open('{', '}'); }
  JsonWriter& end_object() { return close(); }
  JsonWriter& begin_array() { return open('[', ']'); }
  JsonWriter& end_array() { return close(); }

  [[nodiscard]] const std::string& str() const { return out_; }

  /// Writes the document (plus a trailing newline) to `path`.
  [[nodiscard]] bool write_file(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size() &&
                    std::fputc('\n', f) != EOF;
    return std::fclose(f) == 0 && ok;
  }

 private:
  JsonWriter& raw(const char* text) {
    sep();
    out_ += text;
    return *this;
  }
  JsonWriter& open(char c, char closer) {
    sep();
    out_ += c;
    closers_.push_back(closer);
    fresh_.push_back(true);
    return *this;
  }
  JsonWriter& close() {
    out_ += closers_.back();
    closers_.pop_back();
    fresh_.pop_back();
    return *this;
  }
  /// Before a value: a key's value needs no comma, an array element does.
  void sep() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    comma();
  }
  void comma() {
    if (fresh_.empty()) return;
    if (!fresh_.back()) out_ += ',';
    fresh_.back() = false;
  }

  std::string out_;
  std::vector<char> closers_;
  std::vector<bool> fresh_;
  bool pending_value_{false};
};

}  // namespace lp::bench

#define LP_BENCH_MAIN(print_fn)                        \
  int main(int argc, char** argv) {                    \
    print_fn();                                        \
    ::benchmark::Initialize(&argc, argv);              \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();             \
    ::benchmark::Shutdown();                           \
    return 0;                                          \
  }

/// Like LP_BENCH_MAIN, but `print_fn(bool)` learns whether --json was passed
/// (the flag is stripped before google-benchmark parses the arguments).
#define LP_BENCH_MAIN_JSON(print_fn)                   \
  int main(int argc, char** argv) {                    \
    const bool lp_emit_json = ::lp::bench::consume_flag(&argc, argv, "--json"); \
    print_fn(lp_emit_json);                            \
    ::benchmark::Initialize(&argc, argv);              \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();             \
    ::benchmark::Shutdown();                           \
    return 0;                                          \
  }
