// Shared helpers for the reproduction benches.
//
// Every bench binary prints its paper-reproduction report first (the rows
// of the table / the series of the figure it regenerates), then runs its
// google-benchmark microbenchmarks.  Use LP_BENCH_MAIN(print_fn) to get
// that layout.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace lp::bench {

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void line() {
  std::printf("-------------------------------------------------------------------------------\n");
}

/// Human-readable seconds.
inline std::string fmt_time(double seconds) {
  char buf[48];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

inline std::string fmt_bytes(double bytes) {
  char buf[48];
  if (bytes < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.0f KiB", bytes / 1024.0);
  } else if (bytes < 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.0f MiB", bytes / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f GiB", bytes / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace lp::bench

#define LP_BENCH_MAIN(print_fn)                        \
  int main(int argc, char** argv) {                    \
    print_fn();                                        \
    ::benchmark::Initialize(&argc, argv);              \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();             \
    ::benchmark::Shutdown();                           \
    return 0;                                          \
  }
