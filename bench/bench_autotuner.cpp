// Collective-autotuner report: algorithm crossover table, differential
// validation against the flow simulator, and decision-cache throughput.
//
// Three sections:
//   * Crossover table — for each (topology, op), the tuner's pick per
//     message size from 1 KiB to 10 GB, with the predicted cost.  Shows
//     the alpha-beta-r trade flipping from log-depth / rotating schedules
//     (alpha- and r-bound) to ring / striped schedules (beta-bound) as
//     messages grow.
//   * Validation sweep — every grid point's pick is raced against every
//     candidate under the flow simulator; any measured cost beyond the
//     documented tolerance is reported (and the same grid is a hard test
//     in autotuner_test, so a FAIL here means a broken build, not noise).
//   * Cache throughput — pick_keyed() on a warm cache must clear 1e6
//     decisions/s; the hot path is one hash + one map find under a mutex.
//
// --json writes BENCH_autotuner.json with the crossover rows and the
// throughput number for CI trend tracking.
#include <chrono>

#include "bench/bench_common.hpp"
#include "collective/autotuner.hpp"
#include "sim/flow_sim.hpp"

namespace {

using namespace lp;
using coll::Algorithm;
using coll::Autotuner;
using coll::CollOp;
using coll::Decision;

std::vector<topo::TpuId> group(std::size_t m) {
  std::vector<topo::TpuId> ids;
  ids.reserve(m);
  for (std::size_t i = 0; i < m; ++i) ids.push_back(static_cast<topo::TpuId>(i));
  return ids;
}

struct Topology {
  const char* name;
  std::vector<topo::TpuId> members;
  Bandwidth rate;
  std::uint64_t epoch;
};

std::vector<Topology> topologies() {
  // Healthy rings at the 2-lambda circuit rate; degraded non-power-of-two
  // survivor sets on 1-lambda elastic bridges.
  return {
      {"healthy-8 (2l)", group(8), Bandwidth::gBps(75.0), 0},
      {"healthy-56 (2l)", group(56), Bandwidth::gBps(75.0), 0},
      {"degraded-7 (1l)", group(7), Bandwidth::gBps(37.5), 1},
      {"degraded-3 (1l)", group(3), Bandwidth::gBps(37.5), 1},
  };
}

std::vector<DataSize> sweep_sizes() {
  std::vector<DataSize> sizes;
  for (double b = 1024.0; b <= 4.0 * 1024.0 * 1024.0 * 1024.0; b *= 4.0) {
    sizes.push_back(DataSize::bytes(b));
  }
  sizes.push_back(DataSize::bytes(1e10));
  return sizes;
}

const CollOp kOps[] = {CollOp::kReduceScatter, CollOp::kAllGather, CollOp::kAllReduce,
                       CollOp::kBroadcast,     CollOp::kAllToAll,  CollOp::kTransfer};

Duration measured(const Autotuner& tuner, CollOp op, Algorithm algo,
                  const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
                  Duration reconfig) {
  const coll::Schedule sched = tuner.build(op, algo, members, n, rate, reconfig);
  const sim::FlowSimulator fsim{rate};
  return coll::measured_cost(fsim.run(sched).total, sched, tuner.params().alpha);
}

void print_report(bool emit_json) {
  bench::header("Collective autotuner: crossovers, validation, cache throughput");
  Autotuner tuner;
  const Duration reconfig = Duration::micros(3.7);
  const auto topos = topologies();
  const auto sizes = sweep_sizes();

  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("autotuner");
  json.key("rows").begin_array();

  // --- Crossover table -------------------------------------------------
  for (const CollOp op : {CollOp::kAllReduce, CollOp::kAllToAll, CollOp::kTransfer}) {
    std::printf("\n%s picks by message size:\n", coll::to_string(op));
    std::printf("  %-16s", "topology");
    for (const DataSize n : sizes) {
      std::printf(" %8s", bench::fmt_bytes(n.to_bytes()).c_str());
    }
    std::printf("\n");
    for (const Topology& t : topos) {
      std::printf("  %-16s", t.name);
      for (const DataSize n : sizes) {
        const Decision d = tuner.pick(op, n, t.members, t.rate, reconfig, t.epoch);
        // First two letters identify the algorithm (ri/tr/ha/ro/pi/di/st).
        std::printf(" %7.2s ", coll::to_string(d.algo));
        json.begin_object();
        json.key("op").value(coll::to_string(op));
        json.key("topology").value(t.name);
        json.key("bytes").value(n.to_bytes());
        json.key("pick").value(coll::to_string(d.algo));
        json.key("predicted_seconds").value(d.predicted.to_seconds());
        json.end_object();
      }
      std::printf("\n");
    }
  }
  json.end_array();

  // --- Differential validation ----------------------------------------
  const double tol_rel = tuner.params().tolerance_rel;
  const Duration tol_abs = tuner.params().tolerance_abs;
  int points = 0;
  int mispredictions = 0;
  for (const Topology& t : topos) {
    for (const CollOp op : kOps) {
      for (const DataSize n : sizes) {
        const Decision d = tuner.pick(op, n, t.members, t.rate, reconfig, t.epoch);
        const Duration picked = measured(tuner, op, d.algo, t.members, n, t.rate, reconfig);
        Duration best = Duration::infinite();
        for (const Algorithm algo : Autotuner::candidates(op)) {
          const Duration cost = measured(tuner, op, algo, t.members, n, t.rate, reconfig);
          if (cost < best) best = cost;
        }
        ++points;
        if (picked > best * (1.0 + tol_rel) + tol_abs) {
          ++mispredictions;
          std::printf("  MISPREDICTION %s %s %s: picked %s\n", t.name,
                      coll::to_string(op), bench::fmt_bytes(n.to_bytes()).c_str(),
                      coll::to_string(d.algo));
        }
      }
    }
  }
  bench::line();
  std::printf("validation sweep: %d points, %d beyond tolerance -> %s\n", points,
              mispredictions, mispredictions == 0 ? "PASS" : "FAIL");

  // --- Decision-cache throughput ---------------------------------------
  // Warm cache, rotating over a realistic working set of keys.
  const std::uint64_t fp =
      Autotuner::topology_fingerprint(topos[0].members, topos[0].rate, reconfig);
  constexpr std::uint64_t kLookups = 4'000'000;
  const std::size_t n_sizes = sizes.size();
  std::uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kLookups; ++i) {
    const DataSize n = sizes[i % n_sizes];
    const Decision d = tuner.pick_keyed(CollOp::kAllReduce, n, topos[0].members.size(),
                                        fp, topos[0].rate, reconfig, topos[0].epoch);
    sink += static_cast<std::uint64_t>(d.algo);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const double per_sec = static_cast<double>(kLookups) / secs;
  std::printf("decision cache: %.1fM lookups/s (%.0f ns/lookup, sink %llu) -> %s\n",
              per_sec / 1e6, 1e9 * secs / static_cast<double>(kLookups),
              static_cast<unsigned long long>(sink),
              per_sec >= 1e6 ? "PASS (>= 1e6/s)" : "FAIL (< 1e6/s)");

  json.key("validation_points").value(static_cast<std::uint64_t>(points));
  json.key("mispredictions").value(static_cast<std::uint64_t>(mispredictions));
  json.key("cache_lookups_per_second").value(per_sec);
  json.end_object();
  if (emit_json) {
    const char* path = "BENCH_autotuner.json";
    std::printf("%s artifact: %s\n", json.write_file(path) ? "wrote" : "FAILED to write",
                path);
  }
}

void BM_TunerPickCached(benchmark::State& state) {
  Autotuner tuner;
  const auto members = group(56);
  const Bandwidth rate = Bandwidth::gBps(75.0);
  const Duration reconfig = Duration::micros(3.7);
  const std::uint64_t fp = Autotuner::topology_fingerprint(members, rate, reconfig);
  (void)tuner.pick_keyed(CollOp::kAllReduce, DataSize::mib(64), members.size(), fp, rate,
                         reconfig, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.pick_keyed(CollOp::kAllReduce, DataSize::mib(64),
                                              members.size(), fp, rate, reconfig, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TunerPickCached);

void BM_TunerPickColdEvaluation(benchmark::State& state) {
  // Every iteration bumps the epoch, forcing the full candidate evaluation.
  Autotuner tuner;
  const auto members = group(56);
  const Bandwidth rate = Bandwidth::gBps(75.0);
  const Duration reconfig = Duration::micros(3.7);
  const std::uint64_t fp = Autotuner::topology_fingerprint(members, rate, reconfig);
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.pick_keyed(CollOp::kAllReduce, DataSize::mib(64),
                                              members.size(), fp, rate, reconfig,
                                              ++epoch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TunerPickColdEvaluation);

void BM_BuildHalvingDoubling(benchmark::State& state) {
  const auto members = group(56);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll::build_halving_doubling_all_reduce_schedule(
        members, DataSize::mib(64), Bandwidth::gBps(75.0), Duration::micros(3.7)));
  }
}
BENCHMARK(BM_BuildHalvingDoubling);

}  // namespace

LP_BENCH_MAIN_JSON(print_report)
