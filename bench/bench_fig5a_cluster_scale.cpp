// Figure 5a: TPUv4 cluster of 4096 chips — 64 racks, each a 4x4x4 torus of
// 16 four-chip servers, faces wired to OCSes.
//
// Builds the full-scale cluster substrate, verifies its invariants, and
// measures allocator throughput at scale.
#include "bench/bench_common.hpp"
#include "topo/cluster.hpp"
#include "topo/slice.hpp"

namespace {

using namespace lp;
using topo::Shape;

void print_report() {
  bench::header("Figure 5a: TPUv4-scale cluster substrate (64 racks x 4x4x4)");
  topo::TpuCluster cluster;
  std::printf("racks: %d, chips/rack: %d, total chips: %d, servers/rack: %d\n",
              cluster.rack_count(), cluster.chips_per_rack(), cluster.chip_count(),
              cluster.servers_per_rack());

  // OCS wraparound accounting: every face link is optical.
  std::size_t wrap = 0;
  for (topo::TpuId chip = 0; chip < cluster.chips_per_rack(); ++chip) {
    for (std::uint8_t d = 0; d < topo::kDims; ++d) {
      for (std::int8_t s : {std::int8_t{+1}, std::int8_t{-1}}) {
        if (cluster.is_wraparound(topo::DirectedLink{chip, d, s})) ++wrap;
      }
    }
  }
  std::printf("directed links per rack: %d (%zu wraparound via OCS, %.0f%%)\n",
              cluster.chips_per_rack() * 6, wrap,
              100.0 * static_cast<double>(wrap) / (cluster.chips_per_rack() * 6));
  std::printf("per-chip egress B: %.0f GB/s; per-dimension: %.0f GB/s\n",
              cluster.config().chip_bandwidth.to_gBps(), cluster.dim_bandwidth().to_gBps());

  // Fill the whole cluster with paper-shaped slices.
  topo::SliceAllocator alloc{cluster};
  int placed = 0;
  while (alloc.allocate(Shape{{4, 4, 2}}).ok()) ++placed;
  std::printf("first-fit packing: %d slices of 4x4x2 fill all %d racks (%d chips)\n",
              placed, cluster.rack_count(), placed * 32);
}

void BM_ClusterConstruction(benchmark::State& state) {
  for (auto _ : state) {
    topo::TpuCluster cluster;
    benchmark::DoNotOptimize(cluster.chip_count());
  }
}
BENCHMARK(BM_ClusterConstruction);

void BM_SliceAllocation(benchmark::State& state) {
  for (auto _ : state) {
    topo::TpuCluster cluster;
    topo::SliceAllocator alloc{cluster};
    int placed = 0;
    while (alloc.allocate(Shape{{4, 2, 1}}).ok()) ++placed;
    benchmark::DoNotOptimize(placed);
  }
}
BENCHMARK(BM_SliceAllocation);

void BM_OwnerLookup(benchmark::State& state) {
  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  while (alloc.allocate(Shape{{4, 4, 2}}).ok()) {
  }
  topo::TpuId chip = 0;
  for (auto _ : state) {
    chip = (chip + 1) % cluster.chip_count();
    benchmark::DoNotOptimize(alloc.owner(chip));
  }
}
BENCHMARK(BM_OwnerLookup);

}  // namespace

LP_BENCH_MAIN(print_report)
