// Figure 7: optical reconfiguration repairs the broken rings.
//
// After TPU 7 fails in Slice-3, its X and Y rings are broken.  The repair
// planner wires a free TPU into both rings with dedicated, non-overlapping
// optical circuits (separate waveguides/fibers), restoring congestion-free
// operation in microseconds.  We reproduce the scenario, list the repair
// circuits with their link budgets, and time the whole repair.
#include "bench/bench_common.hpp"
#include "core/blast_radius.hpp"
#include "core/photonic_rack.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "routing/repair.hpp"
#include "topo/slice.hpp"

namespace {

using namespace lp;
using topo::Coord;
using topo::Shape;
using topo::TpuId;

void print_report() {
  bench::header("Figure 7: optical circuits repair the broken rings");

  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  (void)alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}});
  const auto s3 = alloc.allocate_at(0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}});
  (void)alloc.allocate_at(0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}});

  const TpuId failed = cluster.chip_at(0, Coord{{1, 1, 2}});
  cluster.set_state(failed, topo::ChipState::kFailed);
  const auto neighbors =
      core::broken_ring_neighbors(cluster, *alloc.slice(s3.value()), failed);

  core::PhotonicRack rack{cluster, 0};
  std::vector<fabric::GlobalTile> candidates;
  for (TpuId spare : cluster.free_chips_in_rack(0))
    candidates.push_back(rack.tile_of(spare));
  std::vector<fabric::GlobalTile> neighbor_tiles;
  for (TpuId nb : neighbors) neighbor_tiles.push_back(rack.tile_of(nb));

  const auto choice = routing::choose_spare(rack.fabric(), candidates, neighbor_tiles);
  if (!choice.ok()) {
    std::printf("no spare available\n");
    return;
  }
  routing::RepairRequest req;
  req.spare = candidates[choice.value()];
  req.neighbors = neighbor_tiles;
  req.wavelengths = 4;
  const auto plan = routing::repair_with_spare(rack.fabric(), req);

  const TpuId spare_chip = rack.chip_of(req.spare);
  const Coord sc = cluster.coord_of(spare_chip);
  std::printf("failed chip (1,1,2); spare chosen: chip %d at (%d,%d,%d)\n", spare_chip,
              sc[0], sc[1], sc[2]);
  std::printf("repair complete: %s; circuits: %zu (both directions per neighbor)\n",
              plan.complete ? "yes" : "no", plan.circuits.size());
  std::printf("fibers used: %u; reconfiguration latency: %s\n", plan.fibers_used,
              bench::fmt_time(plan.reconfig_latency.to_seconds()).c_str());

  std::printf("\n  circuit  endpoints            hops  turns  loss(dB)  BER        closes\n");
  for (fabric::CircuitId id : plan.circuits) {
    const fabric::Circuit* c = rack.fabric().circuit(id);
    const auto report = rack.fabric().circuit_budget(id);
    std::printf("  %5llu    w%u t%-2u -> w%u t%-2u     %4zu  %5u  %7.2f  %9.2e  %s\n",
                static_cast<unsigned long long>(id), c->src.wafer, c->src.tile,
                c->dst.wafer, c->dst.tile, c->waveguide_hop_count(), c->turn_count(),
                report.total_loss.value(), report.pre_fec_ber,
                report.closes ? "yes" : "NO");
  }
  bench::line();
  std::printf("every repair circuit is a dedicated end-to-end light path: zero shared\n");
  std::printf("links, zero forwarding through other tenants' chips — congestion-free by\n");
  std::printf("construction, restored in %s instead of a %s rack migration.\n",
              bench::fmt_time(plan.reconfig_latency.to_seconds()).c_str(),
              bench::fmt_time(600.0).c_str());

  // --- Degraded mode: component faults hit the repaired fabric -------------
  bench::header("Degraded mode: component faults on the repaired fabric");
  std::printf("the repair circuits themselves now take component faults; each\n");
  std::printf("degraded circuit climbs the ladder (retune -> reroute -> respare ->\n");
  std::printf("electrical detour -> rack migration).\n\n");

  fabric::Fabric& fab = rack.fabric();
  fault::FaultSet faults;
  // Dead lasers at the first repair circuit's source tile.
  const fabric::Circuit* first = fab.circuit(plan.circuits.front());
  faults.add({.kind = fault::FaultKind::kLaserLoss, .tile = first->src,
              .dead_lasers = 2});
  // A stuck MZI on the path of the first circuit that actually hops.
  for (fabric::CircuitId id : plan.circuits) {
    const fabric::Circuit* c = fab.circuit(id);
    if (c->waveguide_hop_count() == 0) continue;
    const auto& seg = c->segments.front();
    faults.add({.kind = fault::FaultKind::kMziStuck,
                .tile = {seg.wafer, seg.from},
                .direction = seg.hops.front(),
                .stuck_port = phys::MziPort::kCross});
    break;
  }
  // Cut the fiber bundle under the first cross-wafer circuit, if any.
  for (fabric::CircuitId id : plan.circuits) {
    if (const auto link = fab.fiber_link_of(id)) {
      faults.add({.kind = fault::FaultKind::kFiberCut, .fiber_link = *link});
      break;
    }
  }
  faults.apply_to(fab);

  const fault::HealthMonitor monitor;
  const auto diagnoses = monitor.scan(fab, faults);
  std::printf("  injected %zu faults -> %zu degraded circuits\n\n",
              faults.faults().size(), diagnoses.size());

  std::vector<fabric::GlobalTile> spare_tiles;
  for (TpuId spare : cluster.free_chips_in_rack(0))
    spare_tiles.push_back(rack.tile_of(spare));

  std::printf("  circuit  health    recovered-by        latency     attempts/rung\n");
  for (const auto& d : diagnoses) {
    routing::EscalationOptions opts;
    opts.spare_candidates = spare_tiles;
    opts.validate = [&](const fabric::Fabric& f, fabric::CircuitId id) {
      return monitor.diagnose(f, faults, id).health == fault::CircuitHealth::kHealthy;
    };
    const auto out = routing::escalate_repair(fab, fault::to_degraded(d), opts);
    std::printf("  %5llu    %-8s  %-18s  %9s     [%u %u %u %u %u]\n",
                static_cast<unsigned long long>(d.id), to_string(d.health),
                out.recovered ? routing::to_string(out.rung) : "UNRECOVERED",
                bench::fmt_time(out.latency.to_seconds()).c_str(),
                out.attempts[0], out.attempts[1], out.attempts[2], out.attempts[3],
                out.attempts[4]);
  }
  faults.revert(fab);
  bench::line();
  std::printf("component faults stay in the optical domain: a retune or reroute in\n");
  std::printf("microseconds, a respare in microseconds more — migration only when an\n");
  std::printf("endpoint chip is truly gone.\n");
}

void BM_OpticalRepair(benchmark::State& state) {
  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  (void)alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}});
  const auto s3 = alloc.allocate_at(0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}});
  (void)alloc.allocate_at(0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}});
  const TpuId failed = cluster.chip_at(0, Coord{{1, 1, 2}});
  cluster.set_state(failed, topo::ChipState::kFailed);
  const auto neighbors =
      core::broken_ring_neighbors(cluster, *alloc.slice(s3.value()), failed);

  for (auto _ : state) {
    core::PhotonicRack rack{cluster, 0};
    routing::RepairRequest req;
    req.spare = rack.tile_of(cluster.free_chips_in_rack(0).front());
    for (TpuId nb : neighbors) req.neighbors.push_back(rack.tile_of(nb));
    req.wavelengths = 4;
    benchmark::DoNotOptimize(routing::repair_with_spare(rack.fabric(), req));
  }
}
BENCHMARK(BM_OpticalRepair);

void BM_ChooseSpare(benchmark::State& state) {
  topo::TpuCluster cluster;
  core::PhotonicRack rack{cluster, 0};
  std::vector<fabric::GlobalTile> candidates;
  for (TpuId c = 0; c < 32; ++c) candidates.push_back(rack.tile_of(c));
  const std::vector<fabric::GlobalTile> neighbors{rack.tile_of(40), rack.tile_of(50)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::choose_spare(rack.fabric(), candidates, neighbors));
  }
}
BENCHMARK(BM_ChooseSpare);

}  // namespace

LP_BENCH_MAIN(print_report)
