// Figure 7: optical reconfiguration repairs the broken rings.
//
// After TPU 7 fails in Slice-3, its X and Y rings are broken.  The repair
// planner wires a free TPU into both rings with dedicated, non-overlapping
// optical circuits (separate waveguides/fibers), restoring congestion-free
// operation in microseconds.  We reproduce the scenario, list the repair
// circuits with their link budgets, and time the whole repair.
#include "bench/bench_common.hpp"
#include "core/blast_radius.hpp"
#include "core/photonic_rack.hpp"
#include "routing/repair.hpp"
#include "topo/slice.hpp"

namespace {

using namespace lp;
using topo::Coord;
using topo::Shape;
using topo::TpuId;

void print_report() {
  bench::header("Figure 7: optical circuits repair the broken rings");

  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  (void)alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}});
  const auto s3 = alloc.allocate_at(0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}});
  (void)alloc.allocate_at(0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}});

  const TpuId failed = cluster.chip_at(0, Coord{{1, 1, 2}});
  cluster.set_state(failed, topo::ChipState::kFailed);
  const auto neighbors =
      core::broken_ring_neighbors(cluster, *alloc.slice(s3.value()), failed);

  core::PhotonicRack rack{cluster, 0};
  std::vector<fabric::GlobalTile> candidates;
  for (TpuId spare : cluster.free_chips_in_rack(0))
    candidates.push_back(rack.tile_of(spare));
  std::vector<fabric::GlobalTile> neighbor_tiles;
  for (TpuId nb : neighbors) neighbor_tiles.push_back(rack.tile_of(nb));

  const auto choice = routing::choose_spare(rack.fabric(), candidates, neighbor_tiles);
  if (!choice.ok()) {
    std::printf("no spare available\n");
    return;
  }
  routing::RepairRequest req;
  req.spare = candidates[choice.value()];
  req.neighbors = neighbor_tiles;
  req.wavelengths = 4;
  const auto plan = routing::repair_with_spare(rack.fabric(), req);

  const TpuId spare_chip = rack.chip_of(req.spare);
  const Coord sc = cluster.coord_of(spare_chip);
  std::printf("failed chip (1,1,2); spare chosen: chip %d at (%d,%d,%d)\n", spare_chip,
              sc[0], sc[1], sc[2]);
  std::printf("repair complete: %s; circuits: %zu (both directions per neighbor)\n",
              plan.complete ? "yes" : "no", plan.circuits.size());
  std::printf("fibers used: %u; reconfiguration latency: %s\n", plan.fibers_used,
              bench::fmt_time(plan.reconfig_latency.to_seconds()).c_str());

  std::printf("\n  circuit  endpoints            hops  turns  loss(dB)  BER        closes\n");
  for (fabric::CircuitId id : plan.circuits) {
    const fabric::Circuit* c = rack.fabric().circuit(id);
    const auto report = rack.fabric().circuit_budget(id);
    std::printf("  %5llu    w%u t%-2u -> w%u t%-2u     %4zu  %5u  %7.2f  %9.2e  %s\n",
                static_cast<unsigned long long>(id), c->src.wafer, c->src.tile,
                c->dst.wafer, c->dst.tile, c->waveguide_hop_count(), c->turn_count(),
                report.total_loss.value(), report.pre_fec_ber,
                report.closes ? "yes" : "NO");
  }
  bench::line();
  std::printf("every repair circuit is a dedicated end-to-end light path: zero shared\n");
  std::printf("links, zero forwarding through other tenants' chips — congestion-free by\n");
  std::printf("construction, restored in %s instead of a %s rack migration.\n",
              bench::fmt_time(plan.reconfig_latency.to_seconds()).c_str(),
              bench::fmt_time(600.0).c_str());
}

void BM_OpticalRepair(benchmark::State& state) {
  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  (void)alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}});
  const auto s3 = alloc.allocate_at(0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}});
  (void)alloc.allocate_at(0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}});
  const TpuId failed = cluster.chip_at(0, Coord{{1, 1, 2}});
  cluster.set_state(failed, topo::ChipState::kFailed);
  const auto neighbors =
      core::broken_ring_neighbors(cluster, *alloc.slice(s3.value()), failed);

  for (auto _ : state) {
    core::PhotonicRack rack{cluster, 0};
    routing::RepairRequest req;
    req.spare = rack.tile_of(cluster.free_chips_in_rack(0).front());
    for (TpuId nb : neighbors) req.neighbors.push_back(rack.tile_of(nb));
    req.wavelengths = 4;
    benchmark::DoNotOptimize(routing::repair_with_spare(rack.fabric(), req));
  }
}
BENCHMARK(BM_OpticalRepair);

void BM_ChooseSpare(benchmark::State& state) {
  topo::TpuCluster cluster;
  core::PhotonicRack rack{cluster, 0};
  std::vector<fabric::GlobalTile> candidates;
  for (TpuId c = 0; c < 32; ++c) candidates.push_back(rack.tile_of(c));
  const std::vector<fabric::GlobalTile> neighbors{rack.tile_of(40), rack.tile_of(50)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::choose_spare(rack.fabric(), candidates, neighbors));
  }
}
BENCHMARK(BM_ChooseSpare);

}  // namespace

LP_BENCH_MAIN(print_report)
