// Circuit setup/teardown churn: fresh planning vs the plan cache, plus the
// sharded concurrent planner (re-landed from the abandoned PR-3/4 attempt).
//
// The scenario is steady-state multi-tenant churn on one 16x16 wafer: a
// handful of jobs repeatedly bring up and tear down their demand sets while
// the fabric cycles through a closed loop of ledger states.  Epoch 0 runs
// every plan cold (the miss path, establishing the no-regression baseline);
// from epoch 1 on, every ledger state recurs exactly, so the cache replays
// memoized hop sequences and skips the Dijkstra searches entirely.  The
// headline metric is sustained cached circuit setups/s against the issue's
// >= 10^6 target.
//
// --json writes BENCH_circuit_churn.json (cold/cached rates, speedup,
// per-epoch trajectory, concurrent-planner scaling) for CI artifact upload.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "lightpath/fabric.hpp"
#include "routing/concurrent_planner.hpp"
#include "routing/plan_cache.hpp"
#include "routing/planner.hpp"
#include "util/rng.hpp"

namespace {

using lp::Rng;
using lp::fabric::Fabric;
using lp::fabric::FabricConfig;
using lp::fabric::GlobalTile;
using lp::fabric::TileId;
using lp::routing::CircuitPlanner;
using lp::routing::Demand;
using lp::routing::PlanCache;
using lp::routing::PlanReport;

constexpr std::int32_t kGrid = 16;
constexpr std::size_t kSets = 4;
constexpr std::size_t kDemandsPerSet = 128;
constexpr std::size_t kEpochs = 40;

FabricConfig churn_config() {
  FabricConfig config;
  config.wafer.rows = kGrid;
  config.wafer.cols = kGrid;
  config.wafer.lanes_per_edge = 8192;
  config.wafer.tile.tx_wavelengths = 64;
  config.wafer.tile.rx_wavelengths = 64;
  config.wafer_count = 1;
  return config;
}

/// kSets fixed demand sets; the bench cycles place-all / release-all so
/// every intermediate ledger state recurs each epoch.
std::vector<std::vector<Demand>> churn_sets(std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::vector<Demand>> sets;
  sets.reserve(kSets);
  for (std::size_t s = 0; s < kSets; ++s) {
    std::vector<Demand> demands;
    demands.reserve(kDemandsPerSet);
    for (std::size_t i = 0; i < kDemandsPerSet; ++i) {
      Demand d;
      d.src = GlobalTile{0, static_cast<TileId>(rng.uniform_index(kGrid * kGrid))};
      do {
        d.dst = GlobalTile{0, static_cast<TileId>(rng.uniform_index(kGrid * kGrid))};
      } while (d.dst == d.src);
      d.wavelengths = 1;
      demands.push_back(d);
    }
    sets.push_back(std::move(demands));
  }
  return sets;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ChurnResult {
  double cold_setups_per_s{0.0};
  double cached_setups_per_s{0.0};
  std::uint64_t cold_setups{0};
  std::uint64_t cached_setups{0};
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  std::uint64_t replay_aborts{0};
  /// Per-epoch setups/s (epoch 0 is the cold one).
  std::vector<double> trajectory;
};

ChurnResult run_churn() {
  Fabric fab{churn_config()};
  PlanCache cache{fab};
  const auto sets = churn_sets(0xc0ffee);

  ChurnResult result;
  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    std::vector<PlanReport> live;
    live.reserve(kSets);
    std::uint64_t setups = 0;
    double plan_time = 0.0;
    for (const auto& demands : sets) {
      const double t0 = now_seconds();
      PlanReport r = cache.place_all(demands);
      plan_time += now_seconds() - t0;
      setups += r.placed.size();
      live.push_back(std::move(r));
    }
    // Teardown (not timed: the metric is *setup* rate) in reverse order so
    // the ledger retraces the exact same closed loop of states each epoch.
    for (auto it = live.rbegin(); it != live.rend(); ++it) cache.release_all(*it);

    const double rate = plan_time > 0.0 ? static_cast<double>(setups) / plan_time : 0.0;
    result.trajectory.push_back(rate);
    if (epoch == 0) {
      result.cold_setups = setups;
      result.cold_setups_per_s = rate;
    } else {
      result.cached_setups += setups;
      result.cached_setups_per_s += plan_time;  // accumulate time; divide below
    }
  }
  if (result.cached_setups_per_s > 0.0) {
    result.cached_setups_per_s =
        static_cast<double>(result.cached_setups) / result.cached_setups_per_s;
  }
  result.hits = cache.stats().hits;
  result.misses = cache.stats().misses;
  result.replay_aborts = cache.stats().replay_aborts;
  return result;
}

struct ScalingPoint {
  unsigned threads{0};
  double seconds{0.0};
  std::uint64_t placed{0};
  std::uint64_t fast_path{0};
  std::uint64_t replans{0};
};

std::vector<ScalingPoint> run_concurrent_scaling() {
  const auto sets = churn_sets(0xfeed);
  const std::vector<std::vector<Demand>> jobs(sets.begin(), sets.end());
  std::vector<ScalingPoint> points;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    Fabric fab{churn_config()};
    const double t0 = now_seconds();
    const auto r = lp::routing::plan_jobs(fab, jobs, {}, threads);
    const double dt = now_seconds() - t0;
    ScalingPoint p;
    p.threads = threads;
    p.seconds = dt;
    for (const auto& report : r.reports) p.placed += report.placed.size();
    p.fast_path = r.stats.fast_path_commits;
    p.replans = r.stats.replans;
    points.push_back(p);
    for (lp::fabric::CircuitId id : fab.circuit_ids()) fab.disconnect(id);
  }
  return points;
}

constexpr double kTargetSetupsPerSec = 1e6;

void print_report(bool emit_json) {
  lp::bench::header("Circuit-plan cache: setup churn on a 16x16 wafer");
  std::printf("%zu demand sets x %zu demands, %zu place/release epochs "
              "(epoch 0 cold)\n",
              kSets, kDemandsPerSet, kEpochs);
  lp::bench::line();

  const ChurnResult churn = run_churn();
  const double speedup = churn.cold_setups_per_s > 0.0
                             ? churn.cached_setups_per_s / churn.cold_setups_per_s
                             : 0.0;
  std::printf("cold   (fresh plan): %12.0f setups/s  (%llu circuits)\n",
              churn.cold_setups_per_s,
              static_cast<unsigned long long>(churn.cold_setups));
  std::printf("cached (replayed)  : %12.0f setups/s  (%llu circuits, %llu hits / "
              "%llu misses, %llu aborts)\n",
              churn.cached_setups_per_s,
              static_cast<unsigned long long>(churn.cached_setups),
              static_cast<unsigned long long>(churn.hits),
              static_cast<unsigned long long>(churn.misses),
              static_cast<unsigned long long>(churn.replay_aborts));
  std::printf("speedup            : %11.1fx\n", speedup);
  std::printf("target >= %.0e cached setups/s: %s\n", kTargetSetupsPerSec,
              churn.cached_setups_per_s >= kTargetSetupsPerSec ? "PASS" : "FAIL");

  lp::bench::header("Sharded concurrent planner: 4 jobs, cold planning");
  const auto scaling = run_concurrent_scaling();
  for (const ScalingPoint& p : scaling) {
    std::printf("%u thread(s): %s  (%llu placed, %llu fast-path, %llu replans)\n",
                p.threads, lp::bench::fmt_time(p.seconds).c_str(),
                static_cast<unsigned long long>(p.placed),
                static_cast<unsigned long long>(p.fast_path),
                static_cast<unsigned long long>(p.replans));
  }
  lp::bench::line();

  if (emit_json) {
    lp::bench::JsonWriter json;
    json.begin_object();
    json.key("bench").value("circuit_churn");
    json.key("wafer").value("16x16");
    json.key("demand_sets").value(static_cast<std::uint64_t>(kSets));
    json.key("demands_per_set").value(static_cast<std::uint64_t>(kDemandsPerSet));
    json.key("epochs").value(static_cast<std::uint64_t>(kEpochs));
    json.key("cold_setups_per_s").value(churn.cold_setups_per_s);
    json.key("cached_setups_per_s").value(churn.cached_setups_per_s);
    json.key("speedup").value(speedup);
    json.key("target_setups_per_s").value(kTargetSetupsPerSec);
    json.key("target_met").value(churn.cached_setups_per_s >= kTargetSetupsPerSec);
    json.key("cache_hits").value(churn.hits);
    json.key("cache_misses").value(churn.misses);
    json.key("replay_aborts").value(churn.replay_aborts);
    json.key("trajectory_setups_per_s").begin_array();
    for (double rate : churn.trajectory) json.value(rate);
    json.end_array();
    json.key("concurrent_scaling").begin_array();
    for (const ScalingPoint& p : scaling) {
      json.begin_object();
      json.key("threads").value(static_cast<std::uint64_t>(p.threads));
      json.key("seconds").value(p.seconds);
      json.key("placed").value(p.placed);
      json.key("fast_path_commits").value(p.fast_path);
      json.key("replans").value(p.replans);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    if (json.write_file("BENCH_circuit_churn.json")) {
      std::printf("wrote BENCH_circuit_churn.json\n");
    } else {
      std::printf("FAILED to write BENCH_circuit_churn.json\n");
    }
  }
}

// --- google-benchmark micros ------------------------------------------------

void BM_FreshPlanPlaceRelease(benchmark::State& state) {
  Fabric fab{churn_config()};
  CircuitPlanner planner{fab};
  const auto sets = churn_sets(0xc0ffee);
  for (auto _ : state) {
    PlanReport r = planner.place_all(sets[0]);
    planner.release_all(r);
    benchmark::DoNotOptimize(r.placed.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDemandsPerSet));
}
BENCHMARK(BM_FreshPlanPlaceRelease);

void BM_CachedPlanPlaceRelease(benchmark::State& state) {
  Fabric fab{churn_config()};
  PlanCache cache{fab};
  const auto sets = churn_sets(0xc0ffee);
  cache.release_all(cache.place_all(sets[0]));  // warm the entry
  for (auto _ : state) {
    PlanReport r = cache.place_all(sets[0]);
    cache.release_all(r);
    benchmark::DoNotOptimize(r.placed.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDemandsPerSet));
}
BENCHMARK(BM_CachedPlanPlaceRelease);

void BM_RouteForHit(benchmark::State& state) {
  Fabric fab{churn_config()};
  PlanCache cache{fab};
  const Demand d{{0, 0}, {0, static_cast<TileId>(kGrid * kGrid - 1)}, 1};
  benchmark::DoNotOptimize(cache.route_for(d));  // warm
  for (auto _ : state) {
    auto hops = cache.route_for(d);
    benchmark::DoNotOptimize(hops);
  }
}
BENCHMARK(BM_RouteForHit);

}  // namespace

LP_BENCH_MAIN_JSON(print_report)
