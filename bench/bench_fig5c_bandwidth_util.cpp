// Figure 5c: "electrical interconnects underutilize bandwidth in slices
// smaller than a rack and reconfigurable optical interconnects like
// LIGHTPATH maximize the bandwidth utilization for the same slices."
//
// Reproduces the figure's bar chart for the paper's packing (Slice-1/2:
// 4x2x1, Slice-3: 4x4x1, Slice-4: 4x4x2): per-chip bandwidth utilization
// under the electrical torus vs optical redirection, plus the measured
// effective ReduceScatter bandwidth from the flow simulator.
#include "bench/bench_common.hpp"
#include "collective/congestion.hpp"
#include "collective/cost_model.hpp"
#include "collective/schedule.hpp"
#include "sim/flow_sim.hpp"
#include "topo/slice.hpp"

namespace {

using namespace lp;
using coll::Interconnect;

void print_report() {
  bench::header("Figure 5c: per-slice bandwidth utilization, electrical vs optical");

  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  const auto packing = topo::pack_figure5(alloc);
  if (!packing.ok()) {
    std::printf("packing failed: %s\n", packing.error().message.c_str());
    return;
  }
  const coll::CostParams params;
  const DataSize n = DataSize::mib(256);

  struct Row {
    const char* name;
    topo::SliceId id;
  };
  const Row rows[] = {{"Slice-1 (4x2x1)", packing.value().slice1},
                      {"Slice-2 (4x2x1)", packing.value().slice2},
                      {"Slice-3 (4x4x1)", packing.value().slice3},
                      {"Slice-4 (4x4x2)", packing.value().slice4}};

  std::printf("  %-16s  %10s  %10s  %16s  %16s\n", "slice", "elec util", "opt util",
              "elec eff. BW/chip", "opt eff. BW/chip");
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  for (const Row& row : rows) {
    const topo::Slice* s = alloc.slice(row.id);
    const auto plan = coll::build_plan(*s, cluster.config().rack_shape);
    const double elec_util =
        coll::bandwidth_utilization(plan, Interconnect::kElectrical, params);
    const double opt_util =
        coll::bandwidth_utilization(plan, Interconnect::kOptical, params);

    // Effective bandwidth: bytes each chip must move (ReduceScatter optimal
    // per-chip volume) over the measured completion time.
    const auto elec_run = fsim.run(coll::build_reduce_scatter_schedule(
        cluster, *s, n, Interconnect::kElectrical, params));
    const auto opt_run = fsim.run(coll::build_reduce_scatter_schedule(
        cluster, *s, n, Interconnect::kOptical, params));
    const double p = s->chip_count();
    const double bytes_per_chip = n.to_bytes() * (p - 1.0) / p;
    const double elec_bw = bytes_per_chip / elec_run.total.to_seconds() / 1e9;
    const double opt_bw = bytes_per_chip / opt_run.total.to_seconds() / 1e9;
    std::printf("  %-16s  %9.0f%%  %9.0f%%  %13.1f GB/s  %13.1f GB/s\n", row.name,
                100 * elec_util, 100 * opt_util, elec_bw, opt_bw);
  }
  bench::line();
  std::printf("paper: Slice-1/2 suffer up to 66%% lower bandwidth (1/3 util);\n");
  std::printf("       Slice-3/4 lose 33%% (2/3 util); optics reaches 100%% everywhere.\n");

  // Congestion sanity: naive all-active ringing congests the shared dims.
  const auto naive =
      coll::analyze_rack(cluster, alloc, 0, coll::RingSelection::kAllActive);
  const auto safe =
      coll::analyze_rack(cluster, alloc, 0, coll::RingSelection::kUsableOnly);
  std::printf("\nFigure 5b check: all-active rings -> %zu congested links, %zu foreign transits;\n",
              naive.load.congested_link_count(), naive.foreign_transits);
  std::printf("                 usable-only rings -> congestion-free = %s\n",
              safe.congestion_free ? "yes" : "no");
}

void BM_RackAnalysis(benchmark::State& state) {
  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  (void)topo::pack_figure5(alloc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll::analyze_rack(cluster, alloc, 0, coll::RingSelection::kAllActive));
  }
}
BENCHMARK(BM_RackAnalysis);

void BM_Utilization(benchmark::State& state) {
  topo::TpuCluster cluster;
  const topo::Slice s{0, 0, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}}};
  const auto plan = coll::build_plan(s, cluster.config().rack_shape);
  const coll::CostParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll::bandwidth_utilization(plan, Interconnect::kElectrical, params));
  }
}
BENCHMARK(BM_Utilization);

}  // namespace

LP_BENCH_MAIN(print_report)
