// Ablation: circuit-switched host stack policies (§1's "new host
// networking software stacks optimized for circuit-switching").
//
// Sweeps the working set (distinct peers each chip talks to) and message
// size, reporting hit rate and mean message latency of the LRU circuit
// cache, versus the no-cache lower layer (reconfigure every message) and
// the r-free ideal.  The SerDes port bound (8 peers) is the knee: below it
// the cache makes reconfiguration vanish; above it, thrashing returns the
// cost of r on every message.
#include "bench/bench_common.hpp"
#include "core/host_stack.hpp"
#include "util/rng.hpp"

namespace {

using namespace lp;
using fabric::GlobalTile;

void print_report() {
  bench::header("Circuit-cache host stack: hit rate and message latency");
  std::printf("32 chips, uniform traffic over a working set of W peers per chip\n\n");
  std::printf("  W peers  msg size   hit rate   mean latency   no-cache     ideal (r=0)\n");

  Rng rng{42};
  for (std::uint32_t working_set : {2u, 4u, 8u, 12u, 16u, 31u}) {
    for (const double kib : {64.0, 4096.0}) {
      const DataSize msg = DataSize::kib(kib);
      fabric::Fabric fab;
      core::HostStack stack{fab};
      constexpr int kMessages = 2000;
      Duration total = Duration::zero();
      for (int m = 0; m < kMessages; ++m) {
        const auto src = static_cast<fabric::TileId>(rng.uniform_index(32));
        const auto offset =
            1 + static_cast<fabric::TileId>(rng.uniform_index(working_set));
        const auto dst = static_cast<fabric::TileId>((src + offset) % 32);
        const auto sent = stack.send(GlobalTile{0, src}, GlobalTile{0, dst}, msg);
        if (sent) total += sent.value();
      }
      const auto& st = stack.stats();
      // Reference points: every message pays r; no message pays r.
      const Duration transfer = st.transfer_time / static_cast<double>(st.messages);
      const Duration setup = st.misses > 0
                                 ? st.reconfig_time / static_cast<double>(st.misses)
                                 : Duration::zero();
      const Duration no_cache = transfer + setup;
      std::printf("  %7u  %7.0fK   %7.1f%%   %12s   %10s   %10s\n", working_set, kib,
                  100.0 * st.hit_rate(),
                  bench::fmt_time((total / static_cast<double>(kMessages)).to_seconds()).c_str(),
                  bench::fmt_time(no_cache.to_seconds()).c_str(),
                  bench::fmt_time(transfer.to_seconds()).c_str());
    }
  }
  bench::line();
  std::printf("working sets within the 8-port SerDes bound cache perfectly; beyond it\n");
  std::printf("LRU thrashes and every message pays ~r — the host-stack design problem\n");
  std::printf("the paper poses.  Large messages amortize r regardless.\n");
}

void BM_SendHit(benchmark::State& state) {
  fabric::Fabric fab;
  core::HostStack stack{fab};
  (void)stack.send(GlobalTile{0, 0}, GlobalTile{0, 1}, DataSize::kib(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.send(GlobalTile{0, 0}, GlobalTile{0, 1}, DataSize::kib(1)));
  }
}
BENCHMARK(BM_SendHit);

void BM_SendThrash(benchmark::State& state) {
  fabric::Fabric fab;
  core::HostStack stack{fab};
  fabric::TileId dst = 1;
  for (auto _ : state) {
    dst = dst % 31 + 1;  // cycle 31 peers through 8 slots
    benchmark::DoNotOptimize(stack.send(GlobalTile{0, 0}, GlobalTile{0, dst}, DataSize::kib(1)));
  }
}
BENCHMARK(BM_SendThrash);

}  // namespace

LP_BENCH_MAIN(print_report)
