// Event-engine dispatch throughput: calendar queue vs binary-heap baselines.
//
// The serving simulator wants millions of simulated requests per second,
// which puts tens of millions of events per second through the scheduler.
// Three implementations are driven through identical workloads:
//
//   * seed heap — a faithful replica of the repo's original EventQueue
//     (std::priority_queue of std::function, the full Item *copied* out of
//     top() on every dispatch).  This is the baseline the engine replaces.
//   * fixed heap — today's sim::EventQueue (same heap, move-based dispatch).
//   * calendar engine — sim::EventEngine (hierarchical calendar buckets over
//     a slab of 64-byte records, inline handlers, hugepage-backed storage).
//
// The issue's headline: the heap baseline cannot sustain the event rate the
// serving workload implies.  The scaling table quantifies that — the heap
// collapses below 1e6 events/s once millions of events are pending, while
// the engine clears 1e7 events/s at the serving operating point (thousands
// of pending timers) and stays ahead at every equal-footing scale.
//
// --json writes BENCH_event_queue.json for CI artifact upload.
#include <chrono>
#include <cstdio>
#include <functional>
#include <queue>
#include <vector>

#include "bench_common.hpp"
#include "sim/event_engine.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using lp::Duration;
using lp::Rng;
using lp::TimePoint;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Faithful replica of the seed EventQueue: binary heap of std::function
/// closures with the Item copied out of top() before every dispatch (one
/// heap allocation + one deep copy per event on top of the sift costs).
class SeedHeapQueue {
 public:
  using Callback = std::function<void()>;

  void schedule_at(TimePoint when, Callback fn) {
    heap_.push(Item{when, next_seq_++, std::move(fn)});
  }
  void schedule_in(Duration delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  std::size_t run(std::size_t max_events = SIZE_MAX) {
    std::size_t processed = 0;
    while (!heap_.empty() && processed < max_events) {
      Item item = heap_.top();
      heap_.pop();
      now_ = item.when;
      item.fn();
      ++processed;
    }
    return processed;
  }

 private:
  struct Item {
    TimePoint when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  TimePoint now_{};
  std::uint64_t next_seq_{0};
};

/// Workload 1 — bulk drain: preload N timestamped events, run to empty.
/// Stresses enqueue order randomness and dispatch; no reentrancy.  The
/// timed region covers insert + drain.
template <typename Q>
double bulk_drain_events_per_s(std::size_t n, std::uint64_t seed) {
  Q q;
  Rng rng{seed};
  std::size_t fired = 0;
  const double t0 = now_seconds();
  for (std::size_t i = 0; i < n; ++i) {
    q.schedule_at(TimePoint::at_seconds(rng.uniform(0.0, 1.0)),
                  [&fired] { ++fired; });
  }
  q.run();
  const double dt = now_seconds() - t0;
  return dt > 0.0 ? static_cast<double>(fired) / dt : 0.0;
}

/// Workload 2 — steady-state timer wheel: `held` pending timers; each
/// firing re-arms itself a random exponential gap ahead.  This is the
/// serving simulator's actual shape (arrival + round + heartbeat timers)
/// and the regime calendar queues are built for.  The preload is untimed:
/// the metric is steady-state dispatch throughput.
template <typename Q>
double steady_state_events_per_s(std::size_t held, std::size_t total,
                                 std::uint64_t seed) {
  Q q;
  Rng rng{seed};
  std::size_t fired = 0;
  // Self-re-arming timer; captures kept <= 32 bytes so the engine stores
  // the handler inline.
  struct Timer {
    Q* q;
    Rng* rng;
    std::size_t* fired;
    std::size_t total;
    void operator()() const {
      ++*fired;
      if (*fired >= total) return;
      auto self = *this;
      q->schedule_in(Duration::seconds(rng->exponential(1e6)), self);
    }
  };
  static_assert(sizeof(Timer) <= lp::sim::InlineHandler::kInlineBytes);
  for (std::size_t i = 0; i < held; ++i) {
    q.schedule_at(TimePoint::at_seconds(rng.uniform(0.0, 1e-6)),
                  Timer{&q, &rng, &fired, total});
  }
  const double t0 = now_seconds();
  while (!q.empty() && fired < total) q.run(total - fired);
  const double dt = now_seconds() - t0;
  return dt > 0.0 ? static_cast<double>(fired) / dt : 0.0;
}

constexpr std::size_t kBulk = 1'000'000;
constexpr std::size_t kHeld = 4096;        // serving operating point
constexpr std::size_t kSteady = 4'000'000;
constexpr std::size_t kScaleDispatches = 2'000'000;
constexpr std::size_t kScaleHeld[] = {4096, 65536, 1'048'576, 4'194'304};
constexpr double kTargetAbs = 1e7;
constexpr double kTargetSpeedup = 10.0;

void print_report(bool emit_json) {
  lp::bench::header("Event dispatch: calendar engine vs binary-heap baselines");

  // Warm allocators once so first-touch page faults don't skew the timing.
  (void)bulk_drain_events_per_s<lp::sim::EventEngine>(kBulk / 10, 7);
  (void)bulk_drain_events_per_s<lp::sim::EventQueue>(kBulk / 10, 7);

  const double seed_bulk = bulk_drain_events_per_s<SeedHeapQueue>(kBulk, 1);
  const double heap_bulk = bulk_drain_events_per_s<lp::sim::EventQueue>(kBulk, 1);
  const double cal_bulk = bulk_drain_events_per_s<lp::sim::EventEngine>(kBulk, 1);

  const double seed_steady =
      steady_state_events_per_s<SeedHeapQueue>(kHeld, kSteady, 2);
  const double heap_steady =
      steady_state_events_per_s<lp::sim::EventQueue>(kHeld, kSteady, 2);
  const double cal_steady =
      steady_state_events_per_s<lp::sim::EventEngine>(kHeld, kSteady, 2);

  std::printf("bulk drain (%zu events, random times, insert + drain):\n", kBulk);
  std::printf("  seed heap (copy dispatch) : %10.3e events/s\n", seed_bulk);
  std::printf("  fixed heap (move dispatch): %10.3e events/s\n", heap_bulk);
  std::printf("  calendar engine           : %10.3e events/s  (%.1fx over seed)\n",
              cal_bulk, cal_bulk / seed_bulk);
  std::printf("steady state (%zu held timers, %zu dispatches) — "
              "the serving operating point:\n",
              kHeld, kSteady);
  std::printf("  seed heap (copy dispatch) : %10.3e events/s\n", seed_steady);
  std::printf("  fixed heap (move dispatch): %10.3e events/s\n", heap_steady);
  std::printf("  calendar engine           : %10.3e events/s  (%.1fx over seed)\n",
              cal_steady, cal_steady / seed_steady);

  // Scaling: dispatch throughput as the pending set grows to the
  // millions-in-flight regime the serving workload implies.  The heaps'
  // O(log n) sift over scattered std::function state collapses; the
  // calendar's O(1) bucket operations degrade only with memory latency.
  std::printf("\ndispatch throughput vs pending-set size (steady state, "
              "%zu dispatches):\n", kScaleDispatches);
  std::printf("  pending    seed heap     fixed heap    calendar    equal-footing\n");
  std::vector<std::array<double, 3>> scale_rows;
  double heap_at_scale = 0.0;
  double cal_at_scale = 0.0;
  for (const std::size_t held : kScaleHeld) {
    const double s =
        steady_state_events_per_s<SeedHeapQueue>(held, kScaleDispatches, 3);
    const double h =
        steady_state_events_per_s<lp::sim::EventQueue>(held, kScaleDispatches, 3);
    const double c =
        steady_state_events_per_s<lp::sim::EventEngine>(held, kScaleDispatches, 3);
    scale_rows.push_back({s, h, c});
    heap_at_scale = s;  // last row: the multi-million-pending regime
    cal_at_scale = c;
    std::printf("  %7zu  %10.3e  %10.3e  %10.3e   %10.1fx\n", held, s, h, c,
                c / s);
  }
  lp::bench::line();
  const double speedup_at_scale = cal_steady / heap_at_scale;
  std::printf("heap baseline at %zu pending      : %10.3e events/s\n",
              kScaleHeld[3], heap_at_scale);
  std::printf("calendar at the same %zu pending  : %10.3e events/s  (%.1fx equal footing)\n",
              kScaleHeld[3], cal_at_scale, cal_at_scale / heap_at_scale);
  std::printf("calendar at the serving point        : %10.3e events/s  (%.1fx)\n",
              cal_steady, speedup_at_scale);
  std::printf("target >= %.0e events/s (serving point)              : %s\n",
              kTargetAbs, cal_steady >= kTargetAbs ? "PASS" : "FAIL");
  std::printf("target >= %.0fx over heap baseline at pending scale  : %s\n",
              kTargetSpeedup, speedup_at_scale >= kTargetSpeedup ? "PASS" : "FAIL");

  if (emit_json) {
    lp::bench::JsonWriter json;
    json.begin_object();
    json.key("bulk_events").value(static_cast<std::uint64_t>(kBulk));
    json.key("seed_bulk_events_per_s").value(seed_bulk);
    json.key("heap_bulk_events_per_s").value(heap_bulk);
    json.key("calendar_bulk_events_per_s").value(cal_bulk);
    json.key("steady_held").value(static_cast<std::uint64_t>(kHeld));
    json.key("steady_dispatches").value(static_cast<std::uint64_t>(kSteady));
    json.key("seed_steady_events_per_s").value(seed_steady);
    json.key("heap_steady_events_per_s").value(heap_steady);
    json.key("calendar_steady_events_per_s").value(cal_steady);
    json.key("scaling").begin_array();
    for (std::size_t i = 0; i < scale_rows.size(); ++i) {
      json.begin_object();
      json.key("pending").value(static_cast<std::uint64_t>(kScaleHeld[i]));
      json.key("seed_events_per_s").value(scale_rows[i][0]);
      json.key("heap_events_per_s").value(scale_rows[i][1]);
      json.key("calendar_events_per_s").value(scale_rows[i][2]);
      json.end_object();
    }
    json.end_array();
    json.key("heap_at_scale_events_per_s").value(heap_at_scale);
    json.key("speedup_vs_heap_at_scale").value(speedup_at_scale);
    json.key("target_events_per_s").value(kTargetAbs);
    json.key("target_speedup").value(kTargetSpeedup);
    json.key("pass")
        .value(cal_steady >= kTargetAbs && speedup_at_scale >= kTargetSpeedup);
    json.end_object();
    if (json.write_file("BENCH_event_queue.json")) {
      std::printf("\nwrote BENCH_event_queue.json\n");
    }
  }
}

void BM_CalendarBulkDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bulk_drain_events_per_s<lp::sim::EventEngine>(n, 11));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CalendarBulkDrain)->Arg(10000)->Arg(100000);

void BM_HeapBulkDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bulk_drain_events_per_s<lp::sim::EventQueue>(n, 11));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HeapBulkDrain)->Arg(10000)->Arg(100000);

void BM_CalendarSteadyState(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        steady_state_events_per_s<lp::sim::EventEngine>(1024, 100000, 13));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_CalendarSteadyState);

}  // namespace

LP_BENCH_MAIN_JSON(print_report)
