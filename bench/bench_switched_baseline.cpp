// §1 three-way comparison: direct-connect torus vs switched server vs
// server-scale photonics.
//
// The switched server matches photonics when it is quiet (both give a ring
// the full port bandwidth), but its core is a *shared* resource: as other
// tenants load the switch, every flow's share shrinks — the contention
// evidence §1 cites.  Photonic circuits are dedicated end to end, so
// background tenants cannot touch them; the direct-connect torus never
// reaches full bandwidth on sub-rack slices at all (Tables 1-2).
#include "bench/bench_common.hpp"
#include "collective/cost_model.hpp"
#include "topo/slice.hpp"
#include "topo/switched.hpp"

namespace {

using namespace lp;

void print_report() {
  bench::header("Direct-connect vs switched server vs photonics (8-chip AllReduce)");

  // Keep the three designs comparable: every chip has ~450 GB/s of egress.
  const Bandwidth chip_bw = Bandwidth::gBps(448.0);  // 16 x 224 Gbps
  coll::CostParams params;
  params.chip_bandwidth = chip_bw;
  const DataSize n = DataSize::mib(256);

  // Direct-connect: Slice-1-shaped tenant (one usable dim).
  const topo::Slice slice{0, 0, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}}};
  const auto plan = coll::build_plan(slice, topo::Shape{{4, 4, 4}});
  const auto direct =
      coll::reduce_scatter_cost(plan, n, coll::Interconnect::kElectrical, params);
  const auto photonic =
      coll::reduce_scatter_cost(plan, n, coll::Interconnect::kOptical, params);

  topo::SwitchedServerParams sw_params;
  sw_params.port_bandwidth = chip_bw;
  sw_params.aggregate_bandwidth = chip_bw * 8.0 * 0.75;
  const topo::SwitchedServer sw{sw_params};

  std::printf("ReduceScatter of %s over 8 chips; background = other tenants' load on\n",
              bench::fmt_bytes(n.to_bytes()).c_str());
  std::printf("the shared switch core (photonics and the torus are unaffected)\n\n");
  std::printf("  background    direct-connect   switched        photonic\n");
  for (const double bg_fraction : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    const Bandwidth bg = sw_params.aggregate_bandwidth * bg_fraction;
    const Duration sw_beta = sw.ring_collective_beta(n, 8, bg);
    std::printf("  %8.0f%%    %12s    %12s    %12s\n", 100 * bg_fraction,
                bench::fmt_time(direct.beta_time.to_seconds()).c_str(),
                bench::fmt_time(sw_beta.to_seconds()).c_str(),
                bench::fmt_time(photonic.beta_time.to_seconds()).c_str());
  }
  bench::line();
  std::printf("quiet switch == photonics (both port-bound); a loaded switch degrades\n");
  std::printf("past both, and the direct-connect torus never reaches port rate on a\n");
  std::printf("one-usable-dim slice.  Photonic circuits are immune to neighbors.\n");

  // Incast view: all-to-all across tenants.
  std::printf("\nall-to-all (per-chip volume %s), quiet vs 75%%-loaded switch:\n",
              bench::fmt_bytes(n.to_bytes()).c_str());
  std::printf("  switched quiet:  %s\n",
              bench::fmt_time(sw.all_to_all_beta(n, 8, Bandwidth::zero()).to_seconds()).c_str());
  std::printf("  switched loaded: %s\n",
              bench::fmt_time(
                  sw.all_to_all_beta(n, 8, sw_params.aggregate_bandwidth * 0.75).to_seconds())
                  .c_str());
  std::printf("  photonic:        %s (dedicated circuits per round)\n",
              bench::fmt_time(transfer_time(n, chip_bw).to_seconds()).c_str());
}

void BM_SwitchedRate(benchmark::State& state) {
  const topo::SwitchedServer sw;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.effective_flow_rate(8, Bandwidth::gBps(1000)));
  }
}
BENCHMARK(BM_SwitchedRate);

}  // namespace

LP_BENCH_MAIN(print_report)
