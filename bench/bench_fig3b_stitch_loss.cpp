// Figure 3b: distribution of reticle stitch loss.
//
// The paper measures the loss where waveguides cross reticle boundaries
// across the wafer and plots its distribution with a Gaussian fit,
// concluding the crossings are low-loss (0.25 dB).  We Monte-Carlo the
// stitch-loss model, print the histogram, fit a Gaussian, and additionally
// report the yield impact: the fraction of worst-case circuits whose link
// budget still closes under sampled (not mean) stitch losses.
#include <vector>

#include "bench/bench_common.hpp"
#include "phys/link_budget.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace lp;

void print_report() {
  bench::header("Figure 3b: distribution of reticle stitch loss");

  const phys::LossModel loss;
  Rng rng{2024};
  constexpr int kSamples = 10000;
  Histogram hist{0.0, 0.8, 16};
  std::vector<double> samples;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    const double s = loss.sample_stitch(rng).value();
    hist.add(s);
    samples.push_back(s);
  }
  std::printf("%d sampled stitches (dB):\n%s", kSamples, hist.to_ascii(40).c_str());
  const auto fit = fit_gaussian(samples);
  bench::line();
  std::printf("gaussian fit: mean = %.3f dB, sigma = %.3f dB   <-- paper: low-loss 0.25 dB\n",
              fit.mean, fit.sigma);

  // Yield: worst-case wafer-crossing circuit (20 stitches) under sampled
  // losses.
  const phys::LinkBudget budget;
  phys::CircuitProfile profile;
  profile.waveguide_length = Length::millimeters(25.0 * 20);
  profile.crossings = 18;
  profile.stitches = 20;
  profile.mzi_traversals = 24;
  int closed = 0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    const auto report = budget.evaluate_at_loss(budget.sampled_path_loss(profile, rng));
    if (report.closes) ++closed;
  }
  std::printf("link-budget yield of worst-case 20-stitch circuit: %.1f%% (%d/%d)\n",
              100.0 * closed / kTrials, closed, kTrials);
}

void BM_SampleStitch(benchmark::State& state) {
  const phys::LossModel loss;
  Rng rng{7};
  for (auto _ : state) benchmark::DoNotOptimize(loss.sample_stitch(rng));
}
BENCHMARK(BM_SampleStitch);

void BM_SampledPathLoss(benchmark::State& state) {
  const phys::LinkBudget budget;
  phys::CircuitProfile profile;
  profile.stitches = static_cast<unsigned>(state.range(0));
  Rng rng{7};
  for (auto _ : state) benchmark::DoNotOptimize(budget.sampled_path_loss(profile, rng));
}
BENCHMARK(BM_SampledPathLoss)->Arg(2)->Arg(20);

}  // namespace

LP_BENCH_MAIN(print_report)
