// Figure 4: waveguide density — "MZI switches and waveguides are arranged
// in a grid on a tile to allow 10,000 waveguides ... waveguide [pitch] is
// 3 um".
//
// We sweep the lithographic pitch and report how many lanes enter a tile,
// then show the consequence for circuit capacity: how many simultaneous
// full-bandwidth (16-lambda) circuits the densest cut of the wafer can
// carry.
#include "bench/bench_common.hpp"
#include "lightpath/tile.hpp"
#include "lightpath/wafer.hpp"
#include "routing/planner.hpp"

namespace {

using namespace lp;

void print_report() {
  bench::header("Figure 4: waveguides per tile vs pitch");
  std::printf("  pitch (um)   lanes/edge   lanes/tile (both axes)\n");
  for (double pitch_um : {1.0, 2.0, 3.0, 5.0, 10.0}) {
    fabric::TileParams params;
    params.waveguide_pitch = Length::microns(pitch_um);
    const auto lanes = fabric::waveguides_per_edge(params);
    std::printf("  %8.1f    %9u   %10u%s\n", pitch_um, lanes, 2 * lanes,
                pitch_um == 3.0 ? "   <-- paper: >10,000 per tile" : "");
  }

  bench::line();
  // Capacity consequence: a column cut of the 4x8 wafer has 4 edges; at the
  // paper's pitch each carries 8333 lanes, so a cut sustains 4 x 8333 / 16
  // = 2083 full-bandwidth circuits — three orders of magnitude more than
  // the 32 chips could ever demand (each chip has 16 Tx lambdas).
  fabric::TileParams paper;
  const auto lanes = fabric::waveguides_per_edge(paper);
  const unsigned cut_edges = 4;
  std::printf("wafer column-cut capacity: %u lanes -> %u concurrent 16-lambda circuits\n",
              cut_edges * lanes, cut_edges * lanes / 16);
  std::printf("chip demand ceiling: 32 chips x 16 lambdas = %u lanes (%.2f%% of cut)\n",
              32 * 16, 100.0 * (32 * 16) / (cut_edges * lanes));
}

void BM_PlaceAllPermutation(benchmark::State& state) {
  // Routing cost at paper-scale lane counts.
  fabric::FabricConfig config;
  config.wafer.lanes_per_edge = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    fabric::Fabric fab{config};
    routing::CircuitPlanner planner{fab};
    std::vector<routing::Demand> demands;
    for (fabric::TileId t = 0; t < 32; ++t) {
      demands.push_back(routing::Demand{fabric::GlobalTile{0, t},
                                        fabric::GlobalTile{0, (t + 13) % 32}, 8});
    }
    auto report = planner.place_all(demands);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_PlaceAllPermutation)->Arg(64)->Arg(1024)->Arg(8192);

}  // namespace

LP_BENCH_MAIN(print_report)
