// §2 motivation quantified: "accelerators remain idle during training for
// large fractions of the time waiting for inter-accelerator communication".
//
// Sweeps gradient volume per iteration for the paper's slice shapes and
// reports the communication-idle fraction and iteration time on the
// electrical torus vs the photonic interconnect.
#include "bench/bench_common.hpp"
#include "core/training_sim.hpp"
#include "topo/slice.hpp"

namespace {

using namespace lp;
using coll::Interconnect;

const topo::Shape kRack{{4, 4, 4}};

void print_report() {
  bench::header("Training-step idle time: electrical vs photonic interconnect");
  coll::CostParams params;

  struct SliceCase {
    const char* name;
    topo::Slice slice;
  };
  const SliceCase slices[] = {
      {"4x2x1", topo::Slice{0, 0, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}}}},
      {"4x4x1", topo::Slice{1, 0, topo::Coord{{0, 0, 2}}, topo::Shape{{4, 4, 1}}}},
  };

  std::printf("16 gradient buckets, 2 ms compute per bucket; per-bucket size sweep\n\n");
  std::printf("  slice  bucket    elec iter   elec idle    opt iter    opt idle\n");
  for (const auto& sc : slices) {
    for (const double mib : {16.0, 64.0, 256.0}) {
      core::TrainingConfig config;
      config.bucket_bytes = DataSize::mib(mib);
      const auto elec = core::simulate_training_iteration(
          sc.slice, kRack, config, Interconnect::kElectrical, params);
      const auto opt = core::simulate_training_iteration(
          sc.slice, kRack, config, Interconnect::kOptical, params);
      std::printf("  %-5s  %5.0fMiB  %10s  %8.1f%%  %10s  %8.1f%%\n", sc.name, mib,
                  bench::fmt_time(elec.iteration.to_seconds()).c_str(),
                  100.0 * elec.idle_fraction(),
                  bench::fmt_time(opt.iteration.to_seconds()).c_str(),
                  100.0 * opt.idle_fraction());
    }
  }
  bench::line();
  std::printf("small buckets hide under compute on both fabrics; at large gradient\n");
  std::printf("volumes the electrical torus exposes most of its 3x-slower collectives\n");
  std::printf("while redirection keeps the accelerators busy — the paper's motivation.\n");
}

void BM_IterationSim(benchmark::State& state) {
  const topo::Slice slice{0, 0, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}}};
  const coll::CostParams params;
  core::TrainingConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::simulate_training_iteration(
        slice, kRack, config, Interconnect::kOptical, params));
  }
}
BENCHMARK(BM_IterationSim);

}  // namespace

LP_BENCH_MAIN(print_report)
