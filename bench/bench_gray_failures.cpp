// Gray-failure tolerance: goodput/SLO vs flap rate, hysteresis+backoff vs
// naive repair-on-every-transition.
//
// The availability and resilience benches assume fail-stop faults; this one
// asks the harder question — does fast optical reconfiguration still win
// when the fabric lies?  A flapping transceiver (fault/gray.hpp) dips for
// milliseconds and recovers; the naive controller climbs the repair ladder
// on every transition (each climb thrashes: all programming attempts inside
// a dip fail transiently) and eventually misclassifies the flapper as dead,
// paying a rollback respare.  The dampened controller (fault/health.hpp
// FlapDamper) quarantines the flapper after a few dips and rides the rest
// out, then the serving and cluster layers show the same contrast on SLO
// attainment and morph placement.
//
// --json additionally writes BENCH_gray_failures.json.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/scheduler.hpp"
#include "fault/gray.hpp"
#include "serve/serving_sim.hpp"
#include "runtime/training_run.hpp"
#include "util/rng.hpp"

namespace {

using namespace lp;

runtime::GraySweepConfig sweep_config() {
  runtime::GraySweepConfig config;
  // Flap-only regime: permanent faults off so the sweep isolates the gray
  // layer; a 50 us backoff base with 50% deterministic jitter desynchronizes
  // retry storms inside each dip.
  config.base.iterations = 400;
  config.base.mtbf_hours = 1e9;
  config.base.recovery.rung_backoff.base = Duration::micros(50.0);
  config.base.recovery.rung_backoff.jitter_fraction = 0.5;
  config.trials = 3;
  return config;
}

void print_sweep(bench::JsonWriter* jw) {
  const auto config = sweep_config();
  bench::header("Goodput vs flap rate: quarantine hysteresis vs naive repair");
  std::printf("56-chip training ring, %u iterations/run, %u trials/point;\n",
              config.base.iterations, config.trials);
  std::printf(
      "both arms of a trial face the identical flap-episode timeline.\n\n");
  std::printf("  %-10s %-12s %9s %9s %9s %7s %7s %7s %7s\n", "flaps/h",
              "controller", "goodput", "min", "max", "thrash", "suppr",
              "quarant", "miscls");

  const runtime::GraySweepReport report = runtime::run_gray_sweep(config);
  if (jw != nullptr) jw->key("sweep").begin_array();
  for (const runtime::GrayPointReport& pt : report.points) {
    std::printf("  %-10.1f %-12s %9.5f %9.5f %9.5f %7llu %7llu %7llu %7llu\n",
                pt.flap_rate_per_hour, pt.hysteresis ? "hysteresis" : "naive",
                pt.goodput_mean, pt.goodput_min, pt.goodput_max,
                static_cast<unsigned long long>(pt.flap_repairs),
                static_cast<unsigned long long>(pt.suppressed_repairs),
                static_cast<unsigned long long>(pt.quarantines),
                static_cast<unsigned long long>(pt.misclassifications));
    if (jw != nullptr) {
      jw->begin_object();
      jw->key("flap_rate_per_hour").value(pt.flap_rate_per_hour);
      jw->key("hysteresis").value(pt.hysteresis);
      jw->key("goodput_mean").value(pt.goodput_mean);
      jw->key("goodput_min").value(pt.goodput_min);
      jw->key("goodput_max").value(pt.goodput_max);
      jw->key("flap_episodes").value(pt.flap_episodes);
      jw->key("flap_transitions").value(pt.flap_transitions);
      jw->key("flap_repairs").value(pt.flap_repairs);
      jw->key("suppressed_repairs").value(pt.suppressed_repairs);
      jw->key("quarantines").value(pt.quarantines);
      jw->key("probations").value(pt.probations);
      jw->key("relapses").value(pt.relapses);
      jw->key("misclassifications").value(pt.misclassifications);
      jw->key("rollbacks").value(pt.rollbacks);
      jw->key("transient_repair_failures").value(pt.transient_repair_failures);
      jw->key("ber_bursts").value(pt.ber_bursts);
      jw->key("flap_stall_seconds").value(pt.flap_stall_seconds);
      jw->key("ber_slowdown_seconds").value(pt.ber_slowdown_seconds);
      jw->end_object();
    }
  }
  if (jw != nullptr) jw->end_array();

  // The acceptance check, printed so a regression is visible in the log:
  // hysteresis+backoff must sustain strictly higher goodput at every flap
  // rate (points come in hysteresis/naive pairs).
  bool hysteresis_wins = true;
  for (std::size_t i = 0; i + 1 < report.points.size(); i += 2) {
    if (report.points[i].goodput_mean <= report.points[i + 1].goodput_mean) {
      hysteresis_wins = false;
    }
  }
  bench::line();
  std::printf("hysteresis strictly above naive at every flap rate: %s\n",
              hysteresis_wins ? "yes" : "NO (regression!)");
  std::printf("sweep digest: %016llx  (bit-identical for any LIGHTPATH_THREADS)\n",
              static_cast<unsigned long long>(report.digest()));
  if (jw != nullptr) {
    jw->key("hysteresis_strictly_higher").value(hysteresis_wins);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(report.digest()));
    jw->key("sweep_digest").value(buf);
  }
}

void print_serving(bench::JsonWriter* jw) {
  bench::header("Serving under a flap storm: SLO attainment per controller");
  if (jw != nullptr) jw->key("serving").begin_array();
  for (const bool hysteresis : {false, true}) {
    serve::ServingParams params;
    params.traffic.arrival_rate = 40000.0;
    params.mtbf_hours = 0.0;  // isolate the gray layer
    params.flap_rate_per_hour = 40000.0;  // accelerated: ms-scale horizon
    params.gray_hysteresis = hysteresis;
    params.recovery.rung_backoff.base = Duration::micros(50.0);
    params.recovery.rung_backoff.jitter_fraction = 0.5;
    const serve::ServingReport r = serve::run_serving(params);
    std::printf(
        "  %-12s SLO %.4f  p99 %s  thrash %llu  suppressed %llu  "
        "quarantines %llu  stall %s\n",
        hysteresis ? "hysteresis" : "naive", r.slo_attainment(),
        bench::fmt_time(r.p99.to_seconds()).c_str(),
        static_cast<unsigned long long>(r.flap_repairs),
        static_cast<unsigned long long>(r.suppressed_repairs),
        static_cast<unsigned long long>(r.quarantines),
        bench::fmt_time(r.flap_stall.to_seconds()).c_str());
    if (jw != nullptr) {
      jw->begin_object();
      jw->key("hysteresis").value(hysteresis);
      jw->key("slo_attainment").value(r.slo_attainment());
      jw->key("p99_seconds").value(r.p99.to_seconds());
      jw->key("flap_episodes").value(r.flap_episodes);
      jw->key("flap_transitions").value(r.flap_transitions);
      jw->key("flap_repairs").value(r.flap_repairs);
      jw->key("suppressed_repairs").value(r.suppressed_repairs);
      jw->key("quarantines").value(r.quarantines);
      jw->key("transient_repair_failures").value(r.transient_repair_failures);
      jw->key("flap_stall_seconds").value(r.flap_stall.to_seconds());
      jw->end_object();
    }
  }
  if (jw != nullptr) jw->end_array();
  bench::line();
  std::printf("naive thrashes the ladder (and flushes the circuit cache) on\n");
  std::printf("every transition; the damper rides the dips out quarantined.\n");
}

void print_cluster(bench::JsonWriter* jw) {
  bench::header("Cluster scheduler: morphs deferred off flapping chips");
  if (jw != nullptr) jw->key("cluster").begin_array();
  for (const bool hysteresis : {false, true}) {
    cluster::ClusterParams params;
    params.horizon = Duration::seconds(120.0);
    params.drain = Duration::seconds(120.0);
    params.mtbf_hours = 1.0;
    params.flap_rate_per_hour = 240.0;  // per flapping chip, accelerated
    params.gray_hysteresis = hysteresis;
    params.damper.quarantine_threshold = 2.0;
    params.damper.half_life_seconds = 60.0;
    const cluster::ClusterReport r = cluster::run_cluster(params);
    std::printf(
        "  %-12s accepted %.4f  flaps %llu  thrash %llu  suppressed %llu  "
        "quarantines %llu  deferrals %llu\n",
        hysteresis ? "hysteresis" : "naive", r.accepted_load(),
        static_cast<unsigned long long>(r.flap_events),
        static_cast<unsigned long long>(r.flap_repairs),
        static_cast<unsigned long long>(r.suppressed_repairs),
        static_cast<unsigned long long>(r.chip_quarantines),
        static_cast<unsigned long long>(r.morph_deferrals));
    if (jw != nullptr) {
      jw->begin_object();
      jw->key("hysteresis").value(hysteresis);
      jw->key("accepted_load").value(r.accepted_load());
      jw->key("flap_events").value(r.flap_events);
      jw->key("flap_repairs").value(r.flap_repairs);
      jw->key("suppressed_repairs").value(r.suppressed_repairs);
      jw->key("chip_quarantines").value(r.chip_quarantines);
      jw->key("chip_probations").value(r.chip_probations);
      jw->key("morph_deferrals").value(r.morph_deferrals);
      jw->end_object();
    }
  }
  if (jw != nullptr) jw->end_array();
  bench::line();
  std::printf("harvest and respare skip chips the damper still holds in\n");
  std::printf("quarantine or probation: morphs land on stable hardware.\n");
}

void print_all(bool emit_json) {
  bench::JsonWriter jw;
  bench::JsonWriter* out = emit_json ? &jw : nullptr;
  if (out != nullptr) {
    jw.begin_object();
    jw.key("bench").value("gray_failures");
  }
  print_sweep(out);
  print_serving(out);
  print_cluster(out);
  if (out != nullptr) {
    jw.end_object();
    const char* path = "BENCH_gray_failures.json";
    std::printf("%s %s\n", jw.write_file(path) ? "wrote" : "FAILED to write", path);
  }
}

void BM_GrayEpisodeSample(benchmark::State& state) {
  fabric::Fabric fab{fabric::FabricConfig{}};
  fault::FaultInjector injector{fab, {}, 7};
  Rng rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.sample_gray_at(rng, {}, {0, 5},
                                                     fabric::Direction::kEast));
  }
}
BENCHMARK(BM_GrayEpisodeSample);

void BM_GraySweepPoint(benchmark::State& state) {
  runtime::GraySweepConfig config;
  config.base.iterations = 50;
  config.base.mtbf_hours = 1e9;
  config.flap_rates_per_hour = {8.0};
  config.trials = 1;
  config.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::run_gray_sweep(config));
  }
}
BENCHMARK(BM_GraySweepPoint);

}  // namespace

LP_BENCH_MAIN_JSON(print_all)
