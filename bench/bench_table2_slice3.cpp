// Table 2: REDUCESCATTER alpha-beta costs of Slice-3 (4x4x1, D=2), which
// executes the bucket algorithm in two stages: X rings (buffer N), then Y
// rings (buffer N/4).
//
//   stage    elec alpha  elec beta           optics alpha  optics beta
//   X rings  3a          (3/4)N  * 3/B       3a + r        (3/4)N  * 2/B
//   Y rings  3a          (3/16)N * 3/B       3a + r        (3/16)N * 2/B
//
// "The beta cost for Slice-3 ... is 1.5x higher for electrical
// interconnects."
#include "bench/bench_common.hpp"
#include "collective/cost_model.hpp"
#include "collective/schedule.hpp"
#include "sim/flow_sim.hpp"
#include "topo/slice.hpp"

namespace {

using namespace lp;
using coll::Interconnect;

const topo::Shape kRack{{4, 4, 4}};
const topo::Slice kSlice3{2, 0, topo::Coord{{0, 0, 2}}, topo::Shape{{4, 4, 1}}};

void print_report() {
  bench::header("Table 2: ReduceScatter costs of Slice-3 (4x4x1, D = 2)");

  const auto plan = coll::build_plan(kSlice3, kRack);
  coll::CostParams params;
  const DataSize n = DataSize::mib(256);

  std::printf("N = %s, B = %.0f GB/s; stage bandwidths: elec B/3, optics B/2\n\n",
              bench::fmt_bytes(n.to_bytes()).c_str(), params.chip_bandwidth.to_gBps());
  std::printf("  stage     buffer    elec alpha  elec beta     optics alpha  optics beta\n");
  const Bandwidth elec_bw = params.chip_bandwidth / 3.0;
  const Bandwidth opt_bw = params.chip_bandwidth / 2.0;
  double frac = 1.0;
  for (std::size_t i = 0; i < plan.stages.size(); ++i) {
    const auto& st = plan.stages[i];
    const double ring = st.ring_size;
    const DataSize stage_buffer = n * st.buffer_fraction;
    const DataSize bytes = stage_buffer * ((ring - 1.0) / ring);
    std::printf("  %zu (%s)   %8s   %d x a       %-10s    %d x a + r     %s\n", i + 1,
                i == 0 ? "X" : "Y", bench::fmt_bytes(stage_buffer.to_bytes()).c_str(),
                st.ring_size - 1,
                bench::fmt_time(transfer_time(bytes, elec_bw).to_seconds()).c_str(),
                st.ring_size - 1,
                bench::fmt_time(transfer_time(bytes, opt_bw).to_seconds()).c_str());
    frac /= ring;
  }

  const auto elec = coll::reduce_scatter_cost(plan, n, Interconnect::kElectrical, params);
  const auto opt = coll::reduce_scatter_cost(plan, n, Interconnect::kOptical, params);
  bench::line();
  std::printf("total beta: elec %s, optics %s; ratio %.3f   <-- paper: 1.5x\n",
              bench::fmt_time(elec.beta_time.to_seconds()).c_str(),
              bench::fmt_time(opt.beta_time.to_seconds()).c_str(),
              elec.beta_time / opt.beta_time);
  std::printf("total time: elec %s, optics %s (includes %d reconfigs)\n",
              bench::fmt_time(elec.total(params).to_seconds()).c_str(),
              bench::fmt_time(opt.total(params).to_seconds()).c_str(), opt.reconfigs);

  // Flow-sim confirmation.
  topo::TpuCluster cluster;
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  const auto elec_run = fsim.run(coll::build_reduce_scatter_schedule(
      cluster, kSlice3, n, Interconnect::kElectrical, params));
  std::printf("flow-sim electrical beta: %s — analytic model confirmed\n",
              bench::fmt_time(elec_run.total.to_seconds()).c_str());
}

void BM_PlanBuild(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(coll::build_plan(kSlice3, kRack));
}
BENCHMARK(BM_PlanBuild);

void BM_TwoStageSchedule(benchmark::State& state) {
  topo::TpuCluster cluster;
  const coll::CostParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll::build_reduce_scatter_schedule(
        cluster, kSlice3, DataSize::mib(256), Interconnect::kElectrical, params));
  }
}
BENCHMARK(BM_TwoStageSchedule);

}  // namespace

LP_BENCH_MAIN(print_report)
