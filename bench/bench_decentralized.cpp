// §5 challenge: "Decentralized algorithms" — a centralized controller
// tracking every waveguide does not scale to dynamic MoE-style traffic.
//
// Compares circuit-setup latency of the simulated decentralized
// probe/reserve protocol against the centralized-controller cost model
// across burst sizes and lane scarcity.
#include "bench/bench_common.hpp"
#include "routing/decentralized.hpp"
#include "util/rng.hpp"

namespace {

using namespace lp;

std::vector<routing::Demand> random_burst(std::size_t count, Rng& rng) {
  std::vector<routing::Demand> demands;
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<fabric::TileId>(rng.uniform_index(32));
    auto dst = static_cast<fabric::TileId>(rng.uniform_index(32));
    if (dst == src) dst = (dst + 1) % 32;
    demands.push_back(routing::Demand{fabric::GlobalTile{0, src},
                                      fabric::GlobalTile{0, dst}, 1});
  }
  return demands;
}

void print_report() {
  bench::header("Decentralized vs centralized circuit setup");
  std::printf("  burst  lanes/edge  ok/total  retries  msgs   decent. makespan  centralized\n");
  Rng rng{123};
  struct Case {
    std::size_t burst;
    std::uint32_t lanes;
  };
  const Case cases[] = {{8, 8192},  {32, 8192}, {128, 8192},
                        {32, 4},    {128, 4},   {128, 2}};
  for (const Case& c : cases) {
    fabric::FabricConfig config;
    config.wafer.lanes_per_edge = c.lanes;
    fabric::Fabric fab{config};
    const auto demands = random_burst(c.burst, rng);
    const auto report = routing::run_decentralized_setup(fab, demands);
    unsigned retries = 0;
    std::size_t ok = 0;
    for (const auto& o : report.per_demand) {
      retries += o.retries;
      if (o.success) ++ok;
    }
    const Duration central = routing::centralized_setup_latency(fab, demands.size());
    std::printf("  %5zu  %9u  %4zu/%-4zu  %6u  %5llu   %14s  %11s\n", c.burst, c.lanes,
                ok, demands.size(), retries,
                static_cast<unsigned long long>(report.total_messages),
                bench::fmt_time(report.makespan.to_seconds()).c_str(),
                bench::fmt_time(central.to_seconds()).c_str());
  }
  bench::line();
  std::printf("with ample lanes the decentralized protocol matches the controller\n");
  std::printf("(both dominated by the 3.7 us settle); under scarcity it pays retries\n");
  std::printf("but degrades per-demand instead of serializing the whole burst.\n");
}

void BM_DecentralizedBurst(benchmark::State& state) {
  Rng rng{9};
  fabric::Fabric fab;
  const auto demands = random_burst(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::run_decentralized_setup(fab, demands));
  }
}
BENCHMARK(BM_DecentralizedBurst)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

LP_BENCH_MAIN(print_report)
