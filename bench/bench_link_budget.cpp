// §3 physical-layer claims: 224 Gbps per wavelength, 16 lambdas per tile,
// 32 connectable accelerators, low-loss routing within the active layer.
//
// Sweeps circuit length across the wafer (and over the fiber to a second
// wafer) and reports loss, received power, pre-FEC BER and budget verdict,
// demonstrating that every chip-to-chip circuit a 32-tile wafer can ask
// for closes at the full line rate.
#include "bench/bench_common.hpp"
#include "lightpath/circuit.hpp"
#include "lightpath/fabric.hpp"
#include "phys/link_budget.hpp"

namespace {

using namespace lp;

void print_report() {
  bench::header("Link budget across the wafer (224 Gbps/lambda, PAM4 112 GBaud)");
  const phys::LinkBudget budget;
  std::printf("receiver sensitivity at FEC threshold (2.4e-4): %.1f dBm\n",
              budget.sensitivity().to_dbm());
  std::printf("\n  hops  turns  fiber  loss(dB)  rx(dBm)   pre-FEC BER   closes  margin(dB)\n");

  struct Case {
    unsigned hops;
    unsigned turns;
    unsigned fiber;
    const char* note;
  };
  const Case cases[] = {
      {1, 0, 0, "adjacent tiles"},
      {4, 1, 0, "quarter wafer"},
      {10, 1, 0, "corner to corner (32-tile wafer)"},
      {14, 2, 0, "detoured worst case"},
      {20, 2, 1, "cross-wafer via fiber"},
  };
  for (const auto& c : cases) {
    phys::CircuitProfile p;
    p.waveguide_length = Length::millimeters(25.0 * c.hops);
    p.stitches = c.hops;
    p.crossings = (c.hops > 0 ? c.hops - 1 : 0) + c.turns;
    p.mzi_traversals = c.hops + 1 + c.turns;
    p.fiber_hops = c.fiber;
    p.fiber_length = Length::meters(3.0 * c.fiber);
    const auto r = budget.evaluate(p);
    std::printf("  %4u  %5u  %5u  %7.2f  %7.2f   %11.3e   %-5s  %8.2f  (%s)\n", c.hops,
                c.turns, c.fiber, r.total_loss.value(), r.received.to_dbm(),
                r.pre_fec_ber, r.closes ? "yes" : "NO", r.margin.value(), c.note);
  }

  bench::line();
  // Aggregate: per-tile capacity 16 x 224 Gbps and wafer scale 32 chips.
  const fabric::Fabric fab;
  std::printf("per-wavelength rate: %.0f Gbps; per-chip steerable egress: %.0f Gbps (%.0f GB/s)\n",
              fab.per_wavelength_rate().to_gbps(), 16 * fab.per_wavelength_rate().to_gbps(),
              16 * fab.per_wavelength_rate().to_gBps());
  std::printf("accelerators per wafer: %u  <-- paper: up to 32\n",
              fab.wafer(0).tile_count());
}

void BM_BudgetEvaluate(benchmark::State& state) {
  const phys::LinkBudget budget;
  phys::CircuitProfile p;
  p.waveguide_length = Length::millimeters(250);
  p.stitches = 10;
  p.crossings = 10;
  p.mzi_traversals = 12;
  for (auto _ : state) benchmark::DoNotOptimize(budget.evaluate(p));
}
BENCHMARK(BM_BudgetEvaluate);

void BM_Sensitivity(benchmark::State& state) {
  const phys::LinkBudget budget;
  for (auto _ : state) benchmark::DoNotOptimize(budget.sensitivity());
}
BENCHMARK(BM_Sensitivity);

}  // namespace

LP_BENCH_MAIN(print_report)
