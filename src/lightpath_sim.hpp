// Umbrella header: the full public API of lightpath-sim.
//
// Downstream users can include this single header; fine-grained headers
// remain available for faster builds.
#pragma once

// Utilities
#include "util/log.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

// Photonic device layer
#include "phys/crosstalk.hpp"
#include "phys/link_budget.hpp"
#include "phys/loss.hpp"
#include "phys/modulator.hpp"
#include "phys/mzi.hpp"
#include "phys/photodetector.hpp"
#include "phys/wdm.hpp"

// LIGHTPATH fabric
#include "lightpath/circuit.hpp"
#include "lightpath/fabric.hpp"
#include "lightpath/reconfig.hpp"
#include "lightpath/tile.hpp"
#include "lightpath/types.hpp"
#include "lightpath/wafer.hpp"

// Cluster substrate
#include "topo/cluster.hpp"
#include "topo/multirack.hpp"
#include "topo/ocs.hpp"
#include "topo/slice.hpp"
#include "topo/switched.hpp"
#include "topo/torus.hpp"

// Collective communication
#include "collective/alltoall.hpp"
#include "collective/congestion.hpp"
#include "collective/cost_model.hpp"
#include "collective/extra_schedules.hpp"
#include "collective/ring.hpp"
#include "collective/schedule.hpp"

// Circuit routing
#include "routing/decentralized.hpp"
#include "routing/planner.hpp"
#include "routing/repair.hpp"
#include "routing/router.hpp"
#include "routing/wavelength.hpp"
#include "routing/wdm_planner.hpp"

// Simulation
#include "sim/event_queue.hpp"
#include "sim/flow_sim.hpp"
#include "sim/trace.hpp"

// Core: the paper's contribution assembled
#include "core/bandwidth_manager.hpp"
#include "core/blast_radius.hpp"
#include "core/failure_study.hpp"
#include "core/host_stack.hpp"
#include "core/photonic_rack.hpp"
#include "core/photonic_server.hpp"
#include "core/training_sim.hpp"
