// LightpathFabric: the public API of the photonic interconnect.
//
// A Fabric is one or more wafers (32 tiles each) plus attached fibers
// between wafers (paper §3, "Fiber connectivity between LIGHTPATH wafers").
// Chips stack one-per-tile; the fabric's job is to establish dedicated,
// contention-free optical circuits between chips on demand:
//
//   Fabric fabric{config};
//   auto c = fabric.connect({0, tileA}, {0, tileB}, /*wavelengths=*/4);
//   // ... traffic flows at 4 x 224 Gbps with zero intermediate contention
//   fabric.disconnect(c.value());
//
// connect() uses deterministic dimension-ordered (XY) routing on the tile
// grid and first-fit fiber selection across wafers; smarter planners (path
// diversity, non-overlapping demand sets, decentralized setup, fault
// repair) live in the routing/ module and operate on the same Wafer
// resource ledger via reserve_path()/release_path().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lightpath/circuit.hpp"
#include "lightpath/reconfig.hpp"
#include "lightpath/types.hpp"
#include "lightpath/wafer.hpp"
#include "phys/link_budget.hpp"
#include "phys/modulator.hpp"
#include "util/result.hpp"

namespace lp::fabric {

struct FabricConfig {
  WaferParams wafer{};
  std::uint32_t wafer_count{1};
  phys::ModulatorParams modulator{};
  ReconfigParams reconfig{};
  phys::LinkBudgetParams budget{};
};

/// A bundle of fibers attaching one tile of one wafer to a tile of another.
struct FiberLink {
  GlobalTile a{};
  GlobalTile b{};
  std::uint32_t fibers{16};
  std::uint32_t used{0};
  Length length{Length::meters(2.0)};
  /// A cut bundle: existing circuits keep their accounting (the fault layer
  /// decides their fate) but no new circuit may be placed on it.
  bool down{false};
};

class Fabric {
 public:
  explicit Fabric(FabricConfig config = {});

  [[nodiscard]] const FabricConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t wafer_count() const {
    return static_cast<std::uint32_t>(wafers_.size());
  }
  [[nodiscard]] Wafer& wafer(WaferId w) { return wafers_[w]; }
  [[nodiscard]] const Wafer& wafer(WaferId w) const { return wafers_[w]; }

  /// Declare a fiber bundle between two wafer-edge tiles.  Returns its index.
  std::size_t add_fiber_link(GlobalTile a, GlobalTile b, std::uint32_t fibers,
                             Length length = Length::meters(2.0));
  [[nodiscard]] const std::vector<FiberLink>& fiber_links() const { return fiber_links_; }

  /// Mark a fiber bundle cut (or restore it).  Down links are skipped by
  /// fiber selection; circuits already riding the link are untouched here —
  /// the fault/health layer diagnoses and repairs them.
  void set_fiber_link_down(std::size_t index, bool down);

  /// Data rate of a single modulated wavelength (224 Gbps by default).
  [[nodiscard]] Bandwidth per_wavelength_rate() const;

  /// Establish a circuit carrying `wavelengths` lambdas from chip at `a` to
  /// chip at `b`.  Reserves Tx at a, Rx at b, lanes along the path, and
  /// (cross-wafer) one fiber per wavelength.  Accounts reconfiguration time
  /// in the controller.  Fails without side effects if any resource is
  /// unavailable.
  Result<CircuitId> connect(GlobalTile a, GlobalTile b, std::uint32_t wavelengths);

  /// Like connect(), but along an explicit same-wafer hop path (produced by
  /// an external router).  The path must lead from a.tile to b.tile.
  Result<CircuitId> connect_via(GlobalTile a, GlobalTile b,
                                std::vector<Direction> hops, std::uint32_t wavelengths);

  /// Tear down a circuit and release all its resources.  Idempotent.
  void disconnect(CircuitId id);

  [[nodiscard]] const Circuit* circuit(CircuitId id) const;
  [[nodiscard]] std::size_t active_circuits() const { return circuits_.size(); }

  /// Ids of all established circuits in ascending order (deterministic
  /// iteration for health scans and teardown sweeps).
  [[nodiscard]] std::vector<CircuitId> circuit_ids() const;

  /// Fiber link index a cross-wafer circuit rides, if any.
  [[nodiscard]] std::optional<std::size_t> fiber_link_of(CircuitId id) const;

  /// Capacity of an established circuit.
  [[nodiscard]] Bandwidth circuit_bandwidth(CircuitId id) const;

  /// Physical-layer verdict for an established circuit.
  [[nodiscard]] phys::LinkBudgetReport circuit_budget(CircuitId id) const;

  /// Dimension-ordered route on one wafer: all column moves then row moves.
  [[nodiscard]] static std::vector<Direction> xy_route(const Wafer& wafer, TileId from,
                                                       TileId to);

  [[nodiscard]] ReconfigController& reconfig() { return reconfig_; }
  [[nodiscard]] const ReconfigController& reconfig() const { return reconfig_; }

  /// Monotonic configuration epoch.  Every event that can invalidate a
  /// memoized plan — fault apply/revert, a committed repair rung, a spare
  /// swap, a fiber bundle going down or up — bumps it; the plan cache keys
  /// entries on the epoch so stale plans are never replayed silently.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  void bump_epoch() { ++epoch_; }

  /// Order-sensitive hash of the complete resource ledger: every wafer's
  /// edge/tile occupancy plus every fiber link's usage and up/down state.
  /// Deterministic planning is a pure function of this state, so digest
  /// equality is sufficient for a memoized plan to replay exactly.
  [[nodiscard]] std::uint64_t ledger_digest() const;

 private:
  struct FiberChoice {
    std::size_t link_index;
    bool forward;  ///< true if routing a->b along the stored link
  };

  /// First fiber link between the two wafers with >= `fibers` spare.
  [[nodiscard]] std::optional<FiberChoice> find_fiber(WaferId from, WaferId to,
                                                      std::uint32_t fibers) const;

  Result<CircuitId> connect_same_wafer(GlobalTile a, GlobalTile b,
                                       std::uint32_t wavelengths);
  Result<CircuitId> connect_cross_wafer(GlobalTile a, GlobalTile b,
                                        std::uint32_t wavelengths);

  CircuitId register_circuit(Circuit&& circuit);

  FabricConfig config_;
  std::vector<Wafer> wafers_;
  std::vector<FiberLink> fiber_links_;
  std::unordered_map<CircuitId, Circuit> circuits_;
  std::unordered_map<CircuitId, std::size_t> circuit_fiber_;  ///< circuit -> fiber link index
  ReconfigController reconfig_;
  CircuitId next_id_{1};
  std::uint64_t epoch_{0};
};

}  // namespace lp::fabric
