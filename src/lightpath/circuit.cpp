#include "lightpath/circuit.hpp"

namespace lp::fabric {

std::size_t Circuit::waveguide_hop_count() const {
  std::size_t hops = 0;
  for (const auto& seg : segments) hops += seg.hops.size();
  return hops;
}

unsigned Circuit::turn_count() const {
  unsigned turns = 0;
  for (const auto& seg : segments) {
    for (std::size_t i = 1; i < seg.hops.size(); ++i) {
      if (seg.hops[i] != seg.hops[i - 1]) ++turns;
    }
  }
  return turns;
}

unsigned Circuit::mzis_to_program() const {
  unsigned mzis = 0;
  for (const auto& seg : segments) {
    if (seg.hops.empty()) continue;
    // Every tile the segment touches programs the switch facing the light:
    // hops+1 tiles per segment.
    mzis += static_cast<unsigned>(seg.hops.size()) + 1;
  }
  return mzis + turn_count();
}

Bandwidth Circuit::bandwidth(Bandwidth per_wavelength) const {
  return per_wavelength * static_cast<double>(wavelengths);
}

phys::CircuitProfile profile_of(const Circuit& circuit, const TileParams& tile) {
  phys::CircuitProfile p;
  const auto hops = circuit.waveguide_hop_count();
  p.waveguide_length = tile.pitch * static_cast<double>(hops);
  p.stitches = static_cast<unsigned>(hops);
  const unsigned turns = circuit.turn_count();
  unsigned pass_throughs = 0;
  for (const auto& seg : circuit.segments) {
    if (seg.hops.size() >= 2)
      pass_throughs += static_cast<unsigned>(seg.hops.size()) - 1;
  }
  p.crossings = pass_throughs + turns;
  p.mzi_traversals = circuit.mzis_to_program();
  p.fiber_hops = circuit.fiber_hops;
  p.fiber_length = circuit.fiber_length;
  return p;
}

}  // namespace lp::fabric
