#include "lightpath/reconfig.hpp"

namespace lp::fabric {

ReconfigController::ReconfigController(ReconfigParams params) : params_{params} {}

Duration ReconfigController::settle_latency() const {
  return phys::Mzi{params_.mzi}.settling_time();
}

Duration ReconfigController::batch_latency(unsigned mzi_count) const {
  if (mzi_count == 0) return Duration::zero();
  return params_.batch_overhead +
         params_.per_mzi_program * static_cast<double>(mzi_count) + settle_latency();
}

Duration ReconfigController::reconfigure(unsigned mzi_count) {
  const Duration latency = batch_latency(mzi_count);
  if (mzi_count > 0) {
    ++batches_;
    mzis_ += mzi_count;
    total_ += latency;
  }
  return latency;
}

void ReconfigController::reset_stats() {
  batches_ = 0;
  mzis_ = 0;
  total_ = Duration::zero();
}

}  // namespace lp::fabric
