// Basic identifiers and geometry for the LIGHTPATH fabric model.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace lp::fabric {

/// Index of a tile within one wafer (row-major).
using TileId = std::uint32_t;

/// Index of a wafer within a multi-wafer fabric.
using WaferId = std::uint32_t;

/// Opaque handle to an established optical circuit.
using CircuitId = std::uint64_t;

/// Grid position of a tile on a wafer.
struct TileCoord {
  std::int32_t row{0};
  std::int32_t col{0};
  friend constexpr auto operator<=>(const TileCoord&, const TileCoord&) = default;
};

/// The four mesh directions; each maps to one of a tile's 1x3 MZI switches.
enum class Direction : std::uint8_t { kNorth = 0, kEast = 1, kSouth = 2, kWest = 3 };

inline constexpr std::array<Direction, 4> kAllDirections{
    Direction::kNorth, Direction::kEast, Direction::kSouth, Direction::kWest};

[[nodiscard]] constexpr Direction opposite(Direction d) {
  switch (d) {
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kEast: return Direction::kWest;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kWest: return Direction::kEast;
  }
  return Direction::kNorth;
}

[[nodiscard]] constexpr const char* to_string(Direction d) {
  switch (d) {
    case Direction::kNorth: return "N";
    case Direction::kEast: return "E";
    case Direction::kSouth: return "S";
    case Direction::kWest: return "W";
  }
  return "?";
}

/// A tile on a specific wafer of a multi-wafer fabric.
struct GlobalTile {
  WaferId wafer{0};
  TileId tile{0};
  friend constexpr auto operator<=>(const GlobalTile&, const GlobalTile&) = default;
};

/// One step of a running 64-bit hash (boost-style combine with a splitmix
/// constant).  Backs the resource-ledger digests the plan cache revalidates
/// against; order-sensitive, not cryptographic.
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace lp::fabric
