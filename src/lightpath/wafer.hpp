// One LIGHTPATH wafer: a grid of tiles joined by bus waveguides.
//
// The wafer owns all consumable routing resources:
//   * per-tile Tx/Rx wavelength counts (see Tile),
//   * per directed inter-tile edge, a pool of waveguide lanes.  The paper's
//     geometry admits >10,000 lanes per tile (Figure 4); the pool size is
//     configurable so experiments can study lane-constrained regimes.
//
// Paths are expressed as sequences of directions from a source tile; the
// wafer checks/commits/releases lane capacity along them.  Routing *policy*
// (which path to take) lives in lightpath::Fabric (simple XY) and in the
// routing/ module (planners); the wafer is purely the resource ledger.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lightpath/tile.hpp"
#include "lightpath/types.hpp"
#include "util/result.hpp"

namespace lp::fabric {

struct WaferParams {
  std::int32_t rows{4};
  std::int32_t cols{8};  ///< 4x8 = 32 tiles, as in the prototype
  /// Waveguide lanes per directed inter-tile edge.
  std::uint32_t lanes_per_edge{8192};
  TileParams tile{};
};

class Wafer {
 public:
  explicit Wafer(WaferParams params = {});

  [[nodiscard]] const WaferParams& params() const { return params_; }
  [[nodiscard]] std::int32_t rows() const { return params_.rows; }
  [[nodiscard]] std::int32_t cols() const { return params_.cols; }
  [[nodiscard]] std::uint32_t tile_count() const {
    return static_cast<std::uint32_t>(params_.rows * params_.cols);
  }

  [[nodiscard]] TileId tile_at(TileCoord c) const;
  [[nodiscard]] TileCoord coord_of(TileId t) const;
  [[nodiscard]] bool contains(TileCoord c) const;

  /// Neighboring tile in direction `d`, or nullopt at the wafer edge.
  [[nodiscard]] std::optional<TileId> neighbor(TileId t, Direction d) const;

  [[nodiscard]] Tile& tile(TileId t) { return tiles_[t]; }
  [[nodiscard]] const Tile& tile(TileId t) const { return tiles_[t]; }

  /// Free lanes on the directed edge leaving `t` toward `d`.  0 if the edge
  /// does not exist (wafer boundary).
  [[nodiscard]] std::uint32_t lanes_free(TileId t, Direction d) const;
  [[nodiscard]] std::uint32_t lanes_used(TileId t, Direction d) const;

  /// Reserve `n` lanes on the directed edge; false (no change) on shortage.
  bool reserve_lanes(TileId t, Direction d, std::uint32_t n);
  void release_lanes(TileId t, Direction d, std::uint32_t n);

  /// True if every directed edge along `path` (starting at `from`) exists
  /// and has at least `n` free lanes.
  [[nodiscard]] bool path_has_capacity(TileId from, std::span<const Direction> path,
                                       std::uint32_t n) const;

  /// Atomically reserve `n` lanes along the whole path; on failure nothing
  /// is reserved and the blocking hop index is reported.
  Result<std::monostate> reserve_path(TileId from, std::span<const Direction> path,
                                      std::uint32_t n);
  void release_path(TileId from, std::span<const Direction> path, std::uint32_t n);

  /// Tiles visited by the path, including both endpoints.
  [[nodiscard]] std::vector<TileId> tiles_on_path(TileId from,
                                                  std::span<const Direction> path) const;

  /// Total lanes in use across all edges (diagnostics / utilization).
  [[nodiscard]] std::uint64_t total_lanes_used() const;

  /// Folds the wafer's entire consumable state — every directed edge's lane
  /// occupancy plus every tile's Tx/Rx reservations — into the running hash
  /// `h`.  Two wafers with equal digests present identical ledgers to any
  /// deterministic planner; the plan cache uses this for revalidate-on-use.
  [[nodiscard]] std::uint64_t ledger_digest(std::uint64_t h) const;

 private:
  /// Dense index of the directed edge (t, d); edges off the wafer get a
  /// slot too (never used) to keep indexing branch-free.
  [[nodiscard]] std::size_t edge_index(TileId t, Direction d) const;

  WaferParams params_;
  std::vector<Tile> tiles_;
  std::vector<std::uint32_t> edge_used_;
};

}  // namespace lp::fabric
