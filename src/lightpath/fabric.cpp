#include "lightpath/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace lp::fabric {

Fabric::Fabric(FabricConfig config)
    : config_{config},
      wafers_(config.wafer_count, Wafer{config.wafer}),
      reconfig_{config.reconfig} {}

std::size_t Fabric::add_fiber_link(GlobalTile a, GlobalTile b, std::uint32_t fibers,
                                   Length length) {
  fiber_links_.push_back(FiberLink{.a = a, .b = b, .fibers = fibers, .used = 0,
                                   .length = length, .down = false});
  return fiber_links_.size() - 1;
}

void Fabric::set_fiber_link_down(std::size_t index, bool down) {
  if (index < fiber_links_.size() && fiber_links_[index].down != down) {
    fiber_links_[index].down = down;
    bump_epoch();
  }
}

std::uint64_t Fabric::ledger_digest() const {
  std::uint64_t h = 0x6c69676874ULL;  // arbitrary non-zero start
  for (const Wafer& w : wafers_) h = w.ledger_digest(h);
  for (const FiberLink& link : fiber_links_) {
    h = hash_mix(h, link.used);
    h = hash_mix(h, link.down ? 1u : 0u);
  }
  return h;
}

Bandwidth Fabric::per_wavelength_rate() const {
  return phys::Modulator{config_.modulator}.line_rate();
}

std::vector<Direction> Fabric::xy_route(const Wafer& wafer, TileId from, TileId to) {
  std::vector<Direction> hops;
  TileCoord c = wafer.coord_of(from);
  const TileCoord goal = wafer.coord_of(to);
  while (c.col != goal.col) {
    hops.push_back(c.col < goal.col ? Direction::kEast : Direction::kWest);
    c.col += c.col < goal.col ? 1 : -1;
  }
  while (c.row != goal.row) {
    hops.push_back(c.row < goal.row ? Direction::kSouth : Direction::kNorth);
    c.row += c.row < goal.row ? 1 : -1;
  }
  return hops;
}

Result<CircuitId> Fabric::connect(GlobalTile a, GlobalTile b, std::uint32_t wavelengths) {
  if (wavelengths == 0) return Err("zero wavelengths requested");
  if (a.wafer >= wafers_.size() || b.wafer >= wafers_.size())
    return Err("wafer id out of range");
  if (a == b) return Err("source and destination tile are the same");
  if (a.wafer == b.wafer) return connect_same_wafer(a, b, wavelengths);
  return connect_cross_wafer(a, b, wavelengths);
}

Result<CircuitId> Fabric::connect_same_wafer(GlobalTile a, GlobalTile b,
                                             std::uint32_t wavelengths) {
  Wafer& w = wafers_[a.wafer];
  if (!w.tile(a.tile).reserve_tx(wavelengths))
    return Err("tile " + std::to_string(a.tile) + ": not enough free Tx wavelengths");
  if (!w.tile(b.tile).reserve_rx(wavelengths)) {
    w.tile(a.tile).release_tx(wavelengths);
    return Err("tile " + std::to_string(b.tile) + ": not enough free Rx wavelengths");
  }
  auto hops = xy_route(w, a.tile, b.tile);
  if (auto reserved = w.reserve_path(a.tile, hops, wavelengths); !reserved) {
    w.tile(a.tile).release_tx(wavelengths);
    w.tile(b.tile).release_rx(wavelengths);
    return Err("lane reservation failed: " + reserved.error().message);
  }

  Circuit c;
  c.src = a;
  c.dst = b;
  c.wavelengths = wavelengths;
  c.segments.push_back(Circuit::Segment{a.wafer, a.tile, std::move(hops)});
  reconfig_.reconfigure(c.mzis_to_program());
  return register_circuit(std::move(c));
}

Result<CircuitId> Fabric::connect_via(GlobalTile a, GlobalTile b,
                                      std::vector<Direction> hops,
                                      std::uint32_t wavelengths) {
  if (wavelengths == 0) return Err("zero wavelengths requested");
  if (a.wafer != b.wafer) return Err("connect_via requires a same-wafer path");
  if (a.wafer >= wafers_.size()) return Err("wafer id out of range");
  Wafer& w = wafers_[a.wafer];
  // Validate the path endpoint.
  TileId at = a.tile;
  for (Direction d : hops) {
    const auto next = w.neighbor(at, d);
    if (!next) return Err("path leaves the wafer");
    at = *next;
  }
  if (at != b.tile) return Err("path does not end at the destination tile");

  if (!w.tile(a.tile).reserve_tx(wavelengths))
    return Err("tile " + std::to_string(a.tile) + ": not enough free Tx wavelengths");
  if (!w.tile(b.tile).reserve_rx(wavelengths)) {
    w.tile(a.tile).release_tx(wavelengths);
    return Err("tile " + std::to_string(b.tile) + ": not enough free Rx wavelengths");
  }
  if (auto reserved = w.reserve_path(a.tile, hops, wavelengths); !reserved) {
    w.tile(a.tile).release_tx(wavelengths);
    w.tile(b.tile).release_rx(wavelengths);
    return Err("lane reservation failed: " + reserved.error().message);
  }

  Circuit c;
  c.src = a;
  c.dst = b;
  c.wavelengths = wavelengths;
  c.segments.push_back(Circuit::Segment{a.wafer, a.tile, std::move(hops)});
  reconfig_.reconfigure(c.mzis_to_program());
  return register_circuit(std::move(c));
}

std::optional<Fabric::FiberChoice> Fabric::find_fiber(WaferId from, WaferId to,
                                                      std::uint32_t fibers) const {
  for (std::size_t i = 0; i < fiber_links_.size(); ++i) {
    const FiberLink& link = fiber_links_[i];
    if (link.down || link.fibers - link.used < fibers) continue;
    if (link.a.wafer == from && link.b.wafer == to) return FiberChoice{i, true};
    if (link.b.wafer == from && link.a.wafer == to) return FiberChoice{i, false};
  }
  return std::nullopt;
}

Result<CircuitId> Fabric::connect_cross_wafer(GlobalTile a, GlobalTile b,
                                              std::uint32_t wavelengths) {
  // Each wavelength rides its own fiber in the bundle (no WDM mux across the
  // attach in this model, mirroring one-laser-one-fiber attach).
  const auto choice = find_fiber(a.wafer, b.wafer, wavelengths);
  if (!choice)
    return Err("no fiber link with " + std::to_string(wavelengths) +
               " spare fibers between wafers " + std::to_string(a.wafer) + " and " +
               std::to_string(b.wafer));
  FiberLink& link = fiber_links_[choice->link_index];
  const GlobalTile exit = choice->forward ? link.a : link.b;
  const GlobalTile entry = choice->forward ? link.b : link.a;

  Wafer& wa = wafers_[a.wafer];
  Wafer& wb = wafers_[b.wafer];
  if (!wa.tile(a.tile).reserve_tx(wavelengths))
    return Err("source tile: not enough free Tx wavelengths");
  if (!wb.tile(b.tile).reserve_rx(wavelengths)) {
    wa.tile(a.tile).release_tx(wavelengths);
    return Err("destination tile: not enough free Rx wavelengths");
  }

  auto hops_a = xy_route(wa, a.tile, exit.tile);
  auto hops_b = xy_route(wb, entry.tile, b.tile);
  if (auto r = wa.reserve_path(a.tile, hops_a, wavelengths); !r) {
    wa.tile(a.tile).release_tx(wavelengths);
    wb.tile(b.tile).release_rx(wavelengths);
    return Err("source wafer lanes: " + r.error().message);
  }
  if (auto r = wb.reserve_path(entry.tile, hops_b, wavelengths); !r) {
    wa.release_path(a.tile, hops_a, wavelengths);
    wa.tile(a.tile).release_tx(wavelengths);
    wb.tile(b.tile).release_rx(wavelengths);
    return Err("destination wafer lanes: " + r.error().message);
  }
  link.used += wavelengths;

  Circuit c;
  c.src = a;
  c.dst = b;
  c.wavelengths = wavelengths;
  c.segments.push_back(Circuit::Segment{a.wafer, a.tile, std::move(hops_a)});
  c.segments.push_back(Circuit::Segment{b.wafer, entry.tile, std::move(hops_b)});
  c.fiber_hops = 1;
  c.fiber_length = link.length;
  reconfig_.reconfigure(c.mzis_to_program());

  const CircuitId id = register_circuit(std::move(c));
  circuit_fiber_[id] = choice->link_index;
  return id;
}

CircuitId Fabric::register_circuit(Circuit&& circuit) {
  const CircuitId id = next_id_++;
  circuit.id = id;
  circuits_.emplace(id, std::move(circuit));
  return id;
}

void Fabric::disconnect(CircuitId id) {
  const auto it = circuits_.find(id);
  if (it == circuits_.end()) return;
  const Circuit& c = it->second;
  for (const auto& seg : c.segments) {
    wafers_[seg.wafer].release_path(seg.from, seg.hops, c.wavelengths);
  }
  wafers_[c.src.wafer].tile(c.src.tile).release_tx(c.wavelengths);
  wafers_[c.dst.wafer].tile(c.dst.tile).release_rx(c.wavelengths);
  if (const auto fit = circuit_fiber_.find(id); fit != circuit_fiber_.end()) {
    FiberLink& link = fiber_links_[fit->second];
    link.used -= std::min(link.used, c.wavelengths);
    circuit_fiber_.erase(fit);
  }
  // Tearing down also programs switches (back to a parked state).
  reconfig_.reconfigure(c.mzis_to_program());
  circuits_.erase(it);
}

std::vector<CircuitId> Fabric::circuit_ids() const {
  std::vector<CircuitId> ids;
  ids.reserve(circuits_.size());
  for (const auto& [id, c] : circuits_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::optional<std::size_t> Fabric::fiber_link_of(CircuitId id) const {
  const auto it = circuit_fiber_.find(id);
  if (it == circuit_fiber_.end()) return std::nullopt;
  return it->second;
}

const Circuit* Fabric::circuit(CircuitId id) const {
  const auto it = circuits_.find(id);
  return it == circuits_.end() ? nullptr : &it->second;
}

Bandwidth Fabric::circuit_bandwidth(CircuitId id) const {
  const Circuit* c = circuit(id);
  if (c == nullptr) return Bandwidth::zero();
  return c->bandwidth(per_wavelength_rate());
}

phys::LinkBudgetReport Fabric::circuit_budget(CircuitId id) const {
  const Circuit* c = circuit(id);
  assert(c != nullptr);
  const phys::LinkBudget budget{config_.budget};
  return budget.evaluate(profile_of(*c, config_.wafer.tile));
}

}  // namespace lp::fabric
