#include "lightpath/wafer.hpp"

#include <cassert>
#include <numeric>
#include <string>

namespace lp::fabric {

Wafer::Wafer(WaferParams params)
    : params_{params},
      tiles_(static_cast<std::size_t>(params.rows * params.cols), Tile{params.tile}),
      edge_used_(static_cast<std::size_t>(params.rows * params.cols) * 4, 0) {
  assert(params.rows > 0 && params.cols > 0);
}

TileId Wafer::tile_at(TileCoord c) const {
  assert(contains(c));
  return static_cast<TileId>(c.row * params_.cols + c.col);
}

TileCoord Wafer::coord_of(TileId t) const {
  return TileCoord{static_cast<std::int32_t>(t) / params_.cols,
                   static_cast<std::int32_t>(t) % params_.cols};
}

bool Wafer::contains(TileCoord c) const {
  return c.row >= 0 && c.row < params_.rows && c.col >= 0 && c.col < params_.cols;
}

std::optional<TileId> Wafer::neighbor(TileId t, Direction d) const {
  TileCoord c = coord_of(t);
  switch (d) {
    case Direction::kNorth: --c.row; break;
    case Direction::kSouth: ++c.row; break;
    case Direction::kEast: ++c.col; break;
    case Direction::kWest: --c.col; break;
  }
  if (!contains(c)) return std::nullopt;
  return tile_at(c);
}

std::size_t Wafer::edge_index(TileId t, Direction d) const {
  return static_cast<std::size_t>(t) * 4 + static_cast<std::size_t>(d);
}

std::uint32_t Wafer::lanes_free(TileId t, Direction d) const {
  if (!neighbor(t, d)) return 0;
  return params_.lanes_per_edge - edge_used_[edge_index(t, d)];
}

std::uint32_t Wafer::lanes_used(TileId t, Direction d) const {
  return edge_used_[edge_index(t, d)];
}

bool Wafer::reserve_lanes(TileId t, Direction d, std::uint32_t n) {
  if (lanes_free(t, d) < n) return false;
  edge_used_[edge_index(t, d)] += n;
  return true;
}

void Wafer::release_lanes(TileId t, Direction d, std::uint32_t n) {
  auto& used = edge_used_[edge_index(t, d)];
  used -= std::min(n, used);
}

bool Wafer::path_has_capacity(TileId from, std::span<const Direction> path,
                              std::uint32_t n) const {
  TileId at = from;
  for (Direction d : path) {
    const auto next = neighbor(at, d);
    if (!next || lanes_free(at, d) < n) return false;
    at = *next;
  }
  return true;
}

Result<std::monostate> Wafer::reserve_path(TileId from, std::span<const Direction> path,
                                           std::uint32_t n) {
  TileId at = from;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const auto next = neighbor(at, path[i]);
    if (!next || !reserve_lanes(at, path[i], n)) {
      // Roll back hops already taken.
      release_path(from, path.subspan(0, i), n);
      return Err("no capacity at hop " + std::to_string(i) + " (tile " +
                 std::to_string(at) + " dir " + to_string(path[i]) + ")");
    }
    at = *next;
  }
  return std::monostate{};
}

void Wafer::release_path(TileId from, std::span<const Direction> path, std::uint32_t n) {
  TileId at = from;
  for (Direction d : path) {
    const auto next = neighbor(at, d);
    if (!next) return;  // malformed path; release what we can
    release_lanes(at, d, n);
    at = *next;
  }
}

std::vector<TileId> Wafer::tiles_on_path(TileId from,
                                         std::span<const Direction> path) const {
  std::vector<TileId> tiles{from};
  tiles.reserve(path.size() + 1);
  TileId at = from;
  for (Direction d : path) {
    const auto next = neighbor(at, d);
    if (!next) break;
    at = *next;
    tiles.push_back(at);
  }
  return tiles;
}

std::uint64_t Wafer::total_lanes_used() const {
  return std::accumulate(edge_used_.begin(), edge_used_.end(), std::uint64_t{0});
}

std::uint64_t Wafer::ledger_digest(std::uint64_t h) const {
  for (std::uint32_t used : edge_used_) h = hash_mix(h, used);
  for (const Tile& t : tiles_) {
    h = hash_mix(h, t.tx_used());
    h = hash_mix(h, t.rx_used());
  }
  return h;
}

}  // namespace lp::fabric
