// One LIGHTPATH tile: the Tx/Rx block and its four 1x3 MZI switches.
//
// Per the paper (§3, Figure 2): each tile has 16 wavelength-multiplexed
// lasers and photodiodes in a central Tx/Rx block, four optical switches of
// degree 1x3 (one per mesh direction, each connecting the inter-tile
// waveguide to the three other switches on the tile), and a SerDes whose
// port count bounds how many distinct neighbors the stacked chip can talk
// to at once.  Figure 4: waveguides and MZIs sit on a 3 um pitch, allowing
// >10,000 waveguides to enter a tile.
#pragma once

#include <array>
#include <cstdint>

#include "lightpath/types.hpp"
#include "phys/mzi.hpp"
#include "util/units.hpp"

namespace lp::fabric {

struct TileParams {
  /// Wavelength-multiplexed lasers (= transmit channels) per tile.
  std::uint32_t tx_wavelengths{16};
  /// Photodiode receive channels per tile.
  std::uint32_t rx_wavelengths{16};
  /// SerDes ports: max concurrent distinct peers for the stacked chip.
  std::uint32_t serdes_ports{8};
  /// Physical tile pitch (the 200 mm x 200 mm prototype carries a 4x8 grid).
  Length pitch{Length::millimeters(25.0)};
  /// Waveguide / MZI pitch (paper: 3 um).
  Length waveguide_pitch{Length::microns(3.0)};
};

/// Pure-geometry helper: how many waveguide lanes fit across one tile edge
/// at the configured pitch.  ~8,333 per 25 mm edge side; the paper quotes
/// "over 10,000 per tile" counting both axes.
[[nodiscard]] constexpr std::uint32_t waveguides_per_edge(const TileParams& p) {
  return static_cast<std::uint32_t>(p.pitch.to_meters() / p.waveguide_pitch.to_meters());
}

/// Tracks consumable resources of one tile.  Lane occupancy lives on the
/// wafer's edges; this covers the per-tile endpoint resources.
class Tile {
 public:
  explicit Tile(TileParams params = {});

  [[nodiscard]] const TileParams& params() const { return params_; }

  [[nodiscard]] std::uint32_t tx_free() const { return params_.tx_wavelengths - tx_used_; }
  [[nodiscard]] std::uint32_t rx_free() const { return params_.rx_wavelengths - rx_used_; }
  [[nodiscard]] std::uint32_t tx_used() const { return tx_used_; }
  [[nodiscard]] std::uint32_t rx_used() const { return rx_used_; }

  /// Reserve `n` transmit wavelengths; false (and no change) if unavailable.
  bool reserve_tx(std::uint32_t n);
  /// Reserve `n` receive wavelengths; false (and no change) if unavailable.
  bool reserve_rx(std::uint32_t n);
  void release_tx(std::uint32_t n);
  void release_rx(std::uint32_t n);

  /// The tile's four 1x3 switches, indexed by Direction.
  [[nodiscard]] phys::Mzi& mzi(Direction d) { return switches_[static_cast<std::size_t>(d)]; }
  [[nodiscard]] const phys::Mzi& mzi(Direction d) const {
    return switches_[static_cast<std::size_t>(d)];
  }

 private:
  TileParams params_;
  std::uint32_t tx_used_{0};
  std::uint32_t rx_used_{0};
  std::array<phys::Mzi, 4> switches_{phys::Mzi{}, phys::Mzi{}, phys::Mzi{},
                                     phys::Mzi{}};
};

}  // namespace lp::fabric
