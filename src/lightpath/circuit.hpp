// Optical circuit representation and its physical profile.
//
// A circuit is a dedicated, contention-free light path from one tile's
// transmitter to another tile's receiver (paper §3, Figure 2c): a sequence
// of bus-waveguide hops within a wafer, optionally chained across wafers by
// attached fibers.  Its capacity is wavelengths x per-wavelength line rate
// (16 x 224 Gbps at most with prototype parameters).
#pragma once

#include <cstdint>
#include <vector>

#include "lightpath/types.hpp"
#include "lightpath/wafer.hpp"
#include "phys/link_budget.hpp"
#include "util/units.hpp"

namespace lp::fabric {

struct Circuit {
  /// One contiguous on-wafer stretch of the circuit.
  struct Segment {
    WaferId wafer{0};
    TileId from{0};
    std::vector<Direction> hops;
  };

  CircuitId id{0};
  GlobalTile src{};
  GlobalTile dst{};
  std::uint32_t wavelengths{0};
  std::vector<Segment> segments;
  unsigned fiber_hops{0};
  Length fiber_length{Length::zero()};

  /// Total on-wafer hop count across segments.
  [[nodiscard]] std::size_t waveguide_hop_count() const;

  /// Number of turns (direction changes) across all segments.
  [[nodiscard]] unsigned turn_count() const;

  /// MZI switches that must be programmed to establish this circuit: one
  /// per tile the light enters or leaves through a switch, plus one extra
  /// per turn (a turn couples two of the tile's four switches).
  [[nodiscard]] unsigned mzis_to_program() const;

  /// Capacity at the given per-wavelength line rate.
  [[nodiscard]] Bandwidth bandwidth(Bandwidth per_wavelength) const;
};

/// Derives the loss-relevant physical profile of a circuit.
///
/// Conventions (documented so the budget numbers are reproducible):
///  * waveguide length = on-wafer hops x tile pitch;
///  * every inter-tile hop crosses one reticle boundary -> one stitch;
///  * every intermediate tile passed straight through crosses the tile's
///    perpendicular bus once, and every turn adds one more crossing;
///  * MZI traversals as in Circuit::mzis_to_program().
[[nodiscard]] phys::CircuitProfile profile_of(const Circuit& circuit,
                                              const TileParams& tile);

}  // namespace lp::fabric
