// Reconfiguration controller: programs batches of MZI switches and accounts
// for the latency the paper measures in Figure 3a.
//
// Model: switch states are shifted in serially over a JTAG-class interface
// (a small per-MZI programming cost), after which all programmed MZIs
// settle in parallel with the thermo-optic transient.  With default
// parameters a batch costs ~(n x 20 ns) + 3.7 us, so the settle dominates
// and "programming optical switches on LIGHTPATH can take up to 3.7 us".
#pragma once

#include <cstdint>

#include "phys/mzi.hpp"
#include "util/units.hpp"

namespace lp::fabric {

struct ReconfigParams {
  /// Serial shift-in time per MZI state (JTAG-class interface).
  Duration per_mzi_program{Duration::nanos(20.0)};
  /// Fixed controller overhead per batch.
  Duration batch_overhead{Duration::nanos(0.0)};
  /// MZI transient parameters; settling dominates the latency.
  phys::MziParams mzi{};
};

class ReconfigController {
 public:
  explicit ReconfigController(ReconfigParams params = {});

  [[nodiscard]] const ReconfigParams& params() const { return params_; }

  /// Latency to program a batch of `mzi_count` switches (pure query).
  [[nodiscard]] Duration batch_latency(unsigned mzi_count) const;

  /// The parallel-settle component alone (~3.7 us by default).
  [[nodiscard]] Duration settle_latency() const;

  /// Program a batch, accumulating statistics, and return its latency.
  Duration reconfigure(unsigned mzi_count);

  [[nodiscard]] std::uint64_t batches() const { return batches_; }
  [[nodiscard]] std::uint64_t mzis_programmed() const { return mzis_; }
  [[nodiscard]] Duration total_time() const { return total_; }

  void reset_stats();

 private:
  ReconfigParams params_;
  std::uint64_t batches_{0};
  std::uint64_t mzis_{0};
  Duration total_{Duration::zero()};
};

}  // namespace lp::fabric
