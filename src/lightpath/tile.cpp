#include "lightpath/tile.hpp"

#include <algorithm>

namespace lp::fabric {

Tile::Tile(TileParams params) : params_{params} {}

bool Tile::reserve_tx(std::uint32_t n) {
  if (tx_free() < n) return false;
  tx_used_ += n;
  return true;
}

bool Tile::reserve_rx(std::uint32_t n) {
  if (rx_free() < n) return false;
  rx_used_ += n;
  return true;
}

void Tile::release_tx(std::uint32_t n) { tx_used_ -= std::min(n, tx_used_); }

void Tile::release_rx(std::uint32_t n) { rx_used_ -= std::min(n, rx_used_); }

}  // namespace lp::fabric
