#include "topo/multirack.hpp"

#include <string>

namespace lp::topo {

Result<JoinedTorus> JoinedTorus::join(ClusterConfig base, std::int32_t racks_joined,
                                      std::size_t join_dim, OcsBank& bank) {
  if (racks_joined < 2) return Err("join requires at least 2 racks");
  if (join_dim >= kDims) return Err("join dimension out of range");

  // Face links per seam: the cross-section of the rack perpendicular to the
  // join dimension.  Seams: racks_joined inter-rack boundaries (the last one
  // is the big wraparound), each a bidirectional fiber pair per face chip.
  std::int32_t face = 1;
  for (std::size_t d = 0; d < kDims; ++d) {
    if (d != join_dim) face *= base.rack_shape[static_cast<std::size_t>(d)];
  }
  const auto ports =
      static_cast<std::uint32_t>(face * racks_joined);
  if (!bank.reserve(ports))
    return Err("OCS bank exhausted: need " + std::to_string(ports) + " ports, have " +
               std::to_string(bank.ports_free()));
  const Duration latency = bank.reconfigure();

  ClusterConfig joined = base;
  joined.racks = 1;
  joined.rack_shape.extent[join_dim] =
      base.rack_shape[join_dim] * racks_joined;
  return JoinedTorus{joined, racks_joined, join_dim, base.rack_shape[join_dim], ports,
                     latency};
}

JoinedTorus::JoinedTorus(ClusterConfig joined_config, std::int32_t racks_joined,
                         std::size_t join_dim, std::int32_t base_extent,
                         std::uint32_t ports, Duration latency)
    : cluster_{joined_config},
      racks_joined_{racks_joined},
      join_dim_{join_dim},
      base_extent_{base_extent},
      ports_used_{ports},
      join_latency_{latency} {}

RackId JoinedTorus::physical_rack(Coord joined) const {
  return joined[join_dim_] / base_extent_;
}

bool JoinedTorus::is_ocs_link(const DirectedLink& link) const {
  const Coord from = cluster_.coord_of(link.chip);
  if (link.dim != join_dim_) {
    // Perpendicular dims keep their per-rack wraparound through the rack's
    // own face OCSes.
    return cluster_.is_wraparound(link);
  }
  const Coord to = cluster_.coord_of(cluster_.link_target(link));
  return physical_rack(from) != physical_rack(to);
}

}  // namespace lp::topo
