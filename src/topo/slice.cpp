#include "topo/slice.hpp"

#include <string>

namespace lp::topo {

bool Slice::contains(Coord rack_coord) const {
  for (std::size_t d = 0; d < kDims; ++d) {
    const std::int32_t rel = rack_coord[d] - offset[d];
    if (rel < 0 || rel >= shape[d]) return false;
  }
  return true;
}

std::vector<Coord> Slice::coords() const {
  std::vector<Coord> out;
  out.reserve(static_cast<std::size_t>(shape.size()));
  const Torus local{shape};
  for (std::int32_t i = 0; i < shape.size(); ++i) {
    Coord c = local.coord(i);
    for (std::size_t d = 0; d < kDims; ++d) c[d] += offset[d];
    out.push_back(c);
  }
  return out;
}

bool Slice::spans_dimension(std::size_t d, const Shape& rack_shape) const {
  return shape[d] == rack_shape[d];
}

SliceAllocator::SliceAllocator(TpuCluster& cluster)
    : cluster_{cluster},
      owner_(static_cast<std::size_t>(cluster.chip_count()), -1) {}

Result<SliceId> SliceAllocator::allocate_at(RackId rack, Coord offset, Shape shape) {
  const Shape& rs = cluster_.config().rack_shape;
  for (std::size_t d = 0; d < kDims; ++d) {
    if (offset[d] < 0 || offset[d] + shape[d] > rs[d])
      return Err("slice does not fit in rack along dim " + std::to_string(d));
  }
  Slice s;
  s.rack = rack;
  s.offset = offset;
  s.shape = shape;
  for (Coord c : s.coords()) {
    const TpuId chip = cluster_.chip_at(rack, c);
    if (cluster_.state(chip) != ChipState::kFree)
      return Err("chip " + std::to_string(chip) + " is not free");
  }
  s.id = static_cast<SliceId>(slices_.size());
  for (Coord c : s.coords()) {
    const TpuId chip = cluster_.chip_at(rack, c);
    cluster_.set_state(chip, ChipState::kAllocated);
    owner_[static_cast<std::size_t>(chip)] = s.id;
  }
  slices_.push_back(s);
  live_.push_back(true);
  return s.id;
}

Result<SliceId> SliceAllocator::allocate(Shape shape) {
  const Shape& rs = cluster_.config().rack_shape;
  for (RackId rack = 0; rack < cluster_.rack_count(); ++rack) {
    for (std::int32_t x = 0; x + shape[0] <= rs[0]; ++x) {
      for (std::int32_t y = 0; y + shape[1] <= rs[1]; ++y) {
        for (std::int32_t z = 0; z + shape[2] <= rs[2]; ++z) {
          auto attempt = allocate_at(rack, Coord{{x, y, z}}, shape);
          if (attempt) return attempt;
        }
      }
    }
  }
  return Err("no free region of the requested shape in any rack");
}

void SliceAllocator::release(SliceId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= slices_.size() ||
      !live_[static_cast<std::size_t>(id)])
    return;
  const Slice& s = slices_[static_cast<std::size_t>(id)];
  for (Coord c : s.coords()) {
    const TpuId chip = cluster_.chip_at(s.rack, c);
    // A failed chip stays failed when its slice goes away.
    if (cluster_.state(chip) == ChipState::kAllocated)
      cluster_.set_state(chip, ChipState::kFree);
    owner_[static_cast<std::size_t>(chip)] = -1;
  }
  live_[static_cast<std::size_t>(id)] = false;
}

const Slice* SliceAllocator::slice(SliceId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= slices_.size() ||
      !live_[static_cast<std::size_t>(id)])
    return nullptr;
  return &slices_[static_cast<std::size_t>(id)];
}

std::vector<SliceId> SliceAllocator::active_slices() const {
  std::vector<SliceId> out;
  for (std::size_t i = 0; i < slices_.size(); ++i) {
    if (live_[i]) out.push_back(static_cast<SliceId>(i));
  }
  return out;
}

std::optional<SliceId> SliceAllocator::owner(TpuId chip) const {
  const std::int32_t o = owner_[static_cast<std::size_t>(chip)];
  if (o < 0) return std::nullopt;
  return o;
}

Result<Figure5Packing> pack_figure5(SliceAllocator& alloc, RackId rack) {
  auto s4 = alloc.allocate_at(rack, Coord{{0, 0, 0}}, Shape{{4, 4, 2}});
  if (!s4) return Err("slice4: " + s4.error().message);
  auto s3 = alloc.allocate_at(rack, Coord{{0, 0, 2}}, Shape{{4, 4, 1}});
  if (!s3) return Err("slice3: " + s3.error().message);
  auto s1 = alloc.allocate_at(rack, Coord{{0, 0, 3}}, Shape{{4, 2, 1}});
  if (!s1) return Err("slice1: " + s1.error().message);
  auto s2 = alloc.allocate_at(rack, Coord{{0, 2, 3}}, Shape{{4, 2, 1}});
  if (!s2) return Err("slice2: " + s2.error().message);
  return Figure5Packing{s1.value(), s2.value(), s3.value(), s4.value()};
}

}  // namespace lp::topo
