#include "topo/slice.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace lp::topo {

bool Slice::contains(Coord rack_coord) const {
  for (std::size_t d = 0; d < kDims; ++d) {
    const std::int32_t rel = rack_coord[d] - offset[d];
    if (rel < 0 || rel >= shape[d]) return false;
  }
  return true;
}

std::vector<Coord> Slice::coords() const {
  std::vector<Coord> out;
  out.reserve(static_cast<std::size_t>(shape.size()));
  const Torus local{shape};
  for (std::int32_t i = 0; i < shape.size(); ++i) {
    Coord c = local.coord(i);
    for (std::size_t d = 0; d < kDims; ++d) c[d] += offset[d];
    out.push_back(c);
  }
  return out;
}

bool Slice::spans_dimension(std::size_t d, const Shape& rack_shape) const {
  return shape[d] == rack_shape[d];
}

SliceAllocator::SliceAllocator(TpuCluster& cluster)
    : cluster_{cluster},
      owner_(static_cast<std::size_t>(cluster.chip_count()), -1) {}

Result<SliceId> SliceAllocator::allocate_at(RackId rack, Coord offset, Shape shape) {
  const Shape& rs = cluster_.config().rack_shape;
  for (std::size_t d = 0; d < kDims; ++d) {
    if (offset[d] < 0 || offset[d] + shape[d] > rs[d])
      return Err("slice does not fit in rack along dim " + std::to_string(d));
  }
  Slice s;
  s.rack = rack;
  s.offset = offset;
  s.shape = shape;
  for (Coord c : s.coords()) {
    const TpuId chip = cluster_.chip_at(rack, c);
    if (cluster_.state(chip) != ChipState::kFree)
      return Err("chip " + std::to_string(chip) + " is not free");
  }
  s.id = static_cast<SliceId>(slices_.size());
  for (Coord c : s.coords()) {
    const TpuId chip = cluster_.chip_at(rack, c);
    cluster_.set_state(chip, ChipState::kAllocated);
    owner_[static_cast<std::size_t>(chip)] = s.id;
  }
  slices_.push_back(s);
  live_.push_back(true);
  return s.id;
}

Result<SliceId> SliceAllocator::allocate_in_rack(RackId rack, Shape shape) {
  const Shape& rs = cluster_.config().rack_shape;
  for (std::int32_t x = 0; x + shape[0] <= rs[0]; ++x) {
    for (std::int32_t y = 0; y + shape[1] <= rs[1]; ++y) {
      for (std::int32_t z = 0; z + shape[2] <= rs[2]; ++z) {
        auto attempt = allocate_at(rack, Coord{{x, y, z}}, shape);
        if (attempt) return attempt;
      }
    }
  }
  return Err("no free region of the requested shape in rack " + std::to_string(rack));
}

Result<SliceId> SliceAllocator::allocate(Shape shape) {
  // Best-fit total order: racks by (free chips ascending, rack id
  // ascending); a rack is skipped outright when its free count cannot cover
  // the shape.  See the header for the full contract.
  std::vector<std::pair<std::int32_t, RackId>> order;
  order.reserve(static_cast<std::size_t>(cluster_.rack_count()));
  for (RackId rack = 0; rack < cluster_.rack_count(); ++rack) {
    const std::int32_t free = free_in_rack(rack);
    if (free >= shape.size()) order.emplace_back(free, rack);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [free, rack] : order) {
    auto attempt = allocate_in_rack(rack, shape);
    if (attempt) return attempt;
  }
  return Err("no free region of the requested shape in any rack");
}

void SliceAllocator::release(SliceId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= slices_.size() ||
      !live_[static_cast<std::size_t>(id)])
    return;
  const Slice& s = slices_[static_cast<std::size_t>(id)];
  for (Coord c : s.coords()) {
    const TpuId chip = cluster_.chip_at(s.rack, c);
    // A failed chip stays failed when its slice goes away.
    if (cluster_.state(chip) == ChipState::kAllocated)
      cluster_.set_state(chip, ChipState::kFree);
    owner_[static_cast<std::size_t>(chip)] = -1;
  }
  live_[static_cast<std::size_t>(id)] = false;
}

const Slice* SliceAllocator::slice(SliceId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= slices_.size() ||
      !live_[static_cast<std::size_t>(id)])
    return nullptr;
  return &slices_[static_cast<std::size_t>(id)];
}

std::vector<SliceId> SliceAllocator::active_slices() const {
  std::vector<SliceId> out;
  for (std::size_t i = 0; i < slices_.size(); ++i) {
    if (live_[i]) out.push_back(static_cast<SliceId>(i));
  }
  return out;
}

std::int32_t SliceAllocator::free_in_rack(RackId rack) const {
  std::int32_t count = 0;
  const std::int32_t per = cluster_.chips_per_rack();
  for (std::int32_t i = 0; i < per; ++i) {
    if (cluster_.state(rack * per + i) == ChipState::kFree) ++count;
  }
  return count;
}

Shape SliceAllocator::largest_placeable(RackId rack) const {
  const Shape& rs = cluster_.config().rack_shape;
  // Free-cell occupancy of the rack, indexed by the rack torus.
  const std::int32_t per = cluster_.chips_per_rack();
  std::vector<bool> free_cell(static_cast<std::size_t>(per));
  std::int32_t free_total = 0;
  for (std::int32_t i = 0; i < per; ++i) {
    const bool f = cluster_.state(rack * per + i) == ChipState::kFree;
    free_cell[static_cast<std::size_t>(i)] = f;
    if (f) ++free_total;
  }
  if (free_total == 0) return Shape{{0, 0, 0}};

  // Candidate shapes in (volume descending, shape lexicographic ascending)
  // order; the first placeable candidate is the answer.
  std::vector<Shape> candidates;
  for (std::int32_t sx = 1; sx <= rs[0]; ++sx) {
    for (std::int32_t sy = 1; sy <= rs[1]; ++sy) {
      for (std::int32_t sz = 1; sz <= rs[2]; ++sz) {
        candidates.push_back(Shape{{sx, sy, sz}});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(), [](const Shape& a, const Shape& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a.extent < b.extent;
  });

  const Torus& torus = cluster_.rack_torus();
  for (const Shape& s : candidates) {
    if (s.size() > free_total) continue;
    for (std::int32_t x = 0; x + s[0] <= rs[0]; ++x) {
      for (std::int32_t y = 0; y + s[1] <= rs[1]; ++y) {
        for (std::int32_t z = 0; z + s[2] <= rs[2]; ++z) {
          bool fits = true;
          for (std::int32_t dx = 0; fits && dx < s[0]; ++dx) {
            for (std::int32_t dy = 0; fits && dy < s[1]; ++dy) {
              for (std::int32_t dz = 0; fits && dz < s[2]; ++dz) {
                const std::int32_t idx =
                    torus.index(Coord{{x + dx, y + dy, z + dz}});
                fits = free_cell[static_cast<std::size_t>(idx)];
              }
            }
          }
          if (fits) return s;
        }
      }
    }
  }
  return Shape{{0, 0, 0}};
}

FragmentationReport SliceAllocator::fragmentation() const {
  FragmentationReport report;
  report.racks.reserve(static_cast<std::size_t>(cluster_.rack_count()));
  for (RackId rack = 0; rack < cluster_.rack_count(); ++rack) {
    RackFragmentation rf;
    rf.rack = rack;
    rf.free_chips = free_in_rack(rack);
    rf.largest_shape = largest_placeable(rack);
    rf.largest_volume = rf.largest_shape.size();
    report.total_free += rf.free_chips;
    report.placeable_sum += rf.largest_volume;
    report.largest_volume = std::max(report.largest_volume, rf.largest_volume);
    report.racks.push_back(rf);
  }
  return report;
}

std::optional<SliceId> SliceAllocator::owner(TpuId chip) const {
  const std::int32_t o = owner_[static_cast<std::size_t>(chip)];
  if (o < 0) return std::nullopt;
  return o;
}

Result<Figure5Packing> pack_figure5(SliceAllocator& alloc, RackId rack) {
  auto s4 = alloc.allocate_at(rack, Coord{{0, 0, 0}}, Shape{{4, 4, 2}});
  if (!s4) return Err("slice4: " + s4.error().message);
  auto s3 = alloc.allocate_at(rack, Coord{{0, 0, 2}}, Shape{{4, 4, 1}});
  if (!s3) return Err("slice3: " + s3.error().message);
  auto s1 = alloc.allocate_at(rack, Coord{{0, 0, 3}}, Shape{{4, 2, 1}});
  if (!s1) return Err("slice1: " + s1.error().message);
  auto s2 = alloc.allocate_at(rack, Coord{{0, 2, 3}}, Shape{{4, 2, 1}});
  if (!s2) return Err("slice2: " + s2.error().message);
  return Figure5Packing{s1.value(), s2.value(), s3.value(), s4.value()};
}

}  // namespace lp::topo
