#include "topo/torus.hpp"

namespace lp::topo {

std::vector<Coord> Torus::ring_through(Coord c, std::size_t d) const {
  std::vector<Coord> ring;
  const std::int32_t e = shape_[d];
  ring.reserve(static_cast<std::size_t>(e));
  Coord at = c;
  for (std::int32_t i = 0; i < e; ++i) {
    ring.push_back(at);
    at = neighbor(at, d, +1);
  }
  return ring;
}

std::vector<Coord> Torus::all_coords() const {
  std::vector<Coord> coords;
  coords.reserve(static_cast<std::size_t>(size()));
  for (std::int32_t i = 0; i < size(); ++i) coords.push_back(coord(i));
  return coords;
}

}  // namespace lp::topo
