#include "topo/cluster.hpp"

#include <cassert>

namespace lp::topo {

TpuCluster::TpuCluster(ClusterConfig config)
    : config_{config},
      rack_torus_{config.rack_shape},
      states_(static_cast<std::size_t>(config.racks) *
                  static_cast<std::size_t>(config.rack_shape.size()),
              ChipState::kFree) {
  assert(config.racks > 0);
}

std::int32_t TpuCluster::servers_per_rack() const {
  return chips_per_rack() / config_.server_group.size();
}

TpuId TpuCluster::chip_at(RackId rack, Coord c) const {
  return rack * chips_per_rack() + rack_torus_.index(c);
}

RackId TpuCluster::rack_of(TpuId chip) const { return chip / chips_per_rack(); }

Coord TpuCluster::coord_of(TpuId chip) const {
  return rack_torus_.coord(chip % chips_per_rack());
}

std::int32_t TpuCluster::server_of(TpuId chip) const {
  const Coord c = coord_of(chip);
  const Shape& g = config_.server_group;
  const Shape& r = config_.rack_shape;
  const std::int32_t gx = c[0] / g[0];
  const std::int32_t gy = c[1] / g[1];
  const std::int32_t gz = c[2] / g[2];
  const std::int32_t groups_y = r[1] / g[1];
  const std::int32_t groups_z = r[2] / g[2];
  return (gx * groups_y + gy) * groups_z + gz;
}

std::vector<TpuId> TpuCluster::server_chips(TpuId chip) const {
  const std::int32_t server = server_of(chip);
  const RackId rack = rack_of(chip);
  std::vector<TpuId> chips;
  for (std::int32_t i = 0; i < chips_per_rack(); ++i) {
    const TpuId candidate = rack * chips_per_rack() + i;
    if (server_of(candidate) == server) chips.push_back(candidate);
  }
  return chips;
}

std::vector<TpuId> TpuCluster::chips_in_state(ChipState s) const {
  std::vector<TpuId> out;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == s) out.push_back(static_cast<TpuId>(i));
  }
  return out;
}

std::vector<TpuId> TpuCluster::free_chips_in_rack(RackId rack) const {
  std::vector<TpuId> out;
  for (std::int32_t i = 0; i < chips_per_rack(); ++i) {
    const TpuId chip = rack * chips_per_rack() + i;
    if (state(chip) == ChipState::kFree) out.push_back(chip);
  }
  return out;
}

Bandwidth TpuCluster::dim_bandwidth() const {
  return config_.chip_bandwidth / static_cast<double>(kDims);
}

bool TpuCluster::is_wraparound(const DirectedLink& link) const {
  const Coord c = coord_of(link.chip);
  const std::int32_t e = config_.rack_shape[link.dim];
  return (link.sign > 0 && c[link.dim] == e - 1) || (link.sign < 0 && c[link.dim] == 0);
}

TpuId TpuCluster::link_target(const DirectedLink& link) const {
  const RackId rack = rack_of(link.chip);
  const Coord next = rack_torus_.neighbor(coord_of(link.chip), link.dim, link.sign);
  return chip_at(rack, next);
}

}  // namespace lp::topo
