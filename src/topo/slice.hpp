// Slices: sub-tori of a rack allocated to one tenant.
//
// "A slice consists of a subset of TPU chips allocated to a single cloud
// tenant.  Typically, slices can only be allocated in regular shapes,
// forming tori of specific dimensions" (§4.1).  The Figure 5b/5c scenario
// packs one rack with Slice-1 (4x2x1), Slice-2 (4x2x1), Slice-3 (4x4x1) and
// Slice-4 (4x4x2); helpers below construct exactly that packing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topo/cluster.hpp"
#include "topo/torus.hpp"
#include "util/result.hpp"

namespace lp::topo {

using SliceId = std::int32_t;

struct Slice {
  SliceId id{-1};
  RackId rack{0};
  Coord offset{};  ///< lowest-corner coordinate within the rack
  Shape shape{};

  [[nodiscard]] std::int32_t chip_count() const { return shape.size(); }

  /// True if the rack-space coordinate lies inside this slice.
  [[nodiscard]] bool contains(Coord rack_coord) const;

  /// All rack-space coordinates of the slice, row-major over its shape.
  [[nodiscard]] std::vector<Coord> coords() const;

  /// Whether the slice spans the full rack extent in dimension `d` — the
  /// precondition for running a congestion-free direction-uniform ring in
  /// that dimension on the electrical torus.
  [[nodiscard]] bool spans_dimension(std::size_t d, const Shape& rack_shape) const;
};

/// Free-space accounting for one rack: how many chips are free and the
/// largest slice shape still placeable there.  The gap between the two is
/// fragmentation — free chips stranded in holes no regular slice can use.
struct RackFragmentation {
  RackId rack{0};
  std::int32_t free_chips{0};
  /// Largest-volume free sub-cuboid (ties broken by lexicographically
  /// smallest shape); {0,0,0} when nothing is placeable.
  Shape largest_shape{{0, 0, 0}};
  std::int32_t largest_volume{0};
};

struct FragmentationReport {
  std::vector<RackFragmentation> racks;
  std::int32_t total_free{0};
  /// Largest placeable volume anywhere (max over racks).
  std::int32_t largest_volume{0};
  /// Sum of per-rack largest placeable volumes.
  std::int32_t placeable_sum{0};

  /// Fraction of free chips stranded outside each rack's largest placeable
  /// cuboid: 0 = perfectly compact, -> 1 = free capacity exists but no
  /// regular slice can use most of it.
  [[nodiscard]] double stranding() const {
    return total_free == 0
               ? 0.0
               : 1.0 - static_cast<double>(placeable_sum) / static_cast<double>(total_free);
  }
};

/// Tracks slice placement within a cluster and answers "who owns chip X".
class SliceAllocator {
 public:
  explicit SliceAllocator(TpuCluster& cluster);

  /// Place a slice at an explicit offset (used to reconstruct the paper's
  /// figures).  Fails if any covered chip is not free.
  Result<SliceId> allocate_at(RackId rack, Coord offset, Shape shape);

  /// Best-fit scan with a documented deterministic total order:
  ///
  ///   1. candidate racks are visited in (free-chip count ascending,
  ///      rack id ascending) order — the tightest rack that still fits
  ///      wins, which packs the cluster and preserves large holes;
  ///   2. within a rack, offsets are scanned row-major ascending
  ///      (x outermost, then y, then z);
  ///   3. the first feasible (rack, offset) under that order is taken.
  ///
  /// The choice is a pure function of the current chip-state multiset: two
  /// allocators whose racks hold identical free/allocated/failed sets place
  /// the next slice identically, no matter what alloc/release history
  /// produced those sets (permutation-invariance regression in topo_test).
  Result<SliceId> allocate(Shape shape);

  /// The within-rack leg of allocate()'s order: first row-major offset at
  /// which `shape` fits entirely on free chips of `rack`.
  Result<SliceId> allocate_in_rack(RackId rack, Shape shape);

  /// Release a slice, freeing its chips.  Idempotent.
  void release(SliceId id);

  [[nodiscard]] const Slice* slice(SliceId id) const;
  [[nodiscard]] std::vector<SliceId> active_slices() const;

  /// Owning slice of a chip, or nullopt if free/failed/unowned.
  [[nodiscard]] std::optional<SliceId> owner(TpuId chip) const;

  /// Number of kFree chips in `rack`.
  [[nodiscard]] std::int32_t free_in_rack(RackId rack) const;

  /// Largest-volume shape placeable entirely on free chips of `rack`
  /// (ties broken by lexicographically smallest shape); {0,0,0} if none.
  [[nodiscard]] Shape largest_placeable(RackId rack) const;

  /// Full free/fragmentation accounting, one entry per rack.  O(racks x
  /// shapes x offsets); callers that need it per-event should cache per
  /// rack and recompute only racks whose chips changed state.
  [[nodiscard]] FragmentationReport fragmentation() const;

  [[nodiscard]] TpuCluster& cluster() { return cluster_; }
  [[nodiscard]] const TpuCluster& cluster() const { return cluster_; }

 private:
  TpuCluster& cluster_;
  std::vector<Slice> slices_;
  std::vector<bool> live_;
  std::vector<std::int32_t> owner_;  ///< per chip, -1 = none
};

/// Builds the exact rack packing of Figure 5b/5c on rack 0 of `alloc`:
/// Slice-4 (4x4x2) at z in {0,1}, Slice-3 (4x4x1) at z=2, Slice-1 (4x2x1)
/// at y in {0,1}, z=3 and Slice-2 (4x2x1) at y in {2,3}, z=3.
/// Returns ids in paper order: {slice1, slice2, slice3, slice4}.
struct Figure5Packing {
  SliceId slice1, slice2, slice3, slice4;
};
[[nodiscard]] Result<Figure5Packing> pack_figure5(SliceAllocator& alloc, RackId rack = 0);

}  // namespace lp::topo
