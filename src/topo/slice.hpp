// Slices: sub-tori of a rack allocated to one tenant.
//
// "A slice consists of a subset of TPU chips allocated to a single cloud
// tenant.  Typically, slices can only be allocated in regular shapes,
// forming tori of specific dimensions" (§4.1).  The Figure 5b/5c scenario
// packs one rack with Slice-1 (4x2x1), Slice-2 (4x2x1), Slice-3 (4x4x1) and
// Slice-4 (4x4x2); helpers below construct exactly that packing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topo/cluster.hpp"
#include "topo/torus.hpp"
#include "util/result.hpp"

namespace lp::topo {

using SliceId = std::int32_t;

struct Slice {
  SliceId id{-1};
  RackId rack{0};
  Coord offset{};  ///< lowest-corner coordinate within the rack
  Shape shape{};

  [[nodiscard]] std::int32_t chip_count() const { return shape.size(); }

  /// True if the rack-space coordinate lies inside this slice.
  [[nodiscard]] bool contains(Coord rack_coord) const;

  /// All rack-space coordinates of the slice, row-major over its shape.
  [[nodiscard]] std::vector<Coord> coords() const;

  /// Whether the slice spans the full rack extent in dimension `d` — the
  /// precondition for running a congestion-free direction-uniform ring in
  /// that dimension on the electrical torus.
  [[nodiscard]] bool spans_dimension(std::size_t d, const Shape& rack_shape) const;
};

/// Tracks slice placement within a cluster and answers "who owns chip X".
class SliceAllocator {
 public:
  explicit SliceAllocator(TpuCluster& cluster);

  /// Place a slice at an explicit offset (used to reconstruct the paper's
  /// figures).  Fails if any covered chip is not free.
  Result<SliceId> allocate_at(RackId rack, Coord offset, Shape shape);

  /// First-fit scan over all racks and offsets.
  Result<SliceId> allocate(Shape shape);

  /// Release a slice, freeing its chips.  Idempotent.
  void release(SliceId id);

  [[nodiscard]] const Slice* slice(SliceId id) const;
  [[nodiscard]] std::vector<SliceId> active_slices() const;

  /// Owning slice of a chip, or nullopt if free/failed/unowned.
  [[nodiscard]] std::optional<SliceId> owner(TpuId chip) const;

  [[nodiscard]] TpuCluster& cluster() { return cluster_; }
  [[nodiscard]] const TpuCluster& cluster() const { return cluster_; }

 private:
  TpuCluster& cluster_;
  std::vector<Slice> slices_;
  std::vector<bool> live_;
  std::vector<std::int32_t> owner_;  ///< per chip, -1 = none
};

/// Builds the exact rack packing of Figure 5b/5c on rack 0 of `alloc`:
/// Slice-4 (4x4x2) at z in {0,1}, Slice-3 (4x4x1) at z=2, Slice-1 (4x2x1)
/// at y in {0,1}, z=3 and Slice-2 (4x2x1) at y in {2,3}, z=3.
/// Returns ids in paper order: {slice1, slice2, slice3, slice4}.
struct Figure5Packing {
  SliceId slice1, slice2, slice3, slice4;
};
[[nodiscard]] Result<Figure5Packing> pack_figure5(SliceAllocator& alloc, RackId rack = 0);

}  // namespace lp::topo
