// 3-dimensional torus geometry.
//
// Google's TPUv4 racks arrange 64 chips as a 4x4x4 3D torus (paper §4,
// Figure 5a); larger deployments join racks into bigger tori through
// optical circuit switches.  This header provides the coordinate algebra
// used by the cluster model, the slice allocator and the collective
// schedule builders.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <vector>

namespace lp::topo {

inline constexpr std::size_t kDims = 3;

/// Extents of a torus (or of a slice sub-torus) in X, Y, Z.
struct Shape {
  std::array<std::int32_t, kDims> extent{1, 1, 1};

  [[nodiscard]] constexpr std::int32_t operator[](std::size_t d) const { return extent[d]; }
  [[nodiscard]] constexpr std::int32_t size() const {
    return extent[0] * extent[1] * extent[2];
  }
  friend constexpr auto operator<=>(const Shape&, const Shape&) = default;
};

/// A coordinate within a torus.
struct Coord {
  std::array<std::int32_t, kDims> c{0, 0, 0};

  [[nodiscard]] constexpr std::int32_t operator[](std::size_t d) const { return c[d]; }
  [[nodiscard]] constexpr std::int32_t& operator[](std::size_t d) { return c[d]; }
  friend constexpr auto operator<=>(const Coord&, const Coord&) = default;
};

/// Row-major linearization helpers over a Shape.
class Torus {
 public:
  explicit constexpr Torus(Shape shape) : shape_{shape} {}

  [[nodiscard]] constexpr Shape shape() const { return shape_; }
  [[nodiscard]] constexpr std::int32_t size() const { return shape_.size(); }

  [[nodiscard]] constexpr std::int32_t index(Coord c) const {
    return (c[0] * shape_[1] + c[1]) * shape_[2] + c[2];
  }

  [[nodiscard]] constexpr Coord coord(std::int32_t index) const {
    Coord c;
    c[2] = index % shape_[2];
    index /= shape_[2];
    c[1] = index % shape_[1];
    c[0] = index / shape_[1];
    return c;
  }

  /// Neighbor one step along dimension `d` (step = +1 or -1), with torus
  /// wraparound.
  [[nodiscard]] constexpr Coord neighbor(Coord c, std::size_t d, std::int32_t step) const {
    Coord n = c;
    const std::int32_t e = shape_[d];
    n[d] = ((c[d] + step) % e + e) % e;
    return n;
  }

  /// The full cycle of coordinates along dimension `d` through `c`,
  /// starting at `c` and walking in the +d direction.
  [[nodiscard]] std::vector<Coord> ring_through(Coord c, std::size_t d) const;

  /// All coordinates of the torus in index order.
  [[nodiscard]] std::vector<Coord> all_coords() const;

 private:
  Shape shape_;
};

}  // namespace lp::topo
