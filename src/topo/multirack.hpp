// Multi-rack joined tori.
//
// Reconfiguring the face OCSes joins k racks along one dimension into a
// single larger 3D torus (Figure 5a: "the optical circuit switches can be
// programmed to directly connect multiple racks or cubes together into
// larger tori").  Because the result *is* a torus, JoinedTorus represents
// it as a TpuCluster with the scaled shape, so every slice/ring/congestion
// tool in the library applies unchanged; what this class adds is the
// physical bookkeeping — which logical links are OCS-realized, which
// physical rack a coordinate lives in, and the OCS port/reconfiguration
// cost of the join.
#pragma once

#include <cstdint>

#include "topo/cluster.hpp"
#include "topo/ocs.hpp"
#include "util/result.hpp"

namespace lp::topo {

class JoinedTorus {
 public:
  /// Joins `racks_joined` racks of `base` shape along `join_dim`.
  /// Consumes OCS ports from `bank`: one port pair per face link of each
  /// inter-rack seam plus the wraparound seam.
  static Result<JoinedTorus> join(ClusterConfig base, std::int32_t racks_joined,
                                  std::size_t join_dim, OcsBank& bank);

  /// The joined topology as a regular cluster (1 logical "rack" of the
  /// scaled shape) — allocate slices, build rings, analyze congestion on
  /// this directly.
  [[nodiscard]] TpuCluster& cluster() { return cluster_; }
  [[nodiscard]] const TpuCluster& cluster() const { return cluster_; }

  [[nodiscard]] std::size_t join_dim() const { return join_dim_; }
  [[nodiscard]] std::int32_t racks_joined() const { return racks_joined_; }
  [[nodiscard]] std::int32_t base_extent() const { return base_extent_; }

  /// Physical rack hosting a joined-space coordinate.
  [[nodiscard]] RackId physical_rack(Coord joined) const;

  /// Whether a directed link is realized through the OCS layer: it crosses
  /// a rack seam (including the joined wraparound).
  [[nodiscard]] bool is_ocs_link(const DirectedLink& link) const;

  /// OCS port pairs the join consumed.
  [[nodiscard]] std::uint32_t ocs_ports_used() const { return ports_used_; }

  /// Latency of the join's OCS reconfiguration round.
  [[nodiscard]] Duration join_latency() const { return join_latency_; }

 private:
  JoinedTorus(ClusterConfig joined_config, std::int32_t racks_joined,
              std::size_t join_dim, std::int32_t base_extent, std::uint32_t ports,
              Duration latency);

  TpuCluster cluster_;
  std::int32_t racks_joined_;
  std::size_t join_dim_;
  std::int32_t base_extent_;
  std::uint32_t ports_used_;
  Duration join_latency_;
};

}  // namespace lp::topo
