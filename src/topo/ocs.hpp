// Optical circuit switches (OCSes) joining TPU racks into larger tori.
//
// "TPUs on every face of the cube are connected to OCSes which can be
// reconfigured to build larger 3D tori with multiple cubes" (Figure 5a,
// [23]).  The OCS layer tracks port usage and reconfiguration cost for
// joining racks; the joined topology itself is modelled by JoinedTorus
// (multirack.hpp), which produces a larger torus whose boundary-crossing
// and wraparound links are OCS-realized.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace lp::topo {

struct OcsParams {
  /// Ports per OCS (Google's deployments use 136-port 3D-MEMS units).
  std::uint32_t ports{136};
  /// MEMS mirror reconfiguration time — milliseconds, versus LIGHTPATH's
  /// microseconds; the contrast the paper's blast-radius argument rides on.
  Duration reconfig{Duration::millis(10.0)};
  /// Insertion loss per OCS traversal.
  Decibel insertion_loss{Decibel::db(2.0)};
};

/// Port accounting for the OCS bank serving one torus dimension.
class OcsBank {
 public:
  explicit OcsBank(OcsParams params = {}, std::uint32_t switch_count = 16);

  [[nodiscard]] const OcsParams& params() const { return params_; }
  [[nodiscard]] std::uint32_t total_ports() const { return switch_count_ * params_.ports; }
  [[nodiscard]] std::uint32_t ports_used() const { return used_; }
  [[nodiscard]] std::uint32_t ports_free() const { return total_ports() - used_; }

  /// Reserve `n` port pairs for a rack-to-rack join; false on shortage.
  bool reserve(std::uint32_t n);
  void release(std::uint32_t n);

  /// Number of reconfiguration rounds performed.
  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfigs_; }
  /// Account one reconfiguration round (all mirrors move in parallel) and
  /// return its latency.
  Duration reconfigure();

 private:
  OcsParams params_;
  std::uint32_t switch_count_;
  std::uint32_t used_{0};
  std::uint64_t reconfigs_{0};
};

}  // namespace lp::topo
