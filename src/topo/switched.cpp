#include "topo/switched.hpp"

#include <algorithm>

namespace lp::topo {

SwitchedServer::SwitchedServer(SwitchedServerParams params) : params_{params} {}

Bandwidth SwitchedServer::effective_flow_rate(std::size_t flows,
                                              Bandwidth background) const {
  if (flows == 0) return Bandwidth::zero();
  Bandwidth core_left = params_.aggregate_bandwidth - background;
  if (core_left < Bandwidth::zero()) core_left = Bandwidth::zero();
  const Bandwidth core_share = core_left / static_cast<double>(flows);
  return std::min(params_.port_bandwidth, core_share);
}

Duration SwitchedServer::ring_collective_beta(DataSize n, std::uint32_t p,
                                              Bandwidth background) const {
  if (p < 2) return Duration::zero();
  const Bandwidth rate = effective_flow_rate(p, background);
  if (rate.is_zero()) return Duration::infinite();
  // (p-1) steps, each moving n/p per chip at `rate`.
  const DataSize per_chip = n * (static_cast<double>(p - 1) / static_cast<double>(p));
  return transfer_time(per_chip, rate);
}

Duration SwitchedServer::all_to_all_beta(DataSize n, std::uint32_t p,
                                         Bandwidth background) const {
  if (p < 2) return Duration::zero();
  const Bandwidth rate = effective_flow_rate(p, background);
  if (rate.is_zero()) return Duration::infinite();
  // Rotation schedule: p-1 rounds, each chip sends n/(p-1) per round.
  return transfer_time(n, rate);
}

}  // namespace lp::topo
