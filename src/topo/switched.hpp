// Switched multi-accelerator server baseline (NVSwitch-class).
//
// §1 contrasts photonics against *two* electrical designs.  Besides the
// direct-connect torus, there is the switched server: every accelerator
// hangs off an ideal "big switch".  The paper's critique: per-port
// bandwidth is already massive (>300 GB/s one direction), "making it
// harder to stay true to the ideal switch abstraction.  This has resulted
// in evidence of contention in switched server-scale interconnects".
//
// Model: each of `ports` accelerators has full-duplex port_bandwidth, but
// the switch core only sustains aggregate_bandwidth (an effective bisection
// after scheduling/host-congestion losses, the [4]/[42] effect).  Flows get
// min(port share, fair share of what the core has left after background
// tenants).  Collectives on the switch are single-stage (any permutation is
// one hop), so a ring AllReduce is port-bound when the server is quiet and
// core-bound when it is shared — exactly the regime where dedicated
// photonic circuits keep their bandwidth.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace lp::topo {

struct SwitchedServerParams {
  std::uint32_t ports{8};
  /// Per-accelerator port bandwidth (one direction).
  Bandwidth port_bandwidth{Bandwidth::gBps(450.0)};
  /// Sustained switch-core bandwidth across all ports; below
  /// ports x port_bandwidth because the ideal abstraction leaks.
  Bandwidth aggregate_bandwidth{Bandwidth::gBps(450.0 * 8.0 * 0.75)};
  /// Per-message switch traversal latency (charged like alpha).
  Duration port_latency{Duration::micros(0.5)};
};

class SwitchedServer {
 public:
  explicit SwitchedServer(SwitchedServerParams params = {});

  [[nodiscard]] const SwitchedServerParams& params() const { return params_; }

  /// Rate one flow gets when `flows` flows are active and `background`
  /// bandwidth of other tenants' traffic crosses the core.
  [[nodiscard]] Bandwidth effective_flow_rate(std::size_t flows,
                                              Bandwidth background) const;

  /// Beta time of a p-chip ring ReduceScatter/AllGather of buffer n:
  /// p simultaneous single-hop flows per step, p-1 steps.
  [[nodiscard]] Duration ring_collective_beta(DataSize n, std::uint32_t p,
                                              Bandwidth background) const;

  /// Beta time of the rotation all-to-all of total per-chip volume n.
  [[nodiscard]] Duration all_to_all_beta(DataSize n, std::uint32_t p,
                                         Bandwidth background) const;

 private:
  SwitchedServerParams params_;
};

}  // namespace lp::topo
