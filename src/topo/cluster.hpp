// TPUv4-style direct-connect cluster substrate.
//
// Models the deployment the paper analyzes in §4 (Figure 5a): up to 64
// racks, each rack a 4x4x4 3D torus of TPU chips.  Within a rack the links
// are electrical; every face of the rack cube attaches to optical circuit
// switches (OCSes) that realize the wraparound links and can join multiple
// racks into larger tori.  Each rack contains 16 multi-accelerator servers
// of 4 chips (2x2x1 groups).
//
// Bandwidth convention (matches the paper's cost math): `chip_bandwidth` B
// is the total egress a chip can drive concurrently across its D=3
// dimensions, so each dimension gets B/3 in a static electrical torus, and
// a direction-uniform ring in one dimension runs at B/3.  Every directed
// link (chip, dim, sign) has capacity B/3.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topo/torus.hpp"
#include "util/units.hpp"

namespace lp::topo {

/// Global chip id across the cluster.
using TpuId = std::int32_t;
/// Rack index.
using RackId = std::int32_t;

enum class ChipState : std::uint8_t { kFree = 0, kAllocated = 1, kFailed = 2 };

/// A directed electrical link: the egress of `chip` along dimension `dim`
/// in direction `sign` (+1 or -1), with torus wraparound.
struct DirectedLink {
  TpuId chip{0};
  std::uint8_t dim{0};
  std::int8_t sign{+1};
  friend constexpr auto operator<=>(const DirectedLink&, const DirectedLink&) = default;
};

/// Dense key for DirectedLink maps: chip * 6 + dim * 2 + (sign < 0).
[[nodiscard]] constexpr std::size_t link_key(const DirectedLink& l) {
  return static_cast<std::size_t>(l.chip) * 6 + static_cast<std::size_t>(l.dim) * 2 +
         (l.sign < 0 ? 1u : 0u);
}

struct ClusterConfig {
  std::int32_t racks{64};
  Shape rack_shape{{4, 4, 4}};
  /// Total egress bandwidth per chip (B in the paper's cost model).
  Bandwidth chip_bandwidth{Bandwidth::gBps(300.0)};
  /// Server grouping within the rack (2x2x1 trays of 4 chips).
  Shape server_group{{2, 2, 1}};
};

class TpuCluster {
 public:
  explicit TpuCluster(ClusterConfig config = {});

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] std::int32_t rack_count() const { return config_.racks; }
  [[nodiscard]] std::int32_t chips_per_rack() const { return rack_torus_.size(); }
  [[nodiscard]] std::int32_t chip_count() const {
    return config_.racks * chips_per_rack();
  }
  [[nodiscard]] std::int32_t servers_per_rack() const;

  [[nodiscard]] const Torus& rack_torus() const { return rack_torus_; }

  /// Global chip id of (rack, coordinate-within-rack).
  [[nodiscard]] TpuId chip_at(RackId rack, Coord c) const;
  [[nodiscard]] RackId rack_of(TpuId chip) const;
  [[nodiscard]] Coord coord_of(TpuId chip) const;

  /// Server index within the rack of the given chip (0..15 by default).
  [[nodiscard]] std::int32_t server_of(TpuId chip) const;
  /// All chips on the same server as `chip` (including itself).
  [[nodiscard]] std::vector<TpuId> server_chips(TpuId chip) const;

  [[nodiscard]] ChipState state(TpuId chip) const { return states_[static_cast<std::size_t>(chip)]; }
  void set_state(TpuId chip, ChipState s) { states_[static_cast<std::size_t>(chip)] = s; }

  [[nodiscard]] std::vector<TpuId> chips_in_state(ChipState s) const;
  [[nodiscard]] std::vector<TpuId> free_chips_in_rack(RackId rack) const;

  /// Per-dimension bandwidth of the static electrical interconnect: B/3.
  [[nodiscard]] Bandwidth dim_bandwidth() const;

  /// Capacity of one directed link (equals dim_bandwidth()).
  [[nodiscard]] Bandwidth link_bandwidth() const { return dim_bandwidth(); }

  /// Whether the directed link's far end leaves the rack (i.e. it is a
  /// wraparound link realized through the face OCS).
  [[nodiscard]] bool is_wraparound(const DirectedLink& link) const;

  /// The chip at the far end of a directed link (within-rack torus
  /// semantics: wraparound stays in the same rack unless racks are joined).
  [[nodiscard]] TpuId link_target(const DirectedLink& link) const;

  /// Total number of directed links in the cluster.
  [[nodiscard]] std::size_t directed_link_count() const {
    return static_cast<std::size_t>(chip_count()) * 6;
  }

 private:
  ClusterConfig config_;
  Torus rack_torus_;
  std::vector<ChipState> states_;
};

}  // namespace lp::topo
