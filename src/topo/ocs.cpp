#include "topo/ocs.hpp"

#include <algorithm>

namespace lp::topo {

OcsBank::OcsBank(OcsParams params, std::uint32_t switch_count)
    : params_{params}, switch_count_{switch_count} {}

bool OcsBank::reserve(std::uint32_t n) {
  if (ports_free() < n) return false;
  used_ += n;
  return true;
}

void OcsBank::release(std::uint32_t n) { used_ -= std::min(n, used_); }

Duration OcsBank::reconfigure() {
  ++reconfigs_;
  return params_.reconfig;
}

}  // namespace lp::topo
