// Additional collective schedules: AllGather, AllReduce, and pipelined
// Broadcast.
//
// ReduceScatter (schedule.hpp) is the paper's running example; real
// training steps run AllReduce = ReduceScatter + AllGather, and serving
// systems broadcast weights.  These builders reuse the same ring
// realizations and interconnect conventions, so every experiment can be
// repeated for the other primitives.
#pragma once

#include "collective/schedule.hpp"

namespace lp::coll {

/// AllGather over the slice's plan rings: mirror image of ReduceScatter —
/// same step count, same per-step bytes, stages in reverse order (the
/// gather grows the shard each stage).
[[nodiscard]] Schedule build_all_gather_schedule(const topo::TpuCluster& cluster,
                                                 const topo::Slice& slice, DataSize n,
                                                 Interconnect interconnect,
                                                 const CostParams& params,
                                                 RedirectStrategy strategy =
                                                     RedirectStrategy::kStaticSplit);

/// AllReduce = ReduceScatter followed by AllGather on the same rings.  With
/// the static-split strategy the circuits persist across both halves, so
/// only the first half pays reconfiguration.
[[nodiscard]] Schedule build_all_reduce_schedule(const topo::TpuCluster& cluster,
                                                 const topo::Slice& slice, DataSize n,
                                                 Interconnect interconnect,
                                                 const CostParams& params,
                                                 RedirectStrategy strategy =
                                                     RedirectStrategy::kStaticSplit);

/// Pipelined ring broadcast from the slice's first chip: the buffer is cut
/// into `chunks` pieces that flow down a single ring covering all chips
/// (the plan's first stage ring if it covers everything, else a serpentine
/// over the whole slice).  Phase t activates ring edge j for chunk t-j,
/// 0 <= t-j < chunks: p-1+chunks-1 phases total.
[[nodiscard]] Schedule build_broadcast_schedule(const topo::TpuCluster& cluster,
                                                const topo::Slice& slice, DataSize n,
                                                unsigned chunks,
                                                Interconnect interconnect,
                                                const CostParams& params);

}  // namespace lp::coll
