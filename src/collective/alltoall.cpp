#include "collective/alltoall.hpp"

#include <algorithm>

namespace lp::coll {

DemandMatrix uniform_all_to_all(std::size_t chips, DataSize n) {
  DemandMatrix m{chips, std::vector<DataSize>(chips * chips, DataSize::zero())};
  if (chips < 2) return m;
  const DataSize per_pair = n / static_cast<double>(chips - 1);
  for (std::size_t s = 0; s < chips; ++s) {
    for (std::size_t d = 0; d < chips; ++d) {
      if (s != d) m.set(s, d, per_pair);
    }
  }
  return m;
}

DemandMatrix moe_gating_demand(std::size_t chips, std::size_t tokens,
                               std::size_t experts_per_token, DataSize token_bytes,
                               Rng& rng) {
  DemandMatrix m{chips, std::vector<DataSize>(chips * chips, DataSize::zero())};
  for (std::size_t src = 0; src < chips; ++src) {
    for (std::size_t t = 0; t < tokens; ++t) {
      for (std::size_t e = 0; e < experts_per_token; ++e) {
        const std::size_t dst = rng.uniform_index(chips);
        if (dst == src) continue;
        m.set(src, dst, m.at(src, dst) + token_bytes);
      }
    }
  }
  return m;
}

std::vector<topo::DirectedLink> dimension_order_route(const topo::TpuCluster& cluster,
                                                      topo::TpuId from, topo::TpuId to) {
  std::vector<topo::DirectedLink> route;
  topo::Coord at = cluster.coord_of(from);
  const topo::Coord goal = cluster.coord_of(to);
  const topo::RackId rack = cluster.rack_of(from);
  const auto& torus = cluster.rack_torus();
  for (std::uint8_t d = 0; d < topo::kDims; ++d) {
    const std::int32_t e = cluster.config().rack_shape[d];
    while (at[d] != goal[d]) {
      // Signed shortest way around the ring.
      const std::int32_t forward = ((goal[d] - at[d]) % e + e) % e;
      const std::int8_t sign = forward <= e / 2 ? std::int8_t{+1} : std::int8_t{-1};
      route.push_back(topo::DirectedLink{cluster.chip_at(rack, at), d, sign});
      at = torus.neighbor(at, d, sign);
    }
  }
  return route;
}

Schedule build_all_to_all_schedule(const topo::TpuCluster& cluster,
                                   const topo::Slice& slice, const DemandMatrix& demand,
                                   Interconnect interconnect, const CostParams& params) {
  Schedule schedule;
  std::vector<topo::TpuId> chips;
  for (const topo::Coord& c : slice.coords()) chips.push_back(cluster.chip_at(slice.rack, c));
  const std::size_t p = chips.size();
  if (p != demand.size || p < 2) return schedule;

  // One circuit per chip per round: with every chip pairing off, the
  // redirected bandwidth per circuit is the full chip bandwidth.
  const Bandwidth circuit_rate = params.chip_bandwidth;
  const Bandwidth elec_rate = params.chip_bandwidth / static_cast<double>(params.total_dims);
  (void)elec_rate;

  for (std::size_t round = 1; round < p; ++round) {
    Phase phase;
    if (interconnect == Interconnect::kOptical) phase.pre_delay = params.reconfig;
    for (std::size_t j = 0; j < p; ++j) {
      const std::size_t k = (j + round) % p;
      const DataSize bytes = demand.at(j, k);
      if (bytes <= DataSize::zero()) continue;
      Transfer t;
      t.src = chips[j];
      t.dst = chips[k];
      t.bytes = bytes;
      if (interconnect == Interconnect::kOptical) {
        t.dedicated_rate = circuit_rate;
      } else {
        t.route = dimension_order_route(cluster, t.src, t.dst);
      }
      phase.transfers.push_back(std::move(t));
    }
    if (!phase.transfers.empty()) schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

}  // namespace lp::coll
