#include "collective/group_schedules.hpp"

#include <algorithm>

namespace lp::coll {

namespace {

/// Largest K with 2^K <= m (m >= 1).
std::uint32_t floor_log2(std::size_t m) {
  std::uint32_t k = 0;
  while ((std::size_t{1} << (k + 1)) <= m) ++k;
  return k;
}

std::uint32_t ceil_log2(std::size_t m) {
  const std::uint32_t k = floor_log2(m);
  return (std::size_t{1} << k) == m ? k : k + 1;
}

Transfer make_transfer(topo::TpuId src, topo::TpuId dst, DataSize bytes,
                       Bandwidth rate) {
  Transfer t;
  t.src = src;
  t.dst = dst;
  t.bytes = bytes;
  t.dedicated_rate = rate;
  return t;
}

/// m-1 phases of `per_step` bytes around the member ring; reconfiguration
/// on the first phase only.  Shared body of the ring RS / AG halves.
Schedule ring_half(const std::vector<topo::TpuId>& members, DataSize per_step,
                   Bandwidth rate, Duration reconfig_delay) {
  Schedule schedule;
  const std::size_t m = members.size();
  if (m < 2) return schedule;
  for (std::size_t step = 0; step + 1 < m; ++step) {
    Phase phase;
    if (step == 0) phase.pre_delay = reconfig_delay;
    for (std::size_t e = 0; e < m; ++e) {
      phase.transfers.push_back(
          make_transfer(members[e], members[(e + 1) % m], per_step, rate));
    }
    schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

/// The fold pre-phase of the non-power-of-two halving algorithms: extras
/// members[pow2 + j] collapse their full buffers onto members[j].
Phase fold_phase(const std::vector<topo::TpuId>& members, std::size_t pow2,
                 DataSize n, Bandwidth rate, Duration reconfig_delay) {
  Phase phase;
  phase.pre_delay = reconfig_delay;
  for (std::size_t j = 0; j + pow2 < members.size(); ++j) {
    phase.transfers.push_back(
        make_transfer(members[pow2 + j], members[j], n, rate));
  }
  return phase;
}

/// One pairwise-exchange phase of the power-of-two core: every core member
/// i swaps `bytes` with its partner i XOR d.
Phase exchange_phase(const std::vector<topo::TpuId>& members, std::size_t pow2,
                     std::size_t d, DataSize bytes, Bandwidth rate,
                     Duration reconfig_delay) {
  Phase phase;
  phase.pre_delay = reconfig_delay;
  for (std::size_t i = 0; i < pow2; ++i) {
    phase.transfers.push_back(
        make_transfer(members[i], members[i ^ d], bytes, rate));
  }
  return phase;
}

}  // namespace

Schedule build_tree_broadcast_schedule(const std::vector<topo::TpuId>& members,
                                       DataSize n, Bandwidth rate,
                                       Duration reconfig_delay) {
  Schedule schedule;
  const std::size_t m = members.size();
  if (m < 2) return schedule;
  const std::uint32_t depth = ceil_log2(m);
  for (std::uint32_t k = 0; k < depth; ++k) {
    Phase phase;
    phase.pre_delay = reconfig_delay;
    const std::size_t stride = std::size_t{1} << k;
    for (std::size_t i = 0; i < stride && i + stride < m; ++i) {
      phase.transfers.push_back(
          make_transfer(members[i], members[i + stride], n, rate));
    }
    schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

Schedule build_tree_reduce_schedule(const std::vector<topo::TpuId>& members,
                                    DataSize n, Bandwidth rate,
                                    Duration reconfig_delay) {
  Schedule schedule;
  const std::size_t m = members.size();
  if (m < 2) return schedule;
  const std::uint32_t depth = ceil_log2(m);
  for (std::uint32_t k = depth; k-- > 0;) {
    Phase phase;
    phase.pre_delay = reconfig_delay;
    const std::size_t stride = std::size_t{1} << k;
    for (std::size_t i = 0; i < stride && i + stride < m; ++i) {
      phase.transfers.push_back(
          make_transfer(members[i + stride], members[i], n, rate));
    }
    schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

Schedule build_tree_all_reduce_schedule(const std::vector<topo::TpuId>& members,
                                        DataSize n, Bandwidth rate,
                                        Duration reconfig_delay) {
  Schedule schedule = build_tree_reduce_schedule(members, n, rate, reconfig_delay);
  Schedule bcast = build_tree_broadcast_schedule(members, n, rate, reconfig_delay);
  for (Phase& phase : bcast.phases) schedule.phases.push_back(std::move(phase));
  return schedule;
}

Schedule build_halving_reduce_scatter_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay) {
  Schedule schedule;
  const std::size_t m = members.size();
  if (m < 2) return schedule;
  const std::uint32_t depth = floor_log2(m);
  const std::size_t pow2 = std::size_t{1} << depth;
  if (pow2 < m) {
    schedule.phases.push_back(fold_phase(members, pow2, n, rate, reconfig_delay));
  }
  for (std::uint32_t k = 1; k <= depth; ++k) {
    schedule.phases.push_back(exchange_phase(
        members, pow2, pow2 >> k, n / static_cast<double>(std::size_t{1} << k),
        rate, reconfig_delay));
  }
  return schedule;
}

Schedule build_doubling_all_gather_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay) {
  Schedule schedule;
  const std::size_t m = members.size();
  if (m < 2) return schedule;
  const std::uint32_t depth = floor_log2(m);
  const std::size_t pow2 = std::size_t{1} << depth;
  for (std::uint32_t k = depth; k >= 1; --k) {
    schedule.phases.push_back(exchange_phase(
        members, pow2, pow2 >> k, n / static_cast<double>(std::size_t{1} << k),
        rate, reconfig_delay));
  }
  if (pow2 < m) {
    // Unfold: the leading core members hand the gathered buffer back out.
    Phase phase;
    phase.pre_delay = reconfig_delay;
    for (std::size_t j = 0; j + pow2 < m; ++j) {
      phase.transfers.push_back(
          make_transfer(members[j], members[pow2 + j], n, rate));
    }
    schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

Schedule build_halving_doubling_all_reduce_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay) {
  Schedule schedule =
      build_halving_reduce_scatter_schedule(members, n, rate, reconfig_delay);
  if (schedule.phases.empty()) return schedule;
  Schedule gather =
      build_doubling_all_gather_schedule(members, n, rate, reconfig_delay);
  for (Phase& phase : gather.phases) schedule.phases.push_back(std::move(phase));
  return schedule;
}

Schedule build_ring_reduce_scatter_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay) {
  const std::size_t m = members.size();
  if (m < 2) return Schedule{};
  return ring_half(members, n / static_cast<double>(m), rate, reconfig_delay);
}

Schedule build_ring_all_gather_schedule(const std::vector<topo::TpuId>& members,
                                        DataSize n, Bandwidth rate,
                                        Duration reconfig_delay) {
  const std::size_t m = members.size();
  if (m < 2) return Schedule{};
  return ring_half(members, n / static_cast<double>(m), rate, reconfig_delay);
}

Schedule build_pipeline_broadcast_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, std::uint32_t chunks,
    Bandwidth rate, Duration reconfig_delay) {
  Schedule schedule;
  const std::size_t m = members.size();
  if (m < 2) return schedule;
  const std::size_t c = std::max<std::uint32_t>(chunks, 1);
  const DataSize per_chunk = n / static_cast<double>(c);
  const std::size_t phases = (m - 1) + (c - 1);
  for (std::size_t t = 0; t < phases; ++t) {
    Phase phase;
    if (t == 0) phase.pre_delay = reconfig_delay;
    for (std::size_t j = 0; j + 1 < m; ++j) {
      if (t < j || t - j >= c) continue;  // chunk t-j not in flight on edge j
      phase.transfers.push_back(
          make_transfer(members[j], members[j + 1], per_chunk, rate));
    }
    schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

Schedule build_rotation_all_to_all_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay) {
  Schedule schedule;
  const std::size_t m = members.size();
  if (m < 2) return schedule;
  const DataSize per_round = n / static_cast<double>(m - 1);
  for (std::size_t k = 1; k < m; ++k) {
    Phase phase;
    phase.pre_delay = reconfig_delay;
    for (std::size_t i = 0; i < m; ++i) {
      phase.transfers.push_back(
          make_transfer(members[i], members[(i + k) % m], per_round, rate));
    }
    schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

Schedule build_ring_all_to_all_schedule(const std::vector<topo::TpuId>& members,
                                        DataSize n, Bandwidth rate,
                                        Duration reconfig_delay) {
  const std::size_t m = members.size();
  if (m < 2) return Schedule{};
  const DataSize per_phase =
      n * (static_cast<double>(m) / (2.0 * static_cast<double>(m - 1)));
  return ring_half(members, per_phase, rate, reconfig_delay);
}

Schedule build_direct_transfer_schedule(topo::TpuId src, topo::TpuId dst,
                                        DataSize n, Bandwidth rate,
                                        Duration reconfig_delay) {
  Schedule schedule;
  Phase phase;
  phase.pre_delay = reconfig_delay;
  phase.transfers.push_back(make_transfer(src, dst, n, rate));
  schedule.phases.push_back(std::move(phase));
  return schedule;
}

Schedule build_striped_transfer_schedule(topo::TpuId src, topo::TpuId dst,
                                         DataSize n, std::uint32_t ways,
                                         Bandwidth rate,
                                         Duration reconfig_delay) {
  Schedule schedule;
  const std::uint32_t w = std::max<std::uint32_t>(ways, 1);
  Phase phase;
  phase.pre_delay = reconfig_delay;
  for (std::uint32_t i = 0; i < w; ++i) {
    phase.transfers.push_back(
        make_transfer(src, dst, n / static_cast<double>(w), rate));
  }
  schedule.phases.push_back(std::move(phase));
  return schedule;
}

}  // namespace lp::coll
