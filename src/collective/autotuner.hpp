// NCCL-style collective autotuner over the alpha-beta-r model.
//
// Given (collective op, message size, member group, fabric health state),
// the tuner evaluates a closed-form alpha-beta-r cost for every candidate
// schedule and returns the predicted-fastest.  The cost convention matches
// the flow simulator exactly: a schedule's measured cost is defined as
//
//   sim::FlowSimulator::run(schedule).total + alpha * alpha_units(schedule)
//
// where alpha_units charges the per-send software overhead the simulator
// itself does not model (one unit per phase per posting source; see
// alpha_units below).  Because every group_schedules builder emits uniform
// byte counts per phase, predict() reproduces that measured cost to within
// floating-point rounding — the differential harness in autotuner_test
// asserts it, and any divergence (a mispredicted pick beyond the
// documented tolerance) is a test failure, not a soft warning.
//
// Decision cache.  pick() memoizes decisions keyed by
//
//   (op, size bucket, topology fingerprint, fabric epoch)
//
// with quarter-octave size buckets (four per doubling).  The cached
// decision is computed at the bucket's canonical representative size (its
// geometric midpoint), NOT the requested size, so a decision is a pure
// function of the key: lookup order, thread interleaving, and which exact
// size first touched a bucket can never change what the cache returns.
// The topology fingerprint hashes the member list, rate, and
// reconfiguration delay; the fabric epoch (fabric::Fabric::epoch(), bumped
// on every invalidating ledger event) makes stale entries unreachable
// without any explicit invalidation hook.  When the map outgrows
// `cache_capacity` it is reset wholesale — entries are cheap to recompute
// and epoch churn retires them in bulk anyway.
//
// Tie-break.  Equal predicted costs are broken by a documented total
// order: ascending fixed algorithm rank (the Algorithm enumerator value),
// then algorithm name — so tuner output is invariant under candidate
// enumeration order, thread count, and insertion history.
//
// Misprediction tolerance.  A pick is correct iff its measured cost is
// within tolerance_rel (relative) plus tolerance_abs (absolute slack,
// absorbing bucket quantization near crossovers) of the best measured
// candidate.  See DESIGN.md "Collective autotuner".
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "collective/group_schedules.hpp"
#include "collective/schedule.hpp"
#include "topo/cluster.hpp"
#include "util/units.hpp"

namespace lp::coll {

enum class CollOp : std::uint8_t {
  kReduceScatter = 0,
  kAllGather = 1,
  kAllReduce = 2,
  kBroadcast = 3,
  kAllToAll = 4,
  kTransfer = 5,
};

/// Candidate schedule families.  The enumerator value IS the fixed
/// tie-break rank: lower wins on equal predicted cost.
enum class Algorithm : std::uint8_t {
  kRing = 0,
  kTree = 1,
  kHalvingDoubling = 2,
  kRotation = 3,
  kPipeline = 4,
  kDirect = 5,
  kStriped = 6,
};

[[nodiscard]] constexpr const char* to_string(CollOp op) {
  switch (op) {
    case CollOp::kReduceScatter: return "ReduceScatter";
    case CollOp::kAllGather: return "AllGather";
    case CollOp::kAllReduce: return "AllReduce";
    case CollOp::kBroadcast: return "Broadcast";
    case CollOp::kAllToAll: return "AllToAll";
    case CollOp::kTransfer: return "Transfer";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kRing: return "ring";
    case Algorithm::kTree: return "tree";
    case Algorithm::kHalvingDoubling: return "halving-doubling";
    case Algorithm::kRotation: return "rotation";
    case Algorithm::kPipeline: return "pipeline";
    case Algorithm::kDirect: return "direct";
    case Algorithm::kStriped: return "striped";
  }
  return "?";
}

/// Fixed tie-break rank (documented total order, first key after cost).
[[nodiscard]] constexpr int algorithm_rank(Algorithm a) {
  return static_cast<int>(a);
}

struct TunerParams {
  /// Per-send software overhead (the cost model's alpha), charged once per
  /// phase per posting source on top of the simulated wire time.
  Duration alpha{Duration::micros(1.0)};
  /// Chunk count for the pipeline broadcast candidate.
  std::uint32_t broadcast_chunks{16};
  /// Stripe count for the striped transfer candidate.
  std::uint32_t stripe_ways{4};
  /// Decision-cache reset threshold (entries).
  std::size_t cache_capacity{std::size_t{1} << 16};
  /// Misprediction tolerance: pick is correct iff
  /// measured(pick) <= measured(best) * (1 + tolerance_rel) + tolerance_abs.
  double tolerance_rel{0.05};
  Duration tolerance_abs{Duration::micros(2.0)};
};

struct Decision {
  Algorithm algo{Algorithm::kRing};
  /// Predicted cost of `algo` at the bucket's representative size (the
  /// size the cached decision was evaluated at).
  Duration predicted{Duration::zero()};
  bool cache_hit{false};
};

class Autotuner {
 public:
  explicit Autotuner(TunerParams params = {});

  [[nodiscard]] const TunerParams& params() const { return params_; }

  /// Candidate algorithms for `op`, in rank order.
  [[nodiscard]] static std::vector<Algorithm> candidates(CollOp op);

  /// Closed-form alpha-beta-r cost of `algo` on a group of `m` members
  /// exchanging `n` bytes over dedicated circuits at `rate` with
  /// reconfiguration delay `reconfig`.  Equals the measured cost of the
  /// corresponding build() schedule (see header comment) to within
  /// floating-point rounding.
  [[nodiscard]] Duration predict(CollOp op, Algorithm algo, std::size_t m,
                                 DataSize n, Bandwidth rate,
                                 Duration reconfig) const;

  /// Memoized pick: O(1) hot path on the decision cache (hash + map find).
  /// Computes the topology fingerprint from `members` — callers that
  /// already hold a fingerprint should use pick_keyed.
  [[nodiscard]] Decision pick(CollOp op, DataSize n,
                              const std::vector<topo::TpuId>& members,
                              Bandwidth rate, Duration reconfig,
                              std::uint64_t fabric_epoch);

  /// Memoized pick with a precomputed topology fingerprint (the hot path:
  /// no per-call member walk).
  [[nodiscard]] Decision pick_keyed(CollOp op, DataSize n, std::size_t m,
                                    std::uint64_t topology_fingerprint,
                                    Bandwidth rate, Duration reconfig,
                                    std::uint64_t fabric_epoch);

  /// Materializes the chosen schedule.  For CollOp::kTransfer the group is
  /// {src, dst}.
  [[nodiscard]] Schedule build(CollOp op, Algorithm algo,
                               const std::vector<topo::TpuId>& members,
                               DataSize n, Bandwidth rate,
                               Duration reconfig) const;

  /// Quarter-octave size bucket: four buckets per doubling of bytes.
  [[nodiscard]] static std::uint32_t size_bucket(DataSize n);
  /// Canonical evaluation size of a bucket (its geometric midpoint).
  [[nodiscard]] static DataSize bucket_representative(std::uint32_t bucket);
  /// Order-sensitive hash of (members, rate, reconfig): the fabric-health
  /// component of the cache key.
  [[nodiscard]] static std::uint64_t topology_fingerprint(
      const std::vector<topo::TpuId>& members, Bandwidth rate,
      Duration reconfig);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  void clear();

 private:
  struct Entry {
    CollOp op{CollOp::kReduceScatter};
    std::uint32_t bucket{0};
    std::uint64_t fingerprint{0};
    std::uint64_t epoch{0};
    Algorithm algo{Algorithm::kRing};
    Duration predicted{Duration::zero()};
  };

  /// Uncached evaluation: min over candidates by (cost, rank, name).
  [[nodiscard]] Decision evaluate(CollOp op, std::size_t m, DataSize n,
                                  Bandwidth rate, Duration reconfig) const;

  TunerParams params_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> cache_;
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
};

/// The per-schedule software-overhead unit count: for each phase, the
/// maximum number of transfers any single source posts (every source's
/// sends in a phase are posted back-to-back; distinct sources overlap).
/// Ring/tree/halving/rotation phases charge 1 unit; a striped transfer
/// charges `ways`.
[[nodiscard]] double alpha_units(const Schedule& schedule);

/// The measured-cost convention the tuner is validated against:
/// simulated schedule time plus alpha * alpha_units.  `simulated_total` is
/// sim::FlowSimulator::run(schedule).total (the collective layer cannot
/// call the simulator itself — sim/ links against collective/).
[[nodiscard]] Duration measured_cost(Duration simulated_total,
                                     const Schedule& schedule, Duration alpha);

}  // namespace lp::coll
