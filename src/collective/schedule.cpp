#include "collective/schedule.hpp"

#include <algorithm>

namespace lp::coll {

std::size_t Schedule::transfer_count() const {
  std::size_t n = 0;
  for (const auto& p : phases) n += p.transfers.size();
  return n;
}

DataSize Schedule::total_bytes() const {
  DataSize total = DataSize::zero();
  for (const auto& p : phases) {
    for (const auto& t : p.transfers) total += t.bytes;
  }
  return total;
}

namespace {

/// Rings realizing one plan stage.
std::vector<RingRealization> realize_stage(const topo::TpuCluster& cluster,
                                           const topo::Slice& slice,
                                           const RingStage& stage) {
  if (stage.snake) {
    // Recover the snake dims the plan folded: partially-spanned active dims
    // plus the first usable dim.
    const topo::Shape& rack_shape = cluster.config().rack_shape;
    const auto usable = usable_dims(slice, rack_shape);
    std::vector<std::size_t> snake_dims;
    for (std::size_t d : active_dims(slice)) {
      if (std::find(usable.begin(), usable.end(), d) == usable.end())
        snake_dims.push_back(d);
    }
    if (!usable.empty()) snake_dims.push_back(usable.front());
    return snake_rings(cluster, slice, snake_dims);
  }
  return rings_in_dim(cluster, slice, static_cast<std::size_t>(stage.dim));
}

/// The directed links of one cycle edge of a realized ring.  The realized
/// link list is ordered edge-by-edge, so recover edge boundaries by walking.
std::vector<std::vector<topo::DirectedLink>> edge_routes(const topo::TpuCluster& cluster,
                                                         const RingRealization& ring) {
  std::vector<std::vector<topo::DirectedLink>> routes(ring.members.size());
  std::size_t li = 0;
  for (std::size_t e = 0; e < ring.members.size(); ++e) {
    const topo::TpuId target = ring.members[(e + 1) % ring.members.size()];
    topo::TpuId at = ring.members[e];
    while (at != target && li < ring.links.size()) {
      routes[e].push_back(ring.links[li]);
      at = cluster.link_target(ring.links[li]);
      ++li;
    }
  }
  return routes;
}

}  // namespace

Schedule build_reduce_scatter_schedule(const topo::TpuCluster& cluster,
                                       const topo::Slice& slice, DataSize n,
                                       Interconnect interconnect,
                                       const CostParams& params,
                                       RedirectStrategy strategy) {
  Schedule schedule;
  const CollectivePlan plan = build_plan(slice, cluster.config().rack_shape);
  const Bandwidth elec_bw =
      params.chip_bandwidth / static_cast<double>(params.total_dims);
  const Bandwidth opt_bw =
      strategy == RedirectStrategy::kPerStageFull
          ? params.chip_bandwidth
          : params.chip_bandwidth /
                static_cast<double>(std::max<std::size_t>(1, plan.stages.size()));

  for (const RingStage& stage : plan.stages) {
    const auto rings = realize_stage(cluster, slice, stage);
    const auto steps = stage.ring_size - 1;
    // Each chip's shard of this stage: buffer_fraction * N split over the
    // ring, sent once per step.
    const DataSize per_step =
        n * (stage.buffer_fraction / static_cast<double>(stage.ring_size));
    for (std::int32_t step = 0; step < steps; ++step) {
      Phase phase;
      if (step == 0 && interconnect == Interconnect::kOptical)
        phase.pre_delay = params.reconfig;
      for (const auto& ring : rings) {
        const auto routes = edge_routes(cluster, ring);
        for (std::size_t e = 0; e < ring.members.size(); ++e) {
          Transfer t;
          t.src = ring.members[e];
          t.dst = ring.members[(e + 1) % ring.members.size()];
          t.bytes = per_step;
          if (interconnect == Interconnect::kOptical) {
            t.dedicated_rate = opt_bw;
          } else {
            t.route = routes[e];
            (void)elec_bw;  // electrical rate comes from link capacities
          }
          phase.transfers.push_back(std::move(t));
        }
      }
      schedule.phases.push_back(std::move(phase));
    }
  }
  return schedule;
}

Schedule build_elastic_ring_schedule(const std::vector<topo::TpuId>& members,
                                     DataSize n, Bandwidth rate,
                                     Duration reconfig_delay) {
  Schedule schedule;
  const std::size_t m = members.size();
  if (m < 2) return schedule;

  const DataSize per_step = n / static_cast<double>(m);
  // Ring AllReduce: m-1 reduce-scatter steps followed by m-1 all-gather
  // steps, identical traffic pattern in both halves.
  const std::size_t steps = 2 * (m - 1);
  for (std::size_t step = 0; step < steps; ++step) {
    Phase phase;
    if (step == 0) phase.pre_delay = reconfig_delay;
    for (std::size_t e = 0; e < m; ++e) {
      Transfer t;
      t.src = members[e];
      t.dst = members[(e + 1) % m];
      t.bytes = per_step;
      t.dedicated_rate = rate;
      phase.transfers.push_back(std::move(t));
    }
    schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

}  // namespace lp::coll
