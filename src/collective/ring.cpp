#include "collective/ring.hpp"

#include <algorithm>
#include <cassert>

namespace lp::coll {

namespace {

using topo::Coord;
using topo::DirectedLink;
using topo::TpuCluster;
using topo::TpuId;

/// Appends the +d walk from `from` to `to` (rack-space, torus wraparound) to
/// `links`, recording intermediate chips in `transit` when they are not ring
/// members.
void walk_plus_d(const TpuCluster& cluster, topo::RackId rack, Coord from, Coord to,
                 std::size_t d, const std::vector<TpuId>& members,
                 std::vector<DirectedLink>& links, std::vector<TpuId>& transit) {
  Coord at = from;
  const auto& torus = cluster.rack_torus();
  while (at != to) {
    const TpuId chip = cluster.chip_at(rack, at);
    links.push_back(DirectedLink{chip, static_cast<std::uint8_t>(d), +1});
    at = torus.neighbor(at, d, +1);
    const TpuId here = cluster.chip_at(rack, at);
    if (at != to && std::find(members.begin(), members.end(), here) == members.end()) {
      transit.push_back(here);
    }
  }
}

}  // namespace

std::vector<RingRealization> rings_in_dim(const TpuCluster& cluster,
                                          const topo::Slice& slice, std::size_t d) {
  std::vector<RingRealization> rings;
  if (slice.shape[d] <= 1) return rings;

  // One ring per combination of the other two dimensions.
  const std::array<std::size_t, 2> others =
      d == 0 ? std::array<std::size_t, 2>{1, 2}
             : (d == 1 ? std::array<std::size_t, 2>{0, 2} : std::array<std::size_t, 2>{0, 1});
  for (std::int32_t a = 0; a < slice.shape[others[0]]; ++a) {
    for (std::int32_t b = 0; b < slice.shape[others[1]]; ++b) {
      RingRealization ring;
      Coord base = slice.offset;
      base[others[0]] += a;
      base[others[1]] += b;
      for (std::int32_t i = 0; i < slice.shape[d]; ++i) {
        Coord c = base;
        c[d] = slice.offset[d] + i;
        ring.members.push_back(cluster.chip_at(slice.rack, c));
      }
      // Realize each cycle edge as a +d walk; the wrap edge goes around the
      // full torus dimension when the slice does not span it.
      for (std::size_t i = 0; i < ring.members.size(); ++i) {
        const Coord from = cluster.coord_of(ring.members[i]);
        const Coord to = cluster.coord_of(ring.members[(i + 1) % ring.members.size()]);
        walk_plus_d(cluster, slice.rack, from, to, d, ring.members, ring.links,
                    ring.transit_chips);
      }
      rings.push_back(std::move(ring));
    }
  }
  return rings;
}

RingRealization snake_ring(const TpuCluster& cluster, const topo::Slice& slice,
                           const std::vector<std::size_t>& dims, Coord fixed) {
  assert(!dims.empty());
  RingRealization ring;

  // Boustrophedon order over the sub-grid spanned by `dims` (local coords).
  std::vector<Coord> order;
  const std::int32_t total = [&] {
    std::int32_t t = 1;
    for (std::size_t d : dims) t *= slice.shape[d];
    return t;
  }();
  order.reserve(static_cast<std::size_t>(total));

  std::vector<std::int32_t> local(dims.size(), 0);
  // Iterate the outer dims normally and zig-zag the first dim so consecutive
  // coordinates are always grid-adjacent.
  const std::int32_t inner_extent = slice.shape[dims[0]];
  std::int32_t emitted = 0;
  bool forward = true;
  while (emitted < total) {
    for (std::int32_t i = 0; i < inner_extent; ++i) {
      local[0] = forward ? i : inner_extent - 1 - i;
      Coord c = fixed;
      for (std::size_t k = 0; k < dims.size(); ++k) c[dims[k]] = slice.offset[dims[k]] + local[k];
      order.push_back(c);
      ++emitted;
    }
    forward = !forward;
    // Increment the outer counters (odometer over dims[1..]).
    std::size_t k = 1;
    while (k < dims.size()) {
      if (++local[k] < slice.shape[dims[k]]) break;
      local[k] = 0;
      ++k;
    }
    if (k == dims.size()) break;
  }

  for (const Coord& c : order) ring.members.push_back(cluster.chip_at(slice.rack, c));

  // Realize cycle edges.  Consecutive boustrophedon coords are adjacent
  // (single +/- hop in some dim); the closing edge walks back along the
  // outer dims through slice members.
  const auto& torus = cluster.rack_torus();
  auto add_walk = [&](Coord from, Coord to) {
    // Generic greedy walk: fix dims one at a time by signed single steps.
    Coord at = from;
    while (at != to) {
      bool stepped = false;
      for (std::size_t d : dims) {
        if (at[d] == to[d]) continue;
        const std::int32_t sign = to[d] > at[d] ? +1 : -1;
        const TpuId chip = cluster.chip_at(slice.rack, at);
        ring.links.push_back(
            DirectedLink{chip, static_cast<std::uint8_t>(d), static_cast<std::int8_t>(sign)});
        at = torus.neighbor(at, d, sign);
        const TpuId here = cluster.chip_at(slice.rack, at);
        if (at != to &&
            std::find(ring.members.begin(), ring.members.end(), here) == ring.members.end())
          ring.transit_chips.push_back(here);
        stepped = true;
        break;
      }
      assert(stepped);
      if (!stepped) break;
    }
  };
  for (std::size_t i = 0; i < order.size(); ++i) {
    add_walk(order[i], order[(i + 1) % order.size()]);
  }
  return ring;
}

std::vector<RingRealization> snake_rings(const TpuCluster& cluster,
                                         const topo::Slice& slice,
                                         const std::vector<std::size_t>& dims) {
  std::vector<RingRealization> rings;
  // Remaining dims (not in `dims`) index the set of serpentine rings.
  std::vector<std::size_t> rest;
  for (std::size_t d = 0; d < topo::kDims; ++d) {
    if (std::find(dims.begin(), dims.end(), d) == dims.end()) rest.push_back(d);
  }
  std::vector<std::int32_t> counter(rest.size(), 0);
  for (;;) {
    Coord fixed = slice.offset;
    for (std::size_t k = 0; k < rest.size(); ++k) fixed[rest[k]] += counter[k];
    rings.push_back(snake_ring(cluster, slice, dims, fixed));
    std::size_t k = 0;
    while (k < rest.size()) {
      if (++counter[k] < slice.shape[rest[k]]) break;
      counter[k] = 0;
      ++k;
    }
    if (k == rest.size()) break;
  }
  return rings;
}

}  // namespace lp::coll
