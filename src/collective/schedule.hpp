// Executable communication schedules.
//
// A Schedule lowers a collective (or any traffic pattern) to phases of
// simultaneous point-to-point transfers.  Electrical transfers carry their
// directed-link route and compete for link bandwidth in the flow simulator;
// optical transfers ride a dedicated circuit at a fixed rate (contention-
// free by construction) and phases that re-program the fabric carry a
// reconfiguration delay.
#pragma once

#include <vector>

#include "collective/cost_model.hpp"
#include "collective/ring.hpp"
#include "topo/cluster.hpp"
#include "topo/slice.hpp"
#include "util/units.hpp"

namespace lp::coll {

struct Transfer {
  topo::TpuId src{0};
  topo::TpuId dst{0};
  DataSize bytes{DataSize::zero()};
  /// Directed links the transfer occupies (empty for optical circuits).
  std::vector<topo::DirectedLink> route;
  /// For optical transfers: the dedicated circuit rate.  Zero means the
  /// transfer is electrical and routed over `route`.
  Bandwidth dedicated_rate{Bandwidth::zero()};

  [[nodiscard]] bool is_optical() const { return !dedicated_rate.is_zero(); }
};

struct Phase {
  /// Delay charged before the phase's transfers start (e.g. optical
  /// reconfiguration of the stage's circuits).
  Duration pre_delay{Duration::zero()};
  std::vector<Transfer> transfers;
};

struct Schedule {
  std::vector<Phase> phases;

  [[nodiscard]] std::size_t transfer_count() const;
  [[nodiscard]] DataSize total_bytes() const;
};

/// Lowers a ReduceScatter on `slice` to an executable schedule.
///
/// Electrical: the cost model's plan stages are realized as rings
/// (serpentine for the snake stage, +d rings otherwise); each ring step
/// becomes a phase whose transfers follow the realized links at the static
/// per-dimension bandwidth.
///
/// Optical: the same ring structure, but each transfer rides a dedicated
/// circuit at the redirected per-stage bandwidth and the first phase of
/// each stage is preceded by the reconfiguration delay.
[[nodiscard]] Schedule build_reduce_scatter_schedule(const topo::TpuCluster& cluster,
                                                     const topo::Slice& slice, DataSize n,
                                                     Interconnect interconnect,
                                                     const CostParams& params,
                                                     RedirectStrategy strategy =
                                                         RedirectStrategy::kStaticSplit);

/// Lowers a ring AllReduce over an explicit member list to an optical
/// schedule: 2*(m-1) phases (reduce-scatter then all-gather), each phase
/// sending N/m bytes from member[i] to member[(i+1) % m] on a dedicated
/// circuit at `rate`, with the first phase paying `reconfig_delay`.
///
/// The member list is *whatever chips survive*, in ring order — this is the
/// elastic-degradation builder the runtime layer uses after a chip death
/// exhausts respare: the ring shrinks to the survivors and the job continues
/// at whatever `rate` the bridging circuits sustain instead of failing.
/// Fewer than two members yields an empty schedule (nothing to exchange).
[[nodiscard]] Schedule build_elastic_ring_schedule(const std::vector<topo::TpuId>& members,
                                                   DataSize n, Bandwidth rate,
                                                   Duration reconfig_delay);

}  // namespace lp::coll
