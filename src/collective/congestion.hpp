// Link-level congestion analysis on the electrical torus.
//
// "We define congestion in a direct-connect topology as the scenario where
// multiple transfers occur simultaneously on the same link" (§4.1).  This
// module materializes the steady-state link occupancy of every slice's
// collective rings and answers:
//   * is a set of rings congestion-free? (max per-link load <= 1)
//   * which dimensions can a slice ring on without congesting anyone?
//   * can a spare chip be wired into a broken ring without congestion?
//     (the Figure 6 search)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "collective/cost_model.hpp"
#include "collective/ring.hpp"
#include "topo/cluster.hpp"
#include "topo/slice.hpp"

namespace lp::coll {

/// Per-directed-link transfer counts for one rack (or cluster).
class LinkLoad {
 public:
  explicit LinkLoad(std::size_t link_count);

  void add(const topo::DirectedLink& link);
  void add_all(const std::vector<topo::DirectedLink>& links);

  [[nodiscard]] std::uint32_t load(const topo::DirectedLink& link) const;
  [[nodiscard]] std::uint32_t max_load() const;
  [[nodiscard]] bool congestion_free() const { return max_load() <= 1; }
  /// Number of links carrying more than one simultaneous transfer.
  [[nodiscard]] std::size_t congested_link_count() const;
  /// Number of links carrying at least one transfer.
  [[nodiscard]] std::size_t busy_link_count() const;

 private:
  std::vector<std::uint32_t> load_;
};

/// Which ring dimensions each slice drives.
enum class RingSelection : std::uint8_t {
  kUsableOnly,  ///< only full-extent dims (the congestion-avoiding policy)
  kAllActive,   ///< every extent>1 dim (what a naive tenant would run)
};

/// The realized rings of one slice's steady-state collective.
struct SliceTraffic {
  topo::SliceId slice{-1};
  std::vector<RingRealization> rings;
  /// Links used, including forwarding hops.
  std::vector<topo::DirectedLink> links;
  /// Chips outside the slice that must forward traffic.
  std::vector<topo::TpuId> transit_chips;
};

/// Builds the steady-state ring traffic of a slice under the selection
/// policy.  kUsableOnly realizes the cost model's electrical plan (snake
/// stage over partially-spanned dims + proper rings over spanned dims);
/// kAllActive additionally realizes +d rings over partially-spanned dims,
/// whose wrap edges leave the slice.
[[nodiscard]] SliceTraffic slice_traffic(const topo::TpuCluster& cluster,
                                         const topo::Slice& slice,
                                         RingSelection selection);

/// Aggregated rack analysis: every active slice's traffic overlaid.
struct RackAnalysis {
  LinkLoad load;
  std::vector<SliceTraffic> per_slice;
  bool congestion_free{false};
  /// Chips forced to forward traffic of a slice they do not belong to.
  std::size_t foreign_transits{0};
};

[[nodiscard]] RackAnalysis analyze_rack(const topo::TpuCluster& cluster,
                                        const topo::SliceAllocator& alloc,
                                        topo::RackId rack, RingSelection selection);

/// BFS search for a congestion-free electrical path from `from` to `to`,
/// confined to the rack of `from` (a repair path may not leave the failed
/// slice's rack; `to` in another rack is unreachable by construction):
/// intermediate chips must be free (not allocated, not failed) because
/// forwarding consumes an allocated chip's fully-subscribed links, and no
/// directed link may already be loaded in `busy`.  Endpoints are exempt
/// from the allocation check (the source is a ring member by design).
/// Returns the hop-by-hop chip sequence including both endpoints, or
/// nullopt when no such path exists — the "impossible without congestion"
/// outcome of Figure 6a.
[[nodiscard]] std::optional<std::vector<topo::TpuId>> find_uncongested_path(
    const topo::TpuCluster& cluster, const topo::SliceAllocator& alloc,
    const LinkLoad& busy, topo::TpuId from, topo::TpuId to);

/// Directed links along a chip path (consecutive chips must be torus
/// neighbors within one rack).
[[nodiscard]] std::vector<topo::DirectedLink> links_on_chip_path(
    const topo::TpuCluster& cluster, const std::vector<topo::TpuId>& path);

}  // namespace lp::coll
