// Logarithmic and all-to-all schedules over explicit member lists.
//
// build_elastic_ring_schedule (schedule.hpp) established the idiom the
// runtime layer depends on: a builder that takes *whatever chips survive*,
// in order, and lowers a collective onto dedicated optical circuits at a
// caller-supplied rate — so the same builder serves healthy slices and
// elastically shrunk post-fault rings alike.  This header extends the
// family with the log-depth algorithms the autotuner chooses between:
//
//   * binomial tree broadcast / reduce / all-reduce — K = ceil(log2 m)
//     phases of full-buffer transfers.  Every phase connects a fresh pair
//     set, so every phase pays the reconfiguration delay.
//   * recursive halving (ReduceScatter) / doubling (AllGather) and their
//     composition, the halving-doubling AllReduce.  Non-power-of-two
//     member counts use the standard fold: the `m - 2^K` extra members
//     collapse their buffers onto the leading core members in one
//     pre-phase (and fan back out in a post-phase for AG/AR), which keeps
//     the power-of-two core exact on any survivor set — degenerate 2- and
//     3-member groups included.
//   * ring ReduceScatter / AllGather — the halves of the elastic ring
//     AllReduce, exposed so the tuner can race them against halving.
//   * all-to-all as rotation (fresh pairing per round, r per phase) or as
//     fixed-ring store-and-forward (one reconfiguration, inflated bytes).
//   * point-to-point transfer, direct or striped across `ways` parallel
//     circuits (the KV-migration shapes).
//
// Every builder yields an empty schedule for fewer than two members, and
// every phase's transfers have uniform byte counts, so a schedule's
// simulated time is exactly sum over phases of (pre_delay + bytes/rate) —
// the property the autotuner's closed-form predictions rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "collective/schedule.hpp"
#include "topo/cluster.hpp"
#include "util/units.hpp"

namespace lp::coll {

/// Binomial tree broadcast from members[0]: phase k doubles the set of
/// informed members (ranks [0, 2^k) send the full buffer to ranks
/// [2^k, 2^(k+1))).  ceil(log2 m) phases, each paying `reconfig_delay`.
[[nodiscard]] Schedule build_tree_broadcast_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay);

/// Mirror of the broadcast tree: phase order and arrows reversed, reducing
/// the full buffer onto members[0].
[[nodiscard]] Schedule build_tree_reduce_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay);

/// Reduce-to-root followed by broadcast: 2 * ceil(log2 m) phases.
[[nodiscard]] Schedule build_tree_all_reduce_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay);

/// Recursive halving ReduceScatter.  With m = 2^K + rem: one fold
/// pre-phase when rem > 0 (extras send the full buffer onto the leading
/// core members), then K pairwise-exchange phases of n/2, n/4, ... n/2^K
/// bytes.  Every phase pays `reconfig_delay`.
[[nodiscard]] Schedule build_halving_reduce_scatter_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay);

/// Recursive doubling AllGather: the halving phases mirrored (n/2^K first,
/// n/2 last), plus an unfold post-phase when rem > 0.
[[nodiscard]] Schedule build_doubling_all_gather_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay);

/// Halving-doubling AllReduce: fold, halving, doubling, unfold.
[[nodiscard]] Schedule build_halving_doubling_all_reduce_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay);

/// Ring ReduceScatter: m-1 phases of n/m bytes around the member ring,
/// reconfiguration on the first phase only (the ring circuits persist).
[[nodiscard]] Schedule build_ring_reduce_scatter_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay);

/// Ring AllGather: identical traffic pattern to the ReduceScatter half.
[[nodiscard]] Schedule build_ring_all_gather_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay);

/// Pipelined chain broadcast from members[0]: the buffer splits into
/// `chunks` pieces streamed down the member chain; (m-1) + (chunks-1)
/// phases of n/chunks bytes, reconfiguration on the first phase only.
[[nodiscard]] Schedule build_pipeline_broadcast_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, std::uint32_t chunks,
    Bandwidth rate, Duration reconfig_delay);

/// Rotation all-to-all: m-1 rounds, round k pairing i -> (i+k) mod m with
/// n/(m-1) bytes (n = total bytes each member sends).  Fresh pairing every
/// round, so every phase pays `reconfig_delay`.
[[nodiscard]] Schedule build_rotation_all_to_all_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay);

/// Fixed-ring store-and-forward all-to-all: every member forwards along
/// its standing i -> i+1 circuit for m-1 phases, carrying the uniform
/// per-link load n*m / (2*(m-1)) per phase (total byte-hops n*m^2/2 spread
/// over m links and m-1 phases).  One reconfiguration, inflated bytes —
/// the opposite trade to rotation, which is what gives the tuner a real
/// crossover.
[[nodiscard]] Schedule build_ring_all_to_all_schedule(
    const std::vector<topo::TpuId>& members, DataSize n, Bandwidth rate,
    Duration reconfig_delay);

/// Point-to-point bulk transfer on one dedicated circuit.
[[nodiscard]] Schedule build_direct_transfer_schedule(topo::TpuId src,
                                                      topo::TpuId dst, DataSize n,
                                                      Bandwidth rate,
                                                      Duration reconfig_delay);

/// The same transfer striped across `ways` parallel circuits of n/ways
/// bytes each (set up together: one reconfiguration, `ways` posted sends).
[[nodiscard]] Schedule build_striped_transfer_schedule(topo::TpuId src,
                                                       topo::TpuId dst, DataSize n,
                                                       std::uint32_t ways,
                                                       Bandwidth rate,
                                                       Duration reconfig_delay);

}  // namespace lp::coll
