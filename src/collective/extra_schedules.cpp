#include "collective/extra_schedules.hpp"

#include <algorithm>

namespace lp::coll {

Schedule build_all_gather_schedule(const topo::TpuCluster& cluster,
                                   const topo::Slice& slice, DataSize n,
                                   Interconnect interconnect, const CostParams& params,
                                   RedirectStrategy strategy) {
  // The AllGather of the bucket algorithm runs the stages in reverse with
  // identical per-step volumes; reversing the ReduceScatter schedule's
  // phase order produces exactly that (pre-delays move with their stage
  // boundary, preserving one reconfiguration per stage).
  Schedule rs =
      build_reduce_scatter_schedule(cluster, slice, n, interconnect, params, strategy);
  std::reverse(rs.phases.begin(), rs.phases.end());
  // After reversal the reconfig pre-delays sit on the *last* phase of each
  // stage; shift each to the first phase of its run.
  for (std::size_t i = 0; i < rs.phases.size(); ++i) {
    if (rs.phases[i].pre_delay > Duration::zero() && i > 0) {
      // Find the start of this stage run: walk back while phases have the
      // same transfer shape (same per-transfer byte count).
      std::size_t start = i;
      const double bytes = rs.phases[i].transfers.empty()
                               ? 0.0
                               : rs.phases[i].transfers[0].bytes.to_bytes();
      while (start > 0 && !rs.phases[start - 1].transfers.empty() &&
             rs.phases[start - 1].transfers[0].bytes.to_bytes() == bytes &&
             rs.phases[start - 1].pre_delay == Duration::zero()) {
        --start;
      }
      std::swap(rs.phases[i].pre_delay, rs.phases[start].pre_delay);
    }
  }
  return rs;
}

Schedule build_all_reduce_schedule(const topo::TpuCluster& cluster,
                                   const topo::Slice& slice, DataSize n,
                                   Interconnect interconnect, const CostParams& params,
                                   RedirectStrategy strategy) {
  Schedule rs =
      build_reduce_scatter_schedule(cluster, slice, n, interconnect, params, strategy);
  Schedule ag =
      build_all_gather_schedule(cluster, slice, n, interconnect, params, strategy);
  if (interconnect == Interconnect::kOptical &&
      strategy == RedirectStrategy::kStaticSplit) {
    // Circuits stay up between the two halves: drop the gather's reconfigs.
    for (auto& phase : ag.phases) phase.pre_delay = Duration::zero();
  }
  for (auto& phase : ag.phases) rs.phases.push_back(std::move(phase));
  return rs;
}

Schedule build_broadcast_schedule(const topo::TpuCluster& cluster,
                                  const topo::Slice& slice, DataSize n, unsigned chunks,
                                  Interconnect interconnect, const CostParams& params) {
  Schedule schedule;
  if (chunks == 0) return schedule;
  // One ring over every chip: serpentine across all active dims.
  auto dims = active_dims(slice);
  if (dims.empty()) return schedule;
  const auto rings = snake_rings(cluster, slice, dims);
  if (rings.size() != 1) return schedule;  // serpentine over all dims is one ring
  const RingRealization& ring = rings[0];
  const std::size_t p = ring.members.size();
  const DataSize chunk = n / static_cast<double>(chunks);
  const Bandwidth opt_bw = params.chip_bandwidth;  // single ring: full redirect

  // Edge routes for electrical transfers.
  std::vector<std::vector<topo::DirectedLink>> routes(p);
  {
    std::size_t li = 0;
    for (std::size_t e = 0; e < p; ++e) {
      const topo::TpuId target = ring.members[(e + 1) % p];
      topo::TpuId at = ring.members[e];
      while (at != target && li < ring.links.size()) {
        routes[e].push_back(ring.links[li]);
        at = cluster.link_target(ring.links[li]);
        ++li;
      }
    }
  }

  const std::size_t total_phases = (p - 1) + (chunks - 1);
  for (std::size_t t = 0; t < total_phases; ++t) {
    Phase phase;
    if (t == 0 && interconnect == Interconnect::kOptical)
      phase.pre_delay = params.reconfig;
    // Edge j (member j -> j+1) forwards chunk (t - j) if it exists.  The
    // last edge (back to the root) carries nothing.
    for (std::size_t j = 0; j + 1 < p && j <= t; ++j) {
      const std::size_t chunk_index = t - j;
      if (chunk_index >= chunks) continue;
      Transfer tr;
      tr.src = ring.members[j];
      tr.dst = ring.members[j + 1];
      tr.bytes = chunk;
      if (interconnect == Interconnect::kOptical) {
        tr.dedicated_rate = opt_bw;
      } else {
        tr.route = routes[j];
      }
      phase.transfers.push_back(std::move(tr));
    }
    if (!phase.transfers.empty()) schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

}  // namespace lp::coll
