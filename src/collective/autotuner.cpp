#include "collective/autotuner.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "lightpath/types.hpp"

namespace lp::coll {

namespace {

std::uint32_t floor_log2(std::size_t m) {
  std::uint32_t k = 0;
  while ((std::size_t{1} << (k + 1)) <= m) ++k;
  return k;
}

std::uint32_t ceil_log2(std::size_t m) {
  const std::uint32_t k = floor_log2(m);
  return (std::size_t{1} << k) == m ? k : k + 1;
}

}  // namespace

Autotuner::Autotuner(TunerParams params) : params_{params} {}

std::vector<Algorithm> Autotuner::candidates(CollOp op) {
  switch (op) {
    case CollOp::kReduceScatter:
    case CollOp::kAllGather:
      return {Algorithm::kRing, Algorithm::kHalvingDoubling};
    case CollOp::kAllReduce:
      return {Algorithm::kRing, Algorithm::kTree, Algorithm::kHalvingDoubling};
    case CollOp::kBroadcast:
      return {Algorithm::kTree, Algorithm::kPipeline};
    case CollOp::kAllToAll:
      return {Algorithm::kRing, Algorithm::kRotation};
    case CollOp::kTransfer:
      return {Algorithm::kDirect, Algorithm::kStriped};
  }
  return {};
}

Duration Autotuner::predict(CollOp op, Algorithm algo, std::size_t m, DataSize n,
                            Bandwidth rate, Duration reconfig) const {
  if (op == CollOp::kTransfer) {
    // Point-to-point: the group is the {src, dst} pair.
    if (algo == Algorithm::kDirect) {
      return params_.alpha + reconfig + transfer_time(n, rate);
    }
    if (algo == Algorithm::kStriped) {
      const double w = std::max<std::uint32_t>(params_.stripe_ways, 1);
      return params_.alpha * w + reconfig + transfer_time(n / w, rate);
    }
    return Duration::infinite();
  }
  if (m < 2) return Duration::zero();  // empty schedule: nothing to exchange

  const double steps = static_cast<double>(m - 1);
  const Duration alpha = params_.alpha;
  // Power-of-two decomposition for the halving/doubling family.
  const std::uint32_t depth = floor_log2(m);
  const std::size_t pow2 = std::size_t{1} << depth;
  const bool rem = pow2 < m;
  Duration halving_beta = Duration::zero();
  for (std::uint32_t k = 1; k <= depth; ++k) {
    halving_beta +=
        transfer_time(n / static_cast<double>(std::size_t{1} << k), rate);
  }
  const double halving_phases = static_cast<double>(depth) + (rem ? 1.0 : 0.0);
  const Duration fold_beta = rem ? transfer_time(n, rate) : Duration::zero();
  const double tree_depth = static_cast<double>(ceil_log2(m));

  switch (op) {
    case CollOp::kReduceScatter:
    case CollOp::kAllGather:
      if (algo == Algorithm::kRing) {
        return alpha * steps + reconfig +
               transfer_time(n / static_cast<double>(m), rate) * steps;
      }
      if (algo == Algorithm::kHalvingDoubling) {
        return (alpha + reconfig) * halving_phases + fold_beta + halving_beta;
      }
      break;
    case CollOp::kAllReduce:
      if (algo == Algorithm::kRing) {
        return alpha * (2.0 * steps) + reconfig +
               transfer_time(n / static_cast<double>(m), rate) * (2.0 * steps);
      }
      if (algo == Algorithm::kTree) {
        return (alpha + reconfig + transfer_time(n, rate)) * (2.0 * tree_depth);
      }
      if (algo == Algorithm::kHalvingDoubling) {
        return (alpha + reconfig) * (2.0 * halving_phases) + fold_beta * 2.0 +
               halving_beta * 2.0;
      }
      break;
    case CollOp::kBroadcast:
      if (algo == Algorithm::kTree) {
        return (alpha + reconfig + transfer_time(n, rate)) * tree_depth;
      }
      if (algo == Algorithm::kPipeline) {
        const double c = std::max<std::uint32_t>(params_.broadcast_chunks, 1);
        const double phases = steps + (c - 1.0);
        return alpha * phases + reconfig + transfer_time(n / c, rate) * phases;
      }
      break;
    case CollOp::kAllToAll:
      if (algo == Algorithm::kRotation) {
        return (alpha + reconfig + transfer_time(n / steps, rate)) * steps;
      }
      if (algo == Algorithm::kRing) {
        return alpha * steps + reconfig +
               transfer_time(n * (static_cast<double>(m) / (2.0 * steps)), rate) *
                   steps;
      }
      break;
    case CollOp::kTransfer:
      break;  // handled above
  }
  return Duration::infinite();
}

Decision Autotuner::evaluate(CollOp op, std::size_t m, DataSize n,
                             Bandwidth rate, Duration reconfig) const {
  Decision best;
  bool have = false;
  for (const Algorithm algo : candidates(op)) {
    const Duration cost = predict(op, algo, m, n, rate, reconfig);
    // Documented total order: cost, then fixed algorithm rank, then name.
    const bool wins =
        !have || cost < best.predicted ||
        (cost == best.predicted &&
         (algorithm_rank(algo) < algorithm_rank(best.algo) ||
          (algorithm_rank(algo) == algorithm_rank(best.algo) &&
           std::strcmp(to_string(algo), to_string(best.algo)) < 0)));
    if (wins) {
      best.algo = algo;
      best.predicted = cost;
      have = true;
    }
  }
  return best;
}

std::uint32_t Autotuner::size_bucket(DataSize n) {
  const double bytes = std::max(n.to_bytes(), 1.0);
  return static_cast<std::uint32_t>(4.0 * std::log2(bytes));
}

DataSize Autotuner::bucket_representative(std::uint32_t bucket) {
  return DataSize::bytes(std::exp2((static_cast<double>(bucket) + 0.5) / 4.0));
}

std::uint64_t Autotuner::topology_fingerprint(
    const std::vector<topo::TpuId>& members, Bandwidth rate, Duration reconfig) {
  std::uint64_t h = members.size();
  for (const topo::TpuId id : members) {
    h = fabric::hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)));
  }
  h = fabric::hash_mix(h, std::bit_cast<std::uint64_t>(rate.to_bps()));
  h = fabric::hash_mix(h, std::bit_cast<std::uint64_t>(reconfig.to_seconds()));
  return h;
}

Decision Autotuner::pick(CollOp op, DataSize n,
                         const std::vector<topo::TpuId>& members, Bandwidth rate,
                         Duration reconfig, std::uint64_t fabric_epoch) {
  return pick_keyed(op, n, members.size(),
                    topology_fingerprint(members, rate, reconfig), rate, reconfig,
                    fabric_epoch);
}

Decision Autotuner::pick_keyed(CollOp op, DataSize n, std::size_t m,
                               std::uint64_t topology_fingerprint, Bandwidth rate,
                               Duration reconfig, std::uint64_t fabric_epoch) {
  const std::uint32_t bucket = size_bucket(n);
  std::uint64_t key = 0x2545f4914f6cdd1dULL;
  key = fabric::hash_mix(key, static_cast<std::uint64_t>(op));
  key = fabric::hash_mix(key, bucket);
  key = fabric::hash_mix(key, topology_fingerprint);
  key = fabric::hash_mix(key, fabric_epoch);

  std::lock_guard<std::mutex> lock{mu_};
  if (const auto it = cache_.find(key); it != cache_.end()) {
    const Entry& e = it->second;
    if (e.op == op && e.bucket == bucket &&
        e.fingerprint == topology_fingerprint && e.epoch == fabric_epoch) {
      ++hits_;
      return Decision{e.algo, e.predicted, /*cache_hit=*/true};
    }
  }
  ++misses_;
  // Evaluate at the bucket's canonical size, not the requested one: the
  // decision must be a pure function of the cache key.
  const Decision d =
      evaluate(op, m, bucket_representative(bucket), rate, reconfig);
  if (cache_.size() >= params_.cache_capacity) cache_.clear();
  cache_[key] = Entry{op, bucket, topology_fingerprint, fabric_epoch, d.algo,
                      d.predicted};
  return d;
}

Schedule Autotuner::build(CollOp op, Algorithm algo,
                          const std::vector<topo::TpuId>& members, DataSize n,
                          Bandwidth rate, Duration reconfig) const {
  if (members.size() < 2) return Schedule{};
  switch (op) {
    case CollOp::kReduceScatter:
      if (algo == Algorithm::kRing)
        return build_ring_reduce_scatter_schedule(members, n, rate, reconfig);
      if (algo == Algorithm::kHalvingDoubling)
        return build_halving_reduce_scatter_schedule(members, n, rate, reconfig);
      break;
    case CollOp::kAllGather:
      if (algo == Algorithm::kRing)
        return build_ring_all_gather_schedule(members, n, rate, reconfig);
      if (algo == Algorithm::kHalvingDoubling)
        return build_doubling_all_gather_schedule(members, n, rate, reconfig);
      break;
    case CollOp::kAllReduce:
      if (algo == Algorithm::kRing)
        return build_elastic_ring_schedule(members, n, rate, reconfig);
      if (algo == Algorithm::kTree)
        return build_tree_all_reduce_schedule(members, n, rate, reconfig);
      if (algo == Algorithm::kHalvingDoubling)
        return build_halving_doubling_all_reduce_schedule(members, n, rate,
                                                          reconfig);
      break;
    case CollOp::kBroadcast:
      if (algo == Algorithm::kTree)
        return build_tree_broadcast_schedule(members, n, rate, reconfig);
      if (algo == Algorithm::kPipeline)
        return build_pipeline_broadcast_schedule(members, n,
                                                 params_.broadcast_chunks, rate,
                                                 reconfig);
      break;
    case CollOp::kAllToAll:
      if (algo == Algorithm::kRotation)
        return build_rotation_all_to_all_schedule(members, n, rate, reconfig);
      if (algo == Algorithm::kRing)
        return build_ring_all_to_all_schedule(members, n, rate, reconfig);
      break;
    case CollOp::kTransfer:
      if (algo == Algorithm::kDirect)
        return build_direct_transfer_schedule(members[0], members[1], n, rate,
                                              reconfig);
      if (algo == Algorithm::kStriped)
        return build_striped_transfer_schedule(members[0], members[1], n,
                                               params_.stripe_ways, rate,
                                               reconfig);
      break;
  }
  return Schedule{};
}

std::uint64_t Autotuner::hits() const {
  std::lock_guard<std::mutex> lock{mu_};
  return hits_;
}

std::uint64_t Autotuner::misses() const {
  std::lock_guard<std::mutex> lock{mu_};
  return misses_;
}

void Autotuner::clear() {
  std::lock_guard<std::mutex> lock{mu_};
  cache_.clear();
  hits_ = 0;
  misses_ = 0;
}

double alpha_units(const Schedule& schedule) {
  double units = 0.0;
  std::vector<topo::TpuId> srcs;
  for (const Phase& phase : schedule.phases) {
    if (phase.transfers.empty()) continue;
    srcs.clear();
    for (const Transfer& t : phase.transfers) srcs.push_back(t.src);
    std::sort(srcs.begin(), srcs.end());
    std::size_t best = 1, run = 1;
    for (std::size_t i = 1; i < srcs.size(); ++i) {
      run = srcs[i] == srcs[i - 1] ? run + 1 : 1;
      best = std::max(best, run);
    }
    units += static_cast<double>(best);
  }
  return units;
}

Duration measured_cost(Duration simulated_total, const Schedule& schedule,
                       Duration alpha) {
  return simulated_total + alpha * alpha_units(schedule);
}

}  // namespace lp::coll
