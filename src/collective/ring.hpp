// Ring construction on the electrical torus, at directed-link granularity.
//
// The multi-dimensional bucket algorithms run direction-uniform rings: each
// participant sends to its next neighbor in the +d direction and the cycle
// closes over the torus wraparound (Sack & Gropp [39/40]; §4.1).  When a
// slice spans the rack's full extent in d the cycle's links all stay inside
// the slice.  When it does not, the closing edge must walk +d through chips
// that are not members of the ring — the forwarding that §4.2 calls out
// ("Traffic not destined for a TPU must be forwarded, consuming its
// bandwidth") and the mechanism behind both Figure 5b's shared-dimension
// congestion and Figure 6's repair congestion.
//
// Serpentine rings realize the folded "snake" stage of the cost model: a
// Hamiltonian cycle over the slice's partially-spanned sub-grid using both
// link directions, all inside the slice.
#pragma once

#include <vector>

#include "topo/cluster.hpp"
#include "topo/slice.hpp"

namespace lp::coll {

/// One realized ring: the member cycle plus every directed link its steady
/// state occupies and every non-member chip it forwards through.
struct RingRealization {
  std::vector<topo::TpuId> members;  ///< cycle order; members.size() >= 2
  std::vector<topo::DirectedLink> links;
  std::vector<topo::TpuId> transit_chips;  ///< non-members that must forward
};

/// All +d rings of the slice along dimension `d` (one per combination of
/// the other coordinates).  Returns an empty vector if the slice has unit
/// extent in `d`.
[[nodiscard]] std::vector<RingRealization> rings_in_dim(const topo::TpuCluster& cluster,
                                                        const topo::Slice& slice,
                                                        std::size_t d);

/// A serpentine Hamiltonian cycle over the slice restricted to `dims`
/// (boustrophedon order), fixing all other dimensions at `fixed`.  All
/// links stay inside the slice.
[[nodiscard]] RingRealization snake_ring(const topo::TpuCluster& cluster,
                                         const topo::Slice& slice,
                                         const std::vector<std::size_t>& dims,
                                         topo::Coord fixed);

/// All serpentine rings for the slice's snake stage over `dims` (one per
/// combination of the remaining dimensions' coordinates).
[[nodiscard]] std::vector<RingRealization> snake_rings(const topo::TpuCluster& cluster,
                                                       const topo::Slice& slice,
                                                       const std::vector<std::size_t>& dims);

}  // namespace lp::coll
