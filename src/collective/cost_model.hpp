// The alpha-beta-r cost model for collective communication (paper §4.1).
//
// Units (the audit contract pinned by cost_model_test's hand-computed
// predictions):
//
// alpha: per-step software overhead of sending a buffer.  Seconds per ring
//        step (a Duration; default 1 us).  A collective's alpha time is
//        alpha x alpha_steps, where alpha_steps counts the sequential send
//        posts on the critical path — e.g. sum over stages of
//        (ring_size - 1) for a ReduceScatter, or m - 1 rounds for an
//        all-to-all rotation.
// beta:  transmission delay, inversely proportional to the bandwidth a ring
//        step can use.  Not a stored constant: beta time = bytes-on-the-
//        critical-path x 8 / bandwidth-in-bits-per-second, i.e. seconds =
//        DataSize / Bandwidth via transfer_time().  `chip_bandwidth` (B,
//        default 300 GB/s of egress per chip) is the numerator every
//        stage's share is carved from.
// r:     optical reconfiguration latency charged before each optically
//        redirected ring stage.  Seconds per fabric reprogram (a Duration;
//        3.7 us on LIGHTPATH — the MZI thermal settling constant from §3,
//        `CostParams::reconfig`).  Schedules that keep their circuits pay
//        r once; schedules that re-pair every phase pay r per phase.
//
// A collective on a slice is lowered to a *plan*: an ordered list of ring
// stages (Table 2 shows Slice-3's two stages).  The plan structure is the
// same for electrical and optical interconnects — what differs is the
// bandwidth each stage gets:
//
//   electrical           B / D_total    (static split across torus dims)
//   optical static-split B / n_stages   (idle dims redirected, split over
//                                        the plan's stages; Tables 1-2)
//   optical full         B              (everything redirected to the one
//                                        active stage; ablation variant)
//
// Plan construction encodes the paper's congestion rule: on the electrical
// torus a dimension is ring-usable only if the slice spans the rack's full
// extent in it (direction-uniform bucket rings need the wraparound);
// partially-spanned dimensions are folded with the first usable dimension
// into a serpentine (Hamiltonian) ring, which is why Slice-1 (4x2x1) runs
// one 8-chip ring (7 steps) at one dimension's bandwidth — Table 1.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/slice.hpp"
#include "topo/torus.hpp"
#include "util/units.hpp"

namespace lp::coll {

enum class Interconnect : std::uint8_t { kElectrical, kOptical };

enum class RedirectStrategy : std::uint8_t {
  kStaticSplit,   ///< idle-dim bandwidth split evenly across plan stages (paper)
  kPerStageFull,  ///< full chip bandwidth redirected to each stage in turn
};

struct CostParams {
  /// Software overhead per ring step.
  Duration alpha{Duration::micros(1.0)};
  /// Optical reconfiguration latency r (LIGHTPATH: 3.7 us).
  Duration reconfig{Duration::micros(3.7)};
  /// Total egress bandwidth per chip (B).
  Bandwidth chip_bandwidth{Bandwidth::gBps(300.0)};
  /// Physical torus dimensionality (D); electrical splits B over D dims.
  std::uint32_t total_dims{topo::kDims};
};

/// One ring stage of a lowered collective plan.
struct RingStage {
  /// Number of chips on each ring of this stage.
  std::int32_t ring_size{0};
  /// Fraction of the original buffer each ring of this stage operates on
  /// (1 for the first ReduceScatter stage, then divided by each previous
  /// stage's ring size).
  double buffer_fraction{1.0};
  /// Physical dimension the stage's rings run along; kSnakeDim for the
  /// folded serpentine stage.
  std::int32_t dim{0};
  bool snake{false};
};

inline constexpr std::int32_t kSnakeDim = -1;

/// Lowered structure of a collective on a slice (interconnect-independent).
struct CollectivePlan {
  std::vector<RingStage> stages;
  std::int32_t chip_count{0};

  /// Sum over stages of (ring_size - 1): the alpha step count of one
  /// ReduceScatter (or one AllGather).
  [[nodiscard]] std::int32_t alpha_steps() const;
};

/// Builds the ring-stage plan for a slice in a rack, applying the
/// wraparound-usability rule described above.
[[nodiscard]] CollectivePlan build_plan(const topo::Slice& slice,
                                        const topo::Shape& rack_shape);

/// Dimensions of the slice that can host congestion-free electrical rings
/// (extent equals the rack extent).
[[nodiscard]] std::vector<std::size_t> usable_dims(const topo::Slice& slice,
                                                   const topo::Shape& rack_shape);

/// Dimensions where the slice actually needs communication (extent > 1).
[[nodiscard]] std::vector<std::size_t> active_dims(const topo::Slice& slice);

/// Cost of one collective under the model.
struct CollectiveCost {
  std::int32_t alpha_steps{0};
  std::int32_t reconfigs{0};
  Duration beta_time{Duration::zero()};

  [[nodiscard]] Duration alpha_time(const CostParams& p) const {
    return p.alpha * static_cast<double>(alpha_steps);
  }
  [[nodiscard]] Duration reconfig_time(const CostParams& p) const {
    return p.reconfig * static_cast<double>(reconfigs);
  }
  [[nodiscard]] Duration total(const CostParams& p) const {
    return alpha_time(p) + reconfig_time(p) + beta_time;
  }
};

/// Cost of a ReduceScatter of buffer `n` over `plan` on the given
/// interconnect.  (AllGather has the identical cost; AllReduce is the sum.)
[[nodiscard]] CollectiveCost reduce_scatter_cost(const CollectivePlan& plan, DataSize n,
                                                 Interconnect interconnect,
                                                 const CostParams& params,
                                                 RedirectStrategy strategy =
                                                     RedirectStrategy::kStaticSplit);

[[nodiscard]] CollectiveCost all_gather_cost(const CollectivePlan& plan, DataSize n,
                                             Interconnect interconnect,
                                             const CostParams& params,
                                             RedirectStrategy strategy =
                                                 RedirectStrategy::kStaticSplit);

[[nodiscard]] CollectiveCost all_reduce_cost(const CollectivePlan& plan, DataSize n,
                                             Interconnect interconnect,
                                             const CostParams& params,
                                             RedirectStrategy strategy =
                                                 RedirectStrategy::kStaticSplit);

/// Theoretical beta lower bound of ReduceScatter over p chips with full
/// bandwidth B: (p-1)/p * N/B.
[[nodiscard]] Duration optimal_reduce_scatter_beta(DataSize n, std::int32_t chips,
                                                   Bandwidth total);

/// Per-chip bandwidth utilization of the plan on the given interconnect:
/// the fraction of chip egress bandwidth the collective keeps busy during
/// its beta phase (the quantity plotted in Figure 5c).
[[nodiscard]] double bandwidth_utilization(const CollectivePlan& plan,
                                           Interconnect interconnect,
                                           const CostParams& params,
                                           RedirectStrategy strategy =
                                               RedirectStrategy::kStaticSplit);

/// Cost of the simultaneous multi-order bucket variant ([41]-style) on the
/// electrical torus: the buffer is split across the plan's stages, each
/// shard cycling the stage order so every usable dimension stays busy.
/// Used by the ablation bench; the paper argues it cannot help slices with
/// a single usable dimension.
[[nodiscard]] CollectiveCost simultaneous_reduce_scatter_cost(const CollectivePlan& plan,
                                                              DataSize n,
                                                              const CostParams& params);

}  // namespace lp::coll
