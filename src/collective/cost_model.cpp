#include "collective/cost_model.hpp"

#include <algorithm>
#include <cassert>

namespace lp::coll {

std::int32_t CollectivePlan::alpha_steps() const {
  std::int32_t steps = 0;
  for (const auto& s : stages) steps += s.ring_size - 1;
  return steps;
}

std::vector<std::size_t> usable_dims(const topo::Slice& slice,
                                     const topo::Shape& rack_shape) {
  std::vector<std::size_t> dims;
  for (std::size_t d = 0; d < topo::kDims; ++d) {
    if (slice.shape[d] > 1 && slice.spans_dimension(d, rack_shape)) dims.push_back(d);
  }
  return dims;
}

std::vector<std::size_t> active_dims(const topo::Slice& slice) {
  std::vector<std::size_t> dims;
  for (std::size_t d = 0; d < topo::kDims; ++d) {
    if (slice.shape[d] > 1) dims.push_back(d);
  }
  return dims;
}

CollectivePlan build_plan(const topo::Slice& slice, const topo::Shape& rack_shape) {
  CollectivePlan plan;
  plan.chip_count = slice.chip_count();

  const auto usable = usable_dims(slice, rack_shape);
  const auto active = active_dims(slice);

  // Partially-spanned dims cannot run wraparound rings; fold them (plus the
  // first usable dim, if any) into one serpentine ring.
  std::int32_t snake_size = 1;
  std::vector<std::size_t> proper;  // dims that run as normal ring stages
  for (std::size_t d : active) {
    const bool is_usable = std::find(usable.begin(), usable.end(), d) != usable.end();
    if (!is_usable) snake_size *= slice.shape[d];
  }

  if (snake_size > 1) {
    // Fold the first usable dim into the snake so the serpentine covers a
    // connected sub-grid; remaining usable dims stay proper stages.
    if (!usable.empty()) {
      snake_size *= slice.shape[usable.front()];
      proper.assign(usable.begin() + 1, usable.end());
    }
    plan.stages.push_back(RingStage{.ring_size = snake_size,
                                    .buffer_fraction = 1.0,
                                    .dim = kSnakeDim,
                                    .snake = true});
  } else {
    proper = usable;
  }

  double fraction = plan.stages.empty() ? 1.0 : 1.0 / static_cast<double>(snake_size);
  for (std::size_t d : proper) {
    plan.stages.push_back(RingStage{.ring_size = slice.shape[d],
                                    .buffer_fraction = fraction,
                                    .dim = static_cast<std::int32_t>(d),
                                    .snake = false});
    fraction /= static_cast<double>(slice.shape[d]);
  }
  return plan;
}

namespace {

Bandwidth stage_bandwidth(const CollectivePlan& plan, Interconnect interconnect,
                          const CostParams& params, RedirectStrategy strategy) {
  switch (interconnect) {
    case Interconnect::kElectrical:
      return params.chip_bandwidth / static_cast<double>(params.total_dims);
    case Interconnect::kOptical:
      if (strategy == RedirectStrategy::kPerStageFull) return params.chip_bandwidth;
      return params.chip_bandwidth /
             static_cast<double>(std::max<std::size_t>(1, plan.stages.size()));
  }
  return Bandwidth::zero();
}

}  // namespace

CollectiveCost reduce_scatter_cost(const CollectivePlan& plan, DataSize n,
                                   Interconnect interconnect, const CostParams& params,
                                   RedirectStrategy strategy) {
  CollectiveCost cost;
  cost.alpha_steps = plan.alpha_steps();
  cost.reconfigs =
      interconnect == Interconnect::kOptical ? static_cast<std::int32_t>(plan.stages.size())
                                             : 0;
  const Bandwidth bw = stage_bandwidth(plan, interconnect, params, strategy);
  for (const auto& s : plan.stages) {
    const double ring = static_cast<double>(s.ring_size);
    const DataSize stage_bytes = n * (s.buffer_fraction * (ring - 1.0) / ring);
    cost.beta_time += transfer_time(stage_bytes, bw);
  }
  return cost;
}

CollectiveCost all_gather_cost(const CollectivePlan& plan, DataSize n,
                               Interconnect interconnect, const CostParams& params,
                               RedirectStrategy strategy) {
  // AllGather mirrors ReduceScatter: same steps, same bytes per stage.
  return reduce_scatter_cost(plan, n, interconnect, params, strategy);
}

CollectiveCost all_reduce_cost(const CollectivePlan& plan, DataSize n,
                               Interconnect interconnect, const CostParams& params,
                               RedirectStrategy strategy) {
  const CollectiveCost rs = reduce_scatter_cost(plan, n, interconnect, params, strategy);
  const CollectiveCost ag = all_gather_cost(plan, n, interconnect, params, strategy);
  return CollectiveCost{.alpha_steps = rs.alpha_steps + ag.alpha_steps,
                        .reconfigs = rs.reconfigs + ag.reconfigs,
                        .beta_time = rs.beta_time + ag.beta_time};
}

Duration optimal_reduce_scatter_beta(DataSize n, std::int32_t chips, Bandwidth total) {
  const double p = static_cast<double>(chips);
  return transfer_time(n * ((p - 1.0) / p), total);
}

double bandwidth_utilization(const CollectivePlan& plan, Interconnect interconnect,
                             const CostParams& params, RedirectStrategy strategy) {
  (void)strategy;
  if (plan.stages.empty()) return 0.0;
  // Figure 5c's utilization counts how much of the chip's provisioned
  // egress the collective can ever exercise.  Electrically, each plan stage
  // taps exactly one dimension's static B/D share, so a slice with S stages
  // reaches S/D (Slice-1: 1/3, Slice-3: 2/3, full rack: 1).  Optically, the
  // MZI switches redirect every idle dimension's bandwidth onto the active
  // rings, so utilization is 1 regardless of slice shape.
  if (interconnect == Interconnect::kOptical) return 1.0;
  return std::min(1.0, static_cast<double>(plan.stages.size()) /
                           static_cast<double>(params.total_dims));
}

CollectiveCost simultaneous_reduce_scatter_cost(const CollectivePlan& plan, DataSize n,
                                                const CostParams& params) {
  // The buffer is split into one shard per stage; shard k executes the plan
  // stages in rotated order k, k+1, ....  At any moment each shard occupies
  // a different dimension, so per-dimension bandwidth stays B/D_total and
  // phases proceed in lockstep at the slowest shard.  With a single stage
  // this degenerates to the sequential cost — the paper's point that the
  // variant cannot help slices with one usable dimension.
  const std::size_t shards = std::max<std::size_t>(1, plan.stages.size());
  const Bandwidth bw = params.chip_bandwidth / static_cast<double>(params.total_dims);
  CollectiveCost cost;
  cost.alpha_steps = plan.alpha_steps();
  // Phase p: every shard runs its p-th (rotated) stage on its shard of the
  // buffer; the phase lasts as long as the slowest shard's stage.
  for (std::size_t phase = 0; phase < plan.stages.size(); ++phase) {
    Duration slowest = Duration::zero();
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const auto& s = plan.stages[(phase + shard) % plan.stages.size()];
      const double ring = static_cast<double>(s.ring_size);
      const DataSize bytes =
          n * (s.buffer_fraction * (ring - 1.0) / ring / static_cast<double>(shards));
      slowest = std::max(slowest, transfer_time(bytes, bw));
    }
    cost.beta_time += slowest;
  }
  return cost;
}

}  // namespace lp::coll
