#include "collective/congestion.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace lp::coll {

using topo::ChipState;
using topo::DirectedLink;
using topo::TpuCluster;
using topo::TpuId;

LinkLoad::LinkLoad(std::size_t link_count) : load_(link_count, 0) {}

void LinkLoad::add(const DirectedLink& link) { ++load_[topo::link_key(link)]; }

void LinkLoad::add_all(const std::vector<DirectedLink>& links) {
  for (const auto& l : links) add(l);
}

std::uint32_t LinkLoad::load(const DirectedLink& link) const {
  return load_[topo::link_key(link)];
}

std::uint32_t LinkLoad::max_load() const {
  return load_.empty() ? 0 : *std::max_element(load_.begin(), load_.end());
}

std::size_t LinkLoad::congested_link_count() const {
  return static_cast<std::size_t>(
      std::count_if(load_.begin(), load_.end(), [](std::uint32_t l) { return l > 1; }));
}

std::size_t LinkLoad::busy_link_count() const {
  return static_cast<std::size_t>(
      std::count_if(load_.begin(), load_.end(), [](std::uint32_t l) { return l > 0; }));
}

SliceTraffic slice_traffic(const TpuCluster& cluster, const topo::Slice& slice,
                           RingSelection selection) {
  SliceTraffic traffic;
  traffic.slice = slice.id;
  const topo::Shape& rack_shape = cluster.config().rack_shape;

  const auto usable = usable_dims(slice, rack_shape);
  const auto active = active_dims(slice);

  if (selection == RingSelection::kUsableOnly) {
    // Realize the electrical plan: snake over partially-spanned dims (plus
    // the first usable dim), proper rings over the rest.
    std::vector<std::size_t> snake_dims;
    std::vector<std::size_t> proper;
    for (std::size_t d : active) {
      if (std::find(usable.begin(), usable.end(), d) == usable.end())
        snake_dims.push_back(d);
    }
    if (!snake_dims.empty()) {
      if (!usable.empty()) {
        snake_dims.push_back(usable.front());
        proper.assign(usable.begin() + 1, usable.end());
      }
      for (auto& ring : snake_rings(cluster, slice, snake_dims))
        traffic.rings.push_back(std::move(ring));
    } else {
      proper = usable;
    }
    for (std::size_t d : proper) {
      for (auto& ring : rings_in_dim(cluster, slice, d))
        traffic.rings.push_back(std::move(ring));
    }
  } else {
    for (std::size_t d : active) {
      for (auto& ring : rings_in_dim(cluster, slice, d))
        traffic.rings.push_back(std::move(ring));
    }
  }

  for (const auto& ring : traffic.rings) {
    traffic.links.insert(traffic.links.end(), ring.links.begin(), ring.links.end());
    traffic.transit_chips.insert(traffic.transit_chips.end(), ring.transit_chips.begin(),
                                 ring.transit_chips.end());
  }
  return traffic;
}

RackAnalysis analyze_rack(const TpuCluster& cluster, const topo::SliceAllocator& alloc,
                          topo::RackId rack, RingSelection selection) {
  RackAnalysis analysis{LinkLoad{cluster.directed_link_count()}, {}, false, 0};
  for (topo::SliceId id : alloc.active_slices()) {
    const topo::Slice* s = alloc.slice(id);
    if (s == nullptr || s->rack != rack) continue;
    SliceTraffic traffic = slice_traffic(cluster, *s, selection);
    analysis.load.add_all(traffic.links);
    for (TpuId transit : traffic.transit_chips) {
      if (alloc.owner(transit).has_value()) ++analysis.foreign_transits;
    }
    analysis.per_slice.push_back(std::move(traffic));
  }
  analysis.congestion_free = analysis.load.congestion_free() &&
                             analysis.foreign_transits == 0;
  return analysis;
}

std::optional<std::vector<TpuId>> find_uncongested_path(const TpuCluster& cluster,
                                                        const topo::SliceAllocator& alloc,
                                                        const LinkLoad& busy, TpuId from,
                                                        TpuId to) {
  // BFS over chips within the rack of `from`: a repair path may not leave
  // the failed slice's rack, so expansion is confined to it (and the parent
  // table is rack-sized, not cluster-sized).
  const topo::RackId rack = cluster.rack_of(from);
  const TpuId rack_base = rack * cluster.chips_per_rack();
  const auto local = [rack_base](TpuId chip) {
    return static_cast<std::size_t>(chip - rack_base);
  };
  std::vector<std::int32_t> parent(static_cast<std::size_t>(cluster.chips_per_rack()),
                                   -2);
  std::deque<TpuId> queue;
  parent[local(from)] = -1;
  queue.push_back(from);
  while (!queue.empty()) {
    const TpuId at = queue.front();
    queue.pop_front();
    for (std::uint8_t d = 0; d < topo::kDims; ++d) {
      for (std::int8_t sign : {std::int8_t{+1}, std::int8_t{-1}}) {
        const DirectedLink link{at, d, sign};
        if (busy.load(link) > 0) continue;  // link already carries a transfer
        const TpuId next = cluster.link_target(link);
        if (cluster.rack_of(next) != rack) continue;  // stay within the rack
        if (parent[local(next)] != -2) continue;
        if (cluster.state(next) == ChipState::kFailed) continue;
        // Intermediate chips must be free; the destination may be any
        // non-failed chip (the repair target is free by construction, but
        // callers may probe arbitrary endpoints).
        if (next != to && alloc.owner(next).has_value()) continue;
        parent[local(next)] = at;
        if (next == to) {
          std::vector<TpuId> path{to};
          TpuId walk = to;
          while (parent[local(walk)] != -1) {
            walk = parent[local(walk)];
            path.push_back(walk);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        queue.push_back(next);
      }
    }
  }
  return std::nullopt;
}

std::vector<DirectedLink> links_on_chip_path(const TpuCluster& cluster,
                                             const std::vector<TpuId>& path) {
  std::vector<DirectedLink> links;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const topo::Coord a = cluster.coord_of(path[i]);
    const topo::Coord b = cluster.coord_of(path[i + 1]);
    for (std::uint8_t d = 0; d < topo::kDims; ++d) {
      if (a[d] == b[d]) continue;
      const std::int32_t e = cluster.config().rack_shape[d];
      std::int8_t sign;
      if ((a[d] + 1) % e == b[d]) {
        sign = +1;
      } else {
        sign = -1;
      }
      links.push_back(DirectedLink{path[i], d, sign});
      break;
    }
  }
  return links;
}

}  // namespace lp::coll
