// All-to-all traffic, the §5 challenge workload (Mixture-of-Experts
// inference routes tokens between arbitrary chip pairs chosen by a runtime
// gating function).
//
// The schedule is the classic p-1 round rotation: in round k, chip j sends
// its (j+k mod p) shard.  On the electrical torus each transfer follows a
// dimension-ordered route and rounds contend; on the photonic fabric each
// round programs fresh circuits (one reconfiguration per round) and runs
// contention-free.
#pragma once

#include <vector>

#include "collective/schedule.hpp"
#include "topo/cluster.hpp"
#include "topo/slice.hpp"
#include "util/rng.hpp"

namespace lp::coll {

/// Per-pair byte demands (row = sender index within `chips`).
struct DemandMatrix {
  std::size_t size{0};
  std::vector<DataSize> bytes;  ///< size x size, row-major; diagonal ignored

  [[nodiscard]] DataSize at(std::size_t src, std::size_t dst) const {
    return bytes[src * size + dst];
  }
  void set(std::size_t src, std::size_t dst, DataSize b) { bytes[src * size + dst] = b; }
};

/// Uniform all-to-all: every pair exchanges n / (p-1).
[[nodiscard]] DemandMatrix uniform_all_to_all(std::size_t chips, DataSize n);

/// MoE-style gating demand: each of `tokens` tokens on every chip is routed
/// to `experts_per_token` random expert chips; bytes = tokens * token_bytes
/// aggregated per destination.  Skewed and sparse, unlike the uniform case.
[[nodiscard]] DemandMatrix moe_gating_demand(std::size_t chips, std::size_t tokens,
                                             std::size_t experts_per_token,
                                             DataSize token_bytes, Rng& rng);

/// Dimension-ordered (X then Y then Z, signed shortest way) route between
/// two chips of one rack.
[[nodiscard]] std::vector<topo::DirectedLink> dimension_order_route(
    const topo::TpuCluster& cluster, topo::TpuId from, topo::TpuId to);

/// Builds the rotation schedule over the slice's chips for the demand
/// matrix.  Electrical transfers carry dimension-ordered routes; optical
/// rounds are contention-free at `circuit_rate` with a reconfiguration
/// pre-delay per round.
[[nodiscard]] Schedule build_all_to_all_schedule(const topo::TpuCluster& cluster,
                                                 const topo::Slice& slice,
                                                 const DemandMatrix& demand,
                                                 Interconnect interconnect,
                                                 const CostParams& params);

}  // namespace lp::coll
