// Execution timeline tracing.
//
// Optional observer for the flow simulator: records each phase and each
// flow's (start, completion, rate) so benches and examples can export a
// machine-readable timeline (CSV) of a collective's execution — the raw
// data behind every figure this repository regenerates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace lp::sim {

struct TraceEvent {
  std::uint32_t phase{0};
  std::string label;            ///< e.g. "reconfig" or "flow src->dst"
  Duration start{Duration::zero()};
  Duration end{Duration::zero()};
  Bandwidth rate{Bandwidth::zero()};  ///< initial rate for flows, 0 otherwise
};

class TimelineTrace {
 public:
  void add(TraceEvent event);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] Duration span() const;

  /// CSV with header: phase,label,start_us,end_us,rate_gbps
  [[nodiscard]] std::string to_csv() const;

  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace lp::sim
