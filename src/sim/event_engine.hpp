// High-throughput discrete-event engine: a hierarchical calendar (bucket)
// queue over slab-allocated event records with a small-buffer handler type.
//
// The original lp::sim::EventQueue (kept in event_queue.hpp as the reference
// implementation) is a std::priority_queue of std::function closures: every
// schedule heap-allocates a closure, every dispatch pays O(log n) sift-down
// plus a std::function move, and at millions of pending events the heap's
// pointer-chasing comparisons dominate.  The serving simulator needs to
// process tens of millions of events per wall-clock second, so this engine
// replaces the heap with the classic calendar-queue design (R. Brown, CACM
// 1988) tuned for that regime:
//
//   * Event records live in a chunked slab (indices, not pointers; records
//     never move until freed) and are recycled through a free list — zero
//     per-event heap traffic in steady state.
//   * Handlers are InlineHandler: a move-only callable with 32 bytes of
//     inline storage.  Every lambda the simulator schedules fits inline;
//     oversized callables fall back to one heap allocation.
//   * The bucket array adapts: it doubles when occupancy exceeds two events
//     per bucket, halves when it drops below one half, and re-derives the
//     bucket width from the observed inter-event gaps on every resize, so
//     enqueue/dequeue stay O(1) amortized for the stationary arrival
//     processes simulations produce.
//
// Observable contract (identical to EventQueue, verified by a randomized
// differential test in tests/event_engine_test.cpp):
//
//   * Events run in ascending timestamp order; equal timestamps run in
//     schedule (FIFO) order, across bucket boundaries and resizes.
//   * Callbacks may schedule freely, including at exactly now() (the new
//     event runs later in the same run(), after every event already due at
//     that instant) and in the past (the event is simply the next minimum).
//   * run_until(t) runs every event with timestamp <= t, including events
//     scheduled exactly at the deadline by other deadline events.
//   * now() is the timestamp of the event being processed (or the last one
//     processed); run_until never advances it past the last dispatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace lp::sim {

/// Move-only type-erased `void()` callable with inline storage.  Callables
/// up to kInlineBytes that are nothrow-move-constructible are stored in
/// place; anything larger lives behind a single heap allocation.  Trivially
/// copyable callables (the common case: a few captured pointers) relocate
/// by memcpy and destroy as a no-op — no indirect call on either path.
class InlineHandler {
 public:
  static constexpr std::size_t kInlineBytes = 32;

  InlineHandler() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineHandler> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineHandler(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = heap_ops<D>();
    }
  }

  InlineHandler(InlineHandler&& o) noexcept { move_from(o); }
  InlineHandler& operator=(InlineHandler&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineHandler(const InlineHandler&) = delete;
  InlineHandler& operator=(const InlineHandler&) = delete;
  ~InlineHandler() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  static constexpr std::size_t kInlineAlign = 8;

  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the stored callable into dst and destroy it in src.
    /// nullptr means the callable is trivially copyable: memcpy the buffer.
    void (*relocate)(void* dst, void* src);
    /// nullptr means trivially destructible: nothing to do.
    void (*destroy)(void*);
  };

  template <typename D>
  [[nodiscard]] static const Ops* inline_ops() {
    if constexpr (std::is_trivially_copyable_v<D>) {
      static constexpr Ops ops{
          [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
          nullptr,
          nullptr,
      };
      return &ops;
    } else {
      static constexpr Ops ops{
          [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
          [](void* dst, void* src) {
            D* s = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
          },
          [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
      };
      return &ops;
    }
  }

  template <typename D>
  [[nodiscard]] static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
        [](void* dst, void* src) {
          ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
        },
        [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
    };
    return &ops;
  }

  void move_from(InlineHandler& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(buf_, o.buf_);
      } else {
        std::memcpy(buf_, o.buf_, kInlineBytes);
      }
      o.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineBytes]{};
  const Ops* ops_{nullptr};
};

/// Calendar-queue event engine.  Drop-in API match for EventQueue.
class EventEngine {
 public:
  using Callback = InlineHandler;

  EventEngine();
  ~EventEngine();

  EventEngine(const EventEngine&) = delete;
  EventEngine& operator=(const EventEngine&) = delete;

  /// Schedule `fn` to run at absolute time `when`.
  void schedule_at(TimePoint when, Callback fn);

  /// Schedule `fn` to run `delay` after the current time.
  void schedule_in(Duration delay, Callback fn);

  /// Current simulation time (the timestamp of the event being processed,
  /// or of the last processed event).
  [[nodiscard]] TimePoint now() const { return TimePoint::at_seconds(now_s_); }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t pending() const { return size_; }

  /// Process events in timestamp order until the queue drains or
  /// `max_events` have run.  Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Process events with timestamp <= `until`.
  std::size_t run_until(TimePoint until);

  /// Introspection for tests and the microbench: current bucket-array size
  /// and bucket width (seconds).
  [[nodiscard]] std::size_t bucket_count() const { return nbuckets_; }
  [[nodiscard]] double bucket_width() const { return width_; }

 private:
  /// One pending event: a 64-byte (one cache line) slab-resident record
  /// with the handler inline and an intrusive `next` link, so a bucket is
  /// just a head index and insert/resize never allocate (the classic
  /// calendar-queue layout).  The virtual bucket is re-derived from `when`
  /// wherever it is needed — always through the same virtual_bucket()
  /// expression, so the enqueue-time and scan-time mappings agree exactly.
  struct Node {
    double when;
    std::uint64_t seq;
    std::uint32_t next;
    InlineHandler fn;
  };
  static_assert(sizeof(Node) == 64);

  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::size_t kChunkShift = 15;  ///< 32768 events = 2 MiB per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 21;

  struct Slot {
    alignas(Node) unsigned char raw[sizeof(Node)];
  };

  [[nodiscard]] Node* at(std::uint32_t idx) {
    return std::launder(reinterpret_cast<Node*>(
        chunks_[idx >> kChunkShift][idx & kChunkMask].raw));
  }

  [[nodiscard]] std::uint32_t alloc_slot();
  [[nodiscard]] std::uint64_t virtual_bucket(double when) const;
  void insert(double when, InlineHandler fn);
  /// Locates the next event in (when, seq) order.  Advances the day cursor
  /// over empty days; never removes.  On success fills the winner's slab
  /// index and its list predecessor (kNil if it is the bucket head).
  /// Returns false only when empty().
  [[nodiscard]] bool find_min(std::uint32_t* idx, std::uint32_t* prev);
  /// Full scan for the global minimum; repositions the day cursor on its
  /// day.  Called when a whole calendar year of days turned up empty (the
  /// pending events are all far in the future).
  void locate_min_day();
  /// Rebuild the bucket array with `nbuckets` buckets and a width re-derived
  /// from the pending events' inter-event gaps.
  void resize(std::size_t nbuckets);
  void maybe_grow();
  void maybe_shrink();
  /// Dispatch event `idx` (list predecessor `prev`): unlink, invoke the
  /// handler in place, then free its slot.
  void dispatch(std::uint32_t idx, std::uint32_t prev);

  /// Slab chunks and the bucket head array are 2 MiB-aligned allocations
  /// hinted MADV_HUGEPAGE on Linux: at millions of pending events the slab
  /// spans hundreds of megabytes of randomly-accessed memory, and 4 KiB
  /// pages turn every node visit into a TLB walk.
  std::vector<Slot*> chunks_;
  std::vector<std::uint32_t> free_;
  std::uint32_t slab_used_{0};

  std::uint32_t* heads_{nullptr};  ///< bucket list heads into the slab
  std::size_t nbuckets_{0};
  std::vector<std::uint32_t> scratch_;  ///< resize work list, reused
  double width_{1e-6};
  double inv_width_{1e6};  ///< 1/width_: map with a multiply, not a divide
  std::uint64_t cur_vb_{0};  ///< day cursor: the virtual bucket being drained
  std::size_t size_{0};
  std::uint64_t next_seq_{0};
  double now_s_{0.0};
};

}  // namespace lp::sim
