// Flow-level network simulation with max-min fair sharing.
//
// Executes one phase of simultaneous transfers: electrical flows compete
// for the capacity of every directed link on their route (max-min fair,
// progressive filling), optical flows run at their dedicated circuit rate.
// As flows finish, the remaining flows' rates are recomputed, so a phase's
// duration reflects congestion exactly: two transfers sharing a link each
// get half its bandwidth, which is how the paper's "multiple transfers on
// the same link" definition of congestion turns into measured slowdown.
//
// The progressive-filling solver is incremental: the flow->link incidence
// is compressed once per phase into flat CSR tables, per-link unfrozen-flow
// counters are maintained as flows freeze, and bottleneck selection scans a
// dense active-link table that compacts out drained links, so selection
// only revisits links that still carry unfrozen flows.
#pragma once

#include <cstdint>
#include <vector>

#include "collective/schedule.hpp"
#include "sim/trace.hpp"
#include "topo/cluster.hpp"
#include "util/units.hpp"

namespace lp::sim {

struct FlowResult {
  Duration completion{Duration::zero()};
  /// Rate the flow had when it started (diagnostic).  Recorded for every
  /// transfer: zero / sub-epsilon transfers complete instantly and report
  /// the rate they would have started at (dedicated rate when optical, the
  /// link capacity otherwise).
  Bandwidth initial_rate{Bandwidth::zero()};
};

struct PhaseResult {
  Duration duration{Duration::zero()};
  std::vector<FlowResult> flows;
  /// Max simultaneous flows observed on one link at phase start.
  std::uint32_t peak_link_load{0};
};

struct ScheduleResult {
  Duration total{Duration::zero()};
  Duration reconfig_time{Duration::zero()};
  std::vector<PhaseResult> phases;
  std::uint32_t peak_link_load{0};
};

class FlowSimulator {
 public:
  /// `link_capacity` applies to every directed electrical link.
  explicit FlowSimulator(Bandwidth link_capacity);

  /// Runs one phase of simultaneous transfers to completion.
  [[nodiscard]] PhaseResult run_phase(const std::vector<coll::Transfer>& transfers) const;

  /// Runs a schedule phase-by-phase (phases are barriers, matching the
  /// stepwise bucket algorithms), adding each phase's pre_delay.  When
  /// `trace` is non-null, every reconfiguration and flow is recorded on the
  /// timeline.
  [[nodiscard]] ScheduleResult run(const coll::Schedule& schedule,
                                   TimelineTrace* trace = nullptr) const;

 private:
  Bandwidth link_capacity_;
};

}  // namespace lp::sim
