#include "sim/event_queue.hpp"

#include <utility>

namespace lp::sim {

void EventQueue::schedule_at(TimePoint when, Callback fn) {
  heap_.push(Item{when, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(Duration delay, Callback fn) {
  schedule_at(now_ + delay, std::move(fn));
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (!heap_.empty() && processed < max_events) {
    // Move out before pop: top() is const-qualified so a plain copy would
    // deep-copy the std::function closure on every dispatch.  Moving from
    // the element is safe because pop() runs before anything can observe
    // the moved-from state, and it must happen before the callback runs —
    // the callback may schedule new events and reshape the heap.
    Item item = std::move(const_cast<Item&>(heap_.top()));
    heap_.pop();
    now_ = item.when;
    item.fn();
    ++processed;
  }
  return processed;
}

std::size_t EventQueue::run_until(TimePoint until) {
  std::size_t processed = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    Item item = std::move(const_cast<Item&>(heap_.top()));
    heap_.pop();
    now_ = item.when;
    item.fn();
    ++processed;
  }
  return processed;
}

}  // namespace lp::sim
