#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace lp::sim {

void TimelineTrace::add(TraceEvent event) { events_.push_back(std::move(event)); }

Duration TimelineTrace::span() const {
  Duration latest = Duration::zero();
  for (const auto& e : events_) latest = std::max(latest, e.end);
  return latest;
}

std::string TimelineTrace::to_csv() const {
  std::ostringstream out;
  out << "phase,label,start_us,end_us,rate_gbps\n";
  for (const auto& e : events_) {
    out << e.phase << ',' << e.label << ',' << e.start.to_micros() << ','
        << e.end.to_micros() << ',' << e.rate.to_gbps() << '\n';
  }
  return out.str();
}

}  // namespace lp::sim
