#include "sim/event_engine.hpp"

#include <algorithm>
#include <cstdlib>

#ifdef __linux__
#include <sys/mman.h>
#endif

namespace lp::sim {

namespace {

/// Largest double that converts to uint64 without overflow headroom issues;
/// anything at or beyond (including +inf and NaN quotients) is clamped to
/// one shared "far future" virtual bucket so ordering still falls back to
/// the exact (when, seq) comparison.
constexpr double kVbClamp = 9.0e18;
constexpr std::uint64_t kFarVb = 9'000'000'000'000'000'000ULL;

/// Strict (when, seq) order — the engine's one comparison.
constexpr bool precedes(double when_a, std::uint64_t seq_a, double when_b,
                        std::uint64_t seq_b) {
  return when_a < when_b || (when_a == when_b && seq_a < seq_b);
}

constexpr std::size_t kHugePage = std::size_t{2} << 20;

/// 2 MiB-aligned allocation, hinted for transparent hugepages on Linux.
/// The slab and bucket arrays are randomly accessed; with 4 KiB pages a
/// multi-hundred-MiB slab blows the TLB and every node visit pays a page
/// walk on top of the cache miss.
void* huge_alloc(std::size_t bytes) {
  const std::size_t rounded = (bytes + kHugePage - 1) & ~(kHugePage - 1);
  void* p = std::aligned_alloc(kHugePage, rounded);
  if (p == nullptr) throw std::bad_alloc{};
#ifdef __linux__
  (void)::madvise(p, rounded, MADV_HUGEPAGE);
#endif
  return p;
}

void huge_free(void* p) { std::free(p); }

}  // namespace

EventEngine::EventEngine() {
  nbuckets_ = kMinBuckets;
  heads_ = static_cast<std::uint32_t*>(
      huge_alloc(nbuckets_ * sizeof(std::uint32_t)));
  std::fill_n(heads_, nbuckets_, kNil);
}

EventEngine::~EventEngine() {
  // Destroy pending handlers (free-listed slots hold no live node).
  for (std::size_t b = 0; b < nbuckets_; ++b) {
    for (std::uint32_t i = heads_[b]; i != kNil;) {
      Node* n = at(i);
      const std::uint32_t next = n->next;
      n->~Node();
      i = next;
    }
  }
  huge_free(heads_);
  for (Slot* chunk : chunks_) huge_free(chunk);
}

std::uint32_t EventEngine::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  if ((slab_used_ & kChunkMask) == 0) {
    chunks_.push_back(static_cast<Slot*>(huge_alloc(kChunkSize * sizeof(Slot))));
  }
  return slab_used_++;
}

std::uint64_t EventEngine::virtual_bucket(double when) const {
  const double q = std::max(when, 0.0) * inv_width_;
  return q < kVbClamp ? static_cast<std::uint64_t>(q) : kFarVb;
}

void EventEngine::schedule_at(TimePoint when, Callback fn) {
  insert(when.to_seconds(), std::move(fn));
}

void EventEngine::schedule_in(Duration delay, Callback fn) {
  insert(now_s_ + delay.to_seconds(), std::move(fn));
}

void EventEngine::insert(double when, InlineHandler fn) {
  maybe_grow();
  const std::uint64_t vb = virtual_bucket(when);
  const std::uint32_t idx = alloc_slot();
  std::uint32_t& head = heads_[vb & (nbuckets_ - 1)];
  ::new (static_cast<void*>(chunks_[idx >> kChunkShift][idx & kChunkMask].raw))
      Node{when, next_seq_++, head, std::move(fn)};
  head = idx;
  ++size_;
  // An event due before the day cursor would be missed by the forward scan:
  // rewind to its day.  (Equal days need nothing — the scan covers the whole
  // current day every time.)
  if (vb < cur_vb_) cur_vb_ = vb;
}

bool EventEngine::find_min(std::uint32_t* idx, std::uint32_t* prev) {
  if (size_ == 0) return false;
  const std::size_t mask = nbuckets_ - 1;
  std::size_t scanned = 0;
  // Bound the empty-day scan: after a calendar year (or 4096 days, whichever
  // is smaller) with no event due, every pending event is far away — find it
  // directly instead of walking day by day.
  const std::size_t scan_limit = std::min(nbuckets_, std::size_t{4096});
  while (true) {
#if defined(__GNUC__) || defined(__clang__)
    // The next day's head node is the likely next dispatch; fetching it now
    // overlaps its (random-address) miss with this day's scan + handler.
    if (const std::uint32_t h = heads_[(cur_vb_ + 1) & mask]; h != kNil) {
      __builtin_prefetch(at(h));
    }
#endif
    bool found = false;
    std::uint32_t best = kNil;
    std::uint32_t best_prev = kNil;
    double best_when = 0.0;
    std::uint64_t best_seq = 0;
    std::uint32_t p = kNil;
    for (std::uint32_t i = heads_[cur_vb_ & mask]; i != kNil;) {
      const Node* n = at(i);
      // Entries of a later calendar year share the bucket; skip them.
      if (virtual_bucket(n->when) == cur_vb_ &&
          (!found || precedes(n->when, n->seq, best_when, best_seq))) {
        found = true;
        best = i;
        best_prev = p;
        best_when = n->when;
        best_seq = n->seq;
      }
      p = i;
      i = n->next;
    }
    if (found) {
      *idx = best;
      *prev = best_prev;
      return true;
    }
    ++cur_vb_;
    if (++scanned >= scan_limit) {
      locate_min_day();
      scanned = 0;
    }
  }
}

void EventEngine::locate_min_day() {
  const Node* best = nullptr;
  for (std::size_t b = 0; b < nbuckets_; ++b) {
    for (std::uint32_t i = heads_[b]; i != kNil;) {
      const Node* n = at(i);
      if (best == nullptr || precedes(n->when, n->seq, best->when, best->seq)) {
        best = n;
      }
      i = n->next;
    }
  }
  if (best != nullptr) cur_vb_ = virtual_bucket(best->when);
}

void EventEngine::resize(std::size_t nbuckets) {
  nbuckets = std::clamp(nbuckets, kMinBuckets, kMaxBuckets);
  // Collect every pending node index (scratch_ is reused across resizes).
  scratch_.clear();
  scratch_.reserve(size_);
  for (std::size_t b = 0; b < nbuckets_; ++b) {
    for (std::uint32_t i = heads_[b]; i != kNil; i = at(i)->next) {
      scratch_.push_back(i);
    }
  }

  // Re-derive the bucket width from a sample of pending timestamps.  Two
  // constraints pull in opposite directions:
  //   * occupancy — about one event per bucket-day keeps the day scan O(1),
  //     so width tracks the inter-event gap (the stride-sampled median gap
  //     spans `stride` true gaps; scale it back down).  The median is robust
  //     against one far-out timeout stretching the estimate.
  //   * coverage — a day cannot be narrower than span/nbuckets, or the
  //     pending window wraps the calendar many times over and every bucket
  //     scan wades through entries of later years.
  if (scratch_.size() >= 2) {
    constexpr std::size_t kSample = 256;
    std::vector<double> whens;
    const std::size_t stride = std::max<std::size_t>(1, scratch_.size() / kSample);
    for (std::size_t i = 0; i < scratch_.size(); i += stride) {
      whens.push_back(at(scratch_[i])->when);
    }
    std::sort(whens.begin(), whens.end());
    std::vector<double> gaps;
    gaps.reserve(whens.size());
    for (std::size_t i = 1; i < whens.size(); ++i) {
      const double g = whens[i] - whens[i - 1];
      if (g > 0.0) gaps.push_back(g);
    }
    if (!gaps.empty()) {
      std::nth_element(gaps.begin(),
                       gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2),
                       gaps.end());
      const double gap_est = gaps[gaps.size() / 2] / static_cast<double>(stride);
      const double span = whens.back() - whens.front();
      const double coverage = span / static_cast<double>(nbuckets);
      width_ = std::max({gap_est, coverage, 1e-12});
      inv_width_ = 1.0 / width_;
    }
    // All-equal timestamps: keep the previous width; ordering degenerates to
    // the seq tie-break inside one bucket either way.
  }

  if (nbuckets != nbuckets_) {
    huge_free(heads_);
    heads_ = static_cast<std::uint32_t*>(
        huge_alloc(nbuckets * sizeof(std::uint32_t)));
    nbuckets_ = nbuckets;
  }
  std::fill_n(heads_, nbuckets_, kNil);
  const std::size_t mask = nbuckets_ - 1;
  bool have_min = false;
  double min_when = 0.0;
  std::uint64_t min_seq = 0;
  for (const std::uint32_t idx : scratch_) {
    Node* n = at(idx);
    const std::uint64_t vb = virtual_bucket(n->when);
    std::uint32_t& head = heads_[vb & mask];
    n->next = head;
    head = idx;
    if (!have_min || precedes(n->when, n->seq, min_when, min_seq)) {
      have_min = true;
      min_when = n->when;
      min_seq = n->seq;
      cur_vb_ = vb;
    }
  }
  if (!have_min) cur_vb_ = virtual_bucket(now_s_);
}

void EventEngine::maybe_grow() {
  if (size_ + 1 > nbuckets_ * 2 && nbuckets_ < kMaxBuckets) {
    resize(nbuckets_ * 2);
  }
}

void EventEngine::maybe_shrink() {
  // The wide hysteresis band (grow at 2/bucket, shrink at 1/4 per bucket)
  // keeps a monotonic drain from rebucketing every halving.
  if (size_ < nbuckets_ / 4 && nbuckets_ > kMinBuckets) {
    resize(nbuckets_ / 2);
  }
}

void EventEngine::dispatch(std::uint32_t idx, std::uint32_t prev) {
  Node* n = at(idx);
  if (prev == kNil) {
    heads_[virtual_bucket(n->when) & (nbuckets_ - 1)] = n->next;
  } else {
    at(prev)->next = n->next;
  }
  now_s_ = n->when;
  --size_;
  // Invoke in place: the node is already unlinked and its slot is not yet
  // on the free list, so reentrant scheduling (even a resize that relinks
  // every pending node) cannot touch this handler — slab chunks never move.
  n->fn();
  n->~Node();
  free_.push_back(idx);
}

std::size_t EventEngine::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events) {
    std::uint32_t idx = kNil;
    std::uint32_t prev = kNil;
    if (!find_min(&idx, &prev)) break;
    dispatch(idx, prev);
    ++processed;
    maybe_shrink();
  }
  return processed;
}

std::size_t EventEngine::run_until(TimePoint until) {
  const double deadline = until.to_seconds();
  std::size_t processed = 0;
  while (true) {
    std::uint32_t idx = kNil;
    std::uint32_t prev = kNil;
    if (!find_min(&idx, &prev)) break;
    if (at(idx)->when > deadline) break;
    dispatch(idx, prev);
    ++processed;
    maybe_shrink();
  }
  return processed;
}

}  // namespace lp::sim
