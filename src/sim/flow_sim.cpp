#include "sim/flow_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>

#include "util/parallel.hpp"

namespace lp::sim {
namespace {

/// Bits at or below this are "already delivered": the transfer completes
/// instantly instead of scheduling a vanishing simulation round.
constexpr double kDoneBitsEps = 1e-6;
constexpr std::uint32_t kNoLink = std::numeric_limits<std::uint32_t>::max();
/// Below this many contended links, a flat rescan of the active-link table
/// is faster than maintaining a heap (fewer than ~2 cache lines of shares).
constexpr std::size_t kHeapThreshold = 96;

/// Incremental progressive-filling solver.
///
/// The flow->link incidence is built once per phase (prepare()) as CSR over
/// a dense link index (`topo::link_key` compressed to the links the phase
/// actually uses).  Each round seeds per-link residual capacity, cached
/// fair share, and unfrozen-flow counters for the still-active flows, then
/// repeatedly freezes the bottleneck link: freezing updates the counters,
/// residuals, and cached shares of exactly the links the frozen flows
/// cross.  Selection is a compare-only rescan of a dense active-link table
/// for small rounds and a revalidate-on-pop lazy min-heap for large ones —
/// either way O(near-linear in incidences) over flat arrays instead of the
/// previous O(bottlenecks * links * flows) rescans over an unordered_map.
/// All buffers are reused across phases, so steady-state execution does not
/// allocate.
class MaxMinSolver {
 public:
  explicit MaxMinSolver(double capacity_bps) : capacity_bps_{capacity_bps} {}

  /// Builds the incidence tables for one phase.  Returns the phase-start
  /// peak link load (total crossing flows on the most loaded link).
  std::uint32_t prepare(const std::vector<coll::Transfer>& transfers) {
    std::size_t max_key = 0;
    std::size_t edges = 0;
    for (const auto& t : transfers) {
      for (const auto& l : t.route) {
        max_key = std::max(max_key, topo::link_key(l));
        ++edges;
      }
    }
    key_to_link_.assign(edges > 0 ? max_key + 1 : 0, kNoLink);
    link_count_ = 0;
    flow_offsets_.resize(transfers.size() + 1);
    flow_links_.clear();
    flow_links_.reserve(edges);
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      flow_offsets_[i] = static_cast<std::uint32_t>(flow_links_.size());
      for (const auto& l : transfers[i].route) {
        std::uint32_t& dense = key_to_link_[topo::link_key(l)];
        if (dense == kNoLink) {
          dense = static_cast<std::uint32_t>(link_count_);
          ++link_count_;
        }
        flow_links_.push_back(dense);
      }
    }
    flow_offsets_[transfers.size()] = static_cast<std::uint32_t>(flow_links_.size());

    residual_.resize(link_count_);
    share_.resize(link_count_);
    unfrozen_.assign(link_count_, 0);
    link_flow_offsets_.resize(link_count_);
    link_cursor_.resize(link_count_);
    link_flows_.resize(flow_links_.size());
    frozen_.resize(transfers.size());
    touched_.clear();
    touched_.reserve(link_count_);

    std::uint32_t peak = 0;
    for (std::uint32_t l : flow_links_) peak = std::max(peak, ++unfrozen_[l]);
    for (std::uint32_t l : flow_links_) unfrozen_[l] = 0;
    return peak;
  }

  /// Max-min fair rates for the active flows of one round.
  void solve(const std::vector<std::size_t>& active,
             const std::vector<coll::Transfer>& transfers,
             std::vector<double>& rate_bps) {
    touched_.clear();
    electrical_.clear();
    for (std::size_t i : active) {
      const coll::Transfer& t = transfers[i];
      if (t.is_optical()) {
        rate_bps[i] = t.dedicated_rate.to_bps();
        continue;
      }
      if (t.route.empty()) {
        // Degenerate: no links -> treat as instantaneous at link capacity.
        rate_bps[i] = capacity_bps_;
        continue;
      }
      electrical_.push_back(i);
      frozen_[i] = false;
      for (std::uint32_t e = flow_offsets_[i]; e < flow_offsets_[i + 1]; ++e) {
        const std::uint32_t l = flow_links_[e];
        if (unfrozen_[l] == 0) touched_.push_back(l);
        ++unfrozen_[l];
      }
    }

    // Link -> active flows, CSR over the touched links of this round.
    std::uint32_t offset = 0;
    for (std::uint32_t l : touched_) {
      residual_[l] = capacity_bps_;
      share_[l] = capacity_bps_ / static_cast<double>(unfrozen_[l]);
      link_flow_offsets_[l] = offset;
      link_cursor_[l] = offset;
      offset += unfrozen_[l];
    }
    for (std::size_t i : electrical_) {
      for (std::uint32_t e = flow_offsets_[i]; e < flow_offsets_[i + 1]; ++e) {
        link_flows_[link_cursor_[flow_links_[e]]++] = static_cast<std::uint32_t>(i);
      }
    }

    // Bottleneck selection: repeatedly freeze the (share, link)-lexicographic
    // minimum among links that still carry unfrozen flows.  Freezing a
    // bottleneck's flows updates the residual, counter, and cached share of
    // exactly the links those flows cross.  The tiebreak on link id makes
    // the freeze order, and hence every floating-point subtraction, fully
    // deterministic, whichever selection structure picks the minimum.
    //
    // `freeze` returns the number of links the frozen flows cross (0 when
    // every flow of the link was already frozen through another link).
    const auto freeze = [&](std::uint32_t best, double best_share) {
      const std::uint32_t begin = link_flow_offsets_[best];
      const std::uint32_t end = link_cursor_[best];
      for (std::uint32_t s = begin; s < end; ++s) {
        const std::uint32_t f = link_flows_[s];
        if (frozen_[f]) continue;
        rate_bps[f] = best_share;
        frozen_[f] = true;
        for (std::uint32_t e = flow_offsets_[f]; e < flow_offsets_[f + 1]; ++e) {
          const std::uint32_t l2 = flow_links_[e];
          residual_[l2] -= best_share;
          if (--unfrozen_[l2] > 0) {
            share_[l2] = residual_[l2] / static_cast<double>(unfrozen_[l2]);
          }
        }
      }
    };

    if (touched_.size() < kHeapThreshold) {
      // Few links: a compare-only scan over the dense active-link table
      // (compacting drained links out with swap-erase) beats any queue.
      links_.assign(touched_.begin(), touched_.end());
      while (!links_.empty()) {
        double best_share = std::numeric_limits<double>::infinity();
        std::uint32_t best = kNoLink;
        for (std::size_t p = 0; p < links_.size();) {
          const std::uint32_t l = links_[p];
          if (unfrozen_[l] == 0) {
            links_[p] = links_.back();
            links_.pop_back();
            continue;
          }
          if (share_[l] < best_share || (share_[l] == best_share && l < best)) {
            best_share = share_[l];
            best = l;
          }
          ++p;
        }
        if (best == kNoLink) break;
        freeze(best, best_share);
      }
    } else {
      // Many links: a lazy min-heap that revalidates at pop time.  Entries
      // are NOT requeued when a freeze raises a neighbour's share (eager
      // requeueing floods the heap with stale entries); instead a popped
      // entry whose cached share is outdated is reinserted at its current
      // value.  Shares only ever rise as flows freeze, so a cached entry is
      // a lower bound and the revalidated pop is the true minimum.
      heap_.clear();
      for (std::uint32_t l : touched_) heap_.push_back(Entry{share_[l], l});
      std::make_heap(heap_.begin(), heap_.end(), Greater{});
      while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), Greater{});
        const Entry top = heap_.back();
        heap_.pop_back();
        const std::uint32_t best = top.link;
        if (unfrozen_[best] == 0) continue;  // drained while queued
        if (share_[best] != top.share) {
          heap_.push_back(Entry{share_[best], best});
          std::push_heap(heap_.begin(), heap_.end(), Greater{});
          continue;
        }
        freeze(best, top.share);
      }
    }

    // Every electrical flow froze exactly once, returning all counters to
    // zero; reset defensively so a degenerate round cannot poison the next.
    for (std::uint32_t l : touched_) unfrozen_[l] = 0;
  }

 private:
  struct Entry {
    double share;
    std::uint32_t link;
  };
  /// Min-heap order on (share, link) — the link tiebreak makes the freeze
  /// order, and hence the floating-point arithmetic, fully deterministic.
  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.share != b.share) return a.share > b.share;
      return a.link > b.link;
    }
  };

  double capacity_bps_;
  std::size_t link_count_{0};
  std::vector<std::uint32_t> key_to_link_;   ///< link_key -> dense link id
  std::vector<std::uint32_t> flow_offsets_;  ///< CSR: flow -> flow_links_ range
  std::vector<std::uint32_t> flow_links_;    ///< dense link ids per flow
  // Per-round scratch (sized once per phase, reused every round).
  std::vector<double> residual_;
  std::vector<double> share_;  ///< cached residual/unfrozen per link
  std::vector<std::uint32_t> unfrozen_;
  std::vector<std::uint32_t> link_flow_offsets_;
  std::vector<std::uint32_t> link_cursor_;
  std::vector<std::uint32_t> link_flows_;
  std::vector<char> frozen_;
  std::vector<std::size_t> electrical_;
  std::vector<std::uint32_t> touched_;
  std::vector<std::uint32_t> links_;  ///< active-link table (small rounds)
  std::vector<Entry> heap_;          ///< lazy min-heap (large rounds)
};

/// Reusable scratch for simulating one phase; a schedule run keeps one per
/// worker so consecutive phases do not reallocate.
struct PhaseWorkspace {
  explicit PhaseWorkspace(double capacity_bps) : solver{capacity_bps} {}
  MaxMinSolver solver;
  std::vector<double> remaining_bits;
  std::vector<double> rate_bps;
  std::vector<std::size_t> active;
  std::vector<std::size_t> still;
};

PhaseResult simulate_phase(const std::vector<coll::Transfer>& transfers,
                           Bandwidth link_capacity, PhaseWorkspace& ws) {
  PhaseResult result;
  result.flows.resize(transfers.size());
  if (transfers.empty()) return result;

  result.peak_link_load = ws.solver.prepare(transfers);

  ws.remaining_bits.resize(transfers.size());
  for (std::size_t i = 0; i < transfers.size(); ++i)
    ws.remaining_bits[i] = transfers[i].bytes.to_bits();

  ws.active.clear();
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    if (ws.remaining_bits[i] > kDoneBitsEps) {
      ws.active.push_back(i);
    } else {
      // Zero / sub-epsilon transfers complete instantly; record the rate the
      // flow would start at so every transfer gets an initial_rate.
      result.flows[i].completion = Duration::zero();
      result.flows[i].initial_rate =
          transfers[i].is_optical() ? transfers[i].dedicated_rate : link_capacity;
    }
  }

  double now_s = 0.0;
  bool first_round = true;
  ws.rate_bps.assign(transfers.size(), 0.0);
  while (!ws.active.empty()) {
    std::fill(ws.rate_bps.begin(), ws.rate_bps.end(), 0.0);
    ws.solver.solve(ws.active, transfers, ws.rate_bps);
    if (first_round) {
      for (std::size_t i : ws.active)
        result.flows[i].initial_rate = Bandwidth::bps(ws.rate_bps[i]);
      first_round = false;
    }
    // Earliest finishing active flow.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i : ws.active) {
      if (ws.rate_bps[i] <= 0.0) continue;
      dt = std::min(dt, ws.remaining_bits[i] / ws.rate_bps[i]);
    }
    if (!std::isfinite(dt)) break;  // starved flows (shouldn't happen)
    now_s += dt;
    ws.still.clear();
    for (std::size_t i : ws.active) {
      ws.remaining_bits[i] -= ws.rate_bps[i] * dt;
      if (ws.remaining_bits[i] <= kDoneBitsEps) {
        result.flows[i].completion = Duration::seconds(now_s);
      } else {
        ws.still.push_back(i);
      }
    }
    ws.active.swap(ws.still);
  }
  result.duration = Duration::seconds(now_s);
  return result;
}

}  // namespace

FlowSimulator::FlowSimulator(Bandwidth link_capacity) : link_capacity_{link_capacity} {}

PhaseResult FlowSimulator::run_phase(const std::vector<coll::Transfer>& transfers) const {
  PhaseWorkspace ws{link_capacity_.to_bps()};
  return simulate_phase(transfers, link_capacity_, ws);
}

ScheduleResult FlowSimulator::run(const coll::Schedule& schedule,
                                  TimelineTrace* trace) const {
  ScheduleResult result;
  const std::size_t n = schedule.phases.size();

  // Phases are simultaneous-transfer sets separated by barriers; their
  // simulations are independent, so the sweep runs one phase per task with
  // per-worker workspaces and folds the results in phase order (the fold,
  // and hence every accumulated duration, is schedule-order deterministic).
  std::vector<PhaseResult> phase_results(n);
  util::ThreadPool& pool = util::ThreadPool::shared();
  std::vector<std::unique_ptr<PhaseWorkspace>> workspaces(pool.size());
  pool.run(n, [&](std::size_t i, unsigned worker) {
    auto& ws = workspaces[worker];
    if (ws == nullptr) ws = std::make_unique<PhaseWorkspace>(link_capacity_.to_bps());
    phase_results[i] = simulate_phase(schedule.phases[i].transfers, link_capacity_, *ws);
  });

  std::uint32_t phase_index = 0;
  for (std::size_t p = 0; p < n; ++p) {
    const auto& phase = schedule.phases[p];
    PhaseResult& pr = phase_results[p];
    if (trace != nullptr) {
      if (phase.pre_delay > Duration::zero()) {
        trace->add(TraceEvent{phase_index, "reconfig", result.total,
                              result.total + phase.pre_delay, Bandwidth::zero()});
      }
      const Duration phase_start = result.total + phase.pre_delay;
      for (std::size_t i = 0; i < phase.transfers.size(); ++i) {
        const auto& t = phase.transfers[i];
        trace->add(TraceEvent{phase_index,
                              std::to_string(t.src) + "->" + std::to_string(t.dst),
                              phase_start, phase_start + pr.flows[i].completion,
                              pr.flows[i].initial_rate});
      }
    }
    result.total += phase.pre_delay + pr.duration;
    result.reconfig_time += phase.pre_delay;
    result.peak_link_load = std::max(result.peak_link_load, pr.peak_link_load);
    result.phases.push_back(std::move(pr));
    ++phase_index;
  }
  return result;
}

}  // namespace lp::sim
