#include "sim/flow_sim.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace lp::sim {

FlowSimulator::FlowSimulator(Bandwidth link_capacity) : link_capacity_{link_capacity} {}

void FlowSimulator::compute_rates(const std::vector<std::size_t>& active,
                                  const std::vector<const coll::Transfer*>& flows,
                                  std::vector<double>& rate_bps) const {
  // Progressive filling: repeatedly saturate the bottleneck link with the
  // smallest fair share among its unfrozen flows.
  struct LinkState {
    double capacity;
    std::vector<std::size_t> flows;  // indices into `flows`
  };
  std::unordered_map<std::size_t, LinkState> links;
  std::vector<bool> frozen(flows.size(), false);
  std::vector<std::size_t> electrical;

  for (std::size_t i : active) {
    const coll::Transfer& t = *flows[i];
    if (t.is_optical()) {
      rate_bps[i] = t.dedicated_rate.to_bps();
      frozen[i] = true;
      continue;
    }
    if (t.route.empty()) {
      // Degenerate: no links -> treat as instantaneous at link capacity.
      rate_bps[i] = link_capacity_.to_bps();
      frozen[i] = true;
      continue;
    }
    electrical.push_back(i);
    for (const auto& l : t.route) {
      auto [it, inserted] = links.try_emplace(topo::link_key(l),
                                              LinkState{link_capacity_.to_bps(), {}});
      it->second.flows.push_back(i);
    }
  }

  std::size_t remaining = electrical.size();
  while (remaining > 0) {
    // Find the bottleneck: link with the smallest capacity / unfrozen-flows.
    double best_share = std::numeric_limits<double>::infinity();
    for (const auto& [key, link] : links) {
      std::size_t unfrozen = 0;
      for (std::size_t f : link.flows) {
        if (!frozen[f]) ++unfrozen;
      }
      if (unfrozen == 0) continue;
      const double share = link.capacity / static_cast<double>(unfrozen);
      best_share = std::min(best_share, share);
    }
    if (!std::isfinite(best_share)) break;

    // Freeze every unfrozen flow crossing a bottleneck link at that share.
    bool froze_any = false;
    for (auto& [key, link] : links) {
      std::size_t unfrozen = 0;
      for (std::size_t f : link.flows) {
        if (!frozen[f]) ++unfrozen;
      }
      if (unfrozen == 0) continue;
      const double share = link.capacity / static_cast<double>(unfrozen);
      if (share > best_share * (1.0 + 1e-12)) continue;
      for (std::size_t f : link.flows) {
        if (frozen[f]) continue;
        rate_bps[f] = best_share;
        frozen[f] = true;
        froze_any = true;
        --remaining;
        // Deduct this flow's rate from every link it crosses.
        for (const auto& l2 : flows[f]->route) {
          links.at(topo::link_key(l2)).capacity -= best_share;
        }
      }
    }
    if (!froze_any) break;
  }
}

PhaseResult FlowSimulator::run_phase(const std::vector<coll::Transfer>& transfers) const {
  PhaseResult result;
  result.flows.resize(transfers.size());
  if (transfers.empty()) return result;

  std::vector<const coll::Transfer*> flows;
  flows.reserve(transfers.size());
  for (const auto& t : transfers) flows.push_back(&t);

  // Peak link load at phase start (diagnostic for congestion reporting).
  {
    std::unordered_map<std::size_t, std::uint32_t> load;
    for (const auto& t : transfers) {
      for (const auto& l : t.route) ++load[topo::link_key(l)];
    }
    for (const auto& [k, v] : load) result.peak_link_load = std::max(result.peak_link_load, v);
  }

  std::vector<double> remaining_bits(transfers.size());
  for (std::size_t i = 0; i < transfers.size(); ++i)
    remaining_bits[i] = transfers[i].bytes.to_bits();

  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    if (remaining_bits[i] > 0) {
      active.push_back(i);
    } else {
      result.flows[i].completion = Duration::zero();
    }
  }

  double now_s = 0.0;
  bool first_round = true;
  std::vector<double> rate_bps(transfers.size(), 0.0);
  while (!active.empty()) {
    std::fill(rate_bps.begin(), rate_bps.end(), 0.0);
    compute_rates(active, flows, rate_bps);
    if (first_round) {
      for (std::size_t i : active)
        result.flows[i].initial_rate = Bandwidth::bps(rate_bps[i]);
      first_round = false;
    }
    // Earliest finishing active flow.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i : active) {
      if (rate_bps[i] <= 0.0) continue;
      dt = std::min(dt, remaining_bits[i] / rate_bps[i]);
    }
    if (!std::isfinite(dt)) break;  // starved flows (shouldn't happen)
    now_s += dt;
    std::vector<std::size_t> still;
    for (std::size_t i : active) {
      remaining_bits[i] -= rate_bps[i] * dt;
      if (remaining_bits[i] <= 1e-6) {
        result.flows[i].completion = Duration::seconds(now_s);
      } else {
        still.push_back(i);
      }
    }
    active.swap(still);
  }
  result.duration = Duration::seconds(now_s);
  return result;
}

ScheduleResult FlowSimulator::run(const coll::Schedule& schedule,
                                  TimelineTrace* trace) const {
  ScheduleResult result;
  std::uint32_t phase_index = 0;
  for (const auto& phase : schedule.phases) {
    PhaseResult pr = run_phase(phase.transfers);
    if (trace != nullptr) {
      if (phase.pre_delay > Duration::zero()) {
        trace->add(TraceEvent{phase_index, "reconfig", result.total,
                              result.total + phase.pre_delay, Bandwidth::zero()});
      }
      const Duration phase_start = result.total + phase.pre_delay;
      for (std::size_t i = 0; i < phase.transfers.size(); ++i) {
        const auto& t = phase.transfers[i];
        trace->add(TraceEvent{phase_index,
                              std::to_string(t.src) + "->" + std::to_string(t.dst),
                              phase_start, phase_start + pr.flows[i].completion,
                              pr.flows[i].initial_rate});
      }
    }
    result.total += phase.pre_delay + pr.duration;
    result.reconfig_time += phase.pre_delay;
    result.peak_link_load = std::max(result.peak_link_load, pr.peak_link_load);
    result.phases.push_back(std::move(pr));
    ++phase_index;
  }
  return result;
}

}  // namespace lp::sim
