// Minimal discrete-event simulation core: the *reference* implementation.
//
// Production users (routing/decentralized, the serve/ subsystem) run on the
// calendar-queue sim::EventEngine (event_engine.hpp), which shares this
// queue's exact observable contract — timestamp order, FIFO tie-break at
// equal times, reentrant scheduling, run_until's <=-deadline semantics —
// at >10x the dispatch throughput.  This binary-heap version stays as the
// obviously-correct oracle for the randomized differential test in
// tests/event_engine_test.cpp and as the baseline in bench_event_queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace lp::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` to run at absolute time `when`.
  void schedule_at(TimePoint when, Callback fn);

  /// Schedule `fn` to run `delay` after the current time.
  void schedule_in(Duration delay, Callback fn);

  /// Current simulation time (the timestamp of the event being processed,
  /// or of the last processed event).
  [[nodiscard]] TimePoint now() const { return now_; }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Process events in timestamp order until the queue drains or
  /// `max_events` have run.  Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Process events with timestamp <= `until`.
  std::size_t run_until(TimePoint until);

 private:
  struct Item {
    TimePoint when;
    std::uint64_t seq;  ///< FIFO tie-break for equal timestamps
    Callback fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  TimePoint now_{};
  std::uint64_t next_seq_{0};
};

}  // namespace lp::sim
