// Switch crosstalk accumulation and its power penalty.
//
// Every MZI a circuit traverses leaks a little light between the selected
// and unselected ports (finite extinction ratio).  Light from *other*
// circuits leaks in the same way, so a long path through k switches
// accumulates interferer power eps_total ~= k * 10^(-X/10) relative to the
// signal.  The receiver pays a power penalty for it:
//
//   incoherent (default): leaked paths have different lengths, so fields
//     add in power:  PP = -10 log10(1 - eps_total)
//   coherent (worst case): fields beat against the signal:
//     PP = -10 log10(1 - 2 sqrt(eps_total))
//
// The link budget charges the incoherent penalty; the coherent figure is
// exposed for margin analysis.  Both are standard first-order expressions.
#pragma once

#include "util/units.hpp"

namespace lp::phys {

struct CrosstalkParams {
  /// Per-MZI extinction ratio (positive dB suppression of the leak).
  Decibel extinction{Decibel::db(25.0)};
};

class CrosstalkModel {
 public:
  explicit CrosstalkModel(CrosstalkParams params = {});

  [[nodiscard]] const CrosstalkParams& params() const { return params_; }

  /// Aggregate interferer-to-signal power ratio after `mzi_traversals`.
  [[nodiscard]] double aggregate_ratio(unsigned mzi_traversals) const;

  /// Incoherent crosstalk power penalty (charged to the budget).
  [[nodiscard]] Decibel incoherent_penalty(unsigned mzi_traversals) const;

  /// Coherent worst-case penalty (margin analysis only).  Returns a very
  /// large penalty once the closed form breaks down (eps too large).
  [[nodiscard]] Decibel coherent_penalty(unsigned mzi_traversals) const;

  /// Max MZI traversals keeping the incoherent penalty under `budget_db`.
  [[nodiscard]] unsigned max_traversals(Decibel budget) const;

 private:
  CrosstalkParams params_;
};

}  // namespace lp::phys
