// Micro-ring resonator (MRR) modulator and the per-wavelength data rate.
//
// The paper's transmitter modulates each of a tile's 16 wavelengths with an
// MRR, sustaining up to 224 Gbps per wavelength (§3).  We model that rate as
// baud x bits-per-symbol with a PAM4 line code (112 GBaud x 2 b/sym), plus
// the modulator's optical penalties that feed the link budget.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace lp::phys {

enum class LineCode : std::uint8_t { kNrz = 1, kPam4 = 2 };

struct ModulatorParams {
  /// Symbol rate the MRR + SerDes can sustain.
  double baud_rate{112e9};
  LineCode line_code{LineCode::kPam4};
  /// Optical insertion loss through the ring.
  Decibel insertion_loss{Decibel::db(1.0)};
  /// Extra power penalty from finite extinction / modulator nonlinearity,
  /// charged against the budget rather than modelled in the eye.
  Decibel modulation_penalty{Decibel::db(1.5)};
};

class Modulator {
 public:
  explicit Modulator(ModulatorParams params = {});

  [[nodiscard]] const ModulatorParams& params() const { return params_; }

  /// Bits per symbol of the configured line code.
  [[nodiscard]] std::uint32_t bits_per_symbol() const;

  /// Peak data rate of one modulated wavelength: baud x bits/symbol.
  /// 224 Gbps with default parameters, matching the paper.
  [[nodiscard]] Bandwidth line_rate() const;

  /// Total optical penalty contributed to the link budget.
  [[nodiscard]] Decibel total_penalty() const;

 private:
  ModulatorParams params_;
};

}  // namespace lp::phys
