#include "phys/mzi.hpp"

#include <cmath>
#include <numbers>

namespace lp::phys {

Mzi::Mzi(MziParams params) : params_{params} {}

double Mzi::target_phase(MziPort port) {
  // Bar state at dphi = 0, cross state at dphi = pi.
  return port == MziPort::kBar ? 0.0 : std::numbers::pi;
}

void Mzi::program(MziPort port, TimePoint when) {
  phase_from_ = phase_at(when);
  target_ = port;
  programmed_at_ = when;
}

double Mzi::phase_at(TimePoint t) const {
  const double goal = target_phase(target_);
  const Duration elapsed = t - programmed_at_;
  if (elapsed < Duration::zero()) return phase_from_;
  const double decay = std::exp(-(elapsed / params_.tau));
  return goal + (phase_from_ - goal) * decay;
}

double Mzi::cross_power_at(TimePoint t) const {
  const double half = phase_at(t) / 2.0;
  const double s = std::sin(half);
  return s * s;
}

double Mzi::bar_power_at(TimePoint t) const { return 1.0 - cross_power_at(t); }

double Mzi::selected_power_at(TimePoint t) const {
  return target_ == MziPort::kCross ? cross_power_at(t) : bar_power_at(t);
}

bool Mzi::settled_at(TimePoint t) const {
  const double goal = target_phase(target_);
  const double swing = std::abs(goal - phase_from_);
  if (swing < 1e-12) return true;
  return std::abs(phase_at(t) - goal) <= params_.settle_fraction * swing;
}

Duration Mzi::settling_time() const {
  return params_.tau * std::log(1.0 / params_.settle_fraction);
}

Duration Mzi::rise_time_10_90() const {
  // For a first-order phase lag the *power* transient is not exactly
  // exponential (power = sin^2(phase/2)), so compute the 10/90 crossings of
  // the power swing for a full bar->cross transition analytically via the
  // phase that produces them.
  //
  // cross power p(phase) = sin^2(phase/2) rises monotonically in [0, pi];
  // p = 0.1 at phase1 = 2*asin(sqrt(0.1)), p = 0.9 at phase2.
  // phase(t) = pi * (1 - exp(-t/tau))  =>  t = -tau * ln(1 - phase/pi).
  const double phase10 = 2.0 * std::asin(std::sqrt(0.1));
  const double phase90 = 2.0 * std::asin(std::sqrt(0.9));
  const double t10 = -std::log(1.0 - phase10 / std::numbers::pi);
  const double t90 = -std::log(1.0 - phase90 / std::numbers::pi);
  return params_.tau * (t90 - t10);
}

}  // namespace lp::phys
