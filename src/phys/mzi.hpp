// Mach-Zehnder interferometer (MZI) switch element model.
//
// LIGHTPATH routes wavelengths with 1x3 switches built from MZIs (paper §3,
// Figure 2b).  The physics that matters to the system level is:
//
//   * the static transfer function: the phase difference between the two
//     MZI arms steers power between the bar and cross ports
//     (P_cross = sin^2(dphi/2), P_bar = cos^2(dphi/2));
//   * the dynamic response: the thermo-optic phase shifter behaves as a
//     first-order lag, so a programming step produces an exponential
//     approach whose settling defines the reconfiguration latency.  The
//     paper measures 3.7 us (Figure 3a); with the default time constant of
//     1.0 us the model settles to within 2.5% in ln(1/0.025) ~ 3.69 us.
//
// The model is deliberately time-driven (sample(t)) rather than event-driven
// so the Figure 3a bench can reproduce the measured transient trace and fit
// tau from it, exactly as the paper does with its oscilloscope capture.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace lp::phys {

/// Which MZI output port carries the light.
enum class MziPort : std::uint8_t { kBar = 0, kCross = 1 };

struct MziParams {
  /// Thermo-optic time constant of the phase shifter.
  Duration tau{Duration::micros(1.0)};
  /// Residual-swing fraction at which the switch is declared settled.  The
  /// default 2.5% makes the settling time ~3.7 us, matching the paper.
  double settle_fraction{0.025};
  /// Insertion loss through the element, applied per traversal.
  Decibel insertion_loss{Decibel::db(0.1)};
  /// Extinction ratio: fraction of power leaking to the unselected port at
  /// steady state, expressed as a (positive) dB suppression.
  Decibel extinction{Decibel::db(25.0)};
};

class Mzi {
 public:
  explicit Mzi(MziParams params = {});

  [[nodiscard]] const MziParams& params() const { return params_; }

  /// Overrides the thermo-optic time constant.  The fault layer uses this to
  /// model slow-settle drift (an aged or thermally crosstalked phase shifter
  /// whose transient stretches); settling_time() and settled_at() follow.
  void set_tau(Duration tau) { params_.tau = tau; }

  /// Commands the switch to route to `port` starting at time `when`.  The
  /// phase begins its exponential approach from its current value.
  void program(MziPort port, TimePoint when);

  /// Target port of the most recent program() call.
  [[nodiscard]] MziPort target_port() const { return target_; }

  /// Arm phase difference at time `t` (radians, in [0, pi]).
  [[nodiscard]] double phase_at(TimePoint t) const;

  /// Fraction of input power on the cross port at time `t`.
  [[nodiscard]] double cross_power_at(TimePoint t) const;

  /// Fraction of input power on the bar port at time `t`.
  [[nodiscard]] double bar_power_at(TimePoint t) const;

  /// Fraction of input power on the *selected* port at time `t` —— the
  /// quantity the paper plots in Figure 3a as "amplitude (normalized)".
  [[nodiscard]] double selected_power_at(TimePoint t) const;

  /// True if the transient has settled to within settle_fraction at `t`.
  [[nodiscard]] bool settled_at(TimePoint t) const;

  /// Time from programming until the transient settles:
  /// tau * ln(1/settle_fraction).  ~3.7 us with default parameters.
  [[nodiscard]] Duration settling_time() const;

  /// Time for the selected-port power to rise from 10% to 90% of its swing,
  /// the standard oscilloscope rise-time metric.
  [[nodiscard]] Duration rise_time_10_90() const;

 private:
  [[nodiscard]] static double target_phase(MziPort port);

  MziParams params_;
  MziPort target_{MziPort::kBar};
  double phase_from_{0.0};
  TimePoint programmed_at_{};
};

}  // namespace lp::phys
