#include "phys/crosstalk.hpp"

#include <cmath>

namespace lp::phys {

CrosstalkModel::CrosstalkModel(CrosstalkParams params) : params_{params} {}

double CrosstalkModel::aggregate_ratio(unsigned mzi_traversals) const {
  const double per_mzi = std::pow(10.0, -params_.extinction.value() / 10.0);
  return static_cast<double>(mzi_traversals) * per_mzi;
}

Decibel CrosstalkModel::incoherent_penalty(unsigned mzi_traversals) const {
  const double eps = aggregate_ratio(mzi_traversals);
  if (eps >= 1.0) return Decibel::db(1e9);
  return Decibel::db(-10.0 * std::log10(1.0 - eps));
}

Decibel CrosstalkModel::coherent_penalty(unsigned mzi_traversals) const {
  const double eps = aggregate_ratio(mzi_traversals);
  const double arg = 1.0 - 2.0 * std::sqrt(eps);
  if (arg <= 0.0) return Decibel::db(1e9);
  return Decibel::db(-10.0 * std::log10(arg));
}

unsigned CrosstalkModel::max_traversals(Decibel budget) const {
  // Invert the incoherent penalty: eps_max = 1 - 10^(-budget/10).
  const double eps_max = 1.0 - std::pow(10.0, -budget.value() / 10.0);
  const double per_mzi = std::pow(10.0, -params_.extinction.value() / 10.0);
  if (per_mzi <= 0.0) return ~0u;
  return static_cast<unsigned>(eps_max / per_mzi);
}

}  // namespace lp::phys
