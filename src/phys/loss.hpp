// Passive-loss model for waveguides, crossings and reticle stitches.
//
// The paper measures two passive figures on the prototype (§3, Figure 3b):
// a 0.25 dB loss at waveguide crossings and a distribution of reticle
// stitch loss.  LIGHTPATH wafers are larger than one lithographic reticle,
// so waveguides that span reticle boundaries pick up a stitch loss that
// varies die-to-die; the paper plots its distribution with a Gaussian fit.
//
// LossModel supplies deterministic per-element losses for budget math and a
// sampled stitch loss for Monte-Carlo reproduction of Figure 3b.
#pragma once

#include "util/rng.hpp"
#include "util/units.hpp"

namespace lp::phys {

struct LossParams {
  /// Waveguide propagation loss per unit length.  Bus waveguides in a
  /// server-scale interconnect must be low-loss to span the 200 mm wafer;
  /// 0.1 dB/cm is typical of the SiN-class guides such parts use.
  Decibel propagation_per_cm{Decibel::db(0.1)};
  /// Loss per in-plane waveguide crossing (paper: 0.25 dB, "low-loss").
  Decibel crossing{Decibel::db(0.25)};
  /// Reticle stitch loss distribution (Gaussian, truncated at 0).
  Decibel stitch_mean{Decibel::db(0.25)};
  Decibel stitch_sigma{Decibel::db(0.08)};
  /// Chip-to-waveguide coupler loss (per facet: laser->guide, guide->PD).
  Decibel coupler{Decibel::db(1.0)};
  /// Fiber attach loss at the wafer edge (per facet).
  Decibel fiber_attach{Decibel::db(1.5)};
  /// Fiber propagation loss per km (negligible at rack scale, modelled for
  /// completeness).
  Decibel fiber_per_km{Decibel::db(0.4)};
};

class LossModel {
 public:
  explicit LossModel(LossParams params = {});

  [[nodiscard]] const LossParams& params() const { return params_; }

  /// Propagation loss over an on-wafer distance.
  [[nodiscard]] Decibel propagation(Length distance) const;

  /// Loss of `n` waveguide crossings.
  [[nodiscard]] Decibel crossings(unsigned n) const;

  /// Expected (mean) loss of `n` reticle stitches.
  [[nodiscard]] Decibel stitches_mean(unsigned n) const;

  /// One random stitch-loss draw (truncated Gaussian, >= 0 dB).
  [[nodiscard]] Decibel sample_stitch(Rng& rng) const;

  /// Coupler loss for `facets` chip/waveguide interfaces.
  [[nodiscard]] Decibel couplers(unsigned facets) const;

  /// Total loss for a fiber hop of the given length, including both attach
  /// facets.
  [[nodiscard]] Decibel fiber_hop(Length fiber_length) const;

 private:
  LossParams params_;
};

}  // namespace lp::phys
