#include "phys/photodetector.hpp"

#include <cmath>

namespace lp::phys {

namespace {
constexpr double kElectronCharge = 1.602176634e-19;  // coulombs
}

Photodetector::Photodetector(PhotodetectorParams params) : params_{params} {}

double Photodetector::photocurrent_a(Power received) const {
  return params_.responsivity_a_per_w * received.to_milliwatts() * 1e-3;
}

double Photodetector::q_factor(Power received, LineCode code, double baud_rate) const {
  const double signal_a = photocurrent_a(received);
  const double rx_bandwidth_hz = baud_rate / 2.0;  // matched-filter approximation
  const double thermal_var =
      params_.thermal_noise_a_rthz * params_.thermal_noise_a_rthz * rx_bandwidth_hz;
  const double shot_var =
      2.0 * kElectronCharge * (signal_a + params_.dark_current_a) * rx_bandwidth_hz;
  const double sigma = std::sqrt(thermal_var + shot_var);
  if (sigma <= 0.0) return 0.0;
  // PAM4 stacks 4 levels into the same swing: each decision sees 1/3 of the
  // full eye, i.e. the per-level amplitude is signal/(levels-1).
  const double levels = code == LineCode::kPam4 ? 4.0 : 2.0;
  const double per_level = signal_a / (levels - 1.0);
  return per_level / sigma;
}

double ber_from_q(double q) { return 0.5 * std::erfc(q / std::sqrt(2.0)); }

double Photodetector::bit_error_rate(Power received, LineCode code, double baud_rate) const {
  const double q = q_factor(received, code, baud_rate);
  if (code == LineCode::kPam4) {
    // Gray-coded PAM4: 3 decision thresholds over 2 bits/symbol -> the
    // standard (3/4)*erfc(...)/log2(levels)-style scaling, folded here as
    // 0.75 * per-decision error probability.
    return 0.75 * std::erfc(q / std::sqrt(2.0));
  }
  return ber_from_q(q);
}

Power Photodetector::sensitivity(double target_ber, LineCode code, double baud_rate) const {
  // BER decreases monotonically with power; bisect on dBm.
  double lo_dbm = -60.0;
  double hi_dbm = 20.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = (lo_dbm + hi_dbm) / 2.0;
    const double ber = bit_error_rate(Power::dbm(mid), code, baud_rate);
    if (ber > target_ber) {
      lo_dbm = mid;
    } else {
      hi_dbm = mid;
    }
  }
  return Power::dbm(hi_dbm);
}

}  // namespace lp::phys
