// Photodetector noise model and receiver sensitivity.
//
// The receive side of a LIGHTPATH tile demultiplexes wavelengths and
// converts them to electrical signals with photodetectors (§3).  For the
// link budget we need: received power -> electrical SNR -> bit error rate,
// and its inverse, the sensitivity (minimum power for a target BER).
//
// Noise model: thermal (input-referred current density) + shot noise on the
// photocurrent, both integrated over a receiver bandwidth of half the baud
// rate.  Signal is the mean photocurrent R*P.  For PAM4 the eye opening per
// level is 1/3 of the full swing, costing ~9.5 dB of SNR versus NRZ, which
// is folded into the Q calculation.
#pragma once

#include "phys/modulator.hpp"
#include "util/units.hpp"

namespace lp::phys {

struct PhotodetectorParams {
  /// Responsivity in amperes per watt.
  double responsivity_a_per_w{0.9};
  /// Input-referred thermal noise current density, A/sqrt(Hz).
  double thermal_noise_a_rthz{12e-12};
  /// Dark current (A); contributes shot noise even at zero signal.
  double dark_current_a{50e-9};
};

class Photodetector {
 public:
  explicit Photodetector(PhotodetectorParams params = {});

  [[nodiscard]] const PhotodetectorParams& params() const { return params_; }

  /// Mean photocurrent for the given received optical power.
  [[nodiscard]] double photocurrent_a(Power received) const;

  /// Q-factor of the detected eye for the given received power, line code
  /// and baud rate.  Q relates to BER as BER = 0.5*erfc(Q/sqrt(2)) per
  /// binary decision.
  [[nodiscard]] double q_factor(Power received, LineCode code, double baud_rate) const;

  /// Bit error rate at the given operating point.
  [[nodiscard]] double bit_error_rate(Power received, LineCode code, double baud_rate) const;

  /// Minimum received power achieving `target_ber` (bisection search).
  [[nodiscard]] Power sensitivity(double target_ber, LineCode code, double baud_rate) const;

 private:
  PhotodetectorParams params_;
};

/// Standard Q-function-based BER for a binary decision: 0.5*erfc(q/sqrt 2).
[[nodiscard]] double ber_from_q(double q);

}  // namespace lp::phys
