// End-to-end optical link budget for a chip-to-chip circuit.
//
// Composes: laser launch power, modulator penalties, propagation over the
// circuit's waveguide length, crossings, reticle stitches, MZI traversals,
// optional fiber hops, and receiver couplers -> received power -> BER via
// the photodetector model -> pass/fail against a FEC threshold.
//
// This is the machinery behind the paper's feasibility claim in §3
// ("low-loss (0.25 dB) optical crossings enable routing within the same
// active silicon device layer"): the bench sweeps circuit lengths across
// the 32-tile wafer and shows the budget closes at 224 Gbps.
#pragma once

#include <cstdint>

#include "phys/crosstalk.hpp"
#include "phys/loss.hpp"
#include "phys/modulator.hpp"
#include "phys/mzi.hpp"
#include "phys/photodetector.hpp"
#include "util/units.hpp"

namespace lp::phys {

/// Hop-count description of one optical circuit, produced by the routing
/// layer and consumed here.
struct CircuitProfile {
  Length waveguide_length{Length::zero()};
  unsigned crossings{0};
  unsigned stitches{0};
  unsigned mzi_traversals{0};
  unsigned fiber_hops{0};
  Length fiber_length{Length::zero()};
};

struct LinkBudgetParams {
  /// Per-wavelength laser launch power.
  Power launch{Power::dbm(12.0)};
  /// Pre-FEC BER that the SerDes' KP4-class FEC can correct.
  double fec_ber_threshold{2.4e-4};
  ModulatorParams modulator{};
  PhotodetectorParams photodetector{};
  MziParams mzi{};
  LossParams loss{};
  CrosstalkParams crosstalk{};
};

/// Result of evaluating one circuit against the budget.
struct LinkBudgetReport {
  Decibel total_loss{Decibel::zero()};
  /// Incoherent switch-crosstalk penalty included in total_loss.
  Decibel crosstalk_penalty{Decibel::zero()};
  Power received{Power::zero()};
  double q_factor{0.0};
  double pre_fec_ber{1.0};
  Bandwidth line_rate{Bandwidth::zero()};
  bool closes{false};  ///< pre-FEC BER under the FEC threshold
  /// Remaining margin: receiver power above sensitivity (negative = fails).
  Decibel margin{Decibel::zero()};
};

class LinkBudget {
 public:
  explicit LinkBudget(LinkBudgetParams params = {});

  [[nodiscard]] const LinkBudgetParams& params() const { return params_; }

  /// Deterministic loss of the circuit, using mean stitch loss.
  [[nodiscard]] Decibel path_loss(const CircuitProfile& profile) const;

  /// Loss with randomly sampled stitch losses (for Monte-Carlo yield runs).
  [[nodiscard]] Decibel sampled_path_loss(const CircuitProfile& profile, Rng& rng) const;

  /// Full budget evaluation with deterministic losses, including the
  /// incoherent crosstalk penalty for the profile's MZI traversals.
  [[nodiscard]] LinkBudgetReport evaluate(const CircuitProfile& profile) const;

  /// Budget evaluation at a specific total path loss (used by Monte-Carlo);
  /// charges crosstalk for `mzi_traversals`.
  [[nodiscard]] LinkBudgetReport evaluate_at_loss(Decibel total_path_loss,
                                                  unsigned mzi_traversals = 0) const;

  /// Receiver sensitivity at the configured line rate and FEC threshold.
  [[nodiscard]] Power sensitivity() const;

 private:
  LinkBudgetParams params_;
  Modulator modulator_;
  Photodetector photodetector_;
  LossModel loss_;
  CrosstalkModel crosstalk_;
};

}  // namespace lp::phys
