#include "phys/wdm.hpp"

#include <numeric>

namespace lp::phys {

WdmGrid::WdmGrid(std::uint32_t channels, Length center, Length spacing)
    : channels_{channels}, center_{center}, spacing_{spacing} {}

Length WdmGrid::wavelength(ChannelId c) const {
  const double offset =
      static_cast<double>(c) - (static_cast<double>(channels_) - 1.0) / 2.0;
  return center_ + spacing_ * offset;
}

std::vector<ChannelId> WdmGrid::channels() const {
  std::vector<ChannelId> ids(channels_);
  std::iota(ids.begin(), ids.end(), 0u);
  return ids;
}

}  // namespace lp::phys
