#include "phys/modulator.hpp"

namespace lp::phys {

Modulator::Modulator(ModulatorParams params) : params_{params} {}

std::uint32_t Modulator::bits_per_symbol() const {
  return static_cast<std::uint32_t>(params_.line_code);
}

Bandwidth Modulator::line_rate() const {
  return Bandwidth::bps(params_.baud_rate * bits_per_symbol());
}

Decibel Modulator::total_penalty() const {
  return params_.insertion_loss + params_.modulation_penalty;
}

}  // namespace lp::phys
