#include "phys/loss.hpp"

#include <algorithm>

namespace lp::phys {

LossModel::LossModel(LossParams params) : params_{params} {}

Decibel LossModel::propagation(Length distance) const {
  const double cm = distance.to_meters() * 100.0;
  return params_.propagation_per_cm * cm;
}

Decibel LossModel::crossings(unsigned n) const {
  return params_.crossing * static_cast<double>(n);
}

Decibel LossModel::stitches_mean(unsigned n) const {
  return params_.stitch_mean * static_cast<double>(n);
}

Decibel LossModel::sample_stitch(Rng& rng) const {
  const double draw =
      rng.normal(params_.stitch_mean.value(), params_.stitch_sigma.value());
  return Decibel::db(std::max(0.0, draw));
}

Decibel LossModel::couplers(unsigned facets) const {
  return params_.coupler * static_cast<double>(facets);
}

Decibel LossModel::fiber_hop(Length fiber_length) const {
  const double km = fiber_length.to_meters() / 1000.0;
  return params_.fiber_attach * 2.0 + params_.fiber_per_km * km;
}

}  // namespace lp::phys
