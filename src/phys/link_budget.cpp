#include "phys/link_budget.hpp"

namespace lp::phys {

LinkBudget::LinkBudget(LinkBudgetParams params)
    : params_{params},
      modulator_{params.modulator},
      photodetector_{params.photodetector},
      loss_{params.loss},
      crosstalk_{params.crosstalk} {}

Decibel LinkBudget::path_loss(const CircuitProfile& profile) const {
  Decibel total = loss_.propagation(profile.waveguide_length);
  total += loss_.crossings(profile.crossings);
  total += loss_.stitches_mean(profile.stitches);
  total += params_.mzi.insertion_loss * static_cast<double>(profile.mzi_traversals);
  total += loss_.couplers(2);  // chip->guide at Tx, guide->PD at Rx
  for (unsigned i = 0; i < profile.fiber_hops; ++i) {
    total += loss_.fiber_hop(profile.fiber_length / std::max(1.0, double(profile.fiber_hops)));
  }
  return total;
}

Decibel LinkBudget::sampled_path_loss(const CircuitProfile& profile, Rng& rng) const {
  Decibel total = path_loss(profile);
  // Replace the mean stitch contribution with sampled draws.
  total += Decibel::db(-loss_.stitches_mean(profile.stitches).value());
  for (unsigned i = 0; i < profile.stitches; ++i) total += loss_.sample_stitch(rng);
  return total;
}

LinkBudgetReport LinkBudget::evaluate(const CircuitProfile& profile) const {
  return evaluate_at_loss(path_loss(profile), profile.mzi_traversals);
}

LinkBudgetReport LinkBudget::evaluate_at_loss(Decibel total_path_loss,
                                              unsigned mzi_traversals) const {
  LinkBudgetReport report;
  report.crosstalk_penalty = crosstalk_.incoherent_penalty(mzi_traversals);
  report.total_loss =
      total_path_loss + modulator_.total_penalty() + report.crosstalk_penalty;
  report.received = params_.launch.attenuated_by(report.total_loss);
  const auto code = params_.modulator.line_code;
  const double baud = params_.modulator.baud_rate;
  report.q_factor = photodetector_.q_factor(report.received, code, baud);
  report.pre_fec_ber = photodetector_.bit_error_rate(report.received, code, baud);
  report.line_rate = modulator_.line_rate();
  report.closes = report.pre_fec_ber <= params_.fec_ber_threshold;
  const Power floor = sensitivity();
  report.margin = Decibel::db(report.received.to_dbm() - floor.to_dbm());
  return report;
}

Power LinkBudget::sensitivity() const {
  return photodetector_.sensitivity(params_.fec_ber_threshold,
                                    params_.modulator.line_code,
                                    params_.modulator.baud_rate);
}

}  // namespace lp::phys
