// Wavelength-division multiplexing grid.
//
// Each LIGHTPATH tile carries 16 wavelength-multiplexed lasers (paper §3).
// A WdmGrid names those channels and assigns them nominal wavelengths on a
// fixed spacing around an O-band center, which the loss/budget code uses
// only for bookkeeping (the model is wavelength-flat).
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace lp::phys {

/// Index of a wavelength channel on a tile (0-based).
using ChannelId = std::uint32_t;

class WdmGrid {
 public:
  /// Default grid matches the paper: 16 channels.
  explicit WdmGrid(std::uint32_t channels = 16,
                   Length center = Length::microns(1.310),
                   Length spacing = Length::microns(0.0008));

  [[nodiscard]] std::uint32_t channel_count() const { return channels_; }

  /// Nominal wavelength of channel `c`, symmetric around the center.
  [[nodiscard]] Length wavelength(ChannelId c) const;

  /// All channel ids, convenient for range-for.
  [[nodiscard]] std::vector<ChannelId> channels() const;

 private:
  std::uint32_t channels_;
  Length center_;
  Length spacing_;
};

}  // namespace lp::phys
