#include "runtime/training_run.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>

#include "topo/cluster.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lp::runtime {
namespace {

fabric::FabricConfig run_fabric_config() {
  fabric::FabricConfig config;
  config.wafer_count = 2;
  return config;
}

/// Sums the schedule into per-bucket collective durations.  Every phase
/// runs its transfers simultaneously on dedicated circuits, so its length
/// is the slowest transfer plus the phase's reconfiguration pre-delay.
/// The ring circuits persist across buckets, so only the first bucket pays
/// pre-delays (mirroring training_sim's static-split accounting).
struct BucketCosts {
  Duration first{Duration::zero()};
  Duration steady{Duration::zero()};
};

BucketCosts schedule_bucket_costs(const coll::Schedule& schedule) {
  BucketCosts costs;
  bool leading = true;
  for (const coll::Phase& phase : schedule.phases) {
    Duration longest = Duration::zero();
    for (const coll::Transfer& t : phase.transfers) {
      longest = std::max(longest, transfer_time(t.bytes, t.dedicated_rate));
    }
    costs.first += phase.pre_delay + longest;
    costs.steady += longest;
    // Only the leading phase's pre-delay amortizes away across buckets (the
    // ring circuits persist); mid-schedule reconfigurations — every phase of
    // a tree or halving-doubling schedule — recur in steady state too.
    if (!leading) costs.steady += phase.pre_delay;
    leading = false;
  }
  return costs;
}

}  // namespace

TrainingRun::TrainingRun(const RunConfig& config)
    : config_{config},
      fab_{run_fabric_config()},
      injector_{fab_, config.model, config.seed},
      monitor_{config.health},
      cache_{fab_},
      tuner_{coll::TunerParams{.alpha = config.cost.alpha}},
      damper_{config.damper} {
  // Fiber bundles between wafer 0's east column and wafer 1's west column,
  // one per row, generously sized so fibers are never the binding resource.
  const auto& w = fab_.wafer(0);
  for (std::int32_t row = 0; row < w.rows(); ++row) {
    fab_.add_fiber_link({0, w.tile_at({row, w.cols() - 1})}, {1, w.tile_at({row, 0})},
                        64);
  }
  establish_ring();
  rebuild_costs();
}

void TrainingRun::establish_ring() {
  // Tiles 0..k-1 of wafer 0 then 0..k-1 of wafer 1, closed into one ring
  // with two cross-wafer edges.  Tiles k.. stay idle: the spare pool.
  const std::uint32_t tiles = fab_.wafer(0).tile_count();
  const std::uint32_t k = std::min(config_.ring_tiles_per_wafer, tiles);
  for (fabric::WaferId wafer = 0; wafer < fab_.wafer_count(); ++wafer) {
    for (fabric::TileId t = 0; t < k; ++t) members_.push_back({wafer, t});
  }
  circuits_.resize(members_.size());
  for (std::size_t e = 0; e < members_.size(); ++e) {
    auto placed = fab_.connect(members_[e], members_[(e + 1) % members_.size()],
                               config_.wavelengths);
    circuits_[e] = placed ? placed.value() : 0;
  }
}

void TrainingRun::rebuild_costs() {
  Bandwidth rate;
  Duration reconfig = Duration::zero();
  if (config_.policy == RunPolicy::kPhotonicRepair) {
    // The ring runs at its slowest edge (a 1-lambda elastic bridge drags
    // every step down — the price of staying alive).
    rate = Bandwidth::zero();
    for (const fabric::CircuitId id : circuits_) {
      const Bandwidth b = fab_.circuit_bandwidth(id);
      if (rate.is_zero() || b < rate) rate = b;
    }
    reconfig = config_.cost.reconfig;
  } else {
    rate = config_.cost.chip_bandwidth / static_cast<double>(config_.cost.total_dims);
  }
  const std::uint32_t tiles = fab_.wafer(0).tile_count();
  std::vector<topo::TpuId> ids;
  ids.reserve(members_.size());
  for (const fabric::GlobalTile& m : members_) {
    ids.push_back(static_cast<topo::TpuId>(m.wafer * tiles + m.tile));
  }
  // The autotuner races ring vs tree vs halving-doubling for the bucket
  // AllReduce at the surviving topology's rate; at the default 64 MiB
  // buckets the ring wins (bandwidth-bound), while small-bucket configs and
  // shrunk rings flip to log-depth schedules.  Decisions are memoized on
  // (op, size bucket, member fingerprint, fabric epoch), so the post-fault
  // rebuild re-decides only when the topology actually changed.
  const coll::Decision pick =
      tuner_.pick(coll::CollOp::kAllReduce, config_.iteration.bucket_bytes, ids,
                  rate, reconfig, fab_.epoch());
  bucket_algo_ = pick.algo;
  schedule_ = tuner_.build(coll::CollOp::kAllReduce, pick.algo, ids,
                           config_.iteration.bucket_bytes, rate, reconfig);
  const BucketCosts costs = schedule_bucket_costs(schedule_);
  first_bucket_comm_ = costs.first;
  steady_bucket_comm_ = costs.steady;
}

std::vector<fabric::GlobalTile> TrainingRun::free_tiles() const {
  std::vector<fabric::GlobalTile> out;
  for (fabric::WaferId wafer = 0; wafer < fab_.wafer_count(); ++wafer) {
    const auto& w = fab_.wafer(wafer);
    for (fabric::TileId t = 0; t < w.tile_count(); ++t) {
      if (w.tile(t).tx_used() == 0 && w.tile(t).rx_used() == 0) {
        out.push_back({wafer, t});
      }
    }
  }
  return out;
}

routing::EscalationOptions TrainingRun::base_options() const {
  routing::EscalationOptions opts;
  opts.wavelengths = config_.wavelengths;
  opts.cache = &cache_;
  opts.validate = [this](const fabric::Fabric& f, fabric::CircuitId id) {
    return monitor_.diagnose(f, cumulative_, id).health ==
           fault::CircuitHealth::kHealthy;
  };
  return opts;
}

Duration TrainingRun::shrink_ring(std::size_t i, RunReport& report) {
  Duration dur = Duration::zero();
  const std::size_t n = members_.size();
  std::size_t pe = (i + n - 1) % n;
  fab_.disconnect(circuits_[pe]);
  fab_.disconnect(circuits_[i]);  // may already be gone (ladder fell through)
  members_.erase(members_.begin() + static_cast<std::ptrdiff_t>(i));
  circuits_.erase(circuits_.begin() + static_cast<std::ptrdiff_t>(i));
  ++report.elastic_shrinks;
  if (pe > i) --pe;
  // Bridge the survivors around the gap, degrading to a single wavelength
  // if the full-width circuit will not place; if even that fails (the fault
  // quarantined everything between them), drop the unreachable neighbor too
  // and keep going — the elastic contract is that the run continues on
  // whatever ring still lights up.
  while (members_.size() >= 2) {
    const fabric::GlobalTile from = members_[pe];
    const fabric::GlobalTile to = members_[(pe + 1) % members_.size()];
    Result<fabric::CircuitId> placed = fab_.connect(from, to, config_.wavelengths);
    if (!placed) placed = fab_.connect(from, to, 1);
    if (placed) {
      circuits_[pe] = placed.value();
      const fabric::Circuit* c = fab_.circuit(placed.value());
      dur += fab_.reconfig().batch_latency(c->mzis_to_program());
      return dur;
    }
    const std::size_t drop = (pe + 1) % members_.size();
    fab_.disconnect(circuits_[drop]);
    members_.erase(members_.begin() + static_cast<std::ptrdiff_t>(drop));
    circuits_.erase(circuits_.begin() + static_cast<std::ptrdiff_t>(drop));
    if (drop < pe) --pe;
    ++report.elastic_shrinks;
  }
  return dur;  // ring collapsed; run() stops at the next loop check
}

Duration TrainingRun::recover_dead_member(std::size_t i, RunReport& report,
                                          bool& removed, bool assume_dead) {
  Duration dur = Duration::zero();
  const std::size_t n = members_.size();
  const std::size_t pe = (i + n - 1) % n;
  const fabric::CircuitId in_id = circuits_[pe];
  const fabric::CircuitId out_id = circuits_[i];

  // The in-edge (prev -> dead) picks the spare: respare re-anchors it as
  // prev -> spare (plus the reverse circuit, which the ring does not use).
  routing::EscalationOptions opts = base_options();
  opts.spare_candidates = free_tiles();
  const auto diag_in = monitor_.diagnose(fab_, cumulative_, in_id);
  routing::DegradedCircuit victim_in = fault::to_degraded(diag_in);
  // Misclassification path: the diagnosis is healthy (the member only
  // flaps), but the controller has decided it is dead — force the flags so
  // the ladder anchors the respare on the surviving neighbor, exactly as it
  // would for a genuinely dead chip.
  if (assume_dead) victim_in.dst_dead = true;
  const RecoveryResult res_in =
      drive_recovery(fab_, victim_in, config_.recovery, opts);
  dur += res_in.total();
  if (res_in.recovered && res_in.rung == routing::RepairRung::kRespare &&
      res_in.circuits.size() == 2) {
    const fabric::GlobalTile spare = fab_.circuit(res_in.circuits[0])->dst;
    fab_.disconnect(res_in.circuits[1]);
    circuits_[pe] = res_in.circuits[0];
    ++report.recovered_by[routing::rung_index(routing::RepairRung::kRespare)];

    // The out-edge (dead -> next) must land on the same spare.
    routing::EscalationOptions opts_out = base_options();
    opts_out.spare_candidates = {spare};
    const auto diag_out = monitor_.diagnose(fab_, cumulative_, out_id);
    routing::DegradedCircuit victim_out = fault::to_degraded(diag_out);
    if (assume_dead) victim_out.src_dead = true;
    const RecoveryResult res_out =
        drive_recovery(fab_, victim_out, config_.recovery, opts_out);
    dur += res_out.total();
    if (res_out.recovered && res_out.rung == routing::RepairRung::kRespare &&
        res_out.circuits.size() == 2) {
      fab_.disconnect(res_out.circuits[0]);
      circuits_[i] = res_out.circuits[1];
      members_[i] = spare;
      ++report.recovered_by[routing::rung_index(routing::RepairRung::kRespare)];
      removed = false;
      return dur;
    }
  }
  // Respare exhausted (no spare placeable, or the pair could not complete):
  // elastic degradation instead of migration.
  dur += shrink_ring(i, report);
  removed = true;
  return dur;
}

TrainingRun::EventOutcome TrainingRun::play_gray_episode(Duration t0, Rng& gray_stream,
                                                         RunReport& report) {
  EventOutcome out;
  // The flapping component: the source transceiver of a uniformly chosen
  // ring edge (the same spatial granularity the permanent injector uses).
  const std::size_t e = gray_stream.uniform_index(circuits_.size());
  const fabric::Circuit* c = fab_.circuit(circuits_[e]);
  if (c == nullptr || c->segments.empty() || c->segments.front().hops.empty()) {
    return out;  // collapsed edge; nothing to flap
  }
  const fabric::GlobalTile tile{c->segments.front().wafer, c->segments.front().from};
  const fabric::Direction dir = c->segments.front().hops.front();
  const fault::GrayEpisode ep =
      injector_.sample_gray_at(gray_stream, config_.gray, tile, dir);
  const std::uint64_t key = fault::gray_component_key(tile, dir);
  const bool photonic = config_.policy == RunPolicy::kPhotonicRepair;

  for (std::size_t k = 0; k < ep.trace.dips(); ++k) {
    const Duration t_dip = t0 + Duration::seconds(ep.trace.dip_start(k));
    ++report.flap_transitions;
    // The link is dark for the dip either way: the ring stalls.
    const Duration dark = Duration::seconds(ep.trace.dip_seconds(k));
    out.recovery += dark;
    report.flap_stall += dark;
    // The electrical baseline has no optical controller to thrash; it just
    // rides the dips out (gray-vs-gray comparisons are photonic-only).
    if (!photonic) continue;
    gray_now_ = t_dip;
    if (config_.gray_hysteresis) {
      const fault::LinkState st = damper_.record_flap(key, t_dip);
      if (st == fault::LinkState::kQuarantined) continue;  // ride it out
    }
    // Repair-on-transition: the climb runs entirely inside the
    // milliseconds-long dip, so every microseconds-long programming attempt
    // fails transiently — the ladder thrashes and rolls back.
    routing::DegradedCircuit victim;
    victim.id = circuits_[e];
    victim.hard_down = true;
    routing::EscalationOptions opts = base_options();
    opts.transient_failure = [](routing::RepairRung, std::uint32_t) { return true; };
    const RecoveryResult res = drive_recovery(fab_, victim, config_.recovery, opts);
    ++report.flap_repairs;
    report.transient_repair_failures += res.transient_failures;
    out.recovery += res.total();
    if (!config_.gray_hysteresis) {
      const std::uint32_t seen = ++dips_seen_[key];
      if (seen >= config_.naive_misclassify_after) {
        // The naive controller has watched the same component "fail"
        // repeatedly and declares the chip dead: a full respare with state
        // loss — the gray failure priced as fail-stop.
        ++report.misclassifications;
        bool removed = false;
        out.recovery += recover_dead_member(e, report, removed, /*assume_dead=*/true);
        out.state_loss = true;
        dips_seen_.erase(key);
        break;  // the flapper left the ring; the remaining dips are latent
      }
    }
  }

  // BER-burst rider: excess loss below the health margin, so diagnosis
  // stays healthy while delivered goodput drops to ber_goodput_factor for
  // the burst.  Both arms pay it identically — only end-to-end accounting
  // sees a fabric that lies.
  if (ep.ber_burst) {
    ++report.ber_bursts;
    const double factor = std::max(ep.ber_goodput_factor, 0.05);
    const Duration extra = Duration::seconds(ep.ber_seconds * (1.0 / factor - 1.0));
    report.ber_slowdown += extra;
    out.recovery += extra;
  }
  return out;
}

TrainingRun::EventOutcome TrainingRun::recover_photonic(RunReport& report) {
  EventOutcome out;

  // Pass 1 — dead members: replace with a spare (respare pair) or shrink.
  // Either way the member's device state is gone: rollback.
  std::size_t i = 0;
  while (i < members_.size() && members_.size() >= 2) {
    if (!cumulative_.chip_dead(members_[i])) {
      ++i;
      continue;
    }
    bool removed = false;
    out.recovery += recover_dead_member(i, report, removed);
    out.state_loss = true;
    if (!removed) ++i;
  }

  // Pass 2 — surviving-but-degraded edges: retune/reroute in place (pure
  // stall, no state loss).  No spare candidates here: a live-endpoint
  // respare would silently move the member's identity.  If the optical
  // rungs are exhausted, the edge's source member is dropped and the ring
  // bridges around it.  Each repair can change the topology, so rescan from
  // the top after every action, bounded by the ring size.
  std::size_t guard = 4 * (members_.size() + 1);
  bool progress = true;
  while (progress && guard-- > 0 && members_.size() >= 2) {
    progress = false;
    for (std::size_t e = 0; e < circuits_.size(); ++e) {
      const auto diag = monitor_.diagnose(fab_, cumulative_, circuits_[e]);
      if (diag.health == fault::CircuitHealth::kHealthy) continue;
      const RecoveryResult res = drive_recovery(fab_, fault::to_degraded(diag),
                                                config_.recovery, base_options());
      out.recovery += res.total();
      if (res.recovered) {
        ++report.recovered_by[routing::rung_index(res.rung)];
        if (!res.circuits.empty()) circuits_[e] = res.circuits[0];
      } else {
        out.recovery += shrink_ring(e, report);
        out.state_loss = true;
      }
      progress = true;
      break;
    }
  }
  return out;
}

RunReport TrainingRun::run() {
  RunReport report;
  report.policy = config_.policy;
  report.ring_size_initial = static_cast<std::uint32_t>(members_.size());

  // Healthy baseline under this policy's own interconnect: the goodput
  // denominator, so the metric isolates availability, not raw bandwidth.
  const auto healthy =
      core::overlap_buckets(config_.iteration, first_bucket_comm_, steady_bucket_comm_);
  report.ideal_time =
      healthy.report.iteration * static_cast<double>(config_.iterations);

  // Fault arrivals: Poisson over the initial ring's chips, one serial
  // stream; fault contents come from a second stream so adding draws to one
  // never perturbs the other.
  const double rate_per_sec = static_cast<double>(members_.size()) /
                              (config_.mtbf_hours * 3600.0);
  Rng arrivals{util::task_seed(config_.seed, 0)};
  Rng fault_stream{util::task_seed(config_.seed, 1)};
  const bool scripted = !config_.script.empty();
  std::size_t script_idx = 0;
  Duration next_fault = scripted
                            ? config_.script.front().at
                            : Duration::seconds(arrivals.exponential(rate_per_sec));

  // Gray (flap) episodes: an independent Poisson process on its own pair of
  // streams, so enabling the gray layer never perturbs the permanent fault
  // timeline (and flap_rate_per_hour == 0 reproduces it bit-identically).
  const bool gray_on = config_.flap_rate_per_hour > 0.0;
  const double gray_rate_per_sec = static_cast<double>(members_.size()) *
                                   config_.flap_rate_per_hour / 3600.0;
  Rng gray_arrivals{util::task_seed(config_.seed, 4)};
  Rng gray_stream{util::task_seed(config_.seed, 5)};
  Duration next_gray =
      gray_on ? Duration::seconds(gray_arrivals.exponential(gray_rate_per_sec))
              : Duration::infinite();
  if (gray_on && config_.gray_hysteresis &&
      config_.policy == RunPolicy::kPhotonicRepair) {
    // Quarantined components are unusable for *new* routes without touching
    // the fabric epoch: the cache's memoized plans survive the quarantine
    // and are warm again the moment the hold lifts.
    cache_.set_quarantine([this](fabric::GlobalTile t, fabric::Direction d) {
      return damper_.state(fault::gray_component_key(t, d), gray_now_) ==
             fault::LinkState::kQuarantined;
    });
  }

  Duration clock = Duration::zero();
  Duration last_checkpoint = Duration::zero();
  std::uint32_t completed = 0;

  while (completed < config_.iterations && members_.size() >= 2) {
    const auto timeline = core::overlap_buckets(config_.iteration, first_bucket_comm_,
                                                steady_bucket_comm_);
    const Duration iter_dur = timeline.report.iteration;
    const bool fault_pending = !scripted || script_idx < config_.script.size();
    const Duration t_fault =
        fault_pending ? std::max(next_fault, clock) : Duration::infinite();
    const Duration t_gray = std::max(next_gray, clock);
    const bool gray_first = t_gray < t_fault;
    const Duration t_f = gray_first ? t_gray : t_fault;
    if (t_f >= clock + iter_dur) {
      clock += iter_dur;
      ++completed;
      if (clock - last_checkpoint >= config_.checkpoint_interval) {
        last_checkpoint = clock;
      }
      continue;
    }

    // An event strikes inside this iteration.
    const Duration offset = t_f - clock;
    EventOutcome outcome;
    if (gray_first) {
      ++report.flap_episodes;
      gray_now_ = t_f;
      outcome = play_gray_episode(t_f, gray_stream, report);
    } else {
      const bool mid_collective = timeline.collective_in_flight(offset);
      std::vector<fault::Fault> faults;
      if (scripted) {
        faults = config_.script[script_idx].faults;
        ++script_idx;
      } else {
        faults = injector_.sample(fault_stream);
      }
      ++report.fault_events;
      report.faults_injected += faults.size();
      if (mid_collective) ++report.mid_collective_faults;

      fault::FaultSet ev;
      ev.add_all(faults);
      ev.apply_to(fab_, config_.model.quarantine_threshold);
      applied_.push_back(std::move(ev));
      cumulative_.add_all(faults);

      bool any_unhealthy = false;
      for (const fabric::CircuitId id : circuits_) {
        if (monitor_.diagnose(fab_, cumulative_, id).health !=
            fault::CircuitHealth::kHealthy) {
          any_unhealthy = true;
          break;
        }
      }
      if (!any_unhealthy) {
        // Latent fault: no ring circuit degraded, training never notices.
        next_fault = scripted
                         ? (script_idx < config_.script.size()
                                ? config_.script[script_idx].at
                                : Duration::infinite())
                         : t_f + Duration::seconds(arrivals.exponential(rate_per_sec));
        continue;
      }
      ++report.detections;
      gray_now_ = t_f;  // keep the quarantine view current for the repairs

      if (config_.policy == RunPolicy::kElectricalMigration) {
        // Rack-granularity baseline: any degraded circuit drains the job and
        // restarts it on fresh hardware — which also clears the fault
        // overlay.
        ++report.migrations;
        outcome.recovery = config_.migration_latency;
        outcome.state_loss = true;
        for (auto it = applied_.rbegin(); it != applied_.rend(); ++it) {
          it->revert(fab_);
        }
        applied_.clear();
        cumulative_ = fault::FaultSet{};
      } else {
        outcome = recover_photonic(report);
      }
    }

    // Heartbeat detection: noticed at the first tick at or after the
    // strike, diagnosed detection_latency later (gray episodes charge it
    // identically in both arms — the controller still has to look).
    const double hb = config_.recovery.heartbeat_interval.to_seconds();
    const Duration detect_done =
        Duration::seconds(std::ceil(t_f.to_seconds() / hb) * hb) +
        config_.recovery.detection_latency;
    report.lost.detection += detect_done - t_f;
    report.lost.recovery += outcome.recovery;

    Duration resume = detect_done + outcome.recovery;
    if (outcome.state_loss) {
      // Rollback: everything since the checkpoint is replayed.  Progress is
      // not rewound; the replay is charged as wall clock instead, which is
      // the same goodput arithmetic without re-simulating the iterations.
      const Duration redo = t_f - last_checkpoint;
      report.lost.redo += redo;
      ++report.rollbacks;
      resume += redo;
      clock = resume;  // the interrupted iteration restarts under new costs
    } else {
      // Pure stall (retune/reroute/dips): the interrupted iteration picks up
      // where it left off and finishes its remaining schedule.
      clock = resume + (iter_dur - offset);
      ++completed;
      if (clock - last_checkpoint >= config_.checkpoint_interval) {
        last_checkpoint = clock;
      }
    }
    report.recover_seconds.push_back((resume - t_f).to_seconds());

    if (config_.policy == RunPolicy::kPhotonicRepair) rebuild_costs();

    if (gray_first) {
      next_gray = clock + Duration::seconds(gray_arrivals.exponential(gray_rate_per_sec));
    } else {
      next_fault = scripted
                       ? (script_idx < config_.script.size()
                              ? config_.script[script_idx].at
                              : Duration::infinite())
                       : clock + Duration::seconds(arrivals.exponential(rate_per_sec));
    }
  }

  report.iterations_completed = completed;
  report.ring_size_final = static_cast<std::uint32_t>(members_.size());
  report.wall_clock = clock;
  report.suppressed_repairs = damper_.stats().suppressed_repairs;
  report.quarantines = damper_.stats().quarantines;
  report.probations = damper_.stats().probations;
  report.relapses = damper_.stats().relapses;
  return report;
}

ResilienceSweepReport run_resilience_sweep(const ResilienceSweepConfig& config) {
  const std::size_t trials = config.trials;
  const std::size_t per_point = trials * 2;
  const std::size_t total = config.mtbf_points.size() * per_point;

  std::vector<RunReport> reports(total);
  const unsigned threads =
      config.threads != 0 ? config.threads : util::env_threads();
  std::optional<util::ThreadPool> local;
  util::ThreadPool& pool =
      threads == 0 ? util::ThreadPool::shared() : local.emplace(threads);
  pool.run(total, [&](std::size_t idx, unsigned) {
    const std::size_t p = idx / per_point;
    const std::size_t rem = idx % per_point;
    const bool photonic = rem < trials;
    const std::size_t trial = photonic ? rem : rem - trials;
    RunConfig rc = config.base;
    rc.mtbf_hours = config.mtbf_points[p];
    rc.policy = photonic ? RunPolicy::kPhotonicRepair
                         : RunPolicy::kElectricalMigration;
    // Both policies of a (point, trial) pair share a seed, so they face the
    // identical fault timeline — a paired comparison.
    rc.seed = util::task_seed(config.base.seed, p * trials + trial);
    TrainingRun run{rc};
    reports[idx] = run.run();
  });

  // Fold in ascending task order: bit-identical at any thread count.
  ResilienceSweepReport out;
  for (std::size_t p = 0; p < config.mtbf_points.size(); ++p) {
    for (int pol = 0; pol < 2; ++pol) {
      MtbfPointReport pt;
      pt.mtbf_hours = config.mtbf_points[p];
      pt.policy = pol == 0 ? RunPolicy::kPhotonicRepair
                           : RunPolicy::kElectricalMigration;
      pt.trials = config.trials;
      std::vector<double> recover_all;
      for (std::size_t t = 0; t < trials; ++t) {
        const RunReport& r =
            reports[p * per_point + static_cast<std::size_t>(pol) * trials + t];
        const double g = r.goodput();
        pt.goodput_mean += g;
        pt.goodput_min = std::min(pt.goodput_min, g);
        pt.goodput_max = std::max(pt.goodput_max, g);
        pt.lost_redo_seconds += r.lost.redo.to_seconds();
        pt.lost_detection_seconds += r.lost.detection.to_seconds();
        pt.lost_recovery_seconds += r.lost.recovery.to_seconds();
        pt.fault_events += r.fault_events;
        pt.detections += r.detections;
        pt.rollbacks += r.rollbacks;
        pt.elastic_shrinks += r.elastic_shrinks;
        pt.migrations += r.migrations;
        pt.transient_repair_failures += r.transient_repair_failures;
        pt.suppressed_repairs += r.suppressed_repairs;
        pt.quarantines += r.quarantines;
        for (std::size_t k = 0; k < routing::kRepairRungCount; ++k) {
          pt.recovered_by[k] += r.recovered_by[k];
        }
        recover_all.insert(recover_all.end(), r.recover_seconds.begin(),
                           r.recover_seconds.end());
      }
      const double n = static_cast<double>(trials);
      pt.goodput_mean /= n;
      pt.lost_redo_seconds /= n;
      pt.lost_detection_seconds /= n;
      pt.lost_recovery_seconds /= n;
      if (!recover_all.empty()) {
        pt.recover_p50_seconds = percentile(recover_all, 50.0);
        pt.recover_p99_seconds = percentile(recover_all, 99.0);
      }
      out.points.push_back(pt);
    }
  }
  return out;
}

std::uint64_t GraySweepReport::digest() const {
  std::uint64_t h = 0;
  const auto mix_double = [&](double v) {
    h = fabric::hash_mix(h, std::bit_cast<std::uint64_t>(v));
  };
  for (const GrayPointReport& pt : points) {
    mix_double(pt.flap_rate_per_hour);
    h = fabric::hash_mix(h, pt.hysteresis ? 1u : 0u);
    h = fabric::hash_mix(h, pt.trials);
    mix_double(pt.goodput_mean);
    mix_double(pt.goodput_min);
    mix_double(pt.goodput_max);
    h = fabric::hash_mix(h, pt.flap_episodes);
    h = fabric::hash_mix(h, pt.flap_transitions);
    h = fabric::hash_mix(h, pt.flap_repairs);
    h = fabric::hash_mix(h, pt.suppressed_repairs);
    h = fabric::hash_mix(h, pt.quarantines);
    h = fabric::hash_mix(h, pt.probations);
    h = fabric::hash_mix(h, pt.relapses);
    h = fabric::hash_mix(h, pt.misclassifications);
    h = fabric::hash_mix(h, pt.rollbacks);
    h = fabric::hash_mix(h, pt.transient_repair_failures);
    h = fabric::hash_mix(h, pt.ber_bursts);
    mix_double(pt.flap_stall_seconds);
    mix_double(pt.ber_slowdown_seconds);
  }
  return h;
}

GraySweepReport run_gray_sweep(const GraySweepConfig& config) {
  const std::size_t trials = config.trials;
  const std::size_t per_point = trials * 2;  // hysteresis arm + naive arm
  const std::size_t total = config.flap_rates_per_hour.size() * per_point;

  std::vector<RunReport> reports(total);
  const unsigned threads =
      config.threads != 0 ? config.threads : util::env_threads();
  std::optional<util::ThreadPool> local;
  util::ThreadPool& pool =
      threads == 0 ? util::ThreadPool::shared() : local.emplace(threads);
  pool.run(total, [&](std::size_t idx, unsigned) {
    const std::size_t p = idx / per_point;
    const std::size_t rem = idx % per_point;
    const bool hysteresis = rem < trials;
    const std::size_t trial = hysteresis ? rem : rem - trials;
    RunConfig rc = config.base;
    rc.policy = RunPolicy::kPhotonicRepair;
    rc.flap_rate_per_hour = config.flap_rates_per_hour[p];
    rc.gray_hysteresis = hysteresis;
    // Both arms of a (rate, trial) pair share a seed, so they face the
    // identical episode timeline — a paired comparison.
    rc.seed = util::task_seed(config.base.seed, p * trials + trial);
    TrainingRun run{rc};
    reports[idx] = run.run();
  });

  // Fold in ascending task order: bit-identical at any thread count.
  GraySweepReport out;
  for (std::size_t p = 0; p < config.flap_rates_per_hour.size(); ++p) {
    for (int arm = 0; arm < 2; ++arm) {
      GrayPointReport pt;
      pt.flap_rate_per_hour = config.flap_rates_per_hour[p];
      pt.hysteresis = arm == 0;
      pt.trials = config.trials;
      for (std::size_t t = 0; t < trials; ++t) {
        const RunReport& r =
            reports[p * per_point + static_cast<std::size_t>(arm) * trials + t];
        const double g = r.goodput();
        pt.goodput_mean += g;
        pt.goodput_min = std::min(pt.goodput_min, g);
        pt.goodput_max = std::max(pt.goodput_max, g);
        pt.flap_episodes += r.flap_episodes;
        pt.flap_transitions += r.flap_transitions;
        pt.flap_repairs += r.flap_repairs;
        pt.suppressed_repairs += r.suppressed_repairs;
        pt.quarantines += r.quarantines;
        pt.probations += r.probations;
        pt.relapses += r.relapses;
        pt.misclassifications += r.misclassifications;
        pt.rollbacks += r.rollbacks;
        pt.transient_repair_failures += r.transient_repair_failures;
        pt.ber_bursts += r.ber_bursts;
        pt.flap_stall_seconds += r.flap_stall.to_seconds();
        pt.ber_slowdown_seconds += r.ber_slowdown.to_seconds();
      }
      pt.goodput_mean /= static_cast<double>(trials);
      out.points.push_back(pt);
    }
  }
  return out;
}

}  // namespace lp::runtime
