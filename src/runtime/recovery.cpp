#include "runtime/recovery.hpp"

namespace lp::runtime {

RecoveryResult drive_recovery(fabric::Fabric& fab,
                              const routing::DegradedCircuit& victim,
                              const RecoveryPolicy& policy,
                              routing::EscalationOptions base) {
  RecoveryResult res;
  base.retries_per_rung = policy.retries_per_rung;
  // Strictly optical: rung 4 never succeeds and rung 5 is a free sentinel —
  // landing there means "out of optical ideas", and the caller owns what
  // that costs (elastic shrink or a migration charge).
  base.electrical_feasible = false;
  base.migration_latency = Duration::zero();

  Duration budget = policy.initial_budget;
  Duration backoff = policy.backoff_base;
  for (std::uint32_t attempt = 0; attempt <= policy.max_attempts; ++attempt) {
    routing::EscalationOptions opts = base;
    // The last climb is unbounded so the loop always settles the victim.
    opts.budget = attempt == policy.max_attempts ? Duration::zero() : budget;
    const routing::EscalationOutcome out = routing::escalate_repair(fab, victim, opts);
    ++res.climbs;
    for (std::size_t k = 0; k < routing::kRepairRungCount; ++k) {
      res.rung_attempts[k] += out.attempts[k];
    }
    res.repair_latency += out.latency;
    if (out.recovered) {
      res.rung = out.rung;
      if (out.rung == routing::RepairRung::kRackMigration) {
        res.fell_through = true;
      } else {
        res.recovered = true;
        res.circuits = out.circuits;
      }
      return res;
    }
    if (!out.budget_exhausted) {
      res.plan_failure = true;  // victim.id names no established circuit
      return res;
    }
    res.backoff_latency += backoff;
    budget = budget * policy.backoff_factor;
    backoff = backoff * policy.backoff_factor;
  }
  return res;  // unreachable: the unbounded climb always returns above
}

}  // namespace lp::runtime
