#include "runtime/recovery.hpp"

#include "util/parallel.hpp"

namespace lp::runtime {

RecoveryResult drive_recovery(fabric::Fabric& fab,
                              const routing::DegradedCircuit& victim,
                              const RecoveryPolicy& policy,
                              routing::EscalationOptions base) {
  RecoveryResult res;
  base.retries_per_rung = policy.retries_per_rung;
  // Strictly optical: rung 4 never succeeds and rung 5 is a free sentinel —
  // landing there means "out of optical ideas", and the caller owns what
  // that costs (elastic shrink or a migration charge).
  base.electrical_feasible = false;
  base.migration_latency = Duration::zero();
  base.rung_timeout = policy.rung_timeout;

  Duration budget = policy.initial_budget;
  Duration backoff = policy.backoff_base;
  for (std::uint32_t attempt = 0; attempt <= policy.max_attempts; ++attempt) {
    routing::EscalationOptions opts = base;
    // The last climb is unbounded so the loop always settles the victim.
    opts.budget = attempt == policy.max_attempts ? Duration::zero() : budget;
    opts.backoff = policy.rung_backoff;
    // Distinct jitter stream per climb: retries of climb N never reuse the
    // waits of climb N-1, yet every rerun charges the same waits.
    opts.backoff.seed = util::task_seed(policy.rung_backoff.seed, attempt);
    const routing::EscalationOutcome out = routing::escalate_repair(fab, victim, opts);
    ++res.climbs;
    for (std::size_t k = 0; k < routing::kRepairRungCount; ++k) {
      res.rung_attempts[k] += out.attempts[k];
    }
    res.repair_latency += out.latency;
    res.transient_failures += out.transient_failures;
    if (out.recovered) {
      res.rung = out.rung;
      if (out.rung == routing::RepairRung::kRackMigration) {
        res.fell_through = true;
      } else {
        res.recovered = true;
        res.circuits = out.circuits;
      }
      return res;
    }
    if (out.transient_failed && attempt == policy.max_attempts) {
      // Even the unbounded climb ended transiently: the victim is still
      // established — report it so the caller can ride out the disturbance.
      res.transient_failed = true;
      return res;
    }
    if (!out.budget_exhausted && !out.transient_failed) {
      res.plan_failure = true;  // victim.id names no established circuit
      return res;
    }
    // Budget exhaustion and transient failure back off the same way: the
    // fabric is untouched, so a later climb with more budget (or past the
    // disturbance) can still succeed.
    res.backoff_latency += backoff;
    budget = budget * policy.backoff_factor;
    backoff = backoff * policy.backoff_factor;
  }
  return res;  // unreachable: the unbounded climb always returns above
}

}  // namespace lp::runtime
