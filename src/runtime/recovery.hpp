// Bounded-timeout recovery driver for the repair ladder.
//
// The runtime layer cannot hand routing::escalate_repair an unlimited clock:
// a training run stalls while the controller climbs, so each climb gets a
// wall-clock budget and budget exhaustion triggers exponential backoff — a
// bigger budget on the next try — rather than an immediate fall-through to
// rack migration.  drive_recovery() owns that retry loop.  It is strictly
// optical: it forces the electrical-detour rung infeasible and treats a
// rung-5 landing as "the ladder is out of optical ideas" (fell_through),
// which the caller resolves with elastic degradation (training_run) instead
// of a migration charge.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "routing/repair.hpp"
#include "util/units.hpp"

namespace lp::runtime {

struct RecoveryPolicy {
  /// Liveness heartbeat period: a fault is noticed at the first heartbeat
  /// tick at or after it strikes.
  Duration heartbeat_interval{Duration::millis(5.0)};
  /// Controller time from the missed/alarming heartbeat to a diagnosis the
  /// ladder can act on.
  Duration detection_latency{Duration::micros(100.0)};
  /// Wall-clock budget of the first climb.
  Duration initial_budget{Duration::micros(50.0)};
  /// Budget (and backoff wait) multiplier between climbs.
  double backoff_factor{4.0};
  /// Idle wait charged between a budget-exhausted climb and the next one.
  Duration backoff_base{Duration::micros(25.0)};
  /// Bounded climbs before the final unbounded one.
  std::uint32_t max_attempts{3};
  /// Per-rung retry bound handed to the ladder.
  std::uint32_t retries_per_rung{2};
  /// Intra-rung retry wait schedule handed to the ladder.  Each climb gets
  /// its own deterministic jitter stream (seed salted with the climb index
  /// via util::task_seed), so retries de-synchronize across climbs without
  /// any nondeterminism.  Default: no intra-rung waits (pre-gray behavior).
  routing::RetryBackoff rung_backoff{};
  /// Per-rung wall-clock cap handed to the ladder; zero means none.
  Duration rung_timeout{Duration::zero()};
};

struct RecoveryResult {
  /// The victim's traffic is back on optical circuits (rung 1-3).
  bool recovered{false};
  /// Every optical rung was exhausted (the ladder landed on rung 5, which
  /// drive_recovery charges nothing for); the victim circuit is gone and the
  /// caller must degrade or migrate.
  bool fell_through{false};
  /// escalate_repair could not even start (victim id names no circuit).
  bool plan_failure{false};
  /// Even the final unbounded climb ended in transient failures (gray
  /// faults; see EscalationOptions::transient_failure).  The victim circuit
  /// is still established — the caller should wait out the disturbance and
  /// drive recovery again rather than degrade.
  bool transient_failed{false};
  /// Transiently failed ladder attempts summed over all climbs.
  std::uint32_t transient_failures{0};
  routing::RepairRung rung{routing::RepairRung::kRackMigration};
  /// Circuits carrying the traffic after an optical recovery (see
  /// EscalationOutcome::circuits).
  std::vector<fabric::CircuitId> circuits;
  /// Climbs driven, including the successful/final one.
  std::uint32_t climbs{0};
  /// Ladder attempts per rung summed over all climbs.
  std::array<std::uint32_t, routing::kRepairRungCount> rung_attempts{};
  /// Wall clock spent inside the ladder (probes + programming + settles,
  /// intra-rung backoff waits included).
  Duration repair_latency{Duration::zero()};
  /// Wall clock spent waiting *between* climbs (the ladder's own intra-rung
  /// waits are inside repair_latency).
  Duration backoff_latency{Duration::zero()};

  [[nodiscard]] Duration total() const { return repair_latency + backoff_latency; }
};

/// Drives escalate_repair for one victim under the policy's bounded-timeout
/// schedule: climb with initial_budget, and on budget exhaustion wait
/// backoff, multiply both by backoff_factor, and climb again (the fabric is
/// untouched by an exhausted climb, so a retry re-probes the same rungs —
/// that wall clock is charged).  After max_attempts bounded climbs one
/// unbounded climb settles the matter.  `base` carries the caller's route
/// options, spare candidates, and validate hook; its budget, retries, and
/// electrical/migration knobs are overwritten here.
[[nodiscard]] RecoveryResult drive_recovery(fabric::Fabric& fab,
                                            const routing::DegradedCircuit& victim,
                                            const RecoveryPolicy& policy,
                                            routing::EscalationOptions base = {});

}  // namespace lp::runtime
