// Event-driven multi-iteration training-run simulator.
//
// core/training_sim prices one iteration; fault/ injects faults and
// routing/repair fixes circuits — but nothing connects them in time.  A
// TrainingRun does: it advances the bucket-overlap iteration model through
// a deterministic fault timeline drawn from fault::FaultInjector, so faults
// strike at arbitrary points inside an iteration's compute/communication
// overlap, and plays out the full job-level response:
//
//   fault -> heartbeat detection (next tick + detection latency)
//         -> recovery (policy-dependent, wall clock charged)
//         -> rollback accounting when state was lost
//         -> resume, possibly degraded.
//
// Two recovery policies give the paper's §4.2 comparison at job level:
//
//   * kPhotonicRepair — each degraded ring circuit climbs the repair ladder
//     under runtime::drive_recovery's bounded-timeout/backoff schedule.
//     Retune/reroute are pure stalls; respare replaces the dead member with
//     a spare chip (state restore = rollback).  When the optical rungs are
//     exhausted the run does NOT migrate: the ring shrinks elastically to
//     the survivors (coll::build_elastic_ring_schedule) and continues at
//     reduced bandwidth.
//   * kElectricalMigration — the [60] baseline: any fault that degrades a
//     ring circuit rolls back to the checkpoint and migrates the job at
//     rack granularity, paying migration_latency per event.
//
// Determinism contract: a single run is serial and every draw comes from
// Rng{task_seed(config.seed, stream)} — the report is a pure function of
// the config.  run_resilience_sweep() parallelizes (mtbf x policy x trial)
// tasks with per-task seeds and folds results in ascending task order, so
// the sweep report is bit-identical at any thread count (LIGHTPATH_THREADS
// included).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "collective/autotuner.hpp"
#include "collective/cost_model.hpp"
#include "collective/schedule.hpp"
#include "core/training_sim.hpp"
#include "fault/fault.hpp"
#include "fault/gray.hpp"
#include "fault/health.hpp"
#include "lightpath/fabric.hpp"
#include "routing/plan_cache.hpp"
#include "routing/repair.hpp"
#include "runtime/recovery.hpp"
#include "util/units.hpp"

namespace lp::runtime {

enum class RunPolicy : std::uint8_t {
  kPhotonicRepair = 0,
  kElectricalMigration = 1,
};

[[nodiscard]] constexpr const char* to_string(RunPolicy p) {
  switch (p) {
    case RunPolicy::kPhotonicRepair: return "photonic repair";
    case RunPolicy::kElectricalMigration: return "electrical migration";
  }
  return "?";
}

/// A fault injected at a scripted wall-clock offset instead of drawn from
/// the Poisson process — the deterministic probe tests and demos use (e.g.
/// "kill this chip mid-collective of iteration 3").
struct ScriptedFault {
  Duration at{Duration::zero()};
  std::vector<fault::Fault> faults;
};

struct RunConfig {
  RunPolicy policy{RunPolicy::kPhotonicRepair};
  core::TrainingConfig iteration{
      /*buckets=*/8, /*bucket_bytes=*/DataSize::mib(64),
      /*compute_per_bucket=*/Duration::millis(25.0)};
  std::uint32_t iterations{2000};
  /// Checkpoints are taken (free of charge) at the first iteration boundary
  /// once this much wall clock has passed since the previous one; rollback
  /// replays from there.
  Duration checkpoint_interval{Duration::seconds(30.0)};
  /// Per-chip component MTBF, *accelerated* so a minutes-long simulated run
  /// sees faults at all (real MTBFs are ~1e4 hours against runs of ~0.1
  /// simulated hours; the photonic/electrical goodput ratio is the metric,
  /// not absolute availability).
  double mtbf_hours{1.0};
  std::uint64_t seed{0x5eed};
  /// Ring members per wafer (two wafers; tiles beyond the ring are the
  /// spare pool respare draws from).
  std::uint32_t ring_tiles_per_wafer{28};
  /// Wavelengths per ring circuit.
  std::uint32_t wavelengths{2};
  fault::FaultModelParams model{};
  fault::HealthMonitorParams health{};
  RecoveryPolicy recovery{};
  coll::CostParams cost{};
  /// Rack-granularity job migration charge (kElectricalMigration only).
  Duration migration_latency{Duration::seconds(600.0)};
  /// Non-empty replaces the Poisson fault timeline entirely (entries fire
  /// in order; an entry scheduled in the past fires immediately).
  std::vector<ScriptedFault> script;

  // -- Gray-failure layer (fault/gray.hpp). ---------------------------------
  /// Expected gray (flap) episodes per chip-hour, Poisson over the ring
  /// members exactly like mtbf_hours.  Zero disables the layer entirely:
  /// the pre-gray timeline and report are bit-identical.
  double flap_rate_per_hour{0.0};
  fault::GrayModelParams gray{};
  /// true: flaps feed a FlapDamper; quarantined components ride out their
  /// dips (repairs suppressed, plan-cache quarantine view installed) and
  /// are never misclassified.  false: the naive baseline — every observed
  /// down-transition climbs the repair ladder, and after
  /// naive_misclassify_after dips the controller declares the chip dead and
  /// respares it (state loss), pricing the gray failure as fail-stop.
  bool gray_hysteresis{true};
  fault::FlapDamperParams damper{};
  /// Dips the naive controller tolerates on one component before
  /// misclassifying it as chip death.
  std::uint32_t naive_misclassify_after{3};
};

/// Where the goodput went.  Lost work per fault = work replayed since the
/// checkpoint (redo) + time to notice (detection) + time to fix (recovery);
/// the residual gap to ideal is degraded-bandwidth slowdown after elastic
/// shrink.
struct LostWork {
  Duration redo{Duration::zero()};
  Duration detection{Duration::zero()};
  Duration recovery{Duration::zero()};

  [[nodiscard]] Duration total() const { return redo + detection + recovery; }
};

struct RunReport {
  RunPolicy policy{RunPolicy::kPhotonicRepair};
  std::uint32_t iterations_completed{0};
  std::uint32_t ring_size_initial{0};
  std::uint32_t ring_size_final{0};
  std::uint64_t fault_events{0};
  std::uint64_t faults_injected{0};
  /// Events whose strike time fell inside an in-flight collective window of
  /// the interrupted iteration.
  std::uint64_t mid_collective_faults{0};
  /// Events that degraded at least one ring circuit (the rest are latent).
  std::uint64_t detections{0};
  std::uint64_t rollbacks{0};
  std::uint64_t elastic_shrinks{0};
  std::uint64_t migrations{0};
  /// Optical recoveries by ladder rung (recovery-path histogram; shrinks
  /// and migrations are counted separately above).
  std::array<std::uint64_t, routing::kRepairRungCount> recovered_by{};
  LostWork lost{};
  // -- Gray-failure accounting (all zero when flap_rate_per_hour == 0). -----
  std::uint64_t flap_episodes{0};
  /// Observed down-transitions (dips) across all episodes.
  std::uint64_t flap_transitions{0};
  /// Repair-ladder climbs triggered by flaps (each one thrashes: every
  /// attempt inside a dip fails transiently).
  std::uint64_t flap_repairs{0};
  /// Flap-triggered climbs the damper suppressed while quarantined.
  std::uint64_t suppressed_repairs{0};
  std::uint64_t quarantines{0};
  std::uint64_t probations{0};
  std::uint64_t relapses{0};
  /// Naive baseline only: flapping components respared as dead chips.
  std::uint64_t misclassifications{0};
  /// Transiently failed ladder attempts across all flap-triggered climbs.
  std::uint64_t transient_repair_failures{0};
  std::uint64_t ber_bursts{0};
  /// Wall clock the ring spent dark inside dips.
  Duration flap_stall{Duration::zero()};
  /// Extra wall clock charged by BER bursts (goodput runs at
  /// ber_goodput_factor while the burst is active, invisible to the 0.5 dB
  /// health check).
  Duration ber_slowdown{Duration::zero()};
  /// iterations x the policy's own healthy iteration time.
  Duration ideal_time{Duration::zero()};
  Duration wall_clock{Duration::zero()};
  /// Per-detected-event time from fault strike to resumed training
  /// (detection + recovery + redo), seconds, in event order.
  std::vector<double> recover_seconds;

  /// Fraction of ideal progress the wall clock actually delivered.
  [[nodiscard]] double goodput() const {
    return wall_clock <= Duration::zero()
               ? 1.0
               : ideal_time.to_seconds() / wall_clock.to_seconds();
  }
};

/// One simulated training run.  Construct, run() once; the accessors expose
/// the final world for tests (surviving ring, live schedule, fabric).
class TrainingRun {
 public:
  explicit TrainingRun(const RunConfig& config = {});

  [[nodiscard]] RunReport run();

  [[nodiscard]] const RunConfig& config() const { return config_; }
  [[nodiscard]] const fabric::Fabric& fabric() const { return fab_; }
  [[nodiscard]] const std::vector<fabric::GlobalTile>& ring_members() const {
    return members_;
  }
  [[nodiscard]] const std::vector<fabric::CircuitId>& ring_circuits() const {
    return circuits_;
  }
  /// The live collective schedule (rebuilt after every topology change).
  [[nodiscard]] const coll::Schedule& schedule() const { return schedule_; }
  /// Algorithm the autotuner picked for the live bucket AllReduce.
  [[nodiscard]] coll::Algorithm bucket_algorithm() const { return bucket_algo_; }
  /// The collective autotuner (decision cache keyed on the fabric epoch).
  [[nodiscard]] const coll::Autotuner& tuner() const { return tuner_; }
  /// Faults accumulated over the run (query overlay; never applied).
  [[nodiscard]] const fault::FaultSet& active_faults() const { return cumulative_; }

 private:
  struct EventOutcome {
    Duration recovery{Duration::zero()};
    bool state_loss{false};
  };

  void establish_ring();
  void rebuild_costs();
  [[nodiscard]] std::vector<fabric::GlobalTile> free_tiles() const;
  [[nodiscard]] routing::EscalationOptions base_options() const;
  EventOutcome recover_photonic(RunReport& report);
  /// `assume_dead` forces the dead-endpoint flags onto the victim edges even
  /// though the diagnosis is healthy — the naive controller misclassifying a
  /// flapping member as chip death (the member genuinely leaves the ring).
  [[nodiscard]] Duration recover_dead_member(std::size_t i, RunReport& report,
                                             bool& removed, bool assume_dead = false);
  [[nodiscard]] Duration shrink_ring(std::size_t i, RunReport& report);
  /// Plays one gray episode arriving at `t0` to completion: dip stalls,
  /// per-dip controller response (thrash or dampening), misclassification,
  /// and the BER-burst rider.
  EventOutcome play_gray_episode(Duration t0, Rng& gray_stream, RunReport& report);

  RunConfig config_;
  fabric::Fabric fab_;
  fault::FaultInjector injector_;
  fault::HealthMonitor monitor_;
  /// Route memo for the repair ladder (wired into every EscalationOptions):
  /// drive_recovery's budget-exhausted re-climbs leave the ledger exactly as
  /// found, so the repeat search hits the cache.  mutable because
  /// memoization is invisible to observable state (base_options is const).
  mutable routing::PlanCache cache_;
  /// members_[e] -> members_[(e+1) % n] is circuits_[e].
  std::vector<fabric::GlobalTile> members_;
  std::vector<fabric::CircuitId> circuits_;
  /// Picks the bucket-AllReduce schedule on every topology change: ring vs
  /// tree vs halving-doubling, re-decided as the surviving member set and
  /// circuit rates degrade (the fabric epoch keys its decision cache).
  coll::Autotuner tuner_;
  coll::Algorithm bucket_algo_{coll::Algorithm::kRing};
  coll::Schedule schedule_;
  Duration first_bucket_comm_{Duration::zero()};
  Duration steady_bucket_comm_{Duration::zero()};
  /// Query overlay of every fault so far (never applied to the ledger).
  fault::FaultSet cumulative_;
  /// Per-event applied overlays, in arrival order (reverted on electrical
  /// migration's fresh rack; otherwise live until the run ends).
  std::vector<fault::FaultSet> applied_;
  /// Flap-dampening hysteresis over gray components (gray_hysteresis mode).
  fault::FlapDamper damper_;
  /// Naive mode: dips observed per component, driving misclassification.
  std::map<std::uint64_t, std::uint32_t> dips_seen_;
  /// Simulation time the cache's quarantine predicate evaluates damper
  /// state at (kept current by the event loop).
  Duration gray_now_{Duration::zero()};
};

/// MTBF sweep: photonic vs electrical goodput, aggregated over trials.
struct ResilienceSweepConfig {
  RunConfig base{};
  std::vector<double> mtbf_points{0.25, 0.5, 1.0, 2.0, 4.0};
  std::uint32_t trials{8};
  /// 0 consults LIGHTPATH_THREADS (util::env_threads), then falls back to
  /// the shared pool.  The report is bit-identical for every value.
  unsigned threads{0};
};

struct MtbfPointReport {
  double mtbf_hours{0.0};
  RunPolicy policy{RunPolicy::kPhotonicRepair};
  std::uint32_t trials{0};
  double goodput_mean{0.0};
  double goodput_min{1.0};
  double goodput_max{0.0};
  double lost_redo_seconds{0.0};       ///< mean per trial
  double lost_detection_seconds{0.0};  ///< mean per trial
  double lost_recovery_seconds{0.0};   ///< mean per trial
  double recover_p50_seconds{0.0};
  double recover_p99_seconds{0.0};
  std::uint64_t fault_events{0};
  std::uint64_t detections{0};
  std::uint64_t rollbacks{0};
  std::uint64_t elastic_shrinks{0};
  std::uint64_t migrations{0};
  /// Gray-failure counters (zero unless base.flap_rate_per_hour > 0): kept
  /// in the artifact so flap behavior is tracked over time alongside the
  /// fail-stop columns instead of conflated into "unrecovered".
  std::uint64_t transient_repair_failures{0};
  std::uint64_t suppressed_repairs{0};
  std::uint64_t quarantines{0};
  std::array<std::uint64_t, routing::kRepairRungCount> recovered_by{};
};

struct ResilienceSweepReport {
  /// One entry per (mtbf point x policy), photonic first within each point.
  std::vector<MtbfPointReport> points;
};

/// Deterministic parallel sweep over (mtbf x policy x trial).  Trial
/// (p, policy, t) runs with seed task_seed(base.seed, flat index), results
/// fold in ascending flat-index order: bit-identical at any thread count.
[[nodiscard]] ResilienceSweepReport run_resilience_sweep(
    const ResilienceSweepConfig& config = {});

// ---------------------------------------------------------------------------
// Gray-failure sweep: hysteresis+backoff vs naive repair-on-every-transition.
// ---------------------------------------------------------------------------

struct GraySweepConfig {
  /// Policy is forced to kPhotonicRepair; flap_rate_per_hour and
  /// gray_hysteresis are overwritten per point/arm.
  RunConfig base{};
  std::vector<double> flap_rates_per_hour{1.0, 2.0, 4.0, 8.0, 16.0};
  std::uint32_t trials{4};
  /// 0 consults LIGHTPATH_THREADS (util::env_threads), then falls back to
  /// the shared pool.  The report is bit-identical for every value.
  unsigned threads{0};
};

struct GrayPointReport {
  double flap_rate_per_hour{0.0};
  bool hysteresis{false};
  std::uint32_t trials{0};
  double goodput_mean{0.0};
  double goodput_min{1.0};
  double goodput_max{0.0};
  /// Counters summed over trials.
  std::uint64_t flap_episodes{0};
  std::uint64_t flap_transitions{0};
  std::uint64_t flap_repairs{0};
  std::uint64_t suppressed_repairs{0};
  std::uint64_t quarantines{0};
  std::uint64_t probations{0};
  std::uint64_t relapses{0};
  std::uint64_t misclassifications{0};
  std::uint64_t rollbacks{0};
  std::uint64_t transient_repair_failures{0};
  std::uint64_t ber_bursts{0};
  double flap_stall_seconds{0.0};
  double ber_slowdown_seconds{0.0};
};

struct GraySweepReport {
  /// One entry per (flap rate x arm), hysteresis first within each rate.
  std::vector<GrayPointReport> points;

  /// Order-sensitive fold of every field — the bit-identity witness for the
  /// 1/2/8-thread determinism check.
  [[nodiscard]] std::uint64_t digest() const;
};

/// Deterministic parallel sweep over (flap rate x arm x trial).  Both arms
/// of a (rate, trial) pair share seed task_seed(base.seed, p * trials +
/// trial), so hysteresis and naive face the identical episode timeline — a
/// paired comparison.  Results fold in ascending flat-index order:
/// bit-identical at any thread count.
[[nodiscard]] GraySweepReport run_gray_sweep(const GraySweepConfig& config = {});

}  // namespace lp::runtime
