#include "serve/serving_sim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "collective/autotuner.hpp"
#include "routing/plan_cache.hpp"
#include "sim/event_engine.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace lp::serve {

namespace {

using fabric::CircuitId;
using fabric::GlobalTile;

/// One request resident in a replica's queue or batch.
struct Request {
  double arrival{0.0};  ///< seconds
  std::uint32_t prefill_tokens{1};
  std::uint32_t prefill_left{1};
  std::uint32_t decode_left{1};
  std::size_t prefill_replica{0};
  bool migrate{false};
  /// KV-migration latency charged at admission, folded into the request's
  /// completion latency (the decode stream starts that much later).
  double extra{0.0};
};

struct Replica {
  std::vector<GlobalTile> tiles;
  /// Flat tile ids of `tiles`, the member list the autotuner fingerprints.
  std::vector<topo::TpuId> ids;
  /// Intra-replica backbone ring (weights/activations plane).  These are
  /// the circuits the health monitor diagnoses and the repair ladder
  /// rebuilds; HostStack traffic rides its own cached circuits.
  std::vector<CircuitId> backbone;
  std::deque<Request> queue;
  std::vector<Request> batch;
  double paused_until{0.0};
  std::uint32_t rotation{0};
  bool round_scheduled{false};
  bool online{true};
};

class ServingSim {
 public:
  explicit ServingSim(const ServingParams& params)
      : params_{params},
        fab_{params.fabric},
        host_{fab_, params.host},
        cache_{fab_},
        monitor_{params.health},
        injector_{fab_, params.fault_model, util::task_seed(params.seed, 0)},
        gen_{params.traffic, params.replicas, params.seed},
        fault_rng_{util::task_seed(params.seed, 3)},
        gray_rng_{util::task_seed(params.seed, 4)},
        damper_{params.damper} {
    if (params.flap_rate_per_hour > 0.0 && params.gray_hysteresis) {
      // Quarantined components are unusable for new routes without touching
      // the fabric epoch — the cache stays warm across the hold.
      cache_.set_quarantine([this](GlobalTile t, fabric::Direction d) {
        return damper_.state(fault::gray_component_key(t, d),
                             Duration::seconds(gray_now_)) ==
               fault::LinkState::kQuarantined;
      });
    }
    tuner_rate_ = fab_.per_wavelength_rate() *
                  static_cast<double>(params.host.wavelengths_per_circuit);
    tuner_reconfig_ = fab_.reconfig().settle_latency();
  }

  ServingReport run();

 private:
  [[nodiscard]] double now_s() const { return engine_.now().to_seconds(); }

  void setup_replicas();
  void schedule_first_events();

  void arrival();
  void round(std::size_t r);
  void fault_event();
  void gray_event();
  void detection();

  void kick(std::size_t r, double at);
  void admit(std::size_t r);
  void complete(const Request& q, double done_t);
  void take_offline(std::size_t r);
  [[nodiscard]] std::size_t resolve_online(std::size_t preferred) const;
  [[nodiscard]] routing::EscalationOptions base_options();

  ServingParams params_;
  fabric::Fabric fab_;
  core::HostStack host_;
  routing::PlanCache cache_;
  fault::HealthMonitor monitor_;
  fault::FaultInjector injector_;
  /// Queries only (monitor + validate); per-event sets below carry the
  /// ledger side effects so they could be reverted individually.
  fault::FaultSet cumulative_;
  std::vector<fault::FaultSet> applied_;
  RequestGenerator gen_;
  Rng fault_rng_;
  Rng gray_rng_;
  fault::FlapDamper damper_;
  /// Simulation time (seconds) the quarantine predicate evaluates damper
  /// state at; kept current by the gray/fault event handlers.
  double gray_now_{0.0};
  sim::EventEngine engine_;
  /// Picks expert-exchange and KV-migration shapes per (size bucket,
  /// replica fingerprint, fabric epoch).  The rate/reconfig pair below is
  /// the host-circuit model the picks are evaluated against.
  coll::Autotuner tuner_;
  Bandwidth tuner_rate_{Bandwidth::zero()};
  Duration tuner_reconfig_{Duration::zero()};

  std::vector<Replica> replicas_;
  std::vector<double> latencies_;
  ServingReport report_;
};

void ServingSim::setup_replicas() {
  const auto& wafer = fab_.wafer(0);
  const auto tiles = static_cast<std::int32_t>(params_.tiles_per_replica);
  replicas_.resize(params_.replicas);
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    Replica& rep = replicas_[r];
    rep.tiles.reserve(params_.tiles_per_replica);
    for (std::int32_t t = 0; t < tiles; ++t) {
      rep.tiles.push_back(GlobalTile{
          0, wafer.tile_at({static_cast<std::int32_t>(r), t})});
      rep.ids.push_back(static_cast<topo::TpuId>(rep.tiles.back().tile));
    }
    // Ring circuits t -> t+1 (the wrap link routes back across the row).
    for (std::size_t t = 0; t < rep.tiles.size(); ++t) {
      const auto next = (t + 1) % rep.tiles.size();
      auto c = fab_.connect(rep.tiles[t], rep.tiles[next],
                            params_.backbone_wavelengths);
      if (c.ok()) rep.backbone.push_back(c.value());
    }
  }
}

void ServingSim::schedule_first_events() {
  const double horizon = params_.horizon.to_seconds();
  const double first = gen_.next_interarrival().to_seconds();
  if (first <= horizon) {
    engine_.schedule_at(TimePoint::at_seconds(first), [this] { arrival(); });
  }
  const double chips =
      static_cast<double>(params_.replicas) * params_.tiles_per_replica;
  if (params_.mtbf_hours > 0.0 && chips > 0.0) {
    const double rate = chips / (params_.mtbf_hours * 3600.0);
    const double t_f = fault_rng_.exponential(rate);
    // Strikes are confined to the arrival window so the drain tail measures
    // recovery, not fresh damage.
    if (t_f < horizon) {
      engine_.schedule_at(TimePoint::at_seconds(t_f), [this] { fault_event(); });
    }
  }
  if (params_.flap_rate_per_hour > 0.0 && chips > 0.0) {
    const double rate = chips * params_.flap_rate_per_hour / 3600.0;
    const double t_g = gray_rng_.exponential(rate);
    if (t_g < horizon) {
      engine_.schedule_at(TimePoint::at_seconds(t_g), [this] { gray_event(); });
    }
  }
}

std::size_t ServingSim::resolve_online(std::size_t preferred) const {
  for (std::size_t k = 0; k < replicas_.size(); ++k) {
    const std::size_t r = (preferred + k) % replicas_.size();
    if (replicas_[r].online) return r;
  }
  return replicas_.size();
}

void ServingSim::kick(std::size_t r, double at) {
  Replica& rep = replicas_[r];
  if (rep.round_scheduled || !rep.online) return;
  rep.round_scheduled = true;
  engine_.schedule_at(TimePoint::at_seconds(at), [this, r] { round(r); });
}

void ServingSim::arrival() {
  const double now = now_s();
  ++report_.offered;
  const RequestSpec spec = gen_.next_request();
  const std::size_t r = resolve_online(spec.replica);
  if (r == replicas_.size()) {
    ++report_.abandoned;  // every replica lost: offered load goes unserved
  } else {
    Request q;
    q.arrival = now;
    q.prefill_tokens = spec.prefill_tokens;
    q.prefill_left = spec.prefill_tokens;
    q.decode_left = spec.decode_tokens;
    const std::size_t pr = resolve_online(spec.prefill_replica);
    // A prefill host that died re-runs prefill locally: no migration flow.
    q.migrate = spec.migrate && pr < replicas_.size() && pr != r;
    q.prefill_replica = q.migrate ? pr : r;
    Replica& rep = replicas_[r];
    rep.queue.push_back(q);
    kick(r, std::max(now, rep.paused_until));
  }
  const double next = now + gen_.next_interarrival().to_seconds();
  if (next <= params_.horizon.to_seconds()) {
    engine_.schedule_at(TimePoint::at_seconds(next), [this] { arrival(); });
  }
}

void ServingSim::admit(std::size_t r) {
  Replica& rep = replicas_[r];
  while (rep.batch.size() < params_.batch_capacity && !rep.queue.empty()) {
    Request q = rep.queue.front();
    rep.queue.pop_front();
    if (q.migrate) {
      // Pull the KV cache from the prefill host before decoding.  The
      // autotuner decides the transfer shape: small prompts go as one bulk
      // lead-tile send, large ones stripe across parallel tile-pair
      // circuits (each stripe a cached host circuit; a miss pays
      // reconfiguration r, and under churn it is a miss — that is the
      // point).
      ++report_.kv_migrations;
      const Replica& src = replicas_[q.prefill_replica];
      const DataSize bytes =
          params_.traffic.kv_bytes_per_token *
          static_cast<double>(q.prefill_tokens);
      const coll::Decision pick = tuner_.pick(
          coll::CollOp::kTransfer, bytes, {src.ids[0], rep.ids[0]}, tuner_rate_,
          tuner_reconfig_, fab_.epoch());
      const auto ways = static_cast<std::uint32_t>(
          std::min<std::size_t>(tuner_.params().stripe_ways,
                                std::min(src.tiles.size(), rep.tiles.size())));
      if (pick.algo == coll::Algorithm::kStriped && ways > 1) {
        ++report_.kv_striped;
        const DataSize per_stripe = bytes / static_cast<double>(ways);
        double extra = 0.0;
        bool ok = true;
        for (std::uint32_t i = 0; i < ways && ok; ++i) {
          const auto sent = host_.send(src.tiles[i], rep.tiles[i], per_stripe);
          if (sent.ok()) {
            extra = std::max(extra, sent.value().to_seconds());
          } else {
            ok = false;
          }
        }
        if (ok) {
          q.extra = extra;  // stripes land in parallel; slowest one gates
          q.prefill_left = 0;
        } else {
          ++report_.send_failures;  // fabric too broken to migrate: re-prefill
        }
      } else {
        const auto sent = host_.send(src.tiles[0], rep.tiles[0], bytes);
        if (sent.ok()) {
          q.extra = sent.value().to_seconds();
          q.prefill_left = 0;  // prefill already ran remotely
        } else {
          ++report_.send_failures;  // fabric too broken to migrate: re-prefill
        }
      }
    }
    rep.batch.push_back(q);
  }
}

void ServingSim::complete(const Request& q, double done_t) {
  const double latency = done_t - q.arrival + q.extra;
  ++report_.completed;
  if (latency <= params_.slo.to_seconds()) ++report_.met_slo;
  latencies_.push_back(latency);
  report_.digest =
      fabric::hash_mix(report_.digest, std::bit_cast<std::uint64_t>(latency));
}

void ServingSim::round(std::size_t r) {
  Replica& rep = replicas_[r];
  rep.round_scheduled = false;
  if (!rep.online) return;
  const double now = now_s();
  if (now < rep.paused_until) {
    kick(r, rep.paused_until);  // repair ladder holds the replica
    return;
  }
  admit(r);
  if (rep.batch.empty()) return;  // idle; the next arrival re-kicks

  ++report_.rounds;
  const double active = static_cast<double>(rep.batch.size());

  // MoE expert all-to-all: every tile exchanges its shard each round; the
  // round waits for the slowest exchange.  The autotuner picks the pattern
  // from the per-rotation-cycle exchange volume: rotation (fresh partner
  // each round — re-pairing circuit churn, lean bytes) vs the standing
  // next-neighbor ring (one pairing forever, this round's shard forwarded
  // `offset` hops, so bytes inflate by the hop count).  Steady state hits
  // the circuit cache either way; after fault-driven flushes each send
  // re-plans and pays r, which is how churn reaches the latency tail.
  double comm = 0.0;
  const DataSize per_tile =
      params_.traffic.expert_bytes_per_token *
      (active / static_cast<double>(rep.tiles.size()));
  const std::uint32_t peers = std::max(params_.expert_peers, 1u);
  const coll::Decision pick = tuner_.pick(
      coll::CollOp::kAllToAll, per_tile * static_cast<double>(peers),
      rep.ids, tuner_rate_, tuner_reconfig_, fab_.epoch());
  const std::uint32_t offset = 1 + rep.rotation % peers;
  const bool ring = pick.algo == coll::Algorithm::kRing;
  if (ring) ++report_.expert_ring_rounds;
  const std::size_t hop = ring ? 1 : offset;
  const DataSize per_send =
      ring ? per_tile * static_cast<double>(offset) : per_tile;
  for (std::size_t t = 0; t < rep.tiles.size(); ++t) {
    const std::size_t peer = (t + hop) % rep.tiles.size();
    ++report_.expert_sends;
    const auto sent = host_.send(rep.tiles[t], rep.tiles[peer], per_send);
    if (sent.ok()) {
      comm = std::max(comm, sent.value().to_seconds());
    } else {
      ++report_.send_failures;
      comm = std::max(comm, fab_.reconfig().settle_latency().to_seconds());
    }
  }
  ++rep.rotation;

  const double round_dur = params_.round_base.to_seconds() +
                           params_.round_per_seq.to_seconds() * active + comm;
  const double done_t = now + round_dur;

  // Advance every sequence one round; retire finished ones in batch order.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < rep.batch.size(); ++i) {
    Request& q = rep.batch[i];
    if (q.prefill_left > 0) {
      q.prefill_left -= std::min(params_.prefill_chunk, q.prefill_left);
    } else if (q.decode_left > 0) {
      --q.decode_left;
    }
    if (q.prefill_left == 0 && q.decode_left == 0) {
      complete(q, done_t);
    } else {
      rep.batch[keep++] = q;
    }
  }
  rep.batch.resize(keep);

  if (!rep.batch.empty() || !rep.queue.empty()) kick(r, done_t);
}

void ServingSim::fault_event() {
  const double now = now_s();
  ++report_.fault_events;
  const auto faults = injector_.sample(fault_rng_);
  fault::FaultSet set;
  set.add_all(faults);
  set.apply_to(fab_, params_.fault_model.quarantine_threshold);
  applied_.push_back(std::move(set));
  cumulative_.add_all(faults);

  // Heartbeat detection: noticed at the first tick at or after the strike,
  // diagnosed detection_latency later (same contract as runtime/training_run).
  const double hb = params_.recovery.heartbeat_interval.to_seconds();
  const double detect =
      std::ceil(now / hb) * hb + params_.recovery.detection_latency.to_seconds();
  engine_.schedule_at(TimePoint::at_seconds(detect), [this] { detection(); });

  const double chips =
      static_cast<double>(params_.replicas) * params_.tiles_per_replica;
  const double rate = chips / (params_.mtbf_hours * 3600.0);
  const double next = now + fault_rng_.exponential(rate);
  if (next < params_.horizon.to_seconds()) {
    engine_.schedule_at(TimePoint::at_seconds(next), [this] { fault_event(); });
  }
}

void ServingSim::gray_event() {
  const double now = now_s();
  ++report_.flap_episodes;

  // The flapping component: the source transceiver of a uniformly chosen
  // backbone edge of a uniformly chosen online replica.
  const std::size_t r0 = gray_rng_.uniform_index(replicas_.size());
  const std::size_t r = resolve_online(r0);
  if (r < replicas_.size() && !replicas_[r].backbone.empty()) {
    Replica& rep = replicas_[r];
    const std::size_t e = gray_rng_.uniform_index(rep.backbone.size());
    const fabric::Circuit* c = fab_.circuit(rep.backbone[e]);
    if (c != nullptr && !c->segments.empty() && !c->segments.front().hops.empty()) {
      const GlobalTile tile{c->segments.front().wafer, c->segments.front().from};
      const fabric::Direction dir = c->segments.front().hops.front();
      const fault::GrayEpisode ep =
          injector_.sample_gray_at(gray_rng_, params_.gray, tile, dir);
      const std::uint64_t key = fault::gray_component_key(tile, dir);

      double pause = 0.0;  // replica hold accumulated across the episode
      for (std::size_t k = 0; k < ep.trace.dips(); ++k) {
        const double t_dip = now + ep.trace.dip_start(k);
        ++report_.flap_transitions;
        pause += ep.trace.dip_seconds(k);  // the backbone edge is dark
        gray_now_ = t_dip;
        if (params_.gray_hysteresis) {
          const fault::LinkState st =
              damper_.record_flap(key, Duration::seconds(t_dip));
          if (st == fault::LinkState::kQuarantined) continue;  // ride it out
        }
        // Repair-on-transition: the climb runs entirely inside the dip, so
        // every programming attempt fails transiently — pure thrash, plus a
        // host-circuit flush (the reconfiguration attempt churns the cached
        // lanes, so subsequent sends re-plan and pay r).
        routing::DegradedCircuit victim;
        victim.id = rep.backbone[e];
        victim.hard_down = true;
        routing::EscalationOptions opts = base_options();
        opts.transient_failure = [](routing::RepairRung, std::uint32_t) {
          return true;
        };
        const auto res =
            runtime::drive_recovery(fab_, victim, params_.recovery, opts);
        ++report_.flap_repairs;
        report_.transient_repair_failures += res.transient_failures;
        pause += res.total().to_seconds();
        host_.flush();
        ++report_.churn_flushes;
      }
      if (pause > 0.0) {
        rep.paused_until = std::max(rep.paused_until, now + pause);
        report_.flap_stall += Duration::seconds(pause);
        if (!rep.batch.empty() || !rep.queue.empty()) kick(r, rep.paused_until);
      }
    }
  }

  const double chips =
      static_cast<double>(params_.replicas) * params_.tiles_per_replica;
  const double rate = chips * params_.flap_rate_per_hour / 3600.0;
  const double next = now + gray_rng_.exponential(rate);
  if (next < params_.horizon.to_seconds()) {
    engine_.schedule_at(TimePoint::at_seconds(next), [this] { gray_event(); });
  }
}

routing::EscalationOptions ServingSim::base_options() {
  routing::EscalationOptions opts;
  opts.wavelengths = params_.backbone_wavelengths;
  opts.cache = &cache_;
  opts.validate = [this](const fabric::Fabric& f, CircuitId id) {
    return monitor_.diagnose(f, cumulative_, id).health ==
           fault::CircuitHealth::kHealthy;
  };
  return opts;
}

void ServingSim::take_offline(std::size_t r) {
  Replica& rep = replicas_[r];
  rep.online = false;
  ++report_.replicas_offline;
  report_.abandoned += rep.batch.size() + rep.queue.size();
  rep.batch.clear();
  rep.queue.clear();
  for (const CircuitId id : rep.backbone) {
    if (fab_.circuit(id) != nullptr) fab_.disconnect(id);
  }
  rep.backbone.clear();
}

void ServingSim::detection() {
  const double now = now_s();
  ++report_.detections;
  gray_now_ = std::max(gray_now_, now);  // keep the quarantine view current
  // Quarantined lanes invalidate cached routes: drop every host circuit so
  // subsequent sends re-plan around the damage (the churn the bench sweeps).
  host_.flush();
  ++report_.churn_flushes;

  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    Replica& rep = replicas_[r];
    if (!rep.online) continue;
    double pause = 0.0;
    bool lost = false;
    for (CircuitId& id : rep.backbone) {
      const auto diag = monitor_.diagnose(fab_, cumulative_, id);
      if (diag.health == fault::CircuitHealth::kHealthy) continue;
      const auto res = runtime::drive_recovery(fab_, fault::to_degraded(diag),
                                               params_.recovery, base_options());
      pause = std::max(pause, res.total().to_seconds());
      if (res.recovered && !res.circuits.empty()) {
        id = res.circuits.front();
        ++report_.repairs;
      } else {
        // Out of optical ideas (dead endpoint, no spare tiles on a full
        // wafer): the ring is broken and the replica leaves the pool.
        ++report_.repair_failures;
        lost = true;
        break;
      }
    }
    if (lost) {
      take_offline(r);
      continue;
    }
    if (pause > 0.0) {
      rep.paused_until = std::max(rep.paused_until, now + pause);
      report_.stall_time += Duration::seconds(pause);
    }
  }
}

ServingReport ServingSim::run() {
  report_.arrival_rate = params_.traffic.arrival_rate;
  setup_replicas();
  schedule_first_events();
  engine_.run_until(TimePoint::at_seconds(params_.horizon.to_seconds() +
                                          params_.drain.to_seconds()));

  for (const Replica& rep : replicas_) {
    report_.in_flight_at_end += rep.batch.size() + rep.queue.size();
  }
  report_.p50 = Duration::seconds(lp::percentile(latencies_, 50.0));
  report_.p99 = Duration::seconds(lp::percentile(latencies_, 99.0));
  report_.p999 = Duration::seconds(lp::percentile(latencies_, 99.9));
  if (!latencies_.empty()) {
    report_.max_latency = Duration::seconds(
        *std::max_element(latencies_.begin(), latencies_.end()));
  } else {
    report_.p50 = report_.p99 = report_.p999 = Duration::zero();
  }
  report_.host = host_.stats();
  report_.suppressed_repairs = damper_.stats().suppressed_repairs;
  report_.quarantines = damper_.stats().quarantines;

  std::uint64_t d = report_.digest;
  d = fabric::hash_mix(d, report_.offered);
  d = fabric::hash_mix(d, report_.completed);
  d = fabric::hash_mix(d, report_.met_slo);
  d = fabric::hash_mix(d, report_.abandoned);
  d = fabric::hash_mix(d, report_.fault_events);
  d = fabric::hash_mix(d, report_.repairs);
  d = fabric::hash_mix(d, report_.repair_failures);
  d = fabric::hash_mix(d, report_.expert_ring_rounds);
  d = fabric::hash_mix(d, report_.kv_striped);
  d = fabric::hash_mix(d, report_.flap_episodes);
  d = fabric::hash_mix(d, report_.flap_transitions);
  d = fabric::hash_mix(d, report_.flap_repairs);
  d = fabric::hash_mix(d, report_.suppressed_repairs);
  d = fabric::hash_mix(d, report_.quarantines);
  d = fabric::hash_mix(d, report_.transient_repair_failures);
  d = fabric::hash_mix(d, std::bit_cast<std::uint64_t>(report_.flap_stall.to_seconds()));
  d = fabric::hash_mix(d, fab_.ledger_digest());
  report_.digest = d;
  report_.latencies = std::move(latencies_);
  return report_;
}

}  // namespace

ServingReport run_serving(const ServingParams& params) {
  ServingParams p = params;
  const auto rows = static_cast<std::int32_t>(p.replicas);
  const auto cols = static_cast<std::int32_t>(p.tiles_per_replica);
  if (p.fabric.wafer.rows * p.fabric.wafer.cols !=
      rows * cols) {
    p.fabric.wafer.rows = rows;
    p.fabric.wafer.cols = cols;
  }
  ServingSim sim{p};
  return sim.run();
}

ServingSweepReport run_serving_sweep(const ServingSweepConfig& config) {
  ServingSweepReport out;
  out.points.resize(config.arrival_rates.size());
  const unsigned threads =
      config.threads != 0 ? config.threads : util::env_threads();
  std::optional<util::ThreadPool> local;
  util::ThreadPool& pool =
      threads == 0 ? util::ThreadPool::shared() : local.emplace(threads);
  pool.run(config.arrival_rates.size(), [&](std::size_t i, unsigned) {
    ServingParams p = config.base;
    p.traffic.arrival_rate = config.arrival_rates[i];
    // Per-point seed via task_seed: the sweep is bit-identical at any
    // thread count because each point is self-contained and results land
    // by index.
    p.seed = util::task_seed(config.base.seed, i);
    out.points[i] = run_serving(p);
  });
  return out;
}

}  // namespace lp::serve
