// Event-driven open-loop inference-serving simulator.
//
// Ties the whole stack together on the calendar-queue EventEngine: Poisson
// request arrivals (serve/workload) land on model replicas laid out as rows
// of a LIGHTPATH wafer; each replica runs continuous batching with chunked
// prefill and per-token decode rounds; decode rounds drive MoE expert
// all-to-all rotations and admission drives KV-cache migration flows, both
// expressed as circuit demands through core::HostStack (LRU circuit cache,
// reconfiguration r on miss); component faults (fault/FaultInjector) strike
// on an accelerated MTBF clock, are noticed at heartbeat granularity, and
// are repaired by the bounded-timeout ladder (runtime::drive_recovery) with
// route searches going through the shared routing::PlanCache — the same
// control path the training-run resilience layer exercises.
//
// The output is SLO accounting: p50/p99/p999 request latency and the
// fraction of *offered* requests that completed within the SLO (abandoned
// and still-queued requests count against attainment, as an open-loop
// system demands).
//
// Determinism: a run is a pure function of ServingParams.  The sweep
// derives each point's seed via util::task_seed and folds results in point
// order, so reports are bit-identical at any thread count (the `digest`
// field makes that checkable with one comparison).
#pragma once

#include <cstdint>
#include <vector>

#include "core/host_stack.hpp"
#include "fault/fault.hpp"
#include "fault/gray.hpp"
#include "fault/health.hpp"
#include "runtime/recovery.hpp"
#include "serve/workload.hpp"
#include "util/units.hpp"

namespace lp::serve {

struct ServingParams {
  TrafficParams traffic{};

  /// Replica r owns row r of the wafer: replicas x tiles_per_replica must
  /// equal rows x cols of `wafer`.
  std::uint32_t replicas{16};
  std::uint32_t tiles_per_replica{16};
  fabric::FabricConfig fabric{};  ///< wafer shape set in run_serving if left 4x8

  /// Continuous batching: max concurrent sequences per replica.
  std::uint32_t batch_capacity{64};
  /// Prompt tokens retired per sequence per round while prefilling.
  std::uint32_t prefill_chunk{64};
  /// Round time = round_base + round_per_seq x active + max expert-send
  /// latency across the replica's tiles.
  Duration round_base{Duration::micros(40.0)};
  Duration round_per_seq{Duration::nanos(250.0)};

  /// Expert rotation fan-out: each tile cycles its all-to-all partner over
  /// this many neighbors (< host.max_peers so steady state stays circuit-hit).
  std::uint32_t expert_peers{4};
  /// Wavelengths per backbone ring circuit.
  std::uint32_t backbone_wavelengths{1};
  core::HostStackParams host{6, 1};

  /// Arrivals stop at `horizon`; the engine then drains for `drain` more
  /// simulated time so in-flight requests can finish.
  Duration horizon{Duration::millis(50.0)};
  Duration drain{Duration::millis(20.0)};
  /// Per-request latency SLO (arrival -> last decode token).
  Duration slo{Duration::millis(2.5)};

  /// Component-fault clock: per-chip MTBF in hours, accelerated so a
  /// millisecond-scale run sees a few strikes (0 disables faults).
  double mtbf_hours{0.002};
  fault::FaultModelParams fault_model{};
  fault::HealthMonitorParams health{};
  runtime::RecoveryPolicy recovery{};

  /// Gray (flap) episodes per chip-hour on the replica backbones, Poisson
  /// like mtbf_hours (0 disables the layer; the pre-gray report is
  /// bit-identical).  Dips pause the replica; the controller response
  /// depends on gray_hysteresis: naive thrashes the repair ladder (and
  /// flushes the host circuit cache) on every transition, dampened
  /// quarantines the flapper and rides the dips out.
  double flap_rate_per_hour{0.0};
  fault::GrayModelParams gray{};
  bool gray_hysteresis{true};
  fault::FlapDamperParams damper{};

  std::uint64_t seed{0x5e12e};
};

struct ServingReport {
  double arrival_rate{0.0};

  std::uint64_t offered{0};
  std::uint64_t completed{0};
  std::uint64_t met_slo{0};
  /// Requests stranded on a replica taken offline (or arriving with no
  /// replica online).
  std::uint64_t abandoned{0};
  /// Queued or mid-batch when the drain window closed.
  std::uint64_t in_flight_at_end{0};

  std::uint64_t rounds{0};
  std::uint64_t kv_migrations{0};
  std::uint64_t expert_sends{0};
  std::uint64_t send_failures{0};
  /// Decode rounds whose expert exchange the collective autotuner routed
  /// over the standing next-neighbor circuits (store-and-forward ring)
  /// instead of a rotating pairing; rounds - expert_ring_rounds rotated.
  std::uint64_t expert_ring_rounds{0};
  /// KV migrations the autotuner striped across parallel tile-pair
  /// circuits; kv_migrations - kv_striped went as one bulk transfer.
  std::uint64_t kv_striped{0};

  std::uint64_t fault_events{0};
  std::uint64_t detections{0};
  std::uint64_t repairs{0};
  std::uint64_t repair_failures{0};
  std::uint64_t churn_flushes{0};
  std::uint64_t replicas_offline{0};
  /// Summed replica pause time charged by detection + repair ladders.
  Duration stall_time{Duration::zero()};
  /// Gray-failure accounting (all zero when flap_rate_per_hour == 0).
  std::uint64_t flap_episodes{0};
  std::uint64_t flap_transitions{0};
  /// Flap-triggered ladder climbs (each thrashes: every attempt inside a
  /// dip fails transiently) — the naive arm's per-transition cost.
  std::uint64_t flap_repairs{0};
  /// Flap-triggered climbs the damper suppressed while quarantined.
  std::uint64_t suppressed_repairs{0};
  std::uint64_t quarantines{0};
  std::uint64_t transient_repair_failures{0};
  /// Summed replica pause charged by dips + flap thrash.
  Duration flap_stall{Duration::zero()};

  Duration p50{Duration::zero()};
  Duration p99{Duration::zero()};
  Duration p999{Duration::zero()};
  Duration max_latency{Duration::zero()};

  core::HostStackStats host{};

  /// Completion latencies in completion order, seconds.  The percentile
  /// fields above are computed from exactly this sample set; kept so benches
  /// can re-bin / re-quantile without rerunning the sim.
  std::vector<double> latencies;

  /// met_slo / offered — the open-loop attainment (unserved offered load
  /// counts as missed).
  [[nodiscard]] double slo_attainment() const {
    return offered == 0 ? 1.0
                        : static_cast<double>(met_slo) / static_cast<double>(offered);
  }

  /// Order-sensitive hash over the completion-latency stream and the
  /// counters above: two runs are behaviorally identical iff digests match.
  std::uint64_t digest{0};
};

/// Runs one serving simulation to completion.
[[nodiscard]] ServingReport run_serving(const ServingParams& params);

struct ServingSweepConfig {
  ServingParams base{};
  /// Arrival rates (req/s) to sweep; each point reruns the full sim.
  std::vector<double> arrival_rates;
  /// 0 = LIGHTPATH_THREADS / hardware default.
  unsigned threads{0};
};

struct ServingSweepReport {
  std::vector<ServingReport> points;  ///< one per arrival rate, in order
};

/// Sweeps arrival rate vs SLO attainment.  Points run in parallel; point i
/// uses task_seed(base.seed, i), so the report is bit-identical at any
/// thread count.
[[nodiscard]] ServingSweepReport run_serving_sweep(const ServingSweepConfig& config);

}  // namespace lp::serve
