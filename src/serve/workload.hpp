// Open-loop inference-serving workload.
//
// The paper's motivating deployment (§1, §2) is a server-scale inference
// cluster: millions of user requests per second fanned across replicas of a
// large model, each request a prefill burst followed by a decode stream.
// This module samples that offered load as an open-loop Poisson process —
// arrivals do not slow down when the system saturates, which is exactly the
// regime where tail latency and SLO attainment become interesting.
//
// Determinism contract: a RequestGenerator is a pure function of
// (params, replicas, seed).  Interarrival times and request payloads come
// from two decoupled Rng streams (forked via util::task_seed) so changing
// the arrival rate does not perturb the token-length or routing draws of
// the requests themselves.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace lp::serve {

struct TrafficParams {
  /// Aggregate offered load across the whole server, requests per second.
  double arrival_rate{1.0e6};

  /// Prefill (prompt) length: geometric-ish with this mean, clamped to
  /// [1, prefill_tokens_max].
  double prefill_tokens_mean{64.0};
  std::uint32_t prefill_tokens_max{256};

  /// Decode (generated) length: same distribution family.
  double decode_tokens_mean{8.0};
  std::uint32_t decode_tokens_max{32};

  /// KV-cache footprint per prompt token; a migrated request moves
  /// prefill_tokens x this across the fabric before decoding starts.
  DataSize kv_bytes_per_token{DataSize::kib(16.0)};

  /// Fraction of requests whose prefill ran on a different replica
  /// (disaggregated prefill), requiring a KV-cache migration flow.
  double kv_migration_fraction{0.02};

  /// MoE expert-exchange payload per active token per decode round,
  /// spread across the replica's tiles as an all-to-all rotation.
  DataSize expert_bytes_per_token{DataSize::kib(1.0)};
};

/// One sampled request, before the simulator maps it onto live replicas.
struct RequestSpec {
  std::uint32_t prefill_tokens{1};
  std::uint32_t decode_tokens{1};
  /// Home (decode) replica draw, uniform over all replicas.
  std::uint32_t replica{0};
  /// Where prefill ran; differs from `replica` iff `migrate`.
  std::uint32_t prefill_replica{0};
  bool migrate{false};
};

class RequestGenerator {
 public:
  RequestGenerator(const TrafficParams& params, std::uint32_t replicas,
                   std::uint64_t seed);

  [[nodiscard]] const TrafficParams& params() const { return params_; }

  /// Next Poisson interarrival gap (exponential at arrival_rate).
  [[nodiscard]] Duration next_interarrival();

  /// Payload + routing of the next request.
  [[nodiscard]] RequestSpec next_request();

 private:
  TrafficParams params_;
  std::uint32_t replicas_;
  Rng arrivals_;
  Rng payload_;
};

}  // namespace lp::serve
