#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"

namespace lp::serve {

namespace {

/// Geometric-flavored token count: 1 + floor(Exp(1/mean)), clamped to
/// [1, max].  Matches the long-tailed prompt/generation length mix of real
/// serving traces closely enough for capacity math.
std::uint32_t sample_tokens(Rng& rng, double mean, std::uint32_t max) {
  if (max <= 1 || mean <= 0.0) return 1;
  const double draw = rng.exponential(1.0 / std::max(mean, 1e-9));
  const auto extra = static_cast<std::uint32_t>(
      std::min(draw, static_cast<double>(max - 1)));
  return std::min(1u + extra, max);
}

}  // namespace

RequestGenerator::RequestGenerator(const TrafficParams& params,
                                   std::uint32_t replicas, std::uint64_t seed)
    : params_{params},
      replicas_{std::max(replicas, 1u)},
      arrivals_{util::task_seed(seed, 1)},
      payload_{util::task_seed(seed, 2)} {}

Duration RequestGenerator::next_interarrival() {
  const double rate = std::max(params_.arrival_rate, 1e-9);
  return Duration::seconds(arrivals_.exponential(rate));
}

RequestSpec RequestGenerator::next_request() {
  RequestSpec spec;
  spec.prefill_tokens = sample_tokens(payload_, params_.prefill_tokens_mean,
                                      params_.prefill_tokens_max);
  spec.decode_tokens = sample_tokens(payload_, params_.decode_tokens_mean,
                                     params_.decode_tokens_max);
  spec.replica = static_cast<std::uint32_t>(payload_.uniform_index(replicas_));
  spec.migrate = replicas_ > 1 &&
                 payload_.uniform() < params_.kv_migration_fraction;
  spec.prefill_replica =
      spec.migrate
          ? (spec.replica + 1 +
             static_cast<std::uint32_t>(payload_.uniform_index(replicas_ - 1))) %
                replicas_
          : spec.replica;
  return spec;
}

}  // namespace lp::serve
