// Minimal expected-style result type for planner/router APIs.
//
// Planning failures (no free lane, no spare chip, infeasible demand) are
// expected outcomes that callers branch on, not exceptional conditions, so
// those APIs return Result<T> instead of throwing.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace lp {

/// Describes why a planning operation could not be satisfied.
struct Error {
  std::string message;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_{std::move(value)} {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : v_{std::move(error)} {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }

 private:
  std::variant<T, Error> v_;
};

/// Convenience constructor: Err("no free lane on edge {}", ...) callers just
/// build the message inline.
[[nodiscard]] inline Error Err(std::string message) { return Error{std::move(message)}; }

}  // namespace lp
