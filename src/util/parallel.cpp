#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace lp::util {

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable wake;      ///< workers wait here for a job
  std::condition_variable done;      ///< the caller waits here for completion
  const std::function<void(std::size_t, unsigned)>* job{nullptr};
  std::size_t job_size{0};
  std::uint64_t generation{0};       ///< bumped per job so workers see new work
  std::atomic<std::size_t> next{0};  ///< next unclaimed task index
  unsigned active{0};                ///< workers still draining the job
  bool stopping{false};
  std::vector<std::thread> threads;
};

ThreadPool::ThreadPool(unsigned threads) : state_{new State} {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  worker_count_ = threads - 1;
  state_->threads.reserve(worker_count_);
  for (unsigned w = 0; w < worker_count_; ++w) {
    state_->threads.emplace_back([this, w] { worker_loop(w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock{state_->mutex};
    state_->stopping = true;
  }
  state_->wake.notify_all();
  for (auto& t : state_->threads) t.join();
  delete state_;
}

namespace {
/// The pool this thread is currently executing inside (as a worker or as a
/// caller participating in run()).  Nested run() calls on the same pool
/// degrade to inline execution instead of corrupting the in-flight job.
thread_local const ThreadPool* t_inside_pool = nullptr;
}  // namespace

void ThreadPool::run(std::size_t n, const std::function<void(std::size_t, unsigned)>& fn) {
  if (n == 0) return;
  if (worker_count_ == 0 || n == 1 || t_inside_pool == this) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  {
    const std::lock_guard lock{state_->mutex};
    state_->job = &fn;
    state_->job_size = n;
    state_->next.store(0, std::memory_order_relaxed);
    state_->active = worker_count_;
    ++state_->generation;
  }
  state_->wake.notify_all();
  // The caller participates as worker 0.
  t_inside_pool = this;
  for (;;) {
    const std::size_t i = state_->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(i, 0);
  }
  t_inside_pool = nullptr;
  std::unique_lock lock{state_->mutex};
  state_->done.wait(lock, [&] { return state_->active == 0; });
  state_->job = nullptr;
}

void ThreadPool::worker_loop(unsigned worker) {
  t_inside_pool = this;
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, unsigned)>* job;
    std::size_t n;
    {
      std::unique_lock lock{state_->mutex};
      state_->wake.wait(lock, [&] {
        return state_->stopping || (state_->job != nullptr && state_->generation != seen);
      });
      if (state_->stopping) return;
      seen = state_->generation;
      job = state_->job;
      n = state_->job_size;
    }
    for (;;) {
      const std::size_t i = state_->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*job)(i, worker);
    }
    {
      const std::lock_guard lock{state_->mutex};
      --state_->active;
    }
    state_->done.notify_one();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

unsigned env_threads() {
  const char* raw = std::getenv("LIGHTPATH_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || v == 0 || v > 4096) return 0;
  return static_cast<unsigned>(v);
}

std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // splitmix64 finalizer over the pair; any fixed mix works, it just has to
  // be a pure function of (base_seed, task_index).
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool) {
  if (pool == nullptr) pool = &ThreadPool::shared();
  pool->run(n, [&](std::size_t i, unsigned) { fn(i); });
}

}  // namespace lp::util
