// Strong unit types used throughout the simulator.
//
// The physical-layer and cost-model code mixes quantities (seconds, bits per
// second, bytes, decibels, milliwatts) whose accidental interchange is the
// classic source of silent simulation bugs.  Every public API in this
// repository therefore traffics in the strong types below instead of bare
// doubles.  All types are trivially copyable value types with constexpr
// arithmetic, so they cost nothing at runtime.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>

namespace lp {

/// A span of simulated time.  Internally stored as double seconds, which
/// gives ~femtosecond resolution over the microsecond-to-second horizons the
/// simulator cares about.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration seconds(double s) { return Duration{s}; }
  [[nodiscard]] static constexpr Duration millis(double ms) { return Duration{ms * 1e-3}; }
  [[nodiscard]] static constexpr Duration micros(double us) { return Duration{us * 1e-6}; }
  [[nodiscard]] static constexpr Duration nanos(double ns) { return Duration{ns * 1e-9}; }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0.0}; }
  [[nodiscard]] static constexpr Duration infinite() {
    return Duration{std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] constexpr double to_seconds() const { return s_; }
  [[nodiscard]] constexpr double to_millis() const { return s_ * 1e3; }
  [[nodiscard]] constexpr double to_micros() const { return s_ * 1e6; }
  [[nodiscard]] constexpr double to_nanos() const { return s_ * 1e9; }

  [[nodiscard]] constexpr bool is_finite() const { return std::isfinite(s_); }

  constexpr Duration& operator+=(Duration o) { s_ += o.s_; return *this; }
  constexpr Duration& operator-=(Duration o) { s_ -= o.s_; return *this; }
  constexpr Duration& operator*=(double k) { s_ *= k; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.s_ + b.s_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.s_ - b.s_}; }
  friend constexpr Duration operator*(Duration a, double k) { return Duration{a.s_ * k}; }
  friend constexpr Duration operator*(double k, Duration a) { return Duration{a.s_ * k}; }
  friend constexpr Duration operator/(Duration a, double k) { return Duration{a.s_ / k}; }
  friend constexpr double operator/(Duration a, Duration b) { return a.s_ / b.s_; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  explicit constexpr Duration(double s) : s_{s} {}
  double s_{0.0};
};

/// A point in simulated time (seconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  [[nodiscard]] static constexpr TimePoint at_seconds(double s) { return TimePoint{s}; }
  [[nodiscard]] constexpr double to_seconds() const { return s_; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.s_ + d.to_seconds()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::seconds(a.s_ - b.s_);
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

 private:
  explicit constexpr TimePoint(double s) : s_{s} {}
  double s_{0.0};
};

/// A quantity of data.  Stored as double bytes: collective-cost math divides
/// buffers into fractional shards, and exact integer byte counts are never
/// load-bearing in the model.
class DataSize {
 public:
  constexpr DataSize() = default;

  [[nodiscard]] static constexpr DataSize bytes(double b) { return DataSize{b}; }
  [[nodiscard]] static constexpr DataSize kib(double k) { return DataSize{k * 1024.0}; }
  [[nodiscard]] static constexpr DataSize mib(double m) { return DataSize{m * 1024.0 * 1024.0}; }
  [[nodiscard]] static constexpr DataSize gib(double g) {
    return DataSize{g * 1024.0 * 1024.0 * 1024.0};
  }
  [[nodiscard]] static constexpr DataSize zero() { return DataSize{0.0}; }

  [[nodiscard]] constexpr double to_bytes() const { return b_; }
  [[nodiscard]] constexpr double to_bits() const { return b_ * 8.0; }
  [[nodiscard]] constexpr double to_mib() const { return b_ / (1024.0 * 1024.0); }

  constexpr DataSize& operator+=(DataSize o) { b_ += o.b_; return *this; }
  constexpr DataSize& operator-=(DataSize o) { b_ -= o.b_; return *this; }

  friend constexpr DataSize operator+(DataSize a, DataSize b) { return DataSize{a.b_ + b.b_}; }
  friend constexpr DataSize operator-(DataSize a, DataSize b) { return DataSize{a.b_ - b.b_}; }
  friend constexpr DataSize operator*(DataSize a, double k) { return DataSize{a.b_ * k}; }
  friend constexpr DataSize operator*(double k, DataSize a) { return DataSize{a.b_ * k}; }
  friend constexpr DataSize operator/(DataSize a, double k) { return DataSize{a.b_ / k}; }
  friend constexpr double operator/(DataSize a, DataSize b) { return a.b_ / b.b_; }
  friend constexpr auto operator<=>(DataSize, DataSize) = default;

 private:
  explicit constexpr DataSize(double b) : b_{b} {}
  double b_{0.0};
};

/// Link or port bandwidth.  Stored as bits per second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bps(double b) { return Bandwidth{b}; }
  [[nodiscard]] static constexpr Bandwidth gbps(double g) { return Bandwidth{g * 1e9}; }
  [[nodiscard]] static constexpr Bandwidth gBps(double gB) { return Bandwidth{gB * 8e9}; }
  [[nodiscard]] static constexpr Bandwidth zero() { return Bandwidth{0.0}; }

  [[nodiscard]] constexpr double to_bps() const { return bps_; }
  [[nodiscard]] constexpr double to_gbps() const { return bps_ / 1e9; }
  [[nodiscard]] constexpr double to_gBps() const { return bps_ / 8e9; }

  [[nodiscard]] constexpr bool is_zero() const { return bps_ <= 0.0; }

  constexpr Bandwidth& operator+=(Bandwidth o) { bps_ += o.bps_; return *this; }
  constexpr Bandwidth& operator-=(Bandwidth o) { bps_ -= o.bps_; return *this; }

  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) { return Bandwidth{a.bps_ + b.bps_}; }
  friend constexpr Bandwidth operator-(Bandwidth a, Bandwidth b) { return Bandwidth{a.bps_ - b.bps_}; }
  friend constexpr Bandwidth operator*(Bandwidth a, double k) { return Bandwidth{a.bps_ * k}; }
  friend constexpr Bandwidth operator*(double k, Bandwidth a) { return Bandwidth{a.bps_ * k}; }
  friend constexpr Bandwidth operator/(Bandwidth a, double k) { return Bandwidth{a.bps_ / k}; }
  friend constexpr double operator/(Bandwidth a, Bandwidth b) { return a.bps_ / b.bps_; }
  friend constexpr auto operator<=>(Bandwidth, Bandwidth) = default;

 private:
  explicit constexpr Bandwidth(double b) : bps_{b} {}
  double bps_{0.0};
};

/// Transmission time of `size` at `rate`.
[[nodiscard]] constexpr Duration transfer_time(DataSize size, Bandwidth rate) {
  return Duration::seconds(size.to_bits() / rate.to_bps());
}

/// Data moved in `d` at `rate`.
[[nodiscard]] constexpr DataSize data_at(Bandwidth rate, Duration d) {
  return DataSize::bytes(rate.to_bps() * d.to_seconds() / 8.0);
}

/// A dimensionless power ratio expressed in decibels.  Losses are positive
/// dB values (a 0.25 dB crossing loss attenuates by 0.25 dB).
class Decibel {
 public:
  constexpr Decibel() = default;
  [[nodiscard]] static constexpr Decibel db(double v) { return Decibel{v}; }
  [[nodiscard]] static Decibel from_linear(double ratio) {
    return Decibel{10.0 * std::log10(ratio)};
  }
  [[nodiscard]] static constexpr Decibel zero() { return Decibel{0.0}; }

  [[nodiscard]] constexpr double value() const { return db_; }
  [[nodiscard]] double to_linear() const { return std::pow(10.0, db_ / 10.0); }

  constexpr Decibel& operator+=(Decibel o) { db_ += o.db_; return *this; }

  friend constexpr Decibel operator+(Decibel a, Decibel b) { return Decibel{a.db_ + b.db_}; }
  friend constexpr Decibel operator-(Decibel a, Decibel b) { return Decibel{a.db_ - b.db_}; }
  friend constexpr Decibel operator*(Decibel a, double k) { return Decibel{a.db_ * k}; }
  friend constexpr Decibel operator*(double k, Decibel a) { return Decibel{a.db_ * k}; }
  friend constexpr auto operator<=>(Decibel, Decibel) = default;

 private:
  explicit constexpr Decibel(double v) : db_{v} {}
  double db_{0.0};
};

/// Absolute optical power.  Stored as milliwatts; dBm accessors provided.
class Power {
 public:
  constexpr Power() = default;
  [[nodiscard]] static constexpr Power milliwatts(double mw) { return Power{mw}; }
  [[nodiscard]] static Power dbm(double d) { return Power{std::pow(10.0, d / 10.0)}; }
  [[nodiscard]] static constexpr Power zero() { return Power{0.0}; }

  [[nodiscard]] constexpr double to_milliwatts() const { return mw_; }
  [[nodiscard]] double to_dbm() const { return 10.0 * std::log10(mw_); }

  /// Attenuate this power by a (positive) dB loss.
  [[nodiscard]] Power attenuated_by(Decibel loss) const {
    return Power{mw_ * std::pow(10.0, -loss.value() / 10.0)};
  }

  friend constexpr Power operator+(Power a, Power b) { return Power{a.mw_ + b.mw_}; }
  friend constexpr Power operator*(Power a, double k) { return Power{a.mw_ * k}; }
  friend constexpr Power operator/(Power a, double k) { return Power{a.mw_ / k}; }
  friend constexpr double operator/(Power a, Power b) { return a.mw_ / b.mw_; }
  friend constexpr auto operator<=>(Power, Power) = default;

 private:
  explicit constexpr Power(double mw) : mw_{mw} {}
  double mw_{0.0};
};

/// Physical length on the wafer.  Stored as meters.
class Length {
 public:
  constexpr Length() = default;
  [[nodiscard]] static constexpr Length meters(double m) { return Length{m}; }
  [[nodiscard]] static constexpr Length millimeters(double mm) { return Length{mm * 1e-3}; }
  [[nodiscard]] static constexpr Length microns(double um) { return Length{um * 1e-6}; }
  [[nodiscard]] static constexpr Length zero() { return Length{0.0}; }

  [[nodiscard]] constexpr double to_meters() const { return m_; }
  [[nodiscard]] constexpr double to_millimeters() const { return m_ * 1e3; }
  [[nodiscard]] constexpr double to_microns() const { return m_ * 1e6; }

  constexpr Length& operator+=(Length o) { m_ += o.m_; return *this; }

  friend constexpr Length operator+(Length a, Length b) { return Length{a.m_ + b.m_}; }
  friend constexpr Length operator-(Length a, Length b) { return Length{a.m_ - b.m_}; }
  friend constexpr Length operator*(Length a, double k) { return Length{a.m_ * k}; }
  friend constexpr Length operator*(double k, Length a) { return Length{a.m_ * k}; }
  friend constexpr double operator/(Length a, Length b) { return a.m_ / b.m_; }
  friend constexpr Length operator/(Length a, double k) { return Length{a.m_ / k}; }
  friend constexpr auto operator<=>(Length, Length) = default;

 private:
  explicit constexpr Length(double m) : m_{m} {}
  double m_{0.0};
};

}  // namespace lp
