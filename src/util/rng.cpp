#include "util/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

namespace lp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& lane : s_) lane = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  // Box-Muller; draw u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  const double u = 1.0 - uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() {
  // Derive a child seed by consuming one draw; splitmix re-expansion in the
  // constructor decorrelates the child stream.
  return Rng{next() ^ 0xd1b54a32d192ed03ULL};
}

}  // namespace lp
