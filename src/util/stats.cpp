#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

namespace lp {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, width_{(hi - lo) / static_cast<double>(bins)}, counts_(bins, 0) {}

void Histogram::add(double x) {
  ++total_;
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  if (idx < 0) {
    ++underflow_;
    idx = 0;
  } else if (idx >= static_cast<std::ptrdiff_t>(counts_.size())) {
    ++overflow_;
    idx = static_cast<std::ptrdiff_t>(counts_.size()) - 1;
  }
  ++counts_[static_cast<std::size_t>(idx)];
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::string Histogram::to_ascii(std::size_t max_width) const {
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * max_width / peak;
    out << "  ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%10.4f", bin_center(b));
    out << buf << " | " << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return out.str();
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  const double nd = static_cast<double>(n);
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = nd * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (nd * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / nd;
  const double ss_tot = syy - sy * sy / nd;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

std::optional<ExponentialApproachFit> fit_exponential_approach(
    std::span<const double> ts, std::span<const double> ys) {
  const std::size_t n = std::min(ts.size(), ys.size());
  if (n < 10) return std::nullopt;

  // Estimate endpoints from the first and last deciles of the trace.
  const std::size_t decile = std::max<std::size_t>(1, n / 10);
  double y0 = 0.0, y_inf = 0.0;
  for (std::size_t i = 0; i < decile; ++i) y0 += ys[i];
  for (std::size_t i = n - decile; i < n; ++i) y_inf += ys[i];
  y0 /= static_cast<double>(decile);
  y_inf /= static_cast<double>(decile);

  const double amplitude = y0 - y_inf;
  if (std::abs(amplitude) < 1e-12) return std::nullopt;

  // Linearize: log|y - y_inf| = log|amplitude| - t/tau.  Only samples with a
  // meaningful residual contribute (within [2%, 98%] of the swing).
  std::vector<double> lt, lr;
  lt.reserve(n);
  lr.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double resid = (ys[i] - y_inf) / amplitude;
    if (resid > 0.02 && resid < 0.98) {
      lt.push_back(ts[i]);
      lr.push_back(std::log(resid));
    }
  }
  if (lt.size() < 4) return std::nullopt;
  const LinearFit line = fit_linear(lt, lr);
  if (line.slope >= 0.0) return std::nullopt;

  ExponentialApproachFit fit;
  fit.y0 = y0;
  fit.y_inf = y_inf;
  fit.tau = -1.0 / line.slope;
  fit.r_squared = line.r_squared;
  return fit;
}

GaussianFit fit_gaussian(std::span<const double> xs) {
  Summary s;
  for (double x : xs) s.add(x);
  return GaussianFit{.mean = s.mean(), .sigma = s.stddev()};
}

}  // namespace lp
