// Deterministic parallel sweep engine.
//
// Every headline experiment (bandwidth-utilization sweeps, failure-congestion
// searches, Monte-Carlo availability studies) is an embarrassingly parallel
// loop over independent trials.  This module provides the one primitive they
// all share: a small persistent thread pool with `parallel_for` /
// `parallel_reduce`, plus per-task RNG seeding so every result is
// *bit-identical at any thread count*.
//
// Determinism contract:
//   * Task bodies receive only their task index (and a stable worker index
//     for scratch-space reuse); any randomness must come from
//     `Rng{task_seed(base_seed, task_index)}`, never from a shared stream.
//   * `parallel_reduce` folds per-task values in ascending task order, so
//     floating-point accumulation order — and therefore the result — does
//     not depend on the thread count or on scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace lp::util {

/// A fixed-size pool of worker threads.  `threads == 1` runs everything
/// inline on the calling thread (no workers are spawned), which is also the
/// fallback when hardware concurrency is unknown.
class ThreadPool {
 public:
  /// `threads == 0` means one thread per hardware thread.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution streams, including the calling thread.
  [[nodiscard]] unsigned size() const { return worker_count_ + 1; }

  /// Runs `fn(task, worker)` for every task in [0, n).  `worker` is in
  /// [0, size()) and identifies the executing stream, so callers can keep one
  /// scratch workspace per worker.  The call blocks until all tasks finish;
  /// the calling thread participates as worker 0.  Task bodies must not
  /// throw; nested run() calls on the same pool execute inline on the
  /// calling task's thread (worker index 0).
  void run(std::size_t n, const std::function<void(std::size_t, unsigned)>& fn);

  /// The process-wide default pool (sized to hardware concurrency).
  static ThreadPool& shared();

 private:
  void worker_loop(unsigned worker);

  struct State;
  State* state_;
  unsigned worker_count_;
};

/// Thread-count override from the LIGHTPATH_THREADS environment variable.
/// Returns the parsed positive value, or 0 (meaning "use hardware
/// concurrency") when the variable is unset, empty, or unparsable.  Sweep
/// entry points consult this when the caller leaves the count at 0, so
/// `LIGHTPATH_THREADS=1` / `=8` can exercise the bit-identity contract
/// without recompiling.
[[nodiscard]] unsigned env_threads();

/// Derives the RNG seed for one task of a sweep.  The mix is a fixed
/// splitmix64-style hash of (base_seed, task_index): it depends on nothing
/// but those two values, so a task draws the same stream no matter which
/// worker runs it or how many workers exist.
[[nodiscard]] std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t task_index);

/// parallel_for over [0, n) on `pool` (default: the shared pool).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr);

/// Maps every task index to a value and folds the values in ascending task
/// order: `acc = reduce(acc, map(i))` for i = 0..n-1.  The map runs in
/// parallel; the fold is sequential over the buffered per-task values, so
/// the result is identical at any thread count.
template <typename T, typename Map, typename Reduce>
[[nodiscard]] T parallel_reduce(std::size_t n, T init, Map&& map, Reduce&& reduce,
                                ThreadPool* pool = nullptr) {
  std::vector<T> values(n, init);
  parallel_for(
      n, [&](std::size_t i) { values[i] = map(i); }, pool);
  T acc = std::move(init);
  for (std::size_t i = 0; i < n; ++i) acc = reduce(std::move(acc), std::move(values[i]));
  return acc;
}

}  // namespace lp::util
