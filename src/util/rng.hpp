// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic components (stitch-loss sampling, workload generators,
// failure injection) take an explicit `Rng&` so experiments are exactly
// reproducible from a seed.  The generator is xoshiro256++, which is fast,
// well-distributed, and has a tiny state that is cheap to fork per-component.
#pragma once

#include <array>
#include <cstdint>

namespace lp {

class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from a single seed via splitmix64, per the
  /// xoshiro authors' recommendation.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface.
  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be positive.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// A new generator whose stream is decorrelated from this one.  Use to
  /// give each subsystem its own stream so adding draws in one place does
  /// not perturb another.
  [[nodiscard]] Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace lp
