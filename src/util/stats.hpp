// Small statistics toolkit used by the experiment harnesses: streaming
// summaries, fixed-bin histograms, percentiles, and the least-squares fits
// (linear, exponential-approach) used to reproduce the paper's Figure 3
// device characterizations.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace lp {

/// Streaming mean/variance/min/max via Welford's algorithm.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Fixed-range, equal-width histogram.
class Histogram {
 public:
  /// Bins the half-open range [lo, hi) into `bins` equal cells.  Samples
  /// outside the range are clamped into the first/last bin and counted in
  /// underflow()/overflow().
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] double bin_width() const { return width_; }

  /// Fraction of samples in `bin` (0 if empty histogram).
  [[nodiscard]] double density(std::size_t bin) const;

  /// Renders an ASCII bar chart, one bin per row, for benchmark reports.
  [[nodiscard]] std::string to_ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_{0};
  std::size_t underflow_{0};
  std::size_t overflow_{0};
};

/// Returns the p-th percentile (p in [0,100]) by linear interpolation.
/// The input need not be sorted; an internal copy is sorted.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Ordinary least-squares line y = slope*x + intercept.
struct LinearFit {
  double slope{0.0};
  double intercept{0.0};
  double r_squared{0.0};
};
[[nodiscard]] LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fit of a first-order step response y(t) = y_inf + (y0 - y_inf)*exp(-t/tau).
/// Used to extract the thermo-optic time constant from an MZI switching
/// transient the way the paper fits Figure 3a.
struct ExponentialApproachFit {
  double y0{0.0};
  double y_inf{0.0};
  double tau{0.0};
  double r_squared{0.0};
};

/// Fits the model above given samples of (t, y).  y0 and y_inf are taken
/// from the first/last deciles of the trace; tau is fit by linear regression
/// on log-transformed residuals.  Returns nullopt when the trace is too
/// short or does not decay.
[[nodiscard]] std::optional<ExponentialApproachFit> fit_exponential_approach(
    std::span<const double> ts, std::span<const double> ys);

/// Gaussian parameters estimated from samples (method of moments).
struct GaussianFit {
  double mean{0.0};
  double sigma{0.0};
};
[[nodiscard]] GaussianFit fit_gaussian(std::span<const double> xs);

}  // namespace lp
