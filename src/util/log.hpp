// Lightweight leveled logger.  Benchmarks and examples use it for progress
// lines; the library itself logs only at debug level so simulation runs are
// quiet by default.  printf-style formatting (the toolchain predates
// std::format support).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace lp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Writes a pre-formatted line to stderr with a level prefix.
void log_line(LogLevel level, std::string_view message);

namespace detail {

template <typename... Args>
std::string format_message(const char* fmt, Args&&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return std::string{fmt};
  } else {
    const int needed = std::snprintf(nullptr, 0, fmt, args...);
    if (needed <= 0) return std::string{fmt};
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::snprintf(out.data(), out.size() + 1, fmt, args...);
    return out;
  }
}

}  // namespace detail

template <typename... Args>
void log_debug(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::format_message(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::format_message(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::format_message(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::format_message(fmt, std::forward<Args>(args)...));
}

}  // namespace lp
