#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <string>

namespace lp {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

constexpr const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s\n", prefix(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace lp
