#include "routing/router.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace lp::routing {

using fabric::Direction;
using fabric::TileId;
using fabric::Wafer;

std::optional<std::vector<Direction>> find_route(const Wafer& wafer, TileId from,
                                                 TileId to, const RouteOptions& options) {
  if (from == to) return std::vector<Direction>{};

  // State space: tile x incoming direction (4 dirs + 1 "none" for source).
  constexpr std::size_t kNoDir = 4;
  const std::size_t tiles = wafer.tile_count();
  const std::size_t states = tiles * 5;
  std::vector<double> dist(states, std::numeric_limits<double>::infinity());
  std::vector<std::int32_t> prev_state(states, -1);

  const auto state_of = [](TileId t, std::size_t in_dir) {
    return static_cast<std::size_t>(t) * 5 + in_dir;
  };

  struct Item {
    double cost;
    std::size_t state;
    bool operator>(const Item& o) const { return cost > o.cost; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;

  const std::size_t start = state_of(from, kNoDir);
  dist[start] = 0.0;
  heap.push(Item{0.0, start});

  while (!heap.empty()) {
    const auto [cost, state] = heap.top();
    heap.pop();
    if (cost > dist[state]) continue;
    const TileId tile = static_cast<TileId>(state / 5);
    const std::size_t in_dir = state % 5;
    if (tile == to) break;

    for (Direction d : fabric::kAllDirections) {
      const auto next = wafer.neighbor(tile, d);
      if (!next) continue;
      if (wafer.lanes_free(tile, d) < options.lanes) continue;
      const bool is_turn =
          in_dir != kNoDir && d != static_cast<Direction>(in_dir);
      const double step = 1.0 + (is_turn ? options.turn_penalty : 0.0);
      const std::size_t next_state = state_of(*next, static_cast<std::size_t>(d));
      if (dist[state] + step < dist[next_state]) {
        dist[next_state] = dist[state] + step;
        prev_state[next_state] = static_cast<std::int32_t>(state);
        heap.push(Item{dist[next_state], next_state});
      }
    }
  }

  // Best terminal state at `to` over all incoming directions.
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_state = 0;
  for (std::size_t in = 0; in < 5; ++in) {
    const std::size_t s = state_of(to, in);
    if (dist[s] < best) {
      best = dist[s];
      best_state = s;
    }
  }
  if (!std::isfinite(best)) return std::nullopt;

  std::vector<Direction> hops;
  std::size_t s = best_state;
  while (prev_state[s] >= 0) {
    hops.push_back(static_cast<Direction>(s % 5));
    s = static_cast<std::size_t>(prev_state[s]);
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

}  // namespace lp::routing
