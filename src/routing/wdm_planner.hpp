// Circuit planning on *shared* WDM buses — the counterfactual design.
//
// LIGHTPATH gives every circuit private waveguide lanes (Figure 4's
// thousands of parallel guides), so wavelength continuity never bites.  A
// cheaper fabric would share one WDM bus per edge; then a k-lambda circuit
// needs k channels free on every edge of its path simultaneously, and
// requests start blocking well below full utilization (the classic RWA
// result).  WdmPlanner implements that design: route candidates (XY, YX,
// capacity-aware router) tried in order against the WdmLedger, with
// blocking statistics split into "no path" vs "continuity" so the ablation
// bench can show why the paper's lane-rich design is the right call.
#pragma once

#include <cstdint>
#include <vector>

#include "lightpath/wafer.hpp"
#include "phys/wdm.hpp"
#include "routing/planner.hpp"
#include "routing/wavelength.hpp"

namespace lp::routing {

struct WdmCircuit {
  Demand demand{};
  std::vector<fabric::Direction> hops;
  std::vector<phys::ChannelId> channels;
};

struct WdmPlannerStats {
  std::uint64_t placed{0};
  std::uint64_t blocked_continuity{0};  ///< a path existed, channels did not
  std::uint64_t blocked_no_path{0};

  [[nodiscard]] double blocking_probability() const {
    const std::uint64_t total = placed + blocked_continuity + blocked_no_path;
    return total == 0 ? 0.0
                      : static_cast<double>(blocked_continuity + blocked_no_path) /
                            static_cast<double>(total);
  }
};

class WdmPlanner {
 public:
  /// Plans over `wafer`'s topology with `channels` WDM channels per edge
  /// bus.  The wafer is only used for geometry; occupancy lives in the
  /// internal ledger.
  explicit WdmPlanner(const fabric::Wafer& wafer, std::uint32_t channels = 16);

  /// Tries XY, then YX, then the capacity-aware router's path; the first
  /// candidate with `demand.wavelengths` continuous channels wins.
  Result<WdmCircuit> place(const Demand& demand);

  void release(const WdmCircuit& circuit);

  [[nodiscard]] const WdmPlannerStats& stats() const { return stats_; }
  [[nodiscard]] const WdmLedger& ledger() const { return ledger_; }
  void reset_stats() { stats_ = WdmPlannerStats{}; }

 private:
  const fabric::Wafer& wafer_;
  WdmLedger ledger_;
  WdmPlannerStats stats_;
};

}  // namespace lp::routing
