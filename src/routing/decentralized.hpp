// Decentralized circuit setup (§5, "Decentralized algorithms").
//
// A centralized controller that tracks every waveguide does not scale to
// hundreds of accelerators with MoE-style dynamic traffic.  This module
// simulates the natural decentralized alternative: each source tile
// independently sends a SETUP probe along a self-chosen path; every tile on
// the path locally reserves lanes and forwards the probe; a tile without
// spare lanes NACKs, reservations unwind, and the source retries a
// different path variant after randomized exponential backoff.
//
// The simulation runs against a *copy* of the fabric's lane ledger (the
// real fabric is untouched) and reports per-demand setup latency, retry and
// message counts — the quantities the bench compares against the
// centralized planner.
#pragma once

#include <cstdint>
#include <vector>

#include "lightpath/fabric.hpp"
#include "routing/planner.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lp::routing {

struct DecentralizedParams {
  /// One-hop probe/ack propagation + forwarding time between tiles.
  Duration hop_latency{Duration::nanos(10.0)};
  /// Local reservation processing at each tile.
  Duration process_latency{Duration::nanos(5.0)};
  /// First retry backoff; doubles each retry, with uniform jitter.
  Duration backoff_base{Duration::nanos(200.0)};
  unsigned max_retries{16};
  std::uint64_t seed{0x5eed};
};

struct SetupOutcome {
  bool success{false};
  Duration completion{Duration::zero()};
  unsigned retries{0};
  unsigned messages{0};
};

struct DecentralizedReport {
  std::vector<SetupOutcome> per_demand;
  Duration makespan{Duration::zero()};
  std::uint64_t total_messages{0};
  unsigned failures{0};
  /// Settle latency still applies once circuits are programmed.
  Duration settle{Duration::zero()};
};

/// Simulates decentralized setup of all same-wafer demands.  Demands start
/// simultaneously at t=0 (the worst-case burst an MoE gating step creates).
[[nodiscard]] DecentralizedReport run_decentralized_setup(
    const fabric::Fabric& fab, const std::vector<Demand>& demands,
    const DecentralizedParams& params = {});

/// Cost model for the centralized baseline on the same burst: every demand
/// is round-tripped to one controller (hop latency per fabric hop to the
/// controller tile), planned sequentially (per-demand planning cost), then
/// programmed as one batch.  Used by bench_decentralized for contrast.
struct CentralizedParams {
  Duration request_rtt{Duration::micros(1.0)};
  Duration plan_per_demand{Duration::nanos(300.0)};
};

[[nodiscard]] Duration centralized_setup_latency(const fabric::Fabric& fab,
                                                 std::size_t demand_count,
                                                 const CentralizedParams& params = {});

}  // namespace lp::routing
