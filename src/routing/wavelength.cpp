#include "routing/wavelength.hpp"

#include <algorithm>

namespace lp::routing {

using fabric::Direction;
using fabric::TileId;
using phys::ChannelId;

WdmLedger::WdmLedger(const fabric::Wafer& wafer, std::uint32_t channels)
    : wafer_{wafer},
      channels_{channels},
      used_(static_cast<std::size_t>(wafer.tile_count()) * 4 * channels, false) {}

std::size_t WdmLedger::edge_index(TileId tile, Direction dir) const {
  return static_cast<std::size_t>(tile) * 4 + static_cast<std::size_t>(dir);
}

bool WdmLedger::channel_free(TileId from, std::span<const Direction> path,
                             ChannelId c) const {
  TileId at = from;
  for (Direction d : path) {
    const auto next = wafer_.neighbor(at, d);
    if (!next) return false;
    if (edge_channel_used(edge_index(at, d), c)) return false;
    at = *next;
  }
  return true;
}

Result<std::vector<ChannelId>> WdmLedger::assign(TileId from,
                                                 std::span<const Direction> path,
                                                 std::uint32_t k) {
  std::vector<ChannelId> chosen;
  for (ChannelId c = 0; c < channels_ && chosen.size() < k; ++c) {
    if (channel_free(from, path, c)) chosen.push_back(c);
  }
  if (chosen.size() < k)
    return Err("wavelength continuity violated: only " +
               std::to_string(chosen.size()) + " of " + std::to_string(k) +
               " channels free along the path");
  // Commit.
  TileId at = from;
  for (Direction d : path) {
    const std::size_t edge = edge_index(at, d);
    for (ChannelId c : chosen) used_[edge * channels_ + c] = true;
    at = *wafer_.neighbor(at, d);
  }
  return chosen;
}

void WdmLedger::release(TileId from, std::span<const Direction> path,
                        std::span<const ChannelId> assigned) {
  TileId at = from;
  for (Direction d : path) {
    const auto next = wafer_.neighbor(at, d);
    if (!next) return;
    const std::size_t edge = edge_index(at, d);
    for (ChannelId c : assigned) used_[edge * channels_ + c] = false;
    at = *next;
  }
}

double WdmLedger::occupancy(TileId tile, Direction dir) const {
  const std::size_t edge = edge_index(tile, dir);
  std::uint32_t busy = 0;
  for (ChannelId c = 0; c < channels_; ++c) {
    if (edge_channel_used(edge, c)) ++busy;
  }
  return static_cast<double>(busy) / channels_;
}

double WdmLedger::fragmentation(TileId tile, Direction dir) const {
  const std::size_t edge = edge_index(tile, dir);
  std::uint32_t free_total = 0, run = 0, best_run = 0;
  for (ChannelId c = 0; c < channels_; ++c) {
    if (!edge_channel_used(edge, c)) {
      ++free_total;
      ++run;
      best_run = std::max(best_run, run);
    } else {
      run = 0;
    }
  }
  if (free_total == 0) return 0.0;
  return 1.0 - static_cast<double>(best_run) / static_cast<double>(free_total);
}

}  // namespace lp::routing
