// Sharded lane ledger: concurrent speculative lane reservation without a
// global lock.
//
// The Wafer resource ledger is single-threaded by design; concurrent
// planning needs a ledger many threads can reserve against at once.  This
// shards lane occupancy by wafer *quadrant* (4 shards per wafer — routes
// have strong spatial locality, so most reservations touch 1-2 shards) and
// reserves along a path with ordered two-phase locking:
//
//   1. collect the shards the path touches, sort ascending (total order
//      over locks => no deadlock),
//   2. lock them all, commit hop by hop with rollback on shortage,
//   3. unlock.
//
// Reservation is atomic: either every hop of the path is reserved or none
// is.  Per-edge peak occupancy is tracked under the same locks, so tests
// can assert the non-overlap invariant (peak never exceeds capacity) over
// an entire multi-threaded run, not just its final state.
//
// The ledger is a planning overlay — it mirrors wafer geometry/capacity at
// construction but does not touch the Fabric.  The concurrent planner uses
// it for speculative Phase-A reservations; the authoritative commit still
// goes through Fabric's own ledger (see concurrent_planner.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "lightpath/fabric.hpp"

namespace lp::routing {

class ShardedLaneLedger {
 public:
  explicit ShardedLaneLedger(const fabric::Fabric& fab);

  /// Shard owning the directed edges that leave `tile`: wafer*4 + quadrant.
  [[nodiscard]] std::size_t shard_of(fabric::WaferId wafer, fabric::TileId tile) const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Atomically reserve `n` lanes on every hop of `path` from `from`.
  /// Returns false (and reserves nothing) on shortage or a malformed path.
  /// Thread-safe; deadlock-free via ordered two-phase locking.
  [[nodiscard]] bool try_reserve_path(fabric::WaferId wafer, fabric::TileId from,
                                      std::span<const fabric::Direction> path,
                                      std::uint32_t n);

  /// Release `n` lanes along the path (clamped at zero per edge).
  void release_path(fabric::WaferId wafer, fabric::TileId from,
                    std::span<const fabric::Direction> path, std::uint32_t n);

  [[nodiscard]] std::uint32_t reserved(fabric::WaferId wafer, fabric::TileId tile,
                                       fabric::Direction d) const;
  [[nodiscard]] std::uint32_t capacity(fabric::WaferId wafer, fabric::TileId tile,
                                       fabric::Direction d) const;
  [[nodiscard]] std::uint32_t peak(fabric::WaferId wafer, fabric::TileId tile,
                                   fabric::Direction d) const;

  /// Sum of all outstanding reservations (locks every shard; diagnostics).
  [[nodiscard]] std::uint64_t total_reserved() const;

  /// True iff no edge's peak occupancy ever exceeded its capacity — the
  /// non-overlap invariant over the whole run.
  [[nodiscard]] bool peaks_within_capacity() const;

 private:
  struct Hop {
    std::size_t edge;   ///< flat index into used_/capacity_/peak_
    std::size_t shard;  ///< shard owning that edge
  };

  [[nodiscard]] std::size_t edge_index(fabric::WaferId wafer, fabric::TileId tile,
                                       fabric::Direction d) const;
  /// Expands a path into per-hop edge/shard pairs; false if it leaves the
  /// wafer.
  [[nodiscard]] bool expand_path(fabric::WaferId wafer, fabric::TileId from,
                                 std::span<const fabric::Direction> path,
                                 std::vector<Hop>& out) const;

  std::int32_t rows_{0};
  std::int32_t cols_{0};
  std::uint32_t tiles_per_wafer_{0};
  std::vector<std::uint32_t> capacity_;  ///< immutable after construction
  std::vector<std::uint32_t> used_;
  std::vector<std::uint32_t> peak_;
  /// unique_ptr because std::mutex is neither movable nor copyable.
  std::vector<std::unique_ptr<std::mutex>> shards_;
};

}  // namespace lp::routing
