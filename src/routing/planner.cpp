#include "routing/planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace lp::routing {

using fabric::Fabric;
using fabric::GlobalTile;

CircuitPlanner::CircuitPlanner(Fabric& fab, RouteOptions options)
    : fabric_{fab}, options_{options} {}

std::vector<Demand> plan_order(const Fabric& fab, std::vector<Demand> demands) {
  // Longest demands first: long circuits are the hardest to route around
  // existing reservations, so give them first pick of the lanes.  Ties are
  // broken by ascending (src, dst, wavelengths) so the order — and hence
  // the whole plan — is a pure function of the demand *set*, not of the
  // order the caller happened to supply it in.
  auto manhattan = [&](const Demand& d) {
    if (d.src.wafer != d.dst.wafer) return std::numeric_limits<std::int32_t>::max();
    const auto& w = fab.wafer(d.src.wafer);
    const auto a = w.coord_of(d.src.tile);
    const auto b = w.coord_of(d.dst.tile);
    return std::abs(a.row - b.row) + std::abs(a.col - b.col);
  };
  std::vector<std::pair<std::int32_t, Demand>> keyed;
  keyed.reserve(demands.size());
  for (const Demand& d : demands) keyed.emplace_back(manhattan(d), d);
  std::sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (std::size_t i = 0; i < keyed.size(); ++i) demands[i] = keyed[i].second;
  return demands;
}

Result<fabric::CircuitId> CircuitPlanner::place_one(const Demand& demand) {
  if (demand.src.wafer != demand.dst.wafer) {
    return fabric_.connect(demand.src, demand.dst, demand.wavelengths);
  }
  RouteOptions opts = options_;
  opts.lanes = demand.wavelengths;
  const auto hops =
      find_route(fabric_.wafer(demand.src.wafer), demand.src.tile, demand.dst.tile, opts);
  if (!hops) return Err("no feasible waveguide path");
  return fabric_.connect_via(demand.src, demand.dst, *hops, demand.wavelengths);
}

PlanReport CircuitPlanner::place_all(const std::vector<Demand>& demands) {
  PlanReport report;
  const std::vector<Demand> ordered = plan_order(fabric_, demands);
  for (const Demand& d : ordered) {
    auto placed = place_one(d);
    if (placed) {
      const fabric::Circuit* c = fabric_.circuit(placed.value());
      report.mzis_programmed += c != nullptr ? c->mzis_to_program() : 0;
      report.placed.push_back(PlacedCircuit{d, placed.value()});
    } else {
      report.failed.push_back(d);
    }
  }
  // The whole batch settles in parallel after serial programming.
  report.reconfig_latency = fabric_.reconfig().batch_latency(report.mzis_programmed);
  return report;
}

void CircuitPlanner::release_all(const PlanReport& report) {
  for (const auto& placed : report.placed) fabric_.disconnect(placed.id);
}

}  // namespace lp::routing
