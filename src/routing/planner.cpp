#include "routing/planner.hpp"

#include <algorithm>
#include <cmath>

namespace lp::routing {

using fabric::Fabric;
using fabric::GlobalTile;

CircuitPlanner::CircuitPlanner(Fabric& fab, RouteOptions options)
    : fabric_{fab}, options_{options} {}

Result<fabric::CircuitId> CircuitPlanner::place_one(const Demand& demand) {
  if (demand.src.wafer != demand.dst.wafer) {
    return fabric_.connect(demand.src, demand.dst, demand.wavelengths);
  }
  RouteOptions opts = options_;
  opts.lanes = demand.wavelengths;
  const auto hops =
      find_route(fabric_.wafer(demand.src.wafer), demand.src.tile, demand.dst.tile, opts);
  if (!hops) return Err("no feasible waveguide path");
  return fabric_.connect_via(demand.src, demand.dst, *hops, demand.wavelengths);
}

PlanReport CircuitPlanner::place_all(const std::vector<Demand>& demands) {
  PlanReport report;

  // Longest demands first: long circuits are the hardest to route around
  // existing reservations, so give them first pick of the lanes.
  std::vector<Demand> ordered = demands;
  auto manhattan = [&](const Demand& d) {
    if (d.src.wafer != d.dst.wafer) return std::numeric_limits<std::int32_t>::max();
    const auto& w = fabric_.wafer(d.src.wafer);
    const auto a = w.coord_of(d.src.tile);
    const auto b = w.coord_of(d.dst.tile);
    return std::abs(a.row - b.row) + std::abs(a.col - b.col);
  };
  std::stable_sort(ordered.begin(), ordered.end(), [&](const Demand& a, const Demand& b) {
    return manhattan(a) > manhattan(b);
  });

  for (const Demand& d : ordered) {
    auto placed = place_one(d);
    if (placed) {
      const fabric::Circuit* c = fabric_.circuit(placed.value());
      report.mzis_programmed += c != nullptr ? c->mzis_to_program() : 0;
      report.placed.push_back(PlacedCircuit{d, placed.value()});
    } else {
      report.failed.push_back(d);
    }
  }
  // The whole batch settles in parallel after serial programming.
  report.reconfig_latency = fabric_.reconfig().batch_latency(report.mzis_programmed);
  return report;
}

void CircuitPlanner::release_all(const PlanReport& report) {
  for (const auto& placed : report.placed) fabric_.disconnect(placed.id);
}

}  // namespace lp::routing
