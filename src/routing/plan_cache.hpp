// Memoizing front-end for CircuitPlanner: (demand-set fingerprint,
// fabric epoch) -> placed routes, with revalidate-on-use invalidation.
//
// The paper's §5 centralized controller re-solves wavelength/lane
// assignment from scratch on every reconfiguration.  Under churn (jobs
// arriving/leaving, Morphlux-style slice morphing, fault recovery) the
// same demand sets recur against the same ledger states, so the Dijkstra
// searches — the dominant cost — are pure waste.  The cache memoizes the
// *hop sequences* a fresh plan produced and replays them through
// Fabric::connect_via / Fabric::connect, skipping route search entirely.
//
// Correctness contract (see DESIGN.md §8): fresh planning is a
// deterministic pure function of (demand multiset, resource ledger).
// A memoized plan is replayed only when ALL of
//   1. the fabric epoch matches (no fault apply/revert, repair rung,
//      spare swap, or fiber up/down since the plan was recorded),
//   2. the full ledger digest matches (identical lane/Tx/Rx/fiber
//      occupancy — revalidate-on-use), and
//   3. the plan-ordered demand vector compares equal (never trust the
//      fingerprint hash alone),
// hold — under which replay is provably identical to fresh planning.
// Anything else is a miss and plans fresh; invalidation is conservative
// (a bump can only cost a miss, never a wrong plan).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lightpath/fabric.hpp"
#include "routing/planner.hpp"
#include "routing/router.hpp"

namespace lp::routing {

struct PlanCacheStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  /// Lookups rejected because the entry was recorded under an older epoch.
  std::uint64_t epoch_invalidations{0};
  /// Lookups rejected by revalidate-on-use: epoch matched but the ledger
  /// digest did not (e.g. a foreign reservation moved lanes).
  std::uint64_t digest_mismatches{0};
  /// Replays that aborted mid-way (should be zero: digest equality makes
  /// every connect succeed; counted for defense in depth).
  std::uint64_t replay_aborts{0};
  std::uint64_t evictions{0};
  /// Single-route memo (route_for) counters, used by the repair ladder.
  std::uint64_t route_hits{0};
  std::uint64_t route_misses{0};
  /// Lookups rejected because the memoized (or freshly found) path crosses
  /// a quarantined component (set_quarantine).  Quarantine is a *view*, not
  /// an invalidation: the entry survives untouched for when the quarantine
  /// lifts, and the fabric epoch is never bumped.
  std::uint64_t quarantine_rejections{0};
};

/// Caching wrapper over CircuitPlanner.  Not thread-safe; each planning
/// context owns its own cache (the sharded ledger covers concurrency).
class PlanCache {
 public:
  explicit PlanCache(fabric::Fabric& fab, RouteOptions options = {},
                     std::size_t max_entries = 1024);

  /// Drop-in replacement for CircuitPlanner::place_all.  On a validated
  /// hit, replays the memoized routes; otherwise plans fresh and records
  /// the result.  Reports are bit-identical to the fresh planner's either
  /// way (modulo CircuitIds, which are allocation-order handles).
  [[nodiscard]] PlanReport place_all(const std::vector<Demand>& demands);

  /// Tears down everything a report placed.
  void release_all(const PlanReport& report);

  /// Memoized single-demand route for the repair ladder: same-wafer hop
  /// sequence find_route would produce right now, or nullopt if no route
  /// (or the demand is cross-wafer, which has no hop-path to memoize).
  /// Validated by the same epoch+digest rule as full plans.
  [[nodiscard]] std::optional<std::vector<fabric::Direction>> route_for(
      const Demand& demand);

  /// True when the component (a tile's directed port) is quarantined by the
  /// flap damper and must not carry new circuits.
  using QuarantinePredicate = std::function<bool(fabric::GlobalTile, fabric::Direction)>;

  /// Installs (or clears, with nullptr) the quarantine view.  Memoized hop
  /// paths that touch a quarantined port are rejected at lookup time —
  /// place_all falls through to fresh planning, route_for returns nullopt —
  /// but the entries themselves are kept and the fabric epoch is NOT
  /// bumped: when the quarantine lifts the cache is warm again instantly.
  void set_quarantine(QuarantinePredicate quarantine);

  [[nodiscard]] const PlanCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return entry_count_; }
  void clear();

  /// Order-insensitive fingerprint of a demand multiset: commutative sum
  /// of per-demand splitmix-finalized hashes.  Collisions are tolerated —
  /// every hit compares the plan-ordered demand vectors before replay.
  [[nodiscard]] static std::uint64_t demand_fingerprint(
      const std::vector<Demand>& demands);

 private:
  struct Step {
    Demand demand{};
    bool cross_wafer{false};
    /// Same-wafer only: the memoized hop path.
    std::vector<fabric::Direction> hops;
  };
  struct Entry {
    std::uint64_t epoch{0};
    std::uint64_t digest{0};
    std::vector<Demand> ordered;  ///< plan_order of the recorded demand set
    std::vector<Step> placed;     ///< in commit order
    std::vector<Demand> failed;   ///< in plan order
    std::uint64_t last_use{0};
  };
  struct RouteEntry {
    std::uint64_t epoch{0};
    std::uint64_t digest{0};
    Demand demand{};
    std::optional<std::vector<fabric::Direction>> hops;
    std::uint64_t last_use{0};
  };

  [[nodiscard]] std::optional<PlanReport> try_replay(Entry& entry);
  /// Whether a same-wafer hop path touches any quarantined port (both the
  /// exit port of each tile left and the entry port of each tile reached).
  [[nodiscard]] bool path_quarantined(fabric::GlobalTile src,
                                      const std::vector<fabric::Direction>& hops) const;
  void remember(std::uint64_t fingerprint, std::uint64_t epoch, std::uint64_t digest,
                std::vector<Demand> ordered, const PlanReport& report);
  void evict_if_needed();

  fabric::Fabric& fabric_;
  CircuitPlanner planner_;
  RouteOptions options_;
  std::size_t max_entries_;
  /// fingerprint -> entries (several may share a fingerprint: same demand
  /// set recorded against distinct ledger states, or a rare collision).
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
  std::unordered_map<std::uint64_t, std::vector<RouteEntry>> routes_;
  std::size_t entry_count_{0};
  std::uint64_t use_clock_{0};
  QuarantinePredicate quarantine_;
  PlanCacheStats stats_;
};

}  // namespace lp::routing
