// Multi-demand circuit planning: establish a whole set of chip-to-chip
// circuits on non-overlapping waveguides.
//
// This is the centralized controller of §5 ("a centralized controller
// tracking the state of every waveguide to avoid overlaps"): it sees the
// full lane ledger and places demands one by one, longest first, using the
// capacity-aware router with fallback re-ordering.  Non-overlap is
// guaranteed by construction because every circuit reserves dedicated
// lanes.  The decentralized protocol in decentralized.hpp is the contrast.
#pragma once

#include <vector>

#include "lightpath/fabric.hpp"
#include "routing/router.hpp"
#include "util/result.hpp"

namespace lp::routing {

struct Demand {
  fabric::GlobalTile src{};
  fabric::GlobalTile dst{};
  std::uint32_t wavelengths{1};
  friend constexpr auto operator<=>(const Demand&, const Demand&) = default;
};

/// The planner's total placement order: Manhattan distance descending
/// (cross-wafer counts as infinite), ties broken by ascending
/// (src, dst, wavelengths).  A *total* order, so the resulting plan is
/// invariant under permutation of the input demand set — which also makes
/// demand sets safely comparable for plan-cache lookups.
[[nodiscard]] std::vector<Demand> plan_order(const fabric::Fabric& fab,
                                             std::vector<Demand> demands);

struct PlacedCircuit {
  Demand demand{};
  fabric::CircuitId id{0};
};

struct PlanReport {
  std::vector<PlacedCircuit> placed;
  std::vector<Demand> failed;
  /// Total MZIs programmed across all placed circuits.
  unsigned mzis_programmed{0};
  /// Latency to program the whole batch at once (parallel settle).
  Duration reconfig_latency{Duration::zero()};

  [[nodiscard]] bool complete() const { return failed.empty(); }
};

class CircuitPlanner {
 public:
  explicit CircuitPlanner(fabric::Fabric& fab, RouteOptions options = {});

  /// Places all demands (longest Manhattan distance first).  Demands that
  /// cannot be placed are reported in `failed`; placed circuits stay
  /// established in the fabric (use release_all or Fabric::disconnect to
  /// undo).  Same-wafer demands use the capacity-aware router; cross-wafer
  /// demands fall back to Fabric::connect's fiber selection.
  [[nodiscard]] PlanReport place_all(const std::vector<Demand>& demands);

  /// Tears down everything a report placed.
  void release_all(const PlanReport& report);

  /// Places a single demand (the primitive place_all iterates).  Public so
  /// the concurrent planner's sequential-commit fallback can reuse it.
  Result<fabric::CircuitId> place_one(const Demand& demand);

 private:
  fabric::Fabric& fabric_;
  RouteOptions options_;
};

}  // namespace lp::routing
