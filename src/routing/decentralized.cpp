#include "routing/decentralized.hpp"

#include <algorithm>
#include <functional>
#include <memory>

#include "sim/event_engine.hpp"

namespace lp::routing {

using fabric::Direction;
using fabric::TileId;
using fabric::Wafer;

namespace {

/// XY or YX dimension-ordered path, chosen by `yx_first`.
std::vector<Direction> ordered_route(const Wafer& wafer, TileId from, TileId to,
                                     bool yx_first) {
  std::vector<Direction> hops;
  auto c = wafer.coord_of(from);
  const auto goal = wafer.coord_of(to);
  const auto do_cols = [&] {
    while (c.col != goal.col) {
      hops.push_back(c.col < goal.col ? Direction::kEast : Direction::kWest);
      c.col += c.col < goal.col ? 1 : -1;
    }
  };
  const auto do_rows = [&] {
    while (c.row != goal.row) {
      hops.push_back(c.row < goal.row ? Direction::kSouth : Direction::kNorth);
      c.row += c.row < goal.row ? 1 : -1;
    }
  };
  if (yx_first) {
    do_rows();
    do_cols();
  } else {
    do_cols();
    do_rows();
  }
  return hops;
}

struct DemandState {
  Demand demand;
  unsigned retries{0};
  unsigned messages{0};
};

}  // namespace

DecentralizedReport run_decentralized_setup(const fabric::Fabric& fab,
                                            const std::vector<Demand>& demands,
                                            const DecentralizedParams& params) {
  DecentralizedReport report;
  report.per_demand.resize(demands.size());
  if (demands.empty()) return report;

  // Scratch lane ledger: protocol reservations happen here.
  std::vector<Wafer> wafers;
  wafers.reserve(fab.wafer_count());
  for (fabric::WaferId w = 0; w < fab.wafer_count(); ++w) wafers.push_back(fab.wafer(w));

  sim::EventEngine queue;
  Rng rng{params.seed};
  std::vector<DemandState> states;
  states.reserve(demands.size());
  for (const Demand& d : demands) states.push_back(DemandState{d, 0, 0});

  // Each attempt walks the path hop by hop in simulated time.  The walk is
  // modelled as a single event at the attempt's completion time, with the
  // reservation outcome decided against the scratch ledger at send time —
  // an optimistic approximation that still captures contention, because
  // reservations from earlier-scheduled attempts are visible to later ones
  // through the shared ledger.
  using AttemptFn = std::function<void(std::size_t)>;
  AttemptFn attempt_fn;  // outlives queue.run(); callbacks hold a raw pointer
  AttemptFn* attempt = &attempt_fn;

  attempt_fn = [&, attempt](std::size_t i) {
    DemandState& st = states[i];
    const Demand& d = st.demand;
    if (d.src.wafer != d.dst.wafer) {
      // Cross-wafer demands are out of scope for the on-wafer protocol.
      report.per_demand[i] = SetupOutcome{false, queue.now() - TimePoint{}, st.retries,
                                          st.messages};
      ++report.failures;
      return;
    }
    Wafer& w = wafers[d.src.wafer];
    const bool yx = st.retries % 2 == 1;  // alternate path variant per retry
    const auto hops = ordered_route(w, d.src.tile, d.dst.tile, yx);

    // Walk hop-by-hop until a reservation fails.
    TileId at = d.src.tile;
    std::size_t taken = 0;
    for (; taken < hops.size(); ++taken) {
      if (!w.reserve_lanes(at, hops[taken], d.wavelengths)) break;
      at = *w.neighbor(at, hops[taken]);
    }
    const bool ok = taken == hops.size();
    const std::size_t probe_hops = ok ? hops.size() : taken + 1;
    // Probe to the failure point (or destination) + ack/nack back.
    const Duration elapsed =
        (params.hop_latency + params.process_latency) * static_cast<double>(2 * probe_hops);
    st.messages += static_cast<unsigned>(2 * probe_hops);

    if (ok) {
      queue.schedule_in(elapsed, [&, i] {
        report.per_demand[i] =
            SetupOutcome{true, queue.now() - TimePoint{}, states[i].retries,
                         states[i].messages};
      });
      return;
    }

    // Unwind partial reservations and retry with backoff.
    TileId back = d.src.tile;
    for (std::size_t h = 0; h < taken; ++h) {
      w.release_lanes(back, hops[h], d.wavelengths);
      back = *w.neighbor(back, hops[h]);
    }
    ++st.retries;
    if (st.retries > params.max_retries) {
      queue.schedule_in(elapsed, [&, i] {
        report.per_demand[i] = SetupOutcome{false, queue.now() - TimePoint{},
                                            states[i].retries, states[i].messages};
        ++report.failures;
      });
      return;
    }
    const double scale = static_cast<double>(1u << std::min(st.retries, 16u));
    const Duration backoff = params.backoff_base * (scale * rng.uniform(0.5, 1.5));
    queue.schedule_in(elapsed + backoff, [attempt, i] { (*attempt)(i); });
  };

  for (std::size_t i = 0; i < demands.size(); ++i) {
    queue.schedule_at(TimePoint{}, [attempt, i] { (*attempt)(i); });
  }
  queue.run();

  for (const auto& outcome : report.per_demand) {
    report.total_messages += outcome.messages;
    report.makespan = std::max(report.makespan, outcome.completion);
  }
  report.settle = fab.reconfig().settle_latency();
  report.makespan += report.settle;
  return report;
}

Duration centralized_setup_latency(const fabric::Fabric& fab, std::size_t demand_count,
                                   const CentralizedParams& params) {
  return params.request_rtt +
         params.plan_per_demand * static_cast<double>(demand_count) +
         fab.reconfig().settle_latency();
}

}  // namespace lp::routing
