// Concurrent multi-job circuit planning with deterministic commits.
//
// Many jobs sharing the fabric each bring their own demand set.  Planning
// them strictly sequentially serializes the expensive part — route search —
// behind one global lock.  This planner splits the work:
//
//   Phase A (parallel): each job orders its demands (plan_order) and
//     precomputes routes against a frozen snapshot of the fabric, taken
//     once before any job commits.  Route search is a pure function of the
//     snapshot, so results are independent of thread count and schedule.
//     Each precomputed route also takes a *speculative* reservation in a
//     ShardedLaneLedger overlay; an overlay rejection predicts commit-time
//     contention but decides nothing (diagnostic only — it is the single
//     value excluded from the determinism contract).
//   Phase B (sequential, ascending job index): each job commits against
//     the authoritative Fabric ledger.  A precomputed route is re-validated
//     by Fabric::connect_via itself (fast path: no route search); if lanes
//     moved since the snapshot and connect_via fails — or no route was
//     precomputed — the demand falls back to a fresh place_one.
//
// Because Phase B runs in ascending job order and every fallback re-plans
// against the live ledger exactly as a sequential planner would, the
// resulting reports are bit-identical at any thread count (the
// `util/parallel` contract), while Phase A's Dijkstra searches — the
// dominant cost — run fully in parallel.
#pragma once

#include <cstdint>
#include <vector>

#include "lightpath/fabric.hpp"
#include "routing/planner.hpp"
#include "routing/router.hpp"

namespace lp::routing {

struct ConcurrentPlanStats {
  std::uint64_t jobs{0};
  std::uint64_t demands{0};
  /// Routes found against the snapshot in Phase A.
  std::uint64_t routes_precomputed{0};
  /// Demands committed via the precomputed route (no live route search).
  std::uint64_t fast_path_commits{0};
  /// Demands that needed a live place_one in Phase B.
  std::uint64_t replans{0};
  /// Speculative overlay reservations rejected in Phase A.  DIAGNOSTIC
  /// ONLY: depends on Phase-A scheduling and is excluded from the
  /// bit-identical-at-any-thread-count contract.
  std::uint64_t overlay_rejected{0};
  /// Jobs whose partial placements were torn down under atomic_jobs.
  std::uint64_t jobs_rolled_back{0};
};

struct ConcurrentPlanResult {
  /// One report per job, in job order.  Bit-identical at any thread count.
  std::vector<PlanReport> reports;
  ConcurrentPlanStats stats;
};

struct PlanJobsOptions {
  RouteOptions route{};
  /// When set, a job either places *all* of its demands or none: the first
  /// demand that fails to commit tears down the job's already-placed
  /// circuits in reverse commit order (inside Phase B, so the rollback is
  /// deterministic) and the whole demand set is reported failed.  The live
  /// ledger is left exactly as if the job had never been attempted, which
  /// is what slice morphing needs — a morph plan must not leak circuits
  /// when it aborts.
  bool atomic_jobs{false};
  /// `0` defers to LIGHTPATH_THREADS / hardware concurrency.
  unsigned threads{0};
};

/// Plans every job's demand set against `fab`.  `threads == 0` defers to
/// LIGHTPATH_THREADS / hardware concurrency (util::env_threads).
[[nodiscard]] ConcurrentPlanResult plan_jobs(
    fabric::Fabric& fab, const std::vector<std::vector<Demand>>& jobs,
    const RouteOptions& options = {}, unsigned threads = 0);

/// As above, with per-job atomicity control.
[[nodiscard]] ConcurrentPlanResult plan_jobs(
    fabric::Fabric& fab, const std::vector<std::vector<Demand>>& jobs,
    const PlanJobsOptions& options);

}  // namespace lp::routing
