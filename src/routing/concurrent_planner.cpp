#include "routing/concurrent_planner.hpp"

#include <atomic>
#include <optional>

#include "routing/shard_ledger.hpp"
#include "util/parallel.hpp"

namespace lp::routing {

namespace {

struct Precomputed {
  Demand demand{};
  /// Hop path found against the snapshot (same-wafer demands only).
  std::optional<std::vector<fabric::Direction>> hops;
};

}  // namespace

ConcurrentPlanResult plan_jobs(fabric::Fabric& fab,
                               const std::vector<std::vector<Demand>>& jobs,
                               const RouteOptions& options, unsigned threads) {
  PlanJobsOptions opts;
  opts.route = options;
  opts.threads = threads;
  return plan_jobs(fab, jobs, opts);
}

ConcurrentPlanResult plan_jobs(fabric::Fabric& fab,
                               const std::vector<std::vector<Demand>>& jobs,
                               const PlanJobsOptions& plan_options) {
  const RouteOptions& options = plan_options.route;
  const unsigned threads = plan_options.threads;
  ConcurrentPlanResult result;
  result.stats.jobs = jobs.size();
  result.reports.resize(jobs.size());

  // Phase A: parallel route precompute against the pre-commit fabric state.
  // Nothing mutates the fabric until Phase B, so concurrent reads of the
  // wafer ledgers see one frozen snapshot.  The sharded overlay absorbs the
  // speculative reservations so Phase A needs no lock on the real ledger.
  ShardedLaneLedger overlay{fab};
  std::vector<std::vector<Precomputed>> pre(jobs.size());
  std::vector<std::uint64_t> found_per_job(jobs.size(), 0);
  std::atomic<std::uint64_t> overlay_rejected{0};

  const unsigned want = threads != 0 ? threads : util::env_threads();
  std::optional<util::ThreadPool> local;
  util::ThreadPool& pool = want == 0 ? util::ThreadPool::shared() : local.emplace(want);
  pool.run(jobs.size(), [&](std::size_t j, unsigned) {
    std::vector<Precomputed> out;
    const std::vector<Demand> ordered = plan_order(fab, jobs[j]);
    out.reserve(ordered.size());
    for (const Demand& d : ordered) {
      Precomputed p;
      p.demand = d;
      if (d.src.wafer == d.dst.wafer) {
        RouteOptions opts = options;
        opts.lanes = d.wavelengths;
        p.hops = find_route(fab.wafer(d.src.wafer), d.src.tile, d.dst.tile, opts);
        if (p.hops) {
          ++found_per_job[j];
          if (!overlay.try_reserve_path(d.src.wafer, d.src.tile, *p.hops,
                                        d.wavelengths)) {
            // Predicted commit-time contention.  Diagnostic only: the route
            // is kept; Phase B's connect_via is the arbiter.
            overlay_rejected.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      out.push_back(std::move(p));
    }
    pre[j] = std::move(out);
  });

  // Phase B: sequential commit in ascending job order against the live
  // ledger.  This ordering — not Phase A's schedule — decides every
  // resource outcome, so reports are bit-identical at any thread count.
  CircuitPlanner planner{fab, options};
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    PlanReport& report = result.reports[j];
    result.stats.demands += pre[j].size();
    for (const Precomputed& p : pre[j]) {
      Result<fabric::CircuitId> placed = Err("no precomputed route");
      bool fast = false;
      if (p.hops) {
        placed = fab.connect_via(p.demand.src, p.demand.dst, *p.hops,
                                 p.demand.wavelengths);
        fast = placed.ok();
      }
      if (!placed) {
        // Lanes moved since the snapshot (an earlier job took them) or the
        // demand had no precomputed route: re-plan against the live ledger,
        // exactly as a sequential planner would.
        placed = planner.place_one(p.demand);
        ++result.stats.replans;
      }
      if (fast) ++result.stats.fast_path_commits;
      if (placed) {
        const fabric::Circuit* c = fab.circuit(placed.value());
        report.mzis_programmed += c != nullptr ? c->mzis_to_program() : 0;
        report.placed.push_back(PlacedCircuit{p.demand, placed.value()});
      } else {
        report.failed.push_back(p.demand);
        if (plan_options.atomic_jobs) break;
      }
    }
    if (plan_options.atomic_jobs && !report.failed.empty()) {
      // All-or-nothing: tear down this job's partial placement in reverse
      // commit order, still inside the sequential Phase B, so later jobs
      // (and any thread count) see the identical ledger.
      for (auto it = report.placed.rbegin(); it != report.placed.rend(); ++it) {
        fab.disconnect(it->id);
      }
      report.placed.clear();
      report.mzis_programmed = 0;
      report.failed.clear();
      for (const Precomputed& p : pre[j]) report.failed.push_back(p.demand);
      ++result.stats.jobs_rolled_back;
    }
    report.reconfig_latency = fab.reconfig().batch_latency(report.mzis_programmed);
  }

  for (std::uint64_t f : found_per_job) result.stats.routes_precomputed += f;
  result.stats.overlay_rejected = overlay_rejected.load(std::memory_order_relaxed);
  return result;
}

}  // namespace lp::routing
