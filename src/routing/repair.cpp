#include "routing/repair.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lp::routing {

using fabric::Fabric;
using fabric::GlobalTile;

RepairPlan repair_with_spare(Fabric& fab, const RepairRequest& req,
                             const RouteOptions& options) {
  RepairPlan plan;
  unsigned mzis = 0;

  auto establish = [&](GlobalTile from, GlobalTile to) -> bool {
    Result<fabric::CircuitId> placed = Err("unattempted");
    if (from.wafer == to.wafer) {
      RouteOptions opts = options;
      opts.lanes = req.wavelengths;
      const auto hops = find_route(fab.wafer(from.wafer), from.tile, to.tile, opts);
      if (!hops) return false;
      placed = fab.connect_via(from, to, *hops, req.wavelengths);
    } else {
      placed = fab.connect(from, to, req.wavelengths);
    }
    if (!placed) return false;
    const fabric::Circuit* c = fab.circuit(placed.value());
    if (c != nullptr) {
      mzis += c->mzis_to_program();
      if (c->fiber_hops > 0) plan.fibers_used += req.wavelengths;
    }
    plan.circuits.push_back(placed.value());
    return true;
  };

  for (const GlobalTile& n : req.neighbors) {
    if (!establish(n, req.spare) || !establish(req.spare, n)) {
      for (fabric::CircuitId id : plan.circuits) fab.disconnect(id);
      plan.circuits.clear();
      plan.complete = false;
      return plan;
    }
  }
  plan.reconfig_latency = fab.reconfig().batch_latency(mzis);
  plan.complete = true;
  return plan;
}

Result<std::size_t> choose_spare(const Fabric& fab,
                                 const std::vector<GlobalTile>& candidates,
                                 const std::vector<GlobalTile>& neighbors) {
  if (candidates.empty()) return Err("no spare candidates");

  auto fibers_needed = [&](const GlobalTile& spare) {
    std::uint32_t fibers = 0;
    for (const GlobalTile& n : neighbors) {
      if (n.wafer != spare.wafer) fibers += 2;  // both directions
    }
    return fibers;
  };
  auto distance = [&](const GlobalTile& spare) {
    std::int32_t total = 0;
    for (const GlobalTile& n : neighbors) {
      if (n.wafer != spare.wafer) {
        total += 1000;  // cross-wafer dominates any on-wafer distance
        continue;
      }
      const auto& w = fab.wafer(spare.wafer);
      const auto a = w.coord_of(spare.tile);
      const auto b = w.coord_of(n.tile);
      total += std::abs(a.row - b.row) + std::abs(a.col - b.col);
    }
    return total;
  };

  std::size_t best = 0;
  std::uint32_t best_fibers = std::numeric_limits<std::uint32_t>::max();
  std::int32_t best_distance = std::numeric_limits<std::int32_t>::max();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::uint32_t f = fibers_needed(candidates[i]);
    const std::int32_t dist = distance(candidates[i]);
    if (f < best_fibers || (f == best_fibers && dist < best_distance)) {
      best = i;
      best_fibers = f;
      best_distance = dist;
    }
  }
  return best;
}

}  // namespace lp::routing
