#include "routing/repair.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "routing/plan_cache.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace lp::routing {

using fabric::Fabric;
using fabric::GlobalTile;

RepairPlan repair_with_spare(Fabric& fab, const RepairRequest& req,
                             const RouteOptions& options) {
  RepairPlan plan;
  unsigned mzis = 0;

  auto establish = [&](GlobalTile from, GlobalTile to) -> bool {
    Result<fabric::CircuitId> placed = Err("unattempted");
    if (from.wafer == to.wafer) {
      RouteOptions opts = options;
      opts.lanes = req.wavelengths;
      const auto hops = find_route(fab.wafer(from.wafer), from.tile, to.tile, opts);
      if (!hops) return false;
      placed = fab.connect_via(from, to, *hops, req.wavelengths);
    } else {
      placed = fab.connect(from, to, req.wavelengths);
    }
    if (!placed) return false;
    const fabric::Circuit* c = fab.circuit(placed.value());
    if (c != nullptr) {
      mzis += c->mzis_to_program();
      if (c->fiber_hops > 0) plan.fibers_used += req.wavelengths;
    }
    plan.circuits.push_back(placed.value());
    return true;
  };

  for (const GlobalTile& n : req.neighbors) {
    if (!establish(n, req.spare) || !establish(req.spare, n)) {
      for (fabric::CircuitId id : plan.circuits) fab.disconnect(id);
      plan.circuits.clear();
      plan.complete = false;
      return plan;
    }
  }
  plan.reconfig_latency = fab.reconfig().batch_latency(mzis);
  plan.complete = true;
  // A committed spare swap changes which routes are live: invalidate
  // memoized plans.
  fab.bump_epoch();
  return plan;
}

namespace {

/// One settle per failed optical probe: the controller programmed the
/// attempt, observed it dark/degraded, and rolled it back.
Duration probe_cost(const Fabric& fab) { return fab.reconfig().settle_latency(); }

/// Replacement circuits must pass the caller's acceptance check before the
/// rung commits; a reject tears the replacement down (full rollback).
bool accept(const EscalationOptions& options, const Fabric& fab,
            fabric::CircuitId id) {
  return !options.validate || options.validate(fab, id);
}

}  // namespace

Duration RetryBackoff::delay(std::uint64_t retry) const {
  if (base <= Duration::zero() || retry == 0) return Duration::zero();
  Duration d = base;
  for (std::uint64_t k = 1; k < retry; ++k) d = d * factor;
  if (jitter_fraction <= 0.0) return d;
  // Jitter is a pure function of (seed, retry): the same wait on every
  // worker, climb, and rerun.
  Rng rng{util::task_seed(seed, retry)};
  return d * rng.uniform(1.0 - jitter_fraction, 1.0 + jitter_fraction);
}

EscalationOutcome escalate_repair(Fabric& fab, const DegradedCircuit& victim,
                                  const EscalationOptions& options) {
  EscalationOutcome out;
  const fabric::Circuit* c = fab.circuit(victim.id);
  if (c == nullptr) return out;  // nothing to repair

  const GlobalTile src = c->src;
  const GlobalTile dst = c->dst;
  const std::uint32_t lambdas =
      options.wavelengths != 0 ? options.wavelengths : c->wavelengths;
  // The budget gates starting an attempt; a started attempt (its backoff
  // wait included) is charged in full.  On exhaustion the victim stays
  // established for a later climb.
  auto exhausted = [&] {
    if (options.budget <= Duration::zero()) return false;
    if (out.latency < options.budget) return false;
    out.budget_exhausted = true;
    return true;
  };
  // Climb-wide attempt ordinal: feeds the transient oracle so every attempt
  // of a climb has a distinct, deterministic identity.
  std::uint32_t ordinal = 0;
  auto attempt = [&](RepairRung r) {
    ++out.attempts[rung_index(r)];
    ++ordinal;
  };
  // Consulted at most once per attempt, after the deterministic checks: a
  // hit means the programming transiently failed and rolled back.
  auto transient = [&](RepairRung r) {
    const bool hit =
        options.transient_failure && options.transient_failure(r, ordinal - 1);
    if (hit) ++out.transient_failures;
    return hit;
  };
  // Wait before retry k of a rung (k >= 1), charged like attempt latency.
  auto wait_before_retry = [&](std::uint32_t k) {
    const Duration w = options.backoff.delay(k);
    out.latency += w;
    out.backoff_latency += w;
  };
  auto rung_expired = [&](Duration rung_start) {
    return options.rung_timeout > Duration::zero() &&
           out.latency - rung_start >= options.rung_timeout;
  };
  auto succeed = [&](RepairRung r, std::vector<fabric::CircuitId> circuits) {
    out.recovered = true;
    out.rung = r;
    out.circuits = std::move(circuits);
    // A committed rung rewires the fabric; memoized plans must not survive.
    fab.bump_epoch();
  };

  // Rung 1 — retune: only a laser/wavelength fault at the source, light path
  // itself still healthy.  Succeeds when the source tile has enough free
  // healthy lasers for the circuit to re-lock onto (the fault layer models
  // dead lasers by consuming that headroom; a shortfall leaves the tile
  // genuinely short and the rung fails).  Only a transient settle failure
  // earns a retry: a laser shortfall is deterministic and repeating the
  // identical attempt is forbidden.
  if (victim.dead_lasers > 0 && !victim.hard_down && !victim.src_dead &&
      !victim.dst_dead) {
    const Duration rung_start = out.latency;
    for (std::uint32_t r = 0; r < std::max(options.retries_per_rung, 1u); ++r) {
      if (exhausted()) return out;
      if (r > 0 && rung_expired(rung_start)) break;
      if (r > 0) wait_before_retry(r);
      attempt(RepairRung::kRetune);
      out.latency += probe_cost(fab);
      if (fab.wafer(src.wafer).tile(src.tile).tx_free() < victim.dead_lasers) break;
      if (transient(RepairRung::kRetune)) continue;
      succeed(RepairRung::kRetune, {victim.id});
      return out;
    }
  }

  // Rung 2 — reroute: make-before-break onto alternate waveguides / switch
  // paths / fibers.  The replacement is established first, so a failed
  // attempt changes nothing.  Laser deficits cannot be rerouted around (the
  // lasers sit at the source tile), so the rung is skipped for laser-only
  // degradation.
  const bool reroutable = !victim.src_dead && !victim.dst_dead &&
                          (victim.hard_down || victim.budget_failed);
  if (reroutable) {
    // Distinct strategies only: the router family first, then the fabric's
    // XY/first-fit family.  A deterministic failure advances the strategy
    // (identical attempts never repeat); a transient one retries the same
    // strategy, bounded by retries_per_rung total attempts.
    const std::uint32_t strategies = src.wafer == dst.wafer ? 2 : 1;
    const Duration rung_start = out.latency;
    std::uint32_t s = 0;
    for (std::uint32_t tries = 0; s < strategies && tries < options.retries_per_rung;
         ++tries) {
      if (exhausted()) return out;
      if (tries > 0 && rung_expired(rung_start)) break;
      if (tries > 0) wait_before_retry(tries);
      attempt(RepairRung::kReroute);
      Result<fabric::CircuitId> placed = Err("unattempted");
      if (src.wafer == dst.wafer && s == 0) {
        // Route via the plan cache when one is wired in: repeated climbs
        // over an unchanged ledger reuse the memoized search.
        std::optional<std::vector<fabric::Direction>> hops;
        if (options.cache != nullptr) {
          hops = options.cache->route_for(Demand{src, dst, lambdas});
        } else {
          RouteOptions ro = options.route;
          ro.lanes = lambdas;
          hops = find_route(fab.wafer(src.wafer), src.tile, dst.tile, ro);
        }
        placed = hops ? fab.connect_via(src, dst, *hops, lambdas)
                      : Result<fabric::CircuitId>{Err("no feasible route")};
      } else {
        placed = fab.connect(src, dst, lambdas);
      }
      if (!placed) {
        out.latency += probe_cost(fab);
        ++s;
        continue;
      }
      if (!accept(options, fab, placed.value())) {
        fab.disconnect(placed.value());
        out.latency += probe_cost(fab);
        ++s;
        continue;
      }
      if (transient(RepairRung::kReroute)) {
        // The replacement programmed but never validated up (the link
        // flapped back / the settle timed out): roll it back, same strategy
        // may be retried.
        fab.disconnect(placed.value());
        out.latency += probe_cost(fab);
        continue;
      }
      const unsigned mzis = fab.circuit(placed.value())->mzis_to_program();
      fab.disconnect(victim.id);  // break after make
      out.latency += fab.reconfig().batch_latency(mzis);
      succeed(RepairRung::kReroute, {placed.value()});
      return out;
    }
  }

  // Rung 3 — respare: replace the broken endpoint (dead chip, or the
  // laser-deficient source) with a spare via choose_spare, re-planning the
  // anchor<->spare pair through the transactional repair planner.  A
  // deterministic failure excludes the spare; a transient one may retry it.
  // The attempt counter increments only once a spare is actually chosen —
  // a rung that never starts (no viable candidate) counts zero attempts.
  if (!options.spare_candidates.empty() && !(victim.src_dead && victim.dst_dead)) {
    const bool replace_src = victim.src_dead || victim.dead_lasers > 0;
    const GlobalTile anchor = replace_src ? dst : src;
    std::vector<GlobalTile> candidates = options.spare_candidates;
    const Duration rung_start = out.latency;
    for (std::uint32_t r = 0; r < options.retries_per_rung && !candidates.empty();
         ++r) {
      if (exhausted()) return out;
      if (r > 0 && rung_expired(rung_start)) break;
      const auto choice = choose_spare(fab, candidates, {anchor});
      if (!choice) break;
      if (r > 0) wait_before_retry(r);
      attempt(RepairRung::kRespare);
      RepairRequest req;
      req.spare = candidates[choice.value()];
      req.neighbors = {anchor};
      req.wavelengths = lambdas;
      const RepairPlan plan = repair_with_spare(fab, req, options.route);
      if (plan.complete) {
        bool ok = true;
        for (fabric::CircuitId id : plan.circuits) ok = ok && accept(options, fab, id);
        if (ok && !transient(RepairRung::kRespare)) {
          fab.disconnect(victim.id);
          out.latency += plan.reconfig_latency;
          succeed(RepairRung::kRespare, plan.circuits);
          return out;
        }
        for (fabric::CircuitId id : plan.circuits) fab.disconnect(id);
        if (ok) {
          // Transient settle failure: full rollback, the spare itself is
          // fine — it stays a candidate for the next try.
          out.latency += probe_cost(fab);
          continue;
        }
      }
      out.latency += probe_cost(fab);
      candidates.erase(candidates.begin() +
                       static_cast<std::ptrdiff_t>(choice.value()));
    }
  }

  // Rung 4 — electrical torus detour: leave the optical domain, ride the
  // static electrical links around the fault.  Feasibility is the caller's
  // congestion analysis (usually false, per Figure 6); an infeasible detour
  // is a rung never entered — zero attempts, zero charge.
  if (options.electrical_feasible) {
    if (exhausted()) return out;
    attempt(RepairRung::kElectricalDetour);
    if (!transient(RepairRung::kElectricalDetour)) {
      fab.disconnect(victim.id);
      out.latency += options.electrical_detour_latency;
      succeed(RepairRung::kElectricalDetour, {});
      return out;
    }
    out.latency += probe_cost(fab);
  }

  // Rung 5 — rack migration: the [60] baseline.  Cannot fail permanently —
  // but a bounded climb may run out of budget before it is allowed to
  // start, and its programming can transiently time out, in which case the
  // whole climb reports transient_failed with the victim left established.
  {
    const Duration rung_start = out.latency;
    for (std::uint32_t r = 0; r < std::max(options.retries_per_rung, 1u); ++r) {
      if (exhausted()) return out;
      if (r > 0 && rung_expired(rung_start)) break;
      if (r > 0) wait_before_retry(r);
      attempt(RepairRung::kRackMigration);
      if (transient(RepairRung::kRackMigration)) {
        out.latency += probe_cost(fab);
        continue;
      }
      fab.disconnect(victim.id);
      out.latency += options.migration_latency;
      succeed(RepairRung::kRackMigration, {});
      return out;
    }
  }
  // Every rung that ran ended in a transient failure: nothing committed,
  // the victim is still established, and a later climb may succeed.
  out.transient_failed = true;
  return out;
}

Result<std::size_t> choose_spare(const Fabric& fab,
                                 const std::vector<GlobalTile>& candidates,
                                 const std::vector<GlobalTile>& neighbors) {
  if (candidates.empty()) return Err("no spare candidates");

  auto fibers_needed = [&](const GlobalTile& spare) {
    std::uint32_t fibers = 0;
    for (const GlobalTile& n : neighbors) {
      if (n.wafer != spare.wafer) fibers += 2;  // both directions
    }
    return fibers;
  };
  auto distance = [&](const GlobalTile& spare) {
    std::int32_t total = 0;
    for (const GlobalTile& n : neighbors) {
      if (n.wafer != spare.wafer) {
        total += 1000;  // cross-wafer dominates any on-wafer distance
        continue;
      }
      const auto& w = fab.wafer(spare.wafer);
      const auto a = w.coord_of(spare.tile);
      const auto b = w.coord_of(n.tile);
      total += std::abs(a.row - b.row) + std::abs(a.col - b.col);
    }
    return total;
  };

  std::size_t best = 0;
  std::uint32_t best_fibers = std::numeric_limits<std::uint32_t>::max();
  std::int32_t best_distance = std::numeric_limits<std::int32_t>::max();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::uint32_t f = fibers_needed(candidates[i]);
    const std::int32_t dist = distance(candidates[i]);
    if (f < best_fibers || (f == best_fibers && dist < best_distance)) {
      best = i;
      best_fibers = f;
      best_distance = dist;
    }
  }
  return best;
}

}  // namespace lp::routing
