// Wavelength assignment with the continuity constraint.
//
// The lane-count ledger in Wafer treats waveguides as interchangeable.  At
// the WDM level there is one more constraint the paper's hardware implies:
// a circuit's wavelengths are fixed at the source lasers (16 per tile) and
// are not converted mid-path, so a k-lambda circuit must find k channels
// that are simultaneously free on *every* bus waveguide segment it rides —
// the classic routing-and-wavelength-assignment continuity constraint.
//
// WdmLedger tracks per-directed-edge channel occupancy of one shared bus
// per edge and assigns channels first-fit.  It demonstrates (tests and the
// fig4 bench) how fragmentation can block a circuit even when aggregate
// capacity remains — and why LIGHTPATH's thousands of parallel waveguides
// (each circuit gets private lanes) sidestep the problem.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lightpath/wafer.hpp"
#include "phys/wdm.hpp"
#include "util/result.hpp"

namespace lp::routing {

class WdmLedger {
 public:
  /// Tracks `channels` WDM channels on every directed edge of `wafer`.
  explicit WdmLedger(const fabric::Wafer& wafer, std::uint32_t channels = 16);

  [[nodiscard]] std::uint32_t channels() const { return channels_; }

  /// True if channel `c` is free on every edge along the path.
  [[nodiscard]] bool channel_free(fabric::TileId from,
                                  std::span<const fabric::Direction> path,
                                  phys::ChannelId c) const;

  /// First-fit: find `k` channels free along the whole path and mark them
  /// used.  On failure nothing is assigned.
  Result<std::vector<phys::ChannelId>> assign(fabric::TileId from,
                                              std::span<const fabric::Direction> path,
                                              std::uint32_t k);

  /// Releases previously assigned channels along the path.
  void release(fabric::TileId from, std::span<const fabric::Direction> path,
               std::span<const phys::ChannelId> assigned);

  /// Occupied fraction of one edge's channels.
  [[nodiscard]] double occupancy(fabric::TileId tile, fabric::Direction dir) const;

  /// Fragmentation of an edge: 1 - (largest free run / total free).  0 when
  /// the free channels are contiguous (or the edge is full).
  [[nodiscard]] double fragmentation(fabric::TileId tile, fabric::Direction dir) const;

 private:
  [[nodiscard]] std::size_t edge_index(fabric::TileId tile, fabric::Direction dir) const;
  [[nodiscard]] bool edge_channel_used(std::size_t edge, phys::ChannelId c) const {
    return used_[edge * channels_ + c];
  }

  const fabric::Wafer& wafer_;
  std::uint32_t channels_;
  std::vector<bool> used_;  ///< edge-major channel occupancy
};

}  // namespace lp::routing
