// Capacity-aware waveguide routing on one wafer.
//
// Fabric::connect uses fixed XY routing; this router searches for *any*
// path with enough free lanes, preferring short paths with few turns
// (every turn adds an MZI traversal and a crossing to the loss budget).
// It is the building block for the multi-demand planner and the repair
// planner, and the subject of the §5 "exploding paths" scalability bench.
#pragma once

#include <optional>
#include <vector>

#include "lightpath/wafer.hpp"

namespace lp::routing {

struct RouteOptions {
  /// Lanes the circuit needs on every edge.
  std::uint32_t lanes{1};
  /// Extra cost per turn, in hop units (0 = pure shortest path).
  double turn_penalty{0.25};
};

/// Dijkstra over (tile, incoming-direction) states with per-edge residual
/// lane capacity.  Returns the hop sequence from `from` to `to`, or nullopt
/// when no feasible path exists.
[[nodiscard]] std::optional<std::vector<fabric::Direction>> find_route(
    const fabric::Wafer& wafer, fabric::TileId from, fabric::TileId to,
    const RouteOptions& options = {});

}  // namespace lp::routing
