#include "routing/wdm_planner.hpp"

#include "routing/router.hpp"

namespace lp::routing {

using fabric::Direction;
using fabric::TileId;
using fabric::Wafer;

namespace {

std::vector<Direction> ordered_route(const Wafer& wafer, TileId from, TileId to,
                                     bool yx_first) {
  std::vector<Direction> hops;
  auto c = wafer.coord_of(from);
  const auto goal = wafer.coord_of(to);
  const auto do_cols = [&] {
    while (c.col != goal.col) {
      hops.push_back(c.col < goal.col ? Direction::kEast : Direction::kWest);
      c.col += c.col < goal.col ? 1 : -1;
    }
  };
  const auto do_rows = [&] {
    while (c.row != goal.row) {
      hops.push_back(c.row < goal.row ? Direction::kSouth : Direction::kNorth);
      c.row += c.row < goal.row ? 1 : -1;
    }
  };
  if (yx_first) {
    do_rows();
    do_cols();
  } else {
    do_cols();
    do_rows();
  }
  return hops;
}

}  // namespace

WdmPlanner::WdmPlanner(const Wafer& wafer, std::uint32_t channels)
    : wafer_{wafer}, ledger_{wafer, channels} {}

Result<WdmCircuit> WdmPlanner::place(const Demand& demand) {
  if (demand.src.wafer != demand.dst.wafer)
    return Err("WdmPlanner handles same-wafer demands only");

  std::vector<std::vector<Direction>> candidates;
  candidates.push_back(ordered_route(wafer_, demand.src.tile, demand.dst.tile, false));
  candidates.push_back(ordered_route(wafer_, demand.src.tile, demand.dst.tile, true));
  if (const auto routed = find_route(wafer_, demand.src.tile, demand.dst.tile)) {
    candidates.push_back(*routed);
  }

  bool any_path = false;
  for (const auto& hops : candidates) {
    any_path = true;
    auto channels = ledger_.assign(demand.src.tile, hops, demand.wavelengths);
    if (channels) {
      ++stats_.placed;
      return WdmCircuit{demand, hops, std::move(channels).value()};
    }
  }
  if (any_path) {
    ++stats_.blocked_continuity;
    return Err("wavelength continuity blocked all candidate paths");
  }
  ++stats_.blocked_no_path;
  return Err("no candidate path");
}

void WdmPlanner::release(const WdmCircuit& circuit) {
  ledger_.release(circuit.demand.src.tile, circuit.hops, circuit.channels);
}

}  // namespace lp::routing
