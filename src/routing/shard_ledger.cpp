#include "routing/shard_ledger.hpp"

#include <algorithm>

namespace lp::routing {

using fabric::Direction;
using fabric::TileId;
using fabric::WaferId;

namespace {

/// Row/col step for one hop; returns false if the step leaves the grid.
bool step(std::int32_t rows, std::int32_t cols, std::int32_t& row, std::int32_t& col,
          Direction d) {
  switch (d) {
    case Direction::kNorth: --row; break;
    case Direction::kSouth: ++row; break;
    case Direction::kEast: ++col; break;
    case Direction::kWest: --col; break;
  }
  return row >= 0 && row < rows && col >= 0 && col < cols;
}

}  // namespace

ShardedLaneLedger::ShardedLaneLedger(const fabric::Fabric& fab)
    : rows_{fab.config().wafer.rows},
      cols_{fab.config().wafer.cols},
      tiles_per_wafer_{static_cast<std::uint32_t>(rows_ * cols_)} {
  const std::uint32_t wafers = fab.wafer_count();
  const std::size_t edges = static_cast<std::size_t>(wafers) * tiles_per_wafer_ * 4;
  capacity_.assign(edges, 0);
  used_.assign(edges, 0);
  peak_.assign(edges, 0);
  for (WaferId w = 0; w < wafers; ++w) {
    const fabric::Wafer& wafer = fab.wafer(w);
    for (TileId t = 0; t < tiles_per_wafer_; ++t) {
      for (Direction d : fabric::kAllDirections) {
        if (wafer.neighbor(t, d)) {
          capacity_[edge_index(w, t, d)] = wafer.params().lanes_per_edge;
        }
      }
    }
  }
  shards_.reserve(static_cast<std::size_t>(wafers) * 4);
  for (std::size_t i = 0; i < static_cast<std::size_t>(wafers) * 4; ++i) {
    shards_.push_back(std::make_unique<std::mutex>());
  }
}

std::size_t ShardedLaneLedger::shard_of(WaferId wafer, TileId tile) const {
  const auto row = static_cast<std::int32_t>(tile) / cols_;
  const auto col = static_cast<std::int32_t>(tile) % cols_;
  const std::size_t quadrant = (row >= rows_ / 2 ? 2u : 0u) + (col >= cols_ / 2 ? 1u : 0u);
  return static_cast<std::size_t>(wafer) * 4 + quadrant;
}

std::size_t ShardedLaneLedger::edge_index(WaferId wafer, TileId tile, Direction d) const {
  return (static_cast<std::size_t>(wafer) * tiles_per_wafer_ + tile) * 4 +
         static_cast<std::size_t>(d);
}

bool ShardedLaneLedger::expand_path(WaferId wafer, TileId from,
                                    std::span<const Direction> path,
                                    std::vector<Hop>& out) const {
  out.clear();
  out.reserve(path.size());
  std::int32_t row = static_cast<std::int32_t>(from) / cols_;
  std::int32_t col = static_cast<std::int32_t>(from) % cols_;
  for (Direction d : path) {
    const auto tile = static_cast<TileId>(row * cols_ + col);
    out.push_back(Hop{edge_index(wafer, tile, d), shard_of(wafer, tile)});
    if (!step(rows_, cols_, row, col, d)) return false;
  }
  return true;
}

bool ShardedLaneLedger::try_reserve_path(WaferId wafer, TileId from,
                                         std::span<const Direction> path,
                                         std::uint32_t n) {
  std::vector<Hop> hops;
  if (!expand_path(wafer, from, path, hops)) return false;

  // Phase 1: acquire every touched shard in ascending order (deadlock-free).
  std::vector<std::size_t> locks;
  locks.reserve(hops.size());
  for (const Hop& h : hops) locks.push_back(h.shard);
  std::sort(locks.begin(), locks.end());
  locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
  for (std::size_t s : locks) shards_[s]->lock();

  // Phase 2: commit as we check.  A path may cross the same edge twice, so
  // checking first and committing later would under-count; committing
  // immediately (with rollback) counts every occurrence.
  bool ok = true;
  std::size_t committed = 0;
  for (; committed < hops.size(); ++committed) {
    const std::size_t e = hops[committed].edge;
    if (capacity_[e] - used_[e] < n || capacity_[e] < used_[e]) {
      ok = false;
      break;
    }
    used_[e] += n;
    peak_[e] = std::max(peak_[e], used_[e]);
  }
  if (!ok) {
    for (std::size_t i = 0; i < committed; ++i) used_[hops[i].edge] -= n;
  }

  for (auto it = locks.rbegin(); it != locks.rend(); ++it) shards_[*it]->unlock();
  return ok;
}

void ShardedLaneLedger::release_path(WaferId wafer, TileId from,
                                     std::span<const Direction> path, std::uint32_t n) {
  std::vector<Hop> hops;
  if (!expand_path(wafer, from, path, hops)) return;
  std::vector<std::size_t> locks;
  locks.reserve(hops.size());
  for (const Hop& h : hops) locks.push_back(h.shard);
  std::sort(locks.begin(), locks.end());
  locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
  for (std::size_t s : locks) shards_[s]->lock();
  for (const Hop& h : hops) used_[h.edge] -= std::min(n, used_[h.edge]);
  for (auto it = locks.rbegin(); it != locks.rend(); ++it) shards_[*it]->unlock();
}

std::uint32_t ShardedLaneLedger::reserved(WaferId wafer, TileId tile, Direction d) const {
  std::lock_guard<std::mutex> lock{*shards_[shard_of(wafer, tile)]};
  return used_[edge_index(wafer, tile, d)];
}

std::uint32_t ShardedLaneLedger::capacity(WaferId wafer, TileId tile, Direction d) const {
  return capacity_[edge_index(wafer, tile, d)];  // immutable; no lock needed
}

std::uint32_t ShardedLaneLedger::peak(WaferId wafer, TileId tile, Direction d) const {
  std::lock_guard<std::mutex> lock{*shards_[shard_of(wafer, tile)]};
  return peak_[edge_index(wafer, tile, d)];
}

std::uint64_t ShardedLaneLedger::total_reserved() const {
  for (const auto& s : shards_) s->lock();
  std::uint64_t total = 0;
  for (std::uint32_t u : used_) total += u;
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) (*it)->unlock();
  return total;
}

bool ShardedLaneLedger::peaks_within_capacity() const {
  for (const auto& s : shards_) s->lock();
  bool ok = true;
  for (std::size_t e = 0; e < peak_.size(); ++e) {
    if (peak_[e] > capacity_[e]) {
      ok = false;
      break;
    }
  }
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) (*it)->unlock();
  return ok;
}

}  // namespace lp::routing
