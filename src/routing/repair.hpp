// Optical fault repair (Figure 7).
//
// After a chip fails, its slice's rings are broken: the failed chip's ring
// neighbors have no one to exchange with.  The repair planner wires a spare
// chip into every broken ring with dedicated optical circuits — one per
// direction per neighbor — placed on non-overlapping waveguides (and, when
// the spare sits on another wafer, on separate fibers).  The result is a
// congestion-free repair whose blast radius is the failed chip's server,
// not the whole rack.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "lightpath/fabric.hpp"
#include "routing/planner.hpp"
#include "util/result.hpp"

namespace lp::routing {

class PlanCache;  // routing/plan_cache.hpp

struct RepairRequest {
  /// The spare chip's fabric tile.
  fabric::GlobalTile spare{};
  /// Tiles of the failed chip's ring neighbors that need reconnection.
  std::vector<fabric::GlobalTile> neighbors;
  /// Wavelengths per direction per neighbor (sets repaired-ring bandwidth).
  std::uint32_t wavelengths{1};
};

struct RepairPlan {
  /// Established circuits: neighbor->spare and spare->neighbor per neighbor.
  std::vector<fabric::CircuitId> circuits;
  /// Total time to program the repair (serial programming + settle).
  Duration reconfig_latency{Duration::zero()};
  /// Fibers consumed (0 when spare and neighbors share a wafer).
  std::uint32_t fibers_used{0};
  bool complete{false};
};

/// Plans and establishes the repair circuits on the fabric.  On partial
/// failure the already-established circuits are torn down and
/// complete=false is returned with reconfig_latency zero — nothing was
/// committed, so nothing is charged; the caller accounts its own probe
/// cost (escalate_repair charges one settle per failed optical attempt).
[[nodiscard]] RepairPlan repair_with_spare(fabric::Fabric& fab, const RepairRequest& req,
                                           const RouteOptions& options = {});

/// Fiber-minimizing spare selection (§5, "Minimizing fiber requirement for
/// fault tolerance"): among candidate spare tiles, pick the one whose
/// repair would consume the fewest fibers (same-wafer spares win), breaking
/// ties by total Manhattan distance to the neighbors (first candidate wins
/// an exact tie).  Returns the index into `candidates`, or an error if
/// empty.
[[nodiscard]] Result<std::size_t> choose_spare(const fabric::Fabric& fab,
                                               const std::vector<fabric::GlobalTile>& candidates,
                                               const std::vector<fabric::GlobalTile>& neighbors);

// ---------------------------------------------------------------------------
// Graceful-degradation repair ladder.
//
// Component faults (stuck MZIs, waveguide loss drift, fiber cuts, dead
// lasers, chip deaths — see src/fault/) degrade circuits piecewise instead
// of killing whole chips.  escalate_repair() recovers one degraded circuit
// by climbing rungs in order of blast radius, with bounded retries per rung
// and full rollback of partially established state on every failed attempt:
//
//   1. kRetune            re-lock the source onto healthy wavelengths
//   2. kReroute           make-before-break onto alternate waveguides/fibers
//   3. kRespare           re-plan against a different spare (choose_spare)
//   4. kElectricalDetour  fall back to the electrical torus
//   5. kRackMigration     drain the rack and restart elsewhere
//
// Rungs 1-3 stay in the optical domain (microseconds); 4-5 are the
// escalating electrical fallbacks (milliseconds / minutes).  The ladder
// always terminates: rung 5 cannot fail.
// ---------------------------------------------------------------------------

enum class RepairRung : std::uint8_t {
  kRetune = 0,
  kReroute = 1,
  kRespare = 2,
  kElectricalDetour = 3,
  kRackMigration = 4,
};

inline constexpr std::size_t kRepairRungCount = 5;

[[nodiscard]] constexpr const char* to_string(RepairRung r) {
  switch (r) {
    case RepairRung::kRetune: return "retune";
    case RepairRung::kReroute: return "reroute";
    case RepairRung::kRespare: return "respare";
    case RepairRung::kElectricalDetour: return "electrical detour";
    case RepairRung::kRackMigration: return "rack migration";
  }
  return "?";
}

[[nodiscard]] constexpr std::size_t rung_index(RepairRung r) {
  return static_cast<std::size_t>(r);
}

/// What the health monitor (src/fault/health.hpp) observed about a degraded
/// circuit.  The ladder only consumes these flags, so routing/ stays
/// independent of the fault model itself.
struct DegradedCircuit {
  fabric::CircuitId id{0};
  /// Light no longer reaches the receiver: stuck MZI on the path or a cut
  /// fiber.  Retune cannot help; reroute might.
  bool hard_down{false};
  /// Link budget no longer closes (loss drift past the margin threshold).
  bool budget_failed{false};
  /// Endpoint chip death (src and/or dst).
  bool src_dead{false};
  bool dst_dead{false};
  /// Source-tile lasers lost to a laser/wavelength fault; the circuit must
  /// re-lock onto healthy channels (rung 1) or move source (rung 3).
  std::uint32_t dead_lasers{0};
};

/// Deterministic exponential backoff-with-jitter wait schedule.  delay(k)
/// is the wait charged before retry k (k >= 1): base * factor^(k-1),
/// scaled by a jitter draw uniform in [1 - jitter_fraction,
/// 1 + jitter_fraction].  The jitter is a pure function of (seed, k) via
/// util::task_seed, so every climb, worker, and rerun charges the exact
/// same wait — randomized de-synchronization without nondeterminism.
struct RetryBackoff {
  /// Zero disables waits entirely (delay() returns zero).
  Duration base{Duration::zero()};
  double factor{2.0};
  /// Fractional +/- jitter; zero means no jitter draw at all.
  double jitter_fraction{0.0};
  std::uint64_t seed{0};

  [[nodiscard]] Duration delay(std::uint64_t retry) const;
};

struct EscalationOptions {
  /// Max attempts per rung (distinct strategies/spares; never the same
  /// deterministic attempt twice).
  std::uint32_t retries_per_rung{2};
  /// Wall-clock budget for the whole climb; zero means unlimited.  The
  /// budget gates *starting* an attempt: once cumulative latency reaches it,
  /// no further rung is tried — not even rack migration — and the outcome
  /// reports budget_exhausted.  An attempt that has started is charged in
  /// full even if it overruns the budget.  On exhaustion the victim circuit
  /// is left established, so the caller can back off and climb again with a
  /// larger budget (runtime::drive_recovery does exactly that).
  Duration budget{Duration::zero()};
  /// Wavelengths for replacement circuits; 0 inherits the victim's count.
  std::uint32_t wavelengths{0};
  RouteOptions route{};
  /// Spare tiles rung 3 may re-plan onto (choose_spare order).
  std::vector<fabric::GlobalTile> spare_candidates;
  /// Whether the electrical torus has a congestion-free detour available
  /// (rung 4); the caller decides, e.g. via attempt_electrical_repair.
  bool electrical_feasible{false};
  Duration electrical_detour_latency{Duration::millis(1.0)};
  Duration migration_latency{Duration::seconds(600.0)};
  /// Acceptance check for replacement circuits (e.g. a fault-aware health
  /// diagnosis).  A rejected replacement is torn down — full rollback — and
  /// the attempt counts as failed.  Null accepts everything.
  std::function<bool(const fabric::Fabric&, fabric::CircuitId)> validate;
  /// Optional plan cache: rung 2's same-wafer route search goes through
  /// PlanCache::route_for, so repeated climbs over an unchanged ledger
  /// (e.g. drive_recovery's budget-exhausted retries) skip the Dijkstra.
  /// Null plans fresh.  Not owned.
  PlanCache* cache{nullptr};
  /// Wait schedule between failed attempts *within* a rung (retry k of a
  /// rung waits backoff.delay(k) first).  Waits are charged to latency and
  /// backoff_latency and are budget-gated like attempts: once the budget is
  /// reached no further wait (or attempt) starts.  Default: no waits,
  /// preserving the pre-gray cost model.
  RetryBackoff backoff{};
  /// Per-rung wall-clock cap: once the climb has spent this much inside the
  /// current rung (attempt charges + waits), the rung is abandoned and the
  /// climb escalates — a slow rung cannot starve the ones above it.  Zero
  /// means no per-rung cap (the overall budget still applies).
  Duration rung_timeout{Duration::zero()};
  /// Transient-failure oracle (gray failures; see fault/gray.hpp): called
  /// with the rung and a climb-wide attempt ordinal before an attempt
  /// commits.  True means the programming transiently failed — OCS port
  /// timeout, settle overrun, the link flapped back down under validation —
  /// so the attempt rolls back (one probe charged) and is counted in
  /// transient_failures.  A transient failure on rung 5 makes the whole
  /// climb return transient_failed with the victim left established (rack
  /// migration "cannot fail" only permanently).  Null means never.
  std::function<bool(RepairRung, std::uint32_t)> transient_failure;
};

struct EscalationOutcome {
  bool recovered{false};
  /// The climb stopped because options.budget ran out, not because the
  /// rungs were out of ideas.  Distinct from a plan failure (recovered ==
  /// false with budget to spare, which only happens when `victim.id` names
  /// no established circuit): a budget-exhausted victim is still repairable
  /// given more time.
  bool budget_exhausted{false};
  RepairRung rung{RepairRung::kRackMigration};
  /// Circuits carrying the traffic after recovery: the original id for
  /// retune, the replacement for reroute, the anchor<->spare pair for
  /// respare, empty for the electrical rungs.
  std::vector<fabric::CircuitId> circuits;
  /// Every rung that ran failed *transiently* at the end (rung 5's
  /// programming timed out): the victim is left established and a later
  /// climb may succeed outright.  Distinct from plan failure (recovered ==
  /// false, transient_failed == false, budget to spare) and from budget
  /// exhaustion.  Mutually exclusive with recovered and budget_exhausted.
  bool transient_failed{false};
  /// Attempts that failed transiently (oracle hits) across all rungs.
  std::uint32_t transient_failures{0};
  /// Wall-clock recovery latency (probe + programming + settle per optical
  /// attempt; backoff waits; detour/migration constants for the electrical
  /// rungs).
  Duration latency{Duration::zero()};
  /// Subset of latency spent in backoff waits between attempts.
  Duration backoff_latency{Duration::zero()};
  /// Attempts made per rung, including the successful one.  A rung gated
  /// off before it was entered (budget exhausted, spare selection empty,
  /// electrical detour infeasible) counts zero attempts.
  std::array<std::uint32_t, kRepairRungCount> attempts{};
};

/// Climbs the repair ladder for one degraded circuit.  Every failed attempt
/// leaves the fabric exactly as it found it (make-before-break reroutes,
/// transactional respare via repair_with_spare, validation rejects tear the
/// replacement down).  Returns the first rung that recovered the traffic;
/// rung 5 (rack migration) always succeeds, so recovered is false only when
/// `victim.id` names no established circuit.
[[nodiscard]] EscalationOutcome escalate_repair(fabric::Fabric& fab,
                                                const DegradedCircuit& victim,
                                                const EscalationOptions& options = {});

}  // namespace lp::routing
