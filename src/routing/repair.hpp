// Optical fault repair (Figure 7).
//
// After a chip fails, its slice's rings are broken: the failed chip's ring
// neighbors have no one to exchange with.  The repair planner wires a spare
// chip into every broken ring with dedicated optical circuits — one per
// direction per neighbor — placed on non-overlapping waveguides (and, when
// the spare sits on another wafer, on separate fibers).  The result is a
// congestion-free repair whose blast radius is the failed chip's server,
// not the whole rack.
#pragma once

#include <vector>

#include "lightpath/fabric.hpp"
#include "routing/planner.hpp"
#include "util/result.hpp"

namespace lp::routing {

struct RepairRequest {
  /// The spare chip's fabric tile.
  fabric::GlobalTile spare{};
  /// Tiles of the failed chip's ring neighbors that need reconnection.
  std::vector<fabric::GlobalTile> neighbors;
  /// Wavelengths per direction per neighbor (sets repaired-ring bandwidth).
  std::uint32_t wavelengths{1};
};

struct RepairPlan {
  /// Established circuits: neighbor->spare and spare->neighbor per neighbor.
  std::vector<fabric::CircuitId> circuits;
  /// Total time to program the repair (serial programming + settle).
  Duration reconfig_latency{Duration::zero()};
  /// Fibers consumed (0 when spare and neighbors share a wafer).
  std::uint32_t fibers_used{0};
  bool complete{false};
};

/// Plans and establishes the repair circuits on the fabric.  On partial
/// failure the already-established circuits are torn down and
/// complete=false is returned with whatever latency was observed.
[[nodiscard]] RepairPlan repair_with_spare(fabric::Fabric& fab, const RepairRequest& req,
                                           const RouteOptions& options = {});

/// Fiber-minimizing spare selection (§5, "Minimizing fiber requirement for
/// fault tolerance"): among candidate spare tiles, pick the one whose
/// repair would consume the fewest fibers (same-wafer spares win), breaking
/// ties by total Manhattan distance to the neighbors.  Returns the index
/// into `candidates`, or an error if empty.
[[nodiscard]] Result<std::size_t> choose_spare(const fabric::Fabric& fab,
                                               const std::vector<fabric::GlobalTile>& candidates,
                                               const std::vector<fabric::GlobalTile>& neighbors);

}  // namespace lp::routing
