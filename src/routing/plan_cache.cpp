#include "routing/plan_cache.hpp"

#include <algorithm>

namespace lp::routing {

namespace {

/// splitmix64 finalizer: full-avalanche mix of one 64-bit value.
[[nodiscard]] std::uint64_t finalize(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t demand_hash(const Demand& d) {
  std::uint64_t h = 0;
  h = fabric::hash_mix(h, d.src.wafer);
  h = fabric::hash_mix(h, d.src.tile);
  h = fabric::hash_mix(h, d.dst.wafer);
  h = fabric::hash_mix(h, d.dst.tile);
  h = fabric::hash_mix(h, d.wavelengths);
  return finalize(h);
}

}  // namespace

PlanCache::PlanCache(fabric::Fabric& fab, RouteOptions options, std::size_t max_entries)
    : fabric_{fab},
      planner_{fab, options},
      options_{options},
      max_entries_{std::max<std::size_t>(max_entries, 1)} {}

std::uint64_t PlanCache::demand_fingerprint(const std::vector<Demand>& demands) {
  // Commutative sum of avalanched per-demand hashes: order-insensitive and
  // multiset-sensitive (duplicates shift the sum).  Collisions are handled
  // by the ordered-demand comparison on every hit, never assumed away.
  std::uint64_t sum = 0;
  for (const Demand& d : demands) sum += demand_hash(d);
  return sum;
}

void PlanCache::set_quarantine(QuarantinePredicate quarantine) {
  quarantine_ = std::move(quarantine);
}

bool PlanCache::path_quarantined(fabric::GlobalTile src,
                                 const std::vector<fabric::Direction>& hops) const {
  if (!quarantine_) return false;
  const fabric::Wafer& w = fabric_.wafer(src.wafer);
  fabric::TileId at = src.tile;
  for (fabric::Direction d : hops) {
    if (quarantine_(fabric::GlobalTile{src.wafer, at}, d)) return true;
    const auto n = w.neighbor(at, d);
    if (!n) return false;  // malformed path; the connect will reject it anyway
    if (quarantine_(fabric::GlobalTile{src.wafer, *n}, fabric::opposite(d))) return true;
    at = *n;
  }
  return false;
}

PlanReport PlanCache::place_all(const std::vector<Demand>& demands) {
  const std::uint64_t fp = demand_fingerprint(demands);
  const std::uint64_t epoch = fabric_.epoch();
  const std::uint64_t digest = fabric_.ledger_digest();
  std::vector<Demand> ordered = plan_order(fabric_, demands);

  if (const auto it = entries_.find(fp); it != entries_.end()) {
    // Entries recorded under an older epoch can never validate again
    // (the epoch is monotonic) — prune them as we encounter them.
    const std::size_t before = it->second.size();
    std::erase_if(it->second, [&](const Entry& e) { return e.epoch != epoch; });
    const std::size_t pruned = before - it->second.size();
    stats_.epoch_invalidations += pruned;
    entry_count_ -= pruned;
    for (Entry& entry : it->second) {
      if (entry.ordered != ordered) continue;  // fingerprint collision
      if (entry.digest != digest) {
        ++stats_.digest_mismatches;
        continue;
      }
      // Quarantine pre-check before any circuit is established: a memoized
      // path through a dampened port must not be replayed, but the entry
      // stays recorded (and the epoch untouched) for when the hold lifts.
      if (quarantine_ && std::any_of(entry.placed.begin(), entry.placed.end(),
                                     [&](const Step& s) {
                                       return !s.cross_wafer &&
                                              path_quarantined(s.demand.src, s.hops);
                                     })) {
        ++stats_.quarantine_rejections;
        continue;
      }
      if (auto replayed = try_replay(entry)) {
        ++stats_.hits;
        entry.last_use = ++use_clock_;
        return std::move(*replayed);
      }
      ++stats_.replay_aborts;
    }
    if (it->second.empty()) entries_.erase(it);
  }

  ++stats_.misses;
  PlanReport report = planner_.place_all(demands);
  remember(fp, epoch, digest, std::move(ordered), report);
  return report;
}

std::optional<PlanReport> PlanCache::try_replay(Entry& entry) {
  PlanReport report;
  report.placed.reserve(entry.placed.size());
  for (const Step& step : entry.placed) {
    Result<fabric::CircuitId> placed =
        step.cross_wafer
            ? fabric_.connect(step.demand.src, step.demand.dst, step.demand.wavelengths)
            : fabric_.connect_via(step.demand.src, step.demand.dst, step.hops,
                                  step.demand.wavelengths);
    if (!placed) {
      // Digest equality should make this unreachable; if it ever trips,
      // roll back to the pre-call ledger and fall through to fresh planning.
      for (const auto& done : report.placed) fabric_.disconnect(done.id);
      return std::nullopt;
    }
    const fabric::Circuit* c = fabric_.circuit(placed.value());
    report.mzis_programmed += c != nullptr ? c->mzis_to_program() : 0;
    report.placed.push_back(PlacedCircuit{step.demand, placed.value()});
  }
  report.failed = entry.failed;
  report.reconfig_latency = fabric_.reconfig().batch_latency(report.mzis_programmed);
  return report;
}

void PlanCache::remember(std::uint64_t fingerprint, std::uint64_t epoch,
                         std::uint64_t digest, std::vector<Demand> ordered,
                         const PlanReport& report) {
  Entry entry;
  entry.epoch = epoch;
  entry.digest = digest;
  entry.ordered = std::move(ordered);
  entry.failed = report.failed;
  entry.placed.reserve(report.placed.size());
  for (const PlacedCircuit& p : report.placed) {
    const fabric::Circuit* c = fabric_.circuit(p.id);
    if (c == nullptr) return;  // caller already tore it down; nothing to memoize
    Step step;
    step.demand = p.demand;
    step.cross_wafer = c->fiber_hops > 0 || c->segments.size() != 1;
    if (!step.cross_wafer) step.hops = c->segments.front().hops;
    entry.placed.push_back(std::move(step));
  }
  entry.last_use = ++use_clock_;
  evict_if_needed();
  entries_[fingerprint].push_back(std::move(entry));
  ++entry_count_;
}

void PlanCache::evict_if_needed() {
  if (entry_count_ < max_entries_) return;
  // Evict the least-recently-used entry (linear scan: the cache is small
  // and eviction is rare relative to lookups).
  std::uint64_t oldest = ~std::uint64_t{0};
  std::uint64_t oldest_fp = 0;
  std::size_t oldest_idx = 0;
  for (const auto& [fp, vec] : entries_) {
    for (std::size_t i = 0; i < vec.size(); ++i) {
      if (vec[i].last_use < oldest) {
        oldest = vec[i].last_use;
        oldest_fp = fp;
        oldest_idx = i;
      }
    }
  }
  if (oldest == ~std::uint64_t{0}) return;
  auto& vec = entries_[oldest_fp];
  vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(oldest_idx));
  if (vec.empty()) entries_.erase(oldest_fp);
  --entry_count_;
  ++stats_.evictions;
}

std::optional<std::vector<fabric::Direction>> PlanCache::route_for(const Demand& demand) {
  if (demand.src.wafer != demand.dst.wafer) return std::nullopt;
  const std::uint64_t key = demand_hash(demand);
  const std::uint64_t epoch = fabric_.epoch();
  const std::uint64_t digest = fabric_.ledger_digest();

  auto& vec = routes_[key];
  std::erase_if(vec, [&](const RouteEntry& e) { return e.epoch != epoch; });
  for (RouteEntry& e : vec) {
    if (e.demand == demand && e.digest == digest) {
      // Revalidate against the current quarantine view.  A rejected memo is
      // NOT replaced: it is still the correct route for this ledger state
      // and becomes usable again the moment the quarantine lifts.
      if (e.hops && path_quarantined(demand.src, *e.hops)) {
        ++stats_.quarantine_rejections;
        return std::nullopt;
      }
      ++stats_.route_hits;
      e.last_use = ++use_clock_;
      return e.hops;
    }
  }

  ++stats_.route_misses;
  RouteOptions opts = options_;
  opts.lanes = demand.wavelengths;
  auto hops = find_route(fabric_.wafer(demand.src.wafer), demand.src.tile,
                         demand.dst.tile, opts);
  if (hops && path_quarantined(demand.src, *hops)) {
    // The only feasible route runs through a quarantined port: unusable for
    // now, and not memoized (the memo would just be rejected again).
    ++stats_.quarantine_rejections;
    return std::nullopt;
  }
  RouteEntry e;
  e.epoch = epoch;
  e.digest = digest;
  e.demand = demand;
  e.hops = hops;
  e.last_use = ++use_clock_;
  if (vec.size() >= 8) vec.erase(vec.begin());  // bounded per-key history
  vec.push_back(std::move(e));
  return hops;
}

void PlanCache::release_all(const PlanReport& report) {
  planner_.release_all(report);
}

void PlanCache::clear() {
  entries_.clear();
  routes_.clear();
  entry_count_ = 0;
}

}  // namespace lp::routing
