// Cluster-scale multi-tenant scheduler with photonic slice morphing.
//
// PR 5's TrainingRun plays the §4.2 blast-radius argument for ONE job on
// one server pair.  This module lifts it to the full TpuCluster (§4.1's 64
// racks x 4x4x4 tori): an online, event-driven scheduler admits a Poisson
// stream of heterogeneous slice jobs while components fail continuously
// underneath, with correlated failure domains (chip, server, rack-power
// burst — fault::BurstDomain).  Each in-flight job climbs a cluster-level
// recovery escalation that composes the existing rungs, in blast-radius
// order:
//
//   1. in-place optical repair   runtime::drive_recovery prices the repair
//                                ladder (retune/reroute/respare) against a
//                                pricing fabric; component faults cost
//                                microseconds and lose no state;
//   2. spare-pool respare        a dead chip is replaced by a free chip of
//                                the same rack; the slice becomes a chip
//                                set (checkpoint rollback);
//   3. photonic slice morphing   Morphlux: the logical torus is re-stitched
//                                across non-contiguous healthy chips
//                                harvested anywhere in the cluster, spliced
//                                into a ring by optical circuits planned
//                                through the PlanCache'd planner and OCS
//                                port pairs; an aborted morph rolls back
//                                exactly (chips, ports, circuits);
//   4. elastic shrink            survivors >= shrink_min_fraction continue
//                                at reduced rate;
//   5. requeue                   checkpoint rollback; > max_requeues
//                                aborts the job.
//
// The electrical-only baseline (§4.2's [60]-style fabric) is limited to
// rack-granularity migration: ANY fault that touches a job — component
// faults included, the blast-radius point — drains it and restarts on a
// fresh contiguous slice (migration_latency + redo), or requeues when no
// rack fits.  It cannot place non-contiguous jobs at all, so fragmentation
// rejects work the photonic policy morphs in.
//
// Determinism contract: one run is serial on sim::EventEngine and every
// draw comes from Rng{task_seed(seed, stream)} — the report is a pure
// function of the params.  run_cluster_sweep parallelizes (mtbf x policy x
// trial) with per-task seeds (both policies of a pair share one seed, a
// paired comparison) and folds ascending: bit-identical at any thread
// count, LIGHTPATH_THREADS included.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "lightpath/fabric.hpp"
#include "routing/concurrent_planner.hpp"
#include "routing/plan_cache.hpp"
#include "routing/repair.hpp"
#include "runtime/recovery.hpp"
#include "runtime/training_run.hpp"
#include "sim/event_engine.hpp"
#include "topo/cluster.hpp"
#include "topo/ocs.hpp"
#include "topo/slice.hpp"
#include "util/units.hpp"

namespace lp::cluster {

enum class SchedulerPolicy : std::uint8_t {
  kPhotonicMorph = 0,
  kElectricalOnly = 1,
};

[[nodiscard]] constexpr const char* to_string(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::kPhotonicMorph: return "photonic morph";
    case SchedulerPolicy::kElectricalOnly: return "electrical only";
  }
  return "?";
}

/// Correlated failure domain of one cluster fault event (the cluster-side
/// image of fault::BurstDomain).
enum class FaultDomain : std::uint8_t {
  kChip = 0,       ///< one chip (or one component on it)
  kServer = 1,     ///< a whole 4-chip server tray
  kRackPower = 2,  ///< consecutive servers of one rack lose power
};

[[nodiscard]] constexpr const char* to_string(FaultDomain d) {
  switch (d) {
    case FaultDomain::kChip: return "chip";
    case FaultDomain::kServer: return "server";
    case FaultDomain::kRackPower: return "rack-power";
  }
  return "?";
}

/// One entry of the tenant mix: a slice shape and its draw weight.
struct ShapeMix {
  topo::Shape shape{};
  double weight{1.0};
};

/// A job injected at a scripted time instead of drawn from the Poisson
/// stream — the decision-boundary tests script exact workloads.
struct ScriptedJob {
  Duration at{Duration::zero()};
  topo::Shape shape{{2, 2, 1}};
  Duration service{Duration::seconds(60.0)};
};

/// A fault injected at a scripted time instead of drawn from the Poisson
/// process — the morph-vs-shrink boundary tests script exact timelines.
struct ScriptedClusterFault {
  Duration at{Duration::zero()};
  FaultDomain domain{FaultDomain::kChip};
  /// Anchor chip: the victim for kChip, a chip of the victim server for
  /// kServer, a chip of the first victim server for kRackPower.
  topo::TpuId anchor{0};
  /// Component kind; kChipDeath makes a kChip event fatal (server and
  /// rack-power events are always fatal for every covered chip).
  fault::FaultKind kind{fault::FaultKind::kChipDeath};
  /// Victim servers for kRackPower (consecutive from the anchor's server).
  std::int32_t servers{2};
};

struct ClusterParams {
  SchedulerPolicy policy{SchedulerPolicy::kPhotonicMorph};
  topo::ClusterConfig cluster{};
  /// Poisson job arrival rate; arrivals stop at `horizon`.
  double arrival_rate_per_s{2.0};
  /// Tenant mix; empty uses the default (2x2x1 w4, 4x2x1 w3, 4x4x1 w2,
  /// 4x4x2 w1, 4x4x4 w0.5 — small slices common, rack-scale rare).
  std::vector<ShapeMix> mix{};
  /// Service demand: max(service_min, Exp(mean = service_mean)).
  Duration service_mean{Duration::seconds(90.0)};
  Duration service_min{Duration::seconds(10.0)};
  Duration horizon{Duration::seconds(240.0)};
  /// Extra time after `horizon` for in-flight jobs to finish (no new
  /// arrivals or faults); the run ends at horizon + drain.
  Duration drain{Duration::seconds(360.0)};
  /// Checkpoints every this much *work progress*; rollback replays from the
  /// last one.
  Duration checkpoint_interval{Duration::seconds(30.0)};
  std::uint32_t max_requeues{3};
  /// Per-chip component MTBF (accelerated, as in runtime::RunConfig).
  double mtbf_hours{2.0};
  fault::FaultModelParams fault_model{};
  runtime::RecoveryPolicy recovery{};
  /// Gray (flap) events per chip-hour: a chip's optical backbone dips
  /// without dying (0 disables the layer; the pre-gray report is
  /// bit-identical).  Naive treats every flap as a component fault and pays
  /// a detection + in-place-repair stall; with gray_hysteresis the
  /// FlapDamper quarantines repeat flappers — repairs are suppressed while
  /// quarantined, and harvest/respare defer morphing onto chips still in
  /// quarantine or probation until the probation hold completes cleanly.
  double flap_rate_per_hour{0.0};
  /// Gray events concentrate on this many chips (evenly strided across the
  /// cluster): empirically a small fixed population of marginal components
  /// produces most flaps.  flap_rate_per_hour is per *flapping* chip.
  /// 0 spreads flaps uniformly over every chip instead.
  std::uint32_t flappy_chips{8};
  bool gray_hysteresis{true};
  fault::FlapDamperParams damper{};
  /// Rack-granularity migration charge (electrical baseline).
  Duration migration_latency{Duration::seconds(600.0)};
  /// Elastic shrink floor: survivors below this fraction of the original
  /// volume requeue instead of shrinking.
  double shrink_min_fraction{0.5};
  bool morph_enabled{true};
  /// Per-morph bandwidth penalty: a job's progress rate is multiplied by
  /// this for every morph it absorbs (stitched rings run slower than the
  /// native torus).
  double morph_bandwidth_factor{0.85};
  std::uint32_t morph_wavelengths{1};
  /// Harvest cap: a morph spanning more fragments than this fails (each
  /// fragment costs an OCS port pair and a stitch circuit).
  std::uint32_t max_fragments{8};
  topo::OcsParams ocs{};
  std::uint32_t ocs_switches{16};
  /// Wafers of the pricing fabric morph/repair circuits are planned on.
  std::uint32_t fabric_wafers{4};
  std::uint64_t seed{0xc105};
  /// Non-empty replaces the Poisson fault timeline entirely.
  std::vector<ScriptedClusterFault> script{};
  /// Non-empty replaces the Poisson arrival stream entirely.
  std::vector<ScriptedJob> job_script{};
};

struct ClusterReport {
  SchedulerPolicy policy{SchedulerPolicy::kPhotonicMorph};
  // --- job flow ---
  std::uint64_t offered{0};    ///< arrivals
  std::uint64_t admitted{0};   ///< first placements
  std::uint64_t completed{0};
  std::uint64_t unserved{0};   ///< still queued/running at the end
  std::uint64_t aborted{0};    ///< exceeded max_requeues
  std::uint64_t requeues{0};
  std::uint64_t placed_contiguous{0};
  std::uint64_t placed_morphed{0};
  // --- fault flow ---
  std::uint64_t fault_events{0};
  std::uint64_t fatal_chip_failures{0};
  std::uint64_t component_events{0};
  std::uint64_t detections{0};  ///< events that touched a running job
  // --- gray-failure flow (all zero when flap_rate_per_hour == 0) ---
  std::uint64_t flap_events{0};
  /// Flaps answered with a component-repair stall (the naive arm's cost,
  /// and the dampened arm's pre-quarantine thrash).
  std::uint64_t flap_repairs{0};
  /// Flaps ridden out while the chip was quarantined (damper-suppressed).
  std::uint64_t suppressed_repairs{0};
  std::uint64_t chip_quarantines{0};
  std::uint64_t chip_probations{0};
  /// Free chips harvest/respare skipped because the damper still held them
  /// in quarantine or probation — morphs deferred off flapping hardware.
  std::uint64_t morph_deferrals{0};
  // --- recovery escalation histogram ---
  std::uint64_t inplace_repairs{0};
  std::uint64_t respares{0};
  std::uint64_t morphs{0};
  std::uint64_t morph_aborts{0};
  std::uint64_t elastic_shrinks{0};
  std::uint64_t migrations{0};
  std::uint64_t migration_failures{0};
  std::array<std::uint64_t, routing::kRepairRungCount> recovered_by{};
  // --- work accounting ---
  double offered_work_chip_seconds{0.0};
  double completed_work_chip_seconds{0.0};
  runtime::LostWork lost{};
  // --- queueing / fragmentation ---
  double queue_delay_mean_s{0.0};
  double queue_delay_p50_s{0.0};
  double queue_delay_p99_s{0.0};
  /// Time-averaged FragmentationReport::stranding().
  double frag_stranding_avg{0.0};
  /// Time-averaged allocated-chip fraction.
  double utilization_avg{0.0};
  std::uint32_t peak_running{0};
  Duration makespan{Duration::zero()};
  /// Outcome digest: completion stream, final chip states, fabric ledger,
  /// OCS occupancy, work totals.  Deliberately EXCLUDES attempt/abort
  /// diagnostics (morph_aborts, migration_failures), so an exactly
  /// rolled-back attempt leaves it unchanged — the rollback tests compare
  /// digests across runs that differ only in aborted attempts.
  std::uint64_t digest{0};

  /// Fraction of offered work (chip-seconds) the cluster completed.
  [[nodiscard]] double accepted_load() const {
    return offered_work_chip_seconds <= 0.0
               ? 1.0
               : completed_work_chip_seconds / offered_work_chip_seconds;
  }
  /// Useful work delivered per chip-second of capacity over the makespan.
  [[nodiscard]] double goodput(std::int32_t chip_count) const {
    const double cap = static_cast<double>(chip_count) * makespan.to_seconds();
    return cap <= 0.0 ? 0.0 : completed_work_chip_seconds / cap;
  }
};

/// One simulated cluster run.  Construct, run() once; accessors expose the
/// final world for tests.
class ClusterScheduler {
 public:
  explicit ClusterScheduler(const ClusterParams& params = {});

  [[nodiscard]] ClusterReport run();

  [[nodiscard]] const ClusterParams& params() const { return params_; }
  [[nodiscard]] const topo::TpuCluster& cluster() const { return cluster_; }
  [[nodiscard]] const topo::SliceAllocator& allocator() const { return alloc_; }
  [[nodiscard]] const topo::OcsBank& ocs() const { return ocs_; }
  [[nodiscard]] const fabric::Fabric& fabric() const { return fab_; }

 private:
  struct Job {
    std::uint64_t id{0};
    topo::Shape shape{};
    Duration service{Duration::zero()};
    TimePoint arrival{};
    TimePoint started{};        ///< last (re)start of progress
    Duration progress{Duration::zero()};
    Duration checkpointed{Duration::zero()};
    double rate{1.0};
    std::uint32_t generation{0};
    std::uint32_t requeues{0};
    std::uint32_t morphs{0};
    bool running{false};
    bool ever_placed{false};
    bool morphed{false};        ///< chip-set placement (no slice)
    topo::SliceId slice{-1};
    std::vector<topo::TpuId> chips;
    std::vector<fabric::CircuitId> stitch_circuits;
    std::uint32_t ocs_ports{0};
    std::int32_t original_volume{0};
  };

  /// One harvested fragment of a morph: free chips taken from one rack.
  struct Fragment {
    topo::RackId rack{0};
    std::vector<topo::TpuId> chips;
  };

  struct FaultEvent {
    FaultDomain domain{FaultDomain::kChip};
    fault::FaultKind kind{fault::FaultKind::kChipDeath};
    bool fatal{false};
    std::vector<topo::TpuId> victims;  ///< ascending, unique
  };

  // --- event handlers ---
  void on_arrival();
  void on_scripted_arrival(std::size_t index);
  void admit_new_job(topo::Shape shape, Duration service);
  void on_fault(std::size_t script_index);
  void on_gray();
  void on_completion(std::uint64_t id, std::uint32_t generation);

  // --- placement / admission ---
  void try_admit();
  [[nodiscard]] bool place_contiguous(Job& job);
  [[nodiscard]] std::vector<Fragment> harvest(std::int32_t volume);
  void unharvest(const std::vector<Fragment>& fragments);
  [[nodiscard]] std::vector<routing::Demand> stitch_demands(
      const std::vector<Fragment>& fragments);
  void take_chips(Job& job, const std::vector<Fragment>& fragments);
  void release_placement(Job& job);
  void start_job(Job& job, TimePoint at);

  // --- fault response ---
  [[nodiscard]] FaultEvent draw_fault();
  [[nodiscard]] FaultEvent scripted_fault(const ScriptedClusterFault& s) const;
  void apply_fault(const FaultEvent& ev);
  void recover_photonic(Job& job, const FaultEvent& ev,
                        const std::vector<topo::TpuId>& dead, Duration detect);
  void recover_electrical(Job& job, const std::vector<topo::TpuId>& dead,
                          Duration detect);
  [[nodiscard]] bool respare(Job& job, const std::vector<topo::TpuId>& dead);
  [[nodiscard]] bool morph(Job& job, const std::vector<topo::TpuId>& dead);
  void shrink(Job& job, const std::vector<topo::TpuId>& dead);
  void requeue(Job& job);
  /// Prices one optical recovery on the pricing fabric via a probe circuit
  /// + drive_recovery; returns the wall clock charged (and updates
  /// recovered_by).  `flags_kind` selects the synthetic degradation.
  [[nodiscard]] Duration price_recovery(fault::FaultKind flags_kind, bool fatal);

  // --- bookkeeping ---
  void stall_and_resume(Job& job, Duration stall, bool state_loss, TimePoint at);
  void accumulate_metrics(TimePoint to);
  void mark_rack_dirty(topo::RackId rack);
  void refresh_racks();
  [[nodiscard]] Duration detection_delay(TimePoint at) const;
  /// Whether harvest/respare may take this chip now: false while the flap
  /// damper holds it in quarantine or probation (gray layer on only).
  [[nodiscard]] bool chip_usable(topo::TpuId chip);
  /// Aggregate gray-event rate (events/s) over the flapping population.
  [[nodiscard]] double gray_rate() const;
  [[nodiscard]] fabric::GlobalTile cursor_tile(fabric::WaferId wafer);
  void fold_digest(std::uint64_t v);

  ClusterParams params_;
  topo::TpuCluster cluster_;
  topo::SliceAllocator alloc_;
  topo::OcsBank ocs_;
  fabric::Fabric fab_;
  fault::FaultInjector injector_;
  routing::PlanCache cache_;
  sim::EventEngine engine_;

  // RNG streams (task_seed(seed, n)): 0 arrivals, 1 job attributes,
  // 2 fault clock, 3 fault bodies, 4 victim anchors, 5 gray clock,
  // 6 gray victims.
  Rng arrivals_;
  Rng attrs_;
  Rng fault_clock_;
  Rng fault_body_;
  Rng victims_;
  Rng gray_clock_;
  Rng gray_victims_;
  fault::FlapDamper damper_;

  std::map<std::uint64_t, Job> jobs_;  ///< ordered: deterministic iteration
  std::deque<std::uint64_t> queue_;
  std::vector<std::int64_t> chip_owner_;  ///< -1 = none
  std::uint64_t next_job_id_{0};
  std::uint32_t running_{0};

  // Per-rack fragmentation cache (satellite accounting, recomputed lazily
  // for racks whose chips changed state).
  std::vector<std::int32_t> rack_free_;
  std::vector<std::int32_t> rack_largest_;
  std::set<topo::RackId> dirty_racks_;
  std::int32_t total_free_{0};
  std::int32_t placeable_sum_{0};

  std::array<std::uint32_t, 64> tile_cursor_{};  ///< per-wafer stitch tiles
  TimePoint metrics_at_{};
  double frag_integral_{0.0};
  double util_integral_{0.0};
  std::vector<double> queue_delays_;
  ClusterReport report_;
};

/// Convenience wrapper: one run from params.
[[nodiscard]] ClusterReport run_cluster(const ClusterParams& params = {});

// ---------------------------------------------------------------------------
// MTBF sweep: photonic morph vs electrical-only accepted load.
// ---------------------------------------------------------------------------

struct ClusterSweepConfig {
  ClusterParams base{};
  std::vector<double> mtbf_points{0.5, 1.0, 2.0, 4.0, 8.0};
  std::uint32_t trials{2};
  /// 0 consults LIGHTPATH_THREADS (util::env_threads), then the shared
  /// pool.  The report is bit-identical for every value.
  unsigned threads{0};
};

struct ClusterPointReport {
  double mtbf_hours{0.0};
  SchedulerPolicy policy{SchedulerPolicy::kPhotonicMorph};
  std::uint32_t trials{0};
  double accepted_load_mean{0.0};
  double goodput_mean{0.0};
  double queue_delay_p50_s{0.0};  ///< mean of per-trial p50
  double queue_delay_p99_s{0.0};  ///< mean of per-trial p99
  double frag_stranding_avg{0.0};
  double utilization_avg{0.0};
  std::uint64_t completed{0};
  std::uint64_t offered{0};
  std::uint64_t requeues{0};
  std::uint64_t aborted{0};
  std::uint64_t morphs{0};
  std::uint64_t elastic_shrinks{0};
  std::uint64_t migrations{0};
  std::uint64_t fault_events{0};
};

struct ClusterSweepReport {
  /// One entry per (mtbf point x policy), photonic first within each point.
  std::vector<ClusterPointReport> points;
  /// Fold of every trial's ClusterReport digest in ascending task order:
  /// one comparison certifies bit-identity across thread counts.
  std::uint64_t digest{0};
};

/// Deterministic parallel sweep over (mtbf x policy x trial).  Both
/// policies of a (point, trial) pair share seed task_seed(base.seed,
/// p * trials + trial) — a paired comparison against the identical fault
/// and arrival streams.  Results fold in ascending flat-index order:
/// bit-identical at any thread count.
[[nodiscard]] ClusterSweepReport run_cluster_sweep(
    const ClusterSweepConfig& config = {});

}  // namespace lp::cluster
