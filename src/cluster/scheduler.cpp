#include "cluster/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <optional>

#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace lp::cluster {
namespace {

fabric::FabricConfig pricing_fabric_config(std::uint32_t wafers) {
  fabric::FabricConfig config;
  config.wafer_count = std::clamp(wafers, 1u, 64u);  // tile_cursor_ is 64 wide
  return config;
}

std::vector<ShapeMix> default_mix() {
  return {
      {topo::Shape{{2, 2, 1}}, 4.0}, {topo::Shape{{4, 2, 1}}, 3.0},
      {topo::Shape{{4, 4, 1}}, 2.0}, {topo::Shape{{4, 4, 2}}, 1.0},
      {topo::Shape{{4, 4, 4}}, 0.5},
  };
}

}  // namespace

ClusterScheduler::ClusterScheduler(const ClusterParams& params)
    : params_{params},
      cluster_{params.cluster},
      alloc_{cluster_},
      ocs_{params.ocs, params.ocs_switches},
      fab_{pricing_fabric_config(params.fabric_wafers)},
      injector_{fab_, params.fault_model, params.seed},
      cache_{fab_},
      arrivals_{util::task_seed(params.seed, 0)},
      attrs_{util::task_seed(params.seed, 1)},
      fault_clock_{util::task_seed(params.seed, 2)},
      fault_body_{util::task_seed(params.seed, 3)},
      victims_{util::task_seed(params.seed, 4)},
      gray_clock_{util::task_seed(params.seed, 5)},
      gray_victims_{util::task_seed(params.seed, 6)},
      damper_{params.damper} {
  if (params_.mix.empty()) params_.mix = default_mix();
  const auto chips = static_cast<std::size_t>(cluster_.chip_count());
  chip_owner_.assign(chips, -1);
  const auto racks = static_cast<std::size_t>(cluster_.rack_count());
  rack_free_.assign(racks, cluster_.chips_per_rack());
  rack_largest_.assign(racks, cluster_.chips_per_rack());
  total_free_ = cluster_.chip_count();
  placeable_sum_ = cluster_.chip_count();
}

// ---------------------------------------------------------------------------
// Bookkeeping.
// ---------------------------------------------------------------------------

void ClusterScheduler::fold_digest(std::uint64_t v) {
  report_.digest = fabric::hash_mix(report_.digest, v);
}

void ClusterScheduler::mark_rack_dirty(topo::RackId rack) {
  dirty_racks_.insert(rack);
}

void ClusterScheduler::refresh_racks() {
  for (const topo::RackId rack : dirty_racks_) {
    const auto r = static_cast<std::size_t>(rack);
    total_free_ -= rack_free_[r];
    placeable_sum_ -= rack_largest_[r];
    rack_free_[r] = alloc_.free_in_rack(rack);
    rack_largest_[r] = alloc_.largest_placeable(rack).size();
    total_free_ += rack_free_[r];
    placeable_sum_ += rack_largest_[r];
  }
  dirty_racks_.clear();
}

void ClusterScheduler::accumulate_metrics(TimePoint to) {
  refresh_racks();
  const double dt = (to - metrics_at_).to_seconds();
  if (dt > 0.0) {
    const double free = static_cast<double>(total_free_);
    const double stranding =
        total_free_ == 0 ? 0.0 : 1.0 - static_cast<double>(placeable_sum_) / free;
    const double chips = static_cast<double>(cluster_.chip_count());
    const double failed = static_cast<double>(report_.fatal_chip_failures);
    const double util = (chips - free - failed) / chips;
    frag_integral_ += stranding * dt;
    util_integral_ += util * dt;
    metrics_at_ = to;
  }
}

Duration ClusterScheduler::detection_delay(TimePoint at) const {
  // Heartbeat detection: noticed at the first tick at or after the strike,
  // diagnosed detection_latency later (TrainingRun's formula).
  const double hb = params_.recovery.heartbeat_interval.to_seconds();
  const double t = at.to_seconds();
  return Duration::seconds(std::ceil(t / hb) * hb - t) +
         params_.recovery.detection_latency;
}

double ClusterScheduler::gray_rate() const {
  const auto chips = static_cast<std::uint64_t>(cluster_.chip_count());
  const std::uint64_t flappy =
      params_.flappy_chips == 0
          ? chips
          : std::min<std::uint64_t>(params_.flappy_chips, chips);
  return static_cast<double>(flappy) * params_.flap_rate_per_hour / 3600.0;
}

bool ClusterScheduler::chip_usable(topo::TpuId chip) {
  if (params_.flap_rate_per_hour <= 0.0 || !params_.gray_hysteresis) return true;
  const fault::LinkState s =
      damper_.state(static_cast<std::uint64_t>(chip),
                    Duration::seconds(engine_.now().to_seconds()));
  return s != fault::LinkState::kQuarantined && s != fault::LinkState::kProbation;
}

fabric::GlobalTile ClusterScheduler::cursor_tile(fabric::WaferId wafer) {
  const auto w = static_cast<std::size_t>(wafer);
  const auto tiles = static_cast<std::uint32_t>(fab_.wafer(wafer).tile_count());
  const std::uint32_t tile = tile_cursor_[w] % tiles;
  tile_cursor_[w] = (tile + 1) % tiles;
  return {wafer, static_cast<fabric::TileId>(tile)};
}

// ---------------------------------------------------------------------------
// Placement.
// ---------------------------------------------------------------------------

void ClusterScheduler::start_job(Job& job, TimePoint at) {
  job.running = true;
  job.started = at;
  ++job.generation;
  if (!job.ever_placed) {
    job.ever_placed = true;
    ++report_.admitted;
    queue_delays_.push_back((at - job.arrival).to_seconds());
  }
  ++running_;
  report_.peak_running = std::max(report_.peak_running, running_);
  const Duration remaining = (job.service - job.progress) / job.rate;
  const std::uint64_t id = job.id;
  const std::uint32_t gen = job.generation;
  engine_.schedule_at(at + remaining, [this, id, gen] { on_completion(id, gen); });
}

bool ClusterScheduler::place_contiguous(Job& job) {
  auto placed = alloc_.allocate(job.shape);
  if (!placed) return false;
  job.slice = placed.value();
  job.morphed = false;
  job.chips.clear();
  const topo::Slice* s = alloc_.slice(job.slice);
  for (const topo::Coord c : s->coords()) {
    job.chips.push_back(cluster_.chip_at(s->rack, c));
  }
  std::sort(job.chips.begin(), job.chips.end());
  for (const topo::TpuId c : job.chips) {
    chip_owner_[static_cast<std::size_t>(c)] = static_cast<std::int64_t>(job.id);
  }
  mark_rack_dirty(s->rack);
  ++report_.placed_contiguous;
  return true;
}

std::vector<ClusterScheduler::Fragment> ClusterScheduler::harvest(
    std::int32_t volume) {
  refresh_racks();
  // Racks in (free descending, rack ascending) order: the fewest fragments
  // cover the volume, and ties resolve identically on every run.
  std::vector<topo::RackId> order;
  for (topo::RackId r = 0; r < cluster_.rack_count(); ++r) {
    if (rack_free_[static_cast<std::size_t>(r)] > 0) order.push_back(r);
  }
  std::sort(order.begin(), order.end(), [this](topo::RackId a, topo::RackId b) {
    const std::int32_t fa = rack_free_[static_cast<std::size_t>(a)];
    const std::int32_t fb = rack_free_[static_cast<std::size_t>(b)];
    if (fa != fb) return fa > fb;
    return a < b;
  });
  std::vector<Fragment> out;
  std::int32_t remaining = volume;
  for (const topo::RackId rack : order) {
    if (remaining <= 0) break;
    if (out.size() >= params_.max_fragments) break;
    Fragment f;
    f.rack = rack;
    const std::int32_t per = cluster_.chips_per_rack();
    for (std::int32_t i = 0; i < per && remaining > 0; ++i) {
      const topo::TpuId chip = rack * per + i;
      if (cluster_.state(chip) != topo::ChipState::kFree) continue;
      if (!chip_usable(chip)) {
        ++report_.morph_deferrals;
        continue;
      }
      cluster_.set_state(chip, topo::ChipState::kAllocated);
      f.chips.push_back(chip);
      --remaining;
    }
    if (!f.chips.empty()) {
      mark_rack_dirty(rack);
      out.push_back(std::move(f));
    }
  }
  if (remaining > 0) {
    unharvest(out);
    out.clear();
  }
  return out;
}

void ClusterScheduler::unharvest(const std::vector<Fragment>& fragments) {
  for (const Fragment& f : fragments) {
    for (const topo::TpuId chip : f.chips) {
      cluster_.set_state(chip, topo::ChipState::kFree);
    }
    mark_rack_dirty(f.rack);
  }
}

std::vector<routing::Demand> ClusterScheduler::stitch_demands(
    const std::vector<Fragment>& fragments) {
  // All stitch endpoints live on the wafer serving the first fragment's
  // rack: the optical splice plane that face's OCS bank switches.  Same-
  // wafer demands go through the capacity-aware router, which is the path
  // the PlanCache memoizes.
  std::vector<routing::Demand> out;
  const std::size_t k = fragments.size();
  if (k < 2) return out;
  const auto wafer = static_cast<fabric::WaferId>(
      static_cast<std::uint32_t>(fragments.front().rack) % fab_.wafer_count());
  std::vector<fabric::GlobalTile> endpoints;
  endpoints.reserve(k);
  for (std::size_t i = 0; i < k; ++i) endpoints.push_back(cursor_tile(wafer));
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(routing::Demand{endpoints[i], endpoints[(i + 1) % k],
                                  params_.morph_wavelengths});
  }
  return out;
}

void ClusterScheduler::take_chips(Job& job, const std::vector<Fragment>& fragments) {
  for (const Fragment& f : fragments) {
    for (const topo::TpuId chip : f.chips) {
      job.chips.push_back(chip);
      chip_owner_[static_cast<std::size_t>(chip)] = static_cast<std::int64_t>(job.id);
    }
  }
  std::sort(job.chips.begin(), job.chips.end());
}

void ClusterScheduler::release_placement(Job& job) {
  for (const topo::TpuId chip : job.chips) {
    chip_owner_[static_cast<std::size_t>(chip)] = -1;
    mark_rack_dirty(cluster_.rack_of(chip));
  }
  if (job.slice >= 0) {
    alloc_.release(job.slice);  // failed chips stay failed
    job.slice = -1;
  } else {
    for (const topo::TpuId chip : job.chips) {
      if (cluster_.state(chip) == topo::ChipState::kAllocated) {
        cluster_.set_state(chip, topo::ChipState::kFree);
      }
    }
  }
  job.chips.clear();
  for (const fabric::CircuitId id : job.stitch_circuits) fab_.disconnect(id);
  job.stitch_circuits.clear();
  if (job.ocs_ports > 0) {
    ocs_.release(job.ocs_ports);
    job.ocs_ports = 0;
  }
}

// ---------------------------------------------------------------------------
// Admission.
// ---------------------------------------------------------------------------

void ClusterScheduler::try_admit() {
  const TimePoint now = engine_.now();
  struct MorphCandidate {
    std::uint64_t id{0};
    std::vector<Fragment> fragments;
    std::uint32_t ports{0};
    std::vector<routing::Demand> demands;
  };
  std::vector<MorphCandidate> batch;
  std::vector<std::uint64_t> still_queued;
  std::set<topo::Shape> failed_contiguous;
  std::int32_t failed_morph_volume = std::numeric_limits<std::int32_t>::max();
  const bool can_morph = params_.policy == SchedulerPolicy::kPhotonicMorph &&
                         params_.morph_enabled;

  for (const std::uint64_t id : queue_) {
    Job& job = jobs_.at(id);
    if (failed_contiguous.count(job.shape) == 0 && place_contiguous(job)) {
      start_job(job, now);
      continue;
    }
    failed_contiguous.insert(job.shape);
    const std::int32_t volume = job.shape.size();
    if (can_morph && volume < failed_morph_volume) {
      std::vector<Fragment> frags = harvest(volume);
      if (!frags.empty()) {
        const auto ports = static_cast<std::uint32_t>(frags.size());
        if (ocs_.reserve(ports)) {
          MorphCandidate c;
          c.id = id;
          c.fragments = std::move(frags);
          c.ports = ports;
          c.demands = stitch_demands(c.fragments);
          batch.push_back(std::move(c));
          continue;  // queued-ness resolved after planning
        }
        unharvest(frags);
      }
      failed_morph_volume = std::min(failed_morph_volume, volume);
    }
    still_queued.push_back(id);
  }

  // Plan the batch's stitch rings.  A lone morph goes through the
  // PlanCache (repeated demand sets against an unchanged ledger replay
  // without route search); two or more plan concurrently under the sharded
  // ledger with per-job atomicity — a job whose ring cannot fully place
  // rolls back and stays queued.
  std::vector<routing::PlanReport> reports(batch.size());
  if (batch.size() == 1) {
    reports[0] = cache_.place_all(batch[0].demands);
    if (!reports[0].complete()) {
      cache_.release_all(reports[0]);
      reports[0].placed.clear();
    }
  } else if (batch.size() >= 2) {
    std::vector<std::vector<routing::Demand>> sets;
    sets.reserve(batch.size());
    for (const MorphCandidate& c : batch) sets.push_back(c.demands);
    routing::PlanJobsOptions opts;
    opts.atomic_jobs = true;
    auto result = routing::plan_jobs(fab_, sets, opts);
    reports = std::move(result.reports);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    MorphCandidate& c = batch[i];
    Job& job = jobs_.at(c.id);
    const bool ok = c.demands.empty() || !reports[i].placed.empty();
    if (!ok) {
      unharvest(c.fragments);
      ocs_.release(c.ports);
      still_queued.push_back(c.id);
      continue;
    }
    take_chips(job, c.fragments);
    job.morphed = true;
    job.ocs_ports = c.ports;
    for (const routing::PlacedCircuit& p : reports[i].placed) {
      job.stitch_circuits.push_back(p.id);
    }
    ++report_.placed_morphed;
    start_job(job, now);
  }

  // Preserve arrival order among the survivors.
  std::set<std::uint64_t> keep(still_queued.begin(), still_queued.end());
  std::deque<std::uint64_t> next;
  for (const std::uint64_t id : queue_) {
    if (keep.count(id) > 0) next.push_back(id);
  }
  queue_ = std::move(next);
}

// ---------------------------------------------------------------------------
// Fault events.
// ---------------------------------------------------------------------------

ClusterScheduler::FaultEvent ClusterScheduler::draw_fault() {
  const fault::SampledFaults sf = injector_.sample_with_domain(fault_body_);
  const auto anchor = static_cast<topo::TpuId>(
      victims_.uniform_index(static_cast<std::uint64_t>(cluster_.chip_count())));
  FaultEvent ev;
  ev.kind = sf.faults.front().kind;
  switch (sf.domain) {
    case fault::BurstDomain::kNone:
      ev.domain = FaultDomain::kChip;
      ev.fatal = ev.kind == fault::FaultKind::kChipDeath;
      ev.victims = {anchor};
      break;
    case fault::BurstDomain::kWafer: {
      ev.domain = FaultDomain::kServer;
      ev.fatal = true;
      ev.victims = cluster_.server_chips(anchor);
      break;
    }
    case fault::BurstDomain::kRackPower: {
      ev.domain = FaultDomain::kRackPower;
      ev.fatal = true;
      const std::int32_t spr = cluster_.servers_per_rack();
      const auto span = std::min<std::int32_t>(
          static_cast<std::int32_t>(sf.faults.size()), spr);
      const std::int32_t first = cluster_.server_of(anchor);
      const topo::RackId rack = cluster_.rack_of(anchor);
      const std::int32_t per = cluster_.chips_per_rack();
      for (std::int32_t i = 0; i < per; ++i) {
        const topo::TpuId chip = rack * per + i;
        const std::int32_t rel =
            ((cluster_.server_of(chip) - first) % spr + spr) % spr;
        if (rel < span) ev.victims.push_back(chip);
      }
      break;
    }
  }
  std::sort(ev.victims.begin(), ev.victims.end());
  return ev;
}

ClusterScheduler::FaultEvent ClusterScheduler::scripted_fault(
    const ScriptedClusterFault& s) const {
  FaultEvent ev;
  ev.kind = s.kind;
  ev.domain = s.domain;
  switch (s.domain) {
    case FaultDomain::kChip:
      ev.fatal = s.kind == fault::FaultKind::kChipDeath;
      ev.victims = {s.anchor};
      break;
    case FaultDomain::kServer:
      ev.fatal = true;
      ev.victims = cluster_.server_chips(s.anchor);
      break;
    case FaultDomain::kRackPower: {
      ev.fatal = true;
      const std::int32_t spr = cluster_.servers_per_rack();
      const std::int32_t span = std::min(std::max(s.servers, 1), spr);
      const std::int32_t first = cluster_.server_of(s.anchor);
      const topo::RackId rack = cluster_.rack_of(s.anchor);
      const std::int32_t per = cluster_.chips_per_rack();
      for (std::int32_t i = 0; i < per; ++i) {
        const topo::TpuId chip = rack * per + i;
        const std::int32_t rel =
            ((cluster_.server_of(chip) - first) % spr + spr) % spr;
        if (rel < span) ev.victims.push_back(chip);
      }
      break;
    }
  }
  std::sort(ev.victims.begin(), ev.victims.end());
  return ev;
}

void ClusterScheduler::apply_fault(const FaultEvent& ev) {
  if (!ev.fatal) return;
  for (const topo::TpuId chip : ev.victims) {
    if (cluster_.state(chip) == topo::ChipState::kFailed) continue;
    cluster_.set_state(chip, topo::ChipState::kFailed);
    ++report_.fatal_chip_failures;
    mark_rack_dirty(cluster_.rack_of(chip));
  }
}

Duration ClusterScheduler::price_recovery(fault::FaultKind flags_kind, bool fatal) {
  // Price the optical response on the pricing fabric: a probe circuit
  // stands in for the job's degraded ring edge, the sampled kind selects
  // the degradation the health monitor would report, and drive_recovery
  // climbs the actual ladder (through the PlanCache) to produce a rung and
  // a wall-clock charge.  The probe and any replacement circuits are torn
  // down afterwards — a transient overlay, never accumulated state.
  const auto wafer = static_cast<fabric::WaferId>(
      report_.fault_events % std::max<std::uint64_t>(1, fab_.wafer_count()));
  const fabric::GlobalTile a = cursor_tile(wafer);
  const fabric::GlobalTile b = cursor_tile(wafer);
  auto probe = fab_.connect(a, b, 1);
  if (!probe) return params_.recovery.detection_latency;

  routing::DegradedCircuit victim;
  victim.id = probe.value();
  switch (flags_kind) {
    case fault::FaultKind::kMziStuck:
    case fault::FaultKind::kFiberCut: victim.hard_down = true; break;
    case fault::FaultKind::kMziDrift:
    case fault::FaultKind::kWaveguideLoss: victim.budget_failed = true; break;
    case fault::FaultKind::kLaserLoss: victim.dead_lasers = 2; break;
    case fault::FaultKind::kChipDeath: victim.src_dead = true; break;
  }
  if (fatal) victim.src_dead = true;

  routing::EscalationOptions opts;
  opts.wavelengths = 1;
  opts.cache = &cache_;
  if (victim.src_dead) {
    opts.spare_candidates = {cursor_tile(wafer), cursor_tile(wafer)};
  }
  const runtime::RecoveryResult res =
      drive_recovery(fab_, victim, params_.recovery, opts);
  if (res.recovered) {
    ++report_.recovered_by[routing::rung_index(res.rung)];
  }
  std::set<fabric::CircuitId> down{probe.value()};
  down.insert(res.circuits.begin(), res.circuits.end());
  for (const fabric::CircuitId id : down) fab_.disconnect(id);
  return res.total();
}

bool ClusterScheduler::respare(Job& job, const std::vector<topo::TpuId>& dead) {
  // One free chip of the same rack per dead chip, ascending chip id; all or
  // nothing.
  std::vector<topo::TpuId> spares;
  std::set<topo::TpuId> taken;
  for (const topo::TpuId d : dead) {
    const topo::RackId rack = cluster_.rack_of(d);
    const std::int32_t per = cluster_.chips_per_rack();
    topo::TpuId found = -1;
    for (std::int32_t i = 0; i < per; ++i) {
      const topo::TpuId chip = rack * per + i;
      if (cluster_.state(chip) != topo::ChipState::kFree) continue;
      if (taken.count(chip) > 0) continue;
      if (!chip_usable(chip)) {
        ++report_.morph_deferrals;
        continue;
      }
      found = chip;
      break;
    }
    if (found < 0) return false;
    taken.insert(found);
    spares.push_back(found);
  }
  // Commit: the slice (if any) becomes a chip set; survivors and spares
  // carry the job.
  std::vector<topo::TpuId> survivors;
  for (const topo::TpuId c : job.chips) {
    if (!std::binary_search(dead.begin(), dead.end(), c)) survivors.push_back(c);
  }
  if (job.slice >= 0) {
    alloc_.release(job.slice);
    job.slice = -1;
    const auto rack = cluster_.rack_of(job.chips.front());
    mark_rack_dirty(rack);
  }
  for (const topo::TpuId d : dead) {
    chip_owner_[static_cast<std::size_t>(d)] = -1;
  }
  job.chips = survivors;
  for (const topo::TpuId s : spares) job.chips.push_back(s);
  std::sort(job.chips.begin(), job.chips.end());
  for (const topo::TpuId c : job.chips) {
    cluster_.set_state(c, topo::ChipState::kAllocated);
    chip_owner_[static_cast<std::size_t>(c)] = static_cast<std::int64_t>(job.id);
    mark_rack_dirty(cluster_.rack_of(c));
  }
  job.morphed = true;
  ++report_.respares;
  return true;
}

bool ClusterScheduler::morph(Job& job, const std::vector<topo::TpuId>& dead) {
  // Make-before-break: harvest replacements and plan the new stitch ring
  // first; the old ring is torn down only after the new one committed.  An
  // abort rolls back exactly — harvested chips, OCS ports, planned
  // circuits, and the stitch-tile cursor all return to their prior state.
  const auto needed = static_cast<std::int32_t>(dead.size());
  std::vector<Fragment> fresh = harvest(needed);
  if (fresh.empty() && needed > 0) return false;  // infeasible, not an abort

  std::vector<topo::TpuId> survivors;
  for (const topo::TpuId c : job.chips) {
    if (!std::binary_search(dead.begin(), dead.end(), c)) survivors.push_back(c);
  }
  // Fragment list: survivors grouped by rack (ascending), then the fresh
  // harvest.
  std::vector<Fragment> frags;
  for (const topo::TpuId c : survivors) {
    const topo::RackId rack = cluster_.rack_of(c);
    if (frags.empty() || frags.back().rack != rack) {
      frags.push_back(Fragment{rack, {}});
    }
    frags.back().chips.push_back(c);
  }
  for (const Fragment& f : fresh) frags.push_back(f);  // keep `fresh` intact for rollback
  const auto ports = static_cast<std::uint32_t>(frags.size());
  if (frags.size() > params_.max_fragments || !ocs_.reserve(ports)) {
    unharvest(fresh);
    ++report_.morph_aborts;
    return false;
  }
  const std::array<std::uint32_t, 64> saved_cursor = tile_cursor_;
  const std::vector<routing::Demand> demands = stitch_demands(frags);
  routing::PlanReport plan;
  if (!demands.empty()) {
    plan = cache_.place_all(demands);
    if (!plan.complete()) {
      cache_.release_all(plan);
      ocs_.release(ports);
      unharvest(fresh);
      tile_cursor_ = saved_cursor;
      ++report_.morph_aborts;
      return false;
    }
  }

  // Commit: break the old ring, adopt the new placement.
  for (const fabric::CircuitId id : job.stitch_circuits) fab_.disconnect(id);
  job.stitch_circuits.clear();
  if (job.ocs_ports > 0) ocs_.release(job.ocs_ports);
  job.ocs_ports = ports;
  for (const routing::PlacedCircuit& p : plan.placed) {
    job.stitch_circuits.push_back(p.id);
  }
  if (job.slice >= 0) {
    alloc_.release(job.slice);
    job.slice = -1;
  }
  for (const topo::TpuId d : dead) {
    chip_owner_[static_cast<std::size_t>(d)] = -1;
  }
  job.chips = survivors;
  for (const Fragment& f : fresh) {
    for (const topo::TpuId c : f.chips) job.chips.push_back(c);
  }
  std::sort(job.chips.begin(), job.chips.end());
  for (const topo::TpuId c : job.chips) {
    cluster_.set_state(c, topo::ChipState::kAllocated);
    chip_owner_[static_cast<std::size_t>(c)] = static_cast<std::int64_t>(job.id);
    mark_rack_dirty(cluster_.rack_of(c));
  }
  job.morphed = true;
  ++job.morphs;
  job.rate = std::pow(params_.morph_bandwidth_factor,
                      static_cast<double>(job.morphs)) *
             (static_cast<double>(job.chips.size()) /
              static_cast<double>(job.original_volume));
  ++report_.morphs;
  return true;
}

void ClusterScheduler::shrink(Job& job, const std::vector<topo::TpuId>& dead) {
  std::vector<topo::TpuId> survivors;
  for (const topo::TpuId c : job.chips) {
    if (!std::binary_search(dead.begin(), dead.end(), c)) survivors.push_back(c);
  }
  if (job.slice >= 0) {
    alloc_.release(job.slice);
    job.slice = -1;
    for (const topo::TpuId c : survivors) {
      cluster_.set_state(c, topo::ChipState::kAllocated);
    }
  }
  for (const topo::TpuId d : dead) {
    chip_owner_[static_cast<std::size_t>(d)] = -1;
    mark_rack_dirty(cluster_.rack_of(d));
  }
  job.chips = survivors;
  job.morphed = true;
  job.rate = std::pow(params_.morph_bandwidth_factor,
                      static_cast<double>(job.morphs)) *
             (static_cast<double>(job.chips.size()) /
              static_cast<double>(job.original_volume));
  ++report_.elastic_shrinks;
}

void ClusterScheduler::requeue(Job& job) {
  if (job.running) {
    // Bank progress made since the last (re)start before rolling back to
    // the checkpoint — requeue is always a state loss.
    const Duration elapsed =
        std::max(Duration::zero(), engine_.now() - job.started);
    job.progress = std::min(job.service, job.progress + elapsed * job.rate);
    const double ci = params_.checkpoint_interval.to_seconds();
    job.checkpointed =
        Duration::seconds(std::floor(job.progress.to_seconds() / ci) * ci);
    report_.lost.redo += job.progress - job.checkpointed;
    job.running = false;
    --running_;
  }
  ++job.generation;  // cancels the pending completion
  release_placement(job);
  job.progress = job.checkpointed;
  job.rate = 1.0;
  job.morphs = 0;
  job.morphed = false;
  ++report_.requeues;
  ++job.requeues;
  if (job.requeues > params_.max_requeues) {
    ++report_.aborted;
    jobs_.erase(job.id);
    return;
  }
  queue_.push_back(job.id);
}

void ClusterScheduler::stall_and_resume(Job& job, Duration stall, bool state_loss,
                                        TimePoint at) {
  const Duration elapsed = std::max(Duration::zero(), at - job.started);
  job.progress += elapsed * job.rate;
  job.progress = std::min(job.progress, job.service);
  const double ci = params_.checkpoint_interval.to_seconds();
  job.checkpointed =
      Duration::seconds(std::floor(job.progress.to_seconds() / ci) * ci);
  if (state_loss) {
    const Duration redo = job.progress - job.checkpointed;
    report_.lost.redo += redo;
    job.progress = job.checkpointed;
  }
  --running_;
  job.running = false;
  start_job(job, at + stall);
}

void ClusterScheduler::recover_photonic(Job& job, const FaultEvent& ev,
                                        const std::vector<topo::TpuId>& dead,
                                        Duration detect) {
  const TimePoint now = engine_.now();
  report_.lost.detection += detect;
  if (!ev.fatal) {
    // Component fault: in-place optical repair, a pure stall measured in
    // microseconds; no device state is lost.
    const Duration price = price_recovery(ev.kind, /*fatal=*/false);
    report_.lost.recovery += price;
    ++report_.inplace_repairs;
    stall_and_resume(job, detect + price, /*state_loss=*/false, now);
    return;
  }
  // Fatal chips: escalation in blast-radius order — respare, morph,
  // elastic shrink, requeue.  The optical price (ladder climb) is charged
  // once per event.
  const Duration price = price_recovery(fault::FaultKind::kChipDeath, true);
  report_.lost.recovery += price;
  if (respare(job, dead)) {
    stall_and_resume(job, detect + price, /*state_loss=*/true, now);
    return;
  }
  if (params_.morph_enabled && morph(job, dead)) {
    // A morph also pays one OCS reconfiguration round (MEMS mirrors).
    const Duration ocs_latency = ocs_.reconfigure();
    report_.lost.recovery += ocs_latency;
    stall_and_resume(job, detect + price + ocs_latency, /*state_loss=*/true, now);
    return;
  }
  const auto survivors =
      static_cast<double>(job.chips.size()) - static_cast<double>(dead.size());
  const double floor_chips =
      params_.shrink_min_fraction * static_cast<double>(job.original_volume);
  if (survivors >= floor_chips && survivors >= 1.0) {
    shrink(job, dead);
    stall_and_resume(job, detect + price, /*state_loss=*/true, now);
    return;
  }
  requeue(job);
}

void ClusterScheduler::recover_electrical(Job& job,
                                          const std::vector<topo::TpuId>& dead,
                                          Duration detect) {
  // Rack-granularity baseline: any fault that touches the job — component
  // faults included, §4.2's blast-radius point — drains it and restarts on
  // a fresh contiguous slice elsewhere.
  (void)dead;  // victims already marked failed; the whole slice is drained
  const TimePoint now = engine_.now();
  report_.lost.detection += detect;
  release_placement(job);
  if (place_contiguous(job)) {
    --report_.placed_contiguous;  // a migration, not a fresh admission
    ++report_.migrations;
    report_.lost.recovery += params_.migration_latency;
    stall_and_resume(job, detect + params_.migration_latency,
                     /*state_loss=*/true, now);
    return;
  }
  ++report_.migration_failures;
  requeue(job);
}

void ClusterScheduler::on_fault(std::size_t script_index) {
  const TimePoint now = engine_.now();
  accumulate_metrics(now);
  FaultEvent ev;
  if (script_index != SIZE_MAX) {
    ev = scripted_fault(params_.script[script_index]);
  } else {
    ev = draw_fault();
    const double rate = static_cast<double>(cluster_.chip_count()) /
                        (params_.mtbf_hours * 3600.0);
    const TimePoint next = now + Duration::seconds(fault_clock_.exponential(rate));
    if (next < TimePoint::at_seconds(params_.horizon.to_seconds())) {
      engine_.schedule_at(next, [this] { on_fault(SIZE_MAX); });
    }
  }
  ++report_.fault_events;
  if (!ev.fatal) ++report_.component_events;

  // Affected running jobs, ascending id (owners looked up before the
  // chips are marked failed).
  std::vector<std::uint64_t> affected;
  for (const topo::TpuId chip : ev.victims) {
    const std::int64_t owner = chip_owner_[static_cast<std::size_t>(chip)];
    if (owner >= 0) affected.push_back(static_cast<std::uint64_t>(owner));
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

  apply_fault(ev);
  const Duration detect = detection_delay(now);
  for (const std::uint64_t id : affected) {
    auto it = jobs_.find(id);
    if (it == jobs_.end() || !it->second.running) continue;
    ++report_.detections;
    Job& job = it->second;
    std::vector<topo::TpuId> dead;
    if (ev.fatal) {
      for (const topo::TpuId c : job.chips) {
        if (std::binary_search(ev.victims.begin(), ev.victims.end(), c)) {
          dead.push_back(c);
        }
      }
    }
    if (params_.policy == SchedulerPolicy::kElectricalOnly) {
      recover_electrical(job, dead, detect);
    } else {
      recover_photonic(job, ev, dead, detect);
    }
  }
  try_admit();
}

void ClusterScheduler::on_gray() {
  const TimePoint now = engine_.now();
  accumulate_metrics(now);
  // Reschedule first so a long repair stall never silences the flap clock.
  const TimePoint next = now + Duration::seconds(gray_clock_.exponential(gray_rate()));
  if (next < TimePoint::at_seconds(params_.horizon.to_seconds())) {
    engine_.schedule_at(next, [this] { on_gray(); });
  }
  ++report_.flap_events;
  const auto chips = static_cast<std::uint64_t>(cluster_.chip_count());
  const std::uint64_t flappy =
      params_.flappy_chips == 0
          ? chips
          : std::min<std::uint64_t>(params_.flappy_chips, chips);
  // Victim i of the flappy population sits at an even stride, so the gray
  // chips spread across racks instead of clustering in rack 0.
  const std::uint64_t stride = std::max<std::uint64_t>(1, chips / flappy);
  const auto chip = static_cast<topo::TpuId>(
      (gray_victims_.uniform_index(flappy) * stride) % chips);
  if (params_.gray_hysteresis) {
    // Score the flap.  While quarantined the damper suppresses the repair
    // (the job rides the dips out) and chip_usable() keeps harvest/respare
    // off the chip until its probation hold completes cleanly.
    const auto key = static_cast<std::uint64_t>(chip);
    const Duration t = Duration::seconds(now.to_seconds());
    const fault::LinkState before = damper_.state(key, t);
    damper_.record_flap(key, t);
    if (before == fault::LinkState::kQuarantined) return;
  }
  // Naive response — and the dampened arm's pre-quarantine thrash: the flap
  // is indistinguishable from a component fault, so the owning job pays the
  // same detection + repair stall on_fault would charge.
  const std::int64_t owner = chip_owner_[static_cast<std::size_t>(chip)];
  if (owner < 0) return;
  auto it = jobs_.find(static_cast<std::uint64_t>(owner));
  if (it == jobs_.end() || !it->second.running) return;
  ++report_.detections;
  ++report_.flap_repairs;
  const Duration detect = detection_delay(now);
  if (params_.policy == SchedulerPolicy::kElectricalOnly) {
    recover_electrical(it->second, {}, detect);
  } else {
    FaultEvent ev;
    ev.kind = fault::FaultKind::kMziDrift;
    ev.victims = {chip};
    recover_photonic(it->second, ev, {}, detect);
  }
  try_admit();
}

// ---------------------------------------------------------------------------
// Arrivals / completions.
// ---------------------------------------------------------------------------

void ClusterScheduler::admit_new_job(topo::Shape shape, Duration service) {
  Job job;
  job.id = next_job_id_++;
  job.shape = shape;
  job.service = service;
  job.arrival = engine_.now();
  job.original_volume = shape.size();
  ++report_.offered;
  report_.offered_work_chip_seconds +=
      static_cast<double>(job.original_volume) * service.to_seconds();
  const std::uint64_t id = job.id;
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  try_admit();
}

void ClusterScheduler::on_arrival() {
  const TimePoint now = engine_.now();
  accumulate_metrics(now);
  const TimePoint next =
      now + Duration::seconds(arrivals_.exponential(params_.arrival_rate_per_s));
  if (next < TimePoint::at_seconds(params_.horizon.to_seconds())) {
    engine_.schedule_at(next, [this] { on_arrival(); });
  }

  // Job attributes come from their own stream so arrival-clock draws never
  // perturb them.
  double total_weight = 0.0;
  for (const ShapeMix& m : params_.mix) total_weight += m.weight;
  double pick = attrs_.uniform() * total_weight;
  topo::Shape shape = params_.mix.back().shape;
  for (const ShapeMix& m : params_.mix) {
    if (pick < m.weight) {
      shape = m.shape;
      break;
    }
    pick -= m.weight;
  }
  const Duration service = std::max(
      params_.service_min,
      Duration::seconds(attrs_.exponential(1.0 / params_.service_mean.to_seconds())));
  admit_new_job(shape, service);
}

void ClusterScheduler::on_scripted_arrival(std::size_t index) {
  accumulate_metrics(engine_.now());
  const ScriptedJob& s = params_.job_script[index];
  admit_new_job(s.shape, s.service);
}

void ClusterScheduler::on_completion(std::uint64_t id, std::uint32_t generation) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  if (!job.running || job.generation != generation) return;  // stale event
  const TimePoint now = engine_.now();
  accumulate_metrics(now);
  ++report_.completed;
  report_.completed_work_chip_seconds +=
      static_cast<double>(job.original_volume) * job.service.to_seconds();
  fold_digest(id);
  fold_digest(std::bit_cast<std::uint64_t>(now.to_seconds()));
  release_placement(job);
  --running_;
  jobs_.erase(it);
  try_admit();
}

// ---------------------------------------------------------------------------
// Run / finalize.
// ---------------------------------------------------------------------------

ClusterReport ClusterScheduler::run() {
  report_ = ClusterReport{};
  report_.policy = params_.policy;

  if (!params_.job_script.empty()) {
    for (std::size_t i = 0; i < params_.job_script.size(); ++i) {
      engine_.schedule_at(
          TimePoint::at_seconds(params_.job_script[i].at.to_seconds()),
          [this, i] { on_scripted_arrival(i); });
    }
  } else {
    const TimePoint first_arrival = TimePoint::at_seconds(0.0) +
        Duration::seconds(arrivals_.exponential(params_.arrival_rate_per_s));
    if (first_arrival < TimePoint::at_seconds(params_.horizon.to_seconds())) {
      engine_.schedule_at(first_arrival, [this] { on_arrival(); });
    }
  }
  if (!params_.script.empty()) {
    for (std::size_t i = 0; i < params_.script.size(); ++i) {
      engine_.schedule_at(TimePoint::at_seconds(params_.script[i].at.to_seconds()),
                          [this, i] { on_fault(i); });
    }
  } else if (params_.mtbf_hours > 0.0) {
    const double rate = static_cast<double>(cluster_.chip_count()) /
                        (params_.mtbf_hours * 3600.0);
    const TimePoint first_fault = TimePoint::at_seconds(0.0) +
        Duration::seconds(fault_clock_.exponential(rate));
    if (first_fault < TimePoint::at_seconds(params_.horizon.to_seconds())) {
      engine_.schedule_at(first_fault, [this] { on_fault(SIZE_MAX); });
    }
  }
  if (params_.flap_rate_per_hour > 0.0) {
    const TimePoint first_gray = TimePoint::at_seconds(0.0) +
        Duration::seconds(gray_clock_.exponential(gray_rate()));
    if (first_gray < TimePoint::at_seconds(params_.horizon.to_seconds())) {
      engine_.schedule_at(first_gray, [this] { on_gray(); });
    }
  }

  const TimePoint end =
      TimePoint::at_seconds((params_.horizon + params_.drain).to_seconds());
  engine_.run_until(end);
  accumulate_metrics(end);

  // Jobs still running or queued never completed inside the window.
  report_.unserved = jobs_.size();
  report_.chip_quarantines = damper_.stats().quarantines;
  report_.chip_probations = damper_.stats().probations;
  report_.suppressed_repairs = damper_.stats().suppressed_repairs;
  report_.makespan = end - TimePoint::at_seconds(0.0);
  const double span = report_.makespan.to_seconds();
  report_.frag_stranding_avg = span > 0.0 ? frag_integral_ / span : 0.0;
  report_.utilization_avg = span > 0.0 ? util_integral_ / span : 0.0;
  if (!queue_delays_.empty()) {
    double sum = 0.0;
    for (const double d : queue_delays_) sum += d;
    report_.queue_delay_mean_s = sum / static_cast<double>(queue_delays_.size());
    report_.queue_delay_p50_s = percentile(queue_delays_, 50.0);
    report_.queue_delay_p99_s = percentile(queue_delays_, 99.0);
  }

  // Outcome digest: chip states, ledger, OCS occupancy, work totals.
  for (topo::TpuId c = 0; c < cluster_.chip_count(); ++c) {
    fold_digest(static_cast<std::uint64_t>(cluster_.state(c)) + 1);
  }
  fold_digest(fab_.ledger_digest());
  fold_digest(ocs_.ports_used());
  fold_digest(std::bit_cast<std::uint64_t>(report_.offered_work_chip_seconds));
  fold_digest(std::bit_cast<std::uint64_t>(report_.completed_work_chip_seconds));
  fold_digest(std::bit_cast<std::uint64_t>(report_.frag_stranding_avg));
  fold_digest(report_.completed);
  fold_digest(report_.offered);
  return report_;
}

ClusterReport run_cluster(const ClusterParams& params) {
  ClusterScheduler scheduler{params};
  return scheduler.run();
}

// ---------------------------------------------------------------------------
// Sweep.
// ---------------------------------------------------------------------------

ClusterSweepReport run_cluster_sweep(const ClusterSweepConfig& config) {
  const std::size_t trials = config.trials;
  const std::size_t per_point = trials * 2;
  const std::size_t total = config.mtbf_points.size() * per_point;

  std::vector<ClusterReport> reports(total);
  const unsigned threads =
      config.threads != 0 ? config.threads : util::env_threads();
  std::optional<util::ThreadPool> local;
  util::ThreadPool& pool =
      threads == 0 ? util::ThreadPool::shared() : local.emplace(threads);
  pool.run(total, [&](std::size_t idx, unsigned) {
    const std::size_t p = idx / per_point;
    const std::size_t rem = idx % per_point;
    const bool photonic = rem < trials;
    const std::size_t trial = photonic ? rem : rem - trials;
    ClusterParams cp = config.base;
    cp.mtbf_hours = config.mtbf_points[p];
    cp.policy = photonic ? SchedulerPolicy::kPhotonicMorph
                         : SchedulerPolicy::kElectricalOnly;
    // Both policies of a (point, trial) pair share a seed: the identical
    // arrival and fault streams — a paired comparison.
    cp.seed = util::task_seed(config.base.seed, p * trials + trial);
    reports[idx] = run_cluster(cp);
  });

  ClusterSweepReport out;
  const auto chip_count =
      topo::TpuCluster{config.base.cluster}.chip_count();
  for (std::size_t p = 0; p < config.mtbf_points.size(); ++p) {
    for (int pol = 0; pol < 2; ++pol) {
      ClusterPointReport pt;
      pt.mtbf_hours = config.mtbf_points[p];
      pt.policy = pol == 0 ? SchedulerPolicy::kPhotonicMorph
                           : SchedulerPolicy::kElectricalOnly;
      pt.trials = config.trials;
      for (std::size_t t = 0; t < trials; ++t) {
        const ClusterReport& r =
            reports[p * per_point + static_cast<std::size_t>(pol) * trials + t];
        pt.accepted_load_mean += r.accepted_load();
        pt.goodput_mean += r.goodput(chip_count);
        pt.queue_delay_p50_s += r.queue_delay_p50_s;
        pt.queue_delay_p99_s += r.queue_delay_p99_s;
        pt.frag_stranding_avg += r.frag_stranding_avg;
        pt.utilization_avg += r.utilization_avg;
        pt.completed += r.completed;
        pt.offered += r.offered;
        pt.requeues += r.requeues;
        pt.aborted += r.aborted;
        pt.morphs += r.morphs;
        pt.elastic_shrinks += r.elastic_shrinks;
        pt.migrations += r.migrations;
        pt.fault_events += r.fault_events;
        out.digest = fabric::hash_mix(out.digest, r.digest);
      }
      const double n = static_cast<double>(trials);
      pt.accepted_load_mean /= n;
      pt.goodput_mean /= n;
      pt.queue_delay_p50_s /= n;
      pt.queue_delay_p99_s /= n;
      pt.frag_stranding_avg /= n;
      pt.utilization_avg /= n;
      out.points.push_back(pt);
    }
  }
  return out;
}

}  // namespace lp::cluster
