#include "core/blast_radius.hpp"

#include <algorithm>
#include <unordered_set>

namespace lp::core {

using topo::ChipState;
using topo::TpuCluster;
using topo::TpuId;

std::vector<TpuId> broken_ring_neighbors(const TpuCluster& cluster,
                                         const topo::Slice& slice, TpuId failed) {
  return broken_ring_neighbors(
      coll::slice_traffic(cluster, slice, coll::RingSelection::kUsableOnly), failed);
}

std::vector<TpuId> broken_ring_neighbors(const coll::SliceTraffic& traffic,
                                         TpuId failed) {
  std::vector<TpuId> neighbors;
  for (const auto& ring : traffic.rings) {
    const auto it = std::find(ring.members.begin(), ring.members.end(), failed);
    if (it == ring.members.end()) continue;
    const std::size_t i = static_cast<std::size_t>(it - ring.members.begin());
    const std::size_t n = ring.members.size();
    neighbors.push_back(ring.members[(i + n - 1) % n]);
    neighbors.push_back(ring.members[(i + 1) % n]);
  }
  // Dedup, preserve order.
  std::vector<TpuId> unique;
  for (TpuId t : neighbors) {
    if (t != failed && std::find(unique.begin(), unique.end(), t) == unique.end())
      unique.push_back(t);
  }
  return unique;
}

ElectricalRepairAttempt attempt_electrical_repair(const TpuCluster& cluster,
                                                  const topo::SliceAllocator& alloc,
                                                  TpuId failed) {
  ElectricalRepairAttempt best;
  const auto owner = alloc.owner(failed);
  if (!owner) return best;
  const topo::Slice* slice = alloc.slice(*owner);
  if (slice == nullptr) return best;

  const auto neighbors = broken_ring_neighbors(cluster, *slice, failed);
  if (neighbors.empty()) return best;

  // Busy links: the steady-state rings of every slice in the rack.
  const auto analysis = coll::analyze_rack(cluster, alloc, slice->rack,
                                           coll::RingSelection::kUsableOnly);
  coll::LinkLoad busy{cluster.directed_link_count()};
  for (const auto& st : analysis.per_slice) busy.add_all(st.links);

  for (TpuId spare : cluster.free_chips_in_rack(slice->rack)) {
    ElectricalRepairAttempt attempt;
    attempt.spare = spare;
    bool all_ok = true;
    for (TpuId n : neighbors) {
      auto path = coll::find_uncongested_path(cluster, alloc, busy, n, spare);
      if (!path) {
        all_ok = false;
        break;
      }
      attempt.paths.push_back(std::move(*path));
    }
    if (all_ok) {
      attempt.feasible = true;
      return attempt;
    }
    if (attempt.paths.size() > best.paths.size()) best = std::move(attempt);
  }
  return best;
}

FailureImpact assess_failure(TpuCluster& cluster, topo::SliceAllocator& alloc,
                             TpuId failed, FailurePolicy policy,
                             const FailureImpactParams& params,
                             PhotonicRack* rack_fabric,
                             const coll::SliceTraffic* steady_traffic) {
  FailureImpact impact;
  impact.policy = policy;
  cluster.set_state(failed, ChipState::kFailed);

  const auto owner = alloc.owner(failed);
  const topo::Slice* slice = owner ? alloc.slice(*owner) : nullptr;
  impact.jobs_interrupted = slice != nullptr ? 1 : 0;

  switch (policy) {
    case FailurePolicy::kRackMigration: {
      // The whole rack is drained and the job restarts elsewhere: every
      // chip in the rack is inside the blast radius.
      impact.blast_radius_chips = cluster.chips_per_rack();
      impact.recovery_time = params.migration_time;
      impact.congestion_free = true;  // fresh rack, clean torus
      impact.feasible = true;
      break;
    }
    case FailurePolicy::kElectricalRepair: {
      const auto attempt = attempt_electrical_repair(cluster, alloc, failed);
      impact.feasible = attempt.feasible;
      impact.congestion_free = attempt.feasible;
      if (!attempt.feasible) {
        impact.cause = slice != nullptr &&
                               cluster.free_chips_in_rack(slice->rack).empty()
                           ? UnrecoveredCause::kSpareExhausted
                           : UnrecoveredCause::kPlanFailure;
      }
      // In-place repair touches the failed chip and the spare.
      impact.blast_radius_chips = attempt.feasible ? 2 : cluster.chips_per_rack();
      impact.recovery_time =
          attempt.feasible ? Duration::millis(1.0) : params.migration_time;
      break;
    }
    case FailurePolicy::kOpticalRepair: {
      impact.cause = UnrecoveredCause::kPlanFailure;
      if (rack_fabric == nullptr || slice == nullptr) break;
      const auto neighbors =
          steady_traffic != nullptr
              ? broken_ring_neighbors(*steady_traffic, failed)
              : broken_ring_neighbors(cluster, *slice, failed);
      const auto free_chips = cluster.free_chips_in_rack(slice->rack);
      if (free_chips.empty()) {
        impact.cause = UnrecoveredCause::kSpareExhausted;
        break;
      }
      if (neighbors.empty()) break;

      std::vector<fabric::GlobalTile> candidates;
      candidates.reserve(free_chips.size());
      for (TpuId c : free_chips) candidates.push_back(rack_fabric->tile_of(c));
      std::vector<fabric::GlobalTile> neighbor_tiles;
      neighbor_tiles.reserve(neighbors.size());
      for (TpuId n : neighbors) neighbor_tiles.push_back(rack_fabric->tile_of(n));

      const auto choice =
          routing::choose_spare(rack_fabric->fabric(), candidates, neighbor_tiles);
      if (!choice) {
        impact.cause = UnrecoveredCause::kSpareExhausted;
        break;
      }
      routing::RepairRequest req;
      req.spare = candidates[choice.value()];
      req.neighbors = neighbor_tiles;
      const auto plan = routing::repair_with_spare(rack_fabric->fabric(), req);
      impact.repair_circuits = plan.circuits;
      impact.feasible = plan.complete;
      impact.congestion_free = plan.complete;  // dedicated circuits
      if (plan.complete) impact.cause = UnrecoveredCause::kNone;
      // Blast radius: the failed chip's server (it is pulled for service)
      // — the paper's headline reduction.
      impact.blast_radius_chips =
          plan.complete ? static_cast<std::int32_t>(
                              cluster.server_chips(failed).size())
                        : cluster.chips_per_rack();
      impact.recovery_time =
          plan.complete ? plan.reconfig_latency : params.migration_time;
      break;
    }
  }
  return impact;
}

}  // namespace lp::core
