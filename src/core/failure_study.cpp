#include "core/failure_study.hpp"

#include "core/photonic_rack.hpp"
#include "topo/slice.hpp"

namespace lp::core {

AvailabilityReport run_failure_study(FailurePolicy policy,
                                     const FailureStudyParams& params) {
  AvailabilityReport report;
  report.policy = policy;
  Rng rng{params.seed};

  // Fleet failure rate: fleet_chips / mtbf per hour.
  const double rate_per_hour =
      static_cast<double>(params.fleet_chips) / params.mtbf_hours;

  double t = rng.exponential(rate_per_hour);
  while (t < params.horizon_hours) {
    ++report.failures;

    // Fresh representative rack per failure (independent-failures model).
    topo::TpuCluster cluster;
    topo::SliceAllocator alloc{cluster};
    (void)alloc.allocate_at(0, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 4, 2}});
    (void)alloc.allocate_at(0, topo::Coord{{0, 0, 2}}, topo::Shape{{4, 4, 1}});
    (void)alloc.allocate_at(0, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}});

    // Pick a random allocated victim.
    const auto allocated = cluster.chips_in_state(topo::ChipState::kAllocated);
    const auto victim =
        allocated[rng.uniform_index(allocated.size())];

    PhotonicRack rack{cluster, 0};
    const auto impact = assess_failure(
        cluster, alloc, victim, policy, params.impact,
        policy == FailurePolicy::kOpticalRepair ? &rack : nullptr);

    if (!impact.feasible) {
      ++report.unrecovered;
      // Unrecoverable in place: falls back to migration cost.
      report.chip_hours_lost += static_cast<double>(cluster.chips_per_rack()) *
                                params.impact.migration_time.to_seconds() / 3600.0;
    } else {
      report.chip_hours_lost += static_cast<double>(impact.blast_radius_chips) *
                                impact.recovery_time.to_seconds() / 3600.0;
    }
    t += rng.exponential(rate_per_hour);
  }

  const double fleet_hours =
      static_cast<double>(params.fleet_chips) * params.horizon_hours;
  report.availability = 1.0 - report.chip_hours_lost / fleet_hours;
  return report;
}

}  // namespace lp::core
