#include "core/failure_study.hpp"

#include <algorithm>

#include <memory>
#include <optional>

#include "core/photonic_rack.hpp"
#include "topo/slice.hpp"
#include "util/parallel.hpp"

namespace lp::core {
namespace {

/// Per-worker reusable world: template cluster + packing (+ photonic rack
/// for the optical policy), built once and restored after every trial.
struct TrialWorkspace {
  topo::TpuCluster cluster{};
  topo::SliceAllocator alloc{cluster};
  std::optional<PhotonicRack> rack;
  /// Steady-state ring traffic per slice of the template packing; the
  /// template never changes, so each slice's rings are derived once.
  std::vector<coll::SliceTraffic> traffic;

  explicit TrialWorkspace(FailurePolicy policy) {
    pack_template_rack(alloc);
    if (policy == FailurePolicy::kOpticalRepair) rack.emplace(cluster, 0);
  }

  const coll::SliceTraffic* traffic_of(topo::TpuId victim) {
    const auto owner = alloc.owner(victim);
    if (!owner) return nullptr;
    for (const auto& t : traffic) {
      if (t.slice == *owner) return &t;
    }
    const topo::Slice* slice = alloc.slice(*owner);
    if (slice == nullptr) return nullptr;
    traffic.push_back(
        coll::slice_traffic(cluster, *slice, coll::RingSelection::kUsableOnly));
    return &traffic.back();
  }

  FailureImpact assess(topo::TpuId victim, FailurePolicy policy,
                       const FailureImpactParams& params) {
    const topo::ChipState before = cluster.state(victim);
    FailureImpact impact = assess_failure(cluster, alloc, victim, policy, params,
                                          rack.has_value() ? &*rack : nullptr,
                                          traffic_of(victim));
    // Restore the template: un-fail the victim, tear down repair circuits.
    cluster.set_state(victim, before);
    if (rack.has_value()) {
      for (const fabric::CircuitId id : impact.repair_circuits)
        rack->fabric().disconnect(id);
    }
    return impact;
  }
};

}  // namespace

void pack_template_rack(topo::SliceAllocator& alloc, topo::RackId rack) {
  (void)alloc.allocate_at(rack, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 4, 2}});
  (void)alloc.allocate_at(rack, topo::Coord{{0, 0, 2}}, topo::Shape{{4, 4, 1}});
  (void)alloc.allocate_at(rack, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}});
}

std::vector<FailureImpact> assess_failures_batch(FailurePolicy policy,
                                                 const std::vector<topo::TpuId>& victims,
                                                 const FailureImpactParams& params,
                                                 unsigned threads) {
  // Assessment is a pure function of the victim given the reset template, so
  // each distinct victim is assessed once and repeated draws share the result
  // (a Monte-Carlo sweep draws from one rack, so the distinct count is
  // bounded by the rack size however long the horizon is).
  std::vector<topo::TpuId> unique = victims;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  std::vector<FailureImpact> unique_impacts(unique.size());
  std::optional<util::ThreadPool> local;
  util::ThreadPool& pool =
      threads == 0 ? util::ThreadPool::shared() : local.emplace(threads);
  std::vector<std::unique_ptr<TrialWorkspace>> workspaces(pool.size());
  pool.run(unique.size(), [&](std::size_t i, unsigned worker) {
    auto& ws = workspaces[worker];
    if (ws == nullptr) ws = std::make_unique<TrialWorkspace>(policy);
    unique_impacts[i] = ws->assess(unique[i], policy, params);
  });

  std::vector<FailureImpact> impacts(victims.size());
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const auto it = std::lower_bound(unique.begin(), unique.end(), victims[i]);
    impacts[i] = unique_impacts[static_cast<std::size_t>(it - unique.begin())];
  }
  return impacts;
}

AvailabilityReport run_failure_study(FailurePolicy policy,
                                     const FailureStudyParams& params) {
  AvailabilityReport report;
  report.policy = policy;

  // Fleet failure rate: fleet_chips / mtbf per hour.  The arrival process
  // is one serial stream: it alone decides how many failures the horizon
  // sees, independent of how trials are later scheduled.
  const double rate_per_hour =
      static_cast<double>(params.fleet_chips) / params.mtbf_hours;
  Rng arrivals{params.seed};
  std::size_t trials = 0;
  for (double t = arrivals.exponential(rate_per_hour); t < params.horizon_hours;
       t += arrivals.exponential(rate_per_hour)) {
    ++trials;
  }
  report.failures = trials;

  // Victim of trial i depends only on (seed, i): bit-identical at any
  // thread count.
  topo::TpuCluster template_cluster;
  topo::SliceAllocator template_alloc{template_cluster};
  pack_template_rack(template_alloc);
  const auto allocated =
      template_cluster.chips_in_state(topo::ChipState::kAllocated);
  std::vector<topo::TpuId> victims(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    Rng rng{util::task_seed(params.seed, i)};
    victims[i] = allocated[rng.uniform_index(allocated.size())];
  }

  const auto impacts =
      assess_failures_batch(policy, victims, params.impact, params.threads);

  // Fold in trial order so the floating-point sum is schedule-independent.
  for (const FailureImpact& impact : impacts) {
    if (!impact.feasible) {
      ++report.unrecovered;
      // Unrecoverable in place: falls back to migration cost.
      report.chip_hours_lost +=
          static_cast<double>(template_cluster.chips_per_rack()) *
          params.impact.migration_time.to_seconds() / 3600.0;
    } else {
      report.chip_hours_lost += static_cast<double>(impact.blast_radius_chips) *
                                impact.recovery_time.to_seconds() / 3600.0;
    }
  }

  const double fleet_hours =
      static_cast<double>(params.fleet_chips) * params.horizon_hours;
  report.availability = 1.0 - report.chip_hours_lost / fleet_hours;
  return report;
}

}  // namespace lp::core
