#include "core/failure_study.hpp"

#include <algorithm>

#include <memory>
#include <optional>

#include "core/photonic_rack.hpp"
#include "fault/gray.hpp"
#include "topo/slice.hpp"
#include "util/parallel.hpp"

namespace lp::core {
namespace {

/// Per-worker reusable world: template cluster + packing (+ photonic rack
/// for the optical policy), built once and restored after every trial.
struct TrialWorkspace {
  topo::TpuCluster cluster{};
  topo::SliceAllocator alloc{cluster};
  std::optional<PhotonicRack> rack;
  /// Steady-state ring traffic per slice of the template packing; the
  /// template never changes, so each slice's rings are derived once.
  std::vector<coll::SliceTraffic> traffic;

  explicit TrialWorkspace(FailurePolicy policy) {
    pack_template_rack(alloc);
    if (policy == FailurePolicy::kOpticalRepair) rack.emplace(cluster, 0);
  }

  const coll::SliceTraffic* traffic_of(topo::TpuId victim) {
    const auto owner = alloc.owner(victim);
    if (!owner) return nullptr;
    for (const auto& t : traffic) {
      if (t.slice == *owner) return &t;
    }
    const topo::Slice* slice = alloc.slice(*owner);
    if (slice == nullptr) return nullptr;
    traffic.push_back(
        coll::slice_traffic(cluster, *slice, coll::RingSelection::kUsableOnly));
    return &traffic.back();
  }

  FailureImpact assess(topo::TpuId victim, FailurePolicy policy,
                       const FailureImpactParams& params) {
    const topo::ChipState before = cluster.state(victim);
    FailureImpact impact = assess_failure(cluster, alloc, victim, policy, params,
                                          rack.has_value() ? &*rack : nullptr,
                                          traffic_of(victim));
    // Restore the template: un-fail the victim, tear down repair circuits.
    cluster.set_state(victim, before);
    if (rack.has_value()) {
      for (const fabric::CircuitId id : impact.repair_circuits)
        rack->fabric().disconnect(id);
    }
    return impact;
  }
};

}  // namespace

void pack_template_rack(topo::SliceAllocator& alloc, topo::RackId rack) {
  (void)alloc.allocate_at(rack, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 4, 2}});
  (void)alloc.allocate_at(rack, topo::Coord{{0, 0, 2}}, topo::Shape{{4, 4, 1}});
  (void)alloc.allocate_at(rack, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}});
}

std::vector<FailureImpact> assess_failures_batch(FailurePolicy policy,
                                                 const std::vector<topo::TpuId>& victims,
                                                 const FailureImpactParams& params,
                                                 unsigned threads) {
  // Assessment is a pure function of the victim given the reset template, so
  // each distinct victim is assessed once and repeated draws share the result
  // (a Monte-Carlo sweep draws from one rack, so the distinct count is
  // bounded by the rack size however long the horizon is).
  std::vector<topo::TpuId> unique = victims;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  std::vector<FailureImpact> unique_impacts(unique.size());
  std::optional<util::ThreadPool> local;
  util::ThreadPool& pool =
      threads == 0 ? util::ThreadPool::shared() : local.emplace(threads);
  std::vector<std::unique_ptr<TrialWorkspace>> workspaces(pool.size());
  pool.run(unique.size(), [&](std::size_t i, unsigned worker) {
    auto& ws = workspaces[worker];
    if (ws == nullptr) ws = std::make_unique<TrialWorkspace>(policy);
    unique_impacts[i] = ws->assess(unique[i], policy, params);
  });

  std::vector<FailureImpact> impacts(victims.size());
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const auto it = std::lower_bound(unique.begin(), unique.end(), victims[i]);
    impacts[i] = unique_impacts[static_cast<std::size_t>(it - unique.begin())];
  }
  return impacts;
}

AvailabilityReport run_failure_study(FailurePolicy policy,
                                     const FailureStudyParams& params) {
  AvailabilityReport report;
  report.policy = policy;

  // Fleet failure rate: fleet_chips / mtbf per hour.  The arrival process
  // is one serial stream: it alone decides how many failures the horizon
  // sees, independent of how trials are later scheduled.
  const double rate_per_hour =
      static_cast<double>(params.fleet_chips) / params.mtbf_hours;
  Rng arrivals{params.seed};
  std::size_t trials = 0;
  for (double t = arrivals.exponential(rate_per_hour); t < params.horizon_hours;
       t += arrivals.exponential(rate_per_hour)) {
    ++trials;
  }
  report.failures = trials;

  // Victim of trial i depends only on (seed, i): bit-identical at any
  // thread count.
  topo::TpuCluster template_cluster;
  topo::SliceAllocator template_alloc{template_cluster};
  pack_template_rack(template_alloc);
  const auto allocated =
      template_cluster.chips_in_state(topo::ChipState::kAllocated);
  std::vector<topo::TpuId> victims(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    Rng rng{util::task_seed(params.seed, i)};
    victims[i] = allocated[rng.uniform_index(allocated.size())];
  }

  const auto impacts =
      assess_failures_batch(policy, victims, params.impact, params.threads);

  // Fold in trial order so the floating-point sum is schedule-independent.
  for (const FailureImpact& impact : impacts) {
    if (!impact.feasible) {
      ++report.unrecovered;
      if (impact.cause == UnrecoveredCause::kSpareExhausted) {
        ++report.unrecovered_spare_exhausted;
      } else {
        ++report.unrecovered_plan_failure;
      }
      // Unrecoverable in place: falls back to migration cost.
      report.chip_hours_lost +=
          static_cast<double>(template_cluster.chips_per_rack()) *
          params.impact.migration_time.to_seconds() / 3600.0;
    } else {
      report.chip_hours_lost += static_cast<double>(impact.blast_radius_chips) *
                                impact.recovery_time.to_seconds() / 3600.0;
    }
  }

  const double fleet_hours =
      static_cast<double>(params.fleet_chips) * params.horizon_hours;
  report.availability = 1.0 - report.chip_hours_lost / fleet_hours;
  return report;
}

namespace {

/// The component study's representative fabric: two wafers bridged by one
/// 64-fiber bundle per edge-tile pair, carrying a neighbor ring on tiles
/// 0..27 of each wafer (2 lambdas per circuit) plus cross-wafer circuits.
/// Tiles 28..31 of each wafer stay idle — the spare pool rung 3 draws from.
constexpr std::uint32_t kRingTiles = 28;
constexpr std::uint32_t kBaselineLambdas = 2;

fabric::FabricConfig component_fabric_config() {
  fabric::FabricConfig config;
  config.wafer_count = 2;
  return config;
}

/// Per-worker reusable world for the component-fault study.
struct ComponentWorkspace {
  ComponentStudyParams params;
  fabric::Fabric fab;
  fault::FaultInjector injector;
  fault::HealthMonitor monitor;

  explicit ComponentWorkspace(const ComponentStudyParams& p)
      : params{p},
        fab{component_fabric_config()},
        injector{fab, p.model, p.seed},
        monitor{p.health} {
    // Bundles between wafer 0's east column and wafer 1's west column.
    const auto& w = fab.wafer(0);
    for (std::int32_t row = 0; row < w.rows(); ++row) {
      const auto east = w.tile_at({row, w.cols() - 1});
      const auto west = w.tile_at({row, 0});
      fab.add_fiber_link({0, east}, {1, west}, 64);
    }
    establish_baseline();
  }

  void establish_baseline() {
    for (fabric::WaferId wafer = 0; wafer < fab.wafer_count(); ++wafer) {
      for (std::uint32_t t = 0; t < kRingTiles; ++t) {
        (void)fab.connect({wafer, t}, {wafer, (t + 1) % kRingTiles},
                          kBaselineLambdas);
      }
    }
    // Cross-wafer circuits from three of the bundle tiles into wafer 1's
    // ring (the fourth bundle stays spare for rerouting headroom).
    const auto& w = fab.wafer(0);
    for (std::int32_t row = 0; row < w.rows() - 1; ++row) {
      (void)fab.connect({0, w.tile_at({row, w.cols() - 1})},
                        {1, w.tile_at({row, 0})}, kBaselineLambdas);
    }
  }

  /// Tiles with no endpoint wavelength in use: candidate spares.  Dead
  /// chips are excluded automatically — the applied fault set parks their
  /// endpoint wavelengths.
  [[nodiscard]] std::vector<fabric::GlobalTile> free_tiles() const {
    std::vector<fabric::GlobalTile> out;
    for (fabric::WaferId wafer = 0; wafer < fab.wafer_count(); ++wafer) {
      const auto& w = fab.wafer(wafer);
      for (fabric::TileId t = 0; t < w.tile_count(); ++t) {
        if (w.tile(t).tx_used() == 0 && w.tile(t).rx_used() == 0) {
          out.push_back({wafer, t});
        }
      }
    }
    return out;
  }

  struct TrialResult {
    std::uint64_t faults{0};
    bool burst{false};
    std::uint64_t degraded{0};
    std::uint64_t hard_down{0};
    std::uint64_t unrecovered{0};
    std::uint64_t unrecovered_transient{0};
    std::uint64_t transient_failures{0};
    std::array<std::uint64_t, routing::kRepairRungCount> recovered_by{};
    std::array<std::uint64_t, routing::kRepairRungCount> attempts{};
    double chip_hours{0.0};
    double recovery_seconds{0.0};
  };

  TrialResult run_trial(std::uint64_t trial) {
    TrialResult r;
    // One stream per trial: the injector's draws come first, then the
    // per-victim electrical-feasibility draws, so the whole trial is a pure
    // function of (seed, trial).
    Rng rng{util::task_seed(params.seed, trial)};
    const std::vector<fault::Fault> faults = injector.sample(rng);
    fault::FaultSet fs;
    fs.add_all(faults);
    r.faults = faults.size();
    r.burst = faults.size() > 1;

    fs.apply_to(fab, params.model.quarantine_threshold);
    const auto diagnoses = monitor.scan(fab, fs);
    for (const fault::CircuitDiagnosis& d : diagnoses) {
      ++r.degraded;
      if (d.health == fault::CircuitHealth::kDown) ++r.hard_down;

      routing::EscalationOptions opts;
      opts.retries_per_rung = params.retries_per_rung;
      opts.spare_candidates = free_tiles();
      opts.electrical_feasible = rng.bernoulli(params.electrical_feasible_p);
      opts.validate = [this, &fs](const fabric::Fabric& f, fabric::CircuitId id) {
        return monitor.diagnose(f, fs, id).health == fault::CircuitHealth::kHealthy;
      };
      if (params.settle_failure_probability > 0.0) {
        // Per-(trial, circuit) oracle stream: deterministic regardless of
        // how trials land on workers.
        const std::uint64_t oracle_seed = util::task_seed(
            util::task_seed(params.seed, trial), 0x5e771e ^ d.id);
        const double p = params.settle_failure_probability;
        opts.transient_failure = [oracle_seed, p](routing::RepairRung,
                                                  std::uint32_t attempt) {
          return fault::settle_transient_failure(oracle_seed, attempt, p);
        };
        opts.backoff = params.backoff;
        opts.backoff.seed = oracle_seed;
      }
      const routing::EscalationOutcome out =
          routing::escalate_repair(fab, fault::to_degraded(d), opts);
      for (std::size_t k = 0; k < routing::kRepairRungCount; ++k) {
        r.attempts[k] += out.attempts[k];
      }
      r.transient_failures += out.transient_failures;
      if (out.recovered) {
        const std::size_t k = routing::rung_index(out.rung);
        ++r.recovered_by[k];
        r.chip_hours += static_cast<double>(params.rung_blast_chips[k]) *
                        out.latency.to_seconds() / 3600.0;
        r.recovery_seconds += out.latency.to_seconds();
      } else {
        ++r.unrecovered;
        if (out.transient_failed) ++r.unrecovered_transient;
      }
    }

    // Restore the template for the next trial: lift the fault overlay, tear
    // every circuit down, re-establish the baseline.
    fs.revert(fab);
    for (const fabric::CircuitId id : fab.circuit_ids()) fab.disconnect(id);
    establish_baseline();
    return r;
  }
};

}  // namespace

ComponentAvailabilityReport run_component_fault_study(
    const ComponentStudyParams& params) {
  ComponentAvailabilityReport report;

  // Fault arrivals, like the chip study: one serial stream decides how many
  // events the horizon sees.
  const double rate_per_hour =
      static_cast<double>(params.fleet_chips) / params.component_mtbf_hours;
  Rng arrivals{params.seed};
  std::size_t trials = 0;
  for (double t = arrivals.exponential(rate_per_hour); t < params.horizon_hours;
       t += arrivals.exponential(rate_per_hour)) {
    ++trials;
  }
  report.fault_events = trials;

  std::vector<ComponentWorkspace::TrialResult> results(trials);
  std::optional<util::ThreadPool> local;
  util::ThreadPool& pool = params.threads == 0 ? util::ThreadPool::shared()
                                               : local.emplace(params.threads);
  std::vector<std::unique_ptr<ComponentWorkspace>> workspaces(pool.size());
  pool.run(trials, [&](std::size_t i, unsigned worker) {
    auto& ws = workspaces[worker];
    if (ws == nullptr) ws = std::make_unique<ComponentWorkspace>(params);
    results[i] = ws->run_trial(i);
  });

  // Fold in trial order: schedule-independent sums.
  for (const auto& r : results) {
    report.faults_injected += r.faults;
    if (r.burst) ++report.bursts;
    report.degraded_circuits += r.degraded;
    report.hard_down_circuits += r.hard_down;
    report.unrecovered += r.unrecovered;
    report.unrecovered_transient += r.unrecovered_transient;
    report.transient_repair_failures += r.transient_failures;
    for (std::size_t k = 0; k < routing::kRepairRungCount; ++k) {
      report.recovered_by[k] += r.recovered_by[k];
      report.attempts[k] += r.attempts[k];
    }
    report.chip_hours_lost += r.chip_hours;
    report.recovery_seconds_total += r.recovery_seconds;
  }

  const double fleet_hours =
      static_cast<double>(params.fleet_chips) * params.horizon_hours;
  report.availability = 1.0 - report.chip_hours_lost / fleet_hours;
  return report;
}

}  // namespace lp::core
