// Circuit-switched host networking stack.
//
// "Server-scale optics will necessitate the development of new host
// networking software stacks optimized for circuit-switching as opposed to
// today's packetized data transmission" (§1).  This module is that stack's
// core decision: when a message needs a circuit that is not up, pay the
// reconfiguration r; when SerDes ports are exhausted, evict someone.
//
// HostStack keeps an LRU cache of live circuits per source chip, bounded by
// the tile's SerDes port count (the paper: "the number of connections that
// can be made by one LIGHTPATH tile is limited by the number of SerDes
// ports").  send() returns the message's latency:
//
//   hit:   transfer at the circuit's rate
//   miss:  r (+ eviction teardown) + transfer
//
// The ablation bench compares this against per-message reconfiguration and
// against a static ring (direct-connect emulation with multi-hop
// forwarding), across working-set sizes and message sizes.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "lightpath/fabric.hpp"
#include "util/result.hpp"
#include "util/units.hpp"

namespace lp::core {

struct HostStackParams {
  /// Max concurrent circuits per source chip (SerDes port bound).
  std::uint32_t max_peers{8};
  /// Wavelengths per cached circuit: max_peers x this must fit the tile's
  /// 16 Tx lambdas.
  std::uint32_t wavelengths_per_circuit{2};
};

struct HostStackStats {
  std::uint64_t messages{0};
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  std::uint64_t evictions{0};
  Duration reconfig_time{Duration::zero()};
  Duration transfer_time{Duration::zero()};

  [[nodiscard]] double hit_rate() const {
    return messages == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(messages);
  }
  [[nodiscard]] Duration total_time() const { return reconfig_time + transfer_time; }
};

class HostStack {
 public:
  HostStack(fabric::Fabric& fab, HostStackParams params = {});

  /// Sends `bytes` from `src` to `dst`, establishing (and possibly
  /// evicting) circuits as needed.  Returns the message latency, or an
  /// error if no circuit can be established even after eviction.
  Result<Duration> send(fabric::GlobalTile src, fabric::GlobalTile dst, DataSize bytes);

  /// Whether a live circuit src->dst exists (no side effects).
  [[nodiscard]] bool has_circuit(fabric::GlobalTile src, fabric::GlobalTile dst) const;

  /// Tears down every cached circuit.
  void flush();

  [[nodiscard]] const HostStackStats& stats() const { return stats_; }
  void reset_stats() { stats_ = HostStackStats{}; }

 private:
  struct Key {
    fabric::GlobalTile src, dst;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return (static_cast<std::size_t>(k.src.wafer) << 48) ^
             (static_cast<std::size_t>(k.src.tile) << 32) ^
             (static_cast<std::size_t>(k.dst.wafer) << 16) ^ k.dst.tile;
    }
  };
  struct SrcState {
    /// LRU order of destination keys, most recent at front.
    std::list<Key> lru;
  };
  struct SrcHash {
    std::size_t operator()(const fabric::GlobalTile& t) const {
      return (static_cast<std::size_t>(t.wafer) << 32) ^ t.tile;
    }
  };

  Result<fabric::CircuitId> establish(const Key& key);

  fabric::Fabric& fabric_;
  HostStackParams params_;
  std::unordered_map<Key, fabric::CircuitId, KeyHash> circuits_;
  std::unordered_map<fabric::GlobalTile, SrcState, SrcHash> sources_;
  HostStackStats stats_;
};

}  // namespace lp::core
