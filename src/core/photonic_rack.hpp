// A TPU rack re-plumbed with LIGHTPATH: the paper's target deployment.
//
// "Using LIGHTPATH (§3), the TPUs within a server are connected via
// waveguides and TPUs across the server are connected with fibers" (§4).
// A 64-chip rack maps onto two 32-tile wafers; chips 0..31 stack on wafer
// 0 and 32..63 on wafer 1, in rack-torus index order.  Fiber bundles
// attach the facing edge tiles of the two wafers so cross-wafer circuits
// (and cross-rack extensions) can be switched end-to-end in the optical
// domain.
#pragma once

#include <cstdint>

#include "lightpath/fabric.hpp"
#include "topo/cluster.hpp"

namespace lp::core {

struct PhotonicRackConfig {
  fabric::WaferParams wafer{};
  phys::ModulatorParams modulator{};
  fabric::ReconfigParams reconfig{};
  phys::LinkBudgetParams budget{};
  /// Fibers per attached bundle between the two wafers.  Sized so a fully
  /// packed rack can provision redirected rings for every tenant at once
  /// (Slice-4-style 32-chip slices put many ring edges across the wafer
  /// boundary).
  std::uint32_t fibers_per_bundle{64};
  /// Bundles along the facing wafer edges.
  std::uint32_t bundles{8};
};

class PhotonicRack {
 public:
  explicit PhotonicRack(const topo::TpuCluster& cluster, topo::RackId rack,
                        PhotonicRackConfig config = {});

  [[nodiscard]] fabric::Fabric& fabric() { return fabric_; }
  [[nodiscard]] const fabric::Fabric& fabric() const { return fabric_; }
  [[nodiscard]] topo::RackId rack() const { return rack_; }
  [[nodiscard]] const topo::TpuCluster& cluster() const { return cluster_; }

  /// Fabric tile hosting a chip of this rack.
  [[nodiscard]] fabric::GlobalTile tile_of(topo::TpuId chip) const;

  /// Chip stacked on a fabric tile.
  [[nodiscard]] topo::TpuId chip_of(fabric::GlobalTile tile) const;

  /// Per-wavelength line rate of the interconnect.
  [[nodiscard]] Bandwidth per_wavelength_rate() const {
    return fabric_.per_wavelength_rate();
  }

  /// Full egress bandwidth of a chip on the photonic interconnect:
  /// wavelengths-per-tile x line rate (the B that redirection can aim
  /// anywhere).
  [[nodiscard]] Bandwidth chip_bandwidth() const;

 private:
  const topo::TpuCluster& cluster_;
  topo::RackId rack_;
  PhotonicRackConfig config_;
  fabric::Fabric fabric_;
  std::int32_t chips_per_wafer_;
};

}  // namespace lp::core
