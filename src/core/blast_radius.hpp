// Blast-radius analysis of accelerator failures (§4.2).
//
// Today's policy handles a TPU failure at rack granularity: the whole job
// migrates to a fresh set of racks and the OCS layer re-wires them ([60]).
// The paper argues (Figures 6-7) that an in-place electrical repair is
// generally impossible without congestion, while per-chip optical circuits
// can wire a spare into the broken rings congestion-free, shrinking the
// blast radius from a rack to a server.
//
// This module implements all three responses and quantifies them:
//   * kRackMigration  — the [60] baseline
//   * kElectricalRepair — best-effort in-place repair over the torus
//     (searches congestion-free paths; usually infeasible, per Figure 6)
//   * kOpticalRepair  — Figure 7 on a PhotonicRack
#pragma once

#include <optional>
#include <vector>

#include "collective/congestion.hpp"
#include "core/photonic_rack.hpp"
#include "routing/repair.hpp"
#include "topo/cluster.hpp"
#include "topo/slice.hpp"

namespace lp::core {

enum class FailurePolicy : std::uint8_t {
  kRackMigration,
  kElectricalRepair,
  kOpticalRepair,
};

struct FailureImpactParams {
  /// Checkpoint-restore cost of migrating a job to fresh racks.
  Duration migration_time{Duration::seconds(600.0)};
};

/// Why an in-place repair could not handle a failure (feasible=false).
enum class UnrecoveredCause : std::uint8_t {
  kNone = 0,            ///< recovered (or migration, which cannot fail)
  kSpareExhausted = 1,  ///< no free chip left in the rack to stand in
  kPlanFailure = 2,     ///< spares existed but no congestion-free plan/route
};

[[nodiscard]] constexpr const char* to_string(UnrecoveredCause c) {
  switch (c) {
    case UnrecoveredCause::kNone: return "none";
    case UnrecoveredCause::kSpareExhausted: return "spare-exhausted";
    case UnrecoveredCause::kPlanFailure: return "plan-failure";
  }
  return "?";
}

struct FailureImpact {
  FailurePolicy policy{};
  /// Chips whose assignment changes or that go idle because of the failure.
  std::int32_t blast_radius_chips{0};
  /// Interrupted tenant jobs (slices).
  std::int32_t jobs_interrupted{0};
  /// Time until the affected job is running again.
  Duration recovery_time{Duration::zero()};
  /// Whether the post-recovery traffic is congestion-free.
  bool congestion_free{false};
  /// Whether the policy could handle the failure at all.
  bool feasible{false};
  /// When feasible=false, what exhausted the policy.
  UnrecoveredCause cause{UnrecoveredCause::kNone};
  /// Circuits an optical repair established on the rack fabric.  Callers
  /// that assess many hypothetical failures against one fabric (the batch
  /// sweeps) disconnect these to restore the fabric between trials.
  std::vector<fabric::CircuitId> repair_circuits;
};

/// The failed chip's ring neighbors that lose a peer: for every ring of the
/// owning slice's electrical plan that contains the failed chip, its
/// predecessor and successor.
[[nodiscard]] std::vector<topo::TpuId> broken_ring_neighbors(
    const topo::TpuCluster& cluster, const topo::Slice& slice, topo::TpuId failed);

/// Same, against a precomputed steady-state traffic realization of the
/// slice.  Batch sweeps that assess many hypothetical failures of one fixed
/// packing pass the cached traffic instead of re-deriving the rings per
/// trial.
[[nodiscard]] std::vector<topo::TpuId> broken_ring_neighbors(
    const coll::SliceTraffic& traffic, topo::TpuId failed);

/// Result of attempting an in-place electrical repair (Figure 6): for the
/// chosen spare, per-neighbor congestion-free paths, if they all exist.
struct ElectricalRepairAttempt {
  topo::TpuId spare{-1};
  std::vector<std::vector<topo::TpuId>> paths;  ///< one per neighbor
  bool feasible{false};
};

/// Tries every free chip in the rack as the spare; paths must avoid links
/// used by any slice's steady-state rings and must not transit allocated
/// chips.  Returns the first fully-connectable spare, or an attempt with
/// feasible=false recording the best effort.
[[nodiscard]] ElectricalRepairAttempt attempt_electrical_repair(
    const topo::TpuCluster& cluster, const topo::SliceAllocator& alloc,
    topo::TpuId failed);

/// Assesses a failure under a policy.  `rack_fabric` is required for
/// kOpticalRepair and ignored otherwise.  `steady_traffic`, when non-null,
/// is the precomputed kUsableOnly traffic of the failed chip's slice (a
/// batch-sweep cache); when null it is derived on the fly.
[[nodiscard]] FailureImpact assess_failure(topo::TpuCluster& cluster,
                                           topo::SliceAllocator& alloc,
                                           topo::TpuId failed, FailurePolicy policy,
                                           const FailureImpactParams& params = {},
                                           PhotonicRack* rack_fabric = nullptr,
                                           const coll::SliceTraffic* steady_traffic = nullptr);

}  // namespace lp::core
