#include "core/host_stack.hpp"

#include <algorithm>

namespace lp::core {

using fabric::CircuitId;
using fabric::GlobalTile;

HostStack::HostStack(fabric::Fabric& fab, HostStackParams params)
    : fabric_{fab}, params_{params} {}

bool HostStack::has_circuit(GlobalTile src, GlobalTile dst) const {
  return circuits_.contains(Key{src, dst});
}

Result<CircuitId> HostStack::establish(const Key& key) {
  return fabric_.connect(key.src, key.dst, params_.wavelengths_per_circuit);
}

Result<Duration> HostStack::send(GlobalTile src, GlobalTile dst, DataSize bytes) {
  ++stats_.messages;
  const Key key{src, dst};
  SrcState& state = sources_[src];

  Duration latency = Duration::zero();
  auto it = circuits_.find(key);
  if (it != circuits_.end()) {
    ++stats_.hits;
    // Refresh LRU position.
    state.lru.remove(key);
    state.lru.push_front(key);
  } else {
    ++stats_.misses;
    // Evict until a port (and the Tx lambdas) are available.
    auto attempt = establish(key);
    while (!attempt && !state.lru.empty()) {
      const Key victim = state.lru.back();
      state.lru.pop_back();
      const auto vit = circuits_.find(victim);
      if (vit != circuits_.end()) {
        fabric_.disconnect(vit->second);
        circuits_.erase(vit);
        ++stats_.evictions;
      }
      attempt = establish(key);
    }
    if (!attempt) return Err("cannot establish circuit: " + attempt.error().message);
    // Port-bound eviction even when resources would allow more peers.
    while (state.lru.size() >= params_.max_peers) {
      const Key victim = state.lru.back();
      state.lru.pop_back();
      const auto vit = circuits_.find(victim);
      if (vit != circuits_.end()) {
        fabric_.disconnect(vit->second);
        circuits_.erase(vit);
        ++stats_.evictions;
      }
    }
    circuits_.emplace(key, attempt.value());
    state.lru.push_front(key);
    const fabric::Circuit* c = fabric_.circuit(attempt.value());
    const Duration setup =
        fabric_.reconfig().batch_latency(c != nullptr ? c->mzis_to_program() : 1);
    stats_.reconfig_time += setup;
    latency += setup;
  }

  const CircuitId id = circuits_.at(key);
  const Bandwidth rate = fabric_.circuit_bandwidth(id);
  const Duration transfer = transfer_time(bytes, rate);
  stats_.transfer_time += transfer;
  latency += transfer;
  return latency;
}

void HostStack::flush() {
  for (const auto& [key, id] : circuits_) fabric_.disconnect(id);
  circuits_.clear();
  sources_.clear();
}

}  // namespace lp::core
