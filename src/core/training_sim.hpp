// Distributed-training iteration simulator.
//
// The paper's motivation (§2): "accelerators remain idle during training
// for large fractions of the time waiting for inter-accelerator
// communication to complete".  This module quantifies that idle fraction
// for a data-parallel training step on a slice: the backward pass produces
// per-bucket gradients that are AllReduced while later buckets are still
// computing; whatever communication does not overlap is exposed and stalls
// the step.
//
// Model: buckets finish compute back to back (compute_per_bucket each).
// One collective channel: bucket i's AllReduce starts at
// max(compute_done_i, previous collective's end) and runs for its cost
// under the chosen interconnect.  Exposed communication is the tail beyond
// the last bucket's compute.
#pragma once

#include <cstdint>
#include <vector>

#include "collective/cost_model.hpp"
#include "topo/slice.hpp"
#include "util/units.hpp"

namespace lp::core {

struct TrainingConfig {
  /// Gradient buckets per iteration (DDP-style bucketing).
  std::uint32_t buckets{16};
  /// Gradient bytes per bucket.
  DataSize bucket_bytes{DataSize::mib(64)};
  /// Backward-pass compute time per bucket.
  Duration compute_per_bucket{Duration::millis(2.0)};
};

struct IterationReport {
  Duration compute_time{Duration::zero()};
  Duration comm_time{Duration::zero()};      ///< sum of all collective costs
  Duration exposed_comm{Duration::zero()};   ///< comm not hidden by compute
  Duration iteration{Duration::zero()};      ///< wall-clock of the step
  /// Fraction of the iteration the accelerators sit idle on communication.
  [[nodiscard]] double idle_fraction() const {
    return iteration.to_seconds() == 0.0
               ? 0.0
               : exposed_comm.to_seconds() / iteration.to_seconds();
  }
};

/// When inside the compute/communication overlap each bucket's collective
/// ran.  All times are offsets from the iteration's start.
struct BucketTiming {
  Duration compute_done{Duration::zero()};  ///< bucket's gradients ready
  Duration comm_start{Duration::zero()};    ///< its AllReduce began
  Duration comm_end{Duration::zero()};      ///< its AllReduce finished
};

struct IterationTimeline {
  std::vector<BucketTiming> buckets;
  IterationReport report;

  /// Whether any bucket's collective was on the wire at `offset` from the
  /// iteration's start (comm_start inclusive, comm_end exclusive).  The
  /// shared query for every event-driven caller that must classify a fault
  /// strike as mid-collective — keep the boundary convention here rather
  /// than in per-caller scan loops.
  [[nodiscard]] bool collective_in_flight(Duration offset) const;
};

/// The bucket-overlap engine behind simulate_training_iteration, factored
/// out so callers that already know per-bucket collective durations (e.g.
/// the runtime layer driving a faulted ring schedule) can replay the same
/// overlap arithmetic.  Bucket 0 runs for `first_bucket_comm`, every later
/// bucket for `steady_bucket_comm`; buckets share one collective channel.
/// The per-bucket timeline lets an event-driven caller ask "was a
/// collective in flight at wall-clock t?" — the question a mid-iteration
/// fault forces.
[[nodiscard]] IterationTimeline overlap_buckets(const TrainingConfig& config,
                                                Duration first_bucket_comm,
                                                Duration steady_bucket_comm);

/// Simulates one training iteration of the slice on the given interconnect.
[[nodiscard]] IterationReport simulate_training_iteration(
    const topo::Slice& slice, const topo::Shape& rack_shape,
    const TrainingConfig& config, coll::Interconnect interconnect,
    const coll::CostParams& params,
    coll::RedirectStrategy strategy = coll::RedirectStrategy::kStaticSplit);

}  // namespace lp::core
