#include "core/photonic_rack.hpp"

#include <cassert>

namespace lp::core {

namespace {

fabric::FabricConfig make_fabric_config(const PhotonicRackConfig& config) {
  fabric::FabricConfig fc;
  fc.wafer = config.wafer;
  fc.wafer_count = 2;
  fc.modulator = config.modulator;
  fc.reconfig = config.reconfig;
  fc.budget = config.budget;
  return fc;
}

}  // namespace

PhotonicRack::PhotonicRack(const topo::TpuCluster& cluster, topo::RackId rack,
                           PhotonicRackConfig config)
    : cluster_{cluster},
      rack_{rack},
      config_{config},
      fabric_{make_fabric_config(config)},
      chips_per_wafer_{static_cast<std::int32_t>(config.wafer.rows * config.wafer.cols)} {
  assert(cluster.chips_per_rack() <= 2 * chips_per_wafer_);
  // Attach fiber bundles between the facing edges: wafer 0's east column to
  // wafer 1's west column, round-robin over rows.
  const std::int32_t rows = config.wafer.rows;
  const std::int32_t cols = config.wafer.cols;
  for (std::uint32_t b = 0; b < config.bundles; ++b) {
    const std::int32_t row = static_cast<std::int32_t>(b) % rows;
    const fabric::TileId east =
        fabric_.wafer(0).tile_at(fabric::TileCoord{row, cols - 1});
    const fabric::TileId west = fabric_.wafer(1).tile_at(fabric::TileCoord{row, 0});
    fabric_.add_fiber_link(fabric::GlobalTile{0, east}, fabric::GlobalTile{1, west},
                           config.fibers_per_bundle);
  }
}

fabric::GlobalTile PhotonicRack::tile_of(topo::TpuId chip) const {
  const std::int32_t local = chip - rack_ * cluster_.chips_per_rack();
  assert(local >= 0 && local < cluster_.chips_per_rack());
  return fabric::GlobalTile{static_cast<fabric::WaferId>(local / chips_per_wafer_),
                            static_cast<fabric::TileId>(local % chips_per_wafer_)};
}

topo::TpuId PhotonicRack::chip_of(fabric::GlobalTile tile) const {
  return rack_ * cluster_.chips_per_rack() +
         static_cast<std::int32_t>(tile.wafer) * chips_per_wafer_ +
         static_cast<std::int32_t>(tile.tile);
}

Bandwidth PhotonicRack::chip_bandwidth() const {
  return per_wavelength_rate() * static_cast<double>(config_.wafer.tile.tx_wavelengths);
}

}  // namespace lp::core
