#include "core/training_sim.hpp"

#include <algorithm>

namespace lp::core {

IterationTimeline overlap_buckets(const TrainingConfig& config,
                                  Duration first_bucket_comm,
                                  Duration steady_bucket_comm) {
  IterationTimeline timeline;
  timeline.buckets.reserve(config.buckets);
  IterationReport& report = timeline.report;

  report.compute_time =
      config.compute_per_bucket * static_cast<double>(config.buckets);

  Duration comm_free = Duration::zero();
  Duration comm_end = Duration::zero();
  for (std::uint32_t b = 0; b < config.buckets; ++b) {
    const Duration compute_done =
        config.compute_per_bucket * static_cast<double>(b + 1);
    const Duration duration = b == 0 ? first_bucket_comm : steady_bucket_comm;
    const Duration start = std::max(compute_done, comm_free);
    comm_end = start + duration;
    comm_free = comm_end;
    report.comm_time += duration;
    timeline.buckets.push_back({compute_done, start, comm_end});
  }

  report.iteration = std::max(report.compute_time, comm_end);
  report.exposed_comm = report.iteration - report.compute_time;
  if (report.exposed_comm < Duration::zero()) report.exposed_comm = Duration::zero();
  return timeline;
}

bool IterationTimeline::collective_in_flight(Duration offset) const {
  for (const BucketTiming& b : buckets) {
    if (b.comm_start <= offset && offset < b.comm_end) return true;
  }
  return false;
}

IterationReport simulate_training_iteration(const topo::Slice& slice,
                                            const topo::Shape& rack_shape,
                                            const TrainingConfig& config,
                                            coll::Interconnect interconnect,
                                            const coll::CostParams& params,
                                            coll::RedirectStrategy strategy) {
  const auto plan = coll::build_plan(slice, rack_shape);

  // Per-bucket AllReduce cost.  With static-split optics the redirected
  // circuits persist across buckets, so only the first bucket pays the
  // reconfigurations.
  const auto first_cost = coll::all_reduce_cost(plan, config.bucket_bytes, interconnect,
                                                params, strategy);
  auto steady_cost = first_cost;
  if (interconnect == coll::Interconnect::kOptical &&
      strategy == coll::RedirectStrategy::kStaticSplit) {
    steady_cost.reconfigs = 0;
  }

  return overlap_buckets(config, first_cost.total(params), steady_cost.total(params))
      .report;
}

}  // namespace lp::core
