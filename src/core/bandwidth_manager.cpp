#include "core/bandwidth_manager.hpp"

#include <algorithm>
#include <string>

namespace lp::core {

BandwidthManager::BandwidthManager(PhotonicRack& rack) : rack_{rack} {}

namespace {

/// Rings realizing one plan stage (same lowering as the schedule builder).
std::vector<coll::RingRealization> realize_stage(const topo::TpuCluster& cluster,
                                                 const topo::Slice& slice,
                                                 const coll::RingStage& stage) {
  if (stage.snake) {
    const topo::Shape& rack_shape = cluster.config().rack_shape;
    const auto usable = coll::usable_dims(slice, rack_shape);
    std::vector<std::size_t> snake_dims;
    for (std::size_t d : coll::active_dims(slice)) {
      if (std::find(usable.begin(), usable.end(), d) == usable.end())
        snake_dims.push_back(d);
    }
    if (!usable.empty()) snake_dims.push_back(usable.front());
    return coll::snake_rings(cluster, slice, snake_dims);
  }
  return coll::rings_in_dim(cluster, slice, static_cast<std::size_t>(stage.dim));
}

}  // namespace

Result<StageCircuits> BandwidthManager::provision_stage(const topo::Slice& slice,
                                                        const coll::CollectivePlan& plan,
                                                        std::size_t stage_index,
                                                        coll::RedirectStrategy strategy) {
  if (stage_index >= plan.stages.size()) return Err("stage index out of range");
  const topo::TpuCluster& cluster = rack_.cluster();

  // Wavelength budget per circuit: the tile's lasers split across the
  // stages that hold circuits concurrently (static split), or all of them
  // for the one live stage (per-stage-full).
  const std::uint32_t total_lambdas =
      rack_.fabric().config().wafer.tile.tx_wavelengths;
  const std::uint32_t divisor =
      strategy == coll::RedirectStrategy::kPerStageFull
          ? 1u
          : static_cast<std::uint32_t>(std::max<std::size_t>(1, plan.stages.size()));
  const std::uint32_t lambdas = std::max(1u, total_lambdas / divisor);

  StageCircuits stage;
  stage.wavelengths = lambdas;
  stage.edge_rate = rack_.per_wavelength_rate() * static_cast<double>(lambdas);

  const auto rings = realize_stage(cluster, slice, plan.stages[stage_index]);
  const std::uint64_t mzis_before = rack_.fabric().reconfig().mzis_programmed();
  for (const auto& ring : rings) {
    for (std::size_t i = 0; i < ring.members.size(); ++i) {
      const topo::TpuId src = ring.members[i];
      const topo::TpuId dst = ring.members[(i + 1) % ring.members.size()];
      auto placed =
          rack_.fabric().connect(rack_.tile_of(src), rack_.tile_of(dst), lambdas);
      if (!placed) {
        release_stage(stage);
        return Err("ring edge " + std::to_string(src) + "->" + std::to_string(dst) +
                   ": " + placed.error().message);
      }
      stage.circuits.push_back(placed.value());
    }
  }
  const std::uint64_t mzis_after = rack_.fabric().reconfig().mzis_programmed();
  stage.reconfig_latency = rack_.fabric().reconfig().batch_latency(
      static_cast<unsigned>(mzis_after - mzis_before));
  return stage;
}

void BandwidthManager::release_stage(const StageCircuits& stage) {
  for (fabric::CircuitId id : stage.circuits) rack_.fabric().disconnect(id);
}

Result<std::vector<StageCircuits>> BandwidthManager::provision_all(
    const topo::Slice& slice, const coll::CollectivePlan& plan) {
  std::vector<StageCircuits> stages;
  for (std::size_t i = 0; i < plan.stages.size(); ++i) {
    auto stage = provision_stage(slice, plan, i, coll::RedirectStrategy::kStaticSplit);
    if (!stage) {
      for (const auto& s : stages) release_stage(s);
      return Err("stage " + std::to_string(i) + ": " + stage.error().message);
    }
    stages.push_back(std::move(stage).value());
  }
  return stages;
}

}  // namespace lp::core
