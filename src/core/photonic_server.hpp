// PhotonicServer: the multi-accelerator server of §1, as an API.
//
// A thin, accelerator-indexed facade over one Fabric wafer for the common
// single-server case (up to 32 accelerators stacked on one LIGHTPATH
// wafer).  It exposes exactly the operations the paper's vision needs:
// point-to-point circuits by accelerator id, whole-ring provisioning with
// one reconfiguration charge, and a live bandwidth matrix for
// observability.
#pragma once

#include <cstdint>
#include <vector>

#include "lightpath/fabric.hpp"
#include "util/result.hpp"

namespace lp::core {

class PhotonicServer {
 public:
  /// A server of `accelerators` chips on one wafer (<= tile count).
  explicit PhotonicServer(std::uint32_t accelerators = 32,
                          fabric::FabricConfig config = {});

  [[nodiscard]] std::uint32_t accelerator_count() const { return accelerators_; }
  [[nodiscard]] fabric::Fabric& fabric() { return fabric_; }
  [[nodiscard]] const fabric::Fabric& fabric() const { return fabric_; }

  /// Dedicated circuit from accelerator `a` to `b`.
  Result<fabric::CircuitId> connect(std::uint32_t a, std::uint32_t b,
                                    std::uint32_t wavelengths);
  void disconnect(fabric::CircuitId id);

  /// Provision a unidirectional ring over the given accelerator order with
  /// `wavelengths` per edge.  On failure nothing stays established.
  Result<std::vector<fabric::CircuitId>> provision_ring(
      const std::vector<std::uint32_t>& order, std::uint32_t wavelengths);
  void release(const std::vector<fabric::CircuitId>& circuits);

  /// Live bandwidth from `a` to `b` summed over established circuits.
  [[nodiscard]] Bandwidth bandwidth_between(std::uint32_t a, std::uint32_t b) const;

  /// accelerators x accelerators matrix of live circuit bandwidth (GB/s
  /// from row to column); the fabric-level view of "who can talk at what
  /// rate right now".
  [[nodiscard]] std::vector<double> bandwidth_matrix_gBps() const;

  /// Fraction of all tile Tx wavelengths currently committed.
  [[nodiscard]] double tx_utilization() const;

 private:
  [[nodiscard]] fabric::GlobalTile tile_of(std::uint32_t accelerator) const {
    return fabric::GlobalTile{0, accelerator};
  }

  std::uint32_t accelerators_;
  fabric::Fabric fabric_;
  /// Live circuits per (src, dst) pair, for the bandwidth queries.
  std::vector<std::vector<fabric::CircuitId>> by_pair_;
};

}  // namespace lp::core
