// Dynamic bandwidth redirection — the paper's headline capability (§4.1,
// "Opportunity: redirect GPU bandwidth on demand").
//
// The BandwidthManager turns a collective plan's ring stages into actual
// fabric circuits: for each ring edge it establishes a circuit carrying the
// stage's share of the chip's wavelengths, so a chip whose torus neighbors
// would idle 2/3 of its I/O instead drives everything at its active ring
// neighbor.  It reports the reconfiguration latency (the `r` of the cost
// model) and verifies the provisioned rate matches what the cost model
// assumed.
#pragma once

#include <vector>

#include "collective/cost_model.hpp"
#include "collective/ring.hpp"
#include "core/photonic_rack.hpp"
#include "topo/slice.hpp"
#include "util/result.hpp"

namespace lp::core {

/// Circuits provisioned for one ring stage.
struct StageCircuits {
  std::vector<fabric::CircuitId> circuits;
  /// Wavelengths each circuit carries.
  std::uint32_t wavelengths{0};
  /// Rate each ring edge gets.
  Bandwidth edge_rate{Bandwidth::zero()};
  /// Latency to program this stage's circuits.
  Duration reconfig_latency{Duration::zero()};
};

class BandwidthManager {
 public:
  explicit BandwidthManager(PhotonicRack& rack);

  /// Provision circuits for every ring of one plan stage of `slice`,
  /// splitting the tile's wavelengths across the plan's stages per the
  /// redirect strategy.  Fails (releasing partial work) if the fabric lacks
  /// resources.
  Result<StageCircuits> provision_stage(const topo::Slice& slice,
                                        const coll::CollectivePlan& plan,
                                        std::size_t stage_index,
                                        coll::RedirectStrategy strategy =
                                            coll::RedirectStrategy::kStaticSplit);

  /// Releases a stage's circuits.
  void release_stage(const StageCircuits& stage);

  /// Provision all stages at once (static split across stages).  With
  /// kPerStageFull the caller should provision/release stage-by-stage
  /// instead, paying one reconfiguration per stage.
  Result<std::vector<StageCircuits>> provision_all(const topo::Slice& slice,
                                                   const coll::CollectivePlan& plan);

  [[nodiscard]] PhotonicRack& rack() { return rack_; }

 private:
  PhotonicRack& rack_;
};

}  // namespace lp::core
