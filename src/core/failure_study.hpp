// Monte-Carlo failure injection and availability accounting.
//
// Extends §4.2 from a single-failure argument to a fleet-level study: chips
// fail as a Poisson process (per-chip MTBF), each failure is handled by one
// of the recovery policies, and the cost is accounted as chip-hours lost —
// blast-radius chips idle for the recovery time.  The availability bench
// shows how the rack-migration policy's 64-chip x minutes blast radius
// compounds at scale while optical repair's 4-chip x microseconds cost
// vanishes.
//
// The study is a deterministic parallel sweep (util/parallel): failure
// times come from one serial stream seeded by `seed`, each trial draws its
// victim from `task_seed(seed, trial)`, and trials are evaluated in
// parallel against per-worker template racks that are reset between trials
// instead of reconstructed.  Results are identical at any thread count.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/blast_radius.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "routing/repair.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lp::core {

struct FailureStudyParams {
  /// Per-chip mean time between failures.
  double mtbf_hours{50000.0};
  /// Simulated horizon.
  double horizon_hours{24.0 * 90.0};
  /// Chips in the fleet (64 racks x 64 chips by default).
  std::int32_t fleet_chips{4096};
  std::uint64_t seed{0xfa11};
  FailureImpactParams impact{};
  /// Worker threads for trial evaluation; 0 means one per hardware thread.
  /// The report is bit-identical for every value.
  unsigned threads{0};
};

struct AvailabilityReport {
  FailurePolicy policy{};
  std::uint64_t failures{0};
  /// Failures the policy could not handle in place (fell back to migration):
  /// the total, and its split by cause.
  std::uint64_t unrecovered{0};
  std::uint64_t unrecovered_spare_exhausted{0};
  std::uint64_t unrecovered_plan_failure{0};
  double chip_hours_lost{0.0};
  /// 1 - lost / (fleet_chips * horizon).
  double availability{1.0};
};

/// Builds the representative packed rack every failure study assesses
/// against (the Figure 5 packing with one free region): Slice-4 (4x4x2),
/// Slice-3 (4x4x1), Slice-1 (4x2x1) on rack 0, leaving the 4x2x1 region at
/// y in {2,3}, z=3 as the spare pool.
void pack_template_rack(topo::SliceAllocator& alloc, topo::RackId rack = 0);

/// Assesses one hypothetical failure per victim against the template rack,
/// in parallel (`threads` as in FailureStudyParams).  Each worker builds
/// the template cluster/allocation (and, for optical repair, the photonic
/// rack fabric) once and resets it between trials, so the per-trial cost is
/// the assessment itself.  Trials are independent; `impacts[i]` corresponds
/// to `victims[i]` regardless of scheduling.
[[nodiscard]] std::vector<FailureImpact> assess_failures_batch(
    FailurePolicy policy, const std::vector<topo::TpuId>& victims,
    const FailureImpactParams& params = {}, unsigned threads = 0);

/// Runs the study for one policy.  Each failure is assessed against a
/// fresh, representatively packed rack (the Figure 5 packing with one free
/// region), so failures are independent — a deliberate simplification that
/// isolates the per-failure cost difference between policies.
[[nodiscard]] AvailabilityReport run_failure_study(FailurePolicy policy,
                                                   const FailureStudyParams& params = {});

// ---------------------------------------------------------------------------
// Component-level fault Monte-Carlo (fault/ + the repair ladder).
//
// Where run_failure_study kills whole chips, this study injects typed
// component faults (stuck/drifted MZIs, waveguide loss drift, fiber cuts,
// dead lasers, chip deaths — including correlated per-wafer bursts) into a
// live two-wafer fabric carrying a baseline circuit load, detects degraded
// circuits with the health monitor, and recovers each one by climbing the
// repair ladder.  It reports per-rung recovery counts and the availability
// implied by each rung's blast radius and recovery latency.
// ---------------------------------------------------------------------------

struct ComponentStudyParams {
  /// Per-chip mean time between *component* faults (more frequent than the
  /// whole-chip MTBF of the chip-death study).
  double component_mtbf_hours{25000.0};
  double horizon_hours{24.0 * 90.0};
  std::int32_t fleet_chips{4096};
  std::uint64_t seed{0xc0fa};
  fault::FaultModelParams model{};
  fault::HealthMonitorParams health{};
  /// Probability that the electrical torus has a congestion-free detour
  /// when rung 4 is consulted (usually low, per Figure 6).
  double electrical_feasible_p{0.1};
  std::uint32_t retries_per_rung{2};
  /// Probability that one programming attempt fails transiently (MZI settle
  /// timeout — fault/gray.hpp) and is retried with backoff.  0 keeps the
  /// legacy fail-stop behavior bit-identical.
  double settle_failure_probability{0.0};
  /// Backoff between transient retries (seed is re-derived per trial).
  routing::RetryBackoff backoff{};
  /// Chips idled while each rung's recovery runs (index = rung): the
  /// optical rungs touch the failed chip's server, the electrical detour
  /// only the endpoints, migration the whole rack.
  std::array<std::int32_t, routing::kRepairRungCount> rung_blast_chips{
      {4, 4, 4, 2, 64}};
  /// Worker threads; 0 means one per hardware thread.  The report is
  /// bit-identical for every value.
  unsigned threads{0};
};

struct ComponentAvailabilityReport {
  /// Poisson fault events over the horizon (= Monte-Carlo trials).
  std::uint64_t fault_events{0};
  /// Components faulted, counting correlated burst extras.
  std::uint64_t faults_injected{0};
  /// Trials whose event was a correlated multi-component burst.
  std::uint64_t bursts{0};
  /// Circuits the health monitor flagged (degraded or down).
  std::uint64_t degraded_circuits{0};
  /// Subset that were hard down (no light at the receiver).
  std::uint64_t hard_down_circuits{0};
  /// Recoveries by the rung that achieved them (index = rung).
  std::array<std::uint64_t, routing::kRepairRungCount> recovered_by{};
  /// Total attempts per rung, including successful ones.
  std::array<std::uint64_t, routing::kRepairRungCount> attempts{};
  std::uint64_t unrecovered{0};
  /// Subset of `unrecovered` that failed transiently (every retry hit a
  /// settle timeout): the circuit is still established and a later climb
  /// would likely succeed — a different cause than plan failure, and
  /// reported separately so artifacts do not conflate the two.
  std::uint64_t unrecovered_transient{0};
  /// Individual programming attempts that failed transiently and were
  /// retried with backoff.
  std::uint64_t transient_repair_failures{0};
  double chip_hours_lost{0.0};
  /// Total wall-clock recovery time across all repairs.
  double recovery_seconds_total{0.0};
  double availability{1.0};
};

/// Runs the component-fault study.  Deterministic parallel sweep: the
/// arrival count comes from one serial stream, trial i draws everything
/// (faults, electrical feasibility) from Rng{task_seed(seed, i)}, and
/// per-trial results fold in trial order — bit-identical at any `threads`.
[[nodiscard]] ComponentAvailabilityReport run_component_fault_study(
    const ComponentStudyParams& params = {});

}  // namespace lp::core
