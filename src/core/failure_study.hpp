// Monte-Carlo failure injection and availability accounting.
//
// Extends §4.2 from a single-failure argument to a fleet-level study: chips
// fail as a Poisson process (per-chip MTBF), each failure is handled by one
// of the recovery policies, and the cost is accounted as chip-hours lost —
// blast-radius chips idle for the recovery time.  The availability bench
// shows how the rack-migration policy's 64-chip x minutes blast radius
// compounds at scale while optical repair's 4-chip x microseconds cost
// vanishes.
#pragma once

#include <cstdint>

#include "core/blast_radius.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lp::core {

struct FailureStudyParams {
  /// Per-chip mean time between failures.
  double mtbf_hours{50000.0};
  /// Simulated horizon.
  double horizon_hours{24.0 * 90.0};
  /// Chips in the fleet (64 racks x 64 chips by default).
  std::int32_t fleet_chips{4096};
  std::uint64_t seed{0xfa11};
  FailureImpactParams impact{};
};

struct AvailabilityReport {
  FailurePolicy policy{};
  std::uint64_t failures{0};
  std::uint64_t unrecovered{0};
  double chip_hours_lost{0.0};
  /// 1 - lost / (fleet_chips * horizon).
  double availability{1.0};
};

/// Runs the study for one policy.  Each failure is assessed against a
/// fresh, representatively packed rack (the Figure 5 packing with one free
/// region), so failures are independent — a deliberate simplification that
/// isolates the per-failure cost difference between policies.
[[nodiscard]] AvailabilityReport run_failure_study(FailurePolicy policy,
                                                   const FailureStudyParams& params = {});

}  // namespace lp::core
