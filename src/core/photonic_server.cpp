#include "core/photonic_server.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace lp::core {

PhotonicServer::PhotonicServer(std::uint32_t accelerators, fabric::FabricConfig config)
    : accelerators_{accelerators},
      fabric_{config},
      by_pair_(static_cast<std::size_t>(accelerators) * accelerators) {
  assert(accelerators_ <= fabric_.wafer(0).tile_count());
}

Result<fabric::CircuitId> PhotonicServer::connect(std::uint32_t a, std::uint32_t b,
                                                  std::uint32_t wavelengths) {
  if (a >= accelerators_ || b >= accelerators_)
    return Err("accelerator index out of range");
  auto id = fabric_.connect(tile_of(a), tile_of(b), wavelengths);
  if (id) by_pair_[a * accelerators_ + b].push_back(id.value());
  return id;
}

Result<std::vector<fabric::CircuitId>> PhotonicServer::provision_ring(
    const std::vector<std::uint32_t>& order, std::uint32_t wavelengths) {
  if (order.size() < 2) return Err("ring needs at least 2 accelerators");
  std::vector<fabric::CircuitId> circuits;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::uint32_t a = order[i];
    const std::uint32_t b = order[(i + 1) % order.size()];
    auto id = connect(a, b, wavelengths);
    if (!id) {
      release(circuits);
      return Err("ring edge " + std::to_string(a) + "->" + std::to_string(b) + ": " +
                 id.error().message);
    }
    circuits.push_back(id.value());
  }
  return circuits;
}

void PhotonicServer::disconnect(fabric::CircuitId id) {
  for (auto& pair : by_pair_) {
    pair.erase(std::remove(pair.begin(), pair.end(), id), pair.end());
  }
  fabric_.disconnect(id);
}

void PhotonicServer::release(const std::vector<fabric::CircuitId>& circuits) {
  for (fabric::CircuitId id : circuits) {
    for (auto& pair : by_pair_) {
      pair.erase(std::remove(pair.begin(), pair.end(), id), pair.end());
    }
    fabric_.disconnect(id);
  }
}

Bandwidth PhotonicServer::bandwidth_between(std::uint32_t a, std::uint32_t b) const {
  Bandwidth total = Bandwidth::zero();
  for (fabric::CircuitId id : by_pair_[a * accelerators_ + b]) {
    total += fabric_.circuit_bandwidth(id);
  }
  return total;
}

std::vector<double> PhotonicServer::bandwidth_matrix_gBps() const {
  std::vector<double> matrix(static_cast<std::size_t>(accelerators_) * accelerators_,
                             0.0);
  for (std::uint32_t a = 0; a < accelerators_; ++a) {
    for (std::uint32_t b = 0; b < accelerators_; ++b) {
      matrix[a * accelerators_ + b] = bandwidth_between(a, b).to_gBps();
    }
  }
  return matrix;
}

double PhotonicServer::tx_utilization() const {
  std::uint64_t used = 0, total = 0;
  for (std::uint32_t a = 0; a < accelerators_; ++a) {
    const auto& tile = fabric_.wafer(0).tile(a);
    used += tile.tx_used();
    total += tile.params().tx_wavelengths;
  }
  return total == 0 ? 0.0 : static_cast<double>(used) / static_cast<double>(total);
}

}  // namespace lp::core
