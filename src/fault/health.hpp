// Degraded-circuit detection.
//
// The HealthMonitor walks an established circuit's light path against the
// active FaultSet and recomputes its link budget (phys/link_budget) with the
// fault-induced excess losses folded in.  A circuit is:
//
//   * kDown     — light no longer reaches the receiver: a stuck MZI on the
//                 path, a cut fiber, or a dead endpoint chip;
//   * kDegraded — the light path works but the re-evaluated budget fails to
//                 close, the remaining margin dips under a configurable
//                 threshold, or source lasers died (the circuit must re-lock);
//   * kHealthy  — none of the above.
//
// scan() reports every unhealthy circuit in ascending id order so repair
// sweeps are deterministic; to_degraded() lowers a diagnosis to the
// observation flags the repair ladder (routing/repair) consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "lightpath/fabric.hpp"
#include "phys/link_budget.hpp"
#include "routing/repair.hpp"
#include "util/units.hpp"

namespace lp::fault {

enum class CircuitHealth : std::uint8_t { kHealthy = 0, kDegraded = 1, kDown = 2 };

[[nodiscard]] constexpr const char* to_string(CircuitHealth h) {
  switch (h) {
    case CircuitHealth::kHealthy: return "healthy";
    case CircuitHealth::kDegraded: return "degraded";
    case CircuitHealth::kDown: return "down";
  }
  return "?";
}

struct HealthMonitorParams {
  /// Minimum remaining link-budget margin before a circuit is declared
  /// degraded even though its pre-FEC BER still clears the FEC threshold
  /// (running at zero margin one drift away from an outage is not healthy).
  ///
  /// Boundary contract: the threshold is *closed on the healthy side*.  A
  /// margin exactly equal to min_margin is acceptable; only margin strictly
  /// below it degrades the circuit.  The comparison is a plain IEEE-754
  /// `<` on the dB values, so a circuit sitting exactly on the 0.5 dB line
  /// classifies the same way on every platform and run.
  Decibel min_margin{Decibel::db(0.5)};

  /// The single comparison every margin check in the monitor goes through,
  /// so the closed/open side cannot drift between call sites.
  [[nodiscard]] constexpr bool margin_acceptable(Decibel margin) const {
    return margin >= min_margin;
  }
};

struct CircuitDiagnosis {
  fabric::CircuitId id{0};
  CircuitHealth health{CircuitHealth::kHealthy};
  bool hard_down{false};      ///< stuck MZI on the path or cut fiber
  bool budget_failed{false};  ///< re-evaluated budget fails or margin < threshold
  bool src_dead{false};
  bool dst_dead{false};
  std::uint32_t dead_lasers{0};
  /// Fault-induced extra path loss (waveguide + MZI drift terms).
  Decibel fault_excess{Decibel::zero()};
  /// Budget re-evaluated at the faulted loss.
  phys::LinkBudgetReport budget{};
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthMonitorParams params = {});

  [[nodiscard]] const HealthMonitorParams& params() const { return params_; }

  /// Diagnoses one established circuit against the fault set.  `id` must
  /// name an established circuit.
  [[nodiscard]] CircuitDiagnosis diagnose(const fabric::Fabric& fab,
                                          const FaultSet& faults,
                                          fabric::CircuitId id) const;

  /// Every unhealthy circuit, ascending id.
  [[nodiscard]] std::vector<CircuitDiagnosis> scan(const fabric::Fabric& fab,
                                                   const FaultSet& faults) const;

 private:
  HealthMonitorParams params_;
};

/// Lowers a diagnosis to the ladder's input.
[[nodiscard]] routing::DegradedCircuit to_degraded(const CircuitDiagnosis& d);

}  // namespace lp::fault
