// Degraded-circuit detection.
//
// The HealthMonitor walks an established circuit's light path against the
// active FaultSet and recomputes its link budget (phys/link_budget) with the
// fault-induced excess losses folded in.  A circuit is:
//
//   * kDown     — light no longer reaches the receiver: a stuck MZI on the
//                 path, a cut fiber, or a dead endpoint chip;
//   * kDegraded — the light path works but the re-evaluated budget fails to
//                 close, the remaining margin dips under a configurable
//                 threshold, or source lasers died (the circuit must re-lock);
//   * kHealthy  — none of the above.
//
// scan() reports every unhealthy circuit in ascending id order so repair
// sweeps are deterministic; to_degraded() lowers a diagnosis to the
// observation flags the repair ladder (routing/repair) consumes.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fault/fault.hpp"
#include "lightpath/fabric.hpp"
#include "phys/link_budget.hpp"
#include "routing/repair.hpp"
#include "util/units.hpp"

namespace lp::fault {

enum class CircuitHealth : std::uint8_t { kHealthy = 0, kDegraded = 1, kDown = 2 };

[[nodiscard]] constexpr const char* to_string(CircuitHealth h) {
  switch (h) {
    case CircuitHealth::kHealthy: return "healthy";
    case CircuitHealth::kDegraded: return "degraded";
    case CircuitHealth::kDown: return "down";
  }
  return "?";
}

struct HealthMonitorParams {
  /// Minimum remaining link-budget margin before a circuit is declared
  /// degraded even though its pre-FEC BER still clears the FEC threshold
  /// (running at zero margin one drift away from an outage is not healthy).
  ///
  /// Boundary contract: the threshold is *closed on the healthy side*.  A
  /// margin exactly equal to min_margin is acceptable; only margin strictly
  /// below it degrades the circuit.  The comparison is a plain IEEE-754
  /// `<` on the dB values, so a circuit sitting exactly on the 0.5 dB line
  /// classifies the same way on every platform and run.
  Decibel min_margin{Decibel::db(0.5)};

  /// The single comparison every margin check in the monitor goes through,
  /// so the closed/open side cannot drift between call sites.
  [[nodiscard]] constexpr bool margin_acceptable(Decibel margin) const {
    return margin >= min_margin;
  }
};

struct CircuitDiagnosis {
  fabric::CircuitId id{0};
  CircuitHealth health{CircuitHealth::kHealthy};
  bool hard_down{false};      ///< stuck MZI on the path or cut fiber
  bool budget_failed{false};  ///< re-evaluated budget fails or margin < threshold
  bool src_dead{false};
  bool dst_dead{false};
  std::uint32_t dead_lasers{0};
  /// Fault-induced extra path loss (waveguide + MZI drift terms).
  Decibel fault_excess{Decibel::zero()};
  /// Budget re-evaluated at the faulted loss.
  phys::LinkBudgetReport budget{};
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthMonitorParams params = {});

  [[nodiscard]] const HealthMonitorParams& params() const { return params_; }

  /// Diagnoses one established circuit against the fault set.  `id` must
  /// name an established circuit.
  [[nodiscard]] CircuitDiagnosis diagnose(const fabric::Fabric& fab,
                                          const FaultSet& faults,
                                          fabric::CircuitId id) const;

  /// Every unhealthy circuit, ascending id.
  [[nodiscard]] std::vector<CircuitDiagnosis> scan(const fabric::Fabric& fab,
                                                   const FaultSet& faults) const;

 private:
  HealthMonitorParams params_;
};

/// Lowers a diagnosis to the ladder's input.
[[nodiscard]] routing::DegradedCircuit to_degraded(const CircuitDiagnosis& d);

// ---------------------------------------------------------------------------
// Flap dampening: per-link hysteresis against gray failures.
//
// A link that flaps (fault/gray.hpp) must not be re-repaired on every
// transition — the ladder thrash costs more than the dips.  The FlapDamper
// runs a BGP-style route-flap-dampening state machine per component key:
//
//   healthy --(score >= suspect)--> suspect --(score >= quarantine)-->
//   quarantined --(hold elapses)--> probation --(clean hold)--> healthy
//                                      '--(flap: relapse)--> quarantined
//
// Scoring is exponentially weighted: each observed down-transition adds
// flap_penalty to the link's score, and the score decays by half every
// half_life_seconds.  While quarantined, repairs are suppressed (the
// consumer rides out the dips and routes around the link); probation
// re-admits the link but one more flap relapses straight back to
// quarantine.
//
// Boundary contract (pinned in fault_test): threshold comparisons are
// closed on the escalation side (score >= suspect_threshold suspects,
// score >= quarantine_threshold quarantines) and hold expiries are closed
// on the exit side (state(t) at exactly hold-end has already advanced).
// All transitions happen at deterministic absolute times, so the machine
// is a pure function of its (key, time)-stamped observation sequence.
// ---------------------------------------------------------------------------

enum class LinkState : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kQuarantined = 2,
  kProbation = 3,
};

[[nodiscard]] constexpr const char* to_string(LinkState s) {
  switch (s) {
    case LinkState::kHealthy: return "healthy";
    case LinkState::kSuspect: return "suspect";
    case LinkState::kQuarantined: return "quarantined";
    case LinkState::kProbation: return "probation";
  }
  return "?";
}

struct FlapDamperParams {
  /// Score added per observed down-transition.
  double flap_penalty{1.0};
  /// Exponential decay half-life of the score.
  double half_life_seconds{30.0};
  /// score >= suspect_threshold marks the link suspect (closed boundary).
  double suspect_threshold{1.5};
  /// score >= quarantine_threshold quarantines (closed boundary).
  double quarantine_threshold{3.0};
  /// Time served in quarantine before probation begins.
  Duration quarantine_hold{Duration::seconds(30.0)};
  /// Clean probation time before the link is healthy again (a flap during
  /// probation relapses to a fresh quarantine instead).
  Duration probation_hold{Duration::seconds(15.0)};
};

struct FlapDamperStats {
  std::uint64_t flaps{0};
  std::uint64_t quarantines{0};  ///< entries into kQuarantined, relapses included
  std::uint64_t probations{0};
  std::uint64_t relapses{0};
  /// Flaps observed while quarantined: each one is a repair-ladder
  /// invocation the dampening suppressed.
  std::uint64_t suppressed_repairs{0};
};

/// Per-link dampening state, keyed by the caller's component key (e.g.
/// fault::gray_component_key).  Not thread-safe; one damper per simulation.
class FlapDamper {
 public:
  explicit FlapDamper(FlapDamperParams params = {});

  [[nodiscard]] const FlapDamperParams& params() const { return params_; }
  [[nodiscard]] const FlapDamperStats& stats() const { return stats_; }

  /// Records a down-transition observed at absolute time `t` and returns
  /// the state *after* the flap is scored.  `t` must be non-decreasing per
  /// key across all calls.
  LinkState record_flap(std::uint64_t key, Duration t);

  /// The link's state at time `t`, rolling hold expiries forward (a
  /// quarantine whose hold elapsed advances to probation, a clean probation
  /// to healthy).  Idempotent: observing more often never changes the
  /// trajectory, only when transitions are noticed.
  [[nodiscard]] LinkState state(std::uint64_t key, Duration t);

  /// Decayed flap score at `t` (untracked keys score zero).
  [[nodiscard]] double score(std::uint64_t key, Duration t);

  /// Whether the consumer should climb the repair ladder for this link at
  /// `t` — false exactly while quarantined.
  [[nodiscard]] bool repair_allowed(std::uint64_t key, Duration t) {
    return state(key, t) != LinkState::kQuarantined;
  }

 private:
  struct Record {
    LinkState state{LinkState::kHealthy};
    double score{0.0};
    double last_s{0.0};       ///< time of the last score update
    double hold_until_s{0.0}; ///< quarantine/probation expiry
  };

  void advance(Record& r, double t_s);

  FlapDamperParams params_;
  std::map<std::uint64_t, Record> links_;
  FlapDamperStats stats_;
};

}  // namespace lp::fault
