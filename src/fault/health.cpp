#include "fault/health.hpp"

#include <cassert>

#include "lightpath/circuit.hpp"

namespace lp::fault {

using fabric::Direction;
using fabric::GlobalTile;

HealthMonitor::HealthMonitor(HealthMonitorParams params) : params_{params} {}

CircuitDiagnosis HealthMonitor::diagnose(const fabric::Fabric& fab,
                                         const FaultSet& faults,
                                         fabric::CircuitId id) const {
  const fabric::Circuit* c = fab.circuit(id);
  assert(c != nullptr);

  CircuitDiagnosis diag;
  diag.id = id;
  diag.src_dead = faults.chip_dead(c->src);
  diag.dst_dead = faults.chip_dead(c->dst);
  diag.dead_lasers = faults.dead_lasers(c->src);

  // Walk the light path: every hop traverses the exit switch of the tile it
  // leaves and the entry switch of the tile it reaches, and rides the
  // directed waveguide edge between them.
  for (const auto& seg : c->segments) {
    const fabric::Wafer& w = fab.wafer(seg.wafer);
    fabric::TileId at = seg.from;
    for (Direction d : seg.hops) {
      const GlobalTile here{seg.wafer, at};
      if (faults.mzi_stuck(here, d)) diag.hard_down = true;
      diag.fault_excess += faults.mzi_drift_excess(here, d);
      diag.fault_excess += faults.waveguide_excess(here, d);
      const auto n = w.neighbor(at, d);
      if (!n) break;  // malformed segment; nothing further to attribute
      const GlobalTile there{seg.wafer, *n};
      if (faults.mzi_stuck(there, opposite(d))) diag.hard_down = true;
      diag.fault_excess += faults.mzi_drift_excess(there, opposite(d));
      at = *n;
    }
  }
  if (const auto link = fab.fiber_link_of(id); link && faults.fiber_cut(*link)) {
    diag.hard_down = true;
  }

  // Re-close the budget at the faulted loss.
  const phys::LinkBudget budget{fab.config().budget};
  const phys::CircuitProfile profile = profile_of(*c, fab.config().wafer.tile);
  diag.budget = budget.evaluate_at_loss(budget.path_loss(profile) + diag.fault_excess,
                                        profile.mzi_traversals);
  diag.budget_failed =
      !diag.budget.closes || !params_.margin_acceptable(diag.budget.margin);

  if (diag.hard_down || diag.src_dead || diag.dst_dead) {
    diag.health = CircuitHealth::kDown;
  } else if (diag.budget_failed || diag.dead_lasers > 0) {
    diag.health = CircuitHealth::kDegraded;
  }
  return diag;
}

std::vector<CircuitDiagnosis> HealthMonitor::scan(const fabric::Fabric& fab,
                                                  const FaultSet& faults) const {
  std::vector<CircuitDiagnosis> unhealthy;
  for (fabric::CircuitId id : fab.circuit_ids()) {
    CircuitDiagnosis diag = diagnose(fab, faults, id);
    if (diag.health != CircuitHealth::kHealthy) unhealthy.push_back(diag);
  }
  return unhealthy;
}

routing::DegradedCircuit to_degraded(const CircuitDiagnosis& d) {
  routing::DegradedCircuit victim;
  victim.id = d.id;
  victim.hard_down = d.hard_down;
  victim.budget_failed = d.budget_failed;
  victim.src_dead = d.src_dead;
  victim.dst_dead = d.dst_dead;
  victim.dead_lasers = d.dead_lasers;
  return victim;
}

}  // namespace lp::fault
