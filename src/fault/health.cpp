#include "fault/health.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "lightpath/circuit.hpp"

namespace lp::fault {

using fabric::Direction;
using fabric::GlobalTile;

HealthMonitor::HealthMonitor(HealthMonitorParams params) : params_{params} {}

CircuitDiagnosis HealthMonitor::diagnose(const fabric::Fabric& fab,
                                         const FaultSet& faults,
                                         fabric::CircuitId id) const {
  const fabric::Circuit* c = fab.circuit(id);
  assert(c != nullptr);

  CircuitDiagnosis diag;
  diag.id = id;
  diag.src_dead = faults.chip_dead(c->src);
  diag.dst_dead = faults.chip_dead(c->dst);
  diag.dead_lasers = faults.dead_lasers(c->src);

  // Walk the light path: every hop traverses the exit switch of the tile it
  // leaves and the entry switch of the tile it reaches, and rides the
  // directed waveguide edge between them.
  for (const auto& seg : c->segments) {
    const fabric::Wafer& w = fab.wafer(seg.wafer);
    fabric::TileId at = seg.from;
    for (Direction d : seg.hops) {
      const GlobalTile here{seg.wafer, at};
      if (faults.mzi_stuck(here, d)) diag.hard_down = true;
      diag.fault_excess += faults.mzi_drift_excess(here, d);
      diag.fault_excess += faults.waveguide_excess(here, d);
      const auto n = w.neighbor(at, d);
      if (!n) break;  // malformed segment; nothing further to attribute
      const GlobalTile there{seg.wafer, *n};
      if (faults.mzi_stuck(there, opposite(d))) diag.hard_down = true;
      diag.fault_excess += faults.mzi_drift_excess(there, opposite(d));
      at = *n;
    }
  }
  if (const auto link = fab.fiber_link_of(id); link && faults.fiber_cut(*link)) {
    diag.hard_down = true;
  }

  // Re-close the budget at the faulted loss.
  const phys::LinkBudget budget{fab.config().budget};
  const phys::CircuitProfile profile = profile_of(*c, fab.config().wafer.tile);
  diag.budget = budget.evaluate_at_loss(budget.path_loss(profile) + diag.fault_excess,
                                        profile.mzi_traversals);
  diag.budget_failed =
      !diag.budget.closes || !params_.margin_acceptable(diag.budget.margin);

  if (diag.hard_down || diag.src_dead || diag.dst_dead) {
    diag.health = CircuitHealth::kDown;
  } else if (diag.budget_failed || diag.dead_lasers > 0) {
    diag.health = CircuitHealth::kDegraded;
  }
  return diag;
}

std::vector<CircuitDiagnosis> HealthMonitor::scan(const fabric::Fabric& fab,
                                                  const FaultSet& faults) const {
  std::vector<CircuitDiagnosis> unhealthy;
  for (fabric::CircuitId id : fab.circuit_ids()) {
    CircuitDiagnosis diag = diagnose(fab, faults, id);
    if (diag.health != CircuitHealth::kHealthy) unhealthy.push_back(diag);
  }
  return unhealthy;
}

FlapDamper::FlapDamper(FlapDamperParams params) : params_{params} {}

void FlapDamper::advance(Record& r, double t_s) {
  // Hold expiries fire at their fixed absolute times, not at observation
  // time: a quarantine that ended long before this query still enters (and
  // possibly completes) probation at the recorded instants, so the
  // trajectory is independent of how often the machine is observed.
  if (r.state == LinkState::kQuarantined && t_s >= r.hold_until_s) {
    r.state = LinkState::kProbation;
    r.hold_until_s += params_.probation_hold.to_seconds();
    ++stats_.probations;
  }
  if (r.state == LinkState::kProbation && t_s >= r.hold_until_s) {
    // A clean probation wipes the flap history.
    r.state = LinkState::kHealthy;
    r.score = 0.0;
  }
  if (t_s > r.last_s && r.score > 0.0) {
    const double half_life = std::max(params_.half_life_seconds, 1e-9);
    r.score *= std::exp2(-(t_s - r.last_s) / half_life);
  }
  r.last_s = std::max(r.last_s, t_s);
  if (r.state == LinkState::kSuspect && r.score < params_.suspect_threshold) {
    r.state = LinkState::kHealthy;
  }
}

LinkState FlapDamper::record_flap(std::uint64_t key, Duration t) {
  Record& r = links_[key];
  const double t_s = t.to_seconds();
  advance(r, t_s);
  ++stats_.flaps;
  r.score += params_.flap_penalty;
  if (r.state == LinkState::kQuarantined) {
    // Still flapping while quarantined: the repair the dampening suppressed,
    // and a fresh hold (the clock restarts until the link quiets down).
    ++stats_.suppressed_repairs;
    r.hold_until_s = t_s + params_.quarantine_hold.to_seconds();
    return r.state;
  }
  if (r.state == LinkState::kProbation) {
    // Relapse: probation forgives nothing — straight back to quarantine.
    r.state = LinkState::kQuarantined;
    r.hold_until_s = t_s + params_.quarantine_hold.to_seconds();
    ++stats_.relapses;
    ++stats_.quarantines;
    return r.state;
  }
  if (r.score >= params_.quarantine_threshold) {
    r.state = LinkState::kQuarantined;
    r.hold_until_s = t_s + params_.quarantine_hold.to_seconds();
    ++stats_.quarantines;
  } else if (r.score >= params_.suspect_threshold) {
    r.state = LinkState::kSuspect;
  }
  return r.state;
}

LinkState FlapDamper::state(std::uint64_t key, Duration t) {
  const auto it = links_.find(key);
  if (it == links_.end()) return LinkState::kHealthy;
  advance(it->second, t.to_seconds());
  return it->second.state;
}

double FlapDamper::score(std::uint64_t key, Duration t) {
  const auto it = links_.find(key);
  if (it == links_.end()) return 0.0;
  advance(it->second, t.to_seconds());
  return it->second.score;
}

routing::DegradedCircuit to_degraded(const CircuitDiagnosis& d) {
  routing::DegradedCircuit victim;
  victim.id = d.id;
  victim.hard_down = d.hard_down;
  victim.budget_failed = d.budget_failed;
  victim.src_dead = d.src_dead;
  victim.dst_dead = d.dst_dead;
  victim.dead_lasers = d.dead_lasers;
  return victim;
}

}  // namespace lp::fault
