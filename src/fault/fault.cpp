#include "fault/fault.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace lp::fault {

using fabric::Direction;
using fabric::GlobalTile;

// --- FaultSet -------------------------------------------------------------

void FaultSet::add(const Fault& f) {
  faults_.push_back(f);
  switch (f.kind) {
    case FaultKind::kMziStuck:
      stuck_[edge_key(f.tile, f.direction)] = f.stuck_port;
      break;
    case FaultKind::kMziDrift: {
      auto [it, inserted] =
          drift_.try_emplace(edge_key(f.tile, f.direction), f.excess_loss.value(),
                             f.tau_factor);
      if (!inserted) {
        it->second.first += f.excess_loss.value();
        it->second.second *= f.tau_factor;
      }
      break;
    }
    case FaultKind::kWaveguideLoss:
      wg_excess_[edge_key(f.tile, f.direction)] += f.excess_loss.value();
      break;
    case FaultKind::kFiberCut:
      cut_links_.insert(f.fiber_link);
      break;
    case FaultKind::kLaserLoss:
      lasers_[tile_key(f.tile)] += f.dead_lasers;
      break;
    case FaultKind::kChipDeath:
      dead_chips_.insert(tile_key(f.tile));
      break;
  }
}

void FaultSet::add_all(const std::vector<Fault>& faults) {
  for (const Fault& f : faults) add(f);
}

bool FaultSet::chip_dead(GlobalTile t) const {
  return dead_chips_.count(tile_key(t)) != 0;
}

bool FaultSet::mzi_stuck(GlobalTile t, Direction d) const {
  return stuck_.count(edge_key(t, d)) != 0;
}

Decibel FaultSet::mzi_drift_excess(GlobalTile t, Direction d) const {
  const auto it = drift_.find(edge_key(t, d));
  return it == drift_.end() ? Decibel::zero() : Decibel::db(it->second.first);
}

Decibel FaultSet::waveguide_excess(GlobalTile t, Direction d) const {
  const auto it = wg_excess_.find(edge_key(t, d));
  return it == wg_excess_.end() ? Decibel::zero() : Decibel::db(it->second);
}

std::uint32_t FaultSet::dead_lasers(GlobalTile t) const {
  const auto it = lasers_.find(tile_key(t));
  return it == lasers_.end() ? 0 : it->second;
}

bool FaultSet::fiber_cut(std::size_t link_index) const {
  return cut_links_.count(link_index) != 0;
}

void FaultSet::quarantine_edge(fabric::Fabric& fab, fabric::WaferId w,
                               fabric::TileId t, Direction d) {
  const std::uint32_t free = fab.wafer(w).lanes_free(t, d);
  if (free == 0) return;  // boundary edge, or already fully occupied/quarantined
  if (fab.wafer(w).reserve_lanes(t, d, free)) {
    reserved_edges_.push_back(ReservedEdge{w, t, d, free});
  }
}

void FaultSet::apply_to(fabric::Fabric& fab, Decibel quarantine_threshold) {
  if (applied_) return;

  // Cut bundles refuse new placements.
  for (std::size_t idx : cut_links_) {
    if (idx >= fab.fiber_links().size() || fab.fiber_links()[idx].down) continue;
    fab.set_fiber_link_down(idx, true);
    downed_links_.push_back(idx);
  }

  // A stuck switch blocks the edge in both directions: light can neither
  // leave the tile through it nor enter from the neighbor.
  for (const auto& [key, port] : stuck_) {
    const auto& [w, t, d8] = key;
    const auto d = static_cast<Direction>(d8);
    quarantine_edge(fab, w, t, d);
    if (const auto n = fab.wafer(w).neighbor(t, d)) {
      quarantine_edge(fab, w, *n, opposite(d));
    }
    auto& mzi = fab.wafer(w).tile(t).mzi(d);
    mzi_restore_.push_back(
        MziRestore{GlobalTile{w, t}, d, mzi.params().tau, mzi.target_port()});
    mzi.program(port, TimePoint{});
  }

  // Drifted switches stay routable but settle slowly.
  for (const auto& [key, sev] : drift_) {
    const auto& [w, t, d8] = key;
    const auto d = static_cast<Direction>(d8);
    auto& mzi = fab.wafer(w).tile(t).mzi(d);
    mzi_restore_.push_back(
        MziRestore{GlobalTile{w, t}, d, mzi.params().tau, mzi.target_port()});
    mzi.set_tau(mzi.params().tau * sev.second);
  }

  // Waveguide drift past the threshold is too lossy to route new circuits
  // over; below it, the edge stays open and the budget absorbs the hit.
  for (const auto& [key, excess_db] : wg_excess_) {
    if (excess_db < quarantine_threshold.value()) continue;
    const auto& [w, t, d8] = key;
    quarantine_edge(fab, w, t, static_cast<Direction>(d8));
  }

  // Dead chips cannot terminate circuits; park their remaining endpoint
  // wavelengths so planners pick other tiles.
  for (const auto& [w, t] : dead_chips_) {
    auto& tile = fab.wafer(w).tile(t);
    const std::uint32_t txf = tile.tx_free();
    const std::uint32_t rxf = tile.rx_free();
    if (txf > 0) tile.reserve_tx(txf);
    if (rxf > 0) tile.reserve_rx(rxf);
    if (txf > 0 || rxf > 0) {
      reserved_endpoints_.push_back(ReservedEndpoint{GlobalTile{w, t}, txf, rxf});
    }
  }

  // Dark lasers leave the free Tx pool (a retune must find *healthy* spares;
  // see RepairRung::kRetune).
  for (const auto& [key, k] : lasers_) {
    const auto& [w, t] = key;
    auto& tile = fab.wafer(w).tile(t);
    const std::uint32_t take = std::min(k, tile.tx_free());
    if (take == 0) continue;
    tile.reserve_tx(take);
    reserved_endpoints_.push_back(ReservedEndpoint{GlobalTile{w, t}, take, 0});
  }

  applied_ = true;
  // Quarantines and parked endpoints changed what is routable: any plan
  // memoized before the faults landed must not replay.
  fab.bump_epoch();
}

void FaultSet::revert(fabric::Fabric& fab) {
  if (!applied_) return;
  for (auto it = reserved_edges_.rbegin(); it != reserved_edges_.rend(); ++it) {
    fab.wafer(it->wafer).release_lanes(it->tile, it->dir, it->lanes);
  }
  for (auto it = reserved_endpoints_.rbegin(); it != reserved_endpoints_.rend(); ++it) {
    auto& tile = fab.wafer(it->tile.wafer).tile(it->tile.tile);
    if (it->tx > 0) tile.release_tx(it->tx);
    if (it->rx > 0) tile.release_rx(it->rx);
  }
  for (auto it = mzi_restore_.rbegin(); it != mzi_restore_.rend(); ++it) {
    auto& mzi = fab.wafer(it->tile.wafer).tile(it->tile.tile).mzi(it->dir);
    mzi.set_tau(it->tau);
    mzi.program(it->target, TimePoint{});
  }
  for (std::size_t idx : downed_links_) fab.set_fiber_link_down(idx, false);
  reserved_edges_.clear();
  reserved_endpoints_.clear();
  mzi_restore_.clear();
  downed_links_.clear();
  applied_ = false;
  // Restored capacity is just as plan-invalidating as lost capacity.
  fab.bump_epoch();
}

// --- FaultInjector --------------------------------------------------------

FaultInjector::FaultInjector(const fabric::Fabric& fab, FaultModelParams params,
                             std::uint64_t seed)
    : fab_{&fab}, params_{params}, seed_{seed} {}

std::vector<Fault> FaultInjector::sample_trial(std::uint64_t trial) const {
  Rng rng{util::task_seed(seed_, trial)};
  return sample(rng);
}

SampledFaults FaultInjector::sample_trial_with_domain(std::uint64_t trial) const {
  Rng rng{util::task_seed(seed_, trial)};
  return sample_with_domain(rng);
}

std::vector<Fault> FaultInjector::sample(Rng& rng) const {
  return sample_with_domain(rng).faults;
}

SampledFaults FaultInjector::sample_with_domain(Rng& rng) const {
  SampledFaults out;
  out.faults.push_back(sample_one(rng));
  if (rng.bernoulli(params_.burst_probability)) {
    const std::uint32_t lo = params_.burst_extra_min;
    const std::uint32_t hi = std::max(params_.burst_extra_max, lo);
    const std::uint32_t extra =
        lo + static_cast<std::uint32_t>(rng.uniform_index(hi - lo + 1));
    // The domain draw happens even when a single-wafer fabric forces the
    // per-wafer fallback, so the stream consumed per burst is fixed and the
    // same (seed, trial) yields the same severities on any geometry.
    const bool rack_power = rng.bernoulli(params_.rack_power_probability) &&
                            fab_->wafer_count() > 1;
    out.domain = rack_power ? BurstDomain::kRackPower : BurstDomain::kWafer;
    const fabric::WaferId burst_wafer = out.faults.front().tile.wafer;
    const auto wafers = static_cast<fabric::WaferId>(fab_->wafer_count());
    for (std::uint32_t i = 0; i < extra; ++i) {
      const fabric::WaferId confine =
          rack_power
              ? static_cast<fabric::WaferId>(
                    (burst_wafer + 1 + static_cast<fabric::WaferId>(i)) % wafers)
              : burst_wafer;
      out.faults.push_back(sample_one(rng, confine));
    }
  }
  return out;
}

Fault FaultInjector::sample_one(Rng& rng,
                                std::optional<fabric::WaferId> confine) const {
  // Fiber cuts (optionally confined to links touching one wafer).
  std::vector<std::size_t> cuttable;
  for (std::size_t i = 0; i < fab_->fiber_links().size(); ++i) {
    const fabric::FiberLink& link = fab_->fiber_links()[i];
    if (confine && link.a.wafer != *confine && link.b.wafer != *confine) continue;
    cuttable.push_back(i);
  }

  std::array<double, 6> weights{
      params_.mzi_stuck_weight,      params_.mzi_drift_weight,
      params_.waveguide_drift_weight, cuttable.empty() ? 0.0 : params_.fiber_cut_weight,
      params_.laser_loss_weight,     params_.chip_death_weight,
  };
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);

  auto kind = FaultKind::kWaveguideLoss;
  if (total > 0.0) {
    double u = rng.uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      u -= std::max(weights[i], 0.0);
      if (u < 0.0) {
        kind = static_cast<FaultKind>(i);
        break;
      }
    }
  }

  const auto pick_tile = [&] {
    const fabric::WaferId w =
        confine ? *confine
                : static_cast<fabric::WaferId>(rng.uniform_index(fab_->wafer_count()));
    const auto t =
        static_cast<fabric::TileId>(rng.uniform_index(fab_->wafer(w).tile_count()));
    return GlobalTile{w, t};
  };
  // A direction whose edge actually exists (falls back to the raw draw on a
  // degenerate 1x1 wafer).
  const auto pick_direction = [&](GlobalTile t) {
    const std::size_t d0 = rng.uniform_index(4);
    for (std::size_t i = 0; i < 4; ++i) {
      const auto d = static_cast<Direction>((d0 + i) % 4);
      if (fab_->wafer(t.wafer).neighbor(t.tile, d)) return d;
    }
    return static_cast<Direction>(d0);
  };
  const auto severity = [&](double mean, double sigma) {
    return Decibel::db(std::max(0.05, rng.normal(mean, sigma)));
  };

  Fault f;
  f.kind = kind;
  switch (kind) {
    case FaultKind::kMziStuck:
      f.tile = pick_tile();
      f.direction = pick_direction(f.tile);
      f.stuck_port = rng.uniform_index(2) == 0 ? phys::MziPort::kBar
                                               : phys::MziPort::kCross;
      break;
    case FaultKind::kMziDrift:
      f.tile = pick_tile();
      f.direction = pick_direction(f.tile);
      f.excess_loss =
          severity(params_.mzi_drift_excess_mean_db, params_.mzi_drift_excess_sigma_db);
      f.tau_factor = params_.mzi_drift_tau_factor;
      break;
    case FaultKind::kWaveguideLoss:
      f.tile = pick_tile();
      f.direction = pick_direction(f.tile);
      f.excess_loss =
          severity(params_.waveguide_drift_mean_db, params_.waveguide_drift_sigma_db);
      break;
    case FaultKind::kFiberCut: {
      f.fiber_link = cuttable[rng.uniform_index(cuttable.size())];
      f.tile = fab_->fiber_links()[f.fiber_link].a;
      break;
    }
    case FaultKind::kLaserLoss:
      f.tile = pick_tile();
      f.dead_lasers = 1 + static_cast<std::uint32_t>(
                              rng.uniform_index(std::max(params_.max_dead_lasers, 1u)));
      break;
    case FaultKind::kChipDeath:
      f.tile = pick_tile();
      break;
  }
  return f;
}

}  // namespace lp::fault
