// Gray (intermittent) fault processes.
//
// The permanent taxonomy in fault/fault.hpp models fail-stop: a component
// breaks and stays broken until repaired.  Real photonic fabrics also fail
// *gray* — an MZI drifts back and forth across its lock threshold, OCS port
// programming transiently times out, laser power sags and recovers — and a
// controller that treats every transition as a permanent fault thrashes the
// repair ladder (the regime LUMION's reconfiguration-based recovery
// targets).  This module provides the three intermittent processes:
//
//   * FlapTrace — a deterministic two-state Markov (up/down) dip train per
//     component: exponential holding times in each state, a geometric
//     number of dips per episode.  A trace is a pure function of the RNG
//     stream that drew it, so sweeps stay bit-identical at any thread
//     count.
//   * Transient MZI settle failures — a per-attempt oracle
//     (settle_transient_failure) for "the programming attempt timed out
//     and rolled back": a pure function of (seed, attempt ordinal) via
//     util::task_seed, wired into routing::EscalationOptions.
//   * BER-burst degradation — a window of pre-FEC error bursts whose
//     excess loss stays *under* the HealthMonitor's 0.5 dB margin (the
//     health check passes) yet multiplies delivered goodput by
//     ber_goodput_factor.  The fabric lies: only end-to-end accounting
//     sees it.
//
// FaultInjector (fault/fault.hpp) generates gray episodes alongside the
// permanent faults via sample_gray / sample_gray_trial, defined here.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lp::fault {

struct GrayModelParams {
  /// Two-state Markov holding times (exponential): expected time the link
  /// stays locked between dips, and the expected dip length.  Dips are
  /// short against the heartbeat period — that is what makes the failure
  /// gray: by the time a repair is programmed the link is often up again.
  double mean_up_seconds{5.0};
  double mean_down_seconds{0.002};
  /// After each dip the episode continues flapping with this probability
  /// (geometric dip count, expectation 1/(1-p)), capped at max_dips.
  double continue_probability{0.75};
  std::uint32_t max_dips{16};
  /// Probability one optical programming attempt transiently times out
  /// (OCS/settle transient) while the gray layer is active.
  double settle_failure_probability{0.2};
  /// Probability an episode carries a BER burst, its length, the excess
  /// loss (kept below the 0.5 dB health margin so diagnosis stays
  /// healthy), and the goodput multiplier while the burst is active.
  double ber_burst_probability{0.3};
  double mean_ber_burst_seconds{2.0};
  Decibel ber_excess{Decibel::db(0.3)};
  double ber_goodput_factor{0.6};
};

/// One component's up/down dip train, relative to the episode start.
/// toggles()[2k] is the k-th down-transition and toggles()[2k+1] the
/// re-lock that ends it; toggles()[0] == 0 (an episode begins with the
/// link dropping) and the sequence is strictly increasing with an even
/// length (every episode ends re-locked).
class FlapTrace {
 public:
  FlapTrace() = default;
  explicit FlapTrace(std::vector<double> toggles_s);

  [[nodiscard]] const std::vector<double>& toggles() const { return toggles_s_; }
  [[nodiscard]] std::size_t dips() const { return toggles_s_.size() / 2; }
  /// Whether the link is down `t_s` seconds after the episode start
  /// (half-open intervals: down on [down, up), so a query exactly at the
  /// re-lock instant reports up).
  [[nodiscard]] bool down_at(double t_s) const;
  [[nodiscard]] double dip_start(std::size_t k) const { return toggles_s_[2 * k]; }
  [[nodiscard]] double dip_seconds(std::size_t k) const {
    return toggles_s_[2 * k + 1] - toggles_s_[2 * k];
  }
  /// Total seconds spent down across every dip.
  [[nodiscard]] double down_seconds() const;
  /// Episode length (time of the final re-lock); zero for an empty trace.
  [[nodiscard]] double duration_seconds() const {
    return toggles_s_.empty() ? 0.0 : toggles_s_.back();
  }

 private:
  std::vector<double> toggles_s_;
};

/// Draws one dip train from `rng` (dip/hold lengths, geometric dip count).
/// Determinism: the trace is a pure function of the stream state, so a
/// caller seeding Rng{task_seed(seed, episode)} gets the same trace on
/// every worker.
[[nodiscard]] FlapTrace make_flap_trace(Rng& rng, const GrayModelParams& params);

/// One gray episode: a flapping component plus its riders.  The component
/// identifies a directed edge's switch/transceiver; which circuit that
/// degrades is the consumer's lookup, exactly as with permanent faults.
struct GrayEpisode {
  fabric::GlobalTile tile{};
  fabric::Direction direction{fabric::Direction::kNorth};
  FlapTrace trace;
  /// Per-attempt transient settle-failure probability while this episode's
  /// repairs run (copied from the model so consumers need no params).
  double settle_failure_probability{0.0};
  /// BER burst rider: active for ber_seconds from the episode start when
  /// ber_burst is set.  ber_excess stays under the health margin.
  bool ber_burst{false};
  double ber_seconds{0.0};
  Decibel ber_excess{Decibel::zero()};
  double ber_goodput_factor{1.0};
};

/// Transient settle-failure oracle: whether programming attempt `attempt`
/// times out, as a pure function of (seed, attempt) via util::task_seed —
/// the same attempt ordinal fails identically on every thread and climb.
[[nodiscard]] bool settle_transient_failure(std::uint64_t seed, std::uint64_t attempt,
                                            double probability);

/// Stable damper/bookkeeping key for a directed-edge component.
[[nodiscard]] std::uint64_t gray_component_key(fabric::GlobalTile t, fabric::Direction d);

}  // namespace lp::fault
