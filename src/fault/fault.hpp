// Component-level fault injection for the photonic fabric.
//
// The §4.2 failure argument (and core/failure_study) models one fault: a
// whole chip dies.  Real photonic fabrics degrade piecewise — MZIs stick at
// a port or drift slow, waveguide insertion loss creeps past the link
// budget, fibers get cut, lasers die — and recovery from that spectrum is
// the systems problem follow-on work (LUMION, MORPHLUX) centers on.  This
// module provides:
//
//   * `Fault` — one typed component fault with its physical severity;
//   * `FaultInjector` — deterministic sampling of fault sets per trial,
//     seeded via util::task_seed so Monte-Carlo sweeps are bit-identical at
//     any thread count, with correlated per-wafer bursts (a bad wafer or a
//     thermal event takes out several components at once);
//   * `FaultSet` — an overlay of active faults on a live fabric::Fabric:
//     pure queries for the health monitor, plus apply_to()/revert() side
//     effects (quarantining faulty lanes from the routing ledger, downing
//     cut fiber links, programming stuck MZIs, stretching drifted taus) so
//     the repair ladder's reroutes naturally avoid broken hardware.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "lightpath/fabric.hpp"
#include "phys/mzi.hpp"
#include "phys/wdm.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lp::fault {

enum class FaultKind : std::uint8_t {
  /// MZI switch frozen at one output port (phys/mzi): circuits whose path
  /// traverses the switch go dark.
  kMziStuck = 0,
  /// Thermo-optic drift: the switch still works but settles slowly and
  /// leaks excess loss per traversal (phys/mzi).
  kMziDrift = 1,
  /// Per-waveguide insertion-loss drift on one directed inter-tile edge
  /// (phys/loss): aging, contamination, or a hot neighbor.
  kWaveguideLoss = 2,
  /// A fiber bundle between wafers is cut (lightpath/fabric).
  kFiberCut = 3,
  /// Dead lasers at a tile's Tx block (phys/wdm): the circuit must re-lock
  /// onto healthy channels or move its source.
  kLaserLoss = 4,
  /// The stacked chip dies (§4.2's original fault).
  kChipDeath = 5,
};

[[nodiscard]] constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kMziStuck: return "mzi-stuck";
    case FaultKind::kMziDrift: return "mzi-drift";
    case FaultKind::kWaveguideLoss: return "waveguide-loss";
    case FaultKind::kFiberCut: return "fiber-cut";
    case FaultKind::kLaserLoss: return "laser-loss";
    case FaultKind::kChipDeath: return "chip-death";
  }
  return "?";
}

/// One component fault.  Which fields are meaningful depends on `kind`;
/// unused fields keep their defaults.
struct Fault {
  FaultKind kind{FaultKind::kWaveguideLoss};
  /// Faulted tile (all kinds; for kFiberCut, the link's `a` endpoint, kept
  /// so per-wafer burst confinement has a wafer to anchor on).
  fabric::GlobalTile tile{};
  /// Faulted switch / directed edge (kMziStuck, kMziDrift, kWaveguideLoss).
  fabric::Direction direction{fabric::Direction::kNorth};
  /// Index into Fabric::fiber_links() (kFiberCut).
  std::size_t fiber_link{0};
  /// Excess insertion loss: per edge for kWaveguideLoss, per traversal for
  /// kMziDrift.
  Decibel excess_loss{Decibel::zero()};
  /// Settle-time stretch factor (kMziDrift).
  double tau_factor{1.0};
  /// Dead Tx lasers at the tile (kLaserLoss).
  std::uint32_t dead_lasers{0};
  /// Port the switch froze at (kMziStuck).
  phys::MziPort stuck_port{phys::MziPort::kBar};
};

struct FaultModelParams {
  /// Relative draw weights per kind (need not sum to 1).
  double mzi_stuck_weight{1.0};
  double mzi_drift_weight{1.5};
  double waveguide_drift_weight{2.0};
  double fiber_cut_weight{0.75};
  double laser_loss_weight{1.5};
  double chip_death_weight{0.5};
  /// Correlated fault burst: with this probability a trial draws extra
  /// faults in a correlated failure domain (see rack_power_probability).
  double burst_probability{0.15};
  std::uint32_t burst_extra_min{1};
  std::uint32_t burst_extra_max{3};
  /// Given a burst fires, probability its domain is a rack-power event
  /// spanning servers — the extra faults cycle across the *other* wafers,
  /// so the burst is guaranteed cross-server whenever the fabric has more
  /// than one wafer.  Otherwise the burst is confined to the first fault's
  /// wafer (a bad wafer or a local thermal event).  On a single-wafer
  /// fabric every burst degenerates to the per-wafer domain.
  double rack_power_probability{0.25};
  /// Severity distributions (Gaussians truncated below at ~0).
  double waveguide_drift_mean_db{2.5};
  double waveguide_drift_sigma_db{1.0};
  double mzi_drift_excess_mean_db{0.9};
  double mzi_drift_excess_sigma_db{0.3};
  double mzi_drift_tau_factor{4.0};
  std::uint32_t max_dead_lasers{4};
  /// Waveguide drift at or above this is quarantined from new routes when
  /// the fault set is applied (below it the edge stays routable and the
  /// budget absorbs the hit).
  Decibel quarantine_threshold{Decibel::db(3.0)};
};

/// The set of faults currently active on one fabric, with the bookkeeping
/// to apply them to (and exactly revert them from) the live resource
/// ledger.
class FaultSet {
 public:
  FaultSet() = default;

  void add(const Fault& f);
  void add_all(const std::vector<Fault>& faults);

  [[nodiscard]] const std::vector<Fault>& faults() const { return faults_; }
  [[nodiscard]] bool empty() const { return faults_.empty(); }

  // --- queries (valid whether or not the set is applied) ---
  [[nodiscard]] bool chip_dead(fabric::GlobalTile t) const;
  [[nodiscard]] bool mzi_stuck(fabric::GlobalTile t, fabric::Direction d) const;
  /// Excess loss a traversal of this tile's switch picks up from drift.
  [[nodiscard]] Decibel mzi_drift_excess(fabric::GlobalTile t, fabric::Direction d) const;
  /// Excess insertion loss on the directed edge leaving `t` toward `d`.
  [[nodiscard]] Decibel waveguide_excess(fabric::GlobalTile t, fabric::Direction d) const;
  [[nodiscard]] std::uint32_t dead_lasers(fabric::GlobalTile t) const;
  [[nodiscard]] bool fiber_cut(std::size_t link_index) const;

  // --- side effects on the live fabric ---
  /// Applies the overlay: downs cut fiber links, quarantines the free lanes
  /// of edges with a stuck switch or with waveguide drift at or above
  /// `quarantine_threshold` (so routing avoids them), reserves the dead
  /// chips' endpoint wavelengths, programs stuck MZIs to their frozen port,
  /// and stretches drifted taus.  Established circuits keep their
  /// resources; diagnosing and repairing them is the health monitor's and
  /// the repair ladder's job.
  void apply_to(fabric::Fabric& fab, Decibel quarantine_threshold = Decibel::db(3.0));

  /// Exactly releases everything apply_to() reserved and restores fiber
  /// flags and MZI parameters.  (MZI phase transients are restored to the
  /// pre-fault target, not replayed — their trajectory is not load-bearing
  /// for budget math.)
  void revert(fabric::Fabric& fab);

  [[nodiscard]] bool applied() const { return applied_; }

 private:
  using EdgeKey = std::tuple<fabric::WaferId, fabric::TileId, std::uint8_t>;
  using TileKey = std::tuple<fabric::WaferId, fabric::TileId>;

  static EdgeKey edge_key(fabric::GlobalTile t, fabric::Direction d) {
    return {t.wafer, t.tile, static_cast<std::uint8_t>(d)};
  }
  static TileKey tile_key(fabric::GlobalTile t) { return {t.wafer, t.tile}; }

  void quarantine_edge(fabric::Fabric& fab, fabric::WaferId w, fabric::TileId t,
                       fabric::Direction d);

  std::vector<Fault> faults_;
  std::map<EdgeKey, phys::MziPort> stuck_;
  std::map<EdgeKey, std::pair<double, double>> drift_;  ///< excess dB, tau factor
  std::map<EdgeKey, double> wg_excess_;
  std::map<TileKey, std::uint32_t> lasers_;
  std::set<TileKey> dead_chips_;
  std::set<std::size_t> cut_links_;

  // apply_to() bookkeeping for exact revert.
  struct ReservedEdge {
    fabric::WaferId wafer{};
    fabric::TileId tile{};
    fabric::Direction dir{};
    std::uint32_t lanes{};
  };
  struct ReservedEndpoint {
    fabric::GlobalTile tile{};
    std::uint32_t tx{};
    std::uint32_t rx{};
  };
  struct MziRestore {
    fabric::GlobalTile tile{};
    fabric::Direction dir{};
    Duration tau{};
    phys::MziPort target{};
  };
  std::vector<ReservedEdge> reserved_edges_;
  std::vector<ReservedEndpoint> reserved_endpoints_;
  std::vector<MziRestore> mzi_restore_;
  std::vector<std::size_t> downed_links_;
  bool applied_{false};
};

/// The correlated failure domain a sampled trial drew.
enum class BurstDomain : std::uint8_t {
  kNone = 0,       ///< no burst: a single independent fault
  kWafer = 1,      ///< burst confined to the first fault's wafer (server)
  kRackPower = 2,  ///< rack-power burst spanning wafers (cross-server)
};

[[nodiscard]] constexpr const char* to_string(BurstDomain d) {
  switch (d) {
    case BurstDomain::kNone: return "none";
    case BurstDomain::kWafer: return "wafer";
    case BurstDomain::kRackPower: return "rack-power";
  }
  return "?";
}

/// One trial's faults plus the correlated domain that produced them.
struct SampledFaults {
  std::vector<Fault> faults;
  BurstDomain domain{BurstDomain::kNone};
};

// Gray (intermittent) fault processes — see fault/gray.hpp.
struct GrayModelParams;
struct GrayEpisode;

/// Deterministic fault sampling against one fabric's geometry.
class FaultInjector {
 public:
  explicit FaultInjector(const fabric::Fabric& fab, FaultModelParams params = {},
                         std::uint64_t seed = 0xfa57);

  [[nodiscard]] const FaultModelParams& params() const { return params_; }

  /// The fault set of trial `trial`: a pure function of (seed, trial) via
  /// util::task_seed, so a parallel sweep draws identical faults no matter
  /// which worker evaluates the trial.
  [[nodiscard]] std::vector<Fault> sample_trial(std::uint64_t trial) const;

  /// Like sample_trial, but reporting the correlated domain drawn.
  [[nodiscard]] SampledFaults sample_trial_with_domain(std::uint64_t trial) const;

  /// Draws one trial's faults (first fault + optional correlated burst)
  /// from an external stream.
  [[nodiscard]] std::vector<Fault> sample(Rng& rng) const;

  /// Draws one trial's faults and the burst domain.  When the burst is
  /// kWafer the extras are confined to the first fault's wafer; when it is
  /// kRackPower, extra fault i is confined to wafer (w0 + 1 + i) mod
  /// wafer_count — a rack-power event sweeping across servers.
  [[nodiscard]] SampledFaults sample_with_domain(Rng& rng) const;

  /// Draws a single fault; `confine` restricts tile selection to a wafer
  /// (burst correlation).
  [[nodiscard]] Fault sample_one(Rng& rng,
                                 std::optional<fabric::WaferId> confine = {}) const;

  // --- gray (intermittent) episodes, alongside the permanent faults ---
  // Defined in fault/gray.cpp; include fault/gray.hpp for the types.

  /// Draws one gray episode (flap trace + transient-settle/BER riders) on a
  /// uniformly drawn directed-edge component.
  [[nodiscard]] GrayEpisode sample_gray(Rng& rng, const GrayModelParams& params) const;

  /// Like sample_gray but with the flapping component pinned by the caller
  /// (e.g. a ring edge's source transceiver).
  [[nodiscard]] GrayEpisode sample_gray_at(Rng& rng, const GrayModelParams& params,
                                           fabric::GlobalTile tile,
                                           fabric::Direction direction) const;

  /// Episode for gray trial `trial`: a pure function of (seed, trial) on a
  /// stream family distinct from sample_trial's.
  [[nodiscard]] GrayEpisode sample_gray_trial(std::uint64_t trial,
                                              const GrayModelParams& params) const;

 private:
  const fabric::Fabric* fab_;
  FaultModelParams params_;
  std::uint64_t seed_;
};

}  // namespace lp::fault
