#include "fault/gray.hpp"

#include <algorithm>
#include <cassert>

#include "util/parallel.hpp"

namespace lp::fault {

using fabric::Direction;
using fabric::GlobalTile;

FlapTrace::FlapTrace(std::vector<double> toggles_s) : toggles_s_{std::move(toggles_s)} {
  assert(toggles_s_.size() % 2 == 0);
  assert(std::is_sorted(toggles_s_.begin(), toggles_s_.end()));
}

bool FlapTrace::down_at(double t_s) const {
  // The index of the first toggle strictly after t_s has odd parity exactly
  // when t_s sits inside a [down, up) interval.
  const auto it = std::upper_bound(toggles_s_.begin(), toggles_s_.end(), t_s);
  return (it - toggles_s_.begin()) % 2 == 1;
}

double FlapTrace::down_seconds() const {
  double total = 0.0;
  for (std::size_t k = 0; k < dips(); ++k) total += dip_seconds(k);
  return total;
}

FlapTrace make_flap_trace(Rng& rng, const GrayModelParams& params) {
  std::vector<double> toggles;
  const double down_rate = 1.0 / std::max(params.mean_down_seconds, 1e-9);
  const double up_rate = 1.0 / std::max(params.mean_up_seconds, 1e-9);
  double t = 0.0;
  const std::uint32_t cap = std::max<std::uint32_t>(params.max_dips, 1);
  for (std::uint32_t dip = 0; dip < cap; ++dip) {
    toggles.push_back(t);  // down-transition
    t += rng.exponential(down_rate);
    toggles.push_back(t);  // re-lock
    if (!rng.bernoulli(params.continue_probability)) break;
    t += rng.exponential(up_rate);
  }
  return FlapTrace{std::move(toggles)};
}

bool settle_transient_failure(std::uint64_t seed, std::uint64_t attempt,
                              double probability) {
  if (probability <= 0.0) return false;
  Rng rng{util::task_seed(seed, attempt)};
  return rng.bernoulli(probability);
}

std::uint64_t gray_component_key(GlobalTile t, Direction d) {
  std::uint64_t h = fabric::hash_mix(0, t.wafer);
  h = fabric::hash_mix(h, t.tile);
  return fabric::hash_mix(h, static_cast<std::uint64_t>(d));
}

// --- FaultInjector gray sampling (declared in fault/fault.hpp) ------------

GrayEpisode FaultInjector::sample_gray(Rng& rng, const GrayModelParams& params) const {
  // Component pick mirrors sample_one's tile/direction idiom: uniform tile,
  // then a direction whose edge exists (raw draw on a degenerate wafer).
  const auto w = static_cast<fabric::WaferId>(rng.uniform_index(fab_->wafer_count()));
  const auto t =
      static_cast<fabric::TileId>(rng.uniform_index(fab_->wafer(w).tile_count()));
  const GlobalTile tile{w, t};
  const std::size_t d0 = rng.uniform_index(4);
  Direction dir = static_cast<Direction>(d0);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto d = static_cast<Direction>((d0 + i) % 4);
    if (fab_->wafer(w).neighbor(t, d)) {
      dir = d;
      break;
    }
  }
  return sample_gray_at(rng, params, tile, dir);
}

GrayEpisode FaultInjector::sample_gray_at(Rng& rng, const GrayModelParams& params,
                                          fabric::GlobalTile tile,
                                          fabric::Direction direction) const {
  GrayEpisode ep;
  ep.tile = tile;
  ep.direction = direction;
  ep.trace = make_flap_trace(rng, params);
  ep.settle_failure_probability = params.settle_failure_probability;
  // The BER rider draws unconditionally so an episode's trace is identical
  // whether or not the burst fires (adding a rider never perturbs the dips).
  const bool burst = rng.bernoulli(params.ber_burst_probability);
  const double burst_s =
      rng.exponential(1.0 / std::max(params.mean_ber_burst_seconds, 1e-9));
  if (burst) {
    ep.ber_burst = true;
    ep.ber_seconds = burst_s;
    ep.ber_excess = params.ber_excess;
    ep.ber_goodput_factor = params.ber_goodput_factor;
  }
  return ep;
}

GrayEpisode FaultInjector::sample_gray_trial(std::uint64_t trial,
                                             const GrayModelParams& params) const {
  // A distinct stream family from sample_trial's so gray and permanent
  // draws can never alias for the same trial index.
  Rng rng{util::task_seed(seed_ ^ 0x6772617966617ULL, trial)};
  return sample_gray(rng, params);
}

}  // namespace lp::fault
