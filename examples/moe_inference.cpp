// Mixture-of-Experts inference over the photonic fabric — the §5 dynamic-
// traffic challenge.
//
// Each inference step, the gating function scatters tokens to experts on
// other chips: a fresh, skewed all-to-all.  We generate gated demand,
// compare the electrical torus against per-round optical circuits, and use
// the decentralized reservation protocol to set up one round's circuits
// without a central controller.
//
//   $ ./build/examples/moe_inference [tokens_per_chip]
#include <cstdio>
#include <cstdlib>

#include "collective/alltoall.hpp"
#include "routing/decentralized.hpp"
#include "sim/flow_sim.hpp"
#include "topo/slice.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lp;
  const std::size_t tokens = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2048;

  topo::TpuCluster cluster;
  const topo::Slice slice{0, 0, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 4, 1}}};
  coll::CostParams params;
  Rng rng{7};

  std::printf("MoE inference step: 16 chips, %zu tokens/chip, 2 experts/token, 16 KiB/token\n\n",
              tokens);
  const auto demand = coll::moe_gating_demand(16, tokens, 2, DataSize::kib(16), rng);

  // Skew report: gating is random, so per-destination load varies.
  DataSize max_pair = DataSize::zero(), total = DataSize::zero();
  for (std::size_t s = 0; s < 16; ++s) {
    for (std::size_t d = 0; d < 16; ++d) {
      total += demand.at(s, d);
      if (demand.at(s, d) > max_pair) max_pair = demand.at(s, d);
    }
  }
  std::printf("gated traffic: %.1f MiB total, hottest pair %.1f MiB\n", total.to_mib(),
              max_pair.to_mib());

  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  const auto elec = fsim.run(coll::build_all_to_all_schedule(
      cluster, slice, demand, coll::Interconnect::kElectrical, params));
  const auto opt = fsim.run(coll::build_all_to_all_schedule(
      cluster, slice, demand, coll::Interconnect::kOptical, params));
  std::printf("electrical all-to-all: %.2f us (peak link load %u)\n",
              elec.total.to_micros(), elec.peak_link_load);
  std::printf("optical all-to-all:    %.2f us (of which %.2f us reconfiguration)\n\n",
              opt.total.to_micros(), opt.reconfig_time.to_micros());

  // One round's circuits, set up without a central controller.
  fabric::Fabric fab;
  std::vector<routing::Demand> round;
  for (fabric::TileId j = 0; j < 16; ++j) {
    round.push_back(routing::Demand{fabric::GlobalTile{0, j},
                                    fabric::GlobalTile{0, (j + 5) % 16}, 4});
  }
  const auto report = routing::run_decentralized_setup(fab, round);
  std::size_t ok = 0;
  for (const auto& o : report.per_demand) ok += o.success ? 1 : 0;
  std::printf("decentralized setup of round 5's 16 circuits: %zu/16 established,\n", ok);
  std::printf("makespan %.2f us (%llu messages, no controller involved)\n",
              report.makespan.to_micros(),
              static_cast<unsigned long long>(report.total_messages));
  std::printf("centralized controller would take %.2f us for the same burst\n",
              routing::centralized_setup_latency(fab, round.size()).to_micros());
  return 0;
}
