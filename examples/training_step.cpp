// Data-parallel training step on a slice: how much time do accelerators
// spend idle waiting for gradients (§2's motivation), and what does the
// collective's execution timeline look like?
//
//   $ ./build/examples/training_step [bucket_mib] [trace.csv]
//
// When given a second argument, writes the flow-level timeline of one
// optical AllReduce bucket to a CSV you can plot.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "collective/extra_schedules.hpp"
#include "core/training_sim.hpp"
#include "sim/flow_sim.hpp"
#include "sim/trace.hpp"
#include "topo/slice.hpp"

int main(int argc, char** argv) {
  using namespace lp;
  const double mib = argc > 1 ? std::atof(argv[1]) : 128.0;

  const topo::Shape rack{{4, 4, 4}};
  const topo::Slice slice{0, 0, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}}};
  coll::CostParams params;
  core::TrainingConfig config;
  config.bucket_bytes = DataSize::mib(mib);

  std::printf("training step: Slice-1 (8 chips), %u buckets x %.0f MiB gradients,\n",
              config.buckets, mib);
  std::printf("%.1f ms compute per bucket\n\n", config.compute_per_bucket.to_millis());

  for (const auto interconnect :
       {coll::Interconnect::kElectrical, coll::Interconnect::kOptical}) {
    const auto report =
        core::simulate_training_iteration(slice, rack, config, interconnect, params);
    std::printf("%-11s iteration %7.2f ms | comm %7.2f ms | exposed %7.2f ms | idle %5.1f%%\n",
                interconnect == coll::Interconnect::kElectrical ? "electrical" : "optical",
                report.iteration.to_millis(), report.comm_time.to_millis(),
                report.exposed_comm.to_millis(), 100.0 * report.idle_fraction());
  }

  // Timeline of one optical AllReduce bucket.
  topo::TpuCluster cluster;
  const auto schedule = coll::build_all_reduce_schedule(
      cluster, slice, config.bucket_bytes, coll::Interconnect::kOptical, params);
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  sim::TimelineTrace trace;
  const auto run = fsim.run(schedule, &trace);
  std::printf("\none optical AllReduce bucket: %.2f ms over %zu timeline events\n",
              run.total.to_millis(), trace.size());

  if (argc > 2) {
    std::ofstream out{argv[2]};
    out << trace.to_csv();
    std::printf("timeline written to %s\n", argv[2]);
  } else {
    std::printf("(pass a CSV path as the second argument to export the timeline)\n");
  }
  return 0;
}
