// AllReduce with bandwidth redirection — the paper's §4.1 scenario, end to
// end.
//
// A tenant holds Slice-1 (4x2x1) of a TPUv4-style rack.  On the electrical
// torus its collective can only use one dimension's bandwidth; on the
// photonic rack the BandwidthManager programs MZI circuits that redirect
// the chip's whole egress onto the active ring.  We run both, with the
// flow-level simulator as the ground truth.
//
//   $ ./build/examples/allreduce_redirection [buffer_mib]
#include <cstdio>
#include <cstdlib>

#include "collective/schedule.hpp"
#include "core/bandwidth_manager.hpp"
#include "core/photonic_rack.hpp"
#include "sim/flow_sim.hpp"
#include "topo/slice.hpp"

int main(int argc, char** argv) {
  using namespace lp;
  const double mib = argc > 1 ? std::atof(argv[1]) : 256.0;
  const DataSize n = DataSize::mib(mib);

  // The Figure 5 rack: four tenants pack the 4x4x4 torus.
  topo::TpuCluster cluster;
  topo::SliceAllocator alloc{cluster};
  const auto packing = topo::pack_figure5(alloc);
  if (!packing) {
    std::printf("packing failed: %s\n", packing.error().message.c_str());
    return 1;
  }
  const topo::Slice* slice = alloc.slice(packing.value().slice1);
  std::printf("Slice-1: %d chips (4x2x1) in a 4x4x4 rack; AllReduce of %.0f MiB\n",
              slice->chip_count(), n.to_mib());

  coll::CostParams params;  // B = 300 GB/s, alpha = 1 us, r = 3.7 us
  const auto plan = coll::build_plan(*slice, cluster.config().rack_shape);
  std::printf("plan: %zu stage(s); first stage: %s ring of %d chips\n\n",
              plan.stages.size(), plan.stages[0].snake ? "serpentine" : "dimension",
              plan.stages[0].ring_size);

  // Analytic costs (AllReduce = ReduceScatter + AllGather).
  const auto elec =
      coll::all_reduce_cost(plan, n, coll::Interconnect::kElectrical, params);
  const auto opt = coll::all_reduce_cost(plan, n, coll::Interconnect::kOptical, params);
  std::printf("analytic: electrical %.3f ms, optical %.3f ms (%.2fx speedup)\n",
              elec.total(params).to_millis(), opt.total(params).to_millis(),
              elec.total(params) / opt.total(params));

  // Measured: run the schedules through the flow simulator.
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  const auto elec_run = fsim.run(coll::build_reduce_scatter_schedule(
      cluster, *slice, n, coll::Interconnect::kElectrical, params));
  const auto opt_run = fsim.run(coll::build_reduce_scatter_schedule(
      cluster, *slice, n, coll::Interconnect::kOptical, params));
  std::printf("measured (ReduceScatter half): electrical %.3f ms, optical %.3f ms\n\n",
              elec_run.total.to_millis(), opt_run.total.to_millis());

  // Actually provision the redirected circuits on the photonic rack.
  core::PhotonicRack rack{cluster, /*rack=*/0};
  core::BandwidthManager manager{rack};
  auto stages = manager.provision_all(*slice, plan);
  if (!stages) {
    std::printf("provisioning failed: %s\n", stages.error().message.c_str());
    return 1;
  }
  for (std::size_t i = 0; i < stages.value().size(); ++i) {
    const auto& st = stages.value()[i];
    std::printf("stage %zu: %zu circuits x %u lambdas = %.0f GB/s per ring edge, "
                "programmed in %.2f us\n",
                i, st.circuits.size(), st.wavelengths, st.edge_rate.to_gBps(),
                st.reconfig_latency.to_micros());
  }

  // Physical-layer check on the provisioned circuits.
  int closed = 0, total = 0;
  for (const auto& st : stages.value()) {
    for (fabric::CircuitId id : st.circuits) {
      ++total;
      if (rack.fabric().circuit_budget(id).closes) ++closed;
    }
  }
  std::printf("link budgets: %d/%d circuits close at 224 Gbps per lambda\n", closed,
              total);
  for (const auto& st : stages.value()) manager.release_stage(st);
  return 0;
}
