// Failure recovery — the paper's §4.2 scenario, end to end.
//
// A chip fails inside a tenant's slice.  We try all three responses:
// today's rack-granularity migration, a best-effort in-place electrical
// repair (Figure 6: generally impossible without congestion), and optical
// repair over LIGHTPATH (Figure 7: wire a spare into the broken rings with
// dedicated circuits).
//
//   $ ./build/examples/failure_recovery
#include <cstdio>

#include "core/blast_radius.hpp"
#include "core/photonic_rack.hpp"
#include "topo/slice.hpp"

namespace {

const char* policy_name(lp::core::FailurePolicy p) {
  switch (p) {
    case lp::core::FailurePolicy::kRackMigration: return "rack migration";
    case lp::core::FailurePolicy::kElectricalRepair: return "electrical in-place";
    case lp::core::FailurePolicy::kOpticalRepair: return "optical repair";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace lp;

  std::printf("scenario: Slice-4 (4x4x2), Slice-3 (4x4x1), Slice-1 (4x2x1) packed in\n");
  std::printf("one 4x4x4 rack; 8 chips free; chip (1,1,2) in Slice-3 fails.\n\n");

  for (const auto policy :
       {core::FailurePolicy::kRackMigration, core::FailurePolicy::kElectricalRepair,
        core::FailurePolicy::kOpticalRepair}) {
    // Fresh world per policy.
    topo::TpuCluster cluster;
    topo::SliceAllocator alloc{cluster};
    (void)alloc.allocate_at(0, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 4, 2}});
    (void)alloc.allocate_at(0, topo::Coord{{0, 0, 2}}, topo::Shape{{4, 4, 1}});
    (void)alloc.allocate_at(0, topo::Coord{{0, 0, 3}}, topo::Shape{{4, 2, 1}});
    const topo::TpuId failed = cluster.chip_at(0, topo::Coord{{1, 1, 2}});

    core::PhotonicRack rack{cluster, 0};
    const auto impact = core::assess_failure(
        cluster, alloc, failed, policy, {},
        policy == core::FailurePolicy::kOpticalRepair ? &rack : nullptr);

    char recovery[32];
    if (impact.recovery_time.to_seconds() >= 1.0) {
      std::snprintf(recovery, sizeof(recovery), "%.0f s", impact.recovery_time.to_seconds());
    } else {
      std::snprintf(recovery, sizeof(recovery), "%.2f us", impact.recovery_time.to_micros());
    }
    std::printf("%-20s feasible=%-3s blast radius=%2d chips  recovery=%s%s\n",
                policy_name(policy), impact.feasible ? "yes" : "no",
                impact.blast_radius_chips, recovery,
                impact.congestion_free ? "" : "  (would congest)");
  }

  std::printf("\nwhy electrical repair fails: every path from the broken ring's\n");
  std::printf("neighbors to a spare must either transit another tenant's chips\n");
  std::printf("(forwarding steals their fully-subscribed link bandwidth) or share a\n");
  std::printf("directed link already carrying a ring — the paper's Figure 6a.\n");
  std::printf("optical repair instead gives each (neighbor, spare) pair its own\n");
  std::printf("waveguides end to end, so nothing is shared — Figure 7.\n");
  return 0;
}
