// Quickstart: stand up a LIGHTPATH wafer, connect two accelerators with an
// on-demand optical circuit, and inspect what the fabric gave you.
//
//   $ ./build/examples/quickstart
//
// This touches the three core ideas of the library: circuits are
// established dynamically (Fabric::connect), capacity is wavelengths x
// 224 Gbps, and every circuit carries a physical-layer budget you can
// check before trusting it.
#include <cstdio>

#include "lightpath/fabric.hpp"

int main() {
  using namespace lp;

  // A fabric with one 32-tile wafer (the paper's prototype scale).  One
  // accelerator stacks on each tile.
  fabric::Fabric fab;
  std::printf("wafer: %d x %d tiles, %u accelerators, %.0f Gbps per wavelength\n",
              fab.wafer(0).rows(), fab.wafer(0).cols(), fab.wafer(0).tile_count(),
              fab.per_wavelength_rate().to_gbps());

  // Connect accelerator 0 to accelerator 27 with 8 of its 16 wavelengths.
  const fabric::GlobalTile a{0, 0};
  const fabric::GlobalTile b{0, 27};
  auto circuit = fab.connect(a, b, /*wavelengths=*/8);
  if (!circuit) {
    std::printf("connect failed: %s\n", circuit.error().message.c_str());
    return 1;
  }

  const fabric::Circuit* c = fab.circuit(circuit.value());
  std::printf("\ncircuit %llu established: tile %u -> tile %u\n",
              static_cast<unsigned long long>(circuit.value()), a.tile, b.tile);
  std::printf("  bandwidth:       %.0f Gbps (%.0f GB/s)\n",
              fab.circuit_bandwidth(circuit.value()).to_gbps(),
              fab.circuit_bandwidth(circuit.value()).to_gBps());
  std::printf("  waveguide hops:  %zu (%u turns, %u MZIs programmed)\n",
              c->waveguide_hop_count(), c->turn_count(), c->mzis_to_program());
  std::printf("  reconfig time:   %.2f us\n",
              fab.reconfig().batch_latency(c->mzis_to_program()).to_micros());

  const auto budget = fab.circuit_budget(circuit.value());
  std::printf("  link budget:     %.2f dB loss, %.1f dBm received, pre-FEC BER %.2e -> %s\n",
              budget.total_loss.value(), budget.received.to_dbm(), budget.pre_fec_ber,
              budget.closes ? "closes" : "FAILS");

  // Redirect: tear it down and aim the full egress somewhere else.
  fab.disconnect(circuit.value());
  auto redirected = fab.connect(a, fabric::GlobalTile{0, 4}, /*wavelengths=*/16);
  if (redirected) {
    std::printf("\nredirected all 16 wavelengths to tile 4: %.0f GB/s on demand\n",
                fab.circuit_bandwidth(redirected.value()).to_gBps());
    fab.disconnect(redirected.value());
  }
  std::printf("\ntotal reconfigurations this session: %llu batches, %.1f us switching\n",
              static_cast<unsigned long long>(fab.reconfig().batches()),
              fab.reconfig().total_time().to_micros());
  return 0;
}
