// Rack-scale topology engineering: join TPU cubes through OCSes into a
// larger torus, then compare collective performance of a multi-rack slice
// on the electrical fabric vs server-scale photonics.
//
//   $ ./build/examples/rack_scale_topology
#include <cstdio>

#include "collective/cost_model.hpp"
#include "collective/extra_schedules.hpp"
#include "sim/flow_sim.hpp"
#include "topo/multirack.hpp"
#include "topo/slice.hpp"

int main() {
  using namespace lp;

  // Join two 4x4x4 cubes along Z (Figure 5a's "larger tori").
  topo::OcsBank bank;
  auto joined = topo::JoinedTorus::join(topo::ClusterConfig{}, /*racks=*/2,
                                        /*dim=*/2, bank);
  if (!joined) {
    std::printf("join failed: %s\n", joined.error().message.c_str());
    return 1;
  }
  auto& torus = joined.value();
  std::printf("joined 2 racks into a %dx%dx%d torus (%d chips)\n",
              torus.cluster().config().rack_shape[0],
              torus.cluster().config().rack_shape[1],
              torus.cluster().config().rack_shape[2], torus.cluster().chips_per_rack());
  std::printf("OCS: %u port pairs, %.0f ms to re-mirror (vs 3.7 us per MZI batch)\n\n",
              torus.ocs_ports_used(), torus.join_latency().to_millis());

  // A tenant takes half the joined torus: 4x4x4 worth of chips shaped
  // 4x2x8 — full X and Z, half Y.
  topo::SliceAllocator alloc{torus.cluster()};
  const auto id = alloc.allocate_at(0, topo::Coord{{0, 0, 0}}, topo::Shape{{4, 2, 8}});
  if (!id) {
    std::printf("allocation failed: %s\n", id.error().message.c_str());
    return 1;
  }
  const topo::Slice* slice = alloc.slice(id.value());
  const auto usable = coll::usable_dims(*slice, torus.cluster().config().rack_shape);
  std::printf("slice 4x2x8 (64 chips): %zu of 3 dims ring-usable electrically\n",
              usable.size());

  const auto plan = coll::build_plan(*slice, torus.cluster().config().rack_shape);
  coll::CostParams params;
  const DataSize n = DataSize::gib(1);
  const sim::FlowSimulator fsim{torus.cluster().dim_bandwidth()};

  const auto elec = fsim.run(coll::build_all_reduce_schedule(
      torus.cluster(), *slice, n, coll::Interconnect::kElectrical, params));
  const auto opt = fsim.run(coll::build_all_reduce_schedule(
      torus.cluster(), *slice, n, coll::Interconnect::kOptical, params));
  std::printf("\nAllReduce of 1 GiB over the multi-rack slice:\n");
  std::printf("  electrical torus:     %.2f ms\n", elec.total.to_millis());
  std::printf("  photonic redirection: %.2f ms (%.2fx, %zu plan stages)\n",
              opt.total.to_millis(), elec.total / opt.total, plan.stages.size());

  // Broadcast the updated weights back out, pipelined.
  const auto bcast = fsim.run(coll::build_broadcast_schedule(
      torus.cluster(), *slice, n, /*chunks=*/32, coll::Interconnect::kOptical, params));
  std::printf("  pipelined optical broadcast of 1 GiB: %.2f ms\n",
              bcast.total.to_millis());
  return 0;
}
