#include <gtest/gtest.h>

#include "lightpath/circuit.hpp"
#include "lightpath/fabric.hpp"
#include "lightpath/reconfig.hpp"
#include "lightpath/tile.hpp"
#include "lightpath/wafer.hpp"

namespace lp::fabric {
namespace {

TEST(Tile, WavelengthReservation) {
  Tile tile;
  EXPECT_EQ(tile.tx_free(), 16u);
  EXPECT_TRUE(tile.reserve_tx(10));
  EXPECT_EQ(tile.tx_free(), 6u);
  EXPECT_FALSE(tile.reserve_tx(7));
  EXPECT_EQ(tile.tx_free(), 6u) << "failed reservation must not consume";
  tile.release_tx(4);
  EXPECT_EQ(tile.tx_free(), 10u);
  tile.release_tx(100);  // clamps
  EXPECT_EQ(tile.tx_free(), 16u);
}

TEST(Tile, RxIndependentOfTx) {
  Tile tile;
  EXPECT_TRUE(tile.reserve_tx(16));
  EXPECT_TRUE(tile.reserve_rx(16));
  EXPECT_FALSE(tile.reserve_rx(1));
}

TEST(Tile, WaveguideDensityMatchesPaper) {
  // 25 mm tile edge at 3 um pitch -> 8333 lanes per edge side; both axes
  // give "over 10,000 waveguides per tile" (Figure 4).
  const TileParams params;
  const std::uint32_t per_edge = waveguides_per_edge(params);
  EXPECT_GT(per_edge, 8000u);
  EXPECT_GT(2 * per_edge, 10000u);
}

TEST(Wafer, GeometryRoundTrip) {
  const Wafer wafer;
  EXPECT_EQ(wafer.tile_count(), 32u);
  for (TileId t = 0; t < wafer.tile_count(); ++t) {
    EXPECT_EQ(wafer.tile_at(wafer.coord_of(t)), t);
  }
}

TEST(Wafer, NeighborsRespectBoundary) {
  const Wafer wafer;  // 4 rows x 8 cols
  const TileId corner = wafer.tile_at(TileCoord{0, 0});
  EXPECT_FALSE(wafer.neighbor(corner, Direction::kNorth).has_value());
  EXPECT_FALSE(wafer.neighbor(corner, Direction::kWest).has_value());
  ASSERT_TRUE(wafer.neighbor(corner, Direction::kEast).has_value());
  EXPECT_EQ(*wafer.neighbor(corner, Direction::kEast), wafer.tile_at(TileCoord{0, 1}));
  ASSERT_TRUE(wafer.neighbor(corner, Direction::kSouth).has_value());
  EXPECT_EQ(*wafer.neighbor(corner, Direction::kSouth), wafer.tile_at(TileCoord{1, 0}));
}

TEST(Wafer, OppositeDirections) {
  EXPECT_EQ(opposite(Direction::kNorth), Direction::kSouth);
  EXPECT_EQ(opposite(Direction::kEast), Direction::kWest);
  EXPECT_EQ(opposite(Direction::kWest), Direction::kEast);
  EXPECT_EQ(opposite(Direction::kSouth), Direction::kNorth);
}

TEST(Wafer, LaneAccounting) {
  WaferParams params;
  params.lanes_per_edge = 10;
  Wafer wafer{params};
  const TileId t = wafer.tile_at(TileCoord{1, 1});
  EXPECT_EQ(wafer.lanes_free(t, Direction::kEast), 10u);
  EXPECT_TRUE(wafer.reserve_lanes(t, Direction::kEast, 7));
  EXPECT_EQ(wafer.lanes_free(t, Direction::kEast), 3u);
  EXPECT_FALSE(wafer.reserve_lanes(t, Direction::kEast, 4));
  wafer.release_lanes(t, Direction::kEast, 7);
  EXPECT_EQ(wafer.lanes_free(t, Direction::kEast), 10u);
}

TEST(Wafer, EdgeOffWaferHasNoLanes) {
  const Wafer wafer;
  const TileId corner = wafer.tile_at(TileCoord{0, 0});
  EXPECT_EQ(wafer.lanes_free(corner, Direction::kNorth), 0u);
  EXPECT_EQ(wafer.lanes_free(corner, Direction::kWest), 0u);
}

TEST(Wafer, ReservePathAtomicRollback) {
  WaferParams params;
  params.lanes_per_edge = 4;
  Wafer wafer{params};
  const TileId start = wafer.tile_at(TileCoord{0, 0});
  // Exhaust the second hop's edge.
  const TileId second = wafer.tile_at(TileCoord{0, 1});
  EXPECT_TRUE(wafer.reserve_lanes(second, Direction::kEast, 4));

  const std::vector<Direction> path{Direction::kEast, Direction::kEast};
  const auto result = wafer.reserve_path(start, path, 1);
  EXPECT_FALSE(result.ok());
  // First hop must have been rolled back.
  EXPECT_EQ(wafer.lanes_used(start, Direction::kEast), 0u);
}

TEST(Wafer, PathCapacityAndTiles) {
  const Wafer wafer;
  const TileId start = wafer.tile_at(TileCoord{0, 0});
  const std::vector<Direction> path{Direction::kEast, Direction::kSouth,
                                    Direction::kEast};
  EXPECT_TRUE(wafer.path_has_capacity(start, path, 1));
  const auto tiles = wafer.tiles_on_path(start, path);
  ASSERT_EQ(tiles.size(), 4u);
  EXPECT_EQ(tiles.front(), start);
  EXPECT_EQ(tiles.back(), wafer.tile_at(TileCoord{1, 2}));
}

TEST(Circuit, HopAndTurnCounting) {
  Circuit c;
  c.segments.push_back(Circuit::Segment{
      0, 0, {Direction::kEast, Direction::kEast, Direction::kSouth, Direction::kEast}});
  EXPECT_EQ(c.waveguide_hop_count(), 4u);
  EXPECT_EQ(c.turn_count(), 2u);
  // 5 tiles on the segment + 2 turns.
  EXPECT_EQ(c.mzis_to_program(), 7u);
}

TEST(Circuit, ProfileConventions) {
  Circuit c;
  c.segments.push_back(
      Circuit::Segment{0, 0, {Direction::kEast, Direction::kEast, Direction::kSouth}});
  const TileParams tile;
  const phys::CircuitProfile p = profile_of(c, tile);
  EXPECT_EQ(p.stitches, 3u);
  EXPECT_NEAR(p.waveguide_length.to_millimeters(), 75.0, 1e-9);
  EXPECT_EQ(p.crossings, 2u + 1u);  // 2 pass-throughs + 1 turn
  EXPECT_EQ(p.fiber_hops, 0u);
}

TEST(Circuit, BandwidthScalesWithWavelengths) {
  Circuit c;
  c.wavelengths = 4;
  EXPECT_NEAR(c.bandwidth(Bandwidth::gbps(224)).to_gbps(), 896.0, 1e-9);
}

TEST(Reconfig, DefaultLatencyNearPaperValue) {
  const ReconfigController ctl;
  // Settle dominates: ~3.69 us + n * 20 ns.
  EXPECT_NEAR(ctl.batch_latency(1).to_micros(), 3.71, 0.05);
  EXPECT_NEAR(ctl.settle_latency().to_micros(), 3.69, 0.02);
  EXPECT_EQ(ctl.batch_latency(0), Duration::zero());
}

TEST(Reconfig, StatsAccumulate) {
  ReconfigController ctl;
  ctl.reconfigure(3);
  ctl.reconfigure(5);
  ctl.reconfigure(0);  // no-op
  EXPECT_EQ(ctl.batches(), 2u);
  EXPECT_EQ(ctl.mzis_programmed(), 8u);
  EXPECT_GT(ctl.total_time().to_micros(), 7.0);
  ctl.reset_stats();
  EXPECT_EQ(ctl.batches(), 0u);
  EXPECT_EQ(ctl.mzis_programmed(), 0u);
  EXPECT_EQ(ctl.total_time().to_seconds(), 0.0);
  // The controller keeps working after a stats reset.
  ctl.reconfigure(2);
  EXPECT_EQ(ctl.batches(), 1u);
  EXPECT_EQ(ctl.mzis_programmed(), 2u);
}

TEST(Fabric, XyRouteShape) {
  const Wafer wafer;
  const TileId a = wafer.tile_at(TileCoord{0, 0});
  const TileId b = wafer.tile_at(TileCoord{3, 5});
  const auto hops = Fabric::xy_route(wafer, a, b);
  EXPECT_EQ(hops.size(), 8u);  // 5 east + 3 south
  // Column moves first.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(hops[i], Direction::kEast);
  for (std::size_t i = 5; i < 8; ++i) EXPECT_EQ(hops[i], Direction::kSouth);
}

TEST(Fabric, ConnectAndDisconnectRestoresResources) {
  Fabric fab;
  const GlobalTile a{0, 0};
  const GlobalTile b{0, 9};
  const auto before_lanes = fab.wafer(0).total_lanes_used();
  auto id = fab.connect(a, b, 4);
  ASSERT_TRUE(id.ok()) << id.error().message;
  EXPECT_EQ(fab.active_circuits(), 1u);
  EXPECT_GT(fab.wafer(0).total_lanes_used(), before_lanes);
  EXPECT_EQ(fab.wafer(0).tile(0).tx_used(), 4u);
  EXPECT_EQ(fab.wafer(0).tile(9).rx_used(), 4u);
  EXPECT_NEAR(fab.circuit_bandwidth(id.value()).to_gbps(), 4 * 224.0, 1e-6);

  fab.disconnect(id.value());
  EXPECT_EQ(fab.active_circuits(), 0u);
  EXPECT_EQ(fab.wafer(0).total_lanes_used(), before_lanes);
  EXPECT_EQ(fab.wafer(0).tile(0).tx_used(), 0u);
  fab.disconnect(id.value());  // idempotent
}

TEST(Fabric, ConnectValidatesArguments) {
  Fabric fab;
  EXPECT_FALSE(fab.connect(GlobalTile{0, 0}, GlobalTile{0, 0}, 1).ok());
  EXPECT_FALSE(fab.connect(GlobalTile{0, 0}, GlobalTile{0, 1}, 0).ok());
  EXPECT_FALSE(fab.connect(GlobalTile{5, 0}, GlobalTile{0, 1}, 1).ok());
}

TEST(Fabric, TxExhaustionFailsCleanly) {
  Fabric fab;
  ASSERT_TRUE(fab.connect(GlobalTile{0, 0}, GlobalTile{0, 1}, 16).ok());
  const auto second = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 2}, 1);
  EXPECT_FALSE(second.ok());
  // Rx of tile 2 untouched.
  EXPECT_EQ(fab.wafer(0).tile(2).rx_used(), 0u);
}

TEST(Fabric, CrossWaferNeedsFiber) {
  FabricConfig config;
  config.wafer_count = 2;
  Fabric fab{config};
  EXPECT_FALSE(fab.connect(GlobalTile{0, 7}, GlobalTile{1, 0}, 1).ok());

  fab.add_fiber_link(GlobalTile{0, 7}, GlobalTile{1, 0}, 8);
  auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{1, 5}, 2);
  ASSERT_TRUE(id.ok()) << id.error().message;
  const Circuit* c = fab.circuit(id.value());
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->fiber_hops, 1u);
  EXPECT_EQ(c->segments.size(), 2u);
  EXPECT_EQ(fab.fiber_links()[0].used, 2u);
  fab.disconnect(id.value());
  EXPECT_EQ(fab.fiber_links()[0].used, 0u);
}

TEST(Fabric, FiberCapacityEnforced) {
  FabricConfig config;
  config.wafer_count = 2;
  Fabric fab{config};
  fab.add_fiber_link(GlobalTile{0, 7}, GlobalTile{1, 0}, 4);
  ASSERT_TRUE(fab.connect(GlobalTile{0, 0}, GlobalTile{1, 5}, 3).ok());
  EXPECT_FALSE(fab.connect(GlobalTile{0, 1}, GlobalTile{1, 6}, 2).ok());
  EXPECT_TRUE(fab.connect(GlobalTile{0, 1}, GlobalTile{1, 6}, 1).ok());
}

TEST(Fabric, FiberLinkIsBidirectional) {
  FabricConfig config;
  config.wafer_count = 2;
  Fabric fab{config};
  fab.add_fiber_link(GlobalTile{0, 7}, GlobalTile{1, 0}, 8);
  EXPECT_TRUE(fab.connect(GlobalTile{1, 5}, GlobalTile{0, 3}, 1).ok());
}

TEST(Fabric, ConnectViaValidatesPath) {
  Fabric fab;
  // Path not ending at destination.
  EXPECT_FALSE(
      fab.connect_via(GlobalTile{0, 0}, GlobalTile{0, 2}, {Direction::kEast}, 1).ok());
  // Path off the wafer.
  EXPECT_FALSE(
      fab.connect_via(GlobalTile{0, 0}, GlobalTile{0, 1}, {Direction::kNorth}, 1).ok());
  // Valid L-shaped path.
  const auto id = fab.connect_via(
      GlobalTile{0, 0}, GlobalTile{0, 9},
      {Direction::kSouth, Direction::kEast}, 2);
  ASSERT_TRUE(id.ok()) << id.error().message;
  EXPECT_EQ(fab.circuit(id.value())->turn_count(), 1u);
}

TEST(Fabric, CircuitBudgetCloses) {
  Fabric fab;
  const auto id = fab.connect(GlobalTile{0, 0}, GlobalTile{0, 31}, 1);
  ASSERT_TRUE(id.ok());
  const auto report = fab.circuit_budget(id.value());
  EXPECT_TRUE(report.closes) << "corner-to-corner circuit must close: ber="
                             << report.pre_fec_ber;
}

TEST(Fabric, ReconfigAccountsBatches) {
  Fabric fab;
  const auto before = fab.reconfig().batches();
  ASSERT_TRUE(fab.connect(GlobalTile{0, 0}, GlobalTile{0, 3}, 1).ok());
  EXPECT_EQ(fab.reconfig().batches(), before + 1);
}

}  // namespace
}  // namespace lp::fabric
