// Tests of the circuit-switched host stack (circuit caching over SerDes-
// bounded ports) and the WDM wavelength-continuity ledger.
#include <gtest/gtest.h>

#include "core/host_stack.hpp"
#include "routing/wavelength.hpp"

namespace lp {
namespace {

using fabric::Direction;
using fabric::GlobalTile;

class HostStackFixture : public ::testing::Test {
 protected:
  fabric::Fabric fab_;
  core::HostStack stack_{fab_};
};

TEST_F(HostStackFixture, FirstSendMissesThenHits) {
  const GlobalTile a{0, 0}, b{0, 5};
  const auto first = stack_.send(a, b, DataSize::mib(1));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(stack_.stats().misses, 1u);
  EXPECT_EQ(stack_.stats().hits, 0u);
  EXPECT_TRUE(stack_.has_circuit(a, b));

  const auto second = stack_.send(a, b, DataSize::mib(1));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(stack_.stats().hits, 1u);
  EXPECT_LT(second.value().to_seconds(), first.value().to_seconds())
      << "hit must skip the reconfiguration";
  // The difference is exactly the setup latency (same transfer time).
  EXPECT_NEAR((first.value() - second.value()).to_micros(), 3.7, 0.5);
}

TEST_F(HostStackFixture, LruEvictionAtPortLimit) {
  const GlobalTile src{0, 0};
  // Default max_peers = 8: touch 9 distinct destinations.
  for (fabric::TileId t = 1; t <= 9; ++t) {
    ASSERT_TRUE(stack_.send(src, GlobalTile{0, t}, DataSize::kib(64)).ok());
  }
  EXPECT_GE(stack_.stats().evictions, 1u);
  EXPECT_FALSE(stack_.has_circuit(src, GlobalTile{0, 1})) << "LRU victim";
  EXPECT_TRUE(stack_.has_circuit(src, GlobalTile{0, 9}));
}

TEST_F(HostStackFixture, LruRefreshOnHit) {
  const GlobalTile src{0, 0};
  for (fabric::TileId t = 1; t <= 8; ++t) {
    ASSERT_TRUE(stack_.send(src, GlobalTile{0, t}, DataSize::kib(64)).ok());
  }
  // Touch destination 1 so it becomes most-recent, then overflow.
  ASSERT_TRUE(stack_.send(src, GlobalTile{0, 1}, DataSize::kib(64)).ok());
  ASSERT_TRUE(stack_.send(src, GlobalTile{0, 9}, DataSize::kib(64)).ok());
  EXPECT_TRUE(stack_.has_circuit(src, GlobalTile{0, 1}));
  EXPECT_FALSE(stack_.has_circuit(src, GlobalTile{0, 2})) << "2 became LRU";
}

TEST_F(HostStackFixture, WavelengthExhaustionForcesEviction) {
  // 16 Tx lambdas / 2 per circuit = 8 concurrent peers; a 9th must evict
  // even before the port limit would trigger with bigger circuits.
  core::HostStackParams params;
  params.max_peers = 16;  // port limit out of the way
  params.wavelengths_per_circuit = 4;  // 4 peers max by lambdas
  core::HostStack stack{fab_, params};
  const GlobalTile src{0, 16};
  for (fabric::TileId t = 0; t < 5; ++t) {
    ASSERT_TRUE(stack.send(src, GlobalTile{0, t == 16 ? 20 : t}, DataSize::kib(4)).ok());
  }
  EXPECT_GE(stack.stats().evictions, 1u);
}

TEST_F(HostStackFixture, FlushReleasesEverything) {
  ASSERT_TRUE(stack_.send(GlobalTile{0, 0}, GlobalTile{0, 3}, DataSize::kib(1)).ok());
  ASSERT_TRUE(stack_.send(GlobalTile{0, 1}, GlobalTile{0, 4}, DataSize::kib(1)).ok());
  stack_.flush();
  EXPECT_EQ(fab_.active_circuits(), 0u);
  EXPECT_EQ(fab_.wafer(0).total_lanes_used(), 0u);
  EXPECT_FALSE(stack_.has_circuit(GlobalTile{0, 0}, GlobalTile{0, 3}));
}

TEST_F(HostStackFixture, StatsAccumulateAndReset) {
  ASSERT_TRUE(stack_.send(GlobalTile{0, 0}, GlobalTile{0, 3}, DataSize::mib(8)).ok());
  EXPECT_EQ(stack_.stats().messages, 1u);
  EXPECT_GT(stack_.stats().transfer_time.to_seconds(), 0.0);
  EXPECT_GT(stack_.stats().reconfig_time.to_seconds(), 0.0);
  stack_.reset_stats();
  EXPECT_EQ(stack_.stats().messages, 0u);
}

TEST_F(HostStackFixture, HitRate) {
  const GlobalTile src{0, 0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(stack_.send(src, GlobalTile{0, 7}, DataSize::kib(1)).ok());
  }
  EXPECT_NEAR(stack_.stats().hit_rate(), 0.9, 1e-12);
}

// --- WDM ledger --------------------------------------------------------------

class WdmFixture : public ::testing::Test {
 protected:
  fabric::Wafer wafer_;
  routing::WdmLedger ledger_{wafer_, 16};
  std::vector<Direction> path_{Direction::kEast, Direction::kEast};
};

TEST_F(WdmFixture, FirstFitAssignsLowChannels) {
  const auto assigned = ledger_.assign(0, path_, 4);
  ASSERT_TRUE(assigned.ok());
  EXPECT_EQ(assigned.value(), (std::vector<phys::ChannelId>{0, 1, 2, 3}));
  EXPECT_NEAR(ledger_.occupancy(0, Direction::kEast), 0.25, 1e-12);
}

TEST_F(WdmFixture, ContinuityForcesDistinctChannels) {
  // Two circuits sharing one edge must take disjoint channels.
  const auto a = ledger_.assign(0, path_, 8);
  ASSERT_TRUE(a.ok());
  const std::vector<Direction> overlapping{Direction::kEast};
  const auto b = ledger_.assign(1, overlapping, 8);  // shares edge 1->2
  ASSERT_TRUE(b.ok());
  for (auto ca : a.value()) {
    for (auto cb : b.value()) EXPECT_NE(ca, cb);
  }
  // Edge 1->East now has 16/16 channels used.
  EXPECT_FALSE(ledger_.assign(1, overlapping, 1).ok());
}

TEST_F(WdmFixture, FailedAssignHasNoSideEffects) {
  ASSERT_TRUE(ledger_.assign(0, path_, 10).ok());
  const auto too_many = ledger_.assign(0, path_, 8);
  EXPECT_FALSE(too_many.ok());
  EXPECT_NEAR(ledger_.occupancy(0, Direction::kEast), 10.0 / 16.0, 1e-12);
}

TEST_F(WdmFixture, ReleaseRestoresChannels) {
  const auto assigned = ledger_.assign(0, path_, 16);
  ASSERT_TRUE(assigned.ok());
  ledger_.release(0, path_, assigned.value());
  EXPECT_NEAR(ledger_.occupancy(0, Direction::kEast), 0.0, 1e-12);
  EXPECT_TRUE(ledger_.assign(0, path_, 16).ok());
}

TEST_F(WdmFixture, FragmentationBlocksDespiteCapacity) {
  // Occupy even channels on the path's first edge via single-hop circuits.
  const std::vector<Direction> hop{Direction::kEast};
  std::vector<std::vector<phys::ChannelId>> held;
  for (phys::ChannelId c = 0; c < 16; ++c) {
    auto one = ledger_.assign(0, hop, 1);
    ASSERT_TRUE(one.ok());
    held.push_back(one.value());
  }
  // Free the odd channels only.
  for (phys::ChannelId c = 1; c < 16; c += 2) ledger_.release(0, hop, held[c]);
  EXPECT_NEAR(ledger_.occupancy(0, Direction::kEast), 0.5, 1e-12);
  EXPECT_GT(ledger_.fragmentation(0, Direction::kEast), 0.5)
      << "free channels are maximally scattered";
  // 8 free channels exist and first-fit picks non-contiguous ones fine (our
  // model has no contiguity requirement), so 8 succeed but 9 fail.
  EXPECT_TRUE(ledger_.channel_free(0, hop, 1));
  EXPECT_FALSE(ledger_.channel_free(0, hop, 0));
  EXPECT_FALSE(ledger_.assign(0, hop, 9).ok());
  EXPECT_TRUE(ledger_.assign(0, hop, 8).ok());
}

TEST_F(WdmFixture, PathOffWaferNeverFree) {
  const std::vector<Direction> off{Direction::kNorth};  // tile 0 has no north
  EXPECT_FALSE(ledger_.channel_free(0, off, 0));
  EXPECT_FALSE(ledger_.assign(0, off, 1).ok());
}

TEST_F(WdmFixture, FragmentationZeroWhenContiguous) {
  const std::vector<Direction> hop{Direction::kEast};
  ASSERT_TRUE(ledger_.assign(0, hop, 4).ok());  // channels 0..3 used
  EXPECT_NEAR(ledger_.fragmentation(0, Direction::kEast), 0.0, 1e-12);
}

}  // namespace
}  // namespace lp
