#include <gtest/gtest.h>

#include "core/training_sim.hpp"

namespace lp::core {
namespace {

using coll::Interconnect;
using topo::Coord;
using topo::Shape;
using topo::Slice;

const Shape kRack{{4, 4, 4}};
const Slice kSlice1{0, 0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}};

TEST(TrainingSim, FullyHiddenCommMeansZeroIdle) {
  TrainingConfig config;
  config.bucket_bytes = DataSize::kib(64);  // tiny gradients
  config.compute_per_bucket = Duration::millis(10.0);
  const coll::CostParams params;
  const auto report = simulate_training_iteration(kSlice1, kRack, config,
                                                  Interconnect::kElectrical, params);
  // Only the last bucket's (tiny) collective peeks past the compute end.
  EXPECT_LT(report.idle_fraction(), 0.01);
  EXPECT_NEAR(report.iteration.to_seconds(), report.compute_time.to_seconds(),
              report.compute_time.to_seconds() * 0.01);
}

TEST(TrainingSim, CommBoundIterationExposesTail) {
  TrainingConfig config;
  config.bucket_bytes = DataSize::gib(1);  // huge gradients
  config.compute_per_bucket = Duration::micros(100.0);
  const coll::CostParams params;
  const auto report = simulate_training_iteration(kSlice1, kRack, config,
                                                  Interconnect::kElectrical, params);
  EXPECT_GT(report.idle_fraction(), 0.9);
  EXPECT_GT(report.iteration.to_seconds(), report.compute_time.to_seconds());
}

TEST(TrainingSim, OpticsReducesIdleFraction) {
  TrainingConfig config;  // defaults sit in the contended regime
  config.bucket_bytes = DataSize::mib(256);
  const coll::CostParams params;
  const auto elec = simulate_training_iteration(kSlice1, kRack, config,
                                                Interconnect::kElectrical, params);
  const auto opt = simulate_training_iteration(kSlice1, kRack, config,
                                               Interconnect::kOptical, params);
  EXPECT_LT(opt.iteration.to_seconds(), elec.iteration.to_seconds());
  EXPECT_LT(opt.idle_fraction(), elec.idle_fraction());
}

TEST(TrainingSim, StaticSplitPaysReconfigOnce) {
  TrainingConfig config;
  config.buckets = 8;
  config.bucket_bytes = DataSize::mib(1);
  const coll::CostParams params;
  const auto report = simulate_training_iteration(kSlice1, kRack, config,
                                                  Interconnect::kOptical, params);
  // Comm time = 8 x AllReduce beta/alpha + exactly 1 bucket's reconfigs
  // (RS+AG halves of bucket 0 -> 1 x r with persistent circuits... the RS
  // half carries it).
  const auto plan = coll::build_plan(kSlice1, kRack);
  const auto first =
      coll::all_reduce_cost(plan, config.bucket_bytes, Interconnect::kOptical, params);
  auto steady = first;
  steady.reconfigs = 0;
  const double expected = first.total(params).to_seconds() +
                          7.0 * steady.total(params).to_seconds();
  EXPECT_NEAR(report.comm_time.to_seconds(), expected, 1e-12);
}

TEST(TrainingSim, PerStageFullPaysReconfigEveryBucket) {
  TrainingConfig config;
  config.buckets = 4;
  config.bucket_bytes = DataSize::mib(1);
  const coll::CostParams params;
  const auto split = simulate_training_iteration(
      kSlice1, kRack, config, Interconnect::kOptical, params,
      coll::RedirectStrategy::kStaticSplit);
  const auto full = simulate_training_iteration(
      kSlice1, kRack, config, Interconnect::kOptical, params,
      coll::RedirectStrategy::kPerStageFull);
  // Slice-1 has one stage, so beta is identical; per-stage-full re-aims on
  // every bucket and pays more reconfiguration in total.
  EXPECT_GT(full.comm_time.to_seconds(), split.comm_time.to_seconds());
}

TEST(TrainingSim, IdleFractionBounded) {
  TrainingConfig config;
  const coll::CostParams params;
  for (double mib : {1.0, 32.0, 512.0}) {
    config.bucket_bytes = DataSize::mib(mib);
    const auto report = simulate_training_iteration(kSlice1, kRack, config,
                                                    Interconnect::kElectrical, params);
    EXPECT_GE(report.idle_fraction(), 0.0);
    EXPECT_LE(report.idle_fraction(), 1.0);
  }
}

}  // namespace
}  // namespace lp::core
