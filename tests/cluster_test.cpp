// Tests of the cluster-scale multi-tenant scheduler: admission and
// completion accounting, the recovery escalation's decision boundaries
// (respare vs morph vs shrink vs requeue), exact rollback of aborted
// morphs, and sweep determinism across thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/scheduler.hpp"
#include "topo/torus.hpp"

namespace lp::cluster {
namespace {

using topo::Shape;

ClusterParams small_cluster(std::int32_t racks) {
  ClusterParams p;
  p.cluster.racks = racks;
  p.horizon = Duration::seconds(30.0);
  p.drain = Duration::seconds(120.0);
  p.arrival_rate_per_s = 1.0;
  p.service_mean = Duration::seconds(15.0);
  p.service_min = Duration::seconds(2.0);
  p.fabric_wafers = 2;
  return p;
}

// The scripted decision-boundary world: job A fills rack 0 (no spare chips
// left there), job B takes a corner of rack 1, and a server tray of job A
// dies mid-run.  Respare is impossible; what happens next is the knob under
// test.
ClusterParams boundary_params() {
  ClusterParams p;
  p.cluster.racks = 2;
  p.horizon = Duration::seconds(5.0);
  p.drain = Duration::seconds(600.0);
  p.fabric_wafers = 2;
  p.job_script = {
      {Duration::seconds(0.1), Shape{{4, 4, 4}}, Duration::seconds(20.0)},
      {Duration::seconds(0.2), Shape{{2, 2, 1}}, Duration::seconds(5.0)},
  };
  p.script = {
      {Duration::seconds(1.0), FaultDomain::kServer, 0,
       fault::FaultKind::kChipDeath, 1},
  };
  return p;
}

TEST(ClusterScheduler, FaultFreeRunCompletesEverythingItAdmits) {
  ClusterParams p = small_cluster(4);
  p.mtbf_hours = 0.0;  // no fault timeline at all
  ClusterScheduler s{p};
  const ClusterReport r = s.run();

  EXPECT_GT(r.offered, 0u);
  EXPECT_EQ(r.offered, r.completed + r.unserved + r.aborted);
  EXPECT_EQ(r.aborted, 0u);
  EXPECT_EQ(r.fault_events, 0u);
  EXPECT_EQ(r.requeues, 0u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_GE(r.accepted_load(), 0.0);
  EXPECT_LE(r.accepted_load(), 1.0);
  EXPECT_GE(r.utilization_avg, 0.0);
  EXPECT_LE(r.utilization_avg, 1.0);
  EXPECT_EQ(s.ocs().ports_used(), 0u) << "completed jobs release OCS ports";
}

TEST(ClusterScheduler, ReportIsAPureFunctionOfParams) {
  const ClusterParams p = small_cluster(4);
  const ClusterReport a = run_cluster(p);
  const ClusterReport b = run_cluster(p);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.morphs, b.morphs);
  EXPECT_EQ(a.requeues, b.requeues);
  EXPECT_DOUBLE_EQ(a.offered_work_chip_seconds, b.offered_work_chip_seconds);
  EXPECT_DOUBLE_EQ(a.completed_work_chip_seconds, b.completed_work_chip_seconds);

  ClusterParams q = p;
  q.seed ^= 0xdead;
  EXPECT_NE(run_cluster(q).digest, a.digest) << "seed must matter";
}

// Spares available in the victim's rack -> respare wins; nothing morphs.
TEST(ClusterScheduler, RespareIsPreferredWhenTheRackHasSpares) {
  ClusterParams p = boundary_params();
  p.job_script[0].shape = Shape{{4, 4, 2}};  // half the rack stays free
  ClusterScheduler s{p};
  const ClusterReport r = s.run();

  EXPECT_EQ(r.fatal_chip_failures, 4u);
  EXPECT_EQ(r.respares, 1u);
  EXPECT_EQ(r.morphs, 0u);
  EXPECT_EQ(r.elastic_shrinks, 0u);
  EXPECT_EQ(r.completed, 2u);
}

// Spares exhausted mid-job: the scheduler must morph — re-stitch the slice
// across rack 1's healthy chips — rather than degrade to an elastic shrink.
TEST(ClusterScheduler, MorphIsPreferredOverShrinkWhenSparesExhaust) {
  const ClusterParams p = boundary_params();
  ClusterScheduler s{p};
  const ClusterReport r = s.run();

  EXPECT_EQ(r.fatal_chip_failures, 4u);
  EXPECT_EQ(r.respares, 0u) << "rack 0 has no free chip to respare onto";
  EXPECT_EQ(r.morphs, 1u);
  EXPECT_EQ(r.morph_aborts, 0u);
  EXPECT_EQ(r.elastic_shrinks, 0u);
  EXPECT_EQ(r.completed, 2u);
  EXPECT_EQ(r.aborted, 0u);
  EXPECT_EQ(s.ocs().ports_used(), 0u)
      << "the morphed job's stitch ports are released on completion";
  EXPECT_EQ(s.fabric().ledger_digest(), fabric::Fabric{s.fabric().config()}.ledger_digest())
      << "stitch circuits are torn down on completion";
}

// With morphing disabled the same timeline degrades to an elastic shrink.
TEST(ClusterScheduler, ShrinkTakesOverWhenMorphingIsDisabled) {
  ClusterParams p = boundary_params();
  p.morph_enabled = false;
  const ClusterReport r = run_cluster(p);

  EXPECT_EQ(r.morphs, 0u);
  EXPECT_EQ(r.elastic_shrinks, 1u);
  EXPECT_EQ(r.completed, 2u);
}

// An aborted morph (here: no OCS ports to reserve) must roll back exactly —
// the run's outcome digest matches a run where morphing was never tried,
// because the abort leaves no trace beyond its diagnostic counter.
TEST(ClusterScheduler, AbortedMorphRollsBackExactly) {
  ClusterParams aborting = boundary_params();
  aborting.ocs_switches = 0;  // reserve() can never succeed
  const ClusterReport a = run_cluster(aborting);

  ClusterParams never = boundary_params();
  never.ocs_switches = 0;
  never.morph_enabled = false;
  const ClusterReport n = run_cluster(never);

  EXPECT_GE(a.morph_aborts, 1u);
  EXPECT_EQ(n.morph_aborts, 0u);
  EXPECT_EQ(a.elastic_shrinks, 1u) << "the abort falls through to shrink";
  EXPECT_EQ(a.digest, n.digest)
      << "an exactly-rolled-back morph attempt must not perturb the outcome";
}

// Same rollback contract when the shrink floor forces a requeue instead.
TEST(ClusterScheduler, AbortedMorphFallsThroughToRequeueUnderStrictFloor) {
  ClusterParams aborting = boundary_params();
  aborting.ocs_switches = 0;
  aborting.shrink_min_fraction = 1.01;  // any chip loss is below the floor
  const ClusterReport a = run_cluster(aborting);

  ClusterParams never = aborting;
  never.morph_enabled = false;
  const ClusterReport n = run_cluster(never);

  EXPECT_GE(a.morph_aborts, 1u);
  EXPECT_GE(a.requeues, 1u);
  EXPECT_EQ(a.elastic_shrinks, 0u);
  EXPECT_EQ(a.digest, n.digest);
}

// The electrical baseline drains a job for ANY fault that touches it —
// component faults included (the §4.2 blast-radius point) — and pays the
// rack-granularity migration charge.
TEST(ClusterScheduler, ElectricalBaselineMigratesOnComponentFaults) {
  ClusterParams p = boundary_params();
  p.policy = SchedulerPolicy::kElectricalOnly;
  p.script = {
      {Duration::seconds(1.0), FaultDomain::kChip, 0,
       fault::FaultKind::kMziDrift, 1},
  };
  const ClusterReport r = run_cluster(p);

  EXPECT_EQ(r.component_events, 1u);
  EXPECT_EQ(r.fatal_chip_failures, 0u);
  EXPECT_EQ(r.migrations + r.migration_failures, 1u)
      << "a non-fatal component fault still drains the electrical job";
  EXPECT_EQ(r.morphs, 0u);
  EXPECT_EQ(r.inplace_repairs, 0u);

  ClusterParams q = p;
  q.policy = SchedulerPolicy::kPhotonicMorph;
  const ClusterReport opt = run_cluster(q);
  EXPECT_EQ(opt.inplace_repairs, 1u)
      << "the photonic policy repairs the same fault in place";
  EXPECT_EQ(opt.migrations, 0u);
  EXPECT_LE(opt.lost.total().to_seconds(), r.lost.total().to_seconds());
}

TEST(ClusterSweep, BitIdenticalAt1_2_8Threads) {
  ClusterSweepConfig config;
  config.base = small_cluster(2);
  config.base.horizon = Duration::seconds(15.0);
  config.base.drain = Duration::seconds(60.0);
  config.mtbf_points = {0.5, 4.0};
  config.trials = 1;

  std::vector<std::uint64_t> digests;
  std::vector<ClusterSweepReport> reports;
  for (const unsigned threads : {1u, 2u, 8u}) {
    ClusterSweepConfig c = config;
    c.threads = threads;
    ClusterSweepReport r = run_cluster_sweep(c);
    digests.push_back(r.digest);
    reports.push_back(std::move(r));
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
  ASSERT_EQ(reports[0].points.size(), 4u) << "2 mtbf points x 2 policies";
  for (std::size_t i = 0; i < reports[0].points.size(); ++i) {
    EXPECT_DOUBLE_EQ(reports[1].points[i].accepted_load_mean,
                     reports[0].points[i].accepted_load_mean);
    EXPECT_DOUBLE_EQ(reports[2].points[i].goodput_mean,
                     reports[0].points[i].goodput_mean);
  }
  // Photonic first within each point, mtbf ascending.
  EXPECT_EQ(reports[0].points[0].policy, SchedulerPolicy::kPhotonicMorph);
  EXPECT_EQ(reports[0].points[1].policy, SchedulerPolicy::kElectricalOnly);
  EXPECT_DOUBLE_EQ(reports[0].points[0].mtbf_hours, 0.5);
  EXPECT_DOUBLE_EQ(reports[0].points[2].mtbf_hours, 4.0);
}

}  // namespace
}  // namespace lp::cluster
