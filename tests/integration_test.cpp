// Cross-module integration tests: the full pipeline from cluster + slices
// through plan building, fabric provisioning, flow simulation, and
// physical-layer validation.
#include <gtest/gtest.h>

#include "collective/congestion.hpp"
#include "collective/schedule.hpp"
#include "core/bandwidth_manager.hpp"
#include "core/blast_radius.hpp"
#include "core/photonic_rack.hpp"
#include "routing/planner.hpp"
#include "sim/flow_sim.hpp"
#include "topo/slice.hpp"

namespace lp {
namespace {

using topo::Coord;
using topo::Shape;
using topo::Slice;
using topo::SliceAllocator;
using topo::TpuCluster;
using topo::TpuId;

TEST(Integration, Figure5PipelineEndToEnd) {
  // Pack the rack as in Figure 5, provision Slice-1's optical redirection,
  // and check that the measured collective time improves by the paper's 3x
  // while every provisioned circuit closes its link budget.
  TpuCluster cluster;
  SliceAllocator alloc{cluster};
  const auto packing = topo::pack_figure5(alloc);
  ASSERT_TRUE(packing.ok());
  const Slice* slice1 = alloc.slice(packing.value().slice1);
  ASSERT_NE(slice1, nullptr);

  core::PhotonicRack rack{cluster, 0};
  core::BandwidthManager manager{rack};
  const auto plan = coll::build_plan(*slice1, cluster.config().rack_shape);
  auto stages = manager.provision_all(*slice1, plan);
  ASSERT_TRUE(stages.ok()) << stages.error().message;

  // Every circuit the manager established must close its budget.
  for (const auto& stage : stages.value()) {
    for (fabric::CircuitId id : stage.circuits) {
      const auto report = rack.fabric().circuit_budget(id);
      EXPECT_TRUE(report.closes) << "circuit " << id << " ber " << report.pre_fec_ber;
    }
  }

  // Measured times: electrical vs optical, with B matching the fabric.
  coll::CostParams params;
  params.chip_bandwidth = rack.chip_bandwidth();
  const DataSize n = DataSize::gib(1);
  const sim::FlowSimulator fsim{params.chip_bandwidth / 3.0};
  const auto elec = fsim.run(coll::build_reduce_scatter_schedule(
      cluster, *slice1, n, coll::Interconnect::kElectrical, params));
  const auto opt = fsim.run(coll::build_reduce_scatter_schedule(
      cluster, *slice1, n, coll::Interconnect::kOptical, params));
  EXPECT_NEAR(elec.total.to_seconds() / opt.total.to_seconds(), 3.0, 0.05);

  for (const auto& stage : stages.value()) manager.release_stage(stage);
  EXPECT_EQ(rack.fabric().active_circuits(), 0u);
}

TEST(Integration, AllFourSlicesProvisionSimultaneously) {
  // The whole Figure 5 rack can hold redirected circuits for all slices at
  // once — wavelength budgets and lanes must suffice.
  TpuCluster cluster;
  SliceAllocator alloc{cluster};
  const auto packing = topo::pack_figure5(alloc);
  ASSERT_TRUE(packing.ok());
  core::PhotonicRack rack{cluster, 0};
  core::BandwidthManager manager{rack};

  std::vector<core::StageCircuits> all;
  for (topo::SliceId id : {packing.value().slice1, packing.value().slice2,
                           packing.value().slice3, packing.value().slice4}) {
    const Slice* s = alloc.slice(id);
    ASSERT_NE(s, nullptr);
    const auto plan = coll::build_plan(*s, cluster.config().rack_shape);
    auto stages = manager.provision_all(*s, plan);
    ASSERT_TRUE(stages.ok()) << "slice " << id << ": " << stages.error().message;
    for (auto& st : stages.value()) all.push_back(std::move(st));
  }
  EXPECT_GT(rack.fabric().active_circuits(), 0u);
  for (const auto& st : all) manager.release_stage(st);
  EXPECT_EQ(rack.fabric().active_circuits(), 0u);
}

TEST(Integration, FailureStoryEndToEnd) {
  // Figure 6a -> Figure 7: electrical repair impossible, optical repair
  // succeeds with a 4-chip blast radius, and the repaired ring's circuits
  // are contention-free by construction.
  TpuCluster cluster;
  SliceAllocator alloc{cluster};
  ASSERT_TRUE(alloc.allocate_at(0, Coord{{0, 0, 0}}, Shape{{4, 4, 2}}).ok());
  const auto s3 = alloc.allocate_at(0, Coord{{0, 0, 2}}, Shape{{4, 4, 1}});
  ASSERT_TRUE(s3.ok());
  ASSERT_TRUE(alloc.allocate_at(0, Coord{{0, 0, 3}}, Shape{{4, 2, 1}}).ok());

  const TpuId failed = cluster.chip_at(0, Coord{{1, 0, 2}});

  const auto elec = core::attempt_electrical_repair(cluster, alloc, failed);
  EXPECT_FALSE(elec.feasible);

  core::PhotonicRack rack{cluster, 0};
  const auto impact = core::assess_failure(cluster, alloc, failed,
                                           core::FailurePolicy::kOpticalRepair, {},
                                           &rack);
  ASSERT_TRUE(impact.feasible);
  EXPECT_EQ(impact.blast_radius_chips, 4);
  EXPECT_LT(impact.recovery_time.to_micros(), 100.0);
}

TEST(Integration, SteadyStateRackTrafficRunsAtFullLinkRate) {
  // Simulate one electrical ring step of every Figure-5 slice at once: the
  // kUsableOnly policy must show zero slowdown (peak link load 1).
  TpuCluster cluster;
  SliceAllocator alloc{cluster};
  const auto packing = topo::pack_figure5(alloc);
  ASSERT_TRUE(packing.ok());

  coll::CostParams params;
  std::vector<coll::Transfer> combined;
  for (topo::SliceId id : {packing.value().slice1, packing.value().slice2,
                           packing.value().slice3, packing.value().slice4}) {
    const Slice* s = alloc.slice(id);
    const auto schedule = coll::build_reduce_scatter_schedule(
        cluster, *s, DataSize::mib(64), coll::Interconnect::kElectrical, params);
    ASSERT_FALSE(schedule.phases.empty());
    for (const auto& t : schedule.phases[0].transfers) combined.push_back(t);
  }
  const sim::FlowSimulator fsim{cluster.dim_bandwidth()};
  const auto result = fsim.run_phase(combined);
  EXPECT_EQ(result.peak_link_load, 1u)
      << "usable-only rings of all tenants must not collide";
}

TEST(Integration, PlannerSaturatesWaferWithoutOverlap) {
  // Place a full permutation (31 circuits) and confirm non-overlap by
  // construction: every edge's used lanes is the sum of circuits crossing
  // it, and nothing exceeds capacity (reserve would have failed).
  fabric::Fabric fab;
  routing::CircuitPlanner planner{fab};
  std::vector<routing::Demand> demands;
  for (fabric::TileId t = 0; t < 31; ++t) {
    demands.push_back(
        routing::Demand{fabric::GlobalTile{0, t}, fabric::GlobalTile{0, t + 1}, 8});
  }
  const auto report = planner.place_all(demands);
  EXPECT_TRUE(report.complete());
  planner.release_all(report);
  EXPECT_EQ(fab.wafer(0).total_lanes_used(), 0u);
}

}  // namespace
}  // namespace lp
