#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "phys/link_budget.hpp"
#include "phys/loss.hpp"
#include "phys/modulator.hpp"
#include "phys/mzi.hpp"
#include "phys/photodetector.hpp"
#include "phys/wdm.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lp::phys {
namespace {

TEST(Wdm, SixteenChannelsByDefault) {
  const WdmGrid grid;
  EXPECT_EQ(grid.channel_count(), 16u);
  EXPECT_EQ(grid.channels().size(), 16u);
}

TEST(Wdm, WavelengthsSymmetricAroundCenter) {
  const WdmGrid grid{16, Length::microns(1.310), Length::microns(0.0008)};
  const double lo = grid.wavelength(0).to_microns();
  const double hi = grid.wavelength(15).to_microns();
  EXPECT_NEAR((lo + hi) / 2.0, 1.310, 1e-9);
  EXPECT_LT(lo, hi);
  // Uniform spacing.
  for (ChannelId c = 0; c + 1 < 16; ++c) {
    EXPECT_NEAR(grid.wavelength(c + 1).to_microns() - grid.wavelength(c).to_microns(),
                0.0008, 1e-12);
  }
}

TEST(Mzi, SettlingTimeMatchesPaper) {
  // Default parameters: tau = 1.0 us, settle at 2.5% -> ln(40) = 3.69 us.
  const Mzi mzi;
  EXPECT_NEAR(mzi.settling_time().to_micros(), 3.69, 0.02);
}

TEST(Mzi, StartsInBarState) {
  const Mzi mzi;
  const TimePoint t0;
  EXPECT_DOUBLE_EQ(mzi.bar_power_at(t0), 1.0);
  EXPECT_DOUBLE_EQ(mzi.cross_power_at(t0), 0.0);
  EXPECT_EQ(mzi.target_port(), MziPort::kBar);
}

TEST(Mzi, TransientApproachesCrossState) {
  Mzi mzi;
  const TimePoint t0;
  mzi.program(MziPort::kCross, t0);
  EXPECT_EQ(mzi.target_port(), MziPort::kCross);
  // Monotonic rise of cross power.
  double prev = -1.0;
  for (double us = 0.0; us <= 10.0; us += 0.5) {
    const double p = mzi.cross_power_at(t0 + Duration::micros(us));
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_NEAR(mzi.cross_power_at(t0 + Duration::micros(20)), 1.0, 1e-6);
}

TEST(Mzi, SettledAtSettlingTime) {
  Mzi mzi;
  const TimePoint t0;
  mzi.program(MziPort::kCross, t0);
  EXPECT_FALSE(mzi.settled_at(t0 + Duration::micros(1.0)));
  EXPECT_TRUE(mzi.settled_at(t0 + mzi.settling_time() + Duration::nanos(1)));
}

TEST(Mzi, ReprogramMidFlightStartsFromCurrentPhase) {
  Mzi mzi;
  const TimePoint t0;
  mzi.program(MziPort::kCross, t0);
  const TimePoint mid = t0 + Duration::micros(0.5);
  const double phase_mid = mzi.phase_at(mid);
  mzi.program(MziPort::kBar, mid);
  // Immediately after reprogramming, phase is continuous.
  EXPECT_NEAR(mzi.phase_at(mid), phase_mid, 1e-12);
  // And decays back toward 0.
  EXPECT_LT(mzi.phase_at(mid + Duration::micros(2)), phase_mid);
}

TEST(Mzi, PowerConservation) {
  Mzi mzi;
  const TimePoint t0;
  mzi.program(MziPort::kCross, t0);
  for (double us = 0.0; us < 5.0; us += 0.25) {
    const TimePoint t = t0 + Duration::micros(us);
    EXPECT_NEAR(mzi.bar_power_at(t) + mzi.cross_power_at(t), 1.0, 1e-12);
  }
}

TEST(Mzi, RiseTimeIsFractionOfSettling) {
  const Mzi mzi;
  const Duration rise = mzi.rise_time_10_90();
  EXPECT_GT(rise.to_micros(), 0.1);
  EXPECT_LT(rise, mzi.settling_time());
}

TEST(Mzi, SettledImmediatelyWhenNoSwing) {
  Mzi mzi;
  const TimePoint t0;
  mzi.program(MziPort::kBar, t0);  // already bar
  EXPECT_TRUE(mzi.settled_at(t0));
}

TEST(Modulator, LineRateIs224Gbps) {
  const Modulator mod;
  EXPECT_NEAR(mod.line_rate().to_gbps(), 224.0, 1e-9);
  EXPECT_EQ(mod.bits_per_symbol(), 2u);
}

TEST(Modulator, NrzHalvesRate) {
  ModulatorParams p;
  p.line_code = LineCode::kNrz;
  const Modulator mod{p};
  EXPECT_NEAR(mod.line_rate().to_gbps(), 112.0, 1e-9);
}

TEST(Photodetector, BerDecreasesWithPower) {
  const Photodetector pd;
  double prev = 1.0;
  for (double dbm = -30.0; dbm <= 0.0; dbm += 5.0) {
    const double ber = pd.bit_error_rate(Power::dbm(dbm), LineCode::kPam4, 112e9);
    EXPECT_LE(ber, prev + 1e-15);
    prev = ber;
  }
}

TEST(Photodetector, SensitivityAchievesTargetBer) {
  const Photodetector pd;
  const double target = 2.4e-4;
  const Power sens = pd.sensitivity(target, LineCode::kPam4, 112e9);
  const double at = pd.bit_error_rate(sens, LineCode::kPam4, 112e9);
  EXPECT_LE(at, target * 1.01);
  // 1 dB below sensitivity must fail.
  const double below = pd.bit_error_rate(sens.attenuated_by(Decibel::db(1.0)),
                                         LineCode::kPam4, 112e9);
  EXPECT_GT(below, target);
}

TEST(Photodetector, Pam4NeedsMorePowerThanNrz) {
  const Photodetector pd;
  const Power pam4 = pd.sensitivity(1e-4, LineCode::kPam4, 112e9);
  const Power nrz = pd.sensitivity(1e-4, LineCode::kNrz, 112e9);
  EXPECT_GT(pam4.to_dbm(), nrz.to_dbm());
}

TEST(Photodetector, QofZeroPowerIsTiny) {
  const Photodetector pd;
  EXPECT_LT(pd.q_factor(Power::zero(), LineCode::kNrz, 112e9), 0.01);
  EXPECT_NEAR(ber_from_q(0.0), 0.5, 1e-12);
}

TEST(Loss, CrossingAndStitchDefaults) {
  const LossModel loss;
  EXPECT_NEAR(loss.crossings(1).value(), 0.25, 1e-12);
  EXPECT_NEAR(loss.crossings(4).value(), 1.0, 1e-12);
  EXPECT_NEAR(loss.stitches_mean(2).value(), 0.5, 1e-12);
}

TEST(Loss, PropagationScalesWithLength) {
  const LossModel loss;
  EXPECT_NEAR(loss.propagation(Length::millimeters(20)).value(), 0.2, 1e-12);
  EXPECT_NEAR(loss.propagation(Length::zero()).value(), 0.0, 1e-12);
}

TEST(Loss, StitchSamplesNonNegativeAndCentered) {
  const LossModel loss;
  Rng rng{31};
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const Decibel s = loss.sample_stitch(rng);
    EXPECT_GE(s.value(), 0.0);
    sum += s.value();
  }
  EXPECT_NEAR(sum / 20000.0, 0.25, 0.01);
}

TEST(Loss, FiberHopIncludesAttachFacets) {
  const LossModel loss;
  EXPECT_NEAR(loss.fiber_hop(Length::zero()).value(), 3.0, 1e-12);
  EXPECT_GT(loss.fiber_hop(Length::meters(1000)).value(), 3.0);
}

TEST(LinkBudget, ShortCircuitCloses) {
  const LinkBudget budget;
  CircuitProfile p;
  p.waveguide_length = Length::millimeters(25);
  p.crossings = 1;
  p.stitches = 1;
  p.mzi_traversals = 2;
  const LinkBudgetReport report = budget.evaluate(p);
  EXPECT_TRUE(report.closes);
  EXPECT_GT(report.margin.value(), 0.0);
  EXPECT_NEAR(report.line_rate.to_gbps(), 224.0, 1e-9);
}

TEST(LinkBudget, CrossWaferCircuitCloses) {
  // Longest plausible circuit: corner-to-corner on both wafers + fiber.
  const LinkBudget budget;
  CircuitProfile p;
  p.waveguide_length = Length::millimeters(25.0 * 20);
  p.crossings = 18;
  p.stitches = 20;
  p.mzi_traversals = 24;
  p.fiber_hops = 1;
  p.fiber_length = Length::meters(3);
  const LinkBudgetReport report = budget.evaluate(p);
  EXPECT_TRUE(report.closes) << "loss=" << report.total_loss.value() << " dB, ber="
                             << report.pre_fec_ber;
}

TEST(LinkBudget, AbsurdLossFails) {
  const LinkBudget budget;
  const LinkBudgetReport report = budget.evaluate_at_loss(Decibel::db(60));
  EXPECT_FALSE(report.closes);
  EXPECT_LT(report.margin.value(), 0.0);
}

TEST(LinkBudget, LossMonotonicInProfile) {
  const LinkBudget budget;
  CircuitProfile small;
  small.waveguide_length = Length::millimeters(25);
  small.crossings = 1;
  CircuitProfile big = small;
  big.crossings = 10;
  big.stitches = 5;
  EXPECT_LT(budget.path_loss(small).value(), budget.path_loss(big).value());
}

TEST(LinkBudget, SampledLossNearDeterministic) {
  const LinkBudget budget;
  CircuitProfile p;
  p.waveguide_length = Length::millimeters(100);
  p.stitches = 4;
  Rng rng{37};
  lp::Summary s;
  for (int i = 0; i < 5000; ++i) s.add(budget.sampled_path_loss(p, rng).value());
  EXPECT_NEAR(s.mean(), budget.path_loss(p).value(), 0.05);
}

TEST(LinkBudget, SensitivityConsistentWithEvaluate) {
  const LinkBudget budget;
  // A circuit whose received power sits exactly at sensitivity must have
  // margin ~0.
  const Power sens = budget.sensitivity();
  const double launch = budget.params().launch.to_dbm();
  const double modulator_penalty = 2.5;  // insertion 1.0 + penalty 1.5
  const double loss_to_sens = launch - sens.to_dbm() - modulator_penalty;
  const LinkBudgetReport report =
      budget.evaluate_at_loss(Decibel::db(loss_to_sens));
  EXPECT_NEAR(report.margin.value(), 0.0, 0.01);
}

}  // namespace
}  // namespace lp::phys
