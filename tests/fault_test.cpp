// Tests of the component-fault layer: deterministic injection, the
// apply/revert overlay, health diagnosis, the fault-aware repair ladder, and
// the component-fault Monte-Carlo study.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "core/failure_study.hpp"
#include "fault/fault.hpp"
#include "fault/gray.hpp"
#include "fault/health.hpp"
#include "lightpath/fabric.hpp"
#include "routing/repair.hpp"
#include "util/parallel.hpp"

namespace lp::fault {
namespace {

using fabric::Direction;
using fabric::Fabric;
using fabric::FabricConfig;
using fabric::GlobalTile;
using fabric::TileId;

Fabric two_wafer_fabric() {
  FabricConfig config;
  config.wafer_count = 2;
  Fabric fab{config};
  const auto& w = fab.wafer(0);
  for (std::int32_t row = 0; row < w.rows(); ++row) {
    fab.add_fiber_link({0, w.tile_at({row, w.cols() - 1})}, {1, w.tile_at({row, 0})},
                       16);
  }
  return fab;
}

bool same_fault(const Fault& a, const Fault& b) {
  return a.kind == b.kind && a.tile == b.tile && a.direction == b.direction &&
         a.fiber_link == b.fiber_link &&
         a.excess_loss.value() == b.excess_loss.value() &&
         a.tau_factor == b.tau_factor && a.dead_lasers == b.dead_lasers &&
         a.stuck_port == b.stuck_port;
}

TEST(Injector, SampleTrialIsPureFunctionOfSeedAndTrial) {
  const Fabric fab = two_wafer_fabric();
  const FaultInjector injector{fab, {}, 42};
  bool any_difference = false;
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    const auto a = injector.sample_trial(trial);
    const auto b = injector.sample_trial(trial);
    ASSERT_EQ(a.size(), b.size()) << trial;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(same_fault(a[i], b[i])) << "trial " << trial << " fault " << i;
    }
    if (trial > 0 && !any_difference) {
      const auto prev = injector.sample_trial(trial - 1);
      any_difference = prev.size() != a.size() || !same_fault(prev.front(), a.front());
    }
  }
  EXPECT_TRUE(any_difference) << "different trials draw different faults";
}

TEST(Injector, BurstsConfineToTheFirstFaultsWafer) {
  const Fabric fab = two_wafer_fabric();
  FaultModelParams params;
  params.burst_probability = 1.0;
  params.fiber_cut_weight = 0.0;  // cut anchors span wafers; exclude for the check
  params.rack_power_probability = 0.0;  // rack-power bursts cross wafers by design
  const FaultInjector injector{fab, params, 7};
  std::size_t bursts = 0;
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    const auto faults = injector.sample_trial(trial);
    ASSERT_GE(faults.size(), 2u) << "burst_probability=1 always bursts";
    ++bursts;
    for (const Fault& f : faults) {
      EXPECT_EQ(f.tile.wafer, faults.front().tile.wafer) << "trial " << trial;
    }
  }
  EXPECT_GT(bursts, 0u);
}

// Rack-power bursts spill onto the wafers after the anchor's, in order —
// extra i lands on wafer (w0 + 1 + i) mod wafer_count.  The domain draw is
// part of the seeded stream, so the split below is a regression pin: a
// change to the draw order shows up as a different domain mix.
TEST(Injector, RackPowerBurstsSpanConsecutiveWafers) {
  FabricConfig config;
  config.wafer_count = 4;
  const Fabric fab{config};
  FaultModelParams params;
  params.burst_probability = 1.0;
  params.fiber_cut_weight = 0.0;
  params.rack_power_probability = 1.0;  // every burst is a rack-power event
  const FaultInjector injector{fab, params, 7};
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    const SampledFaults sf = injector.sample_trial_with_domain(trial);
    ASSERT_GE(sf.faults.size(), 2u);
    EXPECT_EQ(sf.domain, BurstDomain::kRackPower) << "trial " << trial;
    const auto w0 = sf.faults.front().tile.wafer;
    for (std::size_t i = 1; i < sf.faults.size(); ++i) {
      const auto want = static_cast<fabric::WaferId>(
          (w0 + static_cast<fabric::WaferId>(i)) % config.wafer_count);
      EXPECT_EQ(sf.faults[i].tile.wafer, want)
          << "trial " << trial << " extra " << i - 1;
    }
  }
}

// On a single-wafer fabric there is no second wafer to power down, so the
// domain degrades to kWafer — but the Bernoulli draw still happens, keeping
// the stream identical to the multi-wafer case.
TEST(Injector, RackPowerDomainDegradesOnSingleWafer) {
  const Fabric fab{FabricConfig{}};
  FaultModelParams params;
  params.burst_probability = 1.0;
  params.rack_power_probability = 1.0;
  const FaultInjector injector{fab, params, 7};
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const SampledFaults sf = injector.sample_trial_with_domain(trial);
    EXPECT_EQ(sf.domain, BurstDomain::kWafer) << "trial " << trial;
    for (const Fault& f : sf.faults) EXPECT_EQ(f.tile.wafer, 0u);
  }
}

// The domain draw is a pure function of (seed, trial): same inputs, same
// SampledFaults — and single-fault trials report kNone.
TEST(Injector, DomainDrawIsDeterministic) {
  const Fabric fab = two_wafer_fabric();
  FaultModelParams params;
  params.burst_probability = 0.0;  // never bursts
  const FaultInjector injector{fab, params, 42};
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const SampledFaults a = injector.sample_trial_with_domain(trial);
    const SampledFaults b = injector.sample_trial_with_domain(trial);
    EXPECT_EQ(a.domain, BurstDomain::kNone);
    ASSERT_EQ(a.faults.size(), 1u);
    ASSERT_EQ(b.faults.size(), 1u);
    EXPECT_TRUE(same_fault(a.faults.front(), b.faults.front())) << trial;
  }
}

TEST(FaultSet, QueriesReflectAddedFaults) {
  FaultSet fs;
  fs.add({.kind = FaultKind::kMziStuck, .tile = {0, 5}, .direction = Direction::kEast});
  fs.add({.kind = FaultKind::kWaveguideLoss, .tile = {0, 5},
          .direction = Direction::kEast, .excess_loss = Decibel::db(2.0)});
  fs.add({.kind = FaultKind::kWaveguideLoss, .tile = {0, 5},
          .direction = Direction::kEast, .excess_loss = Decibel::db(1.5)});
  fs.add({.kind = FaultKind::kLaserLoss, .tile = {1, 3}, .dead_lasers = 4});
  fs.add({.kind = FaultKind::kFiberCut, .fiber_link = 2});
  fs.add({.kind = FaultKind::kChipDeath, .tile = {1, 9}});

  EXPECT_TRUE(fs.mzi_stuck({0, 5}, Direction::kEast));
  EXPECT_FALSE(fs.mzi_stuck({0, 5}, Direction::kWest));
  EXPECT_DOUBLE_EQ(fs.waveguide_excess({0, 5}, Direction::kEast).value(), 3.5)
      << "repeated drift accumulates";
  EXPECT_EQ(fs.dead_lasers({1, 3}), 4u);
  EXPECT_EQ(fs.dead_lasers({0, 3}), 0u);
  EXPECT_TRUE(fs.fiber_cut(2));
  EXPECT_FALSE(fs.fiber_cut(0));
  EXPECT_TRUE(fs.chip_dead({1, 9}));
  EXPECT_FALSE(fs.chip_dead({0, 9}));
}

// apply_to() must be exactly undone by revert(): same lanes, endpoint
// wavelengths, fiber flags and usage, and MZI parameters as before.
TEST(FaultSet, ApplyThenRevertRestoresTheFabric) {
  Fabric fab = two_wafer_fabric();
  (void)fab.connect({0, 0}, {0, 3}, 2);
  (void)fab.connect({0, 7}, {1, 4}, 2);

  const auto lanes0 = fab.wafer(0).total_lanes_used();
  const auto lanes1 = fab.wafer(1).total_lanes_used();
  const auto tx0 = fab.wafer(0).tile(0).tx_used();
  const auto tau = fab.wafer(0).tile(5).mzi(Direction::kEast).params().tau;
  const auto target = fab.wafer(0).tile(5).mzi(Direction::kEast).target_port();
  const auto fiber_used = fab.fiber_links()[0].used;

  FaultSet fs;
  fs.add({.kind = FaultKind::kMziStuck, .tile = {0, 5}, .direction = Direction::kEast,
          .stuck_port = phys::MziPort::kCross});
  fs.add({.kind = FaultKind::kMziDrift, .tile = {0, 5}, .direction = Direction::kEast,
          .excess_loss = Decibel::db(0.8), .tau_factor = 4.0});
  fs.add({.kind = FaultKind::kWaveguideLoss, .tile = {0, 9},
          .direction = Direction::kSouth, .excess_loss = Decibel::db(5.0)});
  fs.add({.kind = FaultKind::kFiberCut, .fiber_link = 0});
  fs.add({.kind = FaultKind::kLaserLoss, .tile = {0, 0}, .dead_lasers = 3});
  fs.add({.kind = FaultKind::kChipDeath, .tile = {1, 20}});
  fs.apply_to(fab);
  EXPECT_TRUE(fs.applied());

  // The overlay took effect.
  EXPECT_GT(fab.wafer(0).total_lanes_used(), lanes0) << "edges quarantined";
  EXPECT_TRUE(fab.fiber_links()[0].down);
  EXPECT_EQ(fab.wafer(0).tile(0).tx_used(), tx0 + 3) << "dark lasers parked";
  EXPECT_EQ(fab.wafer(1).tile(20).tx_free(), 0u) << "dead chip endpoints parked";
  EXPECT_EQ(fab.wafer(1).tile(20).rx_free(), 0u);
  EXPECT_EQ(fab.wafer(0).tile(5).mzi(Direction::kEast).target_port(),
            phys::MziPort::kCross);
  EXPECT_GT(fab.wafer(0).tile(5).mzi(Direction::kEast).params().tau, tau);

  fs.revert(fab);
  EXPECT_FALSE(fs.applied());
  EXPECT_EQ(fab.wafer(0).total_lanes_used(), lanes0);
  EXPECT_EQ(fab.wafer(1).total_lanes_used(), lanes1);
  EXPECT_EQ(fab.wafer(0).tile(0).tx_used(), tx0);
  EXPECT_FALSE(fab.fiber_links()[0].down);
  EXPECT_EQ(fab.fiber_links()[0].used, fiber_used);
  EXPECT_EQ(fab.wafer(1).tile(20).tx_used(), 0u);
  EXPECT_EQ(fab.wafer(1).tile(20).rx_used(), 0u);
  EXPECT_EQ(fab.wafer(0).tile(5).mzi(Direction::kEast).params().tau, tau);
  EXPECT_EQ(fab.wafer(0).tile(5).mzi(Direction::kEast).target_port(), target);
}

TEST(FaultSet, CutFiberRefusesNewCircuitsUntilReverted) {
  Fabric fab = two_wafer_fabric();
  FaultSet fs;
  // Cut every bundle: no cross-wafer circuit can be placed.
  for (std::size_t i = 0; i < fab.fiber_links().size(); ++i) {
    fs.add({.kind = FaultKind::kFiberCut, .fiber_link = i});
  }
  fs.apply_to(fab);
  EXPECT_FALSE(fab.connect({0, 7}, {1, 4}, 1).ok());
  fs.revert(fab);
  EXPECT_TRUE(fab.connect({0, 7}, {1, 4}, 1).ok());
}

TEST(Health, NoFaultsMeansCleanScan) {
  Fabric fab = two_wafer_fabric();
  (void)fab.connect({0, 0}, {0, 3}, 2);
  (void)fab.connect({0, 7}, {1, 4}, 2);
  const HealthMonitor monitor;
  EXPECT_TRUE(monitor.scan(fab, FaultSet{}).empty());
}

TEST(Health, StuckMziOnThePathIsHardDown) {
  Fabric fab = two_wafer_fabric();
  const auto id = fab.connect({0, 0}, {0, 3}, 2);  // XY: east, east, east
  ASSERT_TRUE(id.ok());
  FaultSet fs;
  fs.add({.kind = FaultKind::kMziStuck, .tile = {0, 1}, .direction = Direction::kEast});
  const HealthMonitor monitor;
  const auto d = monitor.diagnose(fab, fs, id.value());
  EXPECT_EQ(d.health, CircuitHealth::kDown);
  EXPECT_TRUE(d.hard_down);

  // The same fault seen from the receiving side of the hop also matches.
  FaultSet entry_side;
  entry_side.add(
      {.kind = FaultKind::kMziStuck, .tile = {0, 2}, .direction = Direction::kWest});
  EXPECT_TRUE(monitor.diagnose(fab, entry_side, id.value()).hard_down);

  // A stuck switch elsewhere does not affect this circuit.
  FaultSet unrelated;
  unrelated.add(
      {.kind = FaultKind::kMziStuck, .tile = {0, 20}, .direction = Direction::kEast});
  EXPECT_EQ(monitor.diagnose(fab, unrelated, id.value()).health,
            CircuitHealth::kHealthy);
}

TEST(Health, LossDriftDegradesWhenTheBudgetStopsClosing) {
  Fabric fab = two_wafer_fabric();
  const auto id = fab.connect({0, 0}, {0, 3}, 2);
  ASSERT_TRUE(id.ok());
  const HealthMonitor monitor;

  FaultSet mild;
  mild.add({.kind = FaultKind::kWaveguideLoss, .tile = {0, 0},
            .direction = Direction::kEast, .excess_loss = Decibel::db(0.2)});
  const auto d_mild = monitor.diagnose(fab, mild, id.value());
  EXPECT_EQ(d_mild.health, CircuitHealth::kHealthy)
      << "0.2 dB of drift sits inside the margin";
  EXPECT_DOUBLE_EQ(d_mild.fault_excess.value(), 0.2);

  FaultSet severe;
  severe.add({.kind = FaultKind::kWaveguideLoss, .tile = {0, 0},
              .direction = Direction::kEast, .excess_loss = Decibel::db(40.0)});
  const auto d = monitor.diagnose(fab, severe, id.value());
  EXPECT_EQ(d.health, CircuitHealth::kDegraded);
  EXPECT_TRUE(d.budget_failed);
  EXPECT_FALSE(d.budget.closes);
  EXPECT_FALSE(d.hard_down) << "light still arrives, just too faint";
}

TEST(Health, LaserLossAndEndpointDeathDiagnoses) {
  Fabric fab = two_wafer_fabric();
  const auto on_wafer = fab.connect({0, 0}, {0, 3}, 2);
  const auto cross = fab.connect({0, 7}, {1, 4}, 2);
  ASSERT_TRUE(on_wafer.ok());
  ASSERT_TRUE(cross.ok());
  const HealthMonitor monitor;

  FaultSet lasers;
  lasers.add({.kind = FaultKind::kLaserLoss, .tile = {0, 0}, .dead_lasers = 2});
  const auto d1 = monitor.diagnose(fab, lasers, on_wafer.value());
  EXPECT_EQ(d1.health, CircuitHealth::kDegraded);
  EXPECT_EQ(d1.dead_lasers, 2u);

  FaultSet cut;
  const auto link = fab.fiber_link_of(cross.value());
  ASSERT_TRUE(link.has_value());
  cut.add({.kind = FaultKind::kFiberCut, .fiber_link = *link});
  const auto d2 = monitor.diagnose(fab, cut, cross.value());
  EXPECT_EQ(d2.health, CircuitHealth::kDown);
  EXPECT_TRUE(d2.hard_down);

  FaultSet death;
  death.add({.kind = FaultKind::kChipDeath, .tile = {1, 4}});
  const auto d3 = monitor.diagnose(fab, death, cross.value());
  EXPECT_EQ(d3.health, CircuitHealth::kDown);
  EXPECT_TRUE(d3.dst_dead);
  EXPECT_FALSE(d3.src_dead);
}

// The 0.5 dB (min_margin) threshold is closed on the healthy side: margin ==
// min_margin is acceptable, only strictly below degrades.  Pin that at both
// the helper and the diagnosis level, bit-exactly, by re-using the monitor's
// own computed margin as the threshold.
TEST(Health, MarginExactlyAtThresholdIsHealthy) {
  constexpr HealthMonitorParams params;
  static_assert(params.margin_acceptable(Decibel::db(0.5)),
                "the boundary itself is acceptable");
  static_assert(params.margin_acceptable(Decibel::db(0.6)));
  static_assert(!params.margin_acceptable(Decibel::db(0.4999999)));

  Fabric fab = two_wafer_fabric();
  const auto id = fab.connect({0, 0}, {0, 3}, 2);
  ASSERT_TRUE(id.ok());
  FaultSet fs;
  fs.add({.kind = FaultKind::kWaveguideLoss, .tile = {0, 0},
          .direction = Direction::kEast, .excess_loss = Decibel::db(0.2)});
  const auto baseline = HealthMonitor{}.diagnose(fab, fs, id.value());
  ASSERT_TRUE(baseline.budget.closes);
  const Decibel faulted_margin = baseline.budget.margin;

  // Threshold exactly equal to the observed margin: still healthy.
  const HealthMonitor at{HealthMonitorParams{.min_margin = faulted_margin}};
  const auto d_at = at.diagnose(fab, fs, id.value());
  EXPECT_EQ(d_at.health, CircuitHealth::kHealthy)
      << "margin == min_margin must classify healthy on every platform";
  EXPECT_FALSE(d_at.budget_failed);

  // The next representable dB above the margin: degraded.
  const HealthMonitor above{HealthMonitorParams{
      .min_margin = Decibel::db(std::nextafter(
          faulted_margin.value(), std::numeric_limits<double>::infinity()))}};
  const auto d_above = above.diagnose(fab, fs, id.value());
  EXPECT_EQ(d_above.health, CircuitHealth::kDegraded);
  EXPECT_TRUE(d_above.budget_failed);
}

// Property: for any sampled fault set, apply_to() followed by revert() is an
// exact no-op on the fabric's resource ledger — even while a multi-hop ring
// schedule is in flight (established circuits pin lanes, wavelengths, and
// fibers that the overlay must not disturb).
TEST(FaultSet, ApplyRevertRoundTripsDuringInFlightSchedule) {
  Fabric fab = two_wafer_fabric();
  // An in-flight ring phase: a closed loop of circuits across both wafers,
  // like the runtime layer's collective mid-iteration.
  const std::vector<GlobalTile> ring = {{0, 0}, {0, 3}, {0, 11}, {0, 7},
                                        {1, 0}, {1, 9},  {1, 2}};
  for (std::size_t i = 0; i < ring.size(); ++i) {
    ASSERT_TRUE(fab.connect(ring[i], ring[(i + 1) % ring.size()], 2).ok())
        << "ring edge " << i;
  }

  struct Snapshot {
    std::vector<std::uint32_t> lanes;  // per (wafer, tile, direction) free lanes
    std::vector<std::uint32_t> endpoints;  // per tile tx_used / rx_used
    std::vector<std::uint32_t> fiber_used;
    std::vector<bool> fiber_down;
    std::vector<fabric::CircuitId> circuits;
  };
  const auto snapshot = [](const Fabric& f) {
    Snapshot s;
    for (fabric::WaferId wid = 0; wid < f.wafer_count(); ++wid) {
      const auto& w = f.wafer(wid);
      for (fabric::TileId t = 0; t < w.tile_count(); ++t) {
        for (const Direction d : {Direction::kNorth, Direction::kEast,
                                  Direction::kSouth, Direction::kWest}) {
          if (w.neighbor(t, d)) s.lanes.push_back(w.lanes_free(t, d));
        }
        s.endpoints.push_back(w.tile(t).tx_used());
        s.endpoints.push_back(w.tile(t).rx_used());
      }
    }
    for (const auto& link : f.fiber_links()) {
      s.fiber_used.push_back(link.used);
      s.fiber_down.push_back(link.down);
    }
    s.circuits = f.circuit_ids();
    return s;
  };

  const Snapshot before = snapshot(fab);
  const FaultInjector injector{fab, {}, 0xab5e};
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    FaultSet fs;
    fs.add_all(injector.sample_trial(trial));
    fs.apply_to(fab);
    fs.revert(fab);
    const Snapshot after = snapshot(fab);
    ASSERT_EQ(after.lanes, before.lanes) << "trial " << trial;
    ASSERT_EQ(after.endpoints, before.endpoints) << "trial " << trial;
    ASSERT_EQ(after.fiber_used, before.fiber_used) << "trial " << trial;
    ASSERT_EQ(after.fiber_down, before.fiber_down) << "trial " << trial;
    ASSERT_EQ(after.circuits, before.circuits) << "trial " << trial;
  }
}

TEST(Health, ScanReportsAscendingIds) {
  Fabric fab = two_wafer_fabric();
  std::vector<fabric::CircuitId> ids;
  for (TileId t = 0; t < 4; ++t) {
    const auto id = fab.connect({0, t}, {0, t + 8}, 1);  // straight south
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  FaultSet fs;
  for (TileId t = 0; t < 4; ++t) {
    fs.add({.kind = FaultKind::kMziStuck, .tile = {0, t}, .direction = Direction::kSouth});
  }
  const auto diagnoses = HealthMonitor{}.scan(fab, fs);
  ASSERT_EQ(diagnoses.size(), ids.size());
  EXPECT_TRUE(std::is_sorted(diagnoses.begin(), diagnoses.end(),
                             [](const auto& a, const auto& b) { return a.id < b.id; }));
}

// End-to-end: fault -> diagnosis -> ladder with a fault-aware validator.
// The quarantined edge forces the reroute onto healthy hardware, and the
// validator confirms the replacement diagnoses clean.
TEST(Ladder, FaultAwareRerouteProducesAHealthyReplacement) {
  Fabric fab = two_wafer_fabric();
  const auto id = fab.connect({0, 0}, {0, 3}, 2);
  ASSERT_TRUE(id.ok());
  FaultSet fs;
  fs.add({.kind = FaultKind::kMziStuck, .tile = {0, 1}, .direction = Direction::kEast,
          .stuck_port = phys::MziPort::kBar});
  fs.apply_to(fab);

  const HealthMonitor monitor;
  const auto diagnoses = monitor.scan(fab, fs);
  ASSERT_EQ(diagnoses.size(), 1u);

  routing::EscalationOptions opts;
  opts.validate = [&](const Fabric& f, fabric::CircuitId cid) {
    return monitor.diagnose(f, fs, cid).health == CircuitHealth::kHealthy;
  };
  const auto out = routing::escalate_repair(fab, to_degraded(diagnoses.front()), opts);
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.rung, routing::RepairRung::kReroute);
  ASSERT_EQ(out.circuits.size(), 1u);
  EXPECT_EQ(monitor.diagnose(fab, fs, out.circuits.front()).health,
            CircuitHealth::kHealthy);
  fs.revert(fab);
}

core::ComponentStudyParams quick_component_params() {
  core::ComponentStudyParams p;
  p.component_mtbf_hours = 2000.0;  // high fault rate for test speed
  p.horizon_hours = 24.0 * 7.0;
  p.fleet_chips = 1024;
  return p;
}

TEST(ComponentStudy, DeterministicUnderSeed) {
  const auto a = core::run_component_fault_study(quick_component_params());
  const auto b = core::run_component_fault_study(quick_component_params());
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.recovered_by, b.recovered_by);
  EXPECT_EQ(a.chip_hours_lost, b.chip_hours_lost);
}

// The acceptance criterion: the fault Monte-Carlo is bit-identical at any
// thread count.
TEST(ComponentStudy, ReportIdenticalAtAnyThreadCount) {
  auto serial = quick_component_params();
  serial.threads = 1;
  auto wide = quick_component_params();
  wide.threads = std::max(4u, std::thread::hardware_concurrency());
  const auto a = core::run_component_fault_study(serial);
  const auto b = core::run_component_fault_study(wide);
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.bursts, b.bursts);
  EXPECT_EQ(a.degraded_circuits, b.degraded_circuits);
  EXPECT_EQ(a.hard_down_circuits, b.hard_down_circuits);
  EXPECT_EQ(a.recovered_by, b.recovered_by);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.unrecovered, b.unrecovered);
  EXPECT_EQ(a.chip_hours_lost, b.chip_hours_lost) << "must be bit-identical";
  EXPECT_EQ(a.recovery_seconds_total, b.recovery_seconds_total);
  EXPECT_EQ(a.availability, b.availability);
}

TEST(ComponentStudy, LadderAccountingIsConsistent) {
  const auto report = core::run_component_fault_study(quick_component_params());
  EXPECT_GT(report.fault_events, 0u);
  EXPECT_GE(report.faults_injected, report.fault_events);
  EXPECT_GT(report.degraded_circuits, 0u);

  std::uint64_t recovered = 0;
  for (std::size_t k = 0; k < routing::kRepairRungCount; ++k) {
    recovered += report.recovered_by[k];
    EXPECT_GE(report.attempts[k], report.recovered_by[k]) << "rung " << k;
  }
  EXPECT_EQ(recovered + report.unrecovered, report.degraded_circuits);
  EXPECT_GE(report.availability, 0.0);
  EXPECT_LE(report.availability, 1.0);

  // With hundreds of trials every optical rung sees recoveries.
  EXPECT_GT(report.recovered_by[routing::rung_index(routing::RepairRung::kRetune)], 0u);
  EXPECT_GT(report.recovered_by[routing::rung_index(routing::RepairRung::kReroute)], 0u);
  EXPECT_GT(report.recovered_by[routing::rung_index(routing::RepairRung::kRespare)], 0u);
}

TEST(ComponentStudy, BurstsRaiseTheDegradedCount) {
  auto calm = quick_component_params();
  calm.model.burst_probability = 0.0;
  auto bursty = quick_component_params();
  bursty.model.burst_probability = 1.0;
  const auto a = core::run_component_fault_study(calm);
  const auto b = core::run_component_fault_study(bursty);
  EXPECT_EQ(a.bursts, 0u);
  EXPECT_EQ(b.bursts, b.fault_events);
  EXPECT_GT(b.faults_injected, a.faults_injected);
}

// --- Gray failures: flap traces, the settle oracle, and the damper --------

TEST(Gray, FlapTraceIsAPureFunctionOfItsStreamAndWellFormed) {
  const Fabric fab = two_wafer_fabric();
  const FaultInjector injector{fab, {}, 42};
  const GrayModelParams params;
  for (std::uint64_t episode = 0; episode < 32; ++episode) {
    Rng a{util::task_seed(0xf1a9, episode)};
    Rng b{util::task_seed(0xf1a9, episode)};
    const GrayEpisode e1 = injector.sample_gray_at(a, params, {0, 1}, Direction::kEast);
    const GrayEpisode e2 = injector.sample_gray_at(b, params, {0, 1}, Direction::kEast);
    EXPECT_EQ(e1.trace.toggles(), e2.trace.toggles())
        << "episode " << episode << ": a trace must be a pure function of its stream";
    EXPECT_EQ(e1.ber_burst, e2.ber_burst);
    EXPECT_EQ(e1.ber_seconds, e2.ber_seconds);

    const auto& tg = e1.trace.toggles();
    ASSERT_FALSE(tg.empty());
    ASSERT_EQ(tg.size() % 2, 0u) << "every episode ends re-locked";
    EXPECT_EQ(tg.front(), 0.0) << "an episode begins with the link dropping";
    for (std::size_t i = 0; i + 1 < tg.size(); ++i) {
      EXPECT_LT(tg[i], tg[i + 1]) << "toggle times strictly increase";
    }
    EXPECT_GE(e1.trace.dips(), 1u);
    EXPECT_LE(e1.trace.dips(), params.max_dips);
    double down_total = 0.0;
    for (std::size_t k = 0; k < e1.trace.dips(); ++k) {
      EXPECT_TRUE(e1.trace.down_at(e1.trace.dip_start(k)));
      EXPECT_FALSE(e1.trace.down_at(tg[2 * k + 1]))
          << "down intervals are half-open: up exactly at the re-lock";
      down_total += e1.trace.dip_seconds(k);
    }
    EXPECT_DOUBLE_EQ(e1.trace.down_seconds(), down_total);
    EXPECT_FALSE(e1.trace.down_at(e1.trace.duration_seconds()));
  }
}

TEST(Gray, SampleGrayTrialIsSeededRegression) {
  const Fabric fab = two_wafer_fabric();
  const FaultInjector injector{fab, {}, 42};
  const GrayModelParams params;
  const GrayEpisode a = injector.sample_gray_trial(5, params);
  const GrayEpisode b = injector.sample_gray_trial(5, params);
  EXPECT_EQ(a.trace.toggles(), b.trace.toggles());
  EXPECT_TRUE(a.tile == b.tile);
  EXPECT_EQ(a.direction, b.direction);
  const GrayEpisode c = injector.sample_gray_trial(6, params);
  EXPECT_NE(a.trace.toggles(), c.trace.toggles())
      << "distinct trials must draw distinct traces";
  // Same component on both draws implies the damper key agrees too.
  EXPECT_EQ(gray_component_key(a.tile, a.direction),
            gray_component_key(b.tile, b.direction));
}

TEST(Gray, SettleTransientOracleIsDeterministic) {
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    EXPECT_FALSE(settle_transient_failure(9, attempt, 0.0));
    EXPECT_TRUE(settle_transient_failure(9, attempt, 1.0));
    EXPECT_EQ(settle_transient_failure(9, attempt, 0.5),
              settle_transient_failure(9, attempt, 0.5))
        << "the oracle is a pure function of (seed, attempt)";
  }
  int hits = 0;
  for (std::uint64_t attempt = 0; attempt < 256; ++attempt) {
    hits += settle_transient_failure(1234, attempt, 0.5) ? 1 : 0;
  }
  EXPECT_GT(hits, 64);
  EXPECT_LT(hits, 192);
}

TEST(Gray, BerBurstExcessStaysUnderTheHealthMargin) {
  Fabric fab = two_wafer_fabric();
  const auto id = fab.connect({0, 0}, {0, 3}, 2);
  ASSERT_TRUE(id.ok());
  const HealthMonitor monitor;
  const GrayModelParams params;
  ASSERT_LT(params.ber_excess.value(), monitor.params().min_margin.value())
      << "the model keeps BER-burst excess under the degradation threshold";
  FaultSet fs;
  fs.add({.kind = FaultKind::kWaveguideLoss, .tile = {0, 0},
          .direction = Direction::kEast, .excess_loss = params.ber_excess});
  const auto d = monitor.diagnose(fab, fs, id.value());
  EXPECT_EQ(d.health, CircuitHealth::kHealthy)
      << "the fabric lies: a BER burst passes the health check";
  EXPECT_DOUBLE_EQ(d.fault_excess.value(), params.ber_excess.value());
}

TEST(Damper, ThresholdAndHoldBoundariesArePinned) {
  FlapDamper d;  // penalty 1.0, suspect 1.5, quarantine 3.0, holds 30 s / 15 s
  const std::uint64_t k = 7;
  EXPECT_EQ(d.state(k, Duration::zero()), LinkState::kHealthy);
  EXPECT_EQ(d.record_flap(k, Duration::zero()), LinkState::kHealthy);  // score 1.0
  EXPECT_EQ(d.record_flap(k, Duration::zero()), LinkState::kSuspect);  // 2.0 >= 1.5
  EXPECT_EQ(d.record_flap(k, Duration::zero()), LinkState::kQuarantined)
      << "score == quarantine_threshold escalates (closed boundary)";
  EXPECT_EQ(d.stats().quarantines, 1u);
  EXPECT_FALSE(d.repair_allowed(k, Duration::seconds(1.0)));

  // Hold expiries are closed on the exit side: at exactly quarantine_hold
  // the link has advanced to probation, at exactly +probation_hold it is
  // healthy again, and the clean probation wiped the flap history.
  EXPECT_EQ(d.state(k, Duration::seconds(29.999)), LinkState::kQuarantined);
  EXPECT_EQ(d.state(k, Duration::seconds(30.0)), LinkState::kProbation);
  EXPECT_TRUE(d.repair_allowed(k, Duration::seconds(30.0)));
  EXPECT_EQ(d.state(k, Duration::seconds(44.999)), LinkState::kProbation);
  EXPECT_EQ(d.state(k, Duration::seconds(45.0)), LinkState::kHealthy);
  EXPECT_EQ(d.stats().probations, 1u);
  EXPECT_EQ(d.score(k, Duration::seconds(45.0)), 0.0);
  EXPECT_EQ(d.record_flap(k, Duration::seconds(45.0)), LinkState::kHealthy)
      << "one fresh flap after a clean probation scores from zero";

  // A suspect link whose score decays back under the threshold is demoted
  // without any hold: three half-lives take 2.0 down to 0.25.
  const std::uint64_t k2 = 8;
  d.record_flap(k2, Duration::zero());
  EXPECT_EQ(d.record_flap(k2, Duration::zero()), LinkState::kSuspect);
  EXPECT_EQ(d.state(k2, Duration::seconds(90.0)), LinkState::kHealthy);
}

TEST(Damper, FlapDuringProbationRelapsesToQuarantine) {
  FlapDamper d;
  const std::uint64_t k = 1;
  d.record_flap(k, Duration::zero());
  d.record_flap(k, Duration::zero());
  ASSERT_EQ(d.record_flap(k, Duration::zero()), LinkState::kQuarantined);
  ASSERT_EQ(d.state(k, Duration::seconds(35.0)), LinkState::kProbation);
  EXPECT_EQ(d.record_flap(k, Duration::seconds(35.0)), LinkState::kQuarantined)
      << "probation forgives nothing";
  EXPECT_EQ(d.stats().relapses, 1u);
  EXPECT_EQ(d.stats().quarantines, 2u);
  // The relapse restarted the full hold from the relapse instant.
  EXPECT_EQ(d.state(k, Duration::seconds(64.999)), LinkState::kQuarantined);
  EXPECT_EQ(d.state(k, Duration::seconds(65.0)), LinkState::kProbation);
}

// Property: across a whole storm, the ladder is invoked exactly when the
// damper is not in quarantine, and every suppressed invocation is counted.
TEST(Damper, StormNeverInvokesTheLadderWhileQuarantined) {
  FlapDamper d;
  const std::uint64_t key = gray_component_key({0, 3}, Direction::kEast);
  Rng rng{0x57a6};
  double t = 0.0;
  std::uint64_t climbs = 0;
  std::uint64_t suppressed = 0;
  for (int i = 0; i < 300; ++i) {
    t += rng.uniform(0.0, 4.0);
    const Duration now = Duration::seconds(t);
    const bool allowed = d.repair_allowed(key, now);
    EXPECT_EQ(allowed, d.state(key, now) != LinkState::kQuarantined);
    if (allowed) {
      ++climbs;  // the consumer would climb the repair ladder here
    } else {
      ++suppressed;  // quarantined: ride out the dip instead
    }
    d.record_flap(key, now);
  }
  EXPECT_GT(climbs, 0u);
  EXPECT_GT(suppressed, 0u) << "a 300-flap storm must hit quarantine";
  EXPECT_EQ(d.stats().flaps, 300u);
  EXPECT_EQ(d.stats().suppressed_repairs, suppressed)
      << "the damper's own count must match the consumer's observation";
}

}  // namespace
}  // namespace lp::fault
