// Differential correctness harness for the plan cache: a cached planner and
// a fresh planner driven through the same randomized sequence of plan /
// release / fault-apply / fault-revert operations on mirror fabrics must
// produce bit-identical PlanReports and bit-identical resource ledgers at
// every step.  The cache may only change *how fast* a plan is found, never
// *which* plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/fault.hpp"
#include "lightpath/fabric.hpp"
#include "routing/plan_cache.hpp"
#include "routing/planner.hpp"
#include "routing/repair.hpp"
#include "runtime/recovery.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace lp::routing {
namespace {

using fabric::Direction;
using fabric::Fabric;
using fabric::FabricConfig;
using fabric::GlobalTile;
using fabric::TileId;

FabricConfig two_wafer_config() {
  FabricConfig config;
  config.wafer.rows = 4;
  config.wafer.cols = 8;
  config.wafer.lanes_per_edge = 64;
  config.wafer_count = 2;
  return config;
}

Fabric make_fabric() {
  Fabric fab{two_wafer_config()};
  fab.add_fiber_link({0, 7}, {1, 0}, 64);
  fab.add_fiber_link({0, 15}, {1, 8}, 64);
  return fab;
}

/// Reports must match field by field: same demands placed in the same
/// order, same failures, same programming cost.  CircuitIds are
/// allocation-order handles and are compared only for *count* (both sides
/// allocate in the same order, but absolute ids drift once release
/// patterns differ from circuit-id reuse... they don't here — still, the
/// demand sequence is the semantic content).
void expect_reports_equal(const PlanReport& cached, const PlanReport& fresh) {
  ASSERT_EQ(cached.placed.size(), fresh.placed.size());
  for (std::size_t i = 0; i < cached.placed.size(); ++i) {
    EXPECT_EQ(cached.placed[i].demand, fresh.placed[i].demand) << "index " << i;
  }
  ASSERT_EQ(cached.failed.size(), fresh.failed.size());
  for (std::size_t i = 0; i < cached.failed.size(); ++i) {
    EXPECT_EQ(cached.failed[i], fresh.failed[i]) << "index " << i;
  }
  EXPECT_EQ(cached.mzis_programmed, fresh.mzis_programmed);
  EXPECT_EQ(cached.reconfig_latency, fresh.reconfig_latency);
}

Demand random_demand(Rng& rng, std::uint32_t tiles, std::uint32_t wafers) {
  Demand d;
  d.src.wafer = static_cast<fabric::WaferId>(rng.uniform_index(wafers));
  // Mostly same-wafer demands: cross-wafer exercises the fiber path but
  // same-wafer is where route memoization lives.
  d.dst.wafer = rng.bernoulli(0.2)
                    ? static_cast<fabric::WaferId>(rng.uniform_index(wafers))
                    : d.src.wafer;
  d.src.tile = static_cast<TileId>(rng.uniform_index(tiles));
  do {
    d.dst.tile = static_cast<TileId>(rng.uniform_index(tiles));
  } while (d.dst == d.src);
  d.wavelengths = 1 + static_cast<std::uint32_t>(rng.uniform_index(3));
  return d;
}

std::vector<Demand> random_demand_set(Rng& rng, std::size_t max_size,
                                      std::uint32_t tiles, std::uint32_t wafers) {
  const std::size_t n = 1 + rng.uniform_index(max_size);
  std::vector<Demand> demands;
  demands.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    demands.push_back(random_demand(rng, tiles, wafers));
  }
  return demands;
}

fault::Fault quarantine_fault(Rng& rng, std::uint32_t tiles) {
  fault::Fault f;
  f.kind = fault::FaultKind::kMziStuck;
  f.tile = GlobalTile{0, static_cast<TileId>(rng.uniform_index(tiles))};
  f.direction = static_cast<Direction>(rng.uniform_index(4));
  return f;
}

// --- The differential suite ------------------------------------------------

TEST(PlanCacheDifferential, CachedEqualsFreshOver200RandomizedCases) {
  constexpr std::size_t kCases = 200;
  constexpr std::size_t kRoundsPerCase = 6;
  std::uint64_t total_hits = 0;

  for (std::size_t c = 0; c < kCases; ++c) {
    Rng rng{util::task_seed(0xd1ffu, c)};
    Fabric cached_fab = make_fabric();
    Fabric fresh_fab = make_fabric();
    PlanCache cache{cached_fab};
    CircuitPlanner fresh{fresh_fab};
    const std::uint32_t tiles = cached_fab.wafer(0).tile_count();

    std::vector<std::vector<Demand>> live_sets;
    std::vector<PlanReport> cached_live;
    std::vector<PlanReport> fresh_live;
    fault::FaultSet faults_cached;
    fault::FaultSet faults_fresh;
    bool faults_on = false;

    auto plan_both = [&](const std::vector<Demand>& demands) {
      PlanReport rc = cache.place_all(demands);
      PlanReport rf = fresh.place_all(demands);
      expect_reports_equal(rc, rf);
      ASSERT_EQ(cached_fab.ledger_digest(), fresh_fab.ledger_digest())
          << "mirror fabrics diverged after planning";
      live_sets.push_back(demands);
      cached_live.push_back(std::move(rc));
      fresh_live.push_back(std::move(rf));
    };
    auto release_index = [&](std::size_t i) {
      cache.release_all(cached_live[i]);
      fresh.release_all(fresh_live[i]);
      ASSERT_EQ(cached_fab.ledger_digest(), fresh_fab.ledger_digest())
          << "mirror fabrics diverged after release";
      live_sets.erase(live_sets.begin() + static_cast<std::ptrdiff_t>(i));
      cached_live.erase(cached_live.begin() + static_cast<std::ptrdiff_t>(i));
      fresh_live.erase(fresh_live.begin() + static_cast<std::ptrdiff_t>(i));
    };

    for (std::size_t round = 0; round < kRoundsPerCase; ++round) {
      const double action = rng.uniform();
      if (action < 0.5 || live_sets.empty()) {
        plan_both(random_demand_set(rng, 12, tiles, 2));
      } else if (action < 0.8) {
        release_index(rng.uniform_index(live_sets.size()));
      } else if (!faults_on) {
        // Mid-sequence fault: both fabrics quarantine identically, and the
        // cached side's epoch bump forbids replaying pre-fault plans.
        const fault::Fault f = quarantine_fault(rng, tiles);
        faults_cached.add(f);
        faults_fresh.add(f);
        faults_cached.apply_to(cached_fab);
        faults_fresh.apply_to(fresh_fab);
        faults_on = true;
        ASSERT_EQ(cached_fab.ledger_digest(), fresh_fab.ledger_digest());
      } else {
        faults_cached.revert(cached_fab);
        faults_fresh.revert(fresh_fab);
        faults_on = false;
        ASSERT_EQ(cached_fab.ledger_digest(), fresh_fab.ledger_digest());
      }
    }

    // Guaranteed-hit tail: plan a probe set, release it (which restores the
    // exact pre-plan ledger), and plan it again.  No epoch bump happens in
    // between, so the second plan MUST be a cache hit.
    {
      const std::vector<Demand> probe = random_demand_set(rng, 8, tiles, 2);
      const std::uint64_t hits_before = cache.stats().hits;
      plan_both(probe);
      release_index(live_sets.size() - 1);
      plan_both(probe);
      EXPECT_EQ(cache.stats().hits, hits_before + 1)
          << "case " << c << ": replay after exact ledger restore must hit";
    }
    while (!live_sets.empty()) release_index(live_sets.size() - 1);

    total_hits += cache.stats().hits;
    EXPECT_EQ(cache.stats().replay_aborts, 0u) << "case " << c;
  }
  EXPECT_GT(total_hits, 0u) << "the differential suite never exercised a hit";
}

// --- Fingerprint and invalidation unit tests -------------------------------

TEST(PlanCache, FingerprintIsOrderInsensitive) {
  const Demand a{{0, 1}, {0, 5}, 2};
  const Demand b{{0, 9}, {0, 3}, 1};
  const Demand c{{1, 2}, {0, 7}, 4};
  EXPECT_EQ(PlanCache::demand_fingerprint({a, b, c}),
            PlanCache::demand_fingerprint({c, a, b}));
  EXPECT_NE(PlanCache::demand_fingerprint({a, b}), PlanCache::demand_fingerprint({a, c}));
  // Multiset-sensitive: duplicates are not absorbed.
  EXPECT_NE(PlanCache::demand_fingerprint({a, a}), PlanCache::demand_fingerprint({a}));
}

TEST(PlanCache, SecondIdenticalPlanHits) {
  Fabric fab = make_fabric();
  PlanCache cache{fab};
  const std::vector<Demand> demands{{{0, 0}, {0, 31}, 2}, {{0, 8}, {0, 23}, 1}};
  PlanReport first = cache.place_all(demands);
  cache.release_all(first);
  PlanReport second = cache.place_all(demands);
  cache.release_all(second);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  expect_reports_equal(second, first);
}

TEST(PlanCache, EpochBumpInvalidates) {
  Fabric fab = make_fabric();
  PlanCache cache{fab};
  const std::vector<Demand> demands{{{0, 0}, {0, 31}, 2}};
  cache.release_all(cache.place_all(demands));
  fab.bump_epoch();  // stands in for any fault/repair/swap event
  cache.release_all(cache.place_all(demands));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().epoch_invalidations, 1u);
}

TEST(PlanCache, ForeignReservationForcesReplan) {
  Fabric fab = make_fabric();
  PlanCache cache{fab};
  const std::vector<Demand> demands{{{0, 0}, {0, 7}, 1}};
  cache.release_all(cache.place_all(demands));
  // Another tenant reserves lanes directly — no epoch bump, but the ledger
  // digest changes, so revalidate-on-use must reject the entry.
  ASSERT_TRUE(fab.wafer(0).reserve_lanes(0, Direction::kEast, 3));
  cache.release_all(cache.place_all(demands));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().digest_mismatches, 1u);
  fab.wafer(0).release_lanes(0, Direction::kEast, 3);
}

TEST(PlanCache, FaultQuarantineNeverReplaysStaleRoute) {
  Fabric fab = make_fabric();
  PlanCache cache{fab};
  const std::vector<Demand> demands{{{0, 0}, {0, 2}, 1}};  // straight east run
  PlanReport before = cache.place_all(demands);
  ASSERT_TRUE(before.complete());
  cache.release_all(before);

  // Stick the MZI on the direct path; the edge is quarantined.
  fault::FaultSet faults;
  fault::Fault f;
  f.kind = fault::FaultKind::kMziStuck;
  f.tile = GlobalTile{0, 1};
  f.direction = Direction::kEast;
  faults.add(f);
  faults.apply_to(fab);

  PlanReport after = cache.place_all(demands);
  EXPECT_EQ(cache.stats().hits, 0u) << "stale plan replayed across a fault";
  ASSERT_TRUE(after.complete());
  // The replacement route must detour around the quarantined edge.
  const fabric::Circuit* c = fab.circuit(after.placed[0].id);
  ASSERT_NE(c, nullptr);
  EXPECT_GT(c->segments.front().hops.size(), 2u);
  cache.release_all(after);
  faults.revert(fab);
}

TEST(PlanCache, EvictionKeepsCacheBounded) {
  Fabric fab = make_fabric();
  PlanCache cache{fab, RouteOptions{}, /*max_entries=*/4};
  for (std::uint32_t i = 0; i < 12; ++i) {
    const std::vector<Demand> demands{{{0, i}, {0, 31 - i}, 1}};
    cache.release_all(cache.place_all(demands));
  }
  EXPECT_LE(cache.size(), 4u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

// --- route_for (the repair ladder's entry point) ---------------------------

TEST(PlanCacheRouteFor, MatchesFindRouteAndMemoizes) {
  Fabric fab = make_fabric();
  PlanCache cache{fab};
  const Demand d{{0, 0}, {0, 31}, 2};
  RouteOptions opts;
  opts.lanes = d.wavelengths;
  const auto direct = find_route(fab.wafer(0), d.src.tile, d.dst.tile, opts);
  const auto first = cache.route_for(d);
  const auto second = cache.route_for(d);
  ASSERT_TRUE(direct.has_value());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, *direct);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, *direct);
  EXPECT_EQ(cache.stats().route_misses, 1u);
  EXPECT_EQ(cache.stats().route_hits, 1u);
}

TEST(PlanCacheRouteFor, CrossWaferIsNotMemoized) {
  Fabric fab = make_fabric();
  PlanCache cache{fab};
  EXPECT_FALSE(cache.route_for(Demand{{0, 7}, {1, 0}, 1}).has_value());
  EXPECT_EQ(cache.stats().route_hits, 0u);
  EXPECT_EQ(cache.stats().route_misses, 0u);
}

TEST(PlanCacheRouteFor, LedgerChangeForcesFreshSearch) {
  Fabric fab = make_fabric();
  PlanCache cache{fab};
  const Demand d{{0, 0}, {0, 7}, 1};
  ASSERT_TRUE(cache.route_for(d).has_value());
  ASSERT_TRUE(fab.wafer(0).reserve_lanes(0, Direction::kEast, 1));
  ASSERT_TRUE(cache.route_for(d).has_value());
  EXPECT_EQ(cache.stats().route_misses, 2u);
  EXPECT_EQ(cache.stats().route_hits, 0u);
  fab.wafer(0).release_lanes(0, Direction::kEast, 1);
}

// --- Through the repair ladder and recovery driver -------------------------

TEST(PlanCacheRepair, EscalateRepairThroughCacheMatchesWithout) {
  // Mirror fabrics, same degraded circuit; one ladder routes through the
  // cache, the other fresh.  Outcomes must be identical.
  Fabric with_cache = make_fabric();
  Fabric without = make_fabric();
  PlanCache cache{with_cache};

  auto break_one = [](Fabric& fab) {
    auto id = fab.connect({0, 0}, {0, 3}, 1);
    EXPECT_TRUE(id.ok());
    return id.value();
  };
  const fabric::CircuitId id_a = break_one(with_cache);
  const fabric::CircuitId id_b = break_one(without);

  DegradedCircuit victim_a;
  victim_a.id = id_a;
  victim_a.hard_down = true;
  DegradedCircuit victim_b = victim_a;
  victim_b.id = id_b;

  EscalationOptions opts_a;
  opts_a.cache = &cache;
  const EscalationOptions opts_b;  // no cache

  const auto out_a = escalate_repair(with_cache, victim_a, opts_a);
  const auto out_b = escalate_repair(without, victim_b, opts_b);
  EXPECT_EQ(out_a.recovered, out_b.recovered);
  EXPECT_EQ(out_a.rung, out_b.rung);
  EXPECT_EQ(out_a.latency, out_b.latency);
  EXPECT_EQ(out_a.attempts, out_b.attempts);
  EXPECT_EQ(with_cache.ledger_digest(), without.ledger_digest());
  EXPECT_EQ(cache.stats().route_misses, 1u);
}

TEST(PlanCacheRepair, SuccessfulRungBumpsEpoch) {
  Fabric fab = make_fabric();
  auto id = fab.connect({0, 0}, {0, 3}, 1);
  ASSERT_TRUE(id.ok());
  const std::uint64_t before = fab.epoch();
  DegradedCircuit victim;
  victim.id = id.value();
  victim.hard_down = true;
  const auto out = escalate_repair(fab, victim, {});
  ASSERT_TRUE(out.recovered);
  EXPECT_GT(fab.epoch(), before);
}

TEST(PlanCacheRepair, RepeatedBudgetExhaustedClimbsHitRouteCache) {
  // drive_recovery's retry loop re-runs the same rung-2 search against an
  // unchanged ledger after every budget-exhausted climb — exactly the
  // pattern route_for memoizes.
  Fabric fab = make_fabric();
  PlanCache cache{fab};
  auto id = fab.connect({0, 0}, {0, 31}, 1);
  ASSERT_TRUE(id.ok());

  DegradedCircuit victim;
  victim.id = id.value();
  victim.budget_failed = true;

  EscalationOptions opts;
  opts.cache = &cache;
  // Reject every replacement so no rung ever commits (no epoch bump, exact
  // ledger restore); a tiny per-climb budget forces repeat climbs.
  opts.validate = [](const Fabric&, fabric::CircuitId) { return false; };

  runtime::RecoveryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_factor = 1.0;  // keep every climb identically budgeted
  policy.initial_budget = Duration::micros(5.0);
  const auto res = runtime::drive_recovery(fab, victim, policy, opts);
  EXPECT_FALSE(res.recovered);
  EXPECT_EQ(cache.stats().route_misses, 1u);
  EXPECT_GE(cache.stats().route_hits, 1u)
      << "repeat climbs over an unchanged ledger should reuse the route memo";
}

// --- Quarantine view (gray failures; fault/health.hpp FlapDamper) ----------

TEST(PlanCacheQuarantine, RejectsWithoutBumpingTheEpoch) {
  Fabric fab = make_fabric();
  PlanCache cache{fab};
  const Demand d{{0, 0}, {0, 3}, 1};  // straight east run on row 0
  ASSERT_TRUE(cache.route_for(d).has_value());
  EXPECT_EQ(cache.stats().route_misses, 1u);

  const std::uint64_t epoch_before = fab.epoch();
  cache.set_quarantine([](GlobalTile t, Direction dir) {
    return t.wafer == 0 && t.tile == 1 && dir == Direction::kEast;
  });
  // The memoized hop path crosses tile 1's east port: the lookup must be
  // rejected as a *view* decision -- no epoch bump, entry kept.
  EXPECT_FALSE(cache.route_for(d).has_value());
  EXPECT_EQ(fab.epoch(), epoch_before) << "quarantine must never bump the epoch";
  EXPECT_GE(cache.stats().quarantine_rejections, 1u);

  // Lifting the quarantine makes the cache warm again instantly: the same
  // entry replays as a hit, not a fresh search.
  cache.set_quarantine(nullptr);
  ASSERT_TRUE(cache.route_for(d).has_value());
  EXPECT_EQ(cache.stats().route_misses, 1u) << "entry must survive the quarantine";
  EXPECT_GE(cache.stats().route_hits, 1u);
}

TEST(PlanCacheQuarantine, EntryPortOfEachHopIsCheckedToo) {
  Fabric fab = make_fabric();
  PlanCache cache{fab};
  const Demand d{{0, 0}, {0, 3}, 1};
  ASSERT_TRUE(cache.route_for(d).has_value());
  // Quarantine the receive side of the first hop (tile 1's *west* port):
  // walking the path must test the entry port via opposite(d) as well.
  cache.set_quarantine([](GlobalTile t, Direction dir) {
    return t.wafer == 0 && t.tile == 1 && dir == Direction::kWest;
  });
  EXPECT_FALSE(cache.route_for(d).has_value());
  EXPECT_GE(cache.stats().quarantine_rejections, 1u);
}

TEST(PlanCacheQuarantine, PlaceAllFallsThroughForQuarantinedPaths) {
  Fabric fab = make_fabric();
  PlanCache cache{fab};
  const std::vector<Demand> demands{{{0, 0}, {0, 3}, 1}};
  cache.release_all(cache.place_all(demands));
  cache.set_quarantine([](GlobalTile t, Direction dir) {
    return t.wafer == 0 && t.tile == 1 && dir == Direction::kEast;
  });
  // The memoized plan crosses the quarantined port: replay is rejected and
  // the planner runs fresh (which may route around or fail to place), but
  // the cache entry and epoch survive untouched.
  const std::uint64_t epoch_before = fab.epoch();
  PlanReport replanned = cache.place_all(demands);
  cache.release_all(replanned);
  EXPECT_EQ(fab.epoch(), epoch_before);
  EXPECT_GE(cache.stats().quarantine_rejections, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace lp::routing
