#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace lp {
namespace {

TEST(Units, DurationConversions) {
  const Duration d = Duration::micros(3.7);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 3.7e-6);
  EXPECT_DOUBLE_EQ(d.to_nanos(), 3700.0);
  EXPECT_DOUBLE_EQ(d.to_millis(), 3.7e-3);
}

TEST(Units, DurationArithmetic) {
  EXPECT_DOUBLE_EQ((Duration::micros(2) + Duration::micros(3)).to_micros(), 5.0);
  EXPECT_NEAR((Duration::micros(5) - Duration::micros(3)).to_micros(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ((Duration::micros(2) * 3.0).to_micros(), 6.0);
  EXPECT_DOUBLE_EQ(Duration::micros(6) / Duration::micros(2), 3.0);
  EXPECT_LT(Duration::micros(1), Duration::micros(2));
  EXPECT_TRUE(Duration::infinite() > Duration::seconds(1e12));
  EXPECT_FALSE(Duration::infinite().is_finite());
}

TEST(Units, TimePointAlgebra) {
  const TimePoint t0 = TimePoint::at_seconds(1.0);
  const TimePoint t1 = t0 + Duration::millis(500);
  EXPECT_DOUBLE_EQ(t1.to_seconds(), 1.5);
  EXPECT_EQ(t1 - t0, Duration::millis(500));
}

TEST(Units, DataSizeConversions) {
  EXPECT_DOUBLE_EQ(DataSize::kib(1).to_bytes(), 1024.0);
  EXPECT_DOUBLE_EQ(DataSize::mib(1).to_bytes(), 1048576.0);
  EXPECT_DOUBLE_EQ(DataSize::gib(1).to_mib(), 1024.0);
  EXPECT_DOUBLE_EQ(DataSize::bytes(10).to_bits(), 80.0);
}

TEST(Units, BandwidthConversions) {
  EXPECT_DOUBLE_EQ(Bandwidth::gbps(224).to_bps(), 224e9);
  EXPECT_DOUBLE_EQ(Bandwidth::gBps(300).to_gbps(), 2400.0);
  EXPECT_DOUBLE_EQ(Bandwidth::gBps(300).to_gBps(), 300.0);
  EXPECT_TRUE(Bandwidth::zero().is_zero());
}

TEST(Units, TransferTime) {
  // 1 GiB at 8 Gbps = 1.073741824 s.
  const Duration t = transfer_time(DataSize::gib(1), Bandwidth::gbps(8));
  EXPECT_NEAR(t.to_seconds(), 1.073741824, 1e-9);
  const DataSize back = data_at(Bandwidth::gbps(8), t);
  EXPECT_NEAR(back.to_bytes(), DataSize::gib(1).to_bytes(), 1.0);
}

TEST(Units, DecibelRoundTrip) {
  const Decibel d = Decibel::db(3.0103);
  EXPECT_NEAR(d.to_linear(), 2.0, 1e-4);
  EXPECT_NEAR(Decibel::from_linear(10.0).value(), 10.0, 1e-12);
  EXPECT_EQ((Decibel::db(1) + Decibel::db(2)).value(), 3.0);
}

TEST(Units, PowerAttenuation) {
  const Power p = Power::dbm(10.0);
  EXPECT_NEAR(p.to_milliwatts(), 10.0, 1e-9);
  const Power attenuated = p.attenuated_by(Decibel::db(10.0));
  EXPECT_NEAR(attenuated.to_dbm(), 0.0, 1e-9);
  EXPECT_NEAR(attenuated.to_milliwatts(), 1.0, 1e-9);
}

TEST(Units, LengthConversions) {
  EXPECT_DOUBLE_EQ(Length::microns(3).to_meters(), 3e-6);
  EXPECT_DOUBLE_EQ(Length::millimeters(25).to_microns(), 25000.0);
  EXPECT_DOUBLE_EQ(Length::millimeters(25) / Length::microns(3), 25000.0 / 3.0);
}

TEST(Rng, Deterministic) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexUnbiasedish) {
  Rng rng{11};
  std::vector<int> counts(7, 0);
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 7, 500);
}

TEST(Rng, NormalMoments) {
  Rng rng{13};
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng{17};
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, BernoulliRate) {
  Rng rng{19};
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent{23};
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Stats, SummaryBasics) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, SummarySingleSampleVarianceZero) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, HistogramBinning) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.count(b), 1u);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.density(3), 0.1);
}

TEST(Stats, HistogramOverUnderflow) {
  Histogram h{0.0, 1.0, 4};
  h.add(-5.0);
  h.add(9.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_FALSE(h.to_ascii().empty());
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  EXPECT_TRUE(std::isnan(percentile({}, 50)));
}

TEST(Stats, LinearFitExact) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, ExponentialApproachFitRecoversTau) {
  // y(t) = 1 - exp(-t / 2.5us)
  std::vector<double> ts, ys;
  for (int i = 0; i < 200; ++i) {
    const double t = i * 0.1e-6;
    ts.push_back(t);
    ys.push_back(1.0 - std::exp(-t / 2.5e-6));
  }
  const auto fit = fit_exponential_approach(ts, ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->tau, 2.5e-6, 0.1e-6);
  EXPECT_GT(fit->r_squared, 0.99);
}

TEST(Stats, ExponentialApproachRejectsFlat) {
  std::vector<double> ts, ys;
  for (int i = 0; i < 50; ++i) {
    ts.push_back(i);
    ys.push_back(1.0);
  }
  EXPECT_FALSE(fit_exponential_approach(ts, ys).has_value());
}

TEST(Stats, GaussianFit) {
  Rng rng{29};
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.normal(0.25, 0.08));
  const GaussianFit fit = fit_gaussian(xs);
  EXPECT_NEAR(fit.mean, 0.25, 0.005);
  EXPECT_NEAR(fit.sigma, 0.08, 0.005);
}

TEST(Result, OkAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad = Err("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
  EXPECT_FALSE(static_cast<bool>(bad));
}

}  // namespace
}  // namespace lp
