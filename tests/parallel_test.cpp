#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace lp::util {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool{4};
  constexpr std::size_t kTasks = 257;  // not a multiple of the worker count
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](std::size_t task, unsigned worker) {
    EXPECT_LT(worker, pool.size());
    hits[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::size_t ran = 0;
  pool.run(16, [&](std::size_t, unsigned worker) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(worker, 0u);
    ++ran;  // safe: everything is on the calling thread
  });
  EXPECT_EQ(ran, 16u);
}

TEST(ThreadPool, NestedRunExecutesInlineWithoutDeadlock) {
  ThreadPool pool{2};
  std::atomic<int> inner_total{0};
  pool.run(8, [&](std::size_t, unsigned) {
    // A task body that itself sweeps on the same pool must not deadlock:
    // the nested run executes inline on the current task's thread.
    pool.run(4, [&](std::size_t, unsigned worker) {
      EXPECT_EQ(worker, 0u);
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
}

TEST(ThreadPool, ZeroTasksReturnsImmediately) {
  ThreadPool pool{3};
  bool called = false;
  pool.run(0, [&](std::size_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(TaskSeed, PureAndDistinct) {
  // Same inputs, same seed — no hidden state.
  EXPECT_EQ(task_seed(42, 7), task_seed(42, 7));
  // Neighboring tasks and neighboring base seeds decorrelate.
  EXPECT_NE(task_seed(42, 7), task_seed(42, 8));
  EXPECT_NE(task_seed(42, 7), task_seed(43, 7));
  // A window of task indices yields all-distinct seeds.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.push_back(task_seed(0xfa11, i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(ParallelFor, CoversRangeOnSharedPool) {
  constexpr std::size_t kTasks = 100;
  std::vector<std::atomic<int>> hits(kTasks);
  parallel_for(kTasks,
               [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

// The determinism contract: a floating-point reduction whose per-task values
// come from task_seed folds to the exact same bits at every thread count.
TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kTasks = 512;
  const auto map = [](std::size_t i) {
    Rng rng{task_seed(0x5eed, i)};
    return rng.uniform(0.0, 1.0) / static_cast<double>(i + 1);
  };
  const auto sum = [](double acc, double v) { return acc + v; };

  ThreadPool one{1};
  const double serial = parallel_reduce(kTasks, 0.0, map, sum, &one);
  for (unsigned threads : {2u, 3u, 5u, 8u}) {
    ThreadPool pool{threads};
    const double parallel = parallel_reduce(kTasks, 0.0, map, sum, &pool);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;  // bit-identical
  }
}

// Fold order is part of the contract: a non-commutative reduce sees values
// in ascending task order regardless of which worker produced them.
TEST(ParallelReduce, FoldsInAscendingTaskOrder) {
  ThreadPool pool{4};
  const std::string joined = parallel_reduce(
      std::size_t{10}, std::string{},
      [](std::size_t i) { return std::to_string(i); },
      [](std::string acc, std::string v) { return acc + v; }, &pool);
  EXPECT_EQ(joined, "0123456789");
}

}  // namespace
}  // namespace lp::util
