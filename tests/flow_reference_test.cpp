// Property test for the incremental max-min solver in sim/flow_sim.
//
// A deliberately naive reference implementation recomputes progressive
// filling from scratch every round: per-link residual capacity and unfrozen
// flow counts are rebuilt by scanning every flow, and the bottleneck link is
// found by scanning every link.  The incremental solver (CSR incidence,
// cached shares, compacted active-link table / lazy heap) must produce the
// same rates — on 200 randomized demand sets with shared links, multi-hop
// routes, optical circuits, and zero-byte transfers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "collective/schedule.hpp"
#include "sim/flow_sim.hpp"
#include "topo/cluster.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lp::sim {
namespace {

constexpr double kCapBps = 100.0e9;
constexpr double kDoneBitsEps = 1e-6;

struct RefResult {
  std::vector<double> completion_s;
  std::vector<double> initial_rate_bps;
  double duration_s{0.0};
};

// Brute-force phase simulation: same semantics as FlowSimulator::run_phase,
// none of the incremental machinery.
RefResult reference_phase(const std::vector<coll::Transfer>& transfers) {
  const std::size_t n = transfers.size();
  RefResult out;
  out.completion_s.assign(n, 0.0);
  out.initial_rate_bps.assign(n, 0.0);

  // Dense link ids in first-appearance order, mirroring the solver's
  // tie-break between equal-share bottlenecks.
  std::map<std::size_t, std::size_t> dense;
  std::vector<std::vector<std::size_t>> flow_links(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& l : transfers[i].route) {
      const auto [it, inserted] = dense.try_emplace(topo::link_key(l), dense.size());
      (void)inserted;
      flow_links[i].push_back(it->second);
    }
  }
  const std::size_t link_count = dense.size();

  std::vector<double> remaining(n), rate(n, 0.0);
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < n; ++i) {
    remaining[i] = transfers[i].bytes.to_bits();
    if (remaining[i] > kDoneBitsEps) {
      active.push_back(i);
    } else {
      out.initial_rate_bps[i] = transfers[i].is_optical()
                                    ? transfers[i].dedicated_rate.to_bps()
                                    : kCapBps;
    }
  }

  double now = 0.0;
  bool first_round = true;
  while (!active.empty()) {
    std::fill(rate.begin(), rate.end(), 0.0);
    std::vector<std::vector<std::size_t>> link_flows(link_count);
    std::vector<double> residual(link_count, kCapBps);
    std::vector<bool> frozen(n, false);
    std::size_t unfrozen_total = 0;
    for (std::size_t i : active) {
      if (transfers[i].is_optical()) {
        rate[i] = transfers[i].dedicated_rate.to_bps();
      } else if (flow_links[i].empty()) {
        rate[i] = kCapBps;
      } else {
        for (std::size_t l : flow_links[i]) link_flows[l].push_back(i);
        ++unfrozen_total;
      }
    }
    while (unfrozen_total > 0) {
      double best_share = std::numeric_limits<double>::infinity();
      std::size_t best = link_count;
      for (std::size_t l = 0; l < link_count; ++l) {
        std::size_t unfrozen = 0;
        for (std::size_t i : link_flows[l])
          if (!frozen[i]) ++unfrozen;
        if (unfrozen == 0) continue;
        const double share = residual[l] / static_cast<double>(unfrozen);
        if (share < best_share || (share == best_share && l < best)) {
          best_share = share;
          best = l;
        }
      }
      if (best == link_count) break;
      for (std::size_t i : link_flows[best]) {
        if (frozen[i]) continue;
        frozen[i] = true;
        rate[i] = best_share;
        --unfrozen_total;
        for (std::size_t l : flow_links[i]) residual[l] -= best_share;
      }
    }
    if (first_round) {
      for (std::size_t i : active) out.initial_rate_bps[i] = rate[i];
      first_round = false;
    }
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i : active)
      if (rate[i] > 0.0) dt = std::min(dt, remaining[i] / rate[i]);
    if (!std::isfinite(dt)) break;
    now += dt;
    std::vector<std::size_t> still;
    for (std::size_t i : active) {
      remaining[i] -= rate[i] * dt;
      if (remaining[i] <= kDoneBitsEps) {
        out.completion_s[i] = now;
      } else {
        still.push_back(i);
      }
    }
    active.swap(still);
  }
  out.duration_s = now;
  return out;
}

// Random demand set: multi-hop electrical routes over a shared pool of
// directed links (10 chips x 3 dims x 2 signs), sprinkled with optical
// circuits and zero-byte transfers.
std::vector<coll::Transfer> random_transfers(std::uint64_t seed) {
  Rng rng{seed};
  std::vector<topo::DirectedLink> pool;
  for (topo::TpuId chip = 0; chip < 10; ++chip)
    for (std::uint8_t dim = 0; dim < 3; ++dim)
      for (int sign : {+1, -1})
        pool.push_back(topo::DirectedLink{chip, dim, static_cast<std::int8_t>(sign)});

  const std::size_t n = 1 + rng.uniform_index(40);
  std::vector<coll::Transfer> transfers(n);
  for (auto& t : transfers) {
    t.src = static_cast<topo::TpuId>(rng.uniform_index(10));
    t.dst = static_cast<topo::TpuId>(rng.uniform_index(10));
    const double roll = rng.uniform();
    if (roll < 0.05) {
      t.bytes = DataSize::zero();
    } else {
      t.bytes = DataSize::bytes(rng.uniform(1.0, 8.0 * 1024 * 1024));
    }
    if (rng.uniform() < 0.1) {
      t.dedicated_rate = Bandwidth::gBps(rng.uniform(50.0, 400.0));
      continue;  // optical: no route
    }
    // Route: 1-5 distinct links drawn from the pool.
    const std::size_t hops = 1 + rng.uniform_index(5);
    std::vector<topo::DirectedLink> route;
    while (route.size() < hops) {
      const auto& link = pool[rng.uniform_index(pool.size())];
      bool dup = false;
      for (const auto& r : route) dup = dup || r == link;
      if (!dup) route.push_back(link);
    }
    t.route = std::move(route);
  }
  return transfers;
}

class FlowReferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowReferenceTest, IncrementalSolverMatchesBruteForce) {
  const auto transfers =
      random_transfers(0xf10a0 + static_cast<std::uint64_t>(GetParam()));
  const FlowSimulator fsim{Bandwidth::bps(kCapBps)};
  const PhaseResult got = fsim.run_phase(transfers);
  const RefResult want = reference_phase(transfers);

  ASSERT_EQ(got.flows.size(), transfers.size());
  EXPECT_NEAR(got.duration.to_seconds(), want.duration_s,
              1e-9 * std::max(1.0, want.duration_s));
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    EXPECT_NEAR(got.flows[i].completion.to_seconds(), want.completion_s[i],
                1e-9 * std::max(1.0, want.completion_s[i]))
        << "flow " << i;
    EXPECT_NEAR(got.flows[i].initial_rate.to_bps(), want.initial_rate_bps[i],
                1e-9 * std::max(1.0, want.initial_rate_bps[i]))
        << "flow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDemands, FlowReferenceTest, ::testing::Range(0, 200));

}  // namespace
}  // namespace lp::sim
